module hmc

go 1.22
