// Benchmarks regenerating the evaluation's tables and figures (one
// benchmark per experiment; see DESIGN.md §5 and EXPERIMENTS.md). The
// rendered tables come from cmd/hmc-bench; these benchmarks time the
// underlying checker work and report executions-per-run so the growth
// laws are visible in `go test -bench=. -benchmem` output.
package hmc_test

import (
	"fmt"
	"testing"

	"hmc"
	"hmc/internal/axenum"
	"hmc/internal/core"
	"hmc/internal/gen"
	"hmc/internal/litmus"
	"hmc/internal/memmodel"
	"hmc/internal/operational"
	"hmc/internal/prog"
)

func exploreOnce(b *testing.B, p *prog.Program, model string) *core.Result {
	b.Helper()
	m, err := memmodel.ByName(model)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Explore(p, core.Options{Model: m})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkT1LitmusMatrix times the full corpus × model verdict matrix.
func BenchmarkT1LitmusMatrix(b *testing.B) {
	corpus := litmus.Corpus()
	models := memmodel.Names()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		execs := 0
		for _, tc := range corpus {
			for _, model := range models {
				execs += exploreOnce(b, tc.P, model).Executions
			}
		}
		b.ReportMetric(float64(execs), "executions/op")
	}
}

// BenchmarkT2Enumeration compares HMC against the herd-style enumerator on
// the programs where candidate enumeration blows up (table T2).
func BenchmarkT2Enumeration(b *testing.B) {
	programs := []*prog.Program{gen.CoRRN(3), gen.IncN(2, 2), gen.CASContendN(3)}
	m, _ := memmodel.ByName("imm")
	for _, p := range programs {
		b.Run("hmc/"+p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exploreOnce(b, p, "imm")
			}
		})
		b.Run("enum/"+p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := axenum.Explore(p, axenum.Options{Model: m}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkT3Operational compares HMC graphs against operational traces on
// SB(n) under TSO (table T3). The machine side is capped at n=3: its cost
// is the point of the comparison.
func BenchmarkT3Operational(b *testing.B) {
	for n := 2; n <= 4; n++ {
		p := gen.SBN(n)
		b.Run(fmt.Sprintf("hmc/SB%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exploreOnce(b, p, "tso")
			}
		})
		if n <= 3 {
			b.Run(fmt.Sprintf("machine/SB%d", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := operational.Explore(p, operational.Options{Level: operational.TSO}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkT4ScalingSB and BenchmarkT4ScalingLB are the scaling figure's
// two series: executions double per step while time stays polynomial.
func BenchmarkT4ScalingSB(b *testing.B) {
	for n := 2; n <= 6; n++ {
		p := gen.SBN(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var execs int
			for i := 0; i < b.N; i++ {
				execs = exploreOnce(b, p, "tso").Executions
			}
			b.ReportMetric(float64(execs), "executions/op")
		})
	}
}

func BenchmarkT4ScalingLB(b *testing.B) {
	for n := 2; n <= 6; n++ {
		p := gen.LBN(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var execs int
			for i := 0; i < b.N; i++ {
				execs = exploreOnce(b, p, "imm").Executions
			}
			b.ReportMetric(float64(execs), "executions/op")
		})
	}
}

// BenchmarkT5Ablation times full dependency-aware revisits against the
// porf-only ablation on LB(n) (table T5); the ablation is faster but
// misses the load-buffering executions.
func BenchmarkT5Ablation(b *testing.B) {
	m, _ := memmodel.ByName("imm")
	for n := 2; n <= 5; n++ {
		p := gen.LBN(n)
		b.Run(fmt.Sprintf("full/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Explore(p, core.Options{Model: m})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Executions), "executions/op")
			}
		})
		b.Run(fmt.Sprintf("porfonly/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Explore(p, core.Options{Model: m, PorfOnlyRevisits: true})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Executions), "executions/op")
			}
		})
	}
}

// BenchmarkT6FenceMatrix times the fence/dependency repair matrix rows.
func BenchmarkT6FenceMatrix(b *testing.B) {
	names := []string{"SB+ffs", "MP+lw+ld", "MP+lw+addr", "LB+datas", "2+2W+lws", "IRIW+ffs"}
	models := memmodel.Names()
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			tc, ok := litmus.ByName(name)
			if !ok {
				b.Fatalf("missing corpus test %s", name)
			}
			for _, model := range models {
				exploreOnce(b, tc.P, model)
			}
		}
	}
}

// BenchmarkT7Stress times the exploration statistics workloads: the
// RMW-heavy and lock-based programs that stress revisits and steals.
func BenchmarkT7Stress(b *testing.B) {
	programs := []*prog.Program{
		gen.IncN(4, 1), gen.CASContendN(4), gen.IndexerN(4),
		gen.SpinlockN(2, hmc.FenceFull), gen.SpinlockN(2, 0),
	}
	for _, p := range programs {
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := exploreOnce(b, p, "imm")
				b.ReportMetric(float64(res.States), "states/op")
			}
		})
	}
}

// BenchmarkT10Parallel times the same exploration at worker widths 1, 2,
// 4 and 8 (experiment T10). On a multicore host the wide runs finish
// faster; on a single CPU they expose the synchronization overhead.
func BenchmarkT10Parallel(b *testing.B) {
	p := gen.SBN(6)
	m, err := memmodel.ByName("tso")
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Explore(p, core.Options{Model: m, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if res.Executions != 64 {
					b.Fatalf("executions = %d, want 64", res.Executions)
				}
			}
		})
	}
}

// BenchmarkT11Symmetry compares full exploration against symmetry
// reduction on the identical-thread counter (experiment T11): inc(4,1)'s
// 24 RMW chain orders collapse into one orbit.
func BenchmarkT11Symmetry(b *testing.B) {
	p := gen.IncN(4, 1)
	m, err := memmodel.ByName("sc")
	if err != nil {
		b.Fatal(err)
	}
	for _, symm := range []bool{false, true} {
		name := "full"
		if symm {
			name = "symm"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Explore(p, core.Options{Model: m, Symmetry: symm})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Executions), "execs/op")
			}
		})
	}
}
