package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchSubsetQuick(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "T5,T7", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "T5") || !strings.Contains(s, "T7") || strings.Contains(s, "T1 —") {
		t.Errorf("subset selection wrong:\n%s", s)
	}
}

func TestBenchCSV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "T11", "-quick", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "program,model") {
		t.Errorf("expected CSV header:\n%s", out.String())
	}
}

func TestBenchUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "T99"}, &strings.Builder{}); err == nil {
		t.Error("unknown experiment must error")
	}
}

// TestBenchJSONAndBaseline drives the CI gate end to end: -json writes a
// parseable tracked-counter file, -baseline against that same file
// passes, and a baseline demanding fewer executions fails.
func TestBenchJSONAndBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run([]string{"-quick", "-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "bench counters written to "+path) {
		t.Errorf("missing write report:\n%s", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Suite string `json:"suite"`
		Rows  []struct {
			Name       string `json:"name"`
			Executions int    `json:"executions"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("BENCH JSON unparseable: %v\n%s", err, raw)
	}
	if report.Suite != "explore" || len(report.Rows) == 0 {
		t.Fatalf("bad report: %+v", report)
	}

	out.Reset()
	if err := run([]string{"-quick", "-baseline", path}, &out); err != nil {
		t.Fatalf("self-comparison must pass: %v", err)
	}
	if !strings.Contains(out.String(), "within 25% of baseline") {
		t.Errorf("missing baseline verdict:\n%s", out.String())
	}

	tampered := filepath.Join(t.TempDir(), "tampered.json")
	smaller := strings.Replace(string(raw),
		fmt.Sprintf(`"executions": %d`, report.Rows[0].Executions), `"executions": 1`, 1)
	if smaller == string(raw) {
		t.Fatal("tampering failed to change the baseline")
	}
	if err := os.WriteFile(tampered, []byte(smaller), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-quick", "-baseline", tampered}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("regression must fail the gate: %v", err)
	}
}
