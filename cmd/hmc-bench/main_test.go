package main

import (
	"strings"
	"testing"
)

func TestBenchSubsetQuick(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "T5,T7", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "T5") || !strings.Contains(s, "T7") || strings.Contains(s, "T1 —") {
		t.Errorf("subset selection wrong:\n%s", s)
	}
}

func TestBenchCSV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "T11", "-quick", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "program,model") {
		t.Errorf("expected CSV header:\n%s", out.String())
	}
}

func TestBenchUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "T99"}, &strings.Builder{}); err == nil {
		t.Error("unknown experiment must error")
	}
}
