// Command hmc-bench regenerates the evaluation tables and figure series
// (experiments T1–T17 in DESIGN.md / EXPERIMENTS.md): the litmus verdict
// matrix, the comparisons against the herd-style enumerator and the
// operational store-buffer explorer, the scaling series, the
// dependency-revisit ablation, the fence repair matrix, the exploration
// statistics, the compilation and robustness matrices, the parallel
// and symmetry-reduction studies, the static-pruning study, the
// checkpoint/resume study, the instrumentation-overhead study, the
// sharded-exploration study and the consistency-path study.
//
// It is also the CI regression gate: -json runs a small tracked suite of
// explorations and writes their deterministic work counters (executions,
// states, consistency checks, revisit candidates) as BENCH_explore.json;
// -baseline diffs that suite against a committed baseline and exits
// nonzero when any counter grows more than 25% — wall-clock is recorded
// for trend plots but never gated.
//
// Usage:
//
//	hmc-bench                            # run every experiment
//	hmc-bench -run T3,T4                 # a subset
//	hmc-bench -quick                     # smaller parameter sweeps
//	hmc-bench -csv                       # machine-readable output
//	hmc-bench -json BENCH_explore.json   # tracked suite -> JSON
//	hmc-bench -json new.json -baseline BENCH_explore.json  # CI gate
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hmc/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hmc-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hmc-bench", flag.ContinueOnError)
	runList := fs.String("run", "all", "comma-separated experiment ids (T1..T17) or 'all'")
	quick := fs.Bool("quick", false, "shrink parameter sweeps")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonPath := fs.String("json", "", "run the tracked benchmark suite and write its counters as JSON to this file (skips the experiment tables)")
	baseline := fs.String("baseline", "", "compare the tracked suite against this committed BENCH JSON; >25% counter growth fails")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := harness.Options{Quick: *quick}

	// Bench mode: run the tracked suite, optionally persist it, optionally
	// gate it against the committed baseline. The experiment tables are a
	// separate concern and are skipped.
	if *jsonPath != "" || *baseline != "" {
		report, err := harness.BenchExplore(opts)
		if err != nil {
			return err
		}
		if err := report.Table().Render(out); err != nil {
			return err
		}
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			if err := report.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "bench counters written to %s\n", *jsonPath)
		}
		if *baseline != "" {
			f, err := os.Open(*baseline)
			if err != nil {
				return err
			}
			base, err := harness.ReadBenchReport(f)
			f.Close()
			if err != nil {
				return err
			}
			if err := harness.CompareBaseline(report, base, 0.25); err != nil {
				return err
			}
			fmt.Fprintf(out, "bench counters within 25%% of baseline %s (%d tracked rows)\n", *baseline, len(base.Rows))
		}
		return nil
	}

	ids := harness.Experiments()
	if *runList != "all" {
		ids = nil
		for _, id := range strings.Split(*runList, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	for _, id := range ids {
		table, err := harness.Run(id, opts)
		if err != nil {
			return err
		}
		if *csv {
			if err := table.CSV(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
		} else if err := table.Render(out); err != nil {
			return err
		}
	}
	return nil
}
