// Command hmc-bench regenerates the evaluation tables and figure series
// (experiments T1–T13 in DESIGN.md / EXPERIMENTS.md): the litmus verdict
// matrix, the comparisons against the herd-style enumerator and the
// operational store-buffer explorer, the scaling series, the
// dependency-revisit ablation, the fence repair matrix, the exploration
// statistics, the compilation and robustness matrices, the parallel
// and symmetry-reduction studies, and the static-pruning study.
//
// Usage:
//
//	hmc-bench              # run every experiment
//	hmc-bench -run T3,T4   # a subset
//	hmc-bench -quick       # smaller parameter sweeps
//	hmc-bench -csv         # machine-readable output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hmc/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hmc-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hmc-bench", flag.ContinueOnError)
	runList := fs.String("run", "all", "comma-separated experiment ids (T1..T13) or 'all'")
	quick := fs.Bool("quick", false, "shrink parameter sweeps")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ids := harness.Experiments()
	if *runList != "all" {
		ids = nil
		for _, id := range strings.Split(*runList, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	opts := harness.Options{Quick: *quick}
	for _, id := range ids {
		table, err := harness.Run(id, opts)
		if err != nil {
			return err
		}
		if *csv {
			if err := table.CSV(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
		} else if err := table.Render(out); err != nil {
			return err
		}
	}
	return nil
}
