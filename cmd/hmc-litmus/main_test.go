package main

import (
	"strings"
	"testing"
)

func TestLitmusGateClean(t *testing.T) {
	var out strings.Builder
	code, err := run(nil, &out)
	if err != nil || code != 0 {
		t.Fatalf("corpus gate failed: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "T1") || !strings.Contains(out.String(), "SB") {
		t.Errorf("matrix not rendered:\n%s", out.String())
	}
}

func TestLitmusGateCSV(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-csv"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if !strings.Contains(strings.Split(out.String(), "\n")[0], ",") {
		t.Errorf("expected CSV header:\n%s", out.String())
	}
}

func TestLitmusGateBadFlag(t *testing.T) {
	if code, _ := run([]string{"-definitely-not-a-flag"}, &strings.Builder{}); code == 0 {
		t.Error("bad flag must not exit 0")
	}
}
