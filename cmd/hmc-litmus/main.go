// Command hmc-litmus runs the built-in litmus corpus across every memory
// model and prints the verdict matrix (experiment T1). Any mismatch with
// the expected verdicts exits non-zero — this is the model-validation
// gate, playing the role of the published model tables the real HMC
// relies on.
//
// Usage:
//
//	hmc-litmus [-csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hmc/internal/harness"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hmc-litmus:", err)
	}
	os.Exit(code)
}

// run executes the verdict matrix, returning the process exit code:
// 0 clean, 1 operational error, 2 verdict mismatch.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("hmc-litmus", flag.ContinueOnError)
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}

	table, err := harness.Run("T1", harness.Options{})
	if err != nil {
		return 1, err
	}
	if *csv {
		err = table.CSV(out)
	} else {
		err = table.Render(out)
	}
	if err != nil {
		return 1, err
	}
	for _, row := range table.Rows {
		for _, cell := range row {
			if strings.Contains(cell, "(!)") {
				return 2, fmt.Errorf("verdict mismatches detected")
			}
		}
	}
	return 0, nil
}
