// Command hmc model-checks a litmus test against a (hardware) memory
// model. It is the front door of the library: feed it a test in the
// plain-text litmus format (see internal/litmus.Parse) or name a built-in
// corpus test, pick a model, and it reports whether the test's weak
// outcome is observable, how many executions exist, and any assertion
// failures with witness graphs.
//
// Usage:
//
//	hmc [flags] <file.lit | ->
//	hmc [flags] -test MP
//	hmc [flags] -backend portfolio -test MP
//	hmc vet [flags] <file.lit | ->
//	hmc -repro <crash-or-quarantine-artifact.json>
//
// Examples:
//
//	hmc -model imm examples/litmusfile/mp.lit
//	hmc -model tso -test SB
//	hmc -all -test LB
//	hmc -static -checkdeps -stats -test LB
//	hmc -timeout 10s -checkpoint run.ckpt -test IRIW
//	hmc -resume run.ckpt -checkpoint run.ckpt -test IRIW
//	hmc -progress -progress-every 500ms -model sc -test IRIW
//	hmc -trace run.jsonl -model tso -test SB
//	hmc -shards 4 -stats -model tso -test SB
//	hmc vet -model tso -foot examples/litmusfile/mp.lit
//	hmc -repro hmcd-crashes/crash-3f2a91c0aa17-job-000042.json
//
// -progress prints a live ticker to stderr (wave, executions, rate, an
// ETA derived from a quick pre-run estimate) without touching stdout;
// -trace writes a JSONL exploration trace — one event per wave, revisit,
// static prune and progress snapshot — for offline analysis.
//
// A -timeout'd or -max'd run that stops early writes its final frontier
// to the -checkpoint file; re-running with -resume picks the exploration
// up exactly where it stopped (same program, model and bounds required)
// and, on completion, reports the same counts as an uninterrupted run.
//
// -shards N splits the frontier across N in-process explorers
// (internal/shard): each owns a slice of the canonical-state space,
// forwards graphs it does not own, and idle explorers steal buckets from
// busy ones. Verdict and counts are identical to -shards 1 — only the
// wall clock changes. Composes with -checkpoint/-resume (checkpoints are
// merged, whole-run ones) and -progress; -trace does not compose.
//
// -peers http://a:8433,http://b:8433 (with -shards N>1) farms legs to
// peer hmcd daemons through the same resilience pool hmcd uses: breaker,
// transient retries, local demotion. A dark peer's legs run locally and
// the totals are unchanged; -stats prints a per-peer row. -v and -dot do
// not compose with -peers (witness callbacks cannot cross the wire).
//
// `hmc vet` lints a program without exploring it: the static analysis in
// internal/analyze reports dead stores, statically-false assertions and
// assumptions, fences that cannot order anything (positionally, or under
// the selected model), registers read before any write, out-of-range
// addresses, unreachable code, and near-symmetric threads the exact
// symmetry reduction cannot exploit. Findings print one per line as
// program:tN:pc: [code] message (severity); the exit status is non-zero
// only for error-severity findings (and for programs that fail to parse
// or validate).
//
// -backend selects the verdict engine: dfs (the default explorer), axenum
// (the herd-style axiomatic enumerator), operational (the SC/TSO/PSO
// store-buffer machines), or portfolio, which races every applicable
// engine, serves the first exhaustive verdict and cross-checks the rest —
// a disagreement prints both answers and exits non-zero.
//
// -repro replays an artifact written by the hmcd service: a crash
// artifact rebuilds the program that panicked the engine, re-runs the
// exploration with the recorded model and bounds, and reports whether the
// panic reproduces; a quarantine (backend-disagreement) artifact re-runs
// both disagreeing backends and reports whether they still split.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"hmc/internal/backend"
	"hmc/internal/core"
	"hmc/internal/eg"
	"hmc/internal/litmus"
	"hmc/internal/memmodel"
	"hmc/internal/obs"
	"hmc/internal/prog"
	"hmc/internal/service"
	"hmc/internal/shard"
)

// progressOut receives the -progress ticker. Progress is operator
// feedback, not output: it goes to stderr so piped verdicts stay clean
// (tests swap it).
var progressOut io.Writer = os.Stderr

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hmc:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 && args[0] == "vet" {
		return vet(args[1:], out)
	}
	fs := flag.NewFlagSet("hmc", flag.ContinueOnError)
	model := fs.String("model", "imm", "memory model: "+fmt.Sprint(memmodel.Names()))
	all := fs.Bool("all", false, "check under every model")
	testName := fs.String("test", "", "run a built-in corpus test instead of a file")
	verbose := fs.Bool("v", false, "print every consistent execution graph")
	maxExec := fs.Int("max", 0, "stop after this many executions (0 = all)")
	maxEvents := fs.Int("max-events", 0, "prune execution graphs larger than this many events (0 = no cap)")
	memBudget := fs.Int64("mem-budget", 0, "soft heap budget in bytes; exploration truncates instead of exhausting memory (0 = no budget)")
	reproPath := fs.String("repro", "", "replay a crash artifact written by hmcd and report whether the engine panic reproduces")
	showProg := fs.Bool("p", false, "print the parsed program")
	dotPath := fs.String("dot", "", "write a witness execution (weak outcome if observable) as Graphviz DOT to this file")
	robust := fs.Bool("robust", false, "additionally report whether the program is robust (SC-equivalent) under each model")
	races := fs.Bool("races", false, "report C11 data races on plain accesses (rc11 semantics)")
	workers := fs.Int("workers", 1, "parallel exploration workers (1 = sequential)")
	live := fs.Bool("live", false, "check liveness: report awaits that block forever (deadlocks)")
	symm := fs.Bool("symm", false, "symmetry reduction: explore one representative per orbit of identical threads")
	static := fs.Bool("static", false, "static-analysis pruning: skip rf/co/revisit work on provably thread-local, single-writer and never-read locations (count-preserving)")
	checkDeps := fs.Bool("checkdeps", false, "sanitizer: assert every dynamic dependency is covered by the static dependency sets")
	estimate := fs.Int("estimate", 0, "skip exploration; predict the execution count with this many random probes")
	stats := fs.Bool("stats", false, "print exploration statistics (states, memo hits, revisits)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for each check (0 = none); an interrupted check prints INTERRUPTED with its partial counts")
	ckptPath := fs.String("checkpoint", "", "write exploration checkpoints to this file (periodically and when interrupted/truncated); resume with -resume")
	ckptEvery := fs.Int("checkpoint-every", 2000, "executions between periodic checkpoints (with -checkpoint)")
	resumePath := fs.String("resume", "", "resume exploration from a checkpoint file written by -checkpoint")
	progress := fs.Bool("progress", false, "print a live progress ticker to stderr (executions, rate, ETA)")
	progressEvery := fs.Duration("progress-every", time.Second, "progress ticker cadence (with -progress)")
	tracePath := fs.String("trace", "", "write a JSONL exploration trace (waves, revisits, prunes, snapshots) to this file")
	shards := fs.Int("shards", 1, "split the frontier across this many parallel explorers (1 = the classic single-explorer path); totals are identical, wall-clock shrinks with cores")
	peersFlag := fs.String("peers", "", "comma-separated base URLs of hmcd daemons to farm shard legs to (with -shards N>1); a dark peer's legs run locally, totals unchanged")
	backendName := fs.String("backend", "dfs", "verdict engine: "+strings.Join(backend.Names(), "|")+" (non-dfs prints a normalized verdict; portfolio races all applicable engines and cross-checks)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ck := ckptConfig{path: *ckptPath, every: *ckptEvery, resume: *resumePath}
	ob := obsConfig{progress: *progress, every: *progressEvery, trace: *tracePath}
	if (ck.path != "" || ck.resume != "") && *all {
		return fmt.Errorf("-checkpoint/-resume work on a single model; drop -all")
	}
	if *shards < 1 {
		return fmt.Errorf("-shards wants a positive count, got %d", *shards)
	}
	if *shards > 1 && *tracePath != "" {
		return fmt.Errorf("-trace records one explorer's event stream; it does not compose with -shards (drop one)")
	}
	var peerURLs []string
	for _, u := range strings.Split(*peersFlag, ",") {
		if u = strings.TrimSpace(u); u != "" {
			peerURLs = append(peerURLs, u)
		}
	}
	if len(peerURLs) > 0 {
		if *shards <= 1 {
			return fmt.Errorf("-peers farms shard legs; it needs -shards N>1")
		}
		if *verbose || *dotPath != "" {
			return fmt.Errorf("-v and -dot need in-process executions; they do not compose with -peers (drop one)")
		}
	}

	if *reproPath != "" {
		return repro(out, *reproPath)
	}
	p, source, test, err := loadProgram(fs.Args(), *testName)
	if err != nil {
		return err
	}
	pc := peerConfig{urls: peerURLs, source: source, test: test}
	if *showProg {
		fmt.Fprint(out, p)
	}

	// The timeout budgets each check/analysis individually: one slow
	// model under -all does not starve the rest of their budget.
	newCtx := func() (context.Context, context.CancelFunc) {
		if *timeout > 0 {
			return context.WithTimeout(context.Background(), *timeout)
		}
		return context.Background(), func() {}
	}

	if *backendName != "dfs" {
		// Alternate engines answer through the normalized Verdict, not the
		// explorer's native result, so the DFS-shaped extras don't compose.
		if *verbose || *dotPath != "" || *shards > 1 || *tracePath != "" ||
			ck.path != "" || ck.resume != "" || ob.progress || *estimate > 0 ||
			*static || *checkDeps || *races || *live || *robust {
			return fmt.Errorf("-backend %s prints normalized verdicts; it composes only with -model/-all/-test/-max/-max-events/-mem-budget/-workers/-symm/-timeout/-stats", *backendName)
		}
		models := []string{*model}
		if *all {
			models = memmodel.Names()
		}
		for _, name := range models {
			if err := checkBackend(out, p, name, *backendName, *maxExec, *maxEvents, *memBudget, *workers, *symm, *stats, newCtx); err != nil {
				return err
			}
		}
		return nil
	}

	models := []string{*model}
	if *all {
		models = memmodel.Names()
	}
	if *estimate > 0 {
		for _, name := range models {
			m, err := memmodel.ByName(name)
			if err != nil {
				return err
			}
			ctx, cancel := newCtx()
			est, err := core.Estimate(p, core.Options{Model: m, Context: ctx}, *estimate, 1)
			cancel()
			if err != nil {
				return err
			}
			note := ""
			if est.Interrupted {
				note = " INTERRUPTED (partial probes)"
			}
			fmt.Fprintf(out, "%-16s model=%-8s estimate: %v%s\n", p.Name, name, est, note)
		}
		return nil
	}
	for _, name := range models {
		if err := check(out, p, name, *verbose, *maxExec, *maxEvents, *memBudget, *dotPath, *workers, *shards, *symm, *static, *checkDeps, *stats, ck, ob, pc, newCtx); err != nil {
			return err
		}
		if *robust {
			if err := reportRobustness(out, p, name, newCtx); err != nil {
				return err
			}
		}
		if *live {
			if err := reportLiveness(out, p, name, newCtx); err != nil {
				return err
			}
		}
	}
	if *races {
		ctx, cancel := newCtx()
		defer cancel()
		rep, err := core.CheckRaces(p, core.Options{Context: ctx})
		if err != nil {
			return err
		}
		switch {
		case len(rep.Races) > 0:
			for _, r := range rep.Races {
				fmt.Fprintf(out, "DATA RACE: %v (location %s)\n", r, p.LocName(r.Loc))
			}
		case rep.Interrupted:
			fmt.Fprintf(out, "race check INTERRUPTED (partial: no race in the %d rc11 executions examined)\n", rep.Executions)
		default:
			fmt.Fprintf(out, "race-free: no unordered conflicting plain accesses in %d rc11 executions\n", rep.Executions)
		}
	}
	return nil
}

func reportRobustness(out io.Writer, p *prog.Program, model string, newCtx func() (context.Context, context.CancelFunc)) error {
	m, err := memmodel.ByName(model)
	if err != nil {
		return err
	}
	ctx, cancel := newCtx()
	defer cancel()
	rep, err := core.CheckRobustness(p, m, core.Options{Context: ctx})
	if err != nil {
		return err
	}
	if rep.Robust {
		if rep.Interrupted {
			fmt.Fprintf(out, "  robustness against %s INTERRUPTED (partial: %d executions, all SC so far)\n", model, rep.Executions)
			return nil
		}
		fmt.Fprintf(out, "  robust against %s: every execution is sequentially consistent\n", model)
	} else {
		fmt.Fprintf(out, "  NOT robust against %s: %d of %d executions are non-SC; witness:\n%s",
			model, rep.NonSC, rep.Executions, rep.Witness.StringNamed(p.LocName))
	}
	return nil
}

func reportLiveness(out io.Writer, p *prog.Program, model string, newCtx func() (context.Context, context.CancelFunc)) error {
	m, err := memmodel.ByName(model)
	if err != nil {
		return err
	}
	ctx, cancel := newCtx()
	defer cancel()
	rep, err := core.CheckLiveness(p, m, core.Options{Context: ctx})
	if err != nil {
		return err
	}
	if rep.Live() {
		if rep.Interrupted {
			fmt.Fprintf(out, "  liveness under %s INTERRUPTED (partial: no deadlock in %d blocked executions so far)\n",
				model, rep.BlockedExecutions)
			return nil
		}
		fmt.Fprintf(out, "  live under %s: %d blocked executions, all schedulable away (%d fairness, %d bound)\n",
			model, rep.BlockedExecutions, rep.FairnessBlocks, rep.BoundBlocks)
		return nil
	}
	for _, pb := range rep.PermanentBlocks {
		fmt.Fprintf(out, "  DEADLOCK under %s: %v; witness:\n%s", model, pb, pb.Witness.StringNamed(p.LocName))
	}
	return nil
}

// checkBackend answers one model through the backend interface: a single
// alternate engine, or the portfolio racing every applicable one.
func checkBackend(out io.Writer, p *prog.Program, model, name string, maxExec, maxEvents int, memBudget int64, workers int, symm, stats bool, newCtx func() (context.Context, context.CancelFunc)) error {
	spec := backend.Spec{
		Model:         model,
		MaxExecutions: maxExec,
		MaxEvents:     maxEvents,
		MemoryBudget:  memBudget,
		Workers:       workers,
		Symmetry:      symm,
	}
	ctx, cancel := newCtx()
	defer cancel()
	if name == "portfolio" {
		pf := backend.NewPortfolio(backend.PortfolioOptions{})
		res, err := pf.Run(ctx, p, spec)
		if err != nil {
			return err
		}
		printVerdict(out, p, model, res.Verdict)
		if stats || res.Disagreement != nil {
			for _, att := range res.Attempts {
				line := fmt.Sprintf("  %-11s %-9s", att.Backend, att.Status)
				if att.Verdict != nil {
					line += fmt.Sprintf(" digest=%s execs=%d", att.Verdict.OutcomeDigest, att.Verdict.Executions)
				}
				if att.Reason != "" {
					line += " (" + att.Reason + ")"
				}
				fmt.Fprintln(out, line)
			}
		}
		if d := res.Disagreement; d != nil {
			return fmt.Errorf("BACKEND DISAGREEMENT (%s vs %s): %s", d.Winner.Backend, d.Dissenter.Backend, d.Diff)
		}
		return nil
	}
	b, err := backend.ByName(name)
	if err != nil {
		return err
	}
	if err := b.Applicable(p, spec); err != nil {
		return err
	}
	v, err := b.Run(ctx, p, spec)
	if err != nil {
		return err
	}
	printVerdict(out, p, model, v)
	return nil
}

// printVerdict renders a normalized backend verdict in the spirit of the
// classic check line.
func printVerdict(out io.Writer, p *prog.Program, model string, v *backend.Verdict) {
	if v == nil {
		fmt.Fprintf(out, "%-16s model=%-8s no verdict\n", p.Name, model)
		return
	}
	status := "forbidden"
	if v.Allowed {
		status = "ALLOWED"
	}
	if !v.Exhaustive && !v.Allowed {
		status = "not observed (INCONCLUSIVE)"
	}
	line := fmt.Sprintf("%-16s model=%-8s backend=%-11s executions=%-6d weak outcome [%s]: %s",
		p.Name, model, v.Backend, v.Executions, p.ExistsDesc, status)
	switch {
	case v.Interrupted:
		line += " INTERRUPTED (partial)"
	case !v.Exhaustive:
		line += fmt.Sprintf(" (truncated: %s)", v.TruncatedReason)
	}
	line += fmt.Sprintf(" digest=%s", v.OutcomeDigest)
	fmt.Fprintln(out, line)
	if v.Assertion == backend.Fail {
		for _, msg := range v.AssertionErrors {
			fmt.Fprintf(out, "  assertion failure: %s\n", msg)
		}
	}
}

// repro replays an artifact written by the hmcd service: a crash artifact
// re-runs the exploration that panicked and reports whether the panic
// reproduces; a quarantine (backend-disagreement) artifact re-runs both
// disagreeing backends and reports whether they still split. Exit status
// is success either way for crashes — "no longer reproduces" is a useful
// answer, not a failure — but a still-standing disagreement exits non-zero
// exactly like the service's quarantined job state.
func repro(out io.Writer, path string) error {
	if service.IsQuarantineArtifact(path) {
		return reproQuarantine(out, path)
	}
	a, err := service.LoadCrashArtifact(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replaying %s: job %s, program %q (fingerprint %.12s), model %s\n",
		path, a.JobID, a.Program, a.Fingerprint, a.Model)
	fmt.Fprintf(out, "recorded panic: %s\n", a.Panic)
	p, err := a.BuildProgram()
	if err != nil {
		return fmt.Errorf("%w\nprogram dump (not replayable):\n%s", err, a.ProgramDump)
	}
	m, err := memmodel.ByName(a.Model)
	if err != nil {
		return err
	}
	res, err := core.Explore(p, core.Options{
		Model:         m,
		MaxExecutions: a.MaxExecutions,
		MaxEvents:     a.MaxEvents,
		MemoryBudget:  a.MemoryBudget,
		Workers:       a.Workers,
		Symmetry:      a.Symmetry,
	})
	if ee, ok := core.AsEngineError(err); ok {
		fmt.Fprintf(out, "REPRODUCED: engine panic during %s: %v\n%s", ee.Op, ee.PanicValue, ee.Stack)
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "NOT REPRODUCED: exploration completed cleanly (%d executions, %d blocked)\n",
		res.Executions, res.Blocked)
	return nil
}

// reproQuarantine replays a backend-disagreement artifact: rebuild the
// disputed program and re-run the two backends that split. Both verdicts
// print either way; agreement on the re-run suggests a since-fixed (or
// non-deterministic — worse) engine bug, while a reproduced disagreement
// exits non-zero.
func reproQuarantine(out io.Writer, path string) error {
	a, err := service.LoadQuarantineArtifact(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replaying %s: job %s, program %q (fingerprint %.12s), model %s\n",
		path, a.JobID, a.Program, a.Fingerprint, a.Model)
	fmt.Fprintf(out, "recorded disagreement: %s (winner %s, dissenter %s)\n",
		a.Diff, a.Winner.Backend, a.Dissenter.Backend)
	p, err := a.BuildProgram()
	if err != nil {
		return fmt.Errorf("%w\nprogram dump (not replayable):\n%s", err, a.ProgramDump)
	}
	spec := backend.Spec{Model: a.Model}
	verdicts := make([]*backend.Verdict, 0, 2)
	for _, name := range []string{a.Winner.Backend, a.Dissenter.Backend} {
		b, err := backend.ByName(name)
		if err != nil {
			return err
		}
		if err := b.Applicable(p, spec); err != nil {
			return fmt.Errorf("backend %s no longer applicable: %w", name, err)
		}
		v, err := b.Run(context.Background(), p, spec)
		if err != nil {
			return fmt.Errorf("backend %s: %w", name, err)
		}
		printVerdict(out, p, a.Model, v)
		verdicts = append(verdicts, v)
	}
	if diff := backend.Diff(verdicts[0], verdicts[1]); diff != "" {
		return fmt.Errorf("REPRODUCED: backends still disagree: %s", diff)
	}
	fmt.Fprintln(out, "NOT REPRODUCED: both backends now agree")
	return nil
}

// loadProgram resolves the program plus its wire identity — the litmus
// source text or the corpus test name — which peer legs need to rebuild
// the program on the far side.
func loadProgram(args []string, testName string) (*prog.Program, string, string, error) {
	if testName != "" {
		tc, ok := litmus.ByName(testName)
		if !ok {
			return nil, "", "", fmt.Errorf("unknown corpus test %q (see hmc-litmus for the list)", testName)
		}
		return tc.P, "", testName, nil
	}
	if len(args) != 1 {
		return nil, "", "", fmt.Errorf("want exactly one litmus file (or '-' for stdin), or -test <name>")
	}
	var src []byte
	var err error
	if args[0] == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(args[0])
	}
	if err != nil {
		return nil, "", "", err
	}
	p, err := litmus.Parse(string(src))
	if err != nil {
		return nil, "", "", err
	}
	return p, string(src), "", nil
}

// ckptConfig carries the -checkpoint/-resume flags into check.
type ckptConfig struct {
	path   string // write checkpoints here ("" disables)
	every  int    // executions between periodic checkpoints
	resume string // resume from this checkpoint file ("" disables)
}

// obsConfig carries the -progress/-trace flags into check.
type obsConfig struct {
	progress bool          // live stderr ticker
	every    time.Duration // ticker cadence
	trace    string        // JSONL trace path ("" disables)
}

// peerConfig carries the -peers flag into check: hmcd daemons that serve
// shard legs, plus the program's wire identity (litmus source or corpus
// test name) so the peers can rebuild it.
type peerConfig struct {
	urls   []string
	source string
	test   string
}

// progressTicker renders one snapshot as a stderr line. The ETA comes
// from a quick silent Estimate run before exploration; it is an upper
// bound (see core.Estimate), so it shrinks rather than grows.
func progressTicker(snap obs.ProgressSnapshot) {
	if snap.Final {
		return // the verdict line follows immediately; no ticker needed
	}
	line := fmt.Sprintf("progress: wave=%d execs=%d (%.0f/s) blocked=%d states=%d memo-hits=%d revisits=%d/%d",
		snap.Wave, snap.Executions, snap.ExecsPerSec, snap.Blocked,
		snap.States, snap.MemoHits, snap.RevisitsTaken, snap.RevisitsTried)
	if snap.ETA > 0 {
		line += fmt.Sprintf(" eta~%s", snap.ETA.Round(100*time.Millisecond))
	}
	fmt.Fprintln(progressOut, line)
}

// writeCheckpointFile writes cp atomically (temp file + rename): a crash
// mid-write leaves the previous checkpoint intact, never a torn one.
func writeCheckpointFile(path string, cp *core.Checkpoint) error {
	data, err := cp.Encode()
	if err != nil {
		return err
	}
	tmp := fmt.Sprintf("%s.tmp.%d", path, os.Getpid())
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func check(out io.Writer, p *prog.Program, model string, verbose bool, maxExec, maxEvents int, memBudget int64, dotPath string, workers, shards int, symm, static, checkDeps, stats bool, ck ckptConfig, ob obsConfig, pc peerConfig, newCtx func() (context.Context, context.CancelFunc)) error {
	m, err := memmodel.ByName(model)
	if err != nil {
		return err
	}
	ctx, cancel := newCtx()
	defer cancel()
	opts := core.Options{Model: m, Context: ctx, MaxExecutions: maxExec, MaxEvents: maxEvents, MemoryBudget: memBudget, Workers: workers, Symmetry: symm, StaticAnalysis: static, CheckDeps: checkDeps}
	var tracer *obs.Tracer
	var traceFile *os.File
	if ob.trace != "" {
		traceFile, err = os.Create(ob.trace)
		if err != nil {
			return err
		}
		tracer = obs.NewTracer(traceFile)
		opts.Trace = tracer
	}
	if ob.progress {
		// A quick silent probe run seeds the ETA; its failure modes (panic
		// boundary, over-count on revisit-heavy spaces) cost nothing here —
		// a zero estimate just means the ticker shows no ETA.
		est := 0.0
		if er, eerr := core.Estimate(p, core.Options{Model: m}, 64, 1); eerr == nil {
			est = er.Mean
		}
		opts.Progress = &core.ProgressOptions{
			Every:        ob.every,
			EstimateMean: est,
			Sink:         progressTicker,
		}
	}
	if ck.resume != "" {
		data, err := os.ReadFile(ck.resume)
		if err != nil {
			return err
		}
		cp, err := core.DecodeCheckpoint(data)
		if err != nil {
			return fmt.Errorf("resume %s: %w", ck.resume, err)
		}
		opts.ResumeFrom = cp
		fmt.Fprintf(out, "resuming from %s (%d executions already explored)\n", ck.resume, cp.Stats.Executions)
	}
	if ck.path != "" {
		opts.Checkpoint = &core.CheckpointOptions{
			EveryExecs: ck.every,
			Sink: func(cp *core.Checkpoint) {
				writeCheckpointFile(ck.path, cp) //nolint:errcheck // periodic snapshot: next one retries
			},
		}
	}
	var witness *eg.Graph
	witnessWeak := false
	if len(pc.urls) == 0 {
		// Witness capture is an in-process callback; peer legs cannot carry
		// it (run() already rejects -v/-dot with -peers).
		opts.OnExecution = func(g *eg.Graph, fsv prog.FinalState) {
			if verbose {
				fmt.Fprintf(out, "--- execution (mem=%v)\n%s", fsv.Mem, g.StringNamed(p.LocName))
			}
			weak := p.Exists != nil && p.Exists(fsv)
			if witness == nil || (weak && !witnessWeak) {
				witness = g.Clone()
				witnessWeak = weak
			}
		}
	}
	var res *core.Result
	var steals, retries int
	var pool *shard.Pool
	if shards > 1 {
		so := shard.Options{
			Shards:  shards,
			Core:    opts,
			OnSteal: func() { steals++ },
			OnRetry: func() { retries++ },
		}
		if len(pc.urls) > 0 {
			pool = shard.NewPool(pc.urls, shard.PoolConfig{})
			pool.Start()
			defer pool.Close()
			so.Runners = pool.Runners()
			so.Source = pc.source
			so.Test = pc.test
			so.PeerStatus = pool.Snapshot
		}
		// The coordinator owns checkpointing and progress for the whole
		// fleet: reroute the flags to its merged-snapshot hooks so the
		// files and ticker lines look exactly like the single-shard ones.
		if opts.Checkpoint != nil {
			so.CheckpointSink = opts.Checkpoint.Sink
			so.CheckpointEveryExecs = opts.Checkpoint.EveryExecs
			so.Core.Checkpoint = nil
		}
		if opts.Progress != nil {
			so.OnProgress = opts.Progress.Sink
			so.ProgressEvery = opts.Progress.Every
			so.Core.Progress = nil
		}
		res, err = shard.Explore(p, so)
	} else {
		res, err = core.Explore(p, opts)
	}
	if traceFile != nil {
		cerr := traceFile.Close()
		switch {
		case tracer.Err() != nil:
			fmt.Fprintf(out, "warning: trace %s truncated: %v\n", ob.trace, tracer.Err())
		case cerr != nil:
			fmt.Fprintf(out, "warning: trace %s: %v\n", ob.trace, cerr)
		default:
			fmt.Fprintf(out, "trace written to %s (%d events)\n", ob.trace, tracer.Events())
		}
	}
	if err != nil {
		return err
	}
	if ck.path != "" {
		if res.Checkpoint != nil {
			// Interrupted or truncated: persist the final frontier so the
			// run can be picked up exactly where it stopped.
			if err := writeCheckpointFile(ck.path, res.Checkpoint); err != nil {
				return err
			}
			fmt.Fprintf(out, "checkpoint written to %s (continue with -resume %s)\n", ck.path, ck.path)
		} else if err := os.Remove(ck.path); err == nil {
			// Completed: a periodic snapshot would only resume into work
			// already done, so retire it.
			fmt.Fprintf(out, "exploration complete; checkpoint %s removed\n", ck.path)
		}
	}
	if dotPath != "" && witness != nil {
		f, err := os.Create(dotPath)
		if err != nil {
			return err
		}
		if err := witness.WriteDot(f, p.LocName); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "witness written to %s (weak outcome: %v)\n", dotPath, witnessWeak)
	}
	if res.Interrupted {
		// Partial counts must not read like a verdict: an interrupted run
		// proves only what it observed (a weak outcome it did find is
		// real; "forbidden" would be unfounded).
		verdict := "not observed (INCONCLUSIVE)"
		if res.ExistsCount > 0 {
			verdict = "ALLOWED"
		}
		fmt.Fprintf(out, "%-16s model=%-8s INTERRUPTED (partial: %d executions, %d blocked) weak outcome [%s]: %s\n",
			p.Name, model, res.Executions, res.Blocked, p.ExistsDesc, verdict)
	} else {
		status := "forbidden"
		if res.ExistsCount > 0 {
			status = "ALLOWED"
		}
		fmt.Fprintf(out, "%-16s model=%-8s executions=%-6d blocked=%-4d weak outcome [%s]: %s",
			p.Name, model, res.Executions, res.Blocked, p.ExistsDesc, status)
		if res.Truncated {
			if res.TruncatedReason != "" {
				fmt.Fprintf(out, " (truncated: %s)", res.TruncatedReason)
			} else {
				fmt.Fprint(out, " (truncated)")
			}
		}
		fmt.Fprintln(out)
	}
	if stats {
		fmt.Fprintf(out, "  states=%d memo-hits=%d consistency-checks=%d revisits=%d/%d (taken/tried) repair-fails=%d max-graph=%d\n",
			res.States, res.MemoHits, res.ConsistencyChecks,
			res.RevisitsTaken, res.RevisitsTried, res.RevisitsRepairFail, res.MaxGraphEvents)
		if static {
			fmt.Fprintf(out, "  static-pruned: rf=%d co=%d revisit-scans=%d\n",
				res.StaticPrunedRf, res.StaticPrunedCo, res.StaticPrunedScans)
		}
		if shards > 1 {
			fmt.Fprintf(out, "  shards=%d steals=%d leg-retries=%d\n", shards, steals, retries)
		}
		if pool != nil {
			for _, pr := range pool.Snapshot() {
				fmt.Fprintf(out, "  peer %s healthy=%v breaker-open=%v legs=%d retries=%d hedges=%d demotions=%d\n",
					pr.Peer, pr.Healthy, pr.BreakerOpen, pr.Legs, pr.TransientRetries, pr.Hedges, pr.Demotions)
			}
		}
	}
	if checkDeps {
		if res.DepViolations == 0 {
			fmt.Fprintf(out, "  checkdeps: ok (all dynamic dependencies within static sets)\n")
		} else {
			fmt.Fprintf(out, "  CHECKDEPS: %d dynamic dependencies outside the static sets\n", res.DepViolations)
			for _, d := range res.DepViolationDetails {
				fmt.Fprintf(out, "    %s\n", d)
			}
		}
	}
	for _, e := range res.Errors {
		fmt.Fprintf(out, "assertion failure in thread %d: %s\nwitness:\n%s", e.Thread, e.Msg, e.Graph.StringNamed(p.LocName))
	}
	return nil
}
