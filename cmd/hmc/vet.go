package main

import (
	"flag"
	"fmt"
	"io"

	"hmc/internal/analyze"
	"hmc/internal/memmodel"
)

// vet implements the `hmc vet` subcommand: static analysis only, no
// exploration. Findings print one per line prefixed with the program
// label (file path or corpus test name), in the file:line style of go vet.
func vet(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hmc vet", flag.ContinueOnError)
	model := fs.String("model", "imm", "memory model for model-aware lints (fence effectiveness): "+fmt.Sprint(memmodel.Names()))
	all := fs.Bool("all", false, "lint under every model (union of findings)")
	testName := fs.String("test", "", "vet a built-in corpus test instead of a file")
	foot := fs.Bool("foot", false, "print the location footprint summary (readers/writers per location)")
	deps := fs.Bool("deps", false, "print per-instruction static dependency sets (addr/data/ctrl)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	label := *testName
	if label == "" && len(fs.Args()) == 1 {
		label = fs.Args()[0]
	}
	p, _, _, err := loadProgram(fs.Args(), *testName)
	if err != nil {
		// Parse and validation failures are themselves the vet verdict.
		return fmt.Errorf("vet: %w", err)
	}
	if label == "" || label == "-" {
		label = p.Name
	}

	models := []string{*model}
	if *all {
		models = memmodel.Names()
	}
	for _, name := range models {
		if _, merr := memmodel.ByName(name); merr != nil {
			return merr
		}
	}

	r := analyze.Analyze(p)
	seen := map[string]bool{}
	var fs2 []analyze.Finding
	for _, name := range models {
		for _, f := range r.Lint(name) {
			key := f.String()
			if !seen[key] {
				seen[key] = true
				fs2 = append(fs2, f)
			}
		}
	}

	counts := map[analyze.Severity]int{}
	for _, f := range fs2 {
		counts[f.Sev]++
		fmt.Fprintf(out, "%s:%s\n", label, f)
	}

	if *foot {
		fmt.Fprintf(out, "footprint:\n%s", r.Foot.Summary(p))
	}
	if *deps {
		for t := range p.Threads {
			for pc, in := range p.Threads[t] {
				d := r.Threads[t].Deps[pc]
				if len(d.Addr)+len(d.Data)+len(d.Ctrl) == 0 {
					continue
				}
				fmt.Fprintf(out, "t%d:%d: %v  deps addr=%v data=%v ctrl=%v\n", t, pc, in, d.Addr, d.Data, d.Ctrl)
			}
		}
	}

	total := len(fs2)
	if total == 0 {
		fmt.Fprintf(out, "%s: clean\n", label)
	} else {
		fmt.Fprintf(out, "%s: %d findings (%d error, %d warn, %d info)\n",
			label, total, counts[analyze.Error], counts[analyze.Warn], counts[analyze.Info])
	}
	if counts[analyze.Error] > 0 {
		return fmt.Errorf("vet: %s: %d error-severity findings", label, counts[analyze.Error])
	}
	return nil
}
