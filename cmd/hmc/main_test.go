package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBuiltinTest(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", "tso", "-test", "SB"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"SB", "model=tso", "executions=4", "ALLOWED"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunAllModels(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-all", "-test", "LB"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(out.String(), "\n")
	if lines != 8 {
		t.Errorf("expected one line per model (8), got %d:\n%s", lines, out.String())
	}
	if !strings.Contains(out.String(), "model=arm") {
		t.Error("arm model missing from -all output")
	}
}

func TestRunLitmusFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mp.lit")
	src := `
name MP
T0: W x 1 ; W y 1
T1: r0 = R y ; r1 = R x
exists T1:r0=1 & T1:r1=0
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-model", "imm", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ALLOWED") {
		t.Errorf("MP under imm must be allowed:\n%s", out.String())
	}
}

func TestRunDotWitness(t *testing.T) {
	dir := t.TempDir()
	dot := filepath.Join(dir, "w.dot")
	var out strings.Builder
	if err := run([]string{"-model", "imm", "-test", "MP", "-dot", dot}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph execution") {
		t.Error("dot file missing digraph header")
	}
	if !strings.Contains(out.String(), "weak outcome: true") {
		t.Errorf("witness note missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-test", "not-a-test"},
		{"-model", "not-a-model", "-test", "SB"},
		{},                           // no file
		{"/definitely/not/there"},    // unreadable file
		{"-test", "SB", "extra.lit"}, // -test takes precedence; extra args ignored
	}
	for i, args := range cases[:4] {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v): expected an error", i, args)
		}
	}
}

func TestRunMaxTruncates(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", "relaxed", "-test", "IRIW", "-max", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "executions=5") || !strings.Contains(out.String(), "(truncated: max-executions)") {
		t.Errorf("truncation not reported:\n%s", out.String())
	}
}

func TestRunMaxEventsTruncates(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", "sc", "-test", "IRIW", "-max-events", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(truncated: max-events)") {
		t.Errorf("event-cap truncation not reported:\n%s", out.String())
	}
}

func TestRunRepro(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crash.json")
	artifact := `{
  "schema": 1,
  "job_id": "job-1",
  "program": "MP",
  "fingerprint": "abc",
  "model": "imm",
  "source": "name MP\nT0: W x 1 ; W y 1\nT1: r0 = R y ; r1 = R x\nexists T1:r0=1 & T1:r1=0\n",
  "program_dump": "...",
  "attempts": 1,
  "panic": "synthetic panic for the test",
  "stack": "goroutine 1 [running]:"
}`
	if err := os.WriteFile(path, []byte(artifact), 0o644); err != nil {
		t.Fatal(err)
	}
	// MP is a healthy program: the replay completes cleanly and says so.
	var out strings.Builder
	if err := run([]string{"-repro", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"synthetic panic for the test", "model imm", "NOT REPRODUCED"} {
		if !strings.Contains(got, want) {
			t.Errorf("repro output missing %q:\n%s", want, got)
		}
	}

	// An artifact without source or test name cannot be replayed.
	bare := filepath.Join(dir, "bare.json")
	if err := os.WriteFile(bare, []byte(`{"schema":1,"job_id":"j","model":"sc","program_dump":"T0: ???","panic":"p"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-repro", bare}, &out); err == nil {
		t.Error("non-replayable artifact must error")
	}
	// A missing file errors too.
	if err := run([]string{"-repro", filepath.Join(dir, "nope.json")}, &out); err == nil {
		t.Error("missing artifact must error")
	}
	// An artifact from another engine schema is refused: replaying it
	// would exercise different exploration semantics than the crash.
	old := filepath.Join(dir, "old.json")
	if err := os.WriteFile(old, []byte(`{"schema":999,"job_id":"j","model":"imm","test":"MP","panic":"p"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-repro", old}, &out); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("old-schema artifact: err = %v, want schema rejection", err)
	}
}

func TestRunTimeoutInterrupts(t *testing.T) {
	// A 1ns budget is spent before exploration starts: the run must
	// report INTERRUPTED with its (empty) partial counts, not a verdict.
	var out strings.Builder
	if err := run([]string{"-model", "sc", "-test", "IRIW", "-timeout", "1ns"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "INTERRUPTED (partial: 0 executions") {
		t.Errorf("interruption not reported:\n%s", got)
	}
	if strings.Contains(got, "forbidden") {
		t.Errorf("an interrupted run must not claim a forbidden verdict:\n%s", got)
	}

	// A generous budget must leave the normal output untouched.
	out.Reset()
	if err := run([]string{"-model", "sc", "-test", "SB", "-timeout", "1m"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "executions=3") || strings.Contains(out.String(), "INTERRUPTED") {
		t.Errorf("in-budget run must report normally:\n%s", out.String())
	}
}

func TestRunTimeoutInterruptsAnalyses(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", "tso", "-test", "SB", "-timeout", "1ns", "-robust", "-live", "-races"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"robustness against tso INTERRUPTED",
		"liveness under tso INTERRUPTED",
		"race check INTERRUPTED",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

func TestRunVerbosePrintsExecutions(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", "sc", "-test", "SB", "-v"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "--- execution") != 3 {
		t.Errorf("want 3 execution dumps:\n%s", out.String())
	}
}

func TestRunParallelWorkers(t *testing.T) {
	var seq, par strings.Builder
	if err := run([]string{"-model", "arm", "-test", "IRIW"}, &seq); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", "arm", "-test", "IRIW", "-workers", "4"}, &par); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("parallel output differs from sequential:\n%s\nvs\n%s", seq.String(), par.String())
	}
}

func TestRunLiveness(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", "sc", "-test", "MP", "-live"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "live under sc") {
		t.Errorf("MP is live, output:\n%s", out.String())
	}
}

func TestRunSymmetry(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", "sc", "-test", "inc(2)", "-symm"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "executions=1") {
		t.Errorf("inc(2) has one orbit under -symm:\n%s", out.String())
	}
}

func TestRunEstimate(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", "tso", "-test", "SB", "-estimate", "200"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "estimate: ≈") {
		t.Errorf("estimate not reported:\n%s", out.String())
	}
	if strings.Contains(out.String(), "weak outcome") {
		t.Errorf("-estimate must skip exploration:\n%s", out.String())
	}
}

func TestRunStats(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", "imm", "-test", "LB", "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "states=") || !strings.Contains(out.String(), "revisits=") {
		t.Errorf("stats not printed:\n%s", out.String())
	}
}

// checkpointLeg runs the CLI once and returns its output.
func checkpointLeg(t *testing.T, args ...string) string {
	t.Helper()
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	return out.String()
}

// verdictLine extracts the verdict line (the one starting with the test
// name) so resumed and straight outputs can be compared exactly.
func verdictLine(t *testing.T, output, name string) string {
	t.Helper()
	for _, line := range strings.Split(output, "\n") {
		if strings.HasPrefix(line, name) {
			return line
		}
	}
	t.Fatalf("no verdict line for %s in:\n%s", name, output)
	return ""
}

// TestRunCheckpointResume: an interrupted run writes its frontier to the
// -checkpoint file; -resume completes it and prints exactly the verdict
// line of an uninterrupted run, then retires the spent checkpoint.
func TestRunCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")

	// Leg 1: a 1ns timeout interrupts IRIW (relaxed has far too many
	// executions to finish inside a nanosecond) and checkpoints.
	first := checkpointLeg(t, "-model", "relaxed", "-test", "IRIW", "-timeout", "1ns", "-checkpoint", ckpt)
	if !strings.Contains(first, "INTERRUPTED") || !strings.Contains(first, "checkpoint written to "+ckpt) {
		t.Fatalf("interrupted leg:\n%s", first)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}

	// Leg 2: resume to completion (no timeout).
	resumed := checkpointLeg(t, "-model", "relaxed", "-test", "IRIW", "-resume", ckpt, "-checkpoint", ckpt)
	if !strings.Contains(resumed, "resuming from "+ckpt) {
		t.Fatalf("resume not announced:\n%s", resumed)
	}
	if !strings.Contains(resumed, "checkpoint "+ckpt+" removed") {
		t.Fatalf("spent checkpoint not retired:\n%s", resumed)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatalf("checkpoint file still present after completion: %v", err)
	}

	// The resumed verdict line is byte-identical to a straight run's.
	straight := checkpointLeg(t, "-model", "relaxed", "-test", "IRIW")
	if got, want := verdictLine(t, resumed, "IRIW"), verdictLine(t, straight, "IRIW"); got != want {
		t.Fatalf("resumed verdict diverges:\nresumed:  %s\nstraight: %s", got, want)
	}
}

// TestRunCheckpointAtCap: a -max-truncated run checkpoints; resuming with
// the same bounds reports the identical (still truncated) verdict.
func TestRunCheckpointAtCap(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "cap.ckpt")
	first := checkpointLeg(t, "-model", "relaxed", "-test", "IRIW", "-max", "5", "-checkpoint", ckpt)
	if !strings.Contains(first, "(truncated: max-executions)") || !strings.Contains(first, "checkpoint written") {
		t.Fatalf("capped leg:\n%s", first)
	}
	resumed := checkpointLeg(t, "-model", "relaxed", "-test", "IRIW", "-max", "5", "-resume", ckpt)
	if got, want := verdictLine(t, resumed, "IRIW"), verdictLine(t, first, "IRIW"); got != want {
		t.Fatalf("resumed capped verdict diverges:\nresumed:  %s\nfirst:    %s", got, want)
	}
}

// TestRunResumeMismatch: a checkpoint resumed against a different test or
// model is refused, not silently merged.
func TestRunResumeMismatch(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sb.ckpt")
	checkpointLeg(t, "-model", "relaxed", "-test", "IRIW", "-max", "5", "-checkpoint", ckpt)
	var out strings.Builder
	err := run([]string{"-model", "relaxed", "-test", "LB", "-resume", ckpt}, &out)
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("wrong-program resume: err=%v", err)
	}
	err = run([]string{"-model", "sc", "-test", "IRIW", "-max", "5", "-resume", ckpt}, &out)
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("wrong-model resume: err=%v", err)
	}
}

// TestRunCheckpointRejectsAll: -checkpoint/-resume are single-model.
func TestRunCheckpointRejectsAll(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-all", "-test", "SB", "-checkpoint", filepath.Join(t.TempDir(), "x.ckpt")}, &out)
	if err == nil || !strings.Contains(err.Error(), "-all") {
		t.Fatalf("err = %v, want single-model rejection", err)
	}
}
