package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunProgressTicker: -progress prints ticker lines to the progress
// writer (stderr in production) while the verdict on stdout stays intact.
func TestRunProgressTicker(t *testing.T) {
	var ticks strings.Builder
	old := progressOut
	progressOut = &ticks
	defer func() { progressOut = old }()

	// A store storm (11550 sc interleavings) spans many 1ms cadences; a
	// corpus litmus test would finish before the first tick.
	dir := t.TempDir()
	path := filepath.Join(dir, "mw.lit")
	src := "name many-writes\n" +
		"T0: W x 1 ; W x 2 ; W x 3 ; W x 4\n" +
		"T1: W x 11 ; W x 12 ; W x 13 ; W x 14\n" +
		"T2: W x 21 ; W x 22 ; W x 23\n" +
		"exists x=4\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-model", "sc", "-progress", "-progress-every", "1ms", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "weak outcome") {
		t.Errorf("verdict line missing from stdout:\n%s", out.String())
	}
	if strings.Contains(out.String(), "progress:") {
		t.Error("ticker lines leaked onto stdout")
	}
	got := ticks.String()
	if n := strings.Count(got, "progress:"); n < 1 {
		t.Errorf("no ticker lines on the progress writer:\n%s", got)
	}
	for _, want := range []string{"execs=", "wave=", "states="} {
		if !strings.Contains(got, want) {
			t.Errorf("ticker missing %q:\n%s", want, got)
		}
	}
}

// TestRunTraceFile: -trace writes parseable JSONL whose snapshot/wave
// events exist, and stdout reports the event count.
func TestRunTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	var out strings.Builder
	if err := run([]string{"-model", "tso", "-test", "SB", "-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace written to "+path) {
		t.Errorf("trace report missing:\n%s", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	kinds := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line is not JSON: %v\n%s", err, sc.Text())
		}
		kinds[ev.Kind]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// SB under tso takes backward revisits; the trace must show them tried
	// and taken. (Wave events appear only when a drain actually happens —
	// progress or checkpointing — not in a plain run.)
	if kinds["revisit-tried"] == 0 || kinds["revisit-taken"] == 0 {
		t.Errorf("no revisit events in trace: %v", kinds)
	}
}
