package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVetBuiltinTest(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"vet", "-test", "SB"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"SB:t0:", "symmetry-candidate", "racy-pair", "3 findings"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestVetCleanFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mp.lit")
	src := `
name MP-cli
T0: W.rel x 1 ; W.rel y 1
T1: r0 = R.acq y ; r1 = R.acq x
exists T1:r0=1 & T1:r1=0
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"vet", "-foot", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, path+": clean") {
		t.Errorf("expected a clean verdict labelled with the file path:\n%s", got)
	}
	if !strings.Contains(got, "footprint:") || !strings.Contains(got, "single-writer") {
		t.Errorf("-foot output missing footprint summary:\n%s", got)
	}
}

func TestVetParseFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.lit")
	if err := os.WriteFile(path, []byte("T0: QUUX x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"vet", path}, &out); err == nil {
		t.Fatalf("vet of an unparsable file succeeded:\n%s", out.String())
	}
}

func TestVetAllModelsUnion(t *testing.T) {
	// An LW fence is a no-op under tso but not pso: -all must show the
	// model-specific finding for tso only.
	dir := t.TempDir()
	path := filepath.Join(dir, "f.lit")
	src := `
name fenced
T0: W x 1 ; F lw ; W y 1
T1: r0 = R y ; r1 = R x
exists T1:r0=1 & T1:r1=0
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"vet", "-all", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "under tso") {
		t.Errorf("-all output missing the tso useless-fence finding:\n%s", got)
	}
	if strings.Contains(got, "under pso") {
		t.Errorf("-all output flags the LW fence under pso, where it is effective:\n%s", got)
	}
}

func TestVetDepsOutput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"vet", "-deps", "-test", "LB+datas"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "deps addr=") {
		t.Errorf("-deps output missing dependency sets:\n%s", out.String())
	}
}

func TestRunStaticAndCheckDeps(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", "sc", "-static", "-checkdeps", "-stats", "-test", "MP"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"static-pruned:", "checkdeps: ok"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
