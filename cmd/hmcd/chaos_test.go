package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestRestartResilience is the chaos test for the durable daemon: it
// builds the real hmcd binary, SIGKILLs it mid-exploration — no graceful
// drain, no deferred flushes — restarts it on the same journal directory,
// and asserts the job completes from its last checkpoint instead of being
// lost or started over.
func TestRestartResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon; skipped in -short")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "hmcd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	journal := filepath.Join(dir, "journal")

	daemon, addr := startDaemon(t, bin, journal)

	// A store-only program with 11550 sc executions: several seconds of
	// exploration, checkpointed every 100 executions.
	submit := `{"model": "sc", "source": "name many-writes\nT0: W x 1 ; W x 2 ; W x 3 ; W x 4\nT1: W x 11 ; W x 12 ; W x 13 ; W x 14\nT2: W x 21 ; W x 22 ; W x 23\nexists x=4\n"}`
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", strings.NewReader(submit))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID string `json:"id"`
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &job); err != nil || job.ID == "" {
		t.Fatalf("submit response %s: %v", body, err)
	}

	// Wait for checkpoints to reach the journal, then SIGKILL.
	waitMetric(t, addr, "hmcd_journal_checkpoints_total", 2)
	if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemon.Wait() //nolint:errcheck // killed: the error is the point

	// Restart on the same journal; readiness gates on replay.
	daemon2, addr2 := startDaemon(t, bin, journal)
	defer func() {
		daemon2.Process.Signal(syscall.SIGKILL) //nolint:errcheck
		daemon2.Wait()                          //nolint:errcheck
	}()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get("http://" + addr2 + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted daemon never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The killed job must reappear under its old id, finish, and be
	// marked resumed — completion from the checkpoint, not from scratch.
	var done struct {
		State   string `json:"state"`
		Resumed bool   `json:"resumed"`
		Error   string `json:"error"`
		Result  *struct {
			Executions int  `json:"executions"`
			Truncated  bool `json:"truncated"`
			Exhaustive bool `json:"exhaustive"`
		} `json:"result"`
	}
	for {
		resp, err := http.Get("http://" + addr2 + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: status %d body %s", job.ID, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &done); err != nil {
			t.Fatalf("poll response %s: %v", body, err)
		}
		if done.State == "done" || done.State == "failed" || done.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed job never finished; last state %s", done.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if done.State != "done" || !done.Resumed {
		t.Fatalf("replayed job: state=%s resumed=%v err=%q, want done and resumed", done.State, done.Resumed, done.Error)
	}
	if done.Result == nil || !done.Result.Exhaustive || done.Result.Executions != 11550 {
		t.Fatalf("replayed result %+v, want exhaustive with 11550 executions", done.Result)
	}
	if saved := readMetric(t, addr2, "hmcd_resume_saved_execs_total"); saved < 100 {
		t.Fatalf("hmcd_resume_saved_execs_total = %d, want >= 100 (resume started from a checkpoint)", saved)
	}
}

// startDaemon launches bin with the given journal directory on an
// ephemeral port (plus any extra flags) and returns the process and its
// resolved address.
func startDaemon(t *testing.T, bin, journal string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-journal", journal,
		"-checkpoint-every", "100",
		"-crash-dir", filepath.Join(filepath.Dir(journal), "crashes"),
		"-timeout", "0"}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The first line reports the bound address:
	//   hmcd: listening on 127.0.0.1:PORT (...)
	sc := bufio.NewScanner(stdout)
	listenRE := regexp.MustCompile(`listening on (\S+)`)
	addrc := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				addrc <- m[1]
			}
			// Keep draining so the daemon never blocks on a full pipe.
		}
	}()
	select {
	case addr := <-addrc:
		return cmd, addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill() //nolint:errcheck
		t.Fatal("daemon never reported its address")
		return nil, ""
	}
}

// waitMetric polls /metrics until counter name reaches at least want.
func waitMetric(t *testing.T, addr, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		if readMetric(t, addr, name) >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("metric %s never reached %d", name, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// readMetric scrapes one counter value from /metrics.
func readMetric(t *testing.T, addr, name string) int64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return 0 // daemon mid-restart; caller keeps polling
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			t.Fatalf("metric %s: bad value in %q: %v", name, line, err)
		}
		return v
	}
	return 0
}
