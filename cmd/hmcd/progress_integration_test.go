package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestLiveProgressIntegration is the tentpole acceptance test at the
// daemon level: it builds the real hmcd binary, starts it with a fast
// snapshot cadence and a pprof listener, submits a multi-second
// exploration, and watches it live through GET /v1/jobs/{id}/progress —
// at least two distinct non-terminal snapshots must arrive before the
// verdict, counters monotone, and the final snapshot must agree with the
// result. The pprof surface must answer on its own private address.
func TestLiveProgressIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a real daemon; skipped in -short")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "hmcd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-pprof", "127.0.0.1:0",
		"-progress-every", "50ms",
		"-crash-dir", filepath.Join(dir, "crashes"),
		"-timeout", "0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGKILL) //nolint:errcheck
		cmd.Wait()                          //nolint:errcheck
	}()

	// The daemon reports both listeners on stdout before serving:
	//   hmcd: pprof on 127.0.0.1:PORT
	//   hmcd: listening on 127.0.0.1:PORT (...)
	addrc := make(chan string, 1)
	pprofc := make(chan string, 1)
	listenRE := regexp.MustCompile(`listening on (\S+)`)
	pprofRE := regexp.MustCompile(`pprof on (\S+)`)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := pprofRE.FindStringSubmatch(sc.Text()); m != nil {
				pprofc <- m[1]
			}
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				addrc <- m[1]
			}
			// Keep draining so the daemon never blocks on a full pipe.
		}
	}()
	var addr, pprofAddr string
	for addr == "" || pprofAddr == "" {
		select {
		case addr = <-addrc:
		case pprofAddr = <-pprofc:
		case <-time.After(30 * time.Second):
			t.Fatalf("daemon never reported its addresses (api=%q pprof=%q)", addr, pprofAddr)
		}
	}

	// The pprof index answers on the private listener, not the API one.
	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof reachable through the public API address")
	}

	// A store-only program with 11550 sc executions: seconds of
	// exploration, dozens of 50ms snapshot cadences.
	submit := `{"model": "sc", "source": "name many-writes\nT0: W x 1 ; W x 2 ; W x 3 ; W x 4\nT1: W x 11 ; W x 12 ; W x 13 ; W x 14\nT2: W x 21 ; W x 22 ; W x 23\nexists x=4\n"}`
	resp, err = http.Post("http://"+addr+"/v1/jobs", "application/json", strings.NewReader(submit))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID string `json:"id"`
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &job); err != nil || job.ID == "" {
		t.Fatalf("submit response %s: %v", body, err)
	}

	type snapshot struct {
		Seq        int   `json:"seq"`
		Executions int   `json:"executions"`
		Final      bool  `json:"final"`
		ElapsedNS  int64 `json:"elapsed_ns"`
	}
	var progress struct {
		State    string    `json:"state"`
		Progress *snapshot `json:"progress"`
		Job      *struct {
			Result *struct {
				Executions int `json:"executions"`
			} `json:"result"`
		} `json:"job"`
	}
	seq, nonFinal, lastExecs := 0, 0, 0
	var last *snapshot
	deadline := time.Now().Add(120 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job never finished (last snapshot %+v)", last)
		}
		resp, err := http.Get(fmt.Sprintf("http://%s/v1/jobs/%s/progress?seq=%d&wait=10s", addr, job.ID, seq))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/progress: status %d body %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &progress); err != nil {
			t.Fatalf("bad progress JSON: %v\n%s", err, body)
		}
		if s := progress.Progress; s != nil && s.Seq > seq {
			if s.Executions < lastExecs {
				t.Errorf("executions went backwards: %d after %d", s.Executions, lastExecs)
			}
			lastExecs = s.Executions
			seq = s.Seq
			cp := *s
			last = &cp
			if !s.Final {
				nonFinal++
			}
		}
		if progress.State == "done" || progress.State == "failed" || progress.State == "canceled" {
			break
		}
	}
	if progress.State != "done" {
		t.Fatalf("job ended %s", progress.State)
	}
	if nonFinal < 2 {
		t.Errorf("observed %d non-terminal snapshots before completion, want >= 2", nonFinal)
	}
	if last == nil || !last.Final {
		t.Fatalf("terminal response must carry the final snapshot, got %+v", last)
	}
	if progress.Job == nil || progress.Job.Result == nil || progress.Job.Result.Executions != 11550 {
		t.Fatalf("result %+v, want 11550 executions", progress.Job)
	}
	if last.Executions != 11550 {
		t.Errorf("final snapshot executions %d != 11550", last.Executions)
	}

	// The snapshot stream fed the exploration histograms.
	if v := readMetric(t, addr, "hmcd_job_exec_rate_count"); v != 1 {
		t.Errorf("hmcd_job_exec_rate_count = %d, want 1", v)
	}
	if v := readMetric(t, addr, "hmcd_wave_size_count"); v < 2 {
		t.Errorf("hmcd_wave_size_count = %d, want >= 2", v)
	}
}
