// Command hmcd is the model-checking daemon: a long-running HTTP service
// over the HMC explorer. Clients submit litmus tests (plain-text source
// or built-in corpus names), poll for verdicts, and scrape metrics;
// repeat submissions of an already-verified program are answered from a
// content-addressed verdict cache, and every job runs under its own
// deadline so one oversized exploration cannot wedge the service. Each
// accepted submission is also statically vetted (internal/analyze): the
// job payload carries a "diagnostics" list of advisory lint findings —
// useless fences under the chosen model, dead stores, vacuous
// assertions, and the like — without ever blocking the job.
//
// Usage:
//
//	hmcd [-addr :8433] [-queue 64] [-workers 2] [-cache 128]
//	     [-timeout 30s] [-max-timeout 5m]
//	     [-crash-dir hmcd-crashes] [-crash-max 32] [-retries 2]
//	     [-retry-backoff 50ms] [-breaker-threshold 3] [-breaker-cooldown 10m]
//	     [-progress-every 1s] [-pprof 127.0.0.1:6060]
//	     [-peers http://host1:8433,http://host2:8433]
//	     [-peer-probe-every 5s] [-peer-timeout 0] [-peer-hedge-after 0]
//	     [-chaos-plan plan.json]
//	     [-portfolio] [-portfolio-timeout 30s] [-portfolio-grace 0]
//	     [-quarantine-dir hmcd-quarantine] [-quarantine-max 32]
//
// Fault containment: an engine panic fails only its own job — the panic
// is recovered into a structured engine_error on the job payload and a
// replayable crash artifact under -crash-dir (replay with `hmc -repro`);
// a program that repeatedly crashes the engine trips a per-fingerprint
// circuit breaker, and memory-budget truncations are retried with backoff.
//
// Endpoints (see internal/service for the full API):
//
//	POST   /v1/jobs               {"source": "...", "model": "imm", "timeout_ms": 5000}
//	GET    /v1/jobs/{id}          poll status, result and live progress
//	GET    /v1/jobs/{id}/progress long-poll progress snapshots (?seq=N&wait=5s)
//	DELETE /v1/jobs/{id}          cancel
//	POST   /v1/shards             execute one shard leg for a peer coordinator
//	GET    /v1/models    GET /v1/tests    GET /healthz    GET /metrics
//
// Verdict portfolio: with -portfolio, every unsharded job is raced across
// all applicable backends (the DFS anchor, the axiomatic enumerator, the
// operational store-buffer machines; see internal/backend). The anchor's
// result is still what the job serves, but the job payload gains a
// per-backend attestation trail and the winning verdict's outcome digest.
// If two exhaustive backends disagree, the job fails with the distinct
// "quarantined" state: neither verdict is served or cached, both are
// written to a replayable artifact under -quarantine-dir (replay with
// `hmc -repro`), hmcd_backend_disagreements_total is bumped, and the
// program's fingerprint trips toward the circuit breaker.
//
// Distributed exploration: a submission with "shards": N splits the
// frontier across N explorers. With -peers, shards beyond the first are
// round-robined across this daemon and its peers over POST /v1/shards.
// Peer legs run behind a resilience pool: active /readyz probes
// (-peer-probe-every), per-peer circuit breakers with half-open probes,
// bounded jittered retries on transient transport errors, optional
// hedged local copies for stragglers (-peer-hedge-after), and — as the
// last rung — demotion to local execution from the leg's untouched input
// checkpoint. A dark peer costs latency, never a leg and never a
// counter: merged totals stay byte-identical to a single-process run,
// even with every peer down. -chaos-plan (dev only) injects a
// deterministic fault plan into the peer transport and journal to
// rehearse exactly these failures.
//
// Observability: running jobs publish progress snapshots every
// -progress-every (counters, rates, sampled phase breakdown), served in
// job polls, the /progress long-poll and the /metrics histograms; -pprof
// serves net/http/pprof on a separate, private listener.
//
// SIGINT/SIGTERM drains gracefully: the listener stops, queued and
// running jobs get the drain grace period to finish, then are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hmc/internal/faultinject"
	"hmc/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "hmcd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is cancelled, then drains.
// ready, when non-nil, is called with the bound address once the listener
// is accepting (tests bind ":0" and need the resolved port).
func run(ctx context.Context, args []string, out io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("hmcd", flag.ContinueOnError)
	addr := fs.String("addr", ":8433", "listen address")
	queue := fs.Int("queue", 64, "job queue capacity (full queue rejects with 503)")
	workers := fs.Int("workers", 2, "jobs explored concurrently")
	cache := fs.Int("cache", 128, "verdict cache entries (negative disables)")
	defTimeout := fs.Duration("timeout", 30*time.Second, "default per-job deadline (0 = none)")
	maxTimeout := fs.Duration("max-timeout", 5*time.Minute, "cap on requested per-job deadlines (0 = none)")
	drainGrace := fs.Duration("drain", 10*time.Second, "shutdown grace before in-flight jobs are cancelled")
	crashDir := fs.String("crash-dir", "hmcd-crashes", "directory for engine-crash repro artifacts")
	crashMax := fs.Int("crash-max", 32, "max crash artifacts kept, oldest evicted (negative disables capture)")
	retries := fs.Int("retries", 2, "max exploration attempts after transient memory-budget truncation")
	retryBackoff := fs.Duration("retry-backoff", 50*time.Millisecond, "pause before retrying a memory-truncated job")
	breakerThreshold := fs.Int("breaker-threshold", 3, "engine crashes on one program before its submissions are rejected (negative disables)")
	breakerCooldown := fs.Duration("breaker-cooldown", 10*time.Minute, "how long a crash-looping program stays rejected")
	journalDir := fs.String("journal", "", "write-ahead journal directory; makes the daemon durable across restarts (empty disables)")
	journalMax := fs.Int64("journal-max-bytes", 4<<20, "journal file size before rotation/compaction")
	checkpointEvery := fs.Int("checkpoint-every", 2000, "executions between journaled exploration checkpoints")
	progressEvery := fs.Duration("progress-every", time.Second, "cadence of live job progress snapshots (negative disables)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this separate address (empty disables)")
	peers := fs.String("peers", "", "comma-separated base URLs of peer hmcd daemons that serve shard legs for multi-shard jobs (empty = all shards run locally)")
	peerProbeEvery := fs.Duration("peer-probe-every", 5*time.Second, "cadence of active /readyz probes against each peer (negative disables)")
	peerTimeout := fs.Duration("peer-timeout", 0, "per-attempt deadline for one peer shard leg (0 = none; overruns are retried, then run locally)")
	peerHedgeAfter := fs.Duration("peer-hedge-after", 0, "race a local copy of any peer leg still unfinished after this long (0 disables hedging)")
	chaosPlan := fs.String("chaos-plan", "", "dev only: JSON fault-injection plan (internal/faultinject) applied to peer HTTP and the journal")
	portfolio := fs.Bool("portfolio", false, "race every applicable backend per job and cross-attest verdicts; disagreements are quarantined, never served")
	portfolioTimeout := fs.Duration("portfolio-timeout", 30*time.Second, "per-run deadline for non-anchor portfolio backends")
	portfolioGrace := fs.Duration("portfolio-grace", 0, "how long losing backends keep cross-checking after a win (0 = default, negative cancels immediately)")
	quarantineDir := fs.String("quarantine-dir", "hmcd-quarantine", "directory for backend-disagreement repro artifacts")
	quarantineMax := fs.Int("quarantine-max", 32, "max quarantine artifacts kept, oldest evicted (negative disables capture)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var peerURLs []string
	for _, u := range strings.Split(*peers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			peerURLs = append(peerURLs, u)
		}
	}

	var plan *faultinject.Plan
	if *chaosPlan != "" {
		var err error
		if plan, err = faultinject.LoadPlan(*chaosPlan); err != nil {
			return fmt.Errorf("chaos plan: %w", err)
		}
		fmt.Fprintf(out, "hmcd: CHAOS PLAN %s active (seed %d) — dev harness, never production\n", *chaosPlan, plan.Seed)
	}

	svc, err := service.New(service.Config{
		QueueSize:            *queue,
		Workers:              *workers,
		CacheSize:            *cache,
		DefaultTimeout:       *defTimeout,
		MaxTimeout:           *maxTimeout,
		CrashDir:             *crashDir,
		MaxCrashArtifacts:    *crashMax,
		MaxAttempts:          *retries,
		RetryBackoff:         *retryBackoff,
		BreakerThreshold:     *breakerThreshold,
		BreakerCooldown:      *breakerCooldown,
		JournalDir:           *journalDir,
		JournalMaxBytes:      *journalMax,
		CheckpointEveryExecs: *checkpointEvery,
		ProgressEvery:        *progressEvery,
		Peers:                peerURLs,
		PeerProbeEvery:       *peerProbeEvery,
		PeerTimeout:          *peerTimeout,
		PeerHedgeAfter:       *peerHedgeAfter,
		ChaosPlan:            plan,

		Portfolio:               *portfolio,
		PortfolioBackendTimeout: *portfolioTimeout,
		PortfolioGrace:          *portfolioGrace,
		QuarantineDir:           *quarantineDir,
		MaxQuarantineArtifacts:  *quarantineMax,
	})
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}

	// pprof gets its own listener and mux so the profiling surface is never
	// reachable through the public API address — bind it to localhost (or a
	// firewalled port) independently of -addr. The explicit mux avoids the
	// net/http/pprof side effect of registering on http.DefaultServeMux.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Handler: pmux}
		defer psrv.Close()
		fmt.Fprintf(out, "hmcd: pprof on %s\n", pln.Addr())
		go psrv.Serve(pln) //nolint:errcheck // best-effort diagnostics listener
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Report the effective configuration: out-of-range flag values (zero
	// or negative workers/queue) are clamped by the service's defaults.
	eff := svc.Config()
	fmt.Fprintf(out, "hmcd: listening on %s (workers=%d queue=%d cache=%d timeout=%v)\n",
		ln.Addr(), eff.Workers, eff.QueueSize, eff.CacheSize, eff.DefaultTimeout)
	if *portfolio {
		fmt.Fprintf(out, "hmcd: portfolio on (backend timeout %v, quarantine dir %s)\n",
			eff.PortfolioBackendTimeout, eff.QuarantineDir)
	}
	if *journalDir != "" {
		// Replay runs in the background (watch /readyz); the verdict and
		// skipped-record counts are known synchronously at open.
		m := svc.Metrics()
		fmt.Fprintf(out, "hmcd: journal %s (verdicts=%d skipped=%d), replaying backlog\n",
			*journalDir, m.VerdictsReloaded.Load(), m.JournalSkippedRecords.Load())
	}
	if ready != nil {
		ready(ln.Addr().String())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(out, "hmcd: draining (grace %v)\n", *drainGrace)
	grace, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := srv.Shutdown(grace); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(out, "hmcd: http shutdown: %v\n", err)
	}
	if err := svc.Shutdown(grace); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintln(out, "hmcd: stopped")
	return nil
}
