package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestPeerDeathResilience is the chaos test for distributed sharding: a
// coordinator daemon farms one shard of a two-shard job out to a peer
// daemon over POST /v1/shards, the peer is SIGKILLed while that leg is
// provably in flight, and the job must still finish exhaustively with
// exactly the single-explorer execution count — the dead peer's leg is
// re-run locally from its untouched input checkpoint.
func TestPeerDeathResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real daemons; skipped in -short")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "hmcd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	peer, peerAddr := startDaemon(t, bin, filepath.Join(dir, "peer-journal"))
	peerDead := false
	defer func() {
		if !peerDead {
			peer.Process.Signal(syscall.SIGKILL) //nolint:errcheck
			peer.Wait()                          //nolint:errcheck
		}
	}()
	coord, coordAddr := startDaemon(t, bin, filepath.Join(dir, "coord-journal"),
		"-peers", "http://"+peerAddr)
	defer func() {
		coord.Process.Signal(syscall.SIGKILL) //nolint:errcheck
		coord.Wait()                          //nolint:errcheck
	}()

	// The same store-only program as TestRestartResilience: 11550 sc
	// executions, several seconds of exploration. With shards=2 and one
	// peer, shard 0 runs locally and shard 1 on the peer.
	submit := `{"model": "sc", "shards": 2, "source": "name many-writes\nT0: W x 1 ; W x 2 ; W x 3 ; W x 4\nT1: W x 11 ; W x 12 ; W x 13 ; W x 14\nT2: W x 21 ; W x 22 ; W x 23\nexists x=4\n"}`
	resp, err := http.Post("http://"+coordAddr+"/v1/jobs", "application/json", strings.NewReader(submit))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID string `json:"id"`
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &job); err != nil || job.ID == "" {
		t.Fatalf("submit response %s: %v", body, err)
	}

	// Kill the peer only once a leg is provably running on it — the
	// in-flight gauge is the proof — so the coordinator must recover from
	// a mid-leg death, not a before-the-first-byte connection refusal.
	waitMetric(t, peerAddr, "hmcd_shard_legs_active", 1)
	peerDead = true
	if err := peer.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	peer.Wait() //nolint:errcheck // killed: the error is the point

	var done struct {
		State  string `json:"state"`
		Error  string `json:"error"`
		Result *struct {
			Executions int  `json:"executions"`
			Truncated  bool `json:"truncated"`
			Exhaustive bool `json:"exhaustive"`
		} `json:"result"`
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get("http://" + coordAddr + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: status %d body %s", job.ID, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &done); err != nil {
			t.Fatalf("poll response %s: %v", body, err)
		}
		if done.State == "done" || done.State == "failed" || done.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished after peer death; last state %s", done.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if done.State != "done" {
		t.Fatalf("job after peer death: state=%s err=%q, want done", done.State, done.Error)
	}
	if done.Result == nil || !done.Result.Exhaustive || done.Result.Executions != 11550 {
		t.Fatalf("result after peer death %+v, want exhaustive with 11550 executions", done.Result)
	}
	// The dead peer's leg is re-run locally either by the peer pool
	// (transient retries exhausted → exactly-once demotion) or, if the
	// failure surfaced past the runner, by the coordinator's leg retry.
	retries := readMetric(t, coordAddr, "hmcd_shard_retries_total")
	demotions := readMetric(t, coordAddr, "hmcd_peer_demotions_total")
	if retries+demotions < 1 {
		t.Fatalf("hmcd_shard_retries_total = %d, hmcd_peer_demotions_total = %d, want the dead peer's leg re-run", retries, demotions)
	}
}
