package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestRunServesAndDrains boots the daemon on an ephemeral port, checks a
// couple of endpoints end-to-end over real TCP, and asserts the signal
// path (context cancellation) drains cleanly.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan string, 1)
	var out strings.Builder
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain", "2s"}, &out, func(a string) { addrc <- a })
	}()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-errc:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: status %d body %s", resp.StatusCode, body)
	}

	resp, err = http.Post(fmt.Sprintf("http://%s/v1/jobs", addr), "application/json",
		strings.NewReader(`{"test": "SB", "model": "tso"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("drain returned error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}
	if !strings.Contains(out.String(), "stopped") {
		t.Errorf("missing stopped line:\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, io.Discard, nil); err == nil {
		t.Fatal("expected a flag error")
	}
}
