package hmc_test

import (
	"fmt"

	"hmc"
)

// ExampleCheck verifies store buffering under two models: sequential
// consistency forbids the weak outcome, x86-TSO allows it.
func ExampleCheck() {
	b := hmc.NewProgram("SB")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, hmc.Const(1))
	r0 := t0.Load(y)
	t1 := b.Thread()
	t1.Store(y, hmc.Const(1))
	r1 := t1.Load(x)
	b.Exists("both read 0", func(fs hmc.FinalState) bool {
		return fs.Reg(0, r0) == 0 && fs.Reg(1, r1) == 0
	})
	p, _ := b.Build()

	for _, model := range []string{"sc", "tso"} {
		res, _ := hmc.Check(p, model)
		fmt.Printf("%s: %d executions, weak outcome observable: %v\n",
			model, res.Executions, res.ExistsCount > 0)
	}
	// Output:
	// sc: 3 executions, weak outcome observable: false
	// tso: 4 executions, weak outcome observable: true
}

// ExampleParseLitmus loads a test from the plain-text format, including
// C11-style memory-order annotations for the rc11 model.
func ExampleParseLitmus() {
	p, err := hmc.ParseLitmus(`
name MP+rel+acq
T0: W x 1 ; W.rel flag 1
T1: r0 = R.acq flag ; r1 = R x
exists T1:r0=1 & T1:r1=0
`)
	if err != nil {
		panic(err)
	}
	rc11, _ := hmc.Check(p, "rc11")
	hw, _ := hmc.Check(p, "imm")
	fmt.Printf("rc11 (annotations respected): %v\n", rc11.ExistsCount > 0)
	fmt.Printf("imm (hardware ignores them):  %v\n", hw.ExistsCount > 0)
	// Output:
	// rc11 (annotations respected): false
	// imm (hardware ignores them):  true
}

// ExampleExplore shows the witness callback: every consistent execution
// graph is delivered exactly once.
func ExampleExplore() {
	p, _ := hmc.ParseLitmus(`
T0: W x 1
T1: r = R x
exists T1:r=1
`)
	m, _ := hmc.ModelByName("sc")
	res, _ := hmc.Explore(p, hmc.Options{
		Model: m,
		OnExecution: func(g *hmc.Graph, fs hmc.FinalState) {
			fmt.Printf("execution with r=%d\n", fs.Reg(1, 0))
		},
	})
	fmt.Printf("total: %d\n", res.Executions)
	// Output:
	// execution with r=0
	// execution with r=1
	// total: 2
}

// ExampleCheckRobustness asks the practitioner's question: does this code
// behave sequentially consistently on weak hardware?
func ExampleCheckRobustness() {
	p, _ := hmc.ParseLitmus(`
name SB
T0: W x 1 ; r0 = R y
T1: W y 1 ; r1 = R x
`)
	rep, _ := hmc.CheckRobustness(p, "tso")
	fmt.Printf("robust=%v nonSC=%d of %d\n", rep.Robust, rep.NonSC, rep.Executions)
	// Output:
	// robust=false nonSC=1 of 4
}

// ExampleCheckLiveness finds a value that is awaited but never written.
func ExampleCheckLiveness() {
	p, _ := hmc.ParseLitmus(`
name stuck
T0: W x 1
T1: r0 = AWAIT x 2
`)
	rep, _ := hmc.CheckLiveness(p, "sc")
	fmt.Printf("live=%v deadlocked threads=%d\n", rep.Live(), len(rep.PermanentBlocks))
	// Output:
	// live=false deadlocked threads=1
}

// ExampleExplore_symmetry collapses the executions of identical threads
// into orbits: three interchangeable incrementing threads have 3! = 6
// RMW orders but a single orbit.
func ExampleExplore_symmetry() {
	b := hmc.NewProgram("counter")
	x := b.Loc("x")
	for i := 0; i < 3; i++ {
		t := b.Thread()
		t.FAdd(x, hmc.Const(1))
	}
	p, _ := b.Build()
	m, _ := hmc.ModelByName("sc")
	full, _ := hmc.Explore(p, hmc.Options{Model: m})
	sym, _ := hmc.Explore(p, hmc.Options{Model: m, Symmetry: true})
	fmt.Printf("executions=%d orbits=%d\n", full.Executions, sym.Executions)
	// Output:
	// executions=6 orbits=1
}

// ExampleEstimate probes the exploration cost before paying it.
func ExampleEstimate() {
	p, _ := hmc.ParseLitmus(`
name SB
T0: W x 1 ; r0 = R y
T1: W y 1 ; r1 = R x
`)
	est, _ := hmc.Estimate(p, "tso", 500, 1)
	fmt.Printf("estimated executions: %.0f\n", est.Mean)
	// Output:
	// estimated executions: 4
}
