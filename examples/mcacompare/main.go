// MCA compare: demonstrate the multi-copy-atomicity divide between
// hardware models. The same IRIW test — two independent writers, two
// readers whose loads are chained by an address dependency — is forbidden
// on ARMv8 (all observers see writes in one order) but allowed on
// POWER-style machines (IMM-lite), where a write may reach one reader
// before the other. The checker also prints the POWER-only witness.
//
// Run with:
//
//	go run ./examples/mcacompare
package main

import (
	"fmt"
	"log"

	"hmc"
)

// iriwAddr builds IRIW with an address dependency between each reader's
// loads (the xor-zero idiom: the second address computes to a constant
// but syntactically depends on the first load).
func iriwAddr() *hmc.Program {
	b := hmc.NewProgram("IRIW+addrs")
	x, y := b.Loc("x"), b.Loc("y")

	w1 := b.Thread()
	w1.Store(x, hmc.Const(1))
	w2 := b.Thread()
	w2.Store(y, hmc.Const(1))

	depAddr := func(on hmc.Reg, loc int64) *hmc.Expr {
		return hmc.Add(hmc.Mul(hmc.R(on), hmc.Const(0)), hmc.Const(loc))
	}

	r1 := b.Thread()
	r1x := r1.Load(x)
	r1y := r1.LoadAt(depAddr(r1x, int64(y)))
	r2 := b.Thread()
	r2y := r2.Load(y)
	r2x := r2.LoadAt(depAddr(r2y, int64(x)))

	b.Exists("readers disagree on the write order", func(fs hmc.FinalState) bool {
		return fs.Reg(2, r1x) == 1 && fs.Reg(2, r1y) == 0 &&
			fs.Reg(3, r2y) == 1 && fs.Reg(3, r2x) == 0
	})
	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	p := iriwAddr()
	fmt.Println("IRIW with address-dependent reader loads:")
	fmt.Println("  two writers store to x and y; reader A sees x=1 then y=0,")
	fmt.Println("  reader B sees y=1 then x=0 — they disagree on the order.")
	fmt.Println()

	for _, tc := range []struct{ model, machine string }{
		{"arm", "ARMv8-lite (multi-copy-atomic)"},
		{"imm", "IMM-lite / POWER (non-multi-copy-atomic)"},
	} {
		m, err := hmc.ModelByName(tc.model)
		if err != nil {
			log.Fatal(err)
		}
		var witness *hmc.Graph
		res, err := hmc.Explore(p, hmc.Options{
			Model: m,
			OnExecution: func(g *hmc.Graph, fs hmc.FinalState) {
				if witness == nil && p.Exists(fs) {
					witness = g.Clone()
				}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.ExistsCount > 0 {
			fmt.Printf("%s: OBSERVABLE (%d of %d executions)\n", tc.machine, res.ExistsCount, res.Executions)
			fmt.Printf("witness:\n%v\n", witness)
		} else {
			fmt.Printf("%s: forbidden (%d executions, the dependency chains plus\n", tc.machine, res.Executions)
			fmt.Println("multi-copy atomicity force a single global write order)")
			fmt.Println()
		}
	}
}
