// Litmusfile: load a test from the plain-text litmus format and check it
// under every model — the scripted counterpart of `cmd/hmc`.
//
// Run with:
//
//	go run ./examples/litmusfile
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	"hmc"
)

func main() {
	_, self, _, _ := runtime.Caller(0)
	src, err := os.ReadFile(filepath.Join(filepath.Dir(self), "mp.lit"))
	if err != nil {
		log.Fatal(err)
	}
	p, err := hmc.ParseLitmus(string(src))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p)
	for _, model := range hmc.Models() {
		res, err := hmc.Check(p, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s executions=%-3d weak outcome: %v\n",
			model, res.Executions, res.ExistsCount > 0)
	}
}
