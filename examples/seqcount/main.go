// Seqcount: verify a sequence-counter (seqlock-style) publication
// protocol with in-program assertions. The writer bumps a sequence
// number, updates a two-word payload, and bumps the sequence again; the
// reader snapshots the sequence, reads the payload, re-reads the
// sequence, and — only when it saw a stable even value — asserts the
// payload is consistent. Assertion failures come back with witness
// graphs, demonstrating error reporting on a realistic protocol.
//
// Run with:
//
//	go run ./examples/seqcount
package main

import (
	"fmt"
	"log"

	"hmc"
)

// seqcount builds one writer and one reader over a two-word payload
// protected by a sequence counter. With fences the protocol is sound on
// every model; without them the hardware model tears the payload.
func seqcount(withFences bool) *hmc.Program {
	name := "seqcount"
	if withFences {
		name += "+fences"
	}
	b := hmc.NewProgram(name)
	seq, a, bb := b.Loc("seq"), b.Loc("a"), b.Loc("b")

	w := b.Thread()
	w.Store(seq, hmc.Const(1)) // odd: write in progress
	if withFences {
		w.Fence(hmc.FenceFull)
	}
	w.Store(a, hmc.Const(7))
	w.Store(bb, hmc.Const(7))
	if withFences {
		w.Fence(hmc.FenceFull)
	}
	w.Store(seq, hmc.Const(2)) // even: payload published

	r := b.Thread()
	s1 := r.Load(seq)
	if withFences {
		r.Fence(hmc.FenceFull)
	}
	ra := r.Load(a)
	rb := r.Load(bb)
	if withFences {
		r.Fence(hmc.FenceFull)
	}
	s2 := r.Load(seq)
	// stable := s1 == s2 && s1 even
	stable := r.Mov(hmc.And(
		hmc.Eq(hmc.R(s1), hmc.R(s2)),
		hmc.Eq(hmc.And(hmc.R(s1), hmc.Const(1)), hmc.Const(0)),
	))
	// If the snapshot was stable, the payload must be consistent (both 0
	// or both 7).
	r.Assert(hmc.Or(
		hmc.Not(hmc.R(stable)),
		hmc.Eq(hmc.R(ra), hmc.R(rb)),
	), "stable snapshot saw a torn payload")

	b.Exists("reader accepted a snapshot", func(fs hmc.FinalState) bool {
		return fs.Reg(1, stable) == 1
	})
	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	for _, withFences := range []bool{false, true} {
		p := seqcount(withFences)
		fmt.Println(p.Name)
		for _, model := range []string{"sc", "tso", "imm"} {
			res, err := hmc.Check(p, model)
			if err != nil {
				log.Fatal(err)
			}
			if len(res.Errors) > 0 {
				fmt.Printf("  %-4s UNSOUND: %d torn snapshots; first witness:\n%v",
					model, len(res.Errors), res.Errors[0].Graph)
			} else {
				fmt.Printf("  %-4s verified: %d executions, %d accepted snapshots, no torn reads\n",
					model, res.Executions, res.ExistsCount)
			}
		}
		fmt.Println()
	}
}
