// Quickstart: build the message-passing litmus test with the library API
// and check it under every memory model. The output shows the core point
// of checking against *hardware* models: an algorithm that is correct
// under SC or even x86-TSO can still be broken on PSO- or ARM/POWER-like
// machines, and fences repair it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hmc"
)

// messagePassing builds MP: the writer publishes data then a flag; the
// reader polls the flag then reads the data. withFences inserts the
// release/acquire barriers.
func messagePassing(withFences bool) *hmc.Program {
	name := "MP"
	if withFences {
		name = "MP+fences"
	}
	b := hmc.NewProgram(name)
	data, flag := b.Loc("data"), b.Loc("flag")

	writer := b.Thread()
	writer.Store(data, hmc.Const(42))
	if withFences {
		writer.Fence(hmc.FenceLW) // order data before flag
	}
	writer.Store(flag, hmc.Const(1))

	reader := b.Thread()
	rf := reader.Load(flag)
	if withFences {
		reader.Fence(hmc.FenceLD) // order flag before data
	}
	rd := reader.Load(data)

	b.Exists("flag seen but data stale", func(fs hmc.FinalState) bool {
		return fs.Reg(1, rf) == 1 && fs.Reg(1, rd) == 0
	})
	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	for _, withFences := range []bool{false, true} {
		p := messagePassing(withFences)
		fmt.Printf("%s — weak outcome: %q\n", p.Name, p.ExistsDesc)
		for _, model := range hmc.Models() {
			res, err := hmc.Check(p, model)
			if err != nil {
				log.Fatal(err)
			}
			verdict := "forbidden"
			if res.ExistsCount > 0 {
				verdict = "OBSERVABLE"
			}
			fmt.Printf("  %-8s %-10s (%d consistent executions)\n", model, verdict, res.Executions)
		}
		fmt.Println()
	}
	fmt.Println("takeaway: plain MP is safe on x86 (tso) but broken on PSO and")
	fmt.Println("hardware models with relaxed ordering (imm); an lw/ld fence pair")
	fmt.Println("(or an address dependency on the reader) repairs it everywhere.")
}
