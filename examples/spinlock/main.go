// Spinlock: verify mutual exclusion of a test-and-set lock under weak
// memory. Each thread try-locks with an atomic exchange, increments a
// plain (non-atomic) shared counter in the critical section, and
// releases. The checker proves the counter safe under SC and x86-TSO,
// finds the lost-update bug under the dependency-ordered hardware model
// — printing a witness execution graph — and verifies the fenced version
// everywhere. This is the classic "your lock needs acquire/release
// barriers" lesson, mechanised.
//
// Run with:
//
//	go run ./examples/spinlock
package main

import (
	"fmt"
	"log"

	"hmc"
)

// spinlock builds n threads contending on a try-lock around a counter
// increment. When fence is nonzero it is inserted after acquiring and
// before releasing.
func spinlock(n int, fence hmc.FenceKind) *hmc.Program {
	name := fmt.Sprintf("spinlock(%d)", n)
	if fence != 0 {
		name += "+fences"
	}
	b := hmc.NewProgram(name)
	lock, counter := b.Loc("lock"), b.Loc("counter")
	acquired := make([]hmc.Reg, n)
	for i := 0; i < n; i++ {
		t := b.Thread()
		got := t.Xchg(lock, hmc.Const(1)) // try-lock: 0 means acquired
		ok := t.Mov(hmc.Eq(hmc.R(got), hmc.Const(0)))
		acquired[i] = ok
		skip := t.BranchFwd(hmc.Not(hmc.R(ok)))
		if fence != 0 {
			t.Fence(fence) // acquire barrier
		}
		v := t.Load(counter)
		t.Store(counter, hmc.Add(hmc.R(v), hmc.Const(1)))
		if fence != 0 {
			t.Fence(fence) // release barrier
		}
		t.Store(lock, hmc.Const(0)) // unlock
		t.Patch(skip)
	}
	b.Exists("counter lost an update", func(fs hmc.FinalState) bool {
		var want int64
		for i, a := range acquired {
			want += fs.Reg(i, a)
		}
		return fs.Mem[counter] != want
	})
	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	plain := spinlock(2, 0)
	fenced := spinlock(2, hmc.FenceFull)

	for _, p := range []*hmc.Program{plain, fenced} {
		fmt.Printf("%s\n", p.Name)
		for _, model := range []string{"sc", "tso", "pso", "imm"} {
			m, err := hmc.ModelByName(model)
			if err != nil {
				log.Fatal(err)
			}
			var witness *hmc.Graph
			res, err := hmc.Explore(p, hmc.Options{
				Model: m,
				OnExecution: func(g *hmc.Graph, fs hmc.FinalState) {
					if witness == nil && p.Exists(fs) {
						witness = g.Clone()
					}
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			if res.ExistsCount > 0 {
				fmt.Printf("  %-4s BROKEN: %d of %d executions lose an update\n",
					model, res.ExistsCount, res.Executions)
				if witness != nil {
					fmt.Printf("  witness execution:\n%v", witness)
					witness = nil
				}
			} else {
				fmt.Printf("  %-4s verified: all %d executions keep the counter exact\n",
					model, res.Executions)
			}
		}
		fmt.Println()
	}
}
