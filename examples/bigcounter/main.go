// Bigcounter: the workflow for checking a program that is almost too big
// to check — first *probe* the exploration cost (exact for store/load
// spaces, a loudly-flagged upper bound for revisit-heavy ones like this),
// then cut the space down with *symmetry reduction*, and only then run
// the full verification.
//
// The program is the classic lost-update suspect: n identical threads,
// each performing k atomic fetch-adds on one counter. Its execution count
// is the multinomial (nk)!/(k!)ⁿ — 2520 already at n=4, k=2 — but the
// threads are interchangeable, so symmetry reduction collapses the space
// by n! while provably preserving the verdict.
//
// Run with:
//
//	go run ./examples/bigcounter
package main

import (
	"fmt"
	"log"
	"time"

	"hmc"
)

// counter builds n threads × k atomic increments and asks whether the
// final count can be less than n·k (a lost update).
func counter(n, k int) *hmc.Program {
	b := hmc.NewProgram(fmt.Sprintf("counter(%d,%d)", n, k))
	x := b.Loc("x")
	for i := 0; i < n; i++ {
		t := b.Thread()
		for j := 0; j < k; j++ {
			t.FAdd(x, hmc.Const(1))
		}
	}
	want := int64(n * k)
	b.Exists("lost update", func(fs hmc.FinalState) bool {
		return fs.Mem[x] < want
	})
	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	const model = "tso"
	p := counter(4, 2)

	// Step 1: probe before exploring. For store/load programs the probe
	// mean nails the execution count; for RMW-heavy programs like this
	// one the unmemoized probe tree has many paths per execution, so the
	// estimate is a (possibly huge) upper bound and its spread explodes —
	// which is itself the signal: this state space is revisit-heavy,
	// reach for the reductions before running it raw.
	est, err := hmc.Estimate(p, model, 2000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 1 — estimate:   %v\n", est)
	if est.StdErr > est.Mean/4 {
		fmt.Printf("          (spread ≥ 25%% of the mean: treat as an upper bound and reduce first)\n")
	}

	// Step 2: exploit the symmetry. All four threads run identical code,
	// so executions come in orbits of up to 4! = 24 renamings; checking
	// one representative per orbit is sound for the symmetric verdict.
	start := time.Now()
	sym, err := hmc.Explore(p, mustOpts(model, true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 2 — symmetric:  %d orbits in %v (lost updates: %d)\n",
		sym.Executions, time.Since(start).Round(time.Millisecond), sym.ExistsCount)

	// Step 3: the full run, to show what the reduction saved.
	start = time.Now()
	full, err := hmc.Explore(p, mustOpts(model, false))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 3 — exhaustive: %d executions in %v (lost updates: %d)\n",
		full.Executions, time.Since(start).Round(time.Millisecond), full.ExistsCount)

	fmt.Println()
	fmt.Printf("the probes flagged a revisit-heavy space before any cost was paid,\n")
	fmt.Printf("and the %dx orbit collapse gave the same verdict as the exhaustive\n",
		full.Executions/sym.Executions)
	fmt.Printf("run: atomicity makes lost updates impossible under %s.\n", model)
}

func mustOpts(model string, symm bool) hmc.Options {
	m, err := hmc.ModelByName(model)
	if err != nil {
		log.Fatal(err)
	}
	return hmc.Options{Model: m, Symmetry: symm}
}
