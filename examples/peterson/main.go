// Peterson: a guided tour of every barrier Peterson's algorithm needs on
// weak hardware, discovered by model checking. The unfenced algorithm is
// correct under sequential consistency only; each weaker model exposes a
// different missing barrier:
//
//   - x86-TSO reorders the entry stores past the entry loads (store→load);
//   - PSO additionally commits flag and turn out of order (store→store);
//   - dependency-ordered hardware (arm/imm) additionally speculates the
//     critical section's loads past the await (acquire) and leaks its
//     stores past the unlock (release).
//
// Run with:
//
//	go run ./examples/peterson
package main

import (
	"fmt"
	"log"

	"hmc"
)

// fenceSpots selects which of the four barrier positions are filled.
type fenceSpots struct {
	entryWW bool // between flag := 1 and turn := other
	entryWR bool // between the entry stores and the await loads
	acquire bool // between the await and the critical section
	release bool // between the critical section and flag := 0
}

func peterson(spots fenceSpots) *hmc.Program {
	b := hmc.NewProgram("peterson")
	flags := []hmc.Loc{b.Loc("flag0"), b.Loc("flag1")}
	turn, counter := b.Loc("turn"), b.Loc("c")

	side := func(me int64) {
		t := b.Thread()
		t.Store(flags[me], hmc.Const(1))
		if spots.entryWW {
			t.Fence(hmc.FenceFull)
		}
		t.Store(turn, hmc.Const(1-me))
		if spots.entryWR {
			t.Fence(hmc.FenceFull)
		}
		of := t.Load(flags[1-me])
		tn := t.Load(turn)
		t.Assume(hmc.Or(
			hmc.Eq(hmc.R(of), hmc.Const(0)),
			hmc.Eq(hmc.R(tn), hmc.Const(me)),
		))
		if spots.acquire {
			t.Fence(hmc.FenceFull)
		}
		v := t.Load(counter)
		t.Store(counter, hmc.Add(hmc.R(v), hmc.Const(1)))
		if spots.release {
			t.Fence(hmc.FenceFull)
		}
		t.Store(flags[me], hmc.Const(0))
	}
	side(0)
	side(1)

	b.Exists("mutual exclusion violated", func(fs hmc.FinalState) bool {
		return fs.Mem[counter] != 2
	})
	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	steps := []struct {
		name  string
		spots fenceSpots
	}{
		{"no fences", fenceSpots{}},
		{"+ store->load (x86 fix)", fenceSpots{entryWR: true}},
		{"+ store->store (entry fenced)", fenceSpots{entryWR: true, entryWW: true}},
		{"+ acquire/release (hw fix)", fenceSpots{entryWR: true, entryWW: true, acquire: true, release: true}},
	}
	models := []string{"sc", "tso", "pso", "arm", "imm"}
	fmt.Printf("%-30s", "variant")
	for _, m := range models {
		fmt.Printf("  %-7s", m)
	}
	fmt.Println()
	for _, step := range steps {
		p := peterson(step.spots)
		fmt.Printf("%-30s", step.name)
		for _, model := range models {
			res, err := hmc.Check(p, model)
			if err != nil {
				log.Fatal(err)
			}
			status := "ok"
			if res.ExistsCount > 0 {
				status = "BROKEN"
			}
			fmt.Printf("  %-7s", status)
		}
		fmt.Println()
	}
	fmt.Println("\nPSO stays broken until the release fence lands: its second bug is")
	fmt.Println("the exit protocol (critical-section stores leaking past the unlock).")
	fmt.Println("each BROKEN->ok transition is one barrier the checker demanded;")
	fmt.Println("see internal/gen.Peterson for the annotated protocol.")
}
