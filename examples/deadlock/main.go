// Deadlock: find a lock-ordering deadlock with the liveness checker, then
// verify the classic fix (a global lock order) removes it.
//
// Two threads take two spin locks in opposite orders — the ABBA pattern.
// Most schedules complete, which is exactly why this bug survives testing:
// the deadlock needs both threads to win their first lock before either
// requests its second. Model checking enumerates that execution like any
// other, and CheckLiveness classifies it: every thread is either finished
// or spinning on the *final* value its awaited location will ever hold, so
// no scheduler can make progress. Blocked executions a fair scheduler
// would resolve (a spinner that merely saw a stale value) are counted
// separately and not reported.
//
// Run with:
//
//	go run ./examples/deadlock
package main

import (
	"fmt"
	"log"

	"hmc"
)

// lockPair builds two threads taking spin locks a and b. With abba, the
// second thread takes them in the opposite order.
func lockPair(abba bool) *hmc.Program {
	name := "lock-order"
	if abba {
		name = "abba"
	}
	b := hmc.NewProgram(name)
	la, lb := b.Loc("lockA"), b.Loc("lockB")

	side := func(first, second hmc.Loc) {
		t := b.Thread()
		t.AwaitEq(first, hmc.Const(0)) // spin until free
		t.Store(first, hmc.Const(1))   // take it
		t.AwaitEq(second, hmc.Const(0))
		t.Store(second, hmc.Const(1))
		t.Store(second, hmc.Const(0)) // release in reverse order
		t.Store(first, hmc.Const(0))
	}
	side(la, lb)
	if abba {
		side(lb, la)
	} else {
		side(la, lb)
	}
	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func report(p *hmc.Program, model string) {
	rep, err := hmc.CheckLiveness(p, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %-4s executions=%-3d blocked=%-3d fairness-only=%-3d ",
		p.Name, model, rep.Executions, rep.BlockedExecutions, rep.FairnessBlocks)
	if rep.Live() {
		fmt.Println("LIVE")
		return
	}
	fmt.Printf("DEADLOCK (%d threads block forever)\n", len(rep.PermanentBlocks))
	for _, pb := range rep.PermanentBlocks {
		fmt.Printf("  %v\n", pb)
	}
}

func main() {
	fmt.Println("--- opposite lock orders (ABBA)")
	for _, model := range []string{"sc", "tso", "arm"} {
		report(lockPair(true), model)
	}

	fmt.Println()
	fmt.Println("--- the fix: one global lock order")
	for _, model := range []string{"sc", "tso", "arm"} {
		report(lockPair(false), model)
	}

	fmt.Println()
	fmt.Println("The deadlock exists under every model — it is a scheduling bug,")
	fmt.Println("not a memory-model bug — and disappears once both threads agree")
	fmt.Println("on the acquisition order. Note the fairness-only blocks that")
	fmt.Println("remain: those are spinners a fair scheduler always rescues.")
}
