// Treiber: verify the publication safety of a Treiber-stack push/pop pair.
// The pusher initialises a node, links it, and publishes it with a CAS on
// the head pointer; the popper walks the head pointer with genuine
// address-dependent loads, unlinks with CAS, and asserts the payload it
// reads was initialised.
//
// On x86 (tso) the store buffer keeps the payload ahead of the
// publication, so the unfenced code is safe. On dependency-ordered
// hardware (imm) the payload store and the publishing CAS are unordered:
// the popper can observe the node before its contents — the canonical
// unpublished-node bug — which a release fence before the CAS repairs.
// (The pop side needs no fence at all: its loads are address-dependent on
// the head value, and hardware respects address dependencies.)
//
// Run with:
//
//	go run ./examples/treiber
package main

import (
	"fmt"
	"log"

	"hmc"
	"hmc/internal/gen"
)

func main() {
	for _, fence := range []hmc.FenceKind{0, hmc.FenceLW} {
		p := gen.TreiberPushPop(fence)
		fmt.Println(p.Name)
		for _, model := range []string{"sc", "tso", "arm", "imm"} {
			m, err := hmc.ModelByName(model)
			if err != nil {
				log.Fatal(err)
			}
			res, err := hmc.Explore(p, hmc.Options{Model: m})
			if err != nil {
				log.Fatal(err)
			}
			if len(res.Errors) > 0 {
				fmt.Printf("  %-4s UNSAFE: popped an unpublished node; witness:\n%v",
					model, res.Errors[0].Graph)
			} else {
				fmt.Printf("  %-4s safe (%d executions, %d with a successful pop)\n",
					model, res.Executions, res.ExistsCount)
			}
		}
		fmt.Println()
	}
}
