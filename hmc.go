// Package hmc is a model checker for hardware memory models: it verifies
// bounded concurrent programs directly against axiomatic memory
// consistency models — SC, x86-TSO, PSO, ARMv8-lite, release/acquire,
// plain coherence, and the POWER-flavoured hardware model IMM-lite — by
// enumerating execution graphs, in the style of HMC (Kokologiannakis &
// Vafeiadis, ASPLOS 2020).
//
// The checker is exhaustive and exact: every consistent execution graph of
// the program is visited exactly once (see DESIGN.md for the algorithm and
// its verification). Programs are written in a small litmus-style IR with
// loads, stores, atomic read-modify-writes, fences, branches and
// assertions; syntactic address/data/control dependencies are tracked
// automatically, which is what lets hardware models order (only) dependent
// accesses.
//
// Quick start:
//
//	b := hmc.NewProgram("MP")
//	x, y := b.Loc("x"), b.Loc("y")
//	t0 := b.Thread()
//	t0.Store(x, hmc.Const(1))
//	t0.Store(y, hmc.Const(1))
//	t1 := b.Thread()
//	ry := t1.Load(y)
//	rx := t1.Load(x)
//	b.Exists("ry=1 && rx=0", func(fs hmc.FinalState) bool {
//	    return fs.Reg(1, ry) == 1 && fs.Reg(1, rx) == 0
//	})
//	p, _ := b.Build()
//	res, _ := hmc.Check(p, "imm")
//	fmt.Println(res.ExistsCount > 0) // true: hardware allows stale reads
//
// Programs can also be written in a plain-text litmus format and loaded
// with ParseLitmus; the cmd/hmc command wraps this package for the
// command line, and cmd/hmc-bench regenerates the evaluation tables.
package hmc

import (
	"hmc/internal/core"
	"hmc/internal/eg"
	"hmc/internal/litmus"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// Re-exported core types. The aliases make the library usable without
// importing internal packages: a Program is built with Builder, checked
// with Explore or Check, and the outcome inspected through Result.
type (
	// Program is a bounded concurrent test case.
	Program = prog.Program
	// Builder assembles a Program; obtain one with NewProgram.
	Builder = prog.Builder
	// ThreadBuilder appends instructions to one thread.
	ThreadBuilder = prog.ThreadBuilder
	// Expr is an integer expression over thread-local registers.
	Expr = prog.Expr
	// Reg names a thread-local register.
	Reg = prog.Reg
	// Loc identifies a shared memory location (from Builder.Loc).
	Loc = eg.Loc
	// FinalState is the observable end state of a complete execution.
	FinalState = prog.FinalState
	// Model is an axiomatic memory consistency model.
	Model = memmodel.Model
	// Options configures an exploration (model, bounds, callbacks, and a
	// Context for cancellation/deadlines — a cancelled run returns its
	// partial Result with Interrupted set).
	Options = core.Options
	// Result aggregates an exploration (executions, verdict, errors,
	// Truncated/Interrupted partiality flags).
	Result = core.Result
	// Graph is an execution graph (exposed in witnesses and callbacks).
	Graph = eg.Graph
	// FenceKind selects a barrier strength (FenceFull, FenceLW, FenceLD).
	FenceKind = eg.FenceKind
)

// Fence kinds, mirroring hardware: full barrier (MFENCE/sync/DMB SY),
// lightweight store-ordering barrier (lwsync-like) and load-ordering
// barrier (DMB LD-like).
const (
	FenceFull = eg.FenceFull
	FenceLW   = eg.FenceLW
	FenceLD   = eg.FenceLD
)

// Expression constructors, re-exported for program building.
var (
	Const = prog.Const
	R     = prog.R
	Add   = prog.Add
	Sub   = prog.Sub
	Mul   = prog.Mul
	Xor   = prog.Xor
	And   = prog.And
	Or    = prog.Or
	Eq    = prog.Eq
	Ne    = prog.Ne
	Lt    = prog.Lt
	Le    = prog.Le
	Gt    = prog.Gt
	Ge    = prog.Ge
	Not   = prog.Not
)

// NewProgram returns a builder for a program with the given name.
func NewProgram(name string) *Builder { return prog.NewBuilder(name) }

// ParseLitmus parses a test in the plain-text litmus format (see
// internal/litmus.Parse for the grammar).
func ParseLitmus(src string) (*Program, error) { return litmus.Parse(src) }

// Models lists the available memory model names, strongest first:
// sc, tso, pso, arm, ra, relaxed, imm.
func Models() []string { return memmodel.Names() }

// ModelByName resolves a model name.
func ModelByName(name string) (Model, error) { return memmodel.ByName(name) }

// Explore model-checks p under opts, visiting every consistent execution
// exactly once.
func Explore(p *Program, opts Options) (*Result, error) { return core.Explore(p, opts) }

// EngineError is a contained engine failure: a panic anywhere in the
// exploration engine, recovered at the Explore/Estimate/Check* entry
// points and returned as a structured error (panic value, stack, program
// name and Fingerprint, model, stats at failure) instead of crashing the
// process. Check for it with AsEngineError or errors.As.
type EngineError = core.EngineError

// AsEngineError unwraps err to an *EngineError if one is in its chain.
var AsEngineError = core.AsEngineError

// Truncation reasons reported in Result.TruncatedReason when a resource
// budget (Options.MaxExecutions, MaxEvents, MemoryBudget) cut a run short.
const (
	TruncMaxExecutions = core.TruncMaxExecutions
	TruncMaxEvents     = core.TruncMaxEvents
	TruncMemoryBudget  = core.TruncMemoryBudget
)

// RobustnessReport describes whether a program exhibits any non-SC
// behaviour under a weak model (see CheckRobustness).
type RobustnessReport = core.RobustnessReport

// CheckRobustness reports whether p's executions under the named weak
// model coincide with its sequentially consistent executions. A robust
// program needs no weak-memory reasoning on that hardware; otherwise the
// report carries a witness execution exhibiting the reordering.
//
// An optional Options value supplies exploration bounds — MaxExecutions,
// Context (cancellation/deadline), Workers, Symmetry; its Model and
// callback fields are ignored. Bounded or cancelled runs mark the report
// Truncated/Interrupted.
func CheckRobustness(p *Program, model string, opts ...Options) (*RobustnessReport, error) {
	m, err := memmodel.ByName(model)
	if err != nil {
		return nil, err
	}
	return core.CheckRobustness(p, m, opts...)
}

// Race identifies a data race (see CheckRaces).
type Race = core.Race

// RaceReport is the outcome of CheckRaces.
type RaceReport = core.RaceReport

// CheckRaces explores p under the rc11 model and reports C11-style data
// races: conflicting plain (unannotated) accesses unordered by
// happens-before in some consistent execution. A racy program has
// undefined behaviour at the language level. Optional Options as in
// CheckRobustness.
func CheckRaces(p *Program, opts ...Options) (*RaceReport, error) {
	return core.CheckRaces(p, opts...)
}

// LivenessReport classifies a program's blocked executions (see
// CheckLiveness).
type LivenessReport = core.LivenessReport

// PermanentBlock identifies one thread that blocks forever in some
// execution (see CheckLiveness).
type PermanentBlock = core.PermanentBlock

// CheckLiveness explores p under the named model and reports liveness
// violations: executions in which no thread can ever move again — every
// thread is done or spinning on the final value its awaited location will
// ever hold. Blocked executions a fair scheduler would resolve (a spin
// read that merely saw a stale value) are counted but not reported as
// violations.
// Optional Options as in CheckRobustness.
func CheckLiveness(p *Program, model string, opts ...Options) (*LivenessReport, error) {
	m, err := memmodel.ByName(model)
	if err != nil {
		return nil, err
	}
	return core.CheckLiveness(p, m, opts...)
}

// EstimateResult summarizes a probe-based prediction of exploration cost
// (see Estimate).
type EstimateResult = core.EstimateResult

// Estimate predicts the number of complete executions of p under the
// named model by random probing (Knuth's tree-size estimator) instead of
// exhaustive exploration — the cheap first question to ask of a program
// that might be too big to check. Deterministic for a fixed seed; see
// core.Estimate for the bias discussion.
// Optional Options supply a Context (cancellation stops probing and
// marks the estimate Interrupted); the Model field is ignored.
func Estimate(p *Program, model string, samples int, seed int64, opts ...Options) (*EstimateResult, error) {
	m, err := memmodel.ByName(model)
	if err != nil {
		return nil, err
	}
	o := Options{}
	if len(opts) > 0 {
		o = opts[0]
	}
	o.Model = m
	return core.Estimate(p, o, samples, seed)
}

// Check is the convenience form of Explore: verify p under the named
// model with default options.
func Check(p *Program, model string) (*Result, error) {
	m, err := memmodel.ByName(model)
	if err != nil {
		return nil, err
	}
	return core.Explore(p, core.Options{Model: m})
}
