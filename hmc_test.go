package hmc_test

import (
	"testing"

	"hmc"
)

// TestQuickstart is the README example, kept compiling and honest.
func TestQuickstart(t *testing.T) {
	b := hmc.NewProgram("MP")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, hmc.Const(1))
	t0.Store(y, hmc.Const(1))
	t1 := b.Thread()
	ry := t1.Load(y)
	rx := t1.Load(x)
	b.Exists("ry=1 && rx=0", func(fs hmc.FinalState) bool {
		return fs.Reg(1, ry) == 1 && fs.Reg(1, rx) == 0
	})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	hw, err := hmc.Check(p, "imm")
	if err != nil {
		t.Fatal(err)
	}
	if hw.ExistsCount == 0 {
		t.Error("hardware model must admit stale message passing")
	}
	sc, err := hmc.Check(p, "sc")
	if err != nil {
		t.Fatal(err)
	}
	if sc.ExistsCount != 0 {
		t.Error("SC must forbid stale message passing")
	}
}

func TestParseLitmusFacade(t *testing.T) {
	p, err := hmc.ParseLitmus(`
name SB
T0: W x 1 ; r0 = R y
T1: W y 1 ; r1 = R x
exists T0:r0=0 & T1:r1=0
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hmc.Check(p, "tso")
	if err != nil {
		t.Fatal(err)
	}
	if res.ExistsCount == 0 || res.Executions != 4 {
		t.Errorf("SB under tso: exists=%d executions=%d", res.ExistsCount, res.Executions)
	}
}

func TestModelsRegistry(t *testing.T) {
	names := hmc.Models()
	if len(names) != 8 || names[0] != "sc" || names[len(names)-1] != "imm" {
		t.Fatalf("Models() = %v", names)
	}
	for _, n := range names {
		if _, err := hmc.ModelByName(n); err != nil {
			t.Errorf("ModelByName(%q): %v", n, err)
		}
	}
	if _, err := hmc.Check(&hmc.Program{}, "bogus"); err == nil {
		t.Error("Check with unknown model must fail")
	}
}

func TestExploreWithOptions(t *testing.T) {
	p, err := hmc.ParseLitmus(`
T0: W x 1
T1: r0 = R x
exists T1:r0=1
`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := hmc.ModelByName("sc")
	count := 0
	res, err := hmc.Explore(p, hmc.Options{
		Model:       m,
		OnExecution: func(g *hmc.Graph, fs hmc.FinalState) { count++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != res.Executions || count != 2 {
		t.Errorf("callback count %d, executions %d, want 2", count, res.Executions)
	}
}

// TestAnalysesFacade drives every analysis entry point through the public
// API on one small racy/non-robust program.
func TestAnalysesFacade(t *testing.T) {
	p, err := hmc.ParseLitmus(`
name SB
T0: W x 1 ; r0 = R y
T1: W y 1 ; r1 = R x
exists T0:r0=0 & T1:r1=0
`)
	if err != nil {
		t.Fatal(err)
	}

	rob, err := hmc.CheckRobustness(p, "tso")
	if err != nil {
		t.Fatal(err)
	}
	if rob.Robust || rob.NonSC != 1 || rob.Witness == nil {
		t.Errorf("SB is not robust on TSO (1 non-SC of 4): %+v", rob)
	}
	robSC, err := hmc.CheckRobustness(p, "sc")
	if err != nil {
		t.Fatal(err)
	}
	if !robSC.Robust {
		t.Error("every program is robust against sc itself")
	}

	races, err := hmc.CheckRaces(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(races.Races) == 0 {
		t.Error("plain-access SB races on both locations")
	}

	live, err := hmc.CheckLiveness(p, "tso")
	if err != nil {
		t.Fatal(err)
	}
	if !live.Live() || live.BlockedExecutions != 0 {
		t.Errorf("SB has no awaits and must be trivially live: %+v", live)
	}

	est, err := hmc.Estimate(p, "tso", 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean < 3 || est.Mean > 5 {
		t.Errorf("estimate for SB/tso (exact 4) out of range: %v", est)
	}
}

// TestFacadeErrors: unknown model names fail cleanly everywhere.
func TestFacadeErrors(t *testing.T) {
	b := hmc.NewProgram("tiny")
	x := b.Loc("x")
	th := b.Thread()
	th.Store(x, hmc.Const(1))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hmc.Check(p, "power9"); err == nil {
		t.Error("Check with unknown model must error")
	}
	if _, err := hmc.CheckRobustness(p, "nope"); err == nil {
		t.Error("CheckRobustness with unknown model must error")
	}
	if _, err := hmc.CheckLiveness(p, "nope"); err == nil {
		t.Error("CheckLiveness with unknown model must error")
	}
	if _, err := hmc.Estimate(p, "nope", 8, 1); err == nil {
		t.Error("Estimate with unknown model must error")
	}
	if _, err := hmc.ModelByName("nope"); err == nil {
		t.Error("ModelByName with unknown model must error")
	}
	if _, err := hmc.ParseLitmus("T0: FROB x"); err == nil {
		t.Error("bad litmus source must error")
	}
}
