// Command vet-hmc is the repo's project-invariant analyzer suite — a
// stdlib-only multichecker bundling the six analyzers that encode the
// coding invariants the distributed substrate depends on:
//
//	determinism      no wall clock, global rand or unsorted map iteration
//	                 in counter-affecting packages (byte-identical shard
//	                 merges and exactly-once resume assume it)
//	optsig           every core.Options field covered by the checkpoint
//	                 options signature or explicitly excluded
//	metricsreg       hmcd metrics: literal hmcd_* names, _total on
//	                 counters only, exactly-once registration, no
//	                 write-only or export-only series
//	errtaxonomy      peer RunLeg transport errors classified transient
//	                 before they reach the retry/demotion ladder
//	lockhold         no mutex held across a blocking call in the service
//	                 and shard layers
//	recoverboundary  exported core entry points route through the
//	                 panic→error boundary (moved from tools/analyzers)
//
// Usage:
//
//	go run ./tools/vet-hmc ./...          # CI invocation: whole module
//	go run ./tools/vet-hmc -list          # describe the analyzers
//	go run ./tools/vet-hmc -run determinism,lockhold ./internal/shard
//
// The driver loads only the packages some analyzer matches, type-checks
// them from `go list -export` data, and prints findings as
// file:line:col: [analyzer] message, exiting 1 if there are any. See
// DESIGN.md row 21 for the invariant table.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"hmc/tools/vet-hmc/analysis"
	"hmc/tools/vet-hmc/analyzers/determinism"
	"hmc/tools/vet-hmc/analyzers/errtaxonomy"
	"hmc/tools/vet-hmc/analyzers/lockhold"
	"hmc/tools/vet-hmc/analyzers/metricsreg"
	"hmc/tools/vet-hmc/analyzers/optsig"
	"hmc/tools/vet-hmc/analyzers/recoverboundary"
)

var suite = []*analysis.Analyzer{
	determinism.Analyzer,
	errtaxonomy.Analyzer,
	lockhold.Analyzer,
	metricsreg.Analyzer,
	optsig.Analyzer,
	recoverboundary.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := selectAnalyzers(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vet-hmc:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := runSuite(selected, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vet-hmc:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "vet-hmc: %d finding(s)\n", n)
		os.Exit(1)
	}
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return suite, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// runSuite resolves patterns, type-checks every package at least one
// analyzer matches, and returns the sorted findings.
func runSuite(analyzers []*analysis.Analyzer, patterns []string) ([]analysis.Diagnostic, error) {
	loader := analysis.NewLoader("")
	metas, err := loader.List(patterns...)
	if err != nil {
		return nil, err
	}

	// Work list first: export data is only needed for matched packages'
	// dependency closures.
	type work struct {
		meta      *analysis.Meta
		analyzers []*analysis.Analyzer
	}
	var jobs []work
	var matched []string
	for _, m := range metas {
		if m.Standard || len(m.GoFiles) == 0 {
			continue
		}
		var as []*analysis.Analyzer
		for _, a := range analyzers {
			if a.Match == nil || a.Match(m.ImportPath) {
				as = append(as, a)
			}
		}
		if len(as) > 0 {
			jobs = append(jobs, work{meta: m, analyzers: as})
			matched = append(matched, m.ImportPath)
		}
	}
	if len(jobs) == 0 {
		return nil, nil
	}
	if err := loader.LoadExports(matched...); err != nil {
		return nil, err
	}

	var diags []analysis.Diagnostic
	sink := func(d analysis.Diagnostic) { diags = append(diags, d) }
	for _, j := range jobs {
		pkg, err := loader.Check(j.meta.ImportPath, j.meta.Dir, j.meta.GoFiles)
		if err != nil {
			return nil, err
		}
		for _, a := range j.analyzers {
			if err := analysis.Analyze(a, pkg, loader.Fset, sink); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, j.meta.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, k int) bool {
		a, b := diags[i], diags[k]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}
