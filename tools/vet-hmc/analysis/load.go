package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Loader turns package patterns into type-checked Packages using only the
// standard library: `go list -export` supplies package metadata and gc
// export data for every dependency (the go command builds what is stale),
// and go/importer's gc importer reads that export data back through a
// lookup function. This is the classic pre-go/packages loading scheme; it
// works because driver and export data always come from the same
// toolchain.
type Loader struct {
	// Dir is the working directory for go list (the module root in the
	// driver, the fixture test's package dir in analysistest).
	Dir string

	// Local, when set, gets first crack at resolving an import path —
	// analysistest points it at testdata/src so fixture packages can
	// import sibling fixture packages. Returning (nil, nil) falls through
	// to the export-data importer.
	Local func(path string) (*types.Package, error)

	Fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// localFirst consults Loader.Local before the gc export-data importer.
type localFirst struct{ l *Loader }

func (i localFirst) Import(path string) (*types.Package, error) {
	if i.l.Local != nil {
		if pkg, err := i.l.Local(path); pkg != nil || err != nil {
			return pkg, err
		}
	}
	return i.l.imp.Import(path)
}

// NewLoader returns a Loader rooted at dir ("" = current directory).
func NewLoader(dir string) *Loader {
	l := &Loader{Dir: dir, Fset: token.NewFileSet(), exports: make(map[string]string)}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l
}

// Meta is the `go list` metadata this tool consumes.
type Meta struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
}

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// List resolves patterns to the metadata of the matched packages (no
// dependencies, no export data) — the driver's work list.
func (l *Loader) List(patterns ...string) ([]*Meta, error) {
	return l.golist(append([]string{"-json=ImportPath,Dir,Export,GoFiles,Standard"}, patterns...))
}

// LoadExports runs `go list -export -deps` over the patterns and records
// every package's export data location, making the whole transitive
// closure importable. Call once before Check.
func (l *Loader) LoadExports(patterns ...string) error {
	metas, err := l.golist(append([]string{"-export", "-deps", "-json=ImportPath,Export"}, patterns...))
	if err != nil {
		return err
	}
	for _, m := range metas {
		if m.Export != "" {
			l.exports[m.ImportPath] = m.Export
		}
	}
	return nil
}

func (l *Loader) golist(args []string) ([]*Meta, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var metas []*Meta
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		m := &Meta{}
		if err := dec.Decode(m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// lookup feeds export data to the gc importer, fetching it on demand for
// paths not covered by a prior LoadExports (analysistest fixtures import
// stdlib packages lazily this way).
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	if e, ok := l.exports[path]; ok {
		return os.Open(e)
	}
	if err := l.LoadExports(path); err != nil {
		return nil, err
	}
	if e, ok := l.exports[path]; ok {
		return os.Open(e)
	}
	return nil, fmt.Errorf("no export data for %q", path)
}

// Check parses and type-checks one package from its source files. The
// importPath may be synthetic (fixtures); imports resolve through the
// export-data map.
func (l *Loader) Check(importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: localFirst{l}}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{ImportPath: importPath, Dir: dir, Files: files, Pkg: pkg, Info: info}, nil
}

// Analyze runs one analyzer over one package, appending diagnostics.
func Analyze(a *Analyzer, p *Package, fset *token.FileSet, sink func(Diagnostic)) error {
	pass := &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      p.Files,
		ImportPath: p.ImportPath,
		Pkg:        p.Pkg,
		TypesInfo:  p.Info,
		report:     sink,
	}
	return a.Run(pass)
}
