// Package analysis is a self-contained, stdlib-only miniature of
// golang.org/x/tools/go/analysis — just enough framework to bundle the
// repo's invariant analyzers (tools/vet-hmc/analyzers/...) behind one
// driver. The module deliberately has zero dependencies, so the upstream
// framework is mirrored rather than imported: an Analyzer owns a name, a
// doc string, an import-path filter and a Run function over a fully
// type-checked Pass. Type information comes from the gc export data that
// `go list -export` produces (see load.go), which keeps analysis exact
// without shipping a second type checker.
//
// The analyzers encode *project* invariants, not general Go hygiene:
// determinism of counter-affecting packages, checkpoint options-signature
// coverage, metrics registration discipline, the peer error taxonomy, and
// lock-vs-blocking-call ordering. Each is documented in its own package
// and in DESIGN.md row 21.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer is one invariant checker. Match, when non-nil, restricts the
// analyzer to packages whose import path it accepts; the driver still
// loads only matched packages, so an analyzer may assume its Run is
// invoked on relevant code only.
type Analyzer struct {
	// Name is the short stable identifier used in diagnostics ("determinism").
	Name string
	// Doc is the one-paragraph description shown by `vet-hmc -list`.
	Doc string
	// Match reports whether the analyzer applies to the import path.
	// nil means every package.
	Match func(importPath string) bool
	// Run inspects one package and reports findings through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package into an Analyzer.Run.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	ImportPath string
	Pkg        *types.Package
	TypesInfo  *types.Info

	annots map[string][]Annotation // file name -> annotations, lazily built
	report func(Diagnostic)
}

// Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Annotation is one //hmc:kind(reason) marker comment. Annotations are
// the escape hatch for *legitimate* invariant exceptions — progress
// timing, pool jitter, order-invariant map folds — and the reason is
// mandatory: an empty one is itself reported by Allowed.
type Annotation struct {
	Kind   string // "nondet", "lockhold", "transient", "identity", ...
	Reason string
	Line   int
}

// annotRE matches the marker syntax. The comment may trail code on the
// same line or sit on the line directly above the flagged construct:
//
//	now := time.Now() //hmc:nondet(progress timestamps never feed counters)
var annotRE = regexp.MustCompile(`//hmc:([a-z]+)\(([^)]*)\)`)

// Annotations returns the //hmc: markers of the file containing pos,
// indexed lazily per file.
func (p *Pass) Annotations(pos token.Pos) []Annotation {
	file := p.Fset.Position(pos).Filename
	if p.annots == nil {
		p.annots = make(map[string][]Annotation)
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			var as []Annotation
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range annotRE.FindAllStringSubmatch(c.Text, -1) {
						as = append(as, Annotation{
							Kind:   m[1],
							Reason: strings.TrimSpace(m[2]),
							Line:   p.Fset.Position(c.Pos()).Line,
						})
					}
				}
			}
			p.annots[name] = as
		}
	}
	return p.annots[file]
}

// Allowed reports whether pos carries an //hmc:kind(reason) annotation on
// its own line or the line immediately above. A marker with an empty
// reason does not allow anything — it is reported as its own finding, so
// suppressions stay self-documenting.
func (p *Pass) Allowed(kind string, pos token.Pos) bool {
	line := p.Fset.Position(pos).Line
	for _, a := range p.Annotations(pos) {
		if a.Kind != kind || (a.Line != line && a.Line != line-1) {
			continue
		}
		if a.Reason == "" {
			p.Reportf(pos, "hmc:%s annotation needs a non-empty reason", kind)
			return true // suppress the underlying finding; the empty reason is the finding
		}
		return true
	}
	return false
}

// HasSuffix returns a Match function accepting import paths with any of
// the given suffixes — the standard shape for package-scoped invariants
// ("internal/core" matches both the real package and a fixture package
// under analysistest's synthetic hmc/internal/core path).
func HasSuffix(suffixes ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range suffixes {
			if path == s || strings.HasSuffix(path, "/"+s) {
				return true
			}
		}
		return false
	}
}

// Funcs iterates over every function declaration with a body.
func Funcs(files []*ast.File, fn func(*ast.FuncDecl)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// CalleeObj resolves the called function/method object of a call
// expression, or nil (builtin, func-typed variable, type conversion).
func CalleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if o, ok := info.Uses[fun].(*types.Func); ok {
			return o
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		if o, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return o
		}
	}
	return nil
}

// IsPkgFunc reports whether obj is the package-level function pkgPath.name.
func IsPkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// NamedType returns the named type of t after stripping pointers, or nil.
func NamedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}

// IsNamed reports whether t (possibly behind pointers) is pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := NamedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}
