// Package analysistest runs a vet-hmc analyzer over fixture packages and
// checks its diagnostics against // want "regexp" comments — the same
// contract as golang.org/x/tools/go/analysis/analysistest, rebuilt on the
// stdlib-only framework in the parent package.
//
// Fixtures live under <testdata>/src/<importpath>/*.go. The import path is
// synthetic; analyzers are invoked directly, so Analyzer.Match is not
// consulted (fixtures conventionally use paths ending in the matched
// suffix anyway, as documentation). Fixture packages may import each other
// (recoverboundary's fixtures import a local prog package) and any stdlib
// package; stdlib type information comes from `go list -export` data, so
// the harness needs no network and no GOPATH layout.
//
// Expectation syntax, on the same line as the flagged construct:
//
//	resp, err := c.Do(req) // want `transport-class`
//	m := time.Now()        // want "time.Now" "second finding on this line"
//
// Both "double-quoted" (with escapes) and `backquoted` regexps are
// accepted. Every diagnostic must match exactly one pending want on its
// line and every want must be consumed, or the test fails with a
// file:line inventory of what was off.
package analysistest

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"hmc/tools/vet-hmc/analysis"
)

// Run loads each fixture package from testdata/src/<path>, runs the
// analyzer over it, and compares diagnostics against want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	loader := analysis.NewLoader("")

	checked := map[string]*analysis.Package{}
	var load func(path string) (*analysis.Package, error)
	load = func(path string) (*analysis.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		names, err := goFiles(dir)
		if err != nil {
			return nil, err
		}
		p, err := loader.Check(path, dir, names)
		if err != nil {
			return nil, err
		}
		checked[path] = p
		return p, nil
	}
	// Fixture-local imports resolve through the same load, memoized; any
	// other path falls through to the export-data importer.
	loader.Local = func(path string) (*types.Package, error) {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			return nil, nil
		}
		p, err := load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}

	for _, path := range paths {
		pkg, err := load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		var diags []analysis.Diagnostic
		err = analysis.Analyze(a, pkg, loader.Fset, func(d analysis.Diagnostic) {
			diags = append(diags, d)
		})
		if err != nil {
			t.Fatalf("%s on %s: %v", a.Name, path, err)
		}
		check(t, loader.Fset, pkg, diags)
	}
}

func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return names, nil
}

// want is one pending expectation: a diagnostic on file:line matching re.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRE finds the expectation comment; quotedRE pulls out its regexps.
var (
	wantRE   = regexp.MustCompile(`//\s*want\s+(.*)`)
	quotedRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

func collectWants(t *testing.T, fset *token.FileSet, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					pat := q[1]
					if q[2] != "" || pat == "" {
						unq, err := strconv.Unquote(`"` + q[2] + `"`)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, q[2], err)
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func check(t *testing.T, fset *token.FileSet, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, pkg)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}
