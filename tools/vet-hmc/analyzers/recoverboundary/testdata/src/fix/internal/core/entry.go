// Fixture for the recoverboundary analyzer, porting the regression cases
// from the standalone tools/analyzers/recoverboundary vettool: unguarded
// entry points and recover-less defers are flagged; Explore routing, own
// deferred recover, guard routing, and non-entry-point signatures pass.
package core

import "fix/internal/prog"

// Options stands in for core.Options.
type Options struct{}

type explorer struct{ p *prog.Program }

func (e *explorer) visit(x interface{}) {}

func (e *explorer) guard(f func()) {
	defer func() { recover() }()
	f()
}

func engine(p *prog.Program) error { return nil }

func wrap(r interface{}) error { return nil }

func cleanup() {}

// Explore installs the boundary itself — its own deferred recover.
func Explore(p *prog.Program, o Options) (int, error) {
	defer func() {
		if r := recover(); r != nil {
			_ = wrap(r)
		}
	}()
	return 0, engine(p)
}

// CheckNew runs engine code without any boundary: must be flagged.
func CheckNew(p *prog.Program, n int) error { // want `exported engine entry point CheckNew does not route through the recover boundary`
	e := &explorer{p: p}
	e.visit(nil)
	return nil
}

// CheckD defers cleanup but never recover — a defer alone is no boundary.
func CheckD(p *prog.Program) { // want `exported engine entry point CheckD does not route through the recover boundary`
	defer func() { cleanup() }()
	_ = engine(p)
}

// CheckA routes through Explore: ok.
func CheckA(p *prog.Program) error {
	_, err := Explore(p, Options{})
	return err
}

// CheckB owns a deferred recover: ok.
func CheckB(p *prog.Program) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = wrap(r)
		}
	}()
	return engine(p)
}

// CheckC routes through the explorer's guard: ok.
func CheckC(p *prog.Program) {
	e := &explorer{p: p}
	e.guard(func() { e.visit(nil) })
}

// helper is unexported: exempt.
func helper(p *prog.Program) { _ = engine(p) }

// AsSomething's first parameter is not *prog.Program: exempt.
func AsSomething(err error) bool { return false }
