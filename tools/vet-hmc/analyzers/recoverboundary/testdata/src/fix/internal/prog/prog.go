// Package prog stands in for hmc/internal/prog in the recoverboundary
// fixtures: entry points are recognized by a *prog.Program first
// parameter.
package prog

// Program is the fixture stand-in for the real litmus program.
type Program struct{}
