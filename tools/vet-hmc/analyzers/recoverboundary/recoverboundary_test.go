package recoverboundary_test

import (
	"testing"

	"hmc/tools/vet-hmc/analysis/analysistest"
	"hmc/tools/vet-hmc/analyzers/recoverboundary"
)

func TestRecoverBoundary(t *testing.T) {
	analysistest.Run(t, "testdata", recoverboundary.Analyzer, "fix/internal/core")
}
