// Package recoverboundary is the PR 3 analyzer, moved under the vet-hmc
// driver: every exported entry point of internal/core that accepts a
// program — the functions that run engine code and can therefore panic on
// a poisoned input — must route through the panic→error boundary
// (internal/core/recover.go). Concretely, an exported package-level
// function whose first parameter is *prog.Program must syntactically
// contain at least one of:
//
//   - a deferred function literal that calls recover() (Estimate's own
//     boundary),
//   - a call to Explore (which installs the boundary itself), or
//   - a call to the explorer's guard method.
//
// Without this, a new analysis added to internal/core could silently turn
// an engine panic back into a process crash, undoing PR 2's containment
// work. The check stays syntactic on purpose — it predates the typed
// framework and needs nothing from it, which keeps the fixture matrix
// trivial. Packages beneath core (eg, interp, relation, axenum, …) run
// inside core's guard and are exempt by design.
package recoverboundary

import (
	"go/ast"

	"hmc/tools/vet-hmc/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "recoverboundary",
	Doc: "exported internal/core entry points taking *prog.Program must " +
		"route through the panic→error recover boundary",
	Match: analysis.HasSuffix("internal/core"),
	Run:   run,
}

func run(pass *analysis.Pass) error {
	analysis.Funcs(pass.Files, func(fn *ast.FuncDecl) {
		if !isEntryPoint(fn) {
			return
		}
		if !routesThroughBoundary(fn) {
			pass.Reportf(fn.Pos(),
				"exported engine entry point %s does not route through the recover boundary (needs a deferred recover, an Explore call, or a guard call)", fn.Name.Name)
		}
	})
	return nil
}

// isEntryPoint reports whether fn is an exported package-level function
// whose first parameter is *prog.Program — the signature shared by every
// engine entry point (Explore, Estimate, CheckRobustness, CheckRaces,
// CheckLiveness). Methods and helpers with other signatures are exempt:
// they cannot be called without going through an entry point first.
func isEntryPoint(fn *ast.FuncDecl) bool {
	if fn.Recv != nil || !fn.Name.IsExported() || fn.Body == nil {
		return false
	}
	params := fn.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	star, ok := params.List[0].Type.(*ast.StarExpr)
	if !ok {
		return false
	}
	sel, ok := star.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Program" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "prog"
}

// routesThroughBoundary reports whether fn's body contains a deferred
// recover, a call to Explore, or a call to a guard method.
func routesThroughBoundary(fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && callsRecover(lit) {
				found = true
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "Explore" {
					found = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "guard" || fun.Sel.Name == "Explore" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// callsRecover reports whether the function literal's body calls the
// recover builtin (directly or in a nested node).
func callsRecover(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
				found = true
			}
		}
		return !found
	})
	return found
}
