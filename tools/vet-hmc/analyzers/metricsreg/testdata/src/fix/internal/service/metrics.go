// Fixture for the metricsreg analyzer: a hand-rolled Metrics struct with
// the same exposition helpers as internal/service, exercising naming,
// duplicate-registration, flatline and dead-field findings.
package service

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics mirrors the daemon's metric fields.
type Metrics struct {
	JobsDone     atomic.Int64 // healthy counter: incremented and exported
	GaugeDepth   atomic.Int64 // healthy gauge
	Flatline     atomic.Int64 // exported but never incremented (reported at its registration)
	WriteOnly    atomic.Int64 // want `Metrics\.WriteOnly is never exported by writePrometheus`
	DeadField    atomic.Int64 // want `Metrics\.DeadField is neither incremented nor exported — dead metric field`
	Loaned       atomic.Int64 // incremented through an address-taken alias
	LegDurations histogram    // healthy histogram

	// The verdict-portfolio shape: plain counters under the helper
	// discipline plus a per-backend labeled histogram family rendered
	// with raw Fprintf — the map field is outside the atomic/histogram
	// tracking and the labeled names are outside the literal-name check.
	BackendRuns          atomic.Int64 // healthy: bumped by recordAttestation
	BackendDisagreements atomic.Int64 // healthy: bumped by recordAttestation
	backendLat           map[string]*histogram
}

// histogram mirrors the service's local histogram type.
type histogram struct {
	count atomic.Int64
}

func (h *histogram) observe(v float64) { h.count.Add(1) }

func (h *histogram) write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n%s_count %d\n", name, help, name, h.count.Load())
}

func (m *Metrics) work() {
	m.JobsDone.Add(1)
	m.GaugeDepth.Store(3)
	m.WriteOnly.Add(1)
	m.LegDurations.observe(0.25)
	evictions := &m.Loaned // the alias is handed off; assume it is written
	evictions.Add(1)
}

// recordAttestation mirrors the portfolio bookkeeping path: counters
// bumped away from writePrometheus, latencies observed per backend name.
func (m *Metrics) recordAttestation(name string, seconds float64) {
	m.BackendRuns.Add(1)
	m.BackendDisagreements.Add(1)
	if m.backendLat == nil {
		m.backendLat = map[string]*histogram{}
	}
	h, ok := m.backendLat[name]
	if !ok {
		h = &histogram{}
		m.backendLat[name] = h
	}
	h.observe(seconds)
}

// writeBackendLatencies mirrors the labeled-family rendering: raw Fprintf
// with a backend label, outside the helper discipline and this analyzer's
// literal-name scope.
func (m *Metrics) writeBackendLatencies(w io.Writer) {
	for name, h := range m.backendLat {
		fmt.Fprintf(w, "hmcd_backend_latency_seconds_count{backend=%q} %d\n", name, h.count.Load())
	}
}

func (m *Metrics) writePrometheus(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n%s %d\n", name, help, name, v)
	}
	gaugeI := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n%s %d\n", name, help, name, v)
	}

	counter("hmcd_jobs_done_total", "Jobs finished.", m.JobsDone.Load())
	gaugeI("hmcd_queue_depth", "Queue depth.", m.GaugeDepth.Load())
	counter("hmcd_flatline_total", "Never written.", m.Flatline.Load()) // want `metric hmcd_flatline_total is exported from Metrics\.Flatline, which is never incremented`
	counter("hmcd_loans_total", "Written via alias.", m.Loaned.Load())
	m.LegDurations.write(w, "hmcd_leg_duration_seconds", "Leg durations.")
	counter("hmcd_backend_runs_total", "Portfolio backend runs.", m.BackendRuns.Load())
	counter("hmcd_backend_disagreements_total", "Portfolio disagreements.", m.BackendDisagreements.Load())
	m.writeBackendLatencies(w)

	counter("hmcd_jobs_done_total", "Duplicate.", m.JobsDone.Load()) // want `metric hmcd_jobs_done_total is registered more than once`
	counter("hmcd_missing_suffix", "Bad name.", m.JobsDone.Load())   // want `counter "hmcd_missing_suffix" must end in _total`
	gaugeI("hmcd_depth_total", "Bad name.", m.GaugeDepth.Load())     // want `gauge "hmcd_depth_total" must not end in _total`
	counter("jobs_done_total", "Bad prefix.", m.JobsDone.Load())     // want `metric name "jobs_done_total" does not match`
	counter(dynamicName(), "Dynamic.", 0)                            // want `metric name must be a string literal`
}

func dynamicName() string { return "hmcd_dynamic_total" }
