// Fixture for the metricsreg analyzer: a hand-rolled Metrics struct with
// the same exposition helpers as internal/service, exercising naming,
// duplicate-registration, flatline and dead-field findings.
package service

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics mirrors the daemon's metric fields.
type Metrics struct {
	JobsDone     atomic.Int64 // healthy counter: incremented and exported
	GaugeDepth   atomic.Int64 // healthy gauge
	Flatline     atomic.Int64 // exported but never incremented (reported at its registration)
	WriteOnly    atomic.Int64 // want `Metrics\.WriteOnly is never exported by writePrometheus`
	DeadField    atomic.Int64 // want `Metrics\.DeadField is neither incremented nor exported — dead metric field`
	Loaned       atomic.Int64 // incremented through an address-taken alias
	LegDurations histogram    // healthy histogram
}

// histogram mirrors the service's local histogram type.
type histogram struct {
	count atomic.Int64
}

func (h *histogram) observe(v float64) { h.count.Add(1) }

func (h *histogram) write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n%s_count %d\n", name, help, name, h.count.Load())
}

func (m *Metrics) work() {
	m.JobsDone.Add(1)
	m.GaugeDepth.Store(3)
	m.WriteOnly.Add(1)
	m.LegDurations.observe(0.25)
	evictions := &m.Loaned // the alias is handed off; assume it is written
	evictions.Add(1)
}

func (m *Metrics) writePrometheus(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n%s %d\n", name, help, name, v)
	}
	gaugeI := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n%s %d\n", name, help, name, v)
	}

	counter("hmcd_jobs_done_total", "Jobs finished.", m.JobsDone.Load())
	gaugeI("hmcd_queue_depth", "Queue depth.", m.GaugeDepth.Load())
	counter("hmcd_flatline_total", "Never written.", m.Flatline.Load()) // want `metric hmcd_flatline_total is exported from Metrics\.Flatline, which is never incremented`
	counter("hmcd_loans_total", "Written via alias.", m.Loaned.Load())
	m.LegDurations.write(w, "hmcd_leg_duration_seconds", "Leg durations.")

	counter("hmcd_jobs_done_total", "Duplicate.", m.JobsDone.Load()) // want `metric hmcd_jobs_done_total is registered more than once`
	counter("hmcd_missing_suffix", "Bad name.", m.JobsDone.Load())   // want `counter "hmcd_missing_suffix" must end in _total`
	gaugeI("hmcd_depth_total", "Bad name.", m.GaugeDepth.Load())     // want `gauge "hmcd_depth_total" must not end in _total`
	counter("jobs_done_total", "Bad prefix.", m.JobsDone.Load())     // want `metric name "jobs_done_total" does not match`
	counter(dynamicName(), "Dynamic.", 0)                            // want `metric name must be a string literal`
}

func dynamicName() string { return "hmcd_dynamic_total" }
