// Package metricsreg enforces the service's metrics discipline. The
// daemon hand-rolls its Prometheus exposition (internal/service/metrics.go:
// atomic fields on Metrics, rendered by writePrometheus through the
// counter/counterF/gaugeI/gaugeF helpers and histogram.write), which
// means nothing at runtime checks what a registry would: that names are
// unique, conventionally formed, and that an exported series actually has
// a writer somewhere. Dashboards silently flatline when a counter field
// is exported but its .Add call was lost in a refactor — this analyzer
// makes that a CI failure instead.
//
// Checks, in package internal/service:
//
//   - every metric name passed to a register helper or histogram.write is
//     a literal matching ^hmcd_[a-z][a-z0-9_]*$ — one namespace, greppable;
//   - counter/counterF names end in _total; gauge and histogram names do
//     not (histograms get _bucket/_sum/_count suffixes appended);
//   - no name is registered twice (copy-paste duplicates shadow each
//     other in Prometheus scrapes);
//   - every Metrics field of type atomic.Int64 or histogram is both
//     exported by writePrometheus and incremented (.Add/.Store/.observe)
//     somewhere in the package — no write-only and no export-only
//     metrics.
//
// Names emitted through raw Fprintf (the per-peer labeled gauges) are
// outside the helper discipline and outside this analyzer's scope.
package metricsreg

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"hmc/tools/vet-hmc/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "metricsreg",
	Doc: "hmcd metrics: literal hmcd_* names, _total on counters only, " +
		"exactly-once registration, and every Metrics field both exported " +
		"and incremented",
	Match: analysis.HasSuffix("internal/service"),
	Run:   run,
}

var nameRE = regexp.MustCompile(`^hmcd_[a-z][a-z0-9_]*$`)

// helperKind classifies the writePrometheus registration helpers.
var helperKind = map[string]string{
	"counter": "counter", "counterF": "counter",
	"gaugeI": "gauge", "gaugeF": "gauge",
}

func run(pass *analysis.Pass) error {
	metrics := lookupStruct(pass.Pkg, "Metrics")
	if metrics == nil {
		return nil // not the package shape this invariant lives in
	}

	// The Metrics fields under the discipline: atomic counters/gauges and
	// hand-rolled histograms.
	tracked := map[string]token.Pos{}
	for i := 0; i < metrics.NumFields(); i++ {
		f := metrics.Field(i)
		if analysis.IsNamed(f.Type(), "sync/atomic", "Int64") || isLocalHistogram(pass, f.Type()) {
			tracked[f.Name()] = f.Pos()
		}
	}

	registered := map[string]token.Pos{} // metric name -> first registration
	exported := map[string]bool{}        // Metrics field -> referenced by a registration
	incremented := map[string]bool{}     // Metrics field -> has .Add/.Store/.observe
	fieldOf := map[string][]string{}     // metric name -> referenced fields

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			// Taking a field's address hands the counter to another
			// component (the LRU cache increments CacheEvictions through
			// such a pointer); assume the alias is written.
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.AND {
				if f := receiverField(pass, metrics, u.X); f != "" {
					incremented[f] = true
				}
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if kind, ok := helperKind[fun.Name]; ok && len(call.Args) > 0 {
					name := checkName(pass, call.Args[0], kind)
					recordRegistration(pass, registered, name, call.Args[0].Pos())
					for _, fname := range metricsFields(pass, metrics, call.Args) {
						exported[fname] = true
						if name != "" {
							fieldOf[name] = append(fieldOf[name], fname)
						}
					}
				}
			case *ast.SelectorExpr:
				recv := receiverField(pass, metrics, fun.X)
				switch fun.Sel.Name {
				case "Add", "Store", "observe":
					if recv != "" {
						incremented[recv] = true
					}
				case "write":
					if recv != "" && isLocalHistogram(pass, typeOf(pass, fun.X)) && len(call.Args) >= 2 {
						name := checkName(pass, call.Args[1], "histogram")
						recordRegistration(pass, registered, name, call.Args[1].Pos())
						exported[recv] = true
						if name != "" {
							fieldOf[name] = append(fieldOf[name], recv)
						}
					}
				}
			}
			return true
		})
	}

	for name, fields := range fieldOf {
		for _, f := range fields {
			if !incremented[f] {
				pass.Reportf(registered[name],
					"metric %s is exported from Metrics.%s, which is never incremented (.Add/.Store/.observe) in the package — a dashboard flatline, not a metric", name, f)
			}
		}
	}
	for fname, pos := range tracked {
		if !exported[fname] {
			what := "never exported by writePrometheus"
			if !incremented[fname] {
				what = "neither incremented nor exported — dead metric field"
			}
			pass.Reportf(pos, "Metrics.%s is %s", fname, what)
		}
	}
	return nil
}

// checkName validates one metric-name argument and returns the literal
// name ("" when unusable).
func checkName(pass *analysis.Pass, arg ast.Expr, kind string) string {
	lit, ok := ast.Unparen(arg).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		pass.Reportf(arg.Pos(), "metric name must be a string literal so the registration set is statically known")
		return ""
	}
	name := strings.Trim(lit.Value, "`\"")
	if !nameRE.MatchString(name) {
		pass.Reportf(arg.Pos(), "metric name %q does not match ^hmcd_[a-z][a-z0-9_]*$ — one namespace, lowercase, underscores", name)
		return name
	}
	total := strings.HasSuffix(name, "_total")
	if kind == "counter" && !total {
		pass.Reportf(arg.Pos(), "counter %q must end in _total (Prometheus counter convention)", name)
	}
	if kind != "counter" && total {
		pass.Reportf(arg.Pos(), "%s %q must not end in _total — that suffix is reserved for counters", kind, name)
	}
	return name
}

func recordRegistration(pass *analysis.Pass, registered map[string]token.Pos, name string, pos token.Pos) {
	if name == "" {
		return
	}
	if _, dup := registered[name]; dup {
		pass.Reportf(pos, "metric %s is registered more than once — duplicate series shadow each other in scrapes", name)
		return
	}
	registered[name] = pos
}

// metricsFields collects the names of Metrics fields referenced anywhere
// in the argument expressions (m.X.Load(), time.Duration(m.Y.Load())...).
func metricsFields(pass *analysis.Pass, metrics *types.Struct, args []ast.Expr) []string {
	var out []string
	for _, a := range args {
		ast.Inspect(a, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if f := receiverField(pass, metrics, sel); f != "" {
					out = append(out, f)
				}
			}
			return true
		})
	}
	return out
}

// receiverField returns the field name when expr is a selector m.X with m
// of type Metrics and X one of its fields.
func receiverField(pass *analysis.Pass, metrics *types.Struct, expr ast.Expr) string {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	recv := typeOf(pass, sel.X)
	if recv == nil {
		return ""
	}
	n := analysis.NamedType(recv)
	if n == nil || n.Obj().Name() != "Metrics" || n.Obj().Pkg() == nil || n.Obj().Pkg() != pass.Pkg {
		return ""
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok || st != metrics {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == sel.Sel.Name {
			return sel.Sel.Name
		}
	}
	return ""
}

func typeOf(pass *analysis.Pass, expr ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[expr]; ok {
		return tv.Type
	}
	return nil
}

// isLocalHistogram reports whether t is the package's own histogram type.
func isLocalHistogram(pass *analysis.Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	n := analysis.NamedType(t)
	return n != nil && n.Obj().Name() == "histogram" && n.Obj().Pkg() == pass.Pkg
}

func lookupStruct(pkg *types.Package, name string) *types.Struct {
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	st, _ := obj.Type().Underlying().(*types.Struct)
	return st
}
