package metricsreg_test

import (
	"testing"

	"hmc/tools/vet-hmc/analysis/analysistest"
	"hmc/tools/vet-hmc/analyzers/metricsreg"
)

func TestMetricsreg(t *testing.T) {
	analysistest.Run(t, "testdata", metricsreg.Analyzer, "fix/internal/service")
}
