// Package determinism enforces the repo's central soundness invariant:
// exploration is deterministic. Byte-identical merged counters across
// shards (internal/shard), exactly-once resume across checkpoint cuts
// (core.Checkpoint) and the equivalence tests that pin both all assume
// that the same program explored twice produces the same bytes. Three
// constructs silently break that in Go, and this analyzer flags each in
// the counter-affecting packages (internal/{core,shard,eg,relation,backend}):
//
//   - time.Now — wall-clock values must never feed counters, keys or
//     serialized state. Legitimate uses (progress timestamps, breaker
//     clocks, steal patience) carry //hmc:nondet(reason).
//   - the global math/rand source — rand.Intn and friends draw from a
//     process-global, concurrently-shared source; randomized algorithms
//     must use a rand.New(rand.NewSource(seed)) with a deterministic
//     seed (core.Estimate does) or annotate the site (pool backoff
//     jitter does).
//   - map iteration — Go randomizes range order, so a map range that
//     builds ordered output, feeds a hash, or writes serialized state is
//     nondeterministic. The blessed idiom is collect-then-sort: a range
//     whose enclosing function also calls a sort routine is accepted
//     (checkpoint.go's sortedSetKeys). Order-invariant folds (sums,
//     max, set-to-set copies) annotate instead.
//
// Every exception is therefore visible at the call site with a reason —
// exactly the discipline ISSUE 8 asks for.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"hmc/tools/vet-hmc/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flags time.Now, global math/rand draws and unsorted map iteration " +
		"in the counter-affecting packages (internal/{core,shard,eg,relation,backend}); " +
		"legitimate sites carry //hmc:nondet(reason)",
	Match: analysis.HasSuffix(
		"internal/core", "internal/shard", "internal/eg", "internal/relation",
		"internal/backend",
	),
	Run: run,
}

// globalRandFuncs are the math/rand package-level functions that consume
// the shared global source. Constructors (New, NewSource, NewZipf) are
// fine: determinism is then the seed's problem, which is locally visible.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// sortFuncs are the blessed determinizers: a map range in a function that
// also sorts is the collect-then-sort idiom.
var sortFuncs = map[string]bool{
	"sort.Sort": true, "sort.Stable": true, "sort.Strings": true,
	"sort.Ints": true, "sort.Float64s": true, "sort.Slice": true,
	"sort.SliceStable": true,
	"slices.Sort":      true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

func run(pass *analysis.Pass) error {
	analysis.Funcs(pass.Files, func(fn *ast.FuncDecl) {
		sorts := callsSorter(pass, fn)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n, sorts, fn.Name.Name)
			}
			return true
		})
	})
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	obj := analysis.CalleeObj(pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if obj.Name() == "Now" && !pass.Allowed("nondet", call.Pos()) {
			pass.Reportf(call.Pos(),
				"time.Now in a counter-affecting package: wall-clock values must not feed counters, keys or checkpoints (annotate legitimate timing with //hmc:nondet(reason))")
		}
	case "math/rand", "math/rand/v2":
		// Methods on a *rand.Rand are fine: the value was built by
		// rand.New(rand.NewSource(seed)), so determinism is the locally
		// visible seed's concern. Only the package-level draws hit the
		// shared global source.
		if fn, ok := obj.(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return
			}
		}
		if globalRandFuncs[obj.Name()] && !pass.Allowed("nondet", call.Pos()) {
			pass.Reportf(call.Pos(),
				"rand.%s draws from the global source: use rand.New(rand.NewSource(seed)) with a deterministic seed, or annotate with //hmc:nondet(reason)", obj.Name())
		}
	}
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt, fnSorts bool, fnName string) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if fnSorts || pass.Allowed("nondet", rng.Pos()) {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is randomized: %s neither sorts the collected result nor annotates the range with //hmc:nondet(reason) — ordered output, hashes and serialized state must use collect-then-sort", fnName)
}

// callsSorter reports whether fn's body calls any sort routine — the
// stdlib ones, or a project helper following the Sort*/sort* naming
// convention (eg.SortEvIDs, core's sortedSetKeys): calling one is the
// collect-then-sort idiom's signature.
func callsSorter(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := analysis.CalleeObj(pass.TypesInfo, call); obj != nil && obj.Pkg() != nil {
			name := obj.Name()
			if sortFuncs[obj.Pkg().Path()+"."+name] ||
				strings.HasPrefix(name, "Sort") || strings.HasPrefix(name, "sort") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
