package determinism_test

import (
	"testing"

	"hmc/tools/vet-hmc/analysis/analysistest"
	"hmc/tools/vet-hmc/analyzers/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "fix/internal/core")
}

func TestDeterminismBackend(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "fix/internal/backend")
}
