// Fixture for the determinism analyzer: wall clock, global rand and map
// iteration in a counter-affecting package, with each sanctioned escape
// alongside its violation.
package core

import (
	"math/rand"
	"sort"
	"time"
)

// wallClock feeds a counter from the wall clock — the canonical violation.
func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now in a counter-affecting package`
}

// annotatedClock is the sanctioned shape: timing with a stated reason.
func annotatedClock() time.Time {
	return time.Now() //hmc:nondet(progress timing never feeds counters)
}

// emptyReason is an annotation that explains nothing — itself a finding,
// and it must not silently allow the call.
func emptyReason() time.Time {
	return time.Now() //hmc:nondet() // want `hmc:nondet annotation needs a non-empty reason`
}

// globalDraw hits the process-global shared source.
func globalDraw() int {
	return rand.Intn(10) // want `rand\.Intn draws from the global source`
}

// seededDraw is fine: methods on a *rand.Rand make the seed locally
// visible, so determinism is the caller's explicit choice.
func seededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// annotatedJitter is the pool-backoff shape.
func annotatedJitter() int64 {
	return rand.Int63n(100) //hmc:nondet(backoff jitter never reaches results)
}

// unsortedKeys builds ordered output straight from a map range.
func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is randomized: unsortedKeys`
		out = append(out, k)
	}
	return out
}

// sortedKeys is the blessed collect-then-sort idiom.
func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// helperSorted is the project-helper variant of collect-then-sort.
func helperSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	SortKeys(out)
	return out
}

// SortKeys stands in for the repo's Sort* helpers (eg.SortEvIDs).
func SortKeys(ks []string) {
	sort.Strings(ks)
}

// annotatedFold is an order-invariant fold with a stated reason.
func annotatedFold(m map[string]int) int {
	n := 0
	for _, v := range m { //hmc:nondet(sum is order-invariant)
		n += v
	}
	return n
}

// sliceRange is not a map range and needs nothing.
func sliceRange(xs []int) int {
	n := 0
	for _, v := range xs {
		n += v
	}
	return n
}
