// Fixture for the determinism analyzer in the verdict-portfolio package:
// outcome digests and attestation records must be byte-stable across
// runs, so internal/backend is in the counter-affecting scope. Latency
// stamps are the sanctioned wall-clock use; digest assembly must be
// collect-then-sort.
package backend

import (
	"sort"
	"time"
)

// verdictLatency is the sanctioned shape: elapsed time on an attestation
// record, never compared or counted.
func verdictLatency() time.Duration {
	start := time.Now() //hmc:nondet(verdict latency is observability, never compared or counted)
	return time.Since(start)
}

// rawDeadline is the violation: a wall-clock read with no stated reason.
func rawDeadline() time.Time {
	return time.Now() // want `time\.Now in a counter-affecting package`
}

// digestKeys is the blessed collect-then-sort idiom for outcome digests.
func digestKeys(finals map[string]bool) []string {
	keys := make([]string, 0, len(finals))
	for k := range finals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// unsortedKeys builds ordered output straight from a map range — the
// digest-instability violation.
func unsortedKeys(finals map[string]bool) []string {
	var keys []string
	for k := range finals { // want `map iteration order is randomized`
		keys = append(keys, k)
	}
	return keys
}
