package optsig_test

import (
	"testing"

	"hmc/tools/vet-hmc/analysis/analysistest"
	"hmc/tools/vet-hmc/analyzers/optsig"
)

func TestOptsig(t *testing.T) {
	analysistest.Run(t, "testdata", optsig.Analyzer, "fix/internal/core")
}
