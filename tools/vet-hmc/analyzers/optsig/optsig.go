// Package optsig pins the checkpoint compatibility contract of
// internal/core: a checkpoint taken under one Options value must refuse
// to resume under a semantically different one (ErrCheckpointMismatch),
// which optsSignature implements by rendering every semantics-affecting
// field into the Checkpoint.Opts string. The drift class this catches is
// "a new Options field changes what is explored but the signature was
// not extended" — the checkpoint then resumes happily and the merged
// counters silently diverge, defeating the exactly-once guarantees of
// PR 4 and PR 6.
//
// The rule: every field of core.Options must be accounted for in exactly
// one of three ways —
//
//   - rendered by optsSignature (read through the Options parameter);
//   - marked //hmc:transient(reason) in its doc comment: the field may
//     legitimately differ between the checkpointing and resuming runs
//     (Workers, MemoryBudget, callbacks, observation knobs);
//   - marked //hmc:identity(Field) in its doc comment: the field is
//     checked through a dedicated Checkpoint field instead (Model,
//     Shard), which this analyzer verifies exists.
//
// A field with none of the three is a compile-time ErrCheckpointMismatch
// bug waiting to happen and is reported.
package optsig

import (
	"go/ast"
	"regexp"
	"strings"

	"hmc/tools/vet-hmc/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "optsig",
	Doc: "every core.Options field must be covered by optsSignature, marked " +
		"//hmc:transient(reason), or marked //hmc:identity(CheckpointField)",
	Match: analysis.HasSuffix("internal/core"),
	Run:   run,
}

var markRE = regexp.MustCompile(`//\s*hmc:(transient|identity)\(([^)]*)\)`)

func run(pass *analysis.Pass) error {
	options := findStruct(pass.Files, "Options")
	if options == nil {
		return nil // not the package shape this invariant lives in
	}
	sig := findFunc(pass.Files, "optsSignature")
	checkpoint := findStruct(pass.Files, "Checkpoint")

	rendered := map[string]bool{}
	if sig == nil {
		pass.Reportf(options.Pos(), "package defines Options but no optsSignature function: checkpoints cannot detect semantic drift")
	} else {
		// Every selector on the Options-typed parameter counts as rendered.
		ast.Inspect(sig.Body, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				rendered[sel.Sel.Name] = true
			}
			return true
		})
	}

	for _, field := range options.Fields.List {
		kind, arg, ok := marker(field)
		for _, name := range fieldNames(field) {
			switch {
			case rendered[name]:
				if ok {
					pass.Reportf(field.Pos(), "Options.%s is rendered by optsSignature but also marked hmc:%s — pick one", name, kind)
				}
			case ok && kind == "transient":
				if arg == "" {
					pass.Reportf(field.Pos(), "Options.%s: hmc:transient annotation needs a non-empty reason", name)
				}
			case ok && kind == "identity":
				if checkpoint == nil || !hasField(checkpoint, arg) {
					pass.Reportf(field.Pos(), "Options.%s is marked hmc:identity(%s) but Checkpoint has no field %q", name, arg, arg)
				}
			default:
				pass.Reportf(field.Pos(),
					"Options.%s is not covered by the checkpoint options signature: render it in optsSignature, or mark it //hmc:transient(reason) / //hmc:identity(CheckpointField) in its doc comment", name)
			}
		}
	}
	return nil
}

// marker extracts the hmc:transient/hmc:identity marker from a field's
// doc or trailing comment.
func marker(field *ast.Field) (kind, arg string, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := markRE.FindStringSubmatch(c.Text); m != nil {
				return m[1], strings.TrimSpace(m[2]), true
			}
		}
	}
	return "", "", false
}

func fieldNames(field *ast.Field) []string {
	var out []string
	for _, n := range field.Names {
		out = append(out, n.Name)
	}
	return out
}

func findStruct(files []*ast.File, name string) *ast.StructType {
	for _, f := range files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}

func findFunc(files []*ast.File, name string) *ast.FuncDecl {
	var found *ast.FuncDecl
	analysis.Funcs(files, func(fn *ast.FuncDecl) {
		if fn.Recv == nil && fn.Name.Name == name {
			found = fn
		}
	})
	return found
}

func hasField(st *ast.StructType, name string) bool {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return true
			}
		}
	}
	return false
}
