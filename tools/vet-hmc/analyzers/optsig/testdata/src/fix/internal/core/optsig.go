// Fixture for the optsig analyzer: an Options struct whose fields span
// every coverage class — rendered, transient, identity, conflicting, and
// plain uncovered drift.
package core

import "fmt"

// Options mirrors the real core.Options shape.
type Options struct {
	// MaxSteps bounds the interpreter and changes what is explored.
	MaxSteps int
	// Model selects the memory model; checked through a dedicated
	// checkpoint field rather than the signature string.
	//hmc:identity(Model)
	Model string
	// Workers only reorders the same work.
	//hmc:transient(parallelism does not change what is explored)
	Workers int
	// BadReason has a marker but no rationale.
	//hmc:transient()
	BadReason bool // want `Options\.BadReason: hmc:transient annotation needs a non-empty reason`
	// BadIdentity names a checkpoint field that does not exist.
	//hmc:identity(Nope)
	BadIdentity int // want `Options\.BadIdentity is marked hmc:identity\(Nope\) but Checkpoint has no field "Nope"`
	// Conflicted is rendered below AND marked — pick one.
	//hmc:transient(already in the signature)
	Conflicted bool // want `Options\.Conflicted is rendered by optsSignature but also marked hmc:transient`
	// Drifted is the bug this analyzer exists for: a semantics-affecting
	// field nobody accounted for.
	Drifted bool // want `Options\.Drifted is not covered by the checkpoint options signature`
}

// Checkpoint carries the identity fields.
type Checkpoint struct {
	Model string
	Opts  string
}

func optsSignature(o *Options) string {
	return fmt.Sprintf("steps=%d conflicted=%v", o.MaxSteps, o.Conflicted)
}
