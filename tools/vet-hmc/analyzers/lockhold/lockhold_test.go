package lockhold_test

import (
	"testing"

	"hmc/tools/vet-hmc/analysis/analysistest"
	"hmc/tools/vet-hmc/analyzers/lockhold"
)

func TestLockhold(t *testing.T) {
	analysistest.Run(t, "testdata", lockhold.Analyzer, "fix/internal/service")
}
