// Fixture for the lockhold analyzer: blocking constructs under a held
// mutex, against the sanctioned snapshot-then-block shapes.
package service

import (
	"net/http"
	"sync"
	"time"
)

type server struct {
	mu    sync.Mutex
	state sync.RWMutex
	ch    chan int
	wg    sync.WaitGroup
	c     *http.Client
}

// sendUnderLock is the canonical violation.
func (s *server) sendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while holding s\.mu`
	s.mu.Unlock()
}

// deferredHold pins the lock to function end; the round-trip blocks under it.
func (s *server) deferredHold(req *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c.Do(req) // want `HTTP round-trip \(http\.Client\.Do\) while holding s\.mu`
}

// snapshotThenBlock is the house style: copy under the lock, block outside.
func (s *server) snapshotThenBlock(v int) {
	s.mu.Lock()
	target := s.ch
	s.mu.Unlock()
	target <- v
}

// guardClause unlocks on the early path; the branch copy of the held set
// keeps the later receive clean only on the unlocked path.
func (s *server) guardClause(ready bool) int {
	s.state.RLock()
	if !ready {
		s.state.RUnlock()
		return <-s.ch
	}
	v := 0
	s.state.RUnlock()
	return v
}

// selectUnderLock blocks unless a default case makes it a poll.
func (s *server) selectUnderLock() {
	s.mu.Lock()
	select { // want `select without default while holding s\.mu`
	case v := <-s.ch:
		_ = v
	}
	s.mu.Unlock()
	s.mu.Lock()
	select { // a default case makes this a non-blocking poll
	case v := <-s.ch:
		_ = v
	default:
	}
	s.mu.Unlock()
}

// sleepAndWait covers the scheduler-parking calls.
func (s *server) sleepAndWait() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding s\.mu`
	s.wg.Wait()                  // want `WaitGroup\.Wait while holding s\.mu`
	s.mu.Unlock()
}

// goroutineBody does not run under the caller's lock.
func (s *server) goroutineBody(v int) {
	s.mu.Lock()
	go func() {
		s.ch <- v
	}()
	s.mu.Unlock()
}

// sanctioned is the journal-fsync shape: annotated in place.
func (s *server) sanctioned(v int) {
	s.mu.Lock()
	//hmc:lockhold(single-writer handoff; the receiver never blocks)
	s.ch <- v
	s.mu.Unlock()
}
