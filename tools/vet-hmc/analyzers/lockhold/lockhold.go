// Package lockhold flags mutexes held across blocking calls in
// internal/service and internal/shard. Both packages sit on the daemon's
// hot control paths: a lock held across a channel operation, an HTTP
// round-trip or an fsync turns one slow peer or one slow disk into a
// stalled job queue (every other goroutine piles up on the mutex), and
// under the journal's degraded mode it can deadlock the very path meant
// to keep the daemon live. The service's own style already follows the
// rule — snapshot under the lock, do I/O outside — and this analyzer
// keeps refactors from eroding it.
//
// The check is a lexical approximation, deliberately simple: within one
// function, after <expr>.Lock()/.RLock() on a sync.Mutex/RWMutex and
// before the matching Unlock (a deferred Unlock holds to function end),
// these constructs are reported:
//
//   - channel sends, receives, and selects without a default case;
//   - (*http.Client).Do and the net/http package-level request helpers;
//   - (*os.File).Sync — fsync under a lock serializes the world on the
//     disk (the journal's single-writer fsync is the sanctioned
//     exception, annotated in place);
//   - time.Sleep, (*sync.WaitGroup).Wait, net dials, os/exec waits.
//
// Function literals are not descended into: a goroutine or callback body
// does not run under the caller's lock. Branches are scanned with a copy
// of the held set, so "unlock early in a guard clause and return" stays
// clean. Sanctioned sites carry //hmc:lockhold(reason).
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"

	"hmc/tools/vet-hmc/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc: "no sync.Mutex/RWMutex held across a blocking call (channel op, " +
		"select without default, HTTP round-trip, fsync, sleep, WaitGroup.Wait) " +
		"in internal/{service,shard}; sanctioned sites carry //hmc:lockhold(reason)",
	Match: analysis.HasSuffix("internal/service", "internal/shard"),
	Run:   run,
}

func run(pass *analysis.Pass) error {
	analysis.Funcs(pass.Files, func(fn *ast.FuncDecl) {
		c := &checker{pass: pass}
		c.block(fn.Body.List, map[string]token.Pos{})
	})
	return nil
}

type checker struct {
	pass *analysis.Pass
}

// block walks one statement list with the set of currently-held mutexes
// (textual lock expression -> Lock position). Nested blocks get a copy:
// an early Unlock inside a guard clause releases only along that path.
func (c *checker) block(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if key, locks, ok := c.lockOp(s.X); ok {
				if locks {
					held[key] = s.Pos()
				} else {
					delete(held, key)
				}
				continue
			}
			c.scan(s, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() pins the lock to function end; the defer
			// itself runs outside our linear order, so just keep the lock
			// held and do not scan the deferred call.
			if _, _, ok := c.lockOp(s.Call); ok {
				continue
			}
			// Other deferred calls run after the function body; skip.
		case *ast.IfStmt:
			c.scanExprs(held, s.Init, s.Cond)
			c.block(s.Body.List, copyHeld(held))
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					c.block(e.List, copyHeld(held))
				case *ast.IfStmt:
					c.block([]ast.Stmt{e}, copyHeld(held))
				}
			}
		case *ast.ForStmt:
			c.scanExprs(held, s.Init, s.Cond, s.Post)
			c.block(s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			c.scanExprs(held, s.X)
			c.block(s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			c.scanExprs(held, s.Init, s.Tag)
			for _, cc := range s.Body.List {
				if cl, ok := cc.(*ast.CaseClause); ok {
					c.block(cl.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			c.scanExprs(held, s.Init, s.Assign)
			for _, cc := range s.Body.List {
				if cl, ok := cc.(*ast.CaseClause); ok {
					c.block(cl.Body, copyHeld(held))
				}
			}
		case *ast.BlockStmt:
			c.block(s.List, copyHeld(held))
		case *ast.LabeledStmt:
			c.block([]ast.Stmt{s.Stmt}, held)
		default:
			c.scan(s, held)
		}
	}
}

func (c *checker) scanExprs(held map[string]token.Pos, nodes ...ast.Node) {
	for _, n := range nodes {
		if n != nil && !isNilNode(n) {
			c.scan(n, held)
		}
	}
}

func isNilNode(n ast.Node) bool {
	switch v := n.(type) {
	case ast.Expr:
		return v == nil
	case ast.Stmt:
		return v == nil
	}
	return n == nil
}

// scan reports blocking constructs inside one node while any lock is held.
func (c *checker) scan(node ast.Node, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its body runs under its own schedule, not this lock
		case *ast.SendStmt:
			c.report(n.Pos(), "channel send", held)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.report(n.Pos(), "channel receive", held)
			}
		case *ast.SelectStmt:
			if !hasDefault(n) {
				c.report(n.Pos(), "select without default", held)
			}
			return false // cases were either cleared above or are non-blocking
		case *ast.CallExpr:
			if what := c.blockingCall(n); what != "" {
				c.report(n.Pos(), what, held)
			}
		}
		return true
	})
}

func (c *checker) report(pos token.Pos, what string, held map[string]token.Pos) {
	if c.pass.Allowed("lockhold", pos) {
		return
	}
	for key, lockPos := range held {
		c.pass.Reportf(pos, "%s while holding %s (locked at %s): snapshot under the lock, block outside it, or annotate with //hmc:lockhold(reason)",
			what, key, c.pass.Fset.Position(lockPos))
	}
}

// lockOp recognizes <expr>.Lock/RLock/Unlock/RUnlock on a sync mutex,
// returning the textual mutex key and whether it acquires.
func (c *checker) lockOp(e ast.Expr) (key string, locks, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	tv, okT := c.pass.TypesInfo.Types[sel.X]
	if !okT {
		return "", false, false
	}
	if !analysis.IsNamed(tv.Type, "sync", "Mutex") && !analysis.IsNamed(tv.Type, "sync", "RWMutex") {
		return "", false, false
	}
	return types.ExprString(sel.X), locks, true
}

// blockingCall classifies calls that can park the goroutine indefinitely.
func (c *checker) blockingCall(call *ast.CallExpr) string {
	obj := analysis.CalleeObj(c.pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	pkg, name := obj.Pkg().Path(), obj.Name()
	recv := receiverType(obj)
	switch {
	case pkg == "net/http" && name == "Do" && analysis.IsNamed(recv, "net/http", "Client"):
		return "HTTP round-trip (http.Client.Do)"
	case pkg == "net/http" && recv == nil &&
		(name == "Get" || name == "Post" || name == "Head" || name == "PostForm"):
		return "HTTP round-trip (http." + name + ")"
	case pkg == "os" && name == "Sync" && analysis.IsNamed(recv, "os", "File"):
		return "fsync (os.File.Sync)"
	case pkg == "time" && name == "Sleep":
		return "time.Sleep"
	case pkg == "sync" && name == "Wait" && analysis.IsNamed(recv, "sync", "WaitGroup"):
		return "WaitGroup.Wait"
	case pkg == "net" && (name == "Dial" || name == "DialTimeout" || name == "DialContext"):
		return "network dial"
	case pkg == "os/exec" && (name == "Run" || name == "Wait" || name == "Output" || name == "CombinedOutput"):
		return "subprocess wait (exec." + name + ")"
	}
	return ""
}

func receiverType(obj types.Object) types.Type {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

func hasDefault(s *ast.SelectStmt) bool {
	for _, cc := range s.Body.List {
		if cl, ok := cc.(*ast.CommClause); ok && cl.Comm == nil {
			return true
		}
	}
	return false
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
