// Package errtaxonomy pins the peer error taxonomy of internal/shard
// (PR 7): the pool's retry/demotion ladder branches on shard.IsTransient,
// so every remote Runner implementation must classify its failures at the
// source. Transport-side failures — the connection died, the body was
// truncated, the peer replied with garbage — are fixable by retrying and
// must be wrapped with transient(...); failures that are deterministic
// functions of the request (4xx, spec mismatches) must stay bare so the
// pool demotes immediately instead of burning its retry budget.
//
// The drift class: someone adds a new early return to a peer RunLeg —
// say a second read or a decode — and returns the error bare. Nothing
// fails until a flaky network turns every hiccup into an instant
// demotion. This analyzer makes the omission visible at review time:
// inside any method named RunLeg whose receiver is not Local, an error
// obtained from a transport-class call
//
//	(net/http.Client).Do, io.ReadAll, io.Copy, encoding/json.Unmarshal
//
// must pass through a call to transient (or any function whose name
// contains "transient") before being returned.
package errtaxonomy

import (
	"go/ast"
	"go/types"
	"strings"

	"hmc/tools/vet-hmc/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errtaxonomy",
	Doc: "peer RunLeg implementations must wrap transport-class errors " +
		"(http Do, body reads, response decodes) with transient(...) so the " +
		"pool's IsTransient retry/demotion split stays sound",
	Match: analysis.HasSuffix("internal/shard"),
	Run:   run,
}

func run(pass *analysis.Pass) error {
	analysis.Funcs(pass.Files, func(fn *ast.FuncDecl) {
		if fn.Name.Name != "RunLeg" || fn.Recv == nil || receiverName(fn) == "Local" {
			return
		}
		checkRunLeg(pass, fn)
	})
	return nil
}

// transportClass reports whether the call fetches bytes from the wire —
// the failures a retry can fix.
func transportClass(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	obj := analysis.CalleeObj(pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	key := obj.Pkg().Path() + "." + obj.Name()
	switch key {
	case "io.ReadAll", "io.Copy", "encoding/json.Unmarshal":
		return key, true
	case "net/http.Do":
		// (*http.Client).Do — method objects carry the package, and no
		// other Do in net/http returns (resp, err) we would assign here.
		return "(*http.Client).Do", true
	}
	return "", false
}

func checkRunLeg(pass *analysis.Pass, fn *ast.FuncDecl) {
	// source[v] records the transport call an error variable currently
	// holds the result of; updated in traversal (≈ source) order.
	source := map[types.Object]string{}

	classify := func(lhs []ast.Expr, rhs []ast.Expr) {
		if len(rhs) != 1 {
			return
		}
		call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
		isTransport := false
		from := ""
		if ok {
			from, isTransport = transportClass(pass, call)
		}
		for _, l := range lhs {
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil || !isErrorType(obj.Type()) {
				continue
			}
			if isTransport {
				source[obj] = from
			} else {
				delete(source, obj) // reassigned from a benign source
			}
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			classify(n.Lhs, n.Rhs)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				checkResult(pass, source, res)
			}
		}
		return true
	})
}

// checkResult reports error results that reference a transport-sourced
// variable without a transient(...) wrapper anywhere in the expression.
func checkResult(pass *analysis.Pass, source map[types.Object]string, res ast.Expr) {
	if wrapsTransient(res) {
		return
	}
	ast.Inspect(res, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if from, ok := source[obj]; ok {
			pass.Reportf(res.Pos(),
				"error from %s returned without transient(...) classification: the pool will demote the peer instead of retrying — wrap it, or rebind the variable if the failure is a deterministic function of the request", from)
			return false
		}
		return true
	})
}

// wrapsTransient reports whether the expression contains a call to a
// transient-classifying function.
func wrapsTransient(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if strings.Contains(strings.ToLower(fun.Name), "transient") {
				found = true
			}
		case *ast.SelectorExpr:
			if strings.Contains(strings.ToLower(fun.Sel.Name), "transient") {
				found = true
			}
		}
		return !found
	})
	return found
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

func receiverName(fn *ast.FuncDecl) string {
	if len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
