package errtaxonomy_test

import (
	"testing"

	"hmc/tools/vet-hmc/analysis/analysistest"
	"hmc/tools/vet-hmc/analyzers/errtaxonomy"
)

func TestErrtaxonomy(t *testing.T) {
	analysistest.Run(t, "testdata", errtaxonomy.Analyzer, "fix/internal/shard")
}
