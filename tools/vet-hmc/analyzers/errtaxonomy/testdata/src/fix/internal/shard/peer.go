// Fixture for the errtaxonomy analyzer: a remote RunLeg whose transport
// errors must be classified transient, alongside the deterministic
// failures that must stay bare.
package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Checkpoint stands in for core.Checkpoint.
type Checkpoint struct{}

type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }

func transient(err error) error { return &transientError{err: err} }

// HTTPPeer mirrors the real remote runner.
type HTTPPeer struct {
	client *http.Client
	url    string
}

func (p *HTTPPeer) RunLeg(req *http.Request) (*Checkpoint, error) {
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err // want `error from \(\*http\.Client\)\.Do returned without transient\(\.\.\.\) classification`
	}
	defer resp.Body.Close()

	if resp.StatusCode/100 == 4 {
		// Deterministic function of the request: bare is correct.
		return nil, fmt.Errorf("peer rejected leg: %s", resp.Status)
	}

	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, transient(fmt.Errorf("reading leg response: %w", err))
	}

	var cp Checkpoint
	if err := json.Unmarshal(body, &cp); err != nil {
		return nil, err // want `error from encoding/json\.Unmarshal returned without transient\(\.\.\.\) classification`
	}
	return &cp, nil
}

// Local is exempt by name: in-process legs have no transport class.
type Local struct{}

func (l *Local) RunLeg(req *http.Request) (*Checkpoint, error) {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	resp.Body.Close()
	return &Checkpoint{}, nil
}

// RebindPeer shows the sanctioned rebind: once the variable holds a
// deterministic error, returning it bare is fine.
type RebindPeer struct {
	client *http.Client
}

func (p *RebindPeer) RunLeg(req *http.Request) (*Checkpoint, error) {
	resp, err := p.client.Do(req)
	if err != nil {
		err = fmt.Errorf("leg transport failed (spec %s)", req.URL)
		return nil, err
	}
	resp.Body.Close()
	return &Checkpoint{}, nil
}
