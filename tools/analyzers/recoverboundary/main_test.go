package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the working directory to the directory containing
// go.mod, so the test finds internal/core regardless of where go test runs.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// TestCoreIsClean pins the invariant on the real package: every engine
// entry point in internal/core routes through the recover boundary.
func TestCoreIsClean(t *testing.T) {
	core := filepath.Join(repoRoot(t), "internal", "core")
	files, err := expand([]string{core})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no files found in internal/core")
	}
	if err := check(files, os.Stderr); err != nil {
		t.Errorf("internal/core violates the recover boundary: %v", err)
	}
}

func writeFile(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUnguardedEntryPointFlagged(t *testing.T) {
	path := writeFile(t, "bad.go", `
package core

import "hmc/internal/prog"

// CheckNew runs engine code without any boundary: must be flagged.
func CheckNew(p *prog.Program, n int) error {
	e := &explorer{p: p}
	e.visit(nil)
	return nil
}
`)
	err := check([]string{path}, os.Stderr)
	if err == nil {
		t.Fatal("unguarded entry point not flagged")
	}
	if !strings.Contains(err.Error(), "1 finding") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestGuardedVariantsPass(t *testing.T) {
	src := `
package core

import "hmc/internal/prog"

// Routed through Explore: ok.
func CheckA(p *prog.Program) error {
	_, err := Explore(p, Options{})
	return err
}

// Own deferred recover: ok.
func CheckB(p *prog.Program) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = wrap(r)
		}
	}()
	return engine(p)
}

// Through the explorer's guard: ok.
func CheckC(p *prog.Program) {
	e := &explorer{p: p}
	e.guard(func() { e.visit(nil) })
}

// Not an entry point (unexported): exempt.
func helper(p *prog.Program) {}

// Not an entry point (first parameter is not *prog.Program): exempt.
func AsSomething(err error) bool { return false }
`
	if err := check([]string{writeFile(t, "good.go", src)}, os.Stderr); err != nil {
		t.Errorf("guarded variants flagged: %v", err)
	}
}

func TestDeferWithoutRecoverStillFlagged(t *testing.T) {
	src := `
package core

import "hmc/internal/prog"

func CheckD(p *prog.Program) {
	defer func() { cleanup() }()
	engine(p)
}
`
	if err := check([]string{writeFile(t, "defer.go", src)}, os.Stderr); err == nil {
		t.Error("defer without recover() accepted as a boundary")
	}
}

func TestUnitCheckerProtocol(t *testing.T) {
	dir := t.TempDir()
	bad := writeFile(t, "bad.go", `
package core

import "hmc/internal/prog"

func CheckNew(p *prog.Program) { engine(p) }
`)
	vetx := filepath.Join(dir, "out.vetx")
	cfg := filepath.Join(dir, "unit.cfg")
	cfgJSON := `{"ImportPath":"hmc/internal/core","GoFiles":[` + jsonStr(bad) + `],"VetxOnly":false,"VetxOutput":` + jsonStr(vetx) + `}`
	if err := os.WriteFile(cfg, []byte(cfgJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{cfg})
	if err == nil {
		t.Error("unit invocation over a bad file succeeded")
	}
	if _, statErr := os.Stat(vetx); statErr != nil {
		t.Errorf("facts file not written: %v", statErr)
	}

	// VetxOnly invocations (dependency packages) must succeed and write
	// facts without analyzing anything.
	vetx2 := filepath.Join(dir, "dep.vetx")
	cfg2 := filepath.Join(dir, "dep.cfg")
	cfgJSON2 := `{"ImportPath":"hmc/internal/eg","GoFiles":[` + jsonStr(bad) + `],"VetxOnly":true,"VetxOutput":` + jsonStr(vetx2) + `}`
	if err := os.WriteFile(cfg2, []byte(cfgJSON2), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{cfg2}); err != nil {
		t.Errorf("VetxOnly invocation failed: %v", err)
	}
	if _, statErr := os.Stat(vetx2); statErr != nil {
		t.Errorf("VetxOnly facts file not written: %v", statErr)
	}
}

func jsonStr(s string) string {
	b := strings.Builder{}
	b.WriteByte('"')
	for _, r := range s {
		if r == '"' || r == '\\' {
			b.WriteByte('\\')
		}
		b.WriteRune(r)
	}
	b.WriteByte('"')
	return b.String()
}
