// Command recoverboundary is a vet-style analyzer enforcing the engine's
// fault-containment invariant (internal/core/recover.go): every exported
// entry point of internal/core that accepts a program — the functions that
// run engine code and can therefore panic on a poisoned input — must route
// through the panic→error boundary. Concretely, an exported package-level
// function whose first parameter is *prog.Program must syntactically
// contain at least one of:
//
//   - a deferred function literal that calls recover() (Estimate's own
//     boundary),
//   - a call to Explore (which installs the boundary itself), or
//   - a call to the explorer's guard method.
//
// Without this, a new analysis added to internal/core could silently turn
// an engine panic back into a process crash, undoing PR 2's containment
// work. The check is syntactic on purpose: it needs no type information,
// so it runs from source alone and stays dependency-free.
//
// Usage:
//
//	recoverboundary [files or directories...]     # direct mode
//	go vet -vettool=$(which recoverboundary) pkg  # vet-tool mode
//
// Direct mode parses the named .go files (or all non-test .go files under
// named directories), prints findings as file:line: message, and exits
// non-zero if any are found. With no arguments it checks ./internal/core.
//
// Vet-tool mode implements the subset of cmd/go's unitchecker protocol the
// go tool actually drives: `-V=full` prints a version fingerprint used as
// the cache key, `-flags` prints the (empty) analyzer flag set as JSON,
// and an invocation with a single *.cfg argument analyzes that package's
// GoFiles and writes the (empty) facts file the go tool expects at
// VetxOutput. The rule is scoped to the internal/core import path: the
// packages underneath it (eg, interp, relation, axenum, …) run inside
// core's guard and are exempt by design, so other packages pass trivially.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	// Vet-tool protocol, step 1: version fingerprint for the build cache.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		return printVersion()
	}
	// Vet-tool protocol, step 2: advertise analyzer flags (we have none).
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return nil
	}
	// Vet-tool protocol, step 3: a single *.cfg argument.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runUnit(args[0])
	}
	// Direct mode.
	if len(args) == 0 {
		args = []string{filepath.Join("internal", "core")}
	}
	files, err := expand(args)
	if err != nil {
		return err
	}
	return check(files, os.Stderr)
}

// printVersion writes the `name version ...` line cmd/go parses from
// `-V=full` output. Hashing the executable makes the go tool's vet cache
// invalidate when the analyzer itself changes.
func printVersion() error {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			id = fmt.Sprintf("%x", sha256.Sum256(data))[:16]
		}
	}
	fmt.Printf("recoverboundary version devel buildID=%s\n", id)
	return nil
}

// vetConfig is the subset of cmd/go's vet .cfg JSON this tool reads.
type vetConfig struct {
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

func runUnit(cfgPath string) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("%s: parsing vet config: %w", cfgPath, err)
	}
	// The go tool requires the facts file to exist even for analyzers
	// that export none, and for VetxOnly (dependency) invocations that
	// is the whole job.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("recoverboundary\n"), 0o666); err != nil {
			return err
		}
	}
	// The invariant lives at the engine's public surface. Packages below
	// core (interp, eg, relation, axenum, operational) panic freely and
	// rely on core's guard to contain it — checking them would demand a
	// boundary in the wrong layer.
	if cfg.VetxOnly || !strings.HasSuffix(cfg.ImportPath, "internal/core") {
		return nil
	}
	return check(cfg.GoFiles, os.Stderr)
}

// expand resolves a mix of files and directories into the non-test .go
// files to analyze.
func expand(args []string) ([]string, error) {
	var files []string
	for _, a := range args {
		info, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, a)
			continue
		}
		ents, err := os.ReadDir(a)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			files = append(files, filepath.Join(a, name))
		}
	}
	return files, nil
}

// check parses the files and reports every entry-point violation as a
// file:line: message line. It returns an error iff there were findings.
func check(files []string, out *os.File) error {
	fset := token.NewFileSet()
	findings := 0
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || !isEntryPoint(fn) {
				continue
			}
			if !routesThroughBoundary(fn) {
				pos := fset.Position(fn.Pos())
				fmt.Fprintf(out, "%s:%d: exported engine entry point %s does not route through the recover boundary (needs a deferred recover, an Explore call, or a guard call)\n",
					pos.Filename, pos.Line, fn.Name.Name)
				findings++
			}
		}
	}
	if findings > 0 {
		return fmt.Errorf("recoverboundary: %d finding(s)", findings)
	}
	return nil
}

// isEntryPoint reports whether fn is an exported package-level function
// whose first parameter is *prog.Program — the signature shared by every
// engine entry point (Explore, Estimate, CheckRobustness, CheckRaces,
// CheckLiveness). Methods and helpers with other signatures are exempt:
// they cannot be called without going through an entry point first.
func isEntryPoint(fn *ast.FuncDecl) bool {
	if fn.Recv != nil || !fn.Name.IsExported() || fn.Body == nil {
		return false
	}
	params := fn.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	star, ok := params.List[0].Type.(*ast.StarExpr)
	if !ok {
		return false
	}
	sel, ok := star.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Program" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "prog"
}

// routesThroughBoundary reports whether fn's body contains a deferred
// recover, a call to Explore, or a call to a guard method.
func routesThroughBoundary(fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && callsRecover(lit) {
				found = true
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "Explore" {
					found = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "guard" || fun.Sel.Name == "Explore" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// callsRecover reports whether the function literal's body calls the
// recover builtin (directly or in a nested node).
func callsRecover(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
				found = true
			}
		}
		return !found
	})
	return found
}
