package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"hmc/internal/gen"
	"hmc/internal/prog"
)

// This file backs `hmc-bench -json` / `-baseline`: a small tracked suite
// of explorations whose *work counters* (executions, states, consistency
// checks, revisit candidates) are deterministic for a given engine, so CI
// can diff them against a committed BENCH_explore.json and fail on a
// real algorithmic regression. Wall-clock is recorded for trend plots but
// never gated — CI machines are too noisy for a time bar.

// BenchRow is one tracked benchmark's measurement.
type BenchRow struct {
	Name              string `json:"name"`
	Model             string `json:"model"`
	Executions        int    `json:"executions"`
	Blocked           int    `json:"blocked"`
	States            int    `json:"states"`
	ConsistencyChecks int    `json:"consistency_checks"`
	RevisitsTried     int    `json:"revisits_tried"`
	// AllocsPerExec is heap allocations per explored execution (runtime
	// Mallocs delta across the run, divided by Executions). Unlike
	// wall-clock it barely moves between machines, so it IS gated — it is
	// the counter that catches an allocation regression on the hot path
	// (a dropped pool, a per-check slice) that the work counters can't see.
	AllocsPerExec int64 `json:"allocs_per_exec"`
	NS            int64 `json:"ns"` // wall-clock, informational only
}

// BenchReport is the BENCH_explore.json payload.
type BenchReport struct {
	Suite string     `json:"suite"`
	Rows  []BenchRow `json:"rows"`
}

// benchJobs is the tracked suite. Parametric families rather than corpus
// litmus tests: big enough that a pruning or revisit regression moves the
// counters by orders of magnitude, small enough for every CI run.
func benchJobs(opts Options) []struct {
	p     *prog.Program
	model string
} {
	type job = struct {
		p     *prog.Program
		model string
	}
	jobs := []job{
		{gen.SBN(8), "sc"},
		{gen.SBN(8), "tso"},
		{gen.IndexerN(3), "sc"},
		{gen.IncN(3, 2), "sc"},
	}
	if !opts.Quick {
		jobs = append(jobs, job{gen.SBN(10), "tso"}, job{gen.IncN(3, 3), "sc"})
	}
	return jobs
}

// BenchExplore runs the tracked suite and returns the report.
func BenchExplore(opts Options) (*BenchReport, error) {
	r := &BenchReport{Suite: "explore"}
	for _, j := range benchJobs(opts) {
		// Settle the heap so the Mallocs delta measures the exploration,
		// not a concurrently finishing sweep from the previous row.
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		res, d, err := explore("bench", j.p, j.model)
		if err != nil {
			return nil, err
		}
		runtime.ReadMemStats(&after)
		allocs := int64(after.Mallocs - before.Mallocs)
		r.Rows = append(r.Rows, BenchRow{
			Name:              j.p.Name,
			Model:             j.model,
			Executions:        res.Stats.Executions,
			Blocked:           res.Stats.Blocked,
			States:            res.Stats.States,
			ConsistencyChecks: res.Stats.ConsistencyChecks,
			RevisitsTried:     res.Stats.RevisitsTried,
			AllocsPerExec:     allocs / int64(max1(res.Stats.Executions)),
			NS:                d.Nanoseconds(),
		})
	}
	return r, nil
}

// WriteJSON writes the report, indented, with a trailing newline.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// ReadBenchReport parses a BENCH JSON payload.
func ReadBenchReport(rd io.Reader) (*BenchReport, error) {
	var r BenchReport
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("bench baseline: %w", err)
	}
	return &r, nil
}

// Table renders the report as a harness table (for the human-readable
// hmc-bench output alongside the JSON file).
func (r *BenchReport) Table() *Table {
	t := &Table{
		ID:      "BENCH",
		Title:   "tracked exploration counters (suite " + r.Suite + ")",
		Columns: []string{"program", "model", "execs", "blocked", "states", "checks", "revisits", "allocs/exec", "time"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Model, row.Executions, row.Blocked, row.States,
			row.ConsistencyChecks, row.RevisitsTried, row.AllocsPerExec, ms(time.Duration(row.NS)))
	}
	return t
}

// CompareBaseline checks the current report against a committed baseline:
// any tracked work counter growing past baseline·(1+tolerance) — or a
// baseline row the current suite no longer runs — is a regression and
// returns an error naming every offender. Counters shrinking is an
// improvement, never an error; wall-clock is ignored. Allocations per
// execution are gated like the work counters (they are machine-stable
// enough), but only when the baseline row recorded them — an old
// baseline without the field never trips the gate.
func CompareBaseline(current, baseline *BenchReport, tolerance float64) error {
	cur := map[string]BenchRow{}
	for _, row := range current.Rows {
		cur[row.Name+"/"+row.Model] = row
	}
	var bad []string
	for _, base := range baseline.Rows {
		key := base.Name + "/" + base.Model
		now, ok := cur[key]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: tracked benchmark missing from the current suite", key))
			continue
		}
		check := func(counter string, got, want int) {
			if float64(got) > float64(want)*(1+tolerance) {
				bad = append(bad, fmt.Sprintf("%s: %s regressed %d -> %d (+%.0f%%, tolerance %.0f%%)",
					key, counter, want, got, 100*(float64(got)/float64(want)-1), 100*tolerance))
			}
		}
		check("executions", now.Executions, base.Executions)
		check("blocked", now.Blocked, base.Blocked)
		check("states", now.States, base.States)
		check("consistency_checks", now.ConsistencyChecks, base.ConsistencyChecks)
		check("revisits_tried", now.RevisitsTried, base.RevisitsTried)
		if base.AllocsPerExec > 0 &&
			float64(now.AllocsPerExec) > float64(base.AllocsPerExec)*(1+tolerance) {
			bad = append(bad, fmt.Sprintf("%s: allocs_per_exec regressed %d -> %d (+%.0f%%, tolerance %.0f%%)",
				key, base.AllocsPerExec, now.AllocsPerExec,
				100*(float64(now.AllocsPerExec)/float64(base.AllocsPerExec)-1), 100*tolerance))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("bench baseline: %d regression(s):\n  %s", len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}
