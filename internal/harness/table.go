// Package harness runs the paper-style experiments (T1–T12 in DESIGN.md)
// and renders their tables. Each experiment returns a Table that the
// hmc-bench command prints as aligned text or CSV; the same runners back
// the root-level testing.B benchmarks.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result: a titled grid plus free-form notes.
type Table struct {
	ID      string // experiment id, e.g. "T3"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, stringifying each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := widths[i] - len([]rune(cell)); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// CSV writes the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				sb.WriteByte('"')
			} else {
				sb.WriteString(cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
