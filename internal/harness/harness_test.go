package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID:      "TX",
		Title:   "demo",
		Columns: []string{"name", "count"},
		Notes:   []string{"a note"},
	}
	tb.AddRow("alpha", 12)
	tb.AddRow("b", 3)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TX — demo", "name", "alpha", "12", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	tb.AddRow("x,y", `he said "hi"`)
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("T99", Options{}); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

// TestAllExperimentsQuick smoke-runs every experiment in quick mode and
// checks experiment-specific invariants.
func TestAllExperimentsQuick(t *testing.T) {
	for _, id := range Experiments() {
		tb, err := Run(id, Options{Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
		var buf bytes.Buffer
		if err := tb.Render(&buf); err != nil {
			t.Errorf("%s: render: %v", id, err)
		}
		switch id {
		case "T1":
			if !strings.Contains(strings.Join(tb.Notes, " "), "0 verdict mismatches") {
				t.Errorf("T1 reports mismatches: %v", tb.Notes)
			}
			for _, row := range tb.Rows {
				for _, cell := range row {
					if strings.Contains(cell, "(!)") {
						t.Errorf("T1 verdict mismatch in row %v", row)
					}
				}
			}
		case "T7":
			if !strings.Contains(strings.Join(tb.Notes, " "), "duplicate executions across all programs: 0") {
				t.Errorf("T7 found duplicates: %v", tb.Notes)
			}
		case "T8":
			// The annotation row must be forbidden under rc11 and
			// observable under imm.
			for _, row := range tb.Rows {
				if strings.HasPrefix(row[0], "MP+rel+acq") {
					if row[1] != "no" || row[len(row)-1] != "yes" {
						t.Errorf("T8 compilation row wrong: %v", row)
					}
				}
			}
		case "T9":
			for _, row := range tb.Rows {
				switch row[0] {
				case "inc(2)", "peterson+full", "SB+ffs":
					for _, cell := range row[1:] {
						if cell != "robust" {
							t.Errorf("T9: %s must be robust everywhere: %v", row[0], row)
						}
					}
				case "SB+pos":
					for _, cell := range row[1:] {
						if cell == "robust" {
							t.Errorf("T9: SB must not be robust: %v", row)
						}
					}
				}
			}
		case "T11":
			for _, row := range tb.Rows {
				if strings.HasSuffix(row[0], ",1)") && row[4] != "1" {
					t.Errorf("T11: %s must collapse to a single orbit: %v", row[0], row)
				}
			}
		case "T13":
			// The local-rw family is where pruning must pay: strictly
			// fewer consistency checks and revisit candidates. The sb
			// control row must show zero skips and identical work.
			for _, row := range tb.Rows {
				checks, _ := strconv.Atoi(row[3])
				checksSA, _ := strconv.Atoi(row[4])
				revisits, _ := strconv.Atoi(row[5])
				revisitsSA, _ := strconv.Atoi(row[6])
				switch {
				case strings.HasPrefix(row[0], "LocalRW"):
					if checksSA >= checks || revisitsSA >= revisits {
						t.Errorf("T13: pruning did not reduce work on %s: %v", row[0], row)
					}
					if row[7] == "0/0/0" {
						t.Errorf("T13: no skips recorded on %s: %v", row[0], row)
					}
				case strings.HasPrefix(row[0], "SB"):
					if row[7] != "0/0/0" || checksSA != checks || revisitsSA != revisits {
						t.Errorf("T13: control row must be untouched by pruning: %v", row)
					}
				}
			}
		case "T14":
			// Every default-cadence row on a multi-execution program must
			// carry the kill/resume accounting, and it must add up to the
			// straight run's total.
			resumes := 0
			for _, row := range tb.Rows {
				if row[4] != "2000" {
					continue
				}
				execs, _ := strconv.Atoi(row[2])
				if execs < 2 {
					continue
				}
				saved, err1 := strconv.Atoi(row[8])
				does, err2 := strconv.Atoi(row[9])
				if err1 != nil || err2 != nil || saved+does != execs {
					t.Errorf("T14: kill/resume accounting broken: %v", row)
				}
				resumes++
			}
			if resumes == 0 {
				t.Error("T14: no row exercised the kill/resume leg")
			}
		case "T15":
			// Fast-cadence rows on long-running programs must deliver
			// periodic snapshots, not just the guaranteed final one; every
			// row delivers at least the final snapshot.
			periodic := false
			for _, row := range tb.Rows {
				snaps, err := strconv.Atoi(row[5])
				if err != nil || snaps < 1 {
					t.Errorf("T15: row delivered no snapshots: %v", row)
				}
				if row[4] == "1ms" && snaps > 1 {
					periodic = true
				}
			}
			if !periodic {
				t.Error("T15: no row delivered a periodic (non-final) snapshot at the 1ms cadence")
			}
		case "T5":
			// The ablation must miss at least one execution on LB(2).
			missedAny := false
			for _, row := range tb.Rows {
				if row[len(row)-1] != "0" {
					missedAny = true
				}
				if row[0] == "LB(2)" && row[4] != "false" {
					t.Errorf("ablation observed the LB weak outcome: %v", row)
				}
			}
			if !missedAny {
				t.Error("ablation missed nothing — the T5 claim is empty")
			}
		}
	}
}
