package harness

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"hmc/internal/axenum"
	"hmc/internal/core"
	"hmc/internal/eg"
	"hmc/internal/gen"
	"hmc/internal/litmus"
	"hmc/internal/memmodel"
	"hmc/internal/obs"
	"hmc/internal/operational"
	"hmc/internal/prog"
	"hmc/internal/shard"
)

// Options scales the experiments.
type Options struct {
	// Quick shrinks parameter sweeps for smoke runs (CI, -short tests).
	Quick bool
}

// Experiments lists the experiment ids in order.
func Experiments() []string {
	return []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10", "T11", "T12", "T13", "T14", "T15", "T16", "T17"}
}

// Run executes one experiment by id. Any failure — an unknown model, an
// engine error on a particular program — is returned, naming the
// experiment, program and model that died, never panicked through the
// caller (cmd/hmc-bench and cmd/hmc-litmus print it and exit nonzero).
func Run(id string, opts Options) (*Table, error) {
	switch id {
	case "T1":
		return T1LitmusMatrix(opts)
	case "T2":
		return T2AxenumComparison(opts)
	case "T3":
		return T3OperationalComparison(opts)
	case "T4":
		return T4Scaling(opts)
	case "T5":
		return T5Ablation(opts)
	case "T6":
		return T6FenceMatrix(opts)
	case "T7":
		return T7OptimalityStats(opts)
	case "T8":
		return T8Compilation(opts)
	case "T9":
		return T9Robustness(opts)
	case "T10":
		return T10Parallel(opts)
	case "T11":
		return T11Symmetry(opts)
	case "T12":
		return T12Estimate(opts)
	case "T13":
		return T13StaticPruning(opts)
	case "T14":
		return T14CheckpointResume(opts)
	case "T15":
		return T15ProgressOverhead(opts)
	case "T16":
		return T16ShardedExploration(opts)
	case "T17":
		return T17ConsistencyPath(opts)
	}
	return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", id, Experiments())
}

// explore runs the HMC explorer and times it; id names the calling
// experiment so a failure reports exactly which table, program and model
// died.
func explore(id string, p *prog.Program, model string) (*core.Result, time.Duration, error) {
	return exploreOpts(id, p, model, core.Options{})
}

// exploreOpts is explore with extra exploration options.
func exploreOpts(id string, p *prog.Program, model string, opts core.Options) (*core.Result, time.Duration, error) {
	m, err := memmodel.ByName(model)
	if err != nil {
		return nil, 0, fmt.Errorf("harness %s: %w", id, err)
	}
	opts.Model = m
	start := time.Now()
	res, err := core.Explore(p, opts)
	if err != nil {
		return nil, 0, fmt.Errorf("harness %s: exploring %q under %s: %w", id, p.Name, model, err)
	}
	return res, time.Since(start), nil
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000) }

func verdict(observed bool) string {
	if observed {
		return "allowed"
	}
	return "forbidden"
}

func mark(observed, expected bool) string {
	v := verdict(observed)
	if observed == expected {
		return v
	}
	return v + " (!)"
}

// T1LitmusMatrix checks every corpus litmus test under every model and
// compares the verdict with the expected one — the reproduction of the
// paper's model-validation table.
func T1LitmusMatrix(opts Options) (*Table, error) {
	models := memmodel.Names()
	t := &Table{
		ID:      "T1",
		Title:   "litmus verdict matrix (observed verdict; (!) marks a mismatch with the expected table)",
		Columns: append([]string{"test"}, models...),
	}
	mismatches := 0
	for _, tc := range litmus.Corpus() {
		row := []any{tc.Name}
		for _, model := range models {
			res, _, err := explore("T1", tc.P, model)
			if err != nil {
				return nil, err
			}
			observed := res.ExistsCount > 0
			expected, known := tc.Allowed[model]
			cell := verdict(observed)
			if known {
				cell = mark(observed, expected)
				if observed != expected {
					mismatches++
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d verdict mismatches against the expected matrix", mismatches))
	return t, nil
}

// T2AxenumComparison compares HMC exploration against the herd-style
// enumeration baseline on the corpus under the hardware model: executions
// explored vs candidate graphs enumerated, and wall-clock time.
func T2AxenumComparison(opts Options) (*Table, error) {
	t := &Table{
		ID:      "T2",
		Title:   "HMC vs herd-style enumeration (model: imm)",
		Columns: []string{"test", "hmc execs", "hmc time", "enum candidates", "enum consistent", "enum time", "candidates/exec"},
	}
	type entry struct {
		name string
		p    *prog.Program
	}
	var tests []entry
	corpus := litmus.Corpus()
	if opts.Quick {
		corpus = corpus[:6]
	}
	for _, tc := range corpus {
		tests = append(tests, entry{tc.Name, tc.P})
	}
	if !opts.Quick {
		// Coherence permutations and RMW chains are where candidate
		// enumeration explodes combinatorially.
		for _, p := range []*prog.Program{
			gen.CoRRN(3), gen.CoRRN(4), gen.IncN(3, 1), gen.IncN(2, 2), gen.CASContendN(3),
		} {
			tests = append(tests, entry{p.Name, p})
		}
	}
	imm, err := memmodel.ByName("imm")
	if err != nil {
		return nil, fmt.Errorf("harness T2: %w", err)
	}
	for _, tc := range tests {
		res, d, err := explore("T2", tc.p, "imm")
		if err != nil {
			return nil, err
		}
		start := time.Now()
		ref, err := axenum.Explore(tc.p, axenum.Options{Model: imm})
		if err != nil {
			return nil, fmt.Errorf("harness T2: enumerating %q under imm: %w", tc.name, err)
		}
		refD := time.Since(start)
		ratio := "-"
		if res.Executions > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(ref.Candidates)/float64(res.Executions))
		}
		t.AddRow(tc.name, res.Executions, ms(d), ref.Candidates, ref.Consistent, ms(refD), ratio)
	}
	t.Notes = append(t.Notes,
		"enumeration guesses read values and filters rf×co candidates: its candidate set grows exponentially faster than the consistent set HMC visits directly")
	return t, nil
}

// T3OperationalComparison compares HMC against the operational store-buffer
// explorer (the Nidhugg-style baseline) under TSO: consistent execution
// graphs vs machine traces.
func T3OperationalComparison(opts Options) (*Table, error) {
	t := &Table{
		ID:      "T3",
		Title:   "HMC graphs vs operational traces (model: tso)",
		Columns: []string{"program", "hmc execs", "hmc time", "machine traces", "machine time", "traces/exec"},
	}
	// Per-family caps keep the *trace* enumeration tractable — the very
	// blowup the table demonstrates (graph counts stay tiny).
	caps := []struct {
		build func(int) *prog.Program
		max   int
	}{
		{gen.SBN, 4},
		{gen.MPN, 4},
		{gen.TwoPlusTwoWN, 3},
		{func(n int) *prog.Program { return gen.IncN(n, 1) }, 5},
	}
	var programs []*prog.Program
	for _, c := range caps {
		max := c.max
		if opts.Quick && max > 3 {
			max = 3
		}
		for n := 2; n <= max; n++ {
			programs = append(programs, c.build(n))
		}
	}
	for _, p := range programs {
		res, d, err := explore("T3", p, "tso")
		if err != nil {
			return nil, err
		}
		start := time.Now()
		op, err := operational.Explore(p, operational.Options{Level: operational.TSO})
		if err != nil {
			return nil, fmt.Errorf("harness T3: operational exploration of %q: %w", p.Name, err)
		}
		opD := time.Since(start)
		t.AddRow(p.Name, res.Executions, ms(d), op.Traces, ms(opD),
			fmt.Sprintf("%.1fx", float64(op.Traces)/float64(max1(res.Executions))))
	}
	t.Notes = append(t.Notes,
		"the operational explorer enumerates interleavings and buffer-commit schedules; graphs abstract both, so the gap widens with thread count")
	return t, nil
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// T4Scaling produces the scaling figure's series: time and work vs n for
// the three checkers on SB(n) and LB(n).
func T4Scaling(opts Options) (*Table, error) {
	t := &Table{
		ID:      "T4",
		Title:   "scaling with parameter n (series rows; model per family noted)",
		Columns: []string{"family", "n", "hmc execs", "hmc time", "machine traces", "machine time", "enum candidates", "enum time"},
	}
	max := 5
	machineMax := 4 // trace enumeration explodes beyond this
	if opts.Quick {
		max, machineMax = 3, 3
	}
	tso, err := memmodel.ByName("tso")
	if err != nil {
		return nil, fmt.Errorf("harness T4: %w", err)
	}
	imm, err := memmodel.ByName("imm")
	if err != nil {
		return nil, fmt.Errorf("harness T4: %w", err)
	}
	for n := 2; n <= max; n++ {
		p := gen.SBN(n)
		res, d, err := explore("T4", p, "tso")
		if err != nil {
			return nil, err
		}
		traces, opTime := "-", "-"
		if n <= machineMax {
			opStart := time.Now()
			op, err := operational.Explore(p, operational.Options{Level: operational.TSO})
			if err != nil {
				return nil, fmt.Errorf("harness T4: operational exploration of %q: %w", p.Name, err)
			}
			traces, opTime = fmt.Sprint(op.Traces), ms(time.Since(opStart))
		}
		enumStart := time.Now()
		en, err := axenum.Explore(p, axenum.Options{Model: tso})
		if err != nil {
			return nil, fmt.Errorf("harness T4: enumerating %q under tso: %w", p.Name, err)
		}
		enD := time.Since(enumStart)
		t.AddRow("SB/tso", n, res.Executions, ms(d), traces, opTime, en.Candidates, ms(enD))
	}
	for n := 2; n <= max; n++ {
		p := gen.LBN(n)
		res, d, err := explore("T4", p, "imm")
		if err != nil {
			return nil, err
		}
		enumStart := time.Now()
		en, err := axenum.Explore(p, axenum.Options{Model: imm})
		if err != nil {
			return nil, fmt.Errorf("harness T4: enumerating %q under imm: %w", p.Name, err)
		}
		enD := time.Since(enumStart)
		t.AddRow("LB/imm", n, res.Executions, ms(d), "-", "-", en.Candidates, ms(enD))
	}
	t.Notes = append(t.Notes,
		"LB(n) has no operational baseline: no store-buffer machine exhibits load buffering — the gap HMC exists to fill")
	return t, nil
}

// T5Ablation compares full dependency-aware revisits against the
// porf-prefix-only ablation (GenMC-style) on the load-buffering family
// under the hardware model: the ablation misses every po∪rf-cyclic
// execution.
func T5Ablation(opts Options) (*Table, error) {
	t := &Table{
		ID:      "T5",
		Title:   "dependency-aware revisits vs porf-only ablation (model: imm)",
		Columns: []string{"program", "full execs", "full weak?", "ablation execs", "ablation weak?", "missed"},
	}
	max := 5
	if opts.Quick {
		max = 3
	}
	var programs []*prog.Program
	for n := 2; n <= max; n++ {
		programs = append(programs, gen.LBN(n))
	}
	lbVariants := []string{"LB", "LB+data+po", "LB+datas"}
	for _, name := range lbVariants {
		if tc, ok := litmus.ByName(name); ok {
			programs = append(programs, tc.P)
		}
	}
	for _, p := range programs {
		full, _, err := explore("T5", p, "imm")
		if err != nil {
			return nil, err
		}
		abl, _, err := exploreOpts("T5", p, "imm", core.Options{PorfOnlyRevisits: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(p.Name, full.Executions, full.ExistsCount > 0,
			abl.Executions, abl.ExistsCount > 0, full.Executions-abl.Executions)
	}
	t.Notes = append(t.Notes,
		"porf-only revisits delete every po-successor of the revisited read, so rf edges into the po-past — allowed by hardware models — are unreachable")
	return t, nil
}

// T6FenceMatrix shows how fences and dependencies repair the classic weak
// behaviours across models — the programming-guidance table.
func T6FenceMatrix(opts Options) (*Table, error) {
	models := memmodel.Names()
	t := &Table{
		ID:      "T6",
		Title:   "fence/dependency repair matrix (is the weak outcome observable?)",
		Columns: append([]string{"test"}, models...),
	}
	names := []string{
		"SB", "SB+ffs",
		"MP", "MP+lw+ld", "MP+lw+addr", "MP+lw+ctrl",
		"LB", "LB+datas", "LB+ctrls",
		"2+2W", "2+2W+lws",
		"IRIW", "IRIW+ffs", "IRIW+addrs",
	}
	for _, name := range names {
		tc, ok := litmus.ByName(name)
		if !ok {
			continue
		}
		row := []any{name}
		for _, model := range models {
			res, _, err := explore("T6", tc.P, model)
			if err != nil {
				return nil, err
			}
			row = append(row, map[bool]string{true: "yes", false: "no"}[res.ExistsCount > 0])
		}
		t.AddRow(row...)
	}
	return t, nil
}

// T7OptimalityStats reports the exploration statistics across the corpus
// and generator families: executions, states, memo hits, revisits, blocked
// runs — and, crucially, zero duplicates.
func T7OptimalityStats(opts Options) (*Table, error) {
	t := &Table{
		ID:      "T7",
		Title:   "exploration statistics (model: imm)",
		Columns: []string{"program", "execs", "blocked", "states", "memo hits", "revisits", "repair fails", "duplicates"},
	}
	var programs []*prog.Program
	for _, tc := range litmus.Corpus() {
		programs = append(programs, tc.P)
	}
	max := 4
	if opts.Quick {
		max = 3
	}
	for n := 2; n <= max; n++ {
		programs = append(programs, gen.SBN(n), gen.LBN(n), gen.IncN(n, 1), gen.CASContendN(n))
	}
	programs = append(programs, gen.SpinlockN(2, eg.FenceNone), gen.IndexerN(3))
	totalDup := 0
	for _, p := range programs {
		res, _, err := exploreOpts("T7", p, "imm", core.Options{DedupSafeguard: true})
		if err != nil {
			return nil, err
		}
		totalDup += res.Duplicates
		t.AddRow(p.Name, res.Executions, res.Blocked, res.States, res.MemoHits,
			res.RevisitsTaken, res.RevisitsRepairFail, res.Duplicates)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("total duplicate executions across all programs: %d (optimality)", totalDup))
	return t, nil
}

// T8Compilation contrasts language-level rel/acq annotations (respected
// by rc11 only) with their hardware compilations (fences/dependencies):
// the formal version of "atomics must be compiled to barriers". Each
// annotated test is paired with the fence-based variant that implements
// it on hardware.
func T8Compilation(opts Options) (*Table, error) {
	models := []string{"rc11", "tso", "pso", "arm", "imm"}
	t := &Table{
		ID:      "T8",
		Title:   "rel/acq annotations vs their hardware compilations (weak outcome observable?)",
		Columns: append([]string{"test"}, models...),
	}
	rows := []struct {
		label string
		name  string
	}{
		{"MP+rel+acq (annotation)", "MP+rel+acq"},
		{"MP+lw+ld (compiled)", "MP+lw+ld"},
		{"MP+lw+addr (compiled, dep)", "MP+lw+addr"},
		{"MP plain (no ordering)", "MP"},
		{"SB+scs (seq_cst annotation)", "SB+scs"},
		{"SB+ffs (compiled)", "SB+ffs"},
		{"SB+sc+rlx (one side annotated)", "SB+sc+rlx"},
		{"IRIW+scs (seq_cst annotation)", "IRIW+scs"},
		{"IRIW+ffs (compiled)", "IRIW+ffs"},
		{"MP+rel-rmw+acq (release sequence)", "MP+rel-rmw+acq"},
	}
	for _, row := range rows {
		tc, ok := litmus.ByName(row.name)
		if !ok {
			continue
		}
		cells := []any{row.label}
		for _, model := range models {
			res, _, err := explore("T8", tc.P, model)
			if err != nil {
				return nil, err
			}
			cells = append(cells, map[bool]string{true: "yes", false: "no"}[res.ExistsCount > 0])
		}
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes,
		"rc11 enforces the annotations; hardware models ignore them — the 'yes' cells in the annotation rows are exactly the reorderings a compiler must prevent with the fence rows' barriers")
	return t, nil
}

// T9Robustness reports, for realistic concurrent idioms, whether every
// execution under each weak model is sequentially consistent — the
// verdict practitioners actually want ("can I reason about this code as
// if it ran under SC?"), with non-SC execution counts where not.
func T9Robustness(opts Options) (*Table, error) {
	models := []string{"tso", "pso", "arm", "imm"}
	t := &Table{
		ID:      "T9",
		Title:   "robustness: is every execution sequentially consistent? (no = count of non-SC executions)",
		Columns: append([]string{"program"}, models...),
	}
	programs := []*prog.Program{}
	for _, name := range []string{"SB", "SB+ffs", "MP", "MP+lw+addr", "inc(2)"} {
		if tc, ok := litmus.ByName(name); ok {
			programs = append(programs, tc.P)
		}
	}
	programs = append(programs,
		gen.Peterson(eg.FenceNone), gen.Peterson(eg.FenceFull),
		gen.SpinlockN(2, eg.FenceNone), gen.SpinlockN(2, eg.FenceFull),
		gen.TreiberPushPop(eg.FenceNone), gen.TreiberPushPop(eg.FenceLW),
		gen.CASContendN(3),
	)
	for _, p := range programs {
		row := []any{p.Name}
		for _, model := range models {
			m, err := memmodel.ByName(model)
			if err != nil {
				return nil, fmt.Errorf("harness T9: %w", err)
			}
			rep, err := core.CheckRobustness(p, m)
			if err != nil {
				return nil, fmt.Errorf("harness T9: robustness of %q under %s: %w", p.Name, model, err)
			}
			if rep.Robust {
				row = append(row, "robust")
			} else {
				row = append(row, fmt.Sprintf("no (%d/%d)", rep.NonSC, rep.Executions))
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"atomic RMW programs are naturally robust; fence-repaired protocols become robust exactly when the weak outcomes vanish")
	return t, nil
}

// T10Parallel measures parallel exploration: the same state space explored
// with 1, 2, 4 and 8 workers. Subtrees fork onto free workers, the state
// memo is shared, and the run asserts the execution count is identical at
// every width — speedup without losing optimality.
func T10Parallel(opts Options) (*Table, error) {
	widths := []int{1, 2, 4, 8}
	t := &Table{
		ID:      "T10",
		Title:   "parallel exploration: wall time by worker count (identical execution sets)",
		Columns: []string{"program", "model", "execs", "t(1)", "t(2)", "t(4)", "t(8)", "speedup(8)"},
	}
	type job struct {
		p     *prog.Program
		model string
	}
	jobs := []job{
		{gen.SBN(6), "tso"},
		{gen.LBN(4), "imm"},
		{gen.IncN(3, 2), "arm"},
		{gen.Peterson(eg.FenceNone), "pso"},
	}
	if opts.Quick {
		widths = []int{1, 4}
		t.Columns = []string{"program", "model", "execs", "t(1)", "t(4)", "speedup(4)"}
		jobs = []job{{gen.SBN(4), "tso"}, {gen.LBN(3), "imm"}}
	}
	for _, j := range jobs {
		row := []any{j.p.Name, j.model}
		var execs int
		var base, last time.Duration
		for i, w := range widths {
			res, d, err := exploreOpts("T10", j.p, j.model, core.Options{Workers: w})
			if err != nil {
				return nil, err
			}
			if i == 0 {
				execs = res.Executions
				base = d
				row = append(row, execs)
			} else if res.Executions != execs {
				return nil, fmt.Errorf("harness T10: %s/%s: %d workers found %d executions, 1 worker found %d",
					j.p.Name, j.model, w, res.Executions, execs)
			}
			last = d
			row = append(row, ms(d))
		}
		row = append(row, fmt.Sprintf("%.2fx", float64(base)/float64(last)))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"each width re-explores from scratch; execution counts are asserted equal across widths",
		"speedup saturates where consistency checks are cheap relative to lock traffic on the shared state memo",
		fmt.Sprintf("host: GOMAXPROCS=%d — speedup requires multicore; on a single-CPU host the table measures synchronization overhead instead (expect ≈1x)", runtime.GOMAXPROCS(0)))
	return t, nil
}

// T11Symmetry measures symmetry reduction on programs with identical
// threads: executions collapse to orbits (up to n! for n interchangeable
// threads) at the cost of extra key computations per state.
func T11Symmetry(opts Options) (*Table, error) {
	t := &Table{
		ID:      "T11",
		Title:   "symmetry reduction: executions vs orbits for identical-thread programs",
		Columns: []string{"program", "model", "execs", "time", "orbits", "time(symm)", "reduction"},
	}
	type job struct {
		p     *prog.Program
		model string
	}
	jobs := []job{
		{gen.IncN(3, 1), "sc"},
		{gen.IncN(4, 1), "sc"},
		{gen.IncN(3, 2), "sc"},
		{gen.IncN(3, 1), "arm"},
		{gen.IncN(2, 3), "tso"},
	}
	if !opts.Quick {
		jobs = append(jobs, job{gen.IncN(5, 1), "sc"}, job{gen.IncN(4, 2), "tso"})
	}
	for _, j := range jobs {
		full, d, err := exploreOpts("T11", j.p, j.model, core.Options{})
		if err != nil {
			return nil, err
		}
		sym, ds, err := exploreOpts("T11", j.p, j.model, core.Options{Symmetry: true})
		if err != nil {
			return nil, err
		}
		if sym.ExistsCount > 0 != (full.ExistsCount > 0) {
			return nil, fmt.Errorf("harness T11: %s/%s: reduction changed the verdict", j.p.Name, j.model)
		}
		t.AddRow(j.p.Name, j.model, full.Executions, ms(d), sym.Executions, ms(ds),
			fmt.Sprintf("%.1fx", float64(full.Executions)/float64(sym.Executions)))
	}
	t.Notes = append(t.Notes,
		"inc(n,1) collapses n! RMW chain orders into a single orbit",
		"verdicts (Exists observable?) are asserted identical with and without reduction")
	return t, nil
}

// T12Estimate calibrates the probe estimator against exhaustive counts in
// its two regimes: tree-shaped spaces (MemoHits = 0 — store/load
// workloads), where the Knuth estimator is unbiased and lands within a
// few percent, and revisit-heavy spaces (RMW chains), where the
// unmemoized probe tree over-counts by path multiplicity and the large
// spread is the reliability signal.
func T12Estimate(opts Options) (*Table, error) {
	t := &Table{
		ID:      "T12",
		Title:   "probe estimator calibration: exact vs estimated execution counts",
		Columns: []string{"program", "model", "exact", "memo hits", "estimate", "stderr", "regime"},
	}
	samples := 3000
	if opts.Quick {
		samples = 400
	}
	type job struct {
		p     *prog.Program
		model string
	}
	jobs := []job{
		{gen.SBN(5), "tso"},
		{gen.MPN(4), "tso"},
		{gen.CoRRN(3), "tso"},
		{gen.TwoPlusTwoWN(3), "tso"},
		{gen.LBN(4), "imm"},
		{gen.IncN(3, 2), "tso"},
	}
	for _, j := range jobs {
		exact, _, err := exploreOpts("T12", j.p, j.model, core.Options{})
		if err != nil {
			return nil, err
		}
		m, err := memmodel.ByName(j.model)
		if err != nil {
			return nil, fmt.Errorf("harness T12: %w", err)
		}
		est, err := core.Estimate(j.p, core.Options{Model: m}, samples, 1)
		if err != nil {
			return nil, fmt.Errorf("harness T12: estimating %q under %s: %w", j.p.Name, j.model, err)
		}
		regime := "tree-shaped: unbiased"
		if exact.MemoHits > 0 {
			regime = "revisit-heavy: upper bound"
		} else if diff := est.Mean - float64(exact.Executions); diff > float64(exact.Executions)/10 || -diff > float64(exact.Executions)/10 {
			return nil, fmt.Errorf("harness T12: %s/%s: tree-shaped estimate %.1f deviates >10%% from exact %d",
				j.p.Name, j.model, est.Mean, exact.Executions)
		}
		t.AddRow(j.p.Name, j.model, exact.Executions, exact.MemoHits,
			fmt.Sprintf("%.1f", est.Mean), fmt.Sprintf("%.1f", est.StdErr), regime)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d probes per program, fixed seed; tree-shaped rows are asserted within 10%% of exact", samples),
		"revisit-heavy rows over-count by the unmemoized path multiplicity — safe as a 'too big to check?' upper bound, and the stderr ≈ mean spread is the tell")
	return t, nil
}

// T13StaticPruning measures the static-analysis pruning hook
// (Options.StaticAnalysis): exploration work with and without the
// footprint-driven skips on provably thread-local, single-writer and
// never-read locations. Pruning is count-preserving — execution and
// Exists counts are asserted identical on every row, and CheckDeps runs
// on the pruned side so every dynamic dependency is verified against the
// static sets. LocalRW(n,k) is the parametric family where pruning pays:
// k rounds of thread-local scratch traffic per thread that the unpruned
// explorer branches over and the pruned one walks straight through.
// sb(n) is the control: fully shared, nothing prunable, zero skips.
func T13StaticPruning(opts Options) (*Table, error) {
	t := &Table{
		ID:      "T13",
		Title:   "static-analysis pruning: exploration work with and without footprint-driven skips (counts asserted equal)",
		Columns: []string{"program", "model", "execs", "checks", "checks(SA)", "revisits", "revisits(SA)", "skips rf/co/scan", "time", "time(SA)"},
	}
	type job struct {
		p     *prog.Program
		model string
	}
	jobs := []job{
		{gen.LocalRW(2, 2), "sc"},
		{gen.LocalRW(2, 3), "tso"},
		{gen.LocalRW(3, 2), "imm"},
		{gen.CoRRN(2), "tso"},
		{gen.CoRRN(3), "imm"},
		{gen.SBN(3), "tso"},
	}
	if !opts.Quick {
		jobs = append(jobs, job{gen.LocalRW(3, 3), "tso"}, job{gen.LocalRW(2, 5), "sc"})
	}
	for _, j := range jobs {
		base, d, err := exploreOpts("T13", j.p, j.model, core.Options{})
		if err != nil {
			return nil, err
		}
		pruned, ds, err := exploreOpts("T13", j.p, j.model,
			core.Options{StaticAnalysis: true, CheckDeps: true})
		if err != nil {
			return nil, err
		}
		if pruned.Executions != base.Executions || pruned.ExistsCount != base.ExistsCount {
			return nil, fmt.Errorf("harness T13: %s/%s: pruning changed the counts: %d/%d executions, %d/%d exists",
				j.p.Name, j.model, pruned.Executions, base.Executions, pruned.ExistsCount, base.ExistsCount)
		}
		if pruned.DepViolations != 0 {
			return nil, fmt.Errorf("harness T13: %s/%s: %d dynamic dependencies outside the static sets",
				j.p.Name, j.model, pruned.DepViolations)
		}
		if pruned.ConsistencyChecks > base.ConsistencyChecks {
			return nil, fmt.Errorf("harness T13: %s/%s: pruning increased consistency checks (%d > %d)",
				j.p.Name, j.model, pruned.ConsistencyChecks, base.ConsistencyChecks)
		}
		t.AddRow(j.p.Name, j.model, base.Executions,
			base.ConsistencyChecks, pruned.ConsistencyChecks,
			base.RevisitsTried, pruned.RevisitsTried,
			fmt.Sprintf("%d/%d/%d", pruned.StaticPrunedRf, pruned.StaticPrunedCo, pruned.StaticPrunedScans),
			ms(d), ms(ds))
	}
	t.Notes = append(t.Notes,
		"execution and Exists counts are asserted identical with and without pruning on every row; CheckDeps verified zero dynamic-dependency escapes",
		"LocalRW(n,k): per-thread scratch is provably thread-local — rf candidates, coherence placements and revisit scans on it are skipped",
		"CoRR(n): one writer thread per location — single-writer coherence placements collapse to co-max",
		"SB(n) control: every location shared and multi-written — all skip counters are zero and the columns match")
	return t, nil
}

// defaultEveryExecs mirrors hmcd's -checkpoint-every default: the
// EveryExecs value whose overhead the acceptance bar (<10% wall-clock)
// is measured against.
const defaultEveryExecs = 2000

// T14CheckpointResume measures what durability costs and what it saves:
// the wall-clock overhead of periodic checkpointing as EveryExecs varies
// (every snapshot is really encoded, not just counted), and the
// executions a resume skips after a deterministic mid-run kill
// (Options.FailAfter). Every checkpointed and resumed run's semantic
// totals are asserted equal to the straight run's, and the overhead at
// the default EveryExecs must stay under 10% on the rows large enough to
// time reliably.
func T14CheckpointResume(opts Options) (*Table, error) {
	t := &Table{
		ID:      "T14",
		Title:   "checkpoint/resume: snapshot overhead vs. EveryExecs and executions saved by resuming a killed run (totals asserted equal)",
		Columns: []string{"program", "model", "execs", "time", "every", "ckpts", "time(ckpt)", "overhead", "saved", "resume does"},
	}
	type job struct {
		p     *prog.Program
		model string
	}
	jobs := []job{
		{gen.SBN(8), "sc"},
		{gen.IndexerN(3), "sc"},
		{gen.IncN(3, 3), "sc"},
	}
	sweep := []int{500, defaultEveryExecs}
	if !opts.Quick {
		jobs = append(jobs, job{gen.SBN(10), "tso"}, job{gen.IncN(4, 2), "tso"})
		sweep = []int{200, 500, defaultEveryExecs, 10000}
	}

	// ckptRun explores with periodic snapshots enabled; the sink encodes
	// each checkpoint to the wire format (the real per-snapshot cost a
	// durable service pays) and keeps the count.
	ckptRun := func(j job, every int) (*core.Result, time.Duration, int, error) {
		snaps, encErr := 0, error(nil)
		res, d, err := exploreOpts("T14", j.p, j.model, core.Options{
			Checkpoint: &core.CheckpointOptions{
				EveryExecs: every,
				Sink: func(cp *core.Checkpoint) {
					snaps++
					if _, e := cp.Encode(); e != nil && encErr == nil {
						encErr = e
					}
				},
			},
		})
		if err == nil && encErr != nil {
			err = fmt.Errorf("harness T14: %s/%s: encoding a periodic checkpoint: %w", j.p.Name, j.model, encErr)
		}
		return res, d, snaps, err
	}

	for _, j := range jobs {
		straight, t0, err := explore("T14", j.p, j.model)
		if err != nil {
			return nil, err
		}
		for _, every := range sweep {
			res, tc, snaps, err := ckptRun(j, every)
			if err != nil {
				return nil, err
			}
			if res.Executions != straight.Executions || res.ExistsCount != straight.ExistsCount || res.Blocked != straight.Blocked {
				return nil, fmt.Errorf("harness T14: %s/%s: checkpointing changed the counts: %d/%d executions, %d/%d exists",
					j.p.Name, j.model, res.Executions, straight.Executions, res.ExistsCount, straight.ExistsCount)
			}
			saved, resumeDoes := "-", "-"
			if every == defaultEveryExecs {
				// The acceptance bar: at the default cadence the
				// checkpointed run must stay within 10% of the straight
				// run. Timing rows this small is noise, so the bar applies
				// from 200ms up, and a miss is re-measured (scheduler or
				// GC flake) keeping each side's minimum before failing.
				const bar = 1.10
				best0, bestC := t0, tc
				for attempt := 0; float64(bestC) > bar*float64(best0) && best0 >= 200*time.Millisecond && attempt < 2; attempt++ {
					if _, d0, err := explore("T14", j.p, j.model); err == nil && d0 < best0 {
						best0 = d0
					}
					if _, dc, _, err := ckptRun(j, every); err == nil && dc < bestC {
						bestC = dc
					}
				}
				if best0 >= 200*time.Millisecond && float64(bestC) > bar*float64(best0) {
					return nil, fmt.Errorf("harness T14: %s/%s: checkpoint overhead at EveryExecs=%d is %.1f%% (bar: 10%%): straight %v vs checkpointed %v",
						j.p.Name, j.model, every, 100*(float64(bestC)/float64(best0)-1), best0, bestC)
				}
				// The row reports the measurements the assertion was
				// judged on — the per-side minima when a flake forced a
				// re-measure.
				t0, tc = best0, bestC

				// Kill-and-resume leg: FailAfter injects "the process dies
				// here" at a branch point no completed run can reach, the
				// interrupted result's final checkpoint is round-tripped
				// through the wire format, and the resume must land on the
				// straight run's exact totals.
				if failAfter := straight.Executions / 2; failAfter > 0 {
					killed, _, err := exploreOpts("T14", j.p, j.model, core.Options{FailAfter: failAfter})
					if err != nil {
						return nil, err
					}
					if !killed.Interrupted || killed.Checkpoint == nil {
						return nil, fmt.Errorf("harness T14: %s/%s: FailAfter=%d did not interrupt with a checkpoint", j.p.Name, j.model, failAfter)
					}
					wire, err := killed.Checkpoint.Encode()
					if err != nil {
						return nil, fmt.Errorf("harness T14: %s/%s: encoding the kill checkpoint: %w", j.p.Name, j.model, err)
					}
					cp, err := core.DecodeCheckpoint(wire)
					if err != nil {
						return nil, fmt.Errorf("harness T14: %s/%s: decoding the kill checkpoint: %w", j.p.Name, j.model, err)
					}
					resumed, _, err := exploreOpts("T14", j.p, j.model, core.Options{ResumeFrom: cp})
					if err != nil {
						return nil, err
					}
					if resumed.Interrupted || resumed.Executions != straight.Executions || resumed.ExistsCount != straight.ExistsCount || resumed.Blocked != straight.Blocked {
						return nil, fmt.Errorf("harness T14: %s/%s: resumed totals diverge from the straight run: %d/%d executions, %d/%d exists",
							j.p.Name, j.model, resumed.Executions, straight.Executions, resumed.ExistsCount, straight.ExistsCount)
					}
					saved = fmt.Sprint(cp.Stats.Executions)
					resumeDoes = fmt.Sprint(resumed.Executions - cp.Stats.Executions)
				}
			}
			t.AddRow(j.p.Name, j.model, straight.Executions, ms(t0),
				every, snaps, ms(tc),
				fmt.Sprintf("%+.1f%%", 100*(float64(tc)/float64(t0)-1)),
				saved, resumeDoes)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("every snapshot is encoded to the wire format in the sink; overhead at the default EveryExecs=%d is asserted under 10%% on rows from 200ms up (a miss re-measures both sides and judges — and reports — the per-side minima)", defaultEveryExecs),
		"execution/exists/blocked totals are asserted identical across straight, checkpointed and killed-then-resumed runs on every row",
		"saved = executions already banked in the kill-point checkpoint (never re-explored); resume does = executions the resume leg itself performs",
		"overhead on sub-millisecond rows is timer noise; indexer explores a single execution and exists as a family control")
	return t, nil
}

// T15ProgressOverhead measures what live observability costs: the
// wall-clock overhead of progress snapshots (plus the sampled phase
// timers they switch on) as the cadence varies. Every observed run's
// semantic totals are asserted equal to the unobserved run's, the final
// snapshot's counters must equal the Result, and the overhead at the
// default cadence must stay under 5% on the rows large enough to time
// reliably.
func T15ProgressOverhead(opts Options) (*Table, error) {
	t := &Table{
		ID:      "T15",
		Title:   "progress-snapshot overhead vs. cadence (totals asserted equal; final snapshot must match the result)",
		Columns: []string{"program", "model", "execs", "time", "every", "snaps", "time(obs)", "overhead"},
	}
	type job struct {
		p     *prog.Program
		model string
	}
	jobs := []job{
		{gen.SBN(8), "sc"},
		{gen.IncN(3, 3), "sc"},
	}
	if !opts.Quick {
		jobs = append(jobs, job{gen.SBN(10), "tso"}, job{gen.IncN(4, 2), "tso"})
	}
	sweep := []time.Duration{time.Millisecond, core.DefaultProgressEvery}

	// progRun explores with progress enabled; the sink counts deliveries
	// and keeps the last snapshot so the final one can be checked against
	// the result.
	progRun := func(j job, every time.Duration) (*core.Result, time.Duration, int, error) {
		snaps := 0
		var last obs.ProgressSnapshot
		res, d, err := exploreOpts("T15", j.p, j.model, core.Options{
			Progress: &core.ProgressOptions{
				Every: every,
				Sink:  func(s obs.ProgressSnapshot) { snaps++; last = s },
			},
		})
		if err != nil {
			return nil, 0, 0, err
		}
		if snaps == 0 || !last.Final {
			return nil, 0, 0, fmt.Errorf("harness T15: %s/%s: final snapshot never delivered (%d snapshots, final=%v)",
				j.p.Name, j.model, snaps, last.Final)
		}
		if last.Executions != res.Executions || last.Blocked != res.Blocked || last.States != res.States {
			return nil, 0, 0, fmt.Errorf("harness T15: %s/%s: final snapshot diverges from the result: %d/%d executions, %d/%d blocked, %d/%d states",
				j.p.Name, j.model, last.Executions, res.Executions, last.Blocked, res.Blocked, last.States, res.States)
		}
		return res, d, snaps, nil
	}

	for _, j := range jobs {
		straight, t0, err := explore("T15", j.p, j.model)
		if err != nil {
			return nil, err
		}
		for _, every := range sweep {
			res, to, snaps, err := progRun(j, every)
			if err != nil {
				return nil, err
			}
			if res.Executions != straight.Executions || res.ExistsCount != straight.ExistsCount || res.Blocked != straight.Blocked {
				return nil, fmt.Errorf("harness T15: %s/%s: observation changed the counts: %d/%d executions, %d/%d exists",
					j.p.Name, j.model, res.Executions, straight.Executions, res.ExistsCount, straight.ExistsCount)
			}
			if every == core.DefaultProgressEvery {
				// The acceptance bar: at the default cadence the observed
				// run must stay within 5% of the unobserved run. Timing
				// rows this small is noise, so the bar applies from 200ms
				// up, and a miss is re-measured in back-to-back pairs
				// (unobserved, observed): a load or GC spike hits both
				// sides of a pair about equally, so the best pair ratio is
				// robust against drifting machine load where independent
				// minima are not. The per-side minima are what the row
				// reports.
				const bar = 1.05
				best0, bestO := t0, to
				ratio := float64(to) / float64(t0)
				for attempt := 0; ratio > bar && best0 >= 200*time.Millisecond && attempt < 4; attempt++ {
					_, d0, err := explore("T15", j.p, j.model)
					if err != nil {
						return nil, err
					}
					_, do, _, err := progRun(j, every)
					if err != nil {
						return nil, err
					}
					if r := float64(do) / float64(d0); r < ratio {
						ratio = r
					}
					if d0 < best0 {
						best0 = d0
					}
					if do < bestO {
						bestO = do
					}
				}
				if best0 >= 200*time.Millisecond && ratio > bar {
					return nil, fmt.Errorf("harness T15: %s/%s: instrumentation overhead at Every=%v is %.1f%% (bar: 5%%): best unobserved %v vs observed %v",
						j.p.Name, j.model, every, 100*(ratio-1), best0, bestO)
				}
				t0, to = best0, bestO
			}
			t.AddRow(j.p.Name, j.model, straight.Executions, ms(t0),
				every, snaps, ms(to),
				fmt.Sprintf("%+.1f%%", 100*(float64(to)/float64(t0)-1)))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("overhead at the default cadence (%v) is asserted under 5%% on rows from 200ms up (a miss re-measures in back-to-back pairs and judges the best pair ratio; the row reports per-side minima)", core.DefaultProgressEvery),
		"execution/exists/blocked totals are asserted identical between observed and unobserved runs on every row; the final snapshot's counters must equal the result's",
		"snaps counts sink deliveries including the guaranteed final snapshot; at the default cadence short rows deliver only that one",
		"observation enables the sampled phase timers too, so the column prices the whole instrumentation layer, not just snapshot emission")
	return t, nil
}

// T16ShardedExploration measures distributed sharded exploration
// (internal/shard): wall time by shard count, with every sharded run's
// merged totals asserted identical to the single-explorer run — the
// bucket-ownership protocol's exactness claim, priced. A forced-steal
// run (1ms patience) additionally proves counter exactness survives
// work re-balancing.
func T16ShardedExploration(opts Options) (*Table, error) {
	counts := []int{1, 2, 4}
	t := &Table{
		ID:      "T16",
		Title:   "sharded exploration: wall time by shard count (merged totals asserted identical; steals counted)",
		Columns: []string{"program", "model", "execs", "t(1)", "t(2)", "t(4)", "speedup(4)", "steals(4)"},
	}
	type job struct {
		p     *prog.Program
		model string
	}
	// SB(6..8) are the protocol-exactness rows (the execution set doubles
	// per thread, so they stay milliseconds); SB(11..12) are big enough
	// that the wall clock, not the coordination, dominates — the rows the
	// multicore speedup assertion bites on.
	jobs := []job{
		{gen.SBN(6), "tso"},
		{gen.SBN(7), "tso"},
		{gen.SBN(8), "tso"},
		{gen.SBN(11), "tso"},
		{gen.SBN(12), "tso"},
	}
	if opts.Quick {
		counts = []int{1, 2}
		t.Columns = []string{"program", "model", "execs", "t(1)", "t(2)", "speedup(2)", "steals(2)"}
		jobs = []job{{gen.SBN(5), "tso"}, {gen.SBN(6), "tso"}}
	}
	// shardRun explores p split across n shards and reports the steal count.
	shardRun := func(j job, n int) (*core.Result, time.Duration, int, error) {
		m, err := memmodel.ByName(j.model)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("harness T16: %w", err)
		}
		steals := 0
		start := time.Now()
		res, err := shard.Explore(j.p, shard.Options{
			Shards:  n,
			Core:    core.Options{Model: m},
			OnSteal: func() { steals++ },
		})
		if err != nil {
			return nil, 0, 0, fmt.Errorf("harness T16: exploring %q under %s with %d shards: %w", j.p.Name, j.model, n, err)
		}
		return res, time.Since(start), steals, nil
	}
	same := func(a, b *core.Result) bool {
		return a.Executions == b.Executions && a.Blocked == b.Blocked &&
			a.ExistsCount == b.ExistsCount && a.States == b.States &&
			a.MemoHits == b.MemoHits && a.MaxGraphEvents == b.MaxGraphEvents
	}
	// The widest split forwards most cross-shard transitions, so its
	// overhead needs at least as many cores as shards to amortize; the
	// speedup bar only applies where that is possible.
	multicore := runtime.NumCPU() >= counts[len(counts)-1]
	for _, j := range jobs {
		straight, base, err := explore("T16", j.p, j.model)
		if err != nil {
			return nil, err
		}
		row := []any{j.p.Name, j.model, straight.Executions, ms(base)}
		var last time.Duration
		var lastSteals int
		for _, n := range counts[1:] {
			res, d, steals, err := shardRun(j, n)
			if err != nil {
				return nil, err
			}
			if !same(straight, res) {
				return nil, fmt.Errorf("harness T16: %s/%s: %d shards diverged: execs %d/%d blocked %d/%d states %d/%d memo %d/%d",
					j.p.Name, j.model, n, res.Executions, straight.Executions, res.Blocked, straight.Blocked,
					res.States, straight.States, res.MemoHits, straight.MemoHits)
			}
			last, lastSteals = d, steals
			row = append(row, ms(d))
		}
		// The acceptance bar: on a multicore host, the widest split of a
		// row big enough to time reliably must beat the single explorer.
		// Coordination noise can lose a single race, so a miss re-measures
		// in back-to-back pairs and judges the best pair, like T15.
		nMax := counts[len(counts)-1]
		ratio := float64(base) / float64(last)
		for attempt := 0; multicore && base >= 300*time.Millisecond && ratio <= 1.0 && attempt < 4; attempt++ {
			_, d0, err := explore("T16", j.p, j.model)
			if err != nil {
				return nil, err
			}
			_, dn, steals, err := shardRun(j, nMax)
			if err != nil {
				return nil, err
			}
			if r := float64(d0) / float64(dn); r > ratio {
				ratio = r
				base, last, lastSteals = d0, dn, steals
			}
		}
		if multicore && base >= 300*time.Millisecond && ratio <= 1.0 {
			return nil, fmt.Errorf("harness T16: %s/%s: %d shards on %d CPUs showed no speedup: %v vs %v",
				j.p.Name, j.model, nMax, runtime.NumCPU(), base, last)
		}
		row = append(row, fmt.Sprintf("%.2fx", ratio), lastSteals)
		t.AddRow(row...)
	}
	// Forced steals: near-zero patience makes every early-draining shard
	// steal, so the run exercises bucket re-assignment heavily — and the
	// totals must still be exactly the straight run's.
	fj := jobs[0]
	m, err := memmodel.ByName(fj.model)
	if err != nil {
		return nil, fmt.Errorf("harness T16: %w", err)
	}
	forcedSteals := 0
	forced, err := shard.Explore(fj.p, shard.Options{
		Shards:     counts[len(counts)-1],
		Core:       core.Options{Model: m},
		StealAfter: time.Millisecond,
		OnSteal:    func() { forcedSteals++ },
	})
	if err != nil {
		return nil, fmt.Errorf("harness T16: forced-steal run: %w", err)
	}
	fstraight, _, err := explore("T16", fj.p, fj.model)
	if err != nil {
		return nil, err
	}
	if !same(fstraight, forced) {
		return nil, fmt.Errorf("harness T16: %s/%s: forced steals diverged: execs %d/%d states %d/%d",
			fj.p.Name, fj.model, forced.Executions, fstraight.Executions, forced.States, fstraight.States)
	}
	t.Notes = append(t.Notes,
		"each shard owns a slice of the canonical-state space; unowned graphs are forwarded to their owner, so merged counters are order-invariant and asserted identical to the single explorer on every row",
		fmt.Sprintf("forced-steal run (%s, %d shards, 1ms patience): %d steals, totals asserted identical", fj.p.Name, counts[len(counts)-1], forcedSteals),
		fmt.Sprintf("host: GOMAXPROCS=%d — the speedup assertion applies only on hosts with at least as many CPUs as shards, on rows from 300ms up; on fewer cores the table prices coordination overhead instead (expect below 1x: forwarding serializes every cross-shard graph)", runtime.GOMAXPROCS(0)))
	return t, nil
}

// T17ConsistencyPath prices the incremental consistency-checking rewrite:
// the same explorations run through the reference materialized-union path
// (Options.LegacyChecks) and the pooled/incremental path, with every Stats
// counter asserted byte-identical between the two — the knob may move only
// wall-clock and allocation — and the speedup reported per row. SB(n)
// doubles its execution set per store, so the series shows the per-check
// saving compounding as graphs grow.
func T17ConsistencyPath(opts Options) (*Table, error) {
	t := &Table{
		ID:      "T17",
		Title:   "incremental vs reference consistency checking (all counters asserted identical)",
		Columns: []string{"program", "model", "execs", "checks", "t(legacy)", "t(fast)", "speedup"},
	}
	lo, hi := 6, 12
	if opts.Quick {
		hi = 8
	}
	models := []string{"tso"}
	for n := lo; n <= hi; n++ {
		p := gen.SBN(n)
		for _, model := range models {
			legacy, dl, err := exploreOpts("T17", p, model, core.Options{LegacyChecks: true})
			if err != nil {
				return nil, err
			}
			fast, df, err := exploreOpts("T17", p, model, core.Options{})
			if err != nil {
				return nil, err
			}
			if !reflect.DeepEqual(legacy.Stats, fast.Stats) {
				return nil, fmt.Errorf("harness T17: %s/%s: the consistency paths diverge\nlegacy: %+v\nfast:   %+v",
					p.Name, model, legacy.Stats, fast.Stats)
			}
			t.AddRow(p.Name, model, fast.Executions, fast.ConsistencyChecks,
				ms(dl), ms(df), fmt.Sprintf("%.2fx", float64(dl)/float64(df)))
		}
	}
	t.Notes = append(t.Notes,
		"every Stats counter (executions, blocked, states, checks, revisits, memo hits, ...) is asserted byte-identical between the two paths on every row",
		"the fast path streams edges into a pooled Pearce–Kelly incremental-acyclicity checker over pooled dense views; the legacy path materializes relation unions and re-runs a full cycle search per axiom",
		"single-run wall-clocks: treat sub-100ms rows as indicative, the larger n rows as the measurement")
	return t, nil
}
