package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestBenchExploreRoundTrip: the quick suite runs, serializes, parses
// back identically, and compares clean against itself.
func TestBenchExploreRoundTrip(t *testing.T) {
	r, err := BenchExplore(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("empty bench suite")
	}
	for _, row := range r.Rows {
		if row.Executions < 1 || row.ConsistencyChecks < 1 {
			t.Errorf("degenerate row %+v", row)
		}
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(r.Rows) || back.Suite != r.Suite {
		t.Fatalf("round trip lost rows: %d != %d", len(back.Rows), len(r.Rows))
	}
	if err := CompareBaseline(r, back, 0.25); err != nil {
		t.Errorf("suite must compare clean against itself: %v", err)
	}
}

// TestCompareBaseline pins the gate semantics on synthetic reports:
// growth within tolerance and shrinkage pass; growth beyond tolerance
// and a vanished tracked row fail, naming the offender.
func TestCompareBaseline(t *testing.T) {
	base := &BenchReport{Rows: []BenchRow{
		{Name: "A", Model: "sc", Executions: 100, States: 200, ConsistencyChecks: 300, RevisitsTried: 40},
		{Name: "B", Model: "tso", Executions: 10, States: 20, ConsistencyChecks: 30},
	}}
	ok := &BenchReport{Rows: []BenchRow{
		{Name: "A", Model: "sc", Executions: 120, States: 150, ConsistencyChecks: 300, RevisitsTried: 50},
		{Name: "B", Model: "tso", Executions: 5, States: 20, ConsistencyChecks: 30},
	}}
	if err := CompareBaseline(ok, base, 0.25); err != nil {
		t.Errorf("within-tolerance growth and shrinkage must pass: %v", err)
	}
	regressed := &BenchReport{Rows: []BenchRow{
		{Name: "A", Model: "sc", Executions: 100, States: 200, ConsistencyChecks: 500, RevisitsTried: 40},
		{Name: "B", Model: "tso", Executions: 10, States: 20, ConsistencyChecks: 30},
	}}
	err := CompareBaseline(regressed, base, 0.25)
	if err == nil || !strings.Contains(err.Error(), "A/sc: consistency_checks regressed") {
		t.Errorf("counter regression must fail naming the row: %v", err)
	}
	missing := &BenchReport{Rows: []BenchRow{
		{Name: "A", Model: "sc", Executions: 100, States: 200, ConsistencyChecks: 300, RevisitsTried: 40},
	}}
	err = CompareBaseline(missing, base, 0.25)
	if err == nil || !strings.Contains(err.Error(), "B/tso") {
		t.Errorf("vanished tracked row must fail: %v", err)
	}
	// Wall-clock never gates.
	slow := &BenchReport{Rows: []BenchRow{
		{Name: "A", Model: "sc", Executions: 100, States: 200, ConsistencyChecks: 300, RevisitsTried: 40, NS: 1 << 40},
		{Name: "B", Model: "tso", Executions: 10, States: 20, ConsistencyChecks: 30, NS: 1 << 40},
	}}
	if err := CompareBaseline(slow, base, 0.25); err != nil {
		t.Errorf("wall-clock must not gate: %v", err)
	}
}

// TestCompareBaselineAllocs pins the allocation gate: allocs/exec growth
// beyond tolerance fails naming the row, growth within tolerance and
// shrinkage pass, and a baseline without the field (an old BENCH JSON)
// never trips the gate no matter what the current run allocates.
func TestCompareBaselineAllocs(t *testing.T) {
	base := &BenchReport{Rows: []BenchRow{
		{Name: "A", Model: "sc", Executions: 100, States: 200, ConsistencyChecks: 300, AllocsPerExec: 1000},
	}}
	ok := &BenchReport{Rows: []BenchRow{
		{Name: "A", Model: "sc", Executions: 100, States: 200, ConsistencyChecks: 300, AllocsPerExec: 1200},
	}}
	if err := CompareBaseline(ok, base, 0.25); err != nil {
		t.Errorf("within-tolerance allocation growth must pass: %v", err)
	}
	better := &BenchReport{Rows: []BenchRow{
		{Name: "A", Model: "sc", Executions: 100, States: 200, ConsistencyChecks: 300, AllocsPerExec: 100},
	}}
	if err := CompareBaseline(better, base, 0.25); err != nil {
		t.Errorf("allocation shrinkage must pass: %v", err)
	}
	bloated := &BenchReport{Rows: []BenchRow{
		{Name: "A", Model: "sc", Executions: 100, States: 200, ConsistencyChecks: 300, AllocsPerExec: 2000},
	}}
	err := CompareBaseline(bloated, base, 0.25)
	if err == nil || !strings.Contains(err.Error(), "A/sc: allocs_per_exec regressed") {
		t.Errorf("allocation regression must fail naming the row: %v", err)
	}
	oldBase := &BenchReport{Rows: []BenchRow{
		{Name: "A", Model: "sc", Executions: 100, States: 200, ConsistencyChecks: 300},
	}}
	if err := CompareBaseline(bloated, oldBase, 0.25); err != nil {
		t.Errorf("baseline without the allocs field must not gate: %v", err)
	}
}
