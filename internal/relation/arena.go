package relation

// Arena is a bump allocator for relation bit rows and headers, reset
// between candidate graphs on the explorer's hot path. A consistency
// check builds a handful of short-lived relations (unions, compositions,
// closures); allocating their rows from one reusable slab instead of the
// heap removes the dominant per-check allocation cost. Relations derived
// from an arena-backed relation (Clone, Union, Compose, …) come from the
// same arena, so one arena-backed seed makes a whole predicate
// arena-allocated.
//
// An Arena is not safe for concurrent use, and Reset invalidates every
// relation allocated from it: callers must not retain arena-backed
// relations past the check that built them (the explorer's view pool
// enforces this discipline).
type Arena struct {
	slab []uint64 // current word slab; bump-allocated
	off  int
	hdrs []Rel // header slab; bump-allocated
	hoff int
	// grown accumulates the demand of allocations that overflowed the
	// slabs, so the next Reset right-sizes them instead of thrashing.
	grown int
}

// arenaMinWords sizes a fresh arena slab; checks over bigger universes
// grow it once and keep the larger slab across Reset.
const arenaMinWords = 1024

// New allocates an empty relation over a universe of size n from the
// arena. The relation's derived operations allocate from the same arena.
func (a *Arena) New(n int) *Rel {
	if n < 0 {
		panic("relation: negative universe size")
	}
	w := wordsFor(n)
	r := a.hdr()
	*r = Rel{n: n, w: w, bits: a.words(n * w), arena: a}
	return r
}

// words returns a zeroed word slice of length n carved from the slab,
// falling back to the heap when the slab is exhausted (the overflow is
// remembered so Reset grows the slab).
func (a *Arena) words(n int) []uint64 {
	if a.off+n > len(a.slab) {
		a.grown += n
		return make([]uint64, n)
	}
	ws := a.slab[a.off : a.off+n : a.off+n]
	a.off += n
	for i := range ws {
		ws[i] = 0
	}
	return ws
}

// hdr returns a Rel header from the header slab (heap on overflow).
func (a *Arena) hdr() *Rel {
	if a.hoff == len(a.hdrs) {
		a.grown++
		return new(Rel)
	}
	r := &a.hdrs[a.hoff]
	a.hoff++
	return r
}

// Reset recycles the arena for the next candidate graph: every relation
// previously allocated from it is invalidated. Slabs that overflowed are
// regrown to fit the observed demand.
func (a *Arena) Reset() {
	if a.slab == nil || a.grown > 0 {
		want := len(a.slab) + a.grown
		if want < arenaMinWords {
			want = arenaMinWords
		}
		a.slab = make([]uint64, want)
		if n := a.hoff + 8; n > len(a.hdrs) {
			a.hdrs = make([]Rel, n)
		}
		a.grown = 0
	}
	// Drop references held by recycled headers so the GC can reclaim any
	// heap-allocated overflow rows.
	for i := 0; i < a.hoff; i++ {
		a.hdrs[i] = Rel{}
	}
	a.off, a.hoff = 0, 0
}
