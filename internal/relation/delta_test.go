package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// addAll streams every pair of r into d and reports whether all edges
// were accepted (i.e. r is acyclic).
func addAll(d *DeltaRel, r *Rel) bool {
	ok := true
	r.Pairs(func(a, b int) {
		if ok && !d.AddEdgeAcyclic(a, b) {
			ok = false
		}
	})
	return ok
}

func TestDeltaBasic(t *testing.T) {
	d := NewDelta(3)
	if !d.AddEdgeAcyclic(0, 1) || !d.AddEdgeAcyclic(1, 2) {
		t.Fatal("chain edges rejected")
	}
	if d.AddEdgeAcyclic(2, 0) {
		t.Fatal("cycle-closing edge accepted")
	}
	if d.AddEdgeAcyclic(1, 1) {
		t.Fatal("self-loop accepted")
	}
	if !d.Has(0, 1) || !d.Has(1, 2) || d.Has(2, 0) {
		t.Fatal("edge set wrong after rejections")
	}
	if !d.AddEdgeAcyclic(0, 1) {
		t.Fatal("duplicate insert must be a true no-op")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if !d.AddEdgeAcyclic(0, 2) {
		t.Fatal("transitive edge rejected")
	}
}

// TestPropDeltaMatchesAcyclic pins the incremental verdict against the
// from-scratch oracles: streaming a relation's edges into a DeltaRel
// accepts them all iff Acyclic() (and iff the closure is irreflexive).
func TestPropDeltaMatchesAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRel(rng, 1+rng.Intn(14), 0.15)
		d := NewDelta(r.Size())
		return addAll(d, r) == r.Acyclic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropDeltaOrderIsTopological checks the maintained invariant: after
// any sequence of accepted insertions, ord is a valid topological order
// of the accepted edge set.
func TestPropDeltaOrderIsTopological(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(14)
		d := NewDelta(n)
		for k := 0; k < 3*n; k++ {
			d.AddEdgeAcyclic(rng.Intn(n), rng.Intn(n))
		}
		ok := true
		d.succ.Pairs(func(a, b int) {
			if d.ord[a] >= d.ord[b] {
				ok = false
			}
		})
		// ord must remain a permutation of 0..n-1.
		seen := make([]bool, n)
		for _, o := range d.ord {
			if o < 0 || o >= n || seen[o] {
				return false
			}
			seen[o] = true
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropDeltaRollback checks that Rollback restores both the edge set
// and the behaviour: after rolling back a batch of insertions, the
// structure accepts/rejects exactly like a fresh DeltaRel replaying the
// surviving prefix.
func TestPropDeltaRollback(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		base := randomRel(rng, n, 0.1)
		d := NewDelta(n)
		baseOK := addAll(d, base)
		mark := d.Snapshot()

		// A batch of random extra insertions, then roll them back.
		for k := 0; k < 2*n; k++ {
			d.AddEdgeAcyclic(rng.Intn(n), rng.Intn(n))
		}
		d.Rollback(mark)

		// The edge set must be exactly the accepted prefix of base.
		ref := NewDelta(n)
		refOK := addAll(ref, base)
		if baseOK != refOK || d.Len() != ref.Len() {
			return false
		}
		if !d.succ.Equal(ref.succ) || !d.pred.Equal(ref.pred) {
			return false
		}
		// And future insertions must behave identically.
		for k := 0; k < 2*n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if d.AddEdgeAcyclic(a, b) != ref.AddEdgeAcyclic(a, b) {
				return false
			}
		}
		return d.succ.Equal(ref.succ)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropDeltaSharedPrefix exercises the explorer's intended pattern:
// load common edges once, snapshot, then per alternative add its private
// edges, read the verdict and roll back. Every alternative's verdict must
// match a from-scratch check of base ∪ alternative.
func TestPropDeltaSharedPrefix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		base := randomRel(rng, n, 0.08)
		if !base.Acyclic() {
			return true // shared prefix must be acyclic to snapshot
		}
		d := NewDelta(n)
		if !addAll(d, base) {
			return false
		}
		mark := d.Snapshot()
		for alt := 0; alt < 6; alt++ {
			extra := randomRel(rng, n, 0.1)
			got := addAll(d, extra)
			want := base.Union(extra).Acyclic()
			d.Rollback(mark)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDeltaReset(t *testing.T) {
	d := NewDelta(4)
	d.AddEdgeAcyclic(0, 1)
	d.AddEdgeAcyclic(1, 2)
	d.Reset(4)
	if d.Len() != 0 || d.Has(0, 1) {
		t.Fatal("Reset did not clear the edge set")
	}
	if !d.AddEdgeAcyclic(2, 0) {
		t.Fatal("insert after Reset rejected")
	}
	d.Reset(7) // resize
	if d.Size() != 7 || d.Has(2, 0) {
		t.Fatal("resizing Reset did not clear")
	}
	if !d.AddEdgeAcyclic(6, 0) {
		t.Fatal("insert after resizing Reset rejected")
	}
}

func TestDeltaAddRelAcyclic(t *testing.T) {
	r := New(4)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(2, 3)
	d := NewDelta(4)
	if !d.AddRelAcyclic(r) {
		t.Fatal("acyclic relation rejected")
	}
	r.Add(3, 0)
	d.Reset(4)
	if d.AddRelAcyclic(r) {
		t.Fatal("cyclic relation accepted")
	}
}

// FuzzDeltaAcyclic drives a DeltaRel with a random add/snapshot/rollback
// program and checks, after every operation, that the accepted edge set
// matches a recompute-from-scratch model: verdicts equal the oracle's
// Acyclic() on the model relation, and rollbacks restore it exactly.
func FuzzDeltaAcyclic(f *testing.F) {
	f.Add([]byte{8, 0, 1, 1, 2, 2, 0})
	f.Add([]byte{5, 0, 1, 0xFE, 1, 2, 0xFF, 2, 0})
	f.Add([]byte{3, 0, 1, 1, 0, 0xFE, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := 1 + int(data[0]%16)
		d := NewDelta(n)
		model := New(n) // accepted edges, recomputed oracle
		type snap struct {
			mark  Mark
			model *Rel
		}
		var snaps []snap
		i := 1
		for i < len(data) {
			op := data[i]
			switch {
			case op == 0xFE: // snapshot
				snaps = append(snaps, snap{mark: d.Snapshot(), model: model.Clone()})
				i++
			case op == 0xFF: // rollback to the latest snapshot
				if len(snaps) > 0 {
					s := snaps[len(snaps)-1]
					snaps = snaps[:len(snaps)-1]
					d.Rollback(s.mark)
					model = s.model
				}
				i++
			case i+1 < len(data): // add edge
				a, b := int(op)%n, int(data[i+1])%n
				i += 2
				wouldCycle := func() bool {
					if a == b {
						return true
					}
					c := model.Clone()
					c.Add(a, b)
					return !c.Acyclic()
				}()
				got := d.AddEdgeAcyclic(a, b)
				if got == wouldCycle {
					t.Fatalf("AddEdgeAcyclic(%d,%d) = %v, oracle cycle = %v (n=%d, model %v)",
						a, b, got, wouldCycle, n, model)
				}
				if got {
					model.Add(a, b)
				}
			default:
				i = len(data)
			}
			if d.Len() != model.Len() {
				t.Fatalf("edge count drifted: delta %d vs model %d", d.Len(), model.Len())
			}
		}
		// Final sanity: the maintained order is topological for the model.
		model.Pairs(func(a, b int) {
			if d.ord[a] >= d.ord[b] {
				t.Fatalf("ord[%d]=%d !< ord[%d]=%d for accepted edge", a, d.ord[a], b, d.ord[b])
			}
		})
	})
}
