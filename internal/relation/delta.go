package relation

import "math/bits"

// DeltaRel is an incrementally maintained directed graph over {0, …, n-1}
// that stays provably acyclic: it carries a topological order of its nodes
// and updates it under edge insertion with the Pearce–Kelly algorithm.
// Inserting an edge costs O(1) when the edge already respects the order
// (the common case when edges arrive in roughly topological order) and
// otherwise a search/reorder bounded by the *affected region* — the nodes
// whose order indices lie between the edge's endpoints — rather than the
// whole graph. This is what lets a consistency predicate of the shape
// "union edge sets, then Acyclic()" check each added edge in amortized
// sub-linear time instead of re-running a full DFS per candidate graph.
//
// Snapshot/Rollback make the structure reusable across alternatives that
// share a common edge prefix: load the shared edges once, snapshot, then
// per alternative add its private edges and roll back. Rollback is O(work
// since the snapshot): both insertions and order reassignments are logged
// and undone, never recomputed.
//
// The zero value is unusable; construct with NewDelta and recycle with
// Reset. DeltaRel is not safe for concurrent use.
type DeltaRel struct {
	n            int
	succ, pred   *Rel     // adjacency in both directions (dense bit rows)
	sbits, pbits []uint64 // grow-only row storage backing succ/pred
	ord          []int    // ord[v] = v's index in the maintained topological order

	edgeLog []dedge     // edges inserted since Reset, in order
	ordLog  []ordChange // order reassignments, in order

	// DFS scratch, epoch-marked so Reset and per-edge searches never
	// re-clear them.
	mark      []uint32
	epoch     uint32
	stack     []int
	fwd, back []int // affected regions of the current insertion
}

type dedge struct{ a, b int }

type ordChange struct{ node, old int }

// Mark is a rollback point in a DeltaRel's insertion history.
type Mark struct{ edges, ords int }

// NewDelta returns an empty acyclic graph over a universe of size n.
func NewDelta(n int) *DeltaRel {
	d := &DeltaRel{}
	d.Reset(n)
	return d
}

// Reset recycles d into the empty graph over a universe of size n. Row
// storage is grow-only with headroom, so a pooled DeltaRel serving
// steadily growing graphs (the explorer's pattern: one more event per
// branch) reallocates O(log n) times, not per check.
func (d *DeltaRel) Reset(n int) {
	if n < 0 {
		panic("relation: negative universe size")
	}
	d.n = n
	w := wordsFor(n)
	need := n * w
	if cap(d.sbits) < need {
		ncap := n + n/2 + 8
		words := ncap * wordsFor(ncap)
		d.sbits = make([]uint64, words)
		d.pbits = make([]uint64, words)
		d.ord = make([]int, ncap)
		d.mark = make([]uint32, ncap)
		d.epoch = 0
	}
	if d.succ == nil {
		d.succ, d.pred = &Rel{}, &Rel{}
	}
	*d.succ = Rel{n: n, w: w, bits: d.sbits[:need]}
	*d.pred = Rel{n: n, w: w, bits: d.pbits[:need]}
	d.succ.Clear()
	d.pred.Clear()
	d.ord = d.ord[:cap(d.ord)][:n]
	d.mark = d.mark[:cap(d.mark)][:n]
	for i := 0; i < n; i++ {
		d.ord[i] = i
	}
	d.edgeLog = d.edgeLog[:0]
	d.ordLog = d.ordLog[:0]
}

// Size returns the universe size n.
func (d *DeltaRel) Size() int { return d.n }

// Len returns the number of edges inserted since Reset.
func (d *DeltaRel) Len() int { return len(d.edgeLog) }

// Has reports whether the edge (a, b) is present.
func (d *DeltaRel) Has(a, b int) bool { return d.succ.Has(a, b) }

// Snapshot returns a rollback point capturing the current edge set and
// topological order. Snapshots nest; rolling back to an older mark
// invalidates newer ones.
func (d *DeltaRel) Snapshot() Mark {
	return Mark{edges: len(d.edgeLog), ords: len(d.ordLog)}
}

// Rollback undoes every insertion (and the order maintenance it caused)
// performed after the mark was taken, in O(that work).
func (d *DeltaRel) Rollback(m Mark) {
	for i := len(d.edgeLog) - 1; i >= m.edges; i-- {
		e := d.edgeLog[i]
		d.succ.Remove(e.a, e.b)
		d.pred.Remove(e.b, e.a)
	}
	d.edgeLog = d.edgeLog[:m.edges]
	for i := len(d.ordLog) - 1; i >= m.ords; i-- {
		c := d.ordLog[i]
		d.ord[c.node] = c.old
	}
	d.ordLog = d.ordLog[:m.ords]
}

// AddEdgeAcyclic inserts the edge (a, b) if doing so keeps the graph
// acyclic and reports whether it did. A rejected edge — a self-loop, or
// one closing a cycle — leaves the structure exactly as it was. Inserting
// an edge that is already present is a no-op reporting true.
func (d *DeltaRel) AddEdgeAcyclic(a, b int) bool {
	d.succ.check(a)
	d.succ.check(b)
	if a == b {
		return false
	}
	// Raw bit addressing: this is the innermost loop of every consistency
	// check, so the Has/Add call layers (each re-checking bounds) are
	// flattened out.
	w := d.succ.w
	bw, bb := b>>6, uint64(1)<<uint(b&63)
	if d.succ.bits[a*w+bw]&bb != 0 {
		return true
	}
	if d.ord[a] >= d.ord[b] {
		// The edge contradicts the maintained order: discover the
		// affected region and reorder, or reject on a back-path.
		if !d.reorder(a, b) {
			return false
		}
	}
	d.succ.bits[a*w+bw] |= bb
	d.pred.bits[b*w+(a>>6)] |= 1 << uint(a&63)
	d.edgeLog = append(d.edgeLog, dedge{a, b})
	return true
}

// AddRelAcyclic streams every pair of r into d, stopping at the first
// edge that would close a cycle. It reports whether all edges were
// accepted; on false the edges accepted before the offender remain (use
// Snapshot/Rollback to undo).
func (d *DeltaRel) AddRelAcyclic(r *Rel) bool {
	if r.n != d.n {
		panic("relation: universe mismatch in AddRelAcyclic")
	}
	for a := 0; a < r.n; a++ {
		row := r.bits[a*r.w : (a+1)*r.w]
		for wi, word := range row {
			for word != 0 {
				b := wi*64 + bits.TrailingZeros64(word)
				word &= word - 1
				if b < r.n && !d.AddEdgeAcyclic(a, b) {
					return false
				}
			}
		}
	}
	return true
}

// reorder handles an insertion (a, b) with ord[a] ≥ ord[b]: it searches
// forward from b within the affected window [ord[b], ord[a]] for a path
// back to a (a cycle: report false, change nothing) and otherwise
// reassigns the window's order indices so a precedes b (Pearce–Kelly:
// the backward frontier of a keeps its relative order and moves before
// the forward frontier of b, using exactly the index pool the two
// frontiers occupied).
func (d *DeltaRel) reorder(a, b int) bool {
	d.epoch++
	lo, hi := d.ord[b], d.ord[a]

	// Forward DFS from b over nodes with ord ≤ hi.
	d.fwd = d.fwd[:0]
	d.stack = append(d.stack[:0], b)
	d.mark[b] = d.epoch
	for len(d.stack) > 0 {
		v := d.stack[len(d.stack)-1]
		d.stack = d.stack[:len(d.stack)-1]
		if v == a {
			return false // path b ⇝ a exists: (a, b) closes a cycle
		}
		d.fwd = append(d.fwd, v)
		row := d.succ.bits[v*d.succ.w : (v+1)*d.succ.w]
		for wi, word := range row {
			for word != 0 {
				s := wi*64 + bits.TrailingZeros64(word)
				word &= word - 1
				if s < d.n && d.mark[s] != d.epoch && d.ord[s] <= hi {
					d.mark[s] = d.epoch
					d.stack = append(d.stack, s)
				}
			}
		}
	}

	// Backward DFS from a over nodes with ord ≥ lo. The two regions are
	// disjoint: a node in both would witness the cycle found above.
	d.back = d.back[:0]
	d.stack = append(d.stack[:0], a)
	d.mark[a] = d.epoch
	for len(d.stack) > 0 {
		v := d.stack[len(d.stack)-1]
		d.stack = d.stack[:len(d.stack)-1]
		d.back = append(d.back, v)
		row := d.pred.bits[v*d.pred.w : (v+1)*d.pred.w]
		for wi, word := range row {
			for word != 0 {
				p := wi*64 + bits.TrailingZeros64(word)
				word &= word - 1
				if p < d.n && d.mark[p] != d.epoch && d.ord[p] >= lo {
					d.mark[p] = d.epoch
					d.stack = append(d.stack, p)
				}
			}
		}
	}

	// Sort both regions by current order index (insertion sort: regions
	// are tiny and nearly sorted) and merge their index pools: backward
	// nodes first, then forward nodes, each keeping relative order.
	sortByOrd(d.back, d.ord)
	sortByOrd(d.fwd, d.ord)
	// Collect the pool of order indices the two regions occupy, ascending.
	// Both lists are ord-sorted and disjoint, so a two-finger merge works.
	pool := d.stack[:0] // reuse scratch
	i, j := 0, 0
	for i < len(d.back) || j < len(d.fwd) {
		switch {
		case i == len(d.back):
			pool = append(pool, d.ord[d.fwd[j]])
			j++
		case j == len(d.fwd):
			pool = append(pool, d.ord[d.back[i]])
			i++
		case d.ord[d.back[i]] < d.ord[d.fwd[j]]:
			pool = append(pool, d.ord[d.back[i]])
			i++
		default:
			pool = append(pool, d.ord[d.fwd[j]])
			j++
		}
	}
	k := 0
	for _, v := range d.back {
		d.ordLog = append(d.ordLog, ordChange{node: v, old: d.ord[v]})
		d.ord[v] = pool[k]
		k++
	}
	for _, v := range d.fwd {
		d.ordLog = append(d.ordLog, ordChange{node: v, old: d.ord[v]})
		d.ord[v] = pool[k]
		k++
	}
	d.stack = pool[:0]
	return true
}

// sortByOrd insertion-sorts nodes ascending by ord index.
func sortByOrd(nodes []int, ord []int) {
	for i := 1; i < len(nodes); i++ {
		v := nodes[i]
		j := i - 1
		for j >= 0 && ord[nodes[j]] > ord[v] {
			nodes[j+1] = nodes[j]
			j--
		}
		nodes[j+1] = v
	}
}
