// Package relation provides dense binary relations over a finite universe
// {0, …, n-1}, represented as bit matrices. It is the substrate on which the
// axiomatic memory models are defined: every consistency predicate in
// internal/memmodel reduces to unions, compositions, closures and acyclicity
// checks of relations built with this package.
//
// Relations are mutable; operations that produce new relations are methods
// named after the operation (Union, Compose, …) and leave their operands
// untouched. Sizes are expected to be small (tens to a few hundred events),
// so the dense representation wins over sparse structures.
package relation

import (
	"fmt"
	"math/bits"
	"strings"
)

// wordsFor returns the number of 64-bit words needed for n bits.
func wordsFor(n int) int { return (n + 63) / 64 }

// Rel is a binary relation over {0, …, n-1}. The zero value is unusable;
// construct with New or Arena.New.
type Rel struct {
	n     int
	w     int      // words per row
	bits  []uint64 // row-major: row i occupies bits[i*w : (i+1)*w]
	arena *Arena   // allocation source for derived relations (nil: heap)
}

// New returns the empty relation over a universe of size n.
func New(n int) *Rel {
	if n < 0 {
		panic("relation: negative universe size")
	}
	w := wordsFor(n)
	return &Rel{n: n, w: w, bits: make([]uint64, n*w)}
}

// newLike allocates an empty relation over a universe of size n from the
// same source as r: r's arena when it has one, the heap otherwise. Every
// operation that produces a new relation routes through this, so derived
// relations inherit their operand's allocation discipline.
func (r *Rel) newLike(n int) *Rel {
	if r.arena != nil {
		return r.arena.New(n)
	}
	return New(n)
}

// Size returns the universe size n.
func (r *Rel) Size() int { return r.n }

// Add inserts the pair (a, b).
func (r *Rel) Add(a, b int) {
	r.check(a)
	r.check(b)
	r.bits[a*r.w+b/64] |= 1 << uint(b%64)
}

// AddRange inserts the pairs (a, b) for every b in [lo, hi), filling whole
// 64-bit words at a time instead of setting bits one by one. Dense interval
// relations (program order's same-thread suffixes, init-before-everything
// rows) build in O(n/64) per row this way.
func (r *Rel) AddRange(a, lo, hi int) {
	if lo >= hi {
		return
	}
	r.check(a)
	r.check(lo)
	r.check(hi - 1)
	row := r.bits[a*r.w : (a+1)*r.w]
	lw, hw := lo/64, (hi-1)/64
	loMask := ^uint64(0) << uint(lo%64)
	hiMask := ^uint64(0) >> uint(63-(hi-1)%64)
	if lw == hw {
		row[lw] |= loMask & hiMask
		return
	}
	row[lw] |= loMask
	for i := lw + 1; i < hw; i++ {
		row[i] = ^uint64(0)
	}
	row[hw] |= hiMask
}

// Remove deletes the pair (a, b).
func (r *Rel) Remove(a, b int) {
	r.check(a)
	r.check(b)
	r.bits[a*r.w+b/64] &^= 1 << uint(b%64)
}

// Has reports whether the pair (a, b) is in the relation.
func (r *Rel) Has(a, b int) bool {
	r.check(a)
	r.check(b)
	return r.bits[a*r.w+b/64]&(1<<uint(b%64)) != 0
}

func (r *Rel) check(i int) {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("relation: index %d out of range [0,%d)", i, r.n))
	}
}

// Clone returns a deep copy of r (allocated from r's arena, if any).
func (r *Rel) Clone() *Rel {
	c := r.newLike(r.n)
	copy(c.bits, r.bits)
	return c
}

// Clear removes every pair.
func (r *Rel) Clear() {
	for i := range r.bits {
		r.bits[i] = 0
	}
}

// Len returns the number of pairs in the relation.
func (r *Rel) Len() int {
	total := 0
	for _, word := range r.bits {
		total += bits.OnesCount64(word)
	}
	return total
}

// UnionWith adds every pair of o into r (in place). The universes must match.
func (r *Rel) UnionWith(o *Rel) *Rel {
	r.sameUniverse(o)
	for i, word := range o.bits {
		r.bits[i] |= word
	}
	return r
}

// Union returns a new relation r ∪ o.
func (r *Rel) Union(o *Rel) *Rel { return r.Clone().UnionWith(o) }

// IntersectWith keeps only the pairs also present in o (in place).
func (r *Rel) IntersectWith(o *Rel) *Rel {
	r.sameUniverse(o)
	for i, word := range o.bits {
		r.bits[i] &= word
	}
	return r
}

// Intersect returns a new relation r ∩ o.
func (r *Rel) Intersect(o *Rel) *Rel { return r.Clone().IntersectWith(o) }

// MinusWith removes every pair of o from r (in place).
func (r *Rel) MinusWith(o *Rel) *Rel {
	r.sameUniverse(o)
	for i, word := range o.bits {
		r.bits[i] &^= word
	}
	return r
}

// Minus returns a new relation r \ o.
func (r *Rel) Minus(o *Rel) *Rel { return r.Clone().MinusWith(o) }

func (r *Rel) sameUniverse(o *Rel) {
	if r.n != o.n {
		panic(fmt.Sprintf("relation: universe mismatch %d vs %d", r.n, o.n))
	}
}

// Compose returns the relational composition r ; o
// ({(a, c) | ∃b. (a,b) ∈ r ∧ (b,c) ∈ o}).
func (r *Rel) Compose(o *Rel) *Rel {
	r.sameUniverse(o)
	out := r.newLike(r.n)
	for a := 0; a < r.n; a++ {
		row := r.bits[a*r.w : (a+1)*r.w]
		dst := out.bits[a*out.w : (a+1)*out.w]
		for wi, word := range row {
			for word != 0 {
				b := wi*64 + bits.TrailingZeros64(word)
				word &= word - 1
				src := o.bits[b*o.w : (b+1)*o.w]
				for k, s := range src {
					dst[k] |= s
				}
			}
		}
	}
	return out
}

// Inverse returns the converse relation {(b, a) | (a, b) ∈ r}.
func (r *Rel) Inverse() *Rel {
	out := r.newLike(r.n)
	for a := 0; a < r.n; a++ {
		row := r.bits[a*r.w : (a+1)*r.w]
		for wi, word := range row {
			for word != 0 {
				b := wi*64 + bits.TrailingZeros64(word)
				word &= word - 1
				out.Add(b, a)
			}
		}
	}
	return out
}

// TransitiveClose computes the transitive closure of r in place
// (Warshall on bit rows; O(n²·n/64)).
func (r *Rel) TransitiveClose() *Rel {
	for k := 0; k < r.n; k++ {
		krow := r.bits[k*r.w : (k+1)*r.w]
		kw, kb := k/64, uint64(1)<<uint(k%64)
		for a := 0; a < r.n; a++ {
			if r.bits[a*r.w+kw]&kb != 0 {
				arow := r.bits[a*r.w : (a+1)*r.w]
				for i, word := range krow {
					arow[i] |= word
				}
			}
		}
	}
	return r
}

// Closure returns a new relation that is the transitive closure of r.
func (r *Rel) Closure() *Rel { return r.Clone().TransitiveClose() }

// ReflexiveClose adds (i, i) for every i, in place.
func (r *Rel) ReflexiveClose() *Rel {
	for i := 0; i < r.n; i++ {
		r.Add(i, i)
	}
	return r
}

// Irreflexive reports whether no (i, i) pair is present.
func (r *Rel) Irreflexive() bool {
	for i := 0; i < r.n; i++ {
		if r.Has(i, i) {
			return false
		}
	}
	return true
}

// Acyclic reports whether the relation, viewed as a directed graph,
// has no cycle. Implemented as an iterative DFS with colour marks,
// so it does not require computing the closure.
func (r *Rel) Acyclic() bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make([]uint8, r.n)
	// stack entries: node plus the iteration cursor packed separately.
	type frame struct {
		node int
		wi   int    // word index cursor
		word uint64 // remaining bits in current word
	}
	var stack []frame
	push := func(v int) frame {
		colour[v] = grey
		var f frame
		f.node = v
		f.wi = 0
		if r.w > 0 {
			f.word = r.bits[v*r.w]
		}
		return f
	}
	for s := 0; s < r.n; s++ {
		if colour[s] != white {
			continue
		}
		stack = append(stack[:0], push(s))
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for f.wi < r.w {
				if f.word == 0 {
					f.wi++
					if f.wi < r.w {
						f.word = r.bits[f.node*r.w+f.wi]
					}
					continue
				}
				b := f.wi*64 + bits.TrailingZeros64(f.word)
				f.word &= f.word - 1
				if b >= r.n {
					continue
				}
				switch colour[b] {
				case grey:
					return false
				case white:
					stack = append(stack, push(b))
					advanced = true
				}
				if advanced {
					break
				}
			}
			if !advanced && f.wi >= r.w {
				colour[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return true
}

// TopoSort returns one topological order of the relation's digraph, or
// ok=false if it is cyclic.
func (r *Rel) TopoSort() (order []int, ok bool) {
	indeg := make([]int, r.n)
	for a := 0; a < r.n; a++ {
		row := r.bits[a*r.w : (a+1)*r.w]
		for wi, word := range row {
			for word != 0 {
				b := wi*64 + bits.TrailingZeros64(word)
				word &= word - 1
				if b < r.n {
					indeg[b]++
				}
			}
		}
	}
	queue := make([]int, 0, r.n)
	for i := 0; i < r.n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order = make([]int, 0, r.n)
	// Pop with a head cursor: re-slicing (queue = queue[1:]) retains the
	// full backing array and shifts the header O(n) times per sort.
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		order = append(order, v)
		row := r.bits[v*r.w : (v+1)*r.w]
		for wi, word := range row {
			for word != 0 {
				b := wi*64 + bits.TrailingZeros64(word)
				word &= word - 1
				if b < r.n {
					indeg[b]--
					if indeg[b] == 0 {
						queue = append(queue, b)
					}
				}
			}
		}
	}
	if len(order) != r.n {
		return nil, false
	}
	return order, true
}

// Successors calls fn for every b with (a, b) ∈ r, in increasing order.
func (r *Rel) Successors(a int, fn func(b int)) {
	r.check(a)
	row := r.bits[a*r.w : (a+1)*r.w]
	for wi, word := range row {
		for word != 0 {
			b := wi*64 + bits.TrailingZeros64(word)
			word &= word - 1
			if b < r.n {
				fn(b)
			}
		}
	}
}

// Pairs calls fn for every pair (a, b) ∈ r in row-major order.
func (r *Rel) Pairs(fn func(a, b int)) {
	for a := 0; a < r.n; a++ {
		r.Successors(a, func(b int) { fn(a, b) })
	}
}

// Equal reports whether r and o contain exactly the same pairs.
func (r *Rel) Equal(o *Rel) bool {
	if r.n != o.n {
		return false
	}
	for i := range r.bits {
		if r.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// String renders the relation as a sorted pair list, e.g. "{(0,1) (2,0)}".
func (r *Rel) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	r.Pairs(func(a, b int) {
		if !first {
			sb.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&sb, "(%d,%d)", a, b)
	})
	sb.WriteByte('}')
	return sb.String()
}

// ReachableFrom returns the set of nodes reachable from any seed by
// following edges forward (seeds included).
func (r *Rel) ReachableFrom(seeds ...int) []bool {
	seen := make([]bool, r.n)
	var stack []int
	for _, s := range seeds {
		r.check(s)
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r.Successors(v, func(b int) {
			if !seen[b] {
				seen[b] = true
				stack = append(stack, b)
			}
		})
	}
	return seen
}
