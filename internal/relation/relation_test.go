package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	r := New(5)
	if r.Has(1, 2) {
		t.Fatal("empty relation should not contain (1,2)")
	}
	r.Add(1, 2)
	if !r.Has(1, 2) {
		t.Fatal("(1,2) missing after Add")
	}
	if r.Has(2, 1) {
		t.Fatal("relation should not be symmetric")
	}
	r.Remove(1, 2)
	if r.Has(1, 2) {
		t.Fatal("(1,2) present after Remove")
	}
}

func TestLen(t *testing.T) {
	r := New(10)
	pairs := [][2]int{{0, 1}, {1, 2}, {9, 0}, {9, 0}, {3, 3}}
	for _, p := range pairs {
		r.Add(p[0], p[1])
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4 (duplicate Add must not double-count)", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	New(3).Add(0, 3)
}

func TestUnionIntersectMinus(t *testing.T) {
	a := New(4)
	a.Add(0, 1)
	a.Add(1, 2)
	b := New(4)
	b.Add(1, 2)
	b.Add(2, 3)

	u := a.Union(b)
	for _, p := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if !u.Has(p[0], p[1]) {
			t.Errorf("union missing %v", p)
		}
	}
	if u.Len() != 3 {
		t.Errorf("union Len = %d, want 3", u.Len())
	}

	i := a.Intersect(b)
	if i.Len() != 1 || !i.Has(1, 2) {
		t.Errorf("intersect = %v, want {(1,2)}", i)
	}

	m := a.Minus(b)
	if m.Len() != 1 || !m.Has(0, 1) {
		t.Errorf("minus = %v, want {(0,1)}", m)
	}

	// Operands untouched.
	if a.Len() != 2 || b.Len() != 2 {
		t.Error("Union/Intersect/Minus mutated an operand")
	}
}

func TestCompose(t *testing.T) {
	r := New(4)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(2, 3)
	c := r.Compose(r)
	want := [][2]int{{0, 2}, {1, 3}}
	if c.Len() != len(want) {
		t.Fatalf("compose Len = %d, want %d: %v", c.Len(), len(want), c)
	}
	for _, p := range want {
		if !c.Has(p[0], p[1]) {
			t.Errorf("compose missing %v", p)
		}
	}
}

func TestInverse(t *testing.T) {
	r := New(3)
	r.Add(0, 2)
	r.Add(1, 2)
	inv := r.Inverse()
	if !inv.Has(2, 0) || !inv.Has(2, 1) || inv.Len() != 2 {
		t.Fatalf("inverse wrong: %v", inv)
	}
	if !inv.Inverse().Equal(r) {
		t.Fatal("double inverse is not identity")
	}
}

func TestClosureChain(t *testing.T) {
	r := New(5)
	for i := 0; i < 4; i++ {
		r.Add(i, i+1)
	}
	c := r.Closure()
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if !c.Has(i, j) {
				t.Errorf("closure missing (%d,%d)", i, j)
			}
		}
	}
	if c.Len() != 10 {
		t.Errorf("closure Len = %d, want 10", c.Len())
	}
}

func TestAcyclic(t *testing.T) {
	r := New(4)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(2, 3)
	if !r.Acyclic() {
		t.Fatal("chain should be acyclic")
	}
	r.Add(3, 1)
	if r.Acyclic() {
		t.Fatal("3→1 closes a cycle")
	}
}

func TestAcyclicSelfLoop(t *testing.T) {
	r := New(2)
	r.Add(1, 1)
	if r.Acyclic() {
		t.Fatal("self loop is a cycle")
	}
}

func TestAcyclicEmptyAndSingleton(t *testing.T) {
	if !New(0).Acyclic() {
		t.Error("empty universe must be acyclic")
	}
	if !New(1).Acyclic() {
		t.Error("singleton with no edges must be acyclic")
	}
}

func TestTopoSort(t *testing.T) {
	r := New(5)
	edges := [][2]int{{0, 2}, {1, 2}, {2, 3}, {3, 4}}
	for _, e := range edges {
		r.Add(e[0], e[1])
	}
	order, ok := r.TopoSort()
	if !ok {
		t.Fatal("acyclic graph must topo-sort")
	}
	pos := make([]int, 5)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range edges {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violated by order %v", e, order)
		}
	}
	r.Add(4, 0)
	if _, ok := r.TopoSort(); ok {
		t.Fatal("cyclic graph must not topo-sort")
	}
}

func TestReachableFrom(t *testing.T) {
	r := New(6)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(3, 4)
	seen := r.ReachableFrom(0)
	want := []bool{true, true, true, false, false, false}
	for i, w := range want {
		if seen[i] != w {
			t.Errorf("reach[%d] = %v, want %v", i, seen[i], w)
		}
	}
	seen = r.ReachableFrom(0, 3)
	if !seen[4] || seen[5] {
		t.Errorf("multi-seed reach wrong: %v", seen)
	}
}

func TestIrreflexive(t *testing.T) {
	r := New(3)
	r.Add(0, 1)
	if !r.Irreflexive() {
		t.Fatal("no diagonal pair present")
	}
	r.Add(2, 2)
	if r.Irreflexive() {
		t.Fatal("(2,2) present")
	}
}

func TestStringAndEqual(t *testing.T) {
	r := New(3)
	r.Add(2, 0)
	r.Add(0, 1)
	if got := r.String(); got != "{(0,1) (2,0)}" {
		t.Errorf("String = %q", got)
	}
	if !r.Equal(r.Clone()) {
		t.Error("clone not equal to original")
	}
	o := New(4)
	if r.Equal(o) {
		t.Error("different universes must not be equal")
	}
}

// randomRel builds a pseudo-random relation over n nodes with edge
// probability p, for property tests.
func randomRel(rng *rand.Rand, n int, p float64) *Rel {
	r := New(n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if rng.Float64() < p {
				r.Add(a, b)
			}
		}
	}
	return r
}

func TestPropClosureIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRel(rng, 1+rng.Intn(12), 0.2)
		c := r.Closure()
		return c.Closure().Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropAcyclicIffTopoSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRel(rng, 1+rng.Intn(12), 0.15)
		_, ok := r.TopoSort()
		if ok != r.Acyclic() {
			return false
		}
		// The incremental checker must agree with both from-scratch
		// oracles: streaming r's edges into a DeltaRel accepts them all
		// iff the relation is acyclic.
		d := NewDelta(r.Size())
		return d.AddRelAcyclic(r) == ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestArenaRelOps(t *testing.T) {
	var a Arena
	a.Reset()
	r := a.New(6)
	r.Add(0, 1)
	r.Add(1, 2)
	u := r.Union(r.Inverse()) // derived relations come from the arena
	if u.arena != &a {
		t.Fatal("derived relation did not inherit the arena")
	}
	if !u.Has(0, 1) || !u.Has(1, 0) || !u.Has(2, 1) {
		t.Fatal("arena-backed ops computed the wrong pairs")
	}
	heap := New(6)
	heap.Add(3, 4)
	if got := r.Union(heap); !got.Has(3, 4) || !got.Has(0, 1) {
		t.Fatal("mixed arena/heap union wrong")
	}
	a.Reset()
	fresh := a.New(6)
	if fresh.Len() != 0 {
		t.Fatal("arena Reset leaked pairs into a fresh relation")
	}
	// Overflow the slab: allocations past the slab fall back to the heap
	// and still behave like relations.
	big := a.New(600)
	big.Add(599, 0)
	if !big.Has(599, 0) || big.Clone().Len() != 1 {
		t.Fatal("overflow allocation misbehaved")
	}
}

// TestArenaResultsMatchHeap cross-checks a composite expression computed
// with arena-backed and heap-backed relations.
func TestArenaResultsMatchHeap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		h1, h2 := randomRel(rng, n, 0.3), randomRel(rng, n, 0.3)
		var a Arena
		a.Reset()
		a1, a2 := a.New(n), a.New(n)
		a1.UnionWith(h1)
		a2.UnionWith(h2)
		want := h1.Union(h2).Compose(h1.Inverse()).Closure()
		got := a1.Union(a2).Compose(a1.Inverse()).Closure()
		return got.Equal(want) && got.Acyclic() == want.Acyclic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropAcyclicIffClosureIrreflexive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRel(rng, 1+rng.Intn(10), 0.2)
		return r.Acyclic() == r.Closure().Irreflexive()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropComposeAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a, b, c := randomRel(rng, n, 0.3), randomRel(rng, n, 0.3), randomRel(rng, n, 0.3)
		return a.Compose(b).Compose(c).Equal(a.Compose(b.Compose(c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropUnionCommutativeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a, b := randomRel(rng, n, 0.3), randomRel(rng, n, 0.3)
		return a.Union(b).Equal(b.Union(a)) && a.Union(a).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropClosureContainsCompositions(t *testing.T) {
	// r ∪ r;r ⊆ closure(r)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRel(rng, 1+rng.Intn(10), 0.2)
		c := r.Closure()
		return r.Union(r.Compose(r)).Minus(c).Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropInverseDistributesOverUnion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a, b := randomRel(rng, n, 0.3), randomRel(rng, n, 0.3)
		return a.Union(b).Inverse().Equal(a.Inverse().Union(b.Inverse()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropAddRangeMatchesAdds pins the word-mask interval fill against the
// per-bit loop across word boundaries and universe sizes.
func TestPropAddRangeMatchesAdds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200) // spans multi-word rows
		a := rng.Intn(n)
		lo := rng.Intn(n + 1)
		hi := lo + rng.Intn(n+1-lo)
		fast := New(n)
		fast.AddRange(a, lo, hi)
		slow := New(n)
		for b := lo; b < hi; b++ {
			slow.Add(a, b)
		}
		return fast.Equal(slow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestAddRangePreservesExistingBits checks AddRange only ever sets bits.
func TestAddRangePreservesExistingBits(t *testing.T) {
	r := New(130)
	r.Add(0, 1)
	r.Add(0, 129)
	r.AddRange(0, 64, 128)
	if !r.Has(0, 1) || !r.Has(0, 129) {
		t.Fatal("AddRange cleared pre-existing bits")
	}
	if r.Has(0, 63) || r.Has(0, 128) {
		t.Fatal("AddRange set bits outside [lo,hi)")
	}
	for b := 64; b < 128; b++ {
		if !r.Has(0, b) {
			t.Fatalf("AddRange missed bit %d", b)
		}
	}
}
