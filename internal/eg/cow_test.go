package eg

import (
	"testing"
)

// snapshotKeyAndWF returns the graph's canonical key after checking
// well-formedness — the observable identity COW must preserve.
func snapshotKeyAndWF(t *testing.T, g *Graph) string {
	t.Helper()
	if err := g.CheckWellFormed(); err != nil {
		t.Fatalf("well-formedness: %v", err)
	}
	return g.Key()
}

// TestCloneCOWIsolation exercises every mutator against a clone and checks
// the parent is untouched (and vice versa): Clone shares structure, so any
// missing copy-on-write hook shows up as cross-graph corruption here.
func TestCloneCOWIsolation(t *testing.T) {
	const x, y = Loc(0), Loc(1)

	t.Run("AddDoesNotLeakToParent", func(t *testing.T) {
		g := buildMP(t)
		key := snapshotKeyAndWF(t, g)
		c := g.Clone()
		w2 := Event{ID: EvID{T: 0, I: 2}, Kind: KWrite, Loc: x, Val: 2}
		c.Add(w2)
		c.CoInsert(x, 1, w2.ID)
		if got := snapshotKeyAndWF(t, g); got != key {
			t.Fatalf("parent changed by clone's Add:\n%s\nvs\n%s", got, key)
		}
		if c.NumEvents() != g.NumEvents()+1 {
			t.Fatalf("clone did not gain the event")
		}
	})

	t.Run("SiblingAppendsDoNotCollide", func(t *testing.T) {
		// Two clones of the same parent both append to the same thread:
		// without copy-on-write of the shared backing array, the second
		// append would overwrite the first clone's event.
		g := buildMP(t)
		c1, c2 := g.Clone(), g.Clone()
		c1.Add(Event{ID: EvID{T: 0, I: 2}, Kind: KWrite, Loc: x, Val: 11})
		c1.CoInsert(x, 1, EvID{T: 0, I: 2})
		c2.Add(Event{ID: EvID{T: 0, I: 2}, Kind: KWrite, Loc: y, Val: 22})
		c2.CoInsert(y, 1, EvID{T: 0, I: 2})
		e1 := c1.Event(EvID{T: 0, I: 2})
		e2 := c2.Event(EvID{T: 0, I: 2})
		if e1.Loc != x || e1.Val != 11 {
			t.Fatalf("clone 1's event stomped: %v", e1)
		}
		if e2.Loc != y || e2.Val != 22 {
			t.Fatalf("clone 2's event stomped: %v", e2)
		}
		if err := c1.CheckWellFormed(); err != nil {
			t.Fatalf("clone 1: %v", err)
		}
		if err := c2.CheckWellFormed(); err != nil {
			t.Fatalf("clone 2: %v", err)
		}
	})

	t.Run("SetRFDoesNotLeak", func(t *testing.T) {
		g := buildMP(t)
		key := snapshotKeyAndWF(t, g)
		c := g.Clone()
		c.SetRF(EvID{T: 1, I: 1}, EvID{T: 0, I: 0}) // rebind rx from init to wx
		if got := snapshotKeyAndWF(t, g); got != key {
			t.Fatalf("parent rf changed by clone's SetRF")
		}
		if w, _ := c.RF(EvID{T: 1, I: 1}); w != (EvID{T: 0, I: 0}) {
			t.Fatalf("clone rf not updated: %v", w)
		}
		if w, _ := g.RF(EvID{T: 1, I: 1}); w != InitID(x) {
			t.Fatalf("parent rf changed: %v", w)
		}
	})

	t.Run("SetEventValDoesNotLeak", func(t *testing.T) {
		// In-place element patch: the sharpest COW hazard, since it does
		// not change slice length.
		g := buildMP(t)
		c := g.Clone()
		c.SetEventVal(EvID{T: 0, I: 0}, 99)
		if got := g.Event(EvID{T: 0, I: 0}).Val; got != 1 {
			t.Fatalf("parent value patched through shared array: %d", got)
		}
		if got := c.Event(EvID{T: 0, I: 0}).Val; got != 99 {
			t.Fatalf("clone value not patched: %d", got)
		}
	})

	t.Run("SetEventKindDoesNotLeak", func(t *testing.T) {
		g := NewGraph(1, 1)
		u := Event{ID: EvID{T: 0, I: 0}, Kind: KUpdate, Loc: 0, Val: 1}
		g.Add(u)
		g.CoInsert(0, 0, u.ID)
		g.SetRF(u.ID, InitID(0))
		c := g.Clone()
		c.SetEventKind(u.ID, KRead)
		c.CoRemove(0, u.ID)
		if g.Event(u.ID).Kind != KUpdate {
			t.Fatalf("parent kind rewritten through shared array")
		}
		if c.Event(u.ID).Kind != KRead {
			t.Fatalf("clone kind not rewritten")
		}
		if g.CoIndex(0, u.ID) != 0 {
			t.Fatalf("parent co changed by clone's CoRemove")
		}
	})

	t.Run("CoInsertAndRemoveDoNotLeak", func(t *testing.T) {
		g := buildMP(t)
		key := snapshotKeyAndWF(t, g)
		c := g.Clone()
		c.CoRemove(y, EvID{T: 0, I: 1})
		c.SetEventKind(EvID{T: 1, I: 0}, KRead) // keep c ill-formed-free irrelevant; just parent check
		if got := snapshotKeyAndWF(t, g); got != key {
			t.Fatalf("parent co changed by clone's CoRemove")
		}
	})

	t.Run("ParentMutationDoesNotLeakToClone", func(t *testing.T) {
		// Ownership is symmetric: the parent also loses it at Clone time.
		g := buildMP(t)
		c := g.Clone()
		key := snapshotKeyAndWF(t, c)
		g.SetEventVal(EvID{T: 0, I: 1}, 77)
		g.Add(Event{ID: EvID{T: 1, I: 2}, Kind: KRead, Loc: x})
		g.SetRF(EvID{T: 1, I: 2}, InitID(x))
		if got := snapshotKeyAndWF(t, c); got != key {
			t.Fatalf("clone changed by parent mutation")
		}
	})

	t.Run("ChainedClones", func(t *testing.T) {
		// Clone of a clone that never mutated: all three share structure;
		// mutating the grandchild must leave both ancestors intact.
		g := buildMP(t)
		keyG := snapshotKeyAndWF(t, g)
		c := g.Clone()
		gc := c.Clone()
		gc.SetEventVal(EvID{T: 0, I: 0}, 42)
		if snapshotKeyAndWF(t, g) != keyG || snapshotKeyAndWF(t, c) != keyG {
			t.Fatalf("ancestor changed by grandchild mutation")
		}
		if gc.Event(EvID{T: 0, I: 0}).Val != 42 {
			t.Fatalf("grandchild mutation lost")
		}
	})

	t.Run("RestrictOfSharedGraph", func(t *testing.T) {
		// Restrict deep-copies and must not disturb a graph whose pieces
		// are shared with clones (the revisit path does exactly this).
		g := buildMP(t)
		c := g.Clone()
		key := snapshotKeyAndWF(t, g)
		sub := g.Restrict(func(id EvID) bool { return id.T != 1 })
		sub.Add(Event{ID: EvID{T: 1, I: 0}, Kind: KRead, Loc: x})
		sub.SetRF(EvID{T: 1, I: 0}, EvID{T: 0, I: 0})
		if snapshotKeyAndWF(t, g) != key || snapshotKeyAndWF(t, c) != key {
			t.Fatalf("Restrict or mutation of restriction disturbed the shared graph")
		}
	})
}

// TestCloneEquivalentToDeepCopy drives identical mutation sequences through
// a COW clone and a manually deep-copied graph and checks the keys agree.
func TestCloneEquivalentToDeepCopy(t *testing.T) {
	const x = Loc(0)
	g := buildMP(t)

	deep := g.Restrict(func(EvID) bool { return true }) // Restrict is a deep copy
	cow := g.Clone()

	mutate := func(m *Graph) {
		m.SetEventVal(EvID{T: 0, I: 0}, 5)
		m.Add(Event{ID: EvID{T: 0, I: 2}, Kind: KWrite, Loc: x, Val: 6})
		m.CoInsert(x, 0, EvID{T: 0, I: 2})
		m.SetRF(EvID{T: 1, I: 1}, EvID{T: 0, I: 2})
	}
	mutate(deep)
	mutate(cow)
	if deep.Key() != cow.Key() {
		t.Fatalf("COW clone diverged from deep copy:\n%s\nvs\n%s", cow.Key(), deep.Key())
	}
	if err := cow.CheckWellFormed(); err != nil {
		t.Fatalf("COW clone ill-formed: %v", err)
	}
}
