package eg

import "testing"

func TestViewIndexingOrder(t *testing.T) {
	g := buildMP(t)
	v := NewView(g)
	if v.N != 6 { // 2 init + 4 thread events
		t.Fatalf("N = %d, want 6", v.N)
	}
	if v.Idx(InitID(0)) != 0 || v.Idx(InitID(1)) != 1 {
		t.Fatal("init events must come first in dense order")
	}
	if v.Idx(EvID{T: 0, I: 0}) != 2 || v.Idx(EvID{T: 1, I: 1}) != 5 {
		t.Fatal("thread events must follow in (thread,index) order")
	}
}

func TestViewPo(t *testing.T) {
	g := buildMP(t)
	v := NewView(g)
	po := v.Po()
	// Same-thread ordering.
	if !po.Has(v.Idx(EvID{T: 0, I: 0}), v.Idx(EvID{T: 0, I: 1})) {
		t.Error("po missing t0:0 -> t0:1")
	}
	if po.Has(v.Idx(EvID{T: 0, I: 1}), v.Idx(EvID{T: 0, I: 0})) {
		t.Error("po must not be symmetric")
	}
	// Cross-thread events unrelated.
	if po.Has(v.Idx(EvID{T: 0, I: 0}), v.Idx(EvID{T: 1, I: 0})) {
		t.Error("po must not relate different threads")
	}
	// Init before everything.
	if !po.Has(v.Idx(InitID(0)), v.Idx(EvID{T: 1, I: 1})) {
		t.Error("init must be po-before thread events")
	}
	if po.Has(v.Idx(InitID(0)), v.Idx(InitID(1))) {
		t.Error("init events unrelated to each other")
	}
}

func TestViewPoLoc(t *testing.T) {
	g := buildMP(t)
	v := NewView(g)
	pl := v.PoLoc()
	// W x (t0:0) and W y (t0:1) touch different locations.
	if pl.Has(v.Idx(EvID{T: 0, I: 0}), v.Idx(EvID{T: 0, I: 1})) {
		t.Error("poloc must not relate accesses of different locations")
	}
	// init x before R x in t1.
	if !pl.Has(v.Idx(InitID(0)), v.Idx(EvID{T: 1, I: 1})) {
		t.Error("poloc missing init x -> R x")
	}
	if pl.Has(v.Idx(InitID(0)), v.Idx(EvID{T: 1, I: 0})) {
		t.Error("poloc must not relate init x to R y")
	}
}

func TestViewRfSplit(t *testing.T) {
	g := buildMP(t)
	v := NewView(g)
	rf := v.Rf()
	if rf.Len() != 2 {
		t.Fatalf("rf Len = %d, want 2", rf.Len())
	}
	if !rf.Has(v.Idx(EvID{T: 0, I: 1}), v.Idx(EvID{T: 1, I: 0})) {
		t.Error("rf missing Wy -> Ry")
	}
	// Both rf edges are external here.
	if v.Rfe().Len() != 2 || v.Rfi().Len() != 0 {
		t.Errorf("rfe/rfi split wrong: %d/%d", v.Rfe().Len(), v.Rfi().Len())
	}
}

func TestViewRfiInternal(t *testing.T) {
	g := NewGraph(1, 1)
	w := Event{ID: EvID{T: 0, I: 0}, Kind: KWrite, Loc: 0, Val: 1}
	r := Event{ID: EvID{T: 0, I: 1}, Kind: KRead, Loc: 0}
	g.Add(w)
	g.CoInsert(0, 0, w.ID)
	g.Add(r)
	g.SetRF(r.ID, w.ID)
	v := NewView(g)
	if v.Rfi().Len() != 1 || v.Rfe().Len() != 0 {
		t.Fatalf("same-thread rf must be internal: rfi=%d rfe=%d", v.Rfi().Len(), v.Rfe().Len())
	}
}

func TestViewCoAndFr(t *testing.T) {
	g := buildMP(t)
	v := NewView(g)
	co := v.Co()
	// init x -> W x and init y -> W y.
	if !co.Has(v.Idx(InitID(0)), v.Idx(EvID{T: 0, I: 0})) {
		t.Error("co missing init x -> Wx")
	}
	if co.Len() != 2 {
		t.Errorf("co Len = %d, want 2", co.Len())
	}
	fr := v.Fr()
	// rx reads init x; Wx is co-after init x, so rx fr Wx.
	if !fr.Has(v.Idx(EvID{T: 1, I: 1}), v.Idx(EvID{T: 0, I: 0})) {
		t.Error("fr missing Rx -> Wx")
	}
	// ry reads the co-maximal write to y: no fr edge from ry.
	found := false
	fr.Successors(v.Idx(EvID{T: 1, I: 0}), func(int) { found = true })
	if found {
		t.Error("ry reads latest write, must have no fr successors")
	}
}

func TestViewFrUpdateNotReflexive(t *testing.T) {
	// T0: U x (CAS) reading from init and writing 1. fr must not contain (u,u).
	g := NewGraph(1, 1)
	u := Event{ID: EvID{T: 0, I: 0}, Kind: KUpdate, Loc: 0, Val: 1}
	g.Add(u)
	g.CoInsert(0, 0, u.ID)
	g.SetRF(u.ID, InitID(0))
	v := NewView(g)
	if !v.Fr().Irreflexive() {
		t.Fatal("fr contains a reflexive pair for the update")
	}
}

func TestViewEcoTransitive(t *testing.T) {
	g := buildMP(t)
	v := NewView(g)
	eco := v.Eco()
	// rx fr Wx (direct) — and eco is transitive over rf∪co∪fr.
	if !eco.Has(v.Idx(EvID{T: 1, I: 1}), v.Idx(EvID{T: 0, I: 0})) {
		t.Error("eco missing rx -> Wx")
	}
	// init x co Wx, so init x eco rx? No: eco goes init->Wx, Wx has no rf
	// to rx. But init x rf rx directly.
	if !eco.Has(v.Idx(InitID(0)), v.Idx(EvID{T: 1, I: 1})) {
		t.Error("eco missing init x -> rx (rf)")
	}
}

func TestViewDeps(t *testing.T) {
	// T0: r = R x; W y = r (data dep); branch on r then W z (ctrl dep).
	g := NewGraph(1, 3)
	r := Event{ID: EvID{T: 0, I: 0}, Kind: KRead, Loc: 0}
	wy := Event{ID: EvID{T: 0, I: 1}, Kind: KWrite, Loc: 1, Val: 0, Data: []EvID{r.ID}}
	wz := Event{ID: EvID{T: 0, I: 2}, Kind: KWrite, Loc: 2, Val: 1, Ctrl: []EvID{r.ID}}
	g.Add(r)
	g.SetRF(r.ID, InitID(0))
	g.Add(wy)
	g.CoInsert(1, 0, wy.ID)
	g.Add(wz)
	g.CoInsert(2, 0, wz.ID)
	v := NewView(g)
	if !v.DepData().Has(v.Idx(r.ID), v.Idx(wy.ID)) {
		t.Error("data dep missing")
	}
	if !v.DepCtrl().Has(v.Idx(r.ID), v.Idx(wz.ID)) {
		t.Error("ctrl dep missing")
	}
	if v.DepAddr().Len() != 0 {
		t.Error("no addr deps expected")
	}
	if v.Deps().Len() != 2 {
		t.Errorf("Deps Len = %d, want 2", v.Deps().Len())
	}
}

func TestViewSeqFence(t *testing.T) {
	// T0: W x; F.full; R y  — fence orders Wx before Ry.
	g := NewGraph(1, 2)
	w := Event{ID: EvID{T: 0, I: 0}, Kind: KWrite, Loc: 0, Val: 1}
	f := Event{ID: EvID{T: 0, I: 1}, Kind: KFence, Fence: FenceFull}
	r := Event{ID: EvID{T: 0, I: 2}, Kind: KRead, Loc: 1}
	g.Add(w)
	g.CoInsert(0, 0, w.ID)
	g.Add(f)
	g.Add(r)
	g.SetRF(r.ID, InitID(1))
	v := NewView(g)
	sf := v.SeqFence(FenceFull)
	if !sf.Has(v.Idx(w.ID), v.Idx(r.ID)) {
		t.Error("fence ordering missing Wx -> Ry")
	}
	if sf.Has(v.Idx(r.ID), v.Idx(w.ID)) {
		t.Error("fence ordering must follow po direction")
	}
	if v.SeqFence(FenceLW).Len() != 0 {
		t.Error("no lw fences present")
	}
}

func TestViewRestrict(t *testing.T) {
	g := buildMP(t)
	v := NewView(g)
	// po restricted to write sources only.
	wOnly := v.Restrict(v.Po(), func(e Event) bool { return e.Kind == KWrite }, nil)
	wOnly.Pairs(func(a, b int) {
		if v.Events[a].Kind != KWrite {
			t.Errorf("pair source %v is not a write", v.Events[a])
		}
	})
	if wOnly.Len() == 0 {
		t.Error("expected some write-sourced po pairs")
	}
}
