package eg

import (
	"testing"

	"hmc/internal/relation"
)

// TestEcoMemoized pins satellite behaviour: Eco, like the sibling
// accessors, must hand back the same relation on repeated calls instead of
// recomputing the closure.
func TestEcoMemoized(t *testing.T) {
	v := NewView(buildMP(t))
	if v.Eco() != v.Eco() {
		t.Fatal("Eco() recomputes: repeated calls returned distinct relations")
	}
	// And it is still the right relation.
	want := v.Rf().Union(v.Co()).UnionWith(v.Fr()).TransitiveClose()
	if !v.Eco().Equal(want) {
		t.Fatalf("memoized Eco = %v, want %v", v.Eco(), want)
	}
}

// viewRels enumerates every exposed relation of a view, for equivalence
// checks between pooled and heap-backed views.
func viewRels(v *View) map[string]*relation.Rel {
	return map[string]*relation.Rel{
		"po":      v.Po(),
		"poloc":   v.PoLoc(),
		"rf":      v.Rf(),
		"rfe":     v.Rfe(),
		"rfi":     v.Rfi(),
		"co":      v.Co(),
		"fr":      v.Fr(),
		"eco":     v.Eco(),
		"depAddr": v.DepAddr(),
		"depData": v.DepData(),
		"depCtrl": v.DepCtrl(),
		"deps":    v.Deps(),
	}
}

// TestPooledViewMatchesHeapView checks GetView is a faithful drop-in for
// NewView across reuse cycles: same dense layout, same relations, even
// when the pooled view is recycled between graphs of different shapes.
func TestPooledViewMatchesHeapView(t *testing.T) {
	g1 := buildMP(t)
	g2 := NewGraph(1, 3) // different shape to force re-init of buffers
	w := Event{ID: EvID{T: 0, I: 0}, Kind: KWrite, Loc: 2, Val: 7}
	g2.Add(w)
	g2.CoInsert(2, 0, w.ID)

	for round := 0; round < 3; round++ {
		for _, g := range []*Graph{g1, g2} {
			ref := NewView(g)
			pv := GetView(g)
			if pv.N != ref.N {
				t.Fatalf("pooled view N=%d, heap view N=%d", pv.N, ref.N)
			}
			for i := range ref.Events {
				if pv.Events[i].ID != ref.Events[i].ID {
					t.Fatalf("dense order diverged at %d: %v vs %v", i, pv.Events[i].ID, ref.Events[i].ID)
				}
				if pv.Idx(ref.Events[i].ID) != i {
					t.Fatalf("Idx(%v) = %d, want %d", ref.Events[i].ID, pv.Idx(ref.Events[i].ID), i)
				}
			}
			got, want := viewRels(pv), viewRels(ref)
			for name, r := range want {
				if !got[name].Equal(r) {
					t.Fatalf("round %d: pooled %s = %v, want %v", round, name, got[name], r)
				}
			}
			PutView(pv)
		}
	}
	// PutView on a heap view is a documented no-op.
	PutView(NewView(g1))
	PutView(nil)
}

// TestViewIdxPanicsOnAbsent keeps the arithmetic Idx as strict as the old
// map lookup: unknown events must panic, not alias a valid index.
func TestViewIdxPanicsOnAbsent(t *testing.T) {
	v := NewView(buildMP(t))
	for _, id := range []EvID{
		{T: 5, I: 0},           // unknown thread
		{T: 0, I: 99},          // index past thread end
		{T: 0, I: -1},          // negative index
		InitID(9),              // unknown location
		{T: InitThread, I: -4}, // negative init location
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Idx(%v) did not panic", id)
				}
			}()
			v.Idx(id)
		}()
	}
}

// BenchmarkEcoTwicePerCheck measures a model-shaped access pattern: two
// Eco() consultations against one view (RC11's coherence + sc-fence axioms
// do exactly this). Memoization makes the second call free.
func BenchmarkEcoTwicePerCheck(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := NewView(g)
		r1 := v.Eco()
		r2 := v.Eco()
		if r1.Len() != r2.Len() {
			b.Fatal("eco mismatch")
		}
	}
}

// BenchmarkPooledView measures the pooled-view fast path used by the
// explorer's consistency checks.
func BenchmarkPooledView(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := GetView(g)
		_ = v.Eco()
		PutView(v)
	}
}

// benchGraph builds a medium store-buffer-like execution for benchmarks.
func benchGraph() *Graph {
	const threads, locs = 4, 4
	g := NewGraph(threads, locs)
	for t := 0; t < threads; t++ {
		l := Loc(t % locs)
		w := Event{ID: EvID{T: t, I: 0}, Kind: KWrite, Loc: l, Val: 1}
		g.Add(w)
		g.CoInsert(l, 0, w.ID)
		r := Event{ID: EvID{T: t, I: 1}, Kind: KRead, Loc: Loc((t + 1) % locs)}
		g.Add(r)
		g.SetRF(r.ID, InitID(r.Loc))
	}
	return g
}
