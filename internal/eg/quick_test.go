package eg

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// rndGraph wraps a randomly built, well-formed execution graph for
// testing/quick. The generator builds graphs the way exploration does:
// events appended per thread, reads bound to an existing (or init) write
// of their location, writes inserted at a random coherence position.
// Updates are excluded (their co-adjacency invariant would need the full
// explorer); writes, reads, and fences exercise every relation the
// property tests touch.
type rndGraph struct {
	G *Graph
}

// Generate implements quick.Generator.
func (rndGraph) Generate(r *rand.Rand, size int) reflect.Value {
	nT := 1 + r.Intn(3)
	nL := 1 + r.Intn(3)
	g := NewGraph(nT, nL)
	steps := r.Intn(10)
	for s := 0; s < steps; s++ {
		t := r.Intn(nT)
		id := EvID{T: t, I: g.ThreadLen(t)}
		loc := Loc(r.Intn(nL))
		switch r.Intn(4) {
		case 0: // fence
			g.Add(Event{ID: id, Kind: KFence, Fence: FenceFull})
		case 1, 2: // write at a random coherence position
			g.Add(Event{ID: id, Kind: KWrite, Loc: loc, Val: int64(r.Intn(5))})
			g.CoInsert(loc, r.Intn(len(g.CoLoc(loc))+1), id)
		default: // read from a random existing write (init included)
			ws := g.WritesTo(loc)
			w := ws[r.Intn(len(ws))]
			g.Add(Event{ID: id, Kind: KRead, Loc: loc, Val: g.ValueOf(w)})
			g.SetRF(id, w)
		}
	}
	if err := g.CheckWellFormed(); err != nil {
		panic("quick generator built an ill-formed graph: " + err.Error())
	}
	return reflect.ValueOf(rndGraph{G: g})
}

var quickCfg = &quick.Config{MaxCount: 300}

// TestQuickCloneIsDeepAndKeyDeterministic: a clone has the same key, and
// mutating the clone never leaks into the original.
func TestQuickCloneIsDeepAndKeyDeterministic(t *testing.T) {
	prop := func(rg rndGraph) bool {
		g := rg.G
		before := g.Key()
		c := g.Clone()
		if c.Key() != before {
			return false
		}
		// Mutate the clone: append a write to thread 0 at co position 0.
		id := EvID{T: 0, I: c.ThreadLen(0)}
		c.Add(Event{ID: id, Kind: KWrite, Loc: 0, Val: 99})
		c.CoInsert(0, 0, id)
		return g.Key() == before && c.Key() != before
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickRenameGroupAction: thread renaming is a group action on
// graphs — identity fixes the key, inverse undoes, composition composes —
// and every image is well-formed.
func TestQuickRenameGroupAction(t *testing.T) {
	prop := func(rg rndGraph, seed int64) bool {
		g := rg.G
		n := g.NumThreads()
		r := rand.New(rand.NewSource(seed))
		p1, p2 := r.Perm(n), r.Perm(n)
		idPerm := make([]int, n)
		inv := make([]int, n)
		comp := make([]int, n)
		for i := 0; i < n; i++ {
			idPerm[i] = i
			inv[p1[i]] = i
			comp[i] = p2[p1[i]]
		}
		if g.RenameThreads(idPerm).Key() != g.Key() {
			return false
		}
		h := g.RenameThreads(p1)
		if h.CheckWellFormed() != nil {
			return false
		}
		if h.RenameThreads(inv).Key() != g.Key() {
			return false
		}
		return h.RenameThreads(p2).Key() == g.RenameThreads(comp).Key()
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickRestrictIdentity: keeping everything is the identity, and the
// empty restriction is the empty graph.
func TestQuickRestrictIdentity(t *testing.T) {
	prop := func(rg rndGraph) bool {
		g := rg.G
		all := g.Restrict(func(EvID) bool { return true })
		if all.Key() != g.Key() || all.CheckWellFormed() != nil {
			return false
		}
		none := g.Restrict(func(EvID) bool { return false })
		return none.NumEvents() == 0 && none.CheckWellFormed() == nil
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickViewRelationLaws checks the derived relations against their
// definitions on random graphs: fr = rf⁻¹;co minus identity, eco contains
// its generators and is transitive, po is a strict order, and rf sources
// are writes while rf targets are reads.
func TestQuickViewRelationLaws(t *testing.T) {
	prop := func(rg rndGraph) bool {
		v := NewView(rg.G)
		// fr definition.
		fr := v.Rf().Inverse().Compose(v.Co())
		for i := 0; i < v.N; i++ {
			fr.Remove(i, i)
		}
		for a := 0; a < v.N; a++ {
			for b := 0; b < v.N; b++ {
				if fr.Has(a, b) != v.Fr().Has(a, b) {
					return false
				}
			}
		}
		// eco ⊇ rf ∪ co ∪ fr and transitive.
		eco := v.Eco()
		gen := v.Rf().Union(v.Co()).UnionWith(v.Fr())
		for a := 0; a < v.N; a++ {
			for b := 0; b < v.N; b++ {
				if gen.Has(a, b) && !eco.Has(a, b) {
					return false
				}
				for c := 0; c < v.N; c++ {
					if eco.Has(a, b) && eco.Has(b, c) && !eco.Has(a, c) {
						return false
					}
				}
			}
		}
		// po is a strict partial order (irreflexive + transitive, and
		// total per thread).
		po := v.Po()
		if !po.Irreflexive() || !po.Acyclic() {
			return false
		}
		// rf endpoints have the right kinds.
		okRF := true
		v.Rf().Pairs(func(w, r int) {
			if !v.Events[w].Kind.IsWrite() || !v.Events[r].Kind.IsRead() {
				okRF = false
			}
		})
		return okRF
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickKeySeparatesRF: changing one read's rf source always changes
// the key (the memo must never conflate distinct bindings).
func TestQuickKeySeparatesRF(t *testing.T) {
	prop := func(rg rndGraph) bool {
		g := rg.G
		// Find a read with ≥2 candidate sources.
		var read EvID
		var alt EvID
		found := false
		g.ForEach(func(ev Event) {
			if found || ev.Kind != KRead {
				return
			}
			cur, _ := g.RF(ev.ID)
			for _, w := range g.WritesTo(ev.Loc) {
				if w != cur {
					read, alt, found = ev.ID, w, true
					return
				}
			}
		})
		if !found {
			return true // vacuous for this graph
		}
		before := g.Key()
		c := g.Clone()
		c.SetRF(read, alt)
		c.SetEventKind(read, KRead) // no-op; keeps the event a read
		return c.Key() != before
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
