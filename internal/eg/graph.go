package eg

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Graph is an execution graph under construction or complete. It owns the
// per-thread event sequences, the reads-from map and the per-location
// coherence orders. The zero value is unusable; construct with NewGraph.
//
// Invariants (checked by CheckWellFormed):
//   - threads[t] holds events with IDs {T: t, I: 0..len-1} in order;
//   - every read/update has an rf edge to a same-location write (or init);
//   - co[l] lists exactly the non-init writes/updates to location l, in
//     coherence order (the init write is implicitly first);
//   - stamps are unique and reflect addition order.
type Graph struct {
	numLocs int
	threads [][]Event
	rf      map[EvID]EvID
	co      [][]EvID
	next    int // next stamp

	// Copy-on-write state. Clone shares the thread slices, the rf map and
	// the co lists between parent and clone; a piece is deep-copied only
	// when a graph that does not own it is about to mutate it. A false flag
	// means "possibly shared: copy before writing".
	ownT  []bool
	ownRF bool
	ownCo []bool
}

// NewGraph returns an empty graph for a program with the given number of
// threads and shared locations. Initial writes (value 0) exist implicitly
// for every location and carry stamp 0.
func NewGraph(numThreads, numLocs int) *Graph {
	g := newOwned(numThreads, numLocs)
	g.next = 1
	return g
}

// NumThreads returns the number of program threads.
func (g *Graph) NumThreads() int { return len(g.threads) }

// NumLocs returns the number of shared locations.
func (g *Graph) NumLocs() int { return g.numLocs }

// ThreadLen returns the number of events added for thread t.
func (g *Graph) ThreadLen(t int) int { return len(g.threads[t]) }

// NumEvents returns the number of non-init events in the graph.
func (g *Graph) NumEvents() int {
	n := 0
	for _, th := range g.threads {
		n += len(th)
	}
	return n
}

// Clone returns a copy of g (stamps preserved). The copy is lazy: parent
// and clone share the thread slices, the rf map and the co lists until one
// of them mutates a piece, which is deep-copied at that point. Both sides
// give up ownership — in-place patches like SetEventVal and slice appends
// into shared backing arrays would otherwise leak between the two graphs.
// Clone must only be called by a goroutine with exclusive write access to
// g (the explorer clones before forking, never on a shared graph).
func (g *Graph) Clone() *Graph {
	for t := range g.ownT {
		g.ownT[t] = false
	}
	g.ownRF = false
	for l := range g.ownCo {
		g.ownCo[l] = false
	}
	c := &Graph{
		numLocs: g.numLocs,
		threads: append(make([][]Event, 0, len(g.threads)), g.threads...),
		rf:      g.rf,
		co:      append(make([][]EvID, 0, len(g.co)), g.co...),
		next:    g.next,
		ownT:    make([]bool, len(g.threads)),
		ownCo:   make([]bool, len(g.co)),
	}
	return c
}

// ownThread ensures g exclusively owns threads[t] before a mutation,
// copying the shared slice if necessary.
func (g *Graph) ownThread(t int) {
	if g.ownT[t] {
		return
	}
	g.threads[t] = append(make([]Event, 0, len(g.threads[t])+1), g.threads[t]...)
	g.ownT[t] = true
}

// ownRFMap ensures g exclusively owns its rf map before a mutation.
func (g *Graph) ownRFMap() {
	if g.ownRF {
		return
	}
	m := make(map[EvID]EvID, len(g.rf)+1)
	for r, w := range g.rf { //hmc:nondet(map-to-map copy: same entries land regardless of order)
		m[r] = w
	}
	g.rf = m
	g.ownRF = true
}

// ownCoLoc ensures g exclusively owns co[l] before a mutation.
func (g *Graph) ownCoLoc(l Loc) {
	if g.ownCo[l] {
		return
	}
	g.co[l] = append(make([]EvID, 0, len(g.co[l])+1), g.co[l]...)
	g.ownCo[l] = true
}

// Add appends ev to its thread, assigning the next stamp. The event's
// ID.I must equal the thread's current length.
func (g *Graph) Add(ev Event) {
	if ev.ID.IsInit() {
		panic("eg: cannot add init events")
	}
	t := ev.ID.T
	if t < 0 || t >= len(g.threads) {
		panic(fmt.Sprintf("eg: thread %d out of range", t))
	}
	if ev.ID.I != len(g.threads[t]) {
		panic(fmt.Sprintf("eg: event %v added out of order (thread has %d events)", ev.ID, len(g.threads[t])))
	}
	ev.Stamp = g.next
	g.next++
	g.ownThread(t)
	g.threads[t] = append(g.threads[t], ev)
}

// Has reports whether the event id is present (init events always are).
func (g *Graph) Has(id EvID) bool {
	if id.IsInit() {
		return id.I >= 0 && id.I < g.numLocs
	}
	return id.T >= 0 && id.T < len(g.threads) && id.I >= 0 && id.I < len(g.threads[id.T])
}

// Event returns the event with the given id. Init IDs yield a synthetic
// KInit event with stamp 0.
func (g *Graph) Event(id EvID) Event {
	if id.IsInit() {
		if id.I < 0 || id.I >= g.numLocs {
			panic(fmt.Sprintf("eg: init event for unknown location %d", id.I))
		}
		return Event{ID: id, Kind: KInit, Loc: Loc(id.I)}
	}
	return g.threads[id.T][id.I]
}

// SetRF records that read r reads from write w. Both must be present,
// r must be a read/update, w a write/update/init, and locations must match.
func (g *Graph) SetRF(r, w EvID) {
	re := g.Event(r)
	we := g.Event(w)
	if !re.Kind.IsRead() {
		panic(fmt.Sprintf("eg: SetRF source %v is not a read", r))
	}
	if !we.Kind.IsWrite() {
		panic(fmt.Sprintf("eg: SetRF target %v is not a write", w))
	}
	if re.Loc != we.Loc {
		panic(fmt.Sprintf("eg: SetRF location mismatch %v vs %v", re, we))
	}
	g.ownRFMap()
	g.rf[r] = w
}

// HasReaders reports whether any read in the graph reads from w.
func (g *Graph) HasReaders(w EvID) bool {
	for _, src := range g.rf { //hmc:nondet(existential scan: any reader answers, order-invariant)
		if src == w {
			return true
		}
	}
	return false
}

// ReadersOf returns the reads whose rf source is w, in stable order.
func (g *Graph) ReadersOf(w EvID) []EvID {
	var out []EvID
	for r, src := range g.rf {
		if src == w {
			out = append(out, r)
		}
	}
	SortEvIDs(out)
	return out
}

// RF returns the write that read r reads from.
func (g *Graph) RF(r EvID) (EvID, bool) {
	w, ok := g.rf[r]
	return w, ok
}

// CoLoc returns the coherence order of location l, excluding the implicit
// init write. The returned slice is owned by the graph.
func (g *Graph) CoLoc(l Loc) []EvID { return g.co[l] }

// CoInsert places write w at position pos in location l's coherence order
// (0 = immediately after init). The write event must already be in the
// graph.
func (g *Graph) CoInsert(l Loc, pos int, w EvID) {
	g.ownCoLoc(l)
	ws := g.co[l]
	if pos < 0 || pos > len(ws) {
		panic(fmt.Sprintf("eg: co position %d out of range [0,%d]", pos, len(ws)))
	}
	ws = append(ws, EvID{})
	copy(ws[pos+1:], ws[pos:])
	ws[pos] = w
	g.co[l] = ws
}

// CoIndex returns the position of write w in location l's coherence order,
// or -1 if absent. Init writes have index -1 by convention (they precede
// position 0).
func (g *Graph) CoIndex(l Loc, w EvID) int {
	if w.IsInit() {
		return -1
	}
	for i, x := range g.co[l] {
		if x == w {
			return i
		}
	}
	return -1
}

// WritesTo returns all writes to location l in coherence order, including
// the init write first. The slice is fresh.
func (g *Graph) WritesTo(l Loc) []EvID {
	out := make([]EvID, 0, len(g.co[l])+1)
	out = append(out, InitID(l))
	out = append(out, g.co[l]...)
	return out
}

// CoMax returns the coherence-maximal write to location l (init if no
// other write exists).
func (g *Graph) CoMax(l Loc) EvID {
	if len(g.co[l]) == 0 {
		return InitID(l)
	}
	return g.co[l][len(g.co[l])-1]
}

// ValueOf returns the value written by the given write event (0 for init).
func (g *Graph) ValueOf(w EvID) int64 {
	if w.IsInit() {
		return 0
	}
	return g.Event(w).Val
}

// ReadValue returns the value observed by read r via its rf edge.
func (g *Graph) ReadValue(r EvID) (int64, bool) {
	w, ok := g.rf[r]
	if !ok {
		return 0, false
	}
	return g.ValueOf(w), true
}

// SetEventVal patches the written value of a write/update event. Used by
// replay repair after a backward revisit rebinds a read that feeds the
// event's data.
func (g *Graph) SetEventVal(id EvID, val int64) {
	ev := g.Event(id)
	if !ev.Kind.IsWrite() || ev.Kind == KInit {
		panic(fmt.Sprintf("eg: SetEventVal on non-write %v", id))
	}
	g.ownThread(id.T)
	g.threads[id.T][id.I].Val = val
}

// SetEventKind rewrites the kind of an event (KRead ↔ KUpdate, for CAS
// events whose success flips when their rf source changes). Coherence
// membership must be adjusted by the caller (CoInsert/CoRemove).
func (g *Graph) SetEventKind(id EvID, kind Kind) {
	if kind != KRead && kind != KUpdate {
		panic(fmt.Sprintf("eg: SetEventKind to unsupported kind %v", kind))
	}
	g.ownThread(id.T)
	g.threads[id.T][id.I].Kind = kind
}

// CoRemove deletes write w from location l's coherence order.
func (g *Graph) CoRemove(l Loc, w EvID) {
	i := g.CoIndex(l, w)
	if i < 0 {
		panic(fmt.Sprintf("eg: CoRemove of absent %v", w))
	}
	g.ownCoLoc(l)
	g.co[l] = append(g.co[l][:i], g.co[l][i+1:]...)
}

// newOwned returns an empty graph shell whose every piece is exclusively
// owned — the construction target for operations that build fresh deep
// structures (Restrict, RenameThreads).
func newOwned(numThreads, numLocs int) *Graph {
	g := &Graph{
		numLocs: numLocs,
		threads: make([][]Event, numThreads),
		rf:      make(map[EvID]EvID),
		co:      make([][]EvID, numLocs),
		ownT:    make([]bool, numThreads),
		ownRF:   true,
		ownCo:   make([]bool, numLocs),
	}
	for t := range g.ownT {
		g.ownT[t] = true
	}
	for l := range g.ownCo {
		g.ownCo[l] = true
	}
	return g
}

// LastEvent returns the po-last event of thread t, or ok=false if the
// thread has no events yet.
func (g *Graph) LastEvent(t int) (Event, bool) {
	th := g.threads[t]
	if len(th) == 0 {
		return Event{}, false
	}
	return th[len(th)-1], true
}

// MaxStamp returns the largest stamp assigned so far.
func (g *Graph) MaxStamp() int { return g.next - 1 }

// ForEach calls fn for every non-init event in (thread, index) order.
func (g *Graph) ForEach(fn func(Event)) {
	for _, th := range g.threads {
		for _, ev := range th {
			fn(ev)
		}
	}
}

// Restrict returns a new graph containing exactly the events for which
// keep returns true. The kept set must be po-prefix-closed per thread
// (Restrict panics otherwise). rf edges whose reader is kept but whose
// writer was deleted are dropped (the caller re-binds them); coherence
// orders are filtered. Stamps of surviving events are preserved, and the
// stamp counter stays at its high-water mark so newly added events are
// stamped after every surviving event.
func (g *Graph) Restrict(keep func(EvID) bool) *Graph {
	c := newOwned(len(g.threads), g.numLocs)
	c.next = g.next
	for t, th := range g.threads {
		cut := len(th)
		for i, ev := range th {
			if !keep(ev.ID) {
				cut = i
				break
			}
		}
		for i := cut; i < len(th); i++ {
			if keep(th[i].ID) {
				panic(fmt.Sprintf("eg: Restrict keep-set not po-prefix-closed at %v", th[i].ID))
			}
		}
		c.threads[t] = append([]Event(nil), th[:cut]...)
	}
	for r, w := range g.rf { //hmc:nondet(filtered map-to-map copy: membership test per entry, order-invariant)
		if c.Has(r) && c.Has(w) {
			c.rf[r] = w
		}
	}
	for l, ws := range g.co {
		for _, w := range ws {
			if c.Has(w) {
				c.co[l] = append(c.co[l], w)
			}
		}
	}
	return c
}

// Key returns a canonical string identifying the execution: thread event
// lists with written values, rf edges and coherence orders. Two graphs
// over the same program represent the same execution iff their keys match.
// This is the exploration memo's hash input — the hottest path in the
// checker — so it is built with raw integer appends rather than fmt.
func (g *Graph) Key() string {
	b := make([]byte, 0, 16*g.NumEvents()+16)
	appendID := func(id EvID) {
		if id.IsInit() {
			b = append(b, 'i')
			b = strconv.AppendInt(b, int64(id.I), 10)
			return
		}
		b = strconv.AppendInt(b, int64(id.T), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(id.I), 10)
	}
	for t, th := range g.threads {
		b = append(b, 'T')
		b = strconv.AppendInt(b, int64(t), 10)
		b = append(b, '[')
		for _, ev := range th {
			switch ev.Kind {
			case KRead:
				b = append(b, 'R')
				b = strconv.AppendInt(b, int64(ev.Loc), 10)
				b = append(b, '<')
				appendID(g.rf[ev.ID])
			case KUpdate:
				b = append(b, 'U')
				b = strconv.AppendInt(b, int64(ev.Loc), 10)
				b = append(b, '=')
				b = strconv.AppendInt(b, ev.Val, 10)
				b = append(b, '<')
				appendID(g.rf[ev.ID])
			case KWrite:
				b = append(b, 'W')
				b = strconv.AppendInt(b, int64(ev.Loc), 10)
				b = append(b, '=')
				b = strconv.AppendInt(b, ev.Val, 10)
			case KFence:
				b = append(b, 'F')
				b = strconv.AppendInt(b, int64(ev.Fence), 10)
			}
			b = append(b, ';')
		}
		b = append(b, ']')
	}
	for l := 0; l < g.numLocs; l++ {
		if len(g.co[l]) > 1 {
			b = append(b, 'c')
			b = strconv.AppendInt(b, int64(l), 10)
			b = append(b, ':')
			for _, w := range g.co[l] {
				appendID(w)
				b = append(b, ';')
			}
		}
	}
	return string(b)
}

// String renders the graph for debugging.
func (g *Graph) String() string {
	return g.StringNamed(func(l Loc) string { return fmt.Sprintf("x%d", l) })
}

// StringNamed renders the graph like String but with source-level
// location names (witness output in the CLI and the analyses).
func (g *Graph) StringNamed(locName func(Loc) string) string {
	var sb strings.Builder
	for t, th := range g.threads {
		fmt.Fprintf(&sb, "thread %d:\n", t)
		for _, ev := range th {
			sb.WriteString("  ")
			sb.WriteString(ev.StringNamed(locName))
			if ev.Kind.IsRead() {
				if w, ok := g.rf[ev.ID]; ok {
					src := w.String()
					if w.IsInit() {
						src = "init[" + locName(Loc(w.I)) + "]"
					}
					fmt.Fprintf(&sb, "  [rf: %s = %d]", src, g.ValueOf(w))
				} else {
					sb.WriteString("  [rf: ?]")
				}
			}
			sb.WriteByte('\n')
		}
	}
	for l := 0; l < g.numLocs; l++ {
		if len(g.co[l]) > 0 {
			fmt.Fprintf(&sb, "co %s: init", locName(Loc(l)))
			for _, w := range g.co[l] {
				fmt.Fprintf(&sb, " -> %v", w)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// CheckWellFormed verifies the graph invariants, returning a descriptive
// error for the first violation found. Intended for tests and debug mode.
func (g *Graph) CheckWellFormed() error {
	seen := map[int]EvID{0: {T: InitThread, I: 0}}
	for t, th := range g.threads {
		for i, ev := range th {
			if ev.ID.T != t || ev.ID.I != i {
				return fmt.Errorf("event at thread %d pos %d has ID %v", t, i, ev.ID)
			}
			if prev, dup := seen[ev.Stamp]; dup {
				return fmt.Errorf("duplicate stamp %d on %v and %v", ev.Stamp, prev, ev.ID)
			}
			seen[ev.Stamp] = ev.ID
			if ev.Kind.IsRead() {
				w, ok := g.rf[ev.ID]
				if !ok {
					return fmt.Errorf("read %v has no rf edge", ev.ID)
				}
				if !g.Has(w) {
					return fmt.Errorf("read %v reads from absent %v", ev.ID, w)
				}
				we := g.Event(w)
				if !we.Kind.IsWrite() || we.Loc != ev.Loc {
					return fmt.Errorf("read %v reads from incompatible %v", ev.ID, we)
				}
			}
			for _, dep := range [][]EvID{ev.Addr, ev.Data, ev.Ctrl} {
				for _, d := range dep {
					if d.T != t || d.I >= i {
						return fmt.Errorf("event %v depends on non-po-earlier %v", ev.ID, d)
					}
					if !g.Event(d).Kind.IsRead() {
						return fmt.Errorf("event %v depends on non-read %v", ev.ID, d)
					}
				}
			}
		}
	}
	//hmc:nondet(validation sweep: pass/fail is order-invariant; the offending edge in the error is diagnostic only)
	for r := range g.rf {
		if !g.Has(r) {
			return fmt.Errorf("rf edge from absent read %v", r)
		}
	}
	for l := 0; l < g.numLocs; l++ {
		inCo := map[EvID]bool{}
		for _, w := range g.co[l] {
			if inCo[w] {
				return fmt.Errorf("write %v appears twice in co[%d]", w, l)
			}
			inCo[w] = true
			if !g.Has(w) {
				return fmt.Errorf("co[%d] references absent %v", l, w)
			}
			we := g.Event(w)
			if !we.Kind.IsWrite() || we.Loc != Loc(l) {
				return fmt.Errorf("co[%d] contains incompatible %v", l, we)
			}
		}
		count := 0
		g.ForEach(func(ev Event) {
			if ev.Kind.IsWrite() && ev.Loc == Loc(l) {
				count++
				if !inCo[ev.ID] {
					// Writes are placed in co the moment they are added,
					// so every write must appear.
				}
			}
		})
		missing := count - len(g.co[l])
		if missing != 0 {
			return fmt.Errorf("co[%d] has %d entries but graph has %d writes", l, len(g.co[l]), count)
		}
	}
	return nil
}

// SortEvIDs sorts ids in (thread, index) order with init events first.
func SortEvIDs(ids []EvID) {
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if a.T != b.T {
			return a.T < b.T
		}
		return a.I < b.I
	})
}
