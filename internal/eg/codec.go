package eg

import (
	"fmt"
	"sort"
)

// This file is the graph wire codec backing exploration checkpoints
// (internal/core/checkpoint.go): a deterministic, versioned, panic-free
// serialization of execution graphs.
//
// Canonical form: events are listed in stamp order and re-stamped
// contiguously on decode (1..n). Stamps may have gaps in a live graph —
// Restrict keeps the counter at its high-water mark — but the explorer
// only ever compares stamps for *relative* order (revisit keep-sets) and
// excludes them from semantic keys, so renumbering preserves behaviour
// while making encode→decode→encode byte-identical.

// Codec bounds: a decoded graph description beyond these limits is
// rejected outright, so a corrupt or adversarial snapshot cannot balloon
// allocation before validation (the fuzz target's contract).
const (
	maxWireThreads = 1 << 12
	maxWireLocs    = 1 << 16
	maxWireEvents  = 1 << 20
)

// WireEvent is one serialized event. Dependency sets store only the
// po-index of the same-thread earlier read they reference (the thread is
// the event's own, by the graph invariant).
type WireEvent struct {
	T     int   `json:"t"`
	I     int   `json:"i"`
	Kind  uint8 `json:"k"`
	Loc   int   `json:"l,omitempty"`
	Val   int64 `json:"v,omitempty"`
	Fence uint8 `json:"f,omitempty"`
	Mode  uint8 `json:"m,omitempty"`
	Excl  bool  `json:"x,omitempty"`
	PC    int   `json:"pc,omitempty"`
	Addr  []int `json:"addr,omitempty"`
	Data  []int `json:"data,omitempty"`
	Ctrl  []int `json:"ctrl,omitempty"`
}

// WireRF is one reads-from edge; the writer thread is InitThread (-1) for
// initial writes, with WI naming the location.
type WireRF struct {
	RT int `json:"rt"`
	RI int `json:"ri"`
	WT int `json:"wt"`
	WI int `json:"wi"`
}

// WireID locates a non-init event (coherence entries).
type WireID struct {
	T int `json:"t"`
	I int `json:"i"`
}

// WireGraph is the serialized form of a Graph. Events are in stamp order,
// RF edges in reader (thread, index) order, and Co lists one slice per
// location in coherence order — all deterministic, so equal graphs encode
// to equal bytes.
type WireGraph struct {
	Threads int         `json:"threads"`
	Locs    int         `json:"locs"`
	Events  []WireEvent `json:"events,omitempty"`
	RF      []WireRF    `json:"rf,omitempty"`
	Co      [][]WireID  `json:"co,omitempty"`
}

// EncodeGraph serializes g. The graph is assumed well-formed (it came out
// of the explorer); Decode re-verifies everything on the way back in.
func EncodeGraph(g *Graph) *WireGraph {
	wg := &WireGraph{Threads: g.NumThreads(), Locs: g.NumLocs()}
	var evs []Event
	g.ForEach(func(ev Event) { evs = append(evs, ev) })
	sort.Slice(evs, func(i, j int) bool { return evs[i].Stamp < evs[j].Stamp })
	for _, ev := range evs {
		wg.Events = append(wg.Events, WireEvent{
			T:     ev.ID.T,
			I:     ev.ID.I,
			Kind:  uint8(ev.Kind),
			Loc:   int(ev.Loc),
			Val:   ev.Val,
			Fence: uint8(ev.Fence),
			Mode:  uint8(ev.Mode),
			Excl:  ev.Excl,
			PC:    ev.PC,
			Addr:  depIndexes(ev.Addr),
			Data:  depIndexes(ev.Data),
			Ctrl:  depIndexes(ev.Ctrl),
		})
	}
	g.ForEach(func(ev Event) {
		if !ev.Kind.IsRead() {
			return
		}
		if w, ok := g.RF(ev.ID); ok {
			wg.RF = append(wg.RF, WireRF{RT: ev.ID.T, RI: ev.ID.I, WT: w.T, WI: w.I})
		}
	})
	if g.NumLocs() > 0 {
		wg.Co = make([][]WireID, g.NumLocs())
		for l := 0; l < g.NumLocs(); l++ {
			for _, w := range g.CoLoc(Loc(l)) {
				wg.Co[l] = append(wg.Co[l], WireID{T: w.T, I: w.I})
			}
		}
	}
	return wg
}

func depIndexes(ids []EvID) []int {
	if len(ids) == 0 {
		return nil
	}
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = id.I
	}
	return out
}

// Decode reconstructs the graph, validating every structural invariant a
// live Graph enforces by panicking — thread/location ranges, po order,
// dependency shape, rf typing, coherence membership — and finishing with
// CheckWellFormed. It never panics on corrupt input: anything Add/SetRF/
// CoInsert would reject is pre-checked, and a defensive recover converts
// surprises into errors.
func (w *WireGraph) Decode() (g *Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("eg: corrupt wire graph: %v", r)
		}
	}()
	if w.Threads < 0 || w.Threads > maxWireThreads {
		return nil, fmt.Errorf("eg: wire graph thread count %d out of range", w.Threads)
	}
	if w.Locs < 0 || w.Locs > maxWireLocs {
		return nil, fmt.Errorf("eg: wire graph location count %d out of range", w.Locs)
	}
	if len(w.Events) > maxWireEvents {
		return nil, fmt.Errorf("eg: wire graph has %d events (max %d)", len(w.Events), maxWireEvents)
	}
	if len(w.Co) != 0 && len(w.Co) != w.Locs {
		return nil, fmt.Errorf("eg: wire graph co has %d locations, want %d", len(w.Co), w.Locs)
	}
	g = NewGraph(w.Threads, w.Locs)
	for n, we := range w.Events {
		kind := Kind(we.Kind)
		if kind != KRead && kind != KWrite && kind != KUpdate && kind != KFence {
			return nil, fmt.Errorf("eg: wire event %d has kind %d", n, we.Kind)
		}
		if we.T < 0 || we.T >= w.Threads {
			return nil, fmt.Errorf("eg: wire event %d names thread %d of %d", n, we.T, w.Threads)
		}
		if we.I != g.ThreadLen(we.T) {
			return nil, fmt.Errorf("eg: wire event %d out of po order (index %d, thread has %d)", n, we.I, g.ThreadLen(we.T))
		}
		if kind != KFence && (we.Loc < 0 || we.Loc >= w.Locs) {
			return nil, fmt.Errorf("eg: wire event %d accesses location %d of %d", n, we.Loc, w.Locs)
		}
		if we.Fence > uint8(FenceLD) {
			return nil, fmt.Errorf("eg: wire event %d has fence kind %d", n, we.Fence)
		}
		if we.Mode > uint8(ModeSC) {
			return nil, fmt.Errorf("eg: wire event %d has mode %d", n, we.Mode)
		}
		ev := Event{
			ID:    EvID{T: we.T, I: we.I},
			Kind:  kind,
			Loc:   Loc(we.Loc),
			Val:   we.Val,
			Fence: FenceKind(we.Fence),
			Mode:  Mode(we.Mode),
			Excl:  we.Excl,
			PC:    we.PC,
		}
		for _, dep := range []struct {
			name string
			idxs []int
			out  *[]EvID
		}{{"addr", we.Addr, &ev.Addr}, {"data", we.Data, &ev.Data}, {"ctrl", we.Ctrl, &ev.Ctrl}} {
			for _, i := range dep.idxs {
				if i < 0 || i >= we.I {
					return nil, fmt.Errorf("eg: wire event %d has %s dep on index %d (not po-earlier)", n, dep.name, i)
				}
				if !g.Event(EvID{T: we.T, I: i}).Kind.IsRead() {
					return nil, fmt.Errorf("eg: wire event %d has %s dep on non-read index %d", n, dep.name, i)
				}
				*dep.out = append(*dep.out, EvID{T: we.T, I: i})
			}
		}
		g.Add(ev)
	}
	for n, rf := range w.RF {
		r := EvID{T: rf.RT, I: rf.RI}
		wid := EvID{T: rf.WT, I: rf.WI}
		if !g.Has(r) || r.IsInit() {
			return nil, fmt.Errorf("eg: wire rf %d names absent read %v", n, r)
		}
		if !g.Has(wid) {
			return nil, fmt.Errorf("eg: wire rf %d names absent write %v", n, wid)
		}
		re, we := g.Event(r), g.Event(wid)
		if !re.Kind.IsRead() || !we.Kind.IsWrite() || re.Loc != we.Loc {
			return nil, fmt.Errorf("eg: wire rf %d is ill-typed (%v -> %v)", n, r, wid)
		}
		if _, dup := g.RF(r); dup {
			return nil, fmt.Errorf("eg: wire rf %d rebinds read %v", n, r)
		}
		g.SetRF(r, wid)
	}
	for l, ws := range w.Co {
		for n, wid := range ws {
			id := EvID{T: wid.T, I: wid.I}
			if id.IsInit() || !g.Has(id) {
				return nil, fmt.Errorf("eg: wire co[%d] entry %d names absent %v", l, n, id)
			}
			ev := g.Event(id)
			if !ev.Kind.IsWrite() || ev.Loc != Loc(l) {
				return nil, fmt.Errorf("eg: wire co[%d] entry %d is not a write to it (%v)", l, n, id)
			}
			if g.CoIndex(Loc(l), id) >= 0 {
				return nil, fmt.Errorf("eg: wire co[%d] lists %v twice", l, id)
			}
			g.CoInsert(Loc(l), n, id)
		}
	}
	if err := g.CheckWellFormed(); err != nil {
		return nil, fmt.Errorf("eg: decoded graph ill-formed: %w", err)
	}
	return g, nil
}
