package eg

import (
	"strings"
	"testing"
)

// TestGraphAccessors covers the small graph helpers on a hand-built
// two-thread graph.
func TestGraphAccessors(t *testing.T) {
	g := NewGraph(2, 1)
	w := EvID{T: 0, I: 0}
	g.Add(Event{ID: w, Kind: KWrite, Loc: 0, Val: 1})
	g.CoInsert(0, 0, w)
	w2 := EvID{T: 0, I: 1}
	g.Add(Event{ID: w2, Kind: KWrite, Loc: 0, Val: 2})
	g.CoInsert(0, 1, w2)
	r := EvID{T: 1, I: 0}
	g.Add(Event{ID: r, Kind: KRead, Loc: 0, Val: 1})
	g.SetRF(r, w)

	if !g.HasReaders(w) || g.HasReaders(w2) {
		t.Error("HasReaders wrong")
	}
	if rs := g.ReadersOf(w); len(rs) != 1 || rs[0] != r {
		t.Errorf("ReadersOf = %v", rs)
	}
	if got := g.CoMax(0); got != w2 {
		t.Errorf("CoMax = %v, want %v", got, w2)
	}
	if last, ok := g.LastEvent(0); !ok || last.ID != w2 {
		t.Errorf("LastEvent(0) = %v %v", last, ok)
	}
	if _, ok := g.LastEvent(1); !ok {
		t.Error("thread 1 has an event")
	}
	if g.MaxStamp() != 3 {
		t.Errorf("MaxStamp = %d after 3 adds", g.MaxStamp())
	}

	// SetEventVal rewrites a write's value (repair path).
	g.SetEventVal(w2, 9)
	if g.ValueOf(w2) != 9 {
		t.Errorf("SetEventVal not applied: %d", g.ValueOf(w2))
	}
	// SetEventKind demotes an update to a read (CAS failure flip path).
	g.SetEventKind(r, KRead)
	if g.Event(r).Kind != KRead {
		t.Error("SetEventKind lost the kind")
	}

	// CoRemove deletes a coherence entry and panics on absentees.
	g.CoRemove(0, w2)
	if len(g.CoLoc(0)) != 1 {
		t.Errorf("CoRemove left %v", g.CoLoc(0))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CoRemove of an absent write must panic")
			}
		}()
		g.CoRemove(0, w2)
	}()
}

// TestEmptyThreadLastEvent covers the no-events branch.
func TestEmptyThreadLastEvent(t *testing.T) {
	g := NewGraph(1, 1)
	if _, ok := g.LastEvent(0); ok {
		t.Error("empty thread reported an event")
	}
}

// TestModePredicates pins the acquire/release lattice.
func TestModePredicates(t *testing.T) {
	cases := []struct {
		m        Mode
		acq, rel bool
	}{
		{ModePlain, false, false},
		{ModeRlx, false, false},
		{ModeAcq, true, false},
		{ModeRel, false, true},
		{ModeAcqRel, true, true},
		{ModeSC, true, true},
	}
	for _, c := range cases {
		if c.m.Acquire() != c.acq || c.m.Release() != c.rel {
			t.Errorf("%v: Acquire=%v Release=%v, want %v %v",
				c.m, c.m.Acquire(), c.m.Release(), c.acq, c.rel)
		}
	}
}

// TestStringers covers the human-readable forms used in witnesses.
func TestStringers(t *testing.T) {
	if s := (EvID{T: 2, I: 3}).String(); s != "t2:3" {
		t.Errorf("EvID string = %q", s)
	}
	if !InitID(1).IsInit() {
		t.Error("init id must be init")
	}
	for _, k := range []Kind{KRead, KWrite, KUpdate, KFence} {
		if k.String() == "" || strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("Kind %d has no name", k)
		}
	}
	for _, f := range []FenceKind{FenceFull, FenceLW, FenceLD} {
		if f.String() == "" || strings.HasPrefix(f.String(), "FenceKind(") {
			t.Errorf("FenceKind %d has no name", f)
		}
	}
	for _, m := range []Mode{ModePlain, ModeRlx, ModeAcq, ModeRel, ModeAcqRel, ModeSC} {
		if strings.HasPrefix(m.String(), "Mode(") {
			t.Errorf("Mode %d has no name", m)
		}
	}
	ev := Event{ID: EvID{T: 0, I: 0}, Kind: KUpdate, Loc: 1, Val: 4, Excl: true, Mode: ModeSC}
	if ev.String() == "" {
		t.Error("event string empty")
	}
}
