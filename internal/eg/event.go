// Package eg implements execution graphs: the partial-order representation
// of a concurrent program run that stateless model checking for weak memory
// models operates on. A graph consists of per-thread sequences of events
// (reads, writes, atomic updates, fences) together with a reads-from map
// (rf), a per-location coherence order (co), and syntactic dependency edges
// (address, data, control) used by hardware memory models.
package eg

import "fmt"

// Kind classifies events.
type Kind uint8

const (
	KInit   Kind = iota // initial write (one virtual event per location)
	KRead               // memory load
	KWrite              // memory store
	KUpdate             // atomic read-modify-write (successful CAS, FADD, XCHG)
	KFence              // memory barrier
)

func (k Kind) String() string {
	switch k {
	case KInit:
		return "init"
	case KRead:
		return "R"
	case KWrite:
		return "W"
	case KUpdate:
		return "U"
	case KFence:
		return "F"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsRead reports whether the event reads memory (loads and updates).
func (k Kind) IsRead() bool { return k == KRead || k == KUpdate }

// IsWrite reports whether the event writes memory (stores, updates, init).
func (k Kind) IsWrite() bool { return k == KWrite || k == KUpdate || k == KInit }

// FenceKind distinguishes barrier strengths, loosely mirroring hardware:
// a full barrier (x86 MFENCE / ARM DMB SY / POWER sync), a lightweight
// store-ordering barrier (POWER lwsync-like: orders everything except
// W→R), and a load-ordering barrier (ARM DMB LD / ctrl+isb-like: orders
// R→R and R→W).
type FenceKind uint8

const (
	FenceNone FenceKind = iota
	FenceFull
	FenceLW
	FenceLD
)

func (f FenceKind) String() string {
	switch f {
	case FenceNone:
		return "none"
	case FenceFull:
		return "full"
	case FenceLW:
		return "lw"
	case FenceLD:
		return "ld"
	}
	return fmt.Sprintf("FenceKind(%d)", uint8(f))
}

// Mode is a C11-style memory-order annotation on an access. Hardware
// models ignore modes (ordering comes from dependencies and fences); the
// language-level rc11 model is defined over them. ModePlain is the
// default and is treated as relaxed by rc11.
type Mode uint8

const (
	ModePlain  Mode = iota // unannotated (hardware) access; relaxed for rc11
	ModeRlx                // memory_order_relaxed
	ModeAcq                // memory_order_acquire (reads)
	ModeRel                // memory_order_release (writes)
	ModeAcqRel             // memory_order_acq_rel (updates)
	ModeSC                 // memory_order_seq_cst
)

func (m Mode) String() string {
	switch m {
	case ModePlain:
		return "plain"
	case ModeRlx:
		return "rlx"
	case ModeAcq:
		return "acq"
	case ModeRel:
		return "rel"
	case ModeAcqRel:
		return "acqrel"
	case ModeSC:
		return "sc"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Acquire reports whether the mode includes acquire semantics.
func (m Mode) Acquire() bool { return m == ModeAcq || m == ModeAcqRel || m == ModeSC }

// Release reports whether the mode includes release semantics.
func (m Mode) Release() bool { return m == ModeRel || m == ModeAcqRel || m == ModeSC }

// Loc identifies a shared memory location (an index into the program's
// location table).
type Loc int

// EvID names an event by thread and program-order index. Thread InitThread
// is reserved for the per-location initial writes, whose Index equals the
// location number. EvIDs are stable across graph restriction because
// restriction only ever removes po-suffixes.
type EvID struct {
	T int // thread, or InitThread
	I int // po index within thread, or location for init events
}

// InitThread is the pseudo-thread that owns the initial writes.
const InitThread = -1

// InitID returns the EvID of the initial write to loc.
func InitID(loc Loc) EvID { return EvID{T: InitThread, I: int(loc)} }

// IsInit reports whether the EvID names an initial write.
func (id EvID) IsInit() bool { return id.T == InitThread }

func (id EvID) String() string {
	if id.IsInit() {
		return fmt.Sprintf("init[x%d]", id.I)
	}
	return fmt.Sprintf("t%d:%d", id.T, id.I)
}

// Event is a node of an execution graph. Val is the value written for
// writes and updates (the value read by a read is determined by its rf
// edge). Deps lists the po-earlier same-thread *read* events this event
// syntactically depends on, split by dependency kind.
type Event struct {
	ID    EvID
	Kind  Kind
	Loc   Loc       // meaningful for KInit/KRead/KWrite/KUpdate
	Val   int64     // value written (KWrite/KUpdate/KInit)
	Fence FenceKind // meaningful for KFence
	Mode  Mode      // C11-style order annotation (rc11 model); ModePlain default
	Stamp int       // global addition order, assigned by the Graph

	// Excl marks an exclusive access: the read or update produced by a
	// CAS/RMW instruction. A *failed* CAS is a plain read in the graph,
	// but on x86-style machines the locked instruction still drains the
	// store buffer, so the store-buffer models treat Excl reads as
	// fencing.
	Excl bool

	// Dependency sets: EvIDs of same-thread earlier reads feeding this
	// event's address (Addr), stored value (Data), or the branch
	// conditions on its control path (Ctrl).
	Addr []EvID
	Data []EvID
	Ctrl []EvID

	// PC is the index of the generating instruction in its thread's code
	// (zero for init events). It is provenance, not identity: excluded
	// from Key and SameStaticEvent, so graphs built without it (the
	// axiomatic enumerator, hand-built tests) compare as before. The
	// static analyzer's CheckDeps sanitizer uses it to map dynamic
	// dependency events back to instructions.
	PC int
}

// SameStaticEvent reports whether two events are the same program action
// (ignoring Stamp and dependency slices' identity): used by the replayer to
// reconcile regenerated actions with kept graph events.
func SameStaticEvent(a, b Event) bool {
	if a.ID != b.ID || a.Kind != b.Kind || a.Loc != b.Loc || a.Fence != b.Fence || a.Mode != b.Mode {
		return false
	}
	// For writes/updates the written value is part of the action identity;
	// reads take their value from rf, so Val is irrelevant.
	if a.Kind.IsWrite() && a.Val != b.Val {
		return false
	}
	return sameIDs(a.Addr, b.Addr) && sameIDs(a.Data, b.Data) && sameIDs(a.Ctrl, b.Ctrl)
}

func sameIDs(a, b []EvID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (e Event) String() string {
	return e.StringNamed(func(l Loc) string { return fmt.Sprintf("x%d", l) })
}

// StringNamed renders the event with source-level location names.
func (e Event) StringNamed(locName func(Loc) string) string {
	switch e.Kind {
	case KInit:
		return fmt.Sprintf("%v: init %s=0", e.ID, locName(e.Loc))
	case KRead:
		return fmt.Sprintf("%v: R %s", e.ID, locName(e.Loc))
	case KWrite:
		return fmt.Sprintf("%v: W %s=%d", e.ID, locName(e.Loc), e.Val)
	case KUpdate:
		return fmt.Sprintf("%v: U %s=%d", e.ID, locName(e.Loc), e.Val)
	case KFence:
		return fmt.Sprintf("%v: F.%v", e.ID, e.Fence)
	}
	return fmt.Sprintf("%v: ?", e.ID)
}
