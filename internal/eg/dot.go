package eg

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot renders the graph in Graphviz DOT format: one cluster per
// thread with program order top-to-bottom, green reads-from edges, blue
// coherence edges between consecutive writes, and dashed dependency
// edges. locName, when non-nil, supplies printable location names.
func (g *Graph) WriteDot(w io.Writer, locName func(Loc) string) error {
	name := func(l Loc) string {
		if locName != nil {
			return locName(l)
		}
		return fmt.Sprintf("x%d", l)
	}
	node := func(id EvID) string {
		if id.IsInit() {
			return fmt.Sprintf("init%d", id.I)
		}
		return fmt.Sprintf("t%d_%d", id.T, id.I)
	}
	label := func(ev Event) string {
		switch ev.Kind {
		case KInit:
			return fmt.Sprintf("init %s=0", name(ev.Loc))
		case KRead:
			v, _ := g.ReadValue(ev.ID)
			return fmt.Sprintf("R %s = %d", name(ev.Loc), v)
		case KWrite:
			return fmt.Sprintf("W %s = %d", name(ev.Loc), ev.Val)
		case KUpdate:
			v, _ := g.ReadValue(ev.ID)
			return fmt.Sprintf("U %s: %d -> %d", name(ev.Loc), v, ev.Val)
		case KFence:
			return "F." + ev.Fence.String()
		}
		return "?"
	}

	var sb strings.Builder
	sb.WriteString("digraph execution {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")

	// Init events, only those actually read from (less clutter).
	usedInit := map[EvID]bool{}
	for _, src := range g.rf {
		if src.IsInit() {
			usedInit[src] = true
		}
	}
	for l := 0; l < g.numLocs; l++ {
		id := InitID(Loc(l))
		if usedInit[id] || len(g.co[l]) > 0 {
			fmt.Fprintf(&sb, "  %s [label=%q, style=dotted];\n", node(id), label(g.Event(id)))
		}
	}

	for t, th := range g.threads {
		fmt.Fprintf(&sb, "  subgraph cluster_t%d {\n    label=\"thread %d\";\n", t, t)
		for _, ev := range th {
			fmt.Fprintf(&sb, "    %s [label=%q];\n", node(ev.ID), label(ev))
		}
		// po edges (immediate successors).
		for i := 1; i < len(th); i++ {
			fmt.Fprintf(&sb, "    %s -> %s [color=gray];\n", node(th[i-1].ID), node(th[i].ID))
		}
		sb.WriteString("  }\n")
	}

	// rf edges.
	ids := make([]EvID, 0, len(g.rf))
	for r := range g.rf {
		ids = append(ids, r)
	}
	SortEvIDs(ids)
	for _, r := range ids {
		fmt.Fprintf(&sb, "  %s -> %s [color=darkgreen, label=rf, fontcolor=darkgreen];\n",
			node(g.rf[r]), node(r))
	}

	// co edges between consecutive writes (including init).
	for l := 0; l < g.numLocs; l++ {
		ws := g.WritesTo(Loc(l))
		for i := 1; i < len(ws); i++ {
			fmt.Fprintf(&sb, "  %s -> %s [color=blue, label=co, fontcolor=blue];\n",
				node(ws[i-1]), node(ws[i]))
		}
	}

	// Dependency edges (fixed kind order keeps output deterministic).
	g.ForEach(func(ev Event) {
		for _, dk := range []struct {
			kind string
			set  []EvID
		}{{"addr", ev.Addr}, {"data", ev.Data}, {"ctrl", ev.Ctrl}} {
			for _, d := range dk.set {
				fmt.Fprintf(&sb, "  %s -> %s [style=dashed, label=%s];\n", node(d), node(ev.ID), dk.kind)
			}
		}
	})

	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
