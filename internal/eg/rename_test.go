package eg

import "testing"

// buildRenameFixture makes a 3-thread graph with rf, co and dependency
// edges crossing threads.
func buildRenameFixture(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(3, 2)
	w0 := EvID{T: 0, I: 0}
	g.Add(Event{ID: w0, Kind: KWrite, Loc: 0, Val: 1})
	g.CoInsert(0, 0, w0)
	r1 := EvID{T: 1, I: 0}
	g.Add(Event{ID: r1, Kind: KRead, Loc: 0, Val: 1})
	g.SetRF(r1, w0)
	w1 := EvID{T: 1, I: 1}
	g.Add(Event{ID: w1, Kind: KWrite, Loc: 1, Val: 2, Data: []EvID{r1}})
	g.CoInsert(1, 0, w1)
	r2 := EvID{T: 2, I: 0}
	g.Add(Event{ID: r2, Kind: KRead, Loc: 1, Val: 2})
	g.SetRF(r2, w1)
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRenameThreadsRoundTrip(t *testing.T) {
	g := buildRenameFixture(t)
	perm := []int{2, 0, 1} // 0→2, 1→0, 2→1
	inv := []int{1, 2, 0}
	h := g.RenameThreads(perm)
	if err := h.CheckWellFormed(); err != nil {
		t.Fatalf("renamed graph ill-formed: %v", err)
	}
	if h.Key() == g.Key() {
		t.Error("non-trivial rename of an asymmetric graph must change the key")
	}
	back := h.RenameThreads(inv)
	if back.Key() != g.Key() {
		t.Errorf("inverse rename must restore the key:\n%s\nvs\n%s", back.Key(), g.Key())
	}
}

func TestRenameThreadsMovesEverything(t *testing.T) {
	g := buildRenameFixture(t)
	h := g.RenameThreads([]int{2, 0, 1})
	// Old thread 1 (read+write with a data dep) is now thread 0.
	if h.ThreadLen(0) != 2 {
		t.Fatalf("renamed thread 0 has %d events, want 2", h.ThreadLen(0))
	}
	w1 := h.Event(EvID{T: 0, I: 1})
	if w1.Kind != KWrite || len(w1.Data) != 1 || w1.Data[0] != (EvID{T: 0, I: 0}) {
		t.Errorf("data dependency not renamed: %+v", w1)
	}
	// Old rf w0→r1 is now {T:2}→{T:0}.
	src, ok := h.RF(EvID{T: 0, I: 0})
	if !ok || src != (EvID{T: 2, I: 0}) {
		t.Errorf("rf not renamed: %v %v", src, ok)
	}
	// co of loc 1 now holds the renamed writer.
	if ws := h.CoLoc(1); len(ws) != 1 || ws[0] != (EvID{T: 0, I: 1}) {
		t.Errorf("co not renamed: %v", ws)
	}
}

func TestRenameThreadsInitFixed(t *testing.T) {
	g := NewGraph(2, 1)
	r := EvID{T: 0, I: 0}
	g.Add(Event{ID: r, Kind: KRead, Loc: 0})
	g.SetRF(r, InitID(0))
	h := g.RenameThreads([]int{1, 0})
	src, ok := h.RF(EvID{T: 1, I: 0})
	if !ok || !src.IsInit() {
		t.Errorf("init rf source must stay init: %v %v", src, ok)
	}
}
