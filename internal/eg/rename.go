package eg

// RenameThreads returns a copy of g with thread indices permuted: the
// events of thread t become the events of thread perm[t], and every
// thread reference — event IDs, dependency edges, rf, co — is renamed
// consistently (init events, thread −1, are fixed). Stamps are preserved.
//
// Renaming is only meaningful when the permuted threads run identical
// code; symmetry reduction computes its canonical state key as the
// minimum Key() over such renamings.
func (g *Graph) RenameThreads(perm []int) *Graph {
	ren := func(id EvID) EvID {
		if id.T < 0 {
			return id
		}
		return EvID{T: perm[id.T], I: id.I}
	}
	renAll := func(ids []EvID) []EvID {
		if len(ids) == 0 {
			return nil
		}
		out := make([]EvID, len(ids))
		for i, id := range ids {
			out[i] = ren(id)
		}
		return out
	}
	c := newOwned(len(g.threads), g.numLocs)
	c.next = g.next
	for t, th := range g.threads {
		nth := make([]Event, len(th))
		for i, ev := range th {
			ev.ID = ren(ev.ID)
			ev.Addr = renAll(ev.Addr)
			ev.Data = renAll(ev.Data)
			ev.Ctrl = renAll(ev.Ctrl)
			nth[i] = ev
		}
		c.threads[perm[t]] = nth
	}
	for r, w := range g.rf { //hmc:nondet(map-to-map rename: keys are distinct, so insertions commute)
		c.rf[ren(r)] = ren(w)
	}
	for l, ws := range g.co {
		c.co[l] = renAll(ws)
	}
	return c
}
