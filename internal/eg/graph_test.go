package eg

import (
	"strings"
	"testing"
)

// buildMP constructs the classic message-passing execution:
//
//	T0: W x=1; W y=1        T1: R y (from T0's Wy); R x (from init)
func buildMP(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(2, 2)
	const x, y = Loc(0), Loc(1)
	wx := Event{ID: EvID{T: 0, I: 0}, Kind: KWrite, Loc: x, Val: 1}
	wy := Event{ID: EvID{T: 0, I: 1}, Kind: KWrite, Loc: y, Val: 1}
	ry := Event{ID: EvID{T: 1, I: 0}, Kind: KRead, Loc: y}
	rx := Event{ID: EvID{T: 1, I: 1}, Kind: KRead, Loc: x}
	g.Add(wx)
	g.CoInsert(x, 0, wx.ID)
	g.Add(wy)
	g.CoInsert(y, 0, wy.ID)
	g.Add(ry)
	g.SetRF(ry.ID, wy.ID)
	g.Add(rx)
	g.SetRF(rx.ID, InitID(x))
	return g
}

func TestAddAndEventAccess(t *testing.T) {
	g := buildMP(t)
	if g.NumEvents() != 4 {
		t.Fatalf("NumEvents = %d, want 4", g.NumEvents())
	}
	ev := g.Event(EvID{T: 0, I: 1})
	if ev.Kind != KWrite || ev.Loc != 1 || ev.Val != 1 {
		t.Fatalf("unexpected event %v", ev)
	}
	init := g.Event(InitID(0))
	if init.Kind != KInit || init.Stamp != 0 {
		t.Fatalf("init event wrong: %v", init)
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Fatalf("well-formedness: %v", err)
	}
}

func TestStampsMonotone(t *testing.T) {
	g := buildMP(t)
	var prev int
	g.ForEach(func(ev Event) {
		if ev.Stamp <= 0 {
			t.Errorf("event %v has stamp %d", ev.ID, ev.Stamp)
		}
		_ = prev
	})
	s1 := g.Event(EvID{T: 0, I: 0}).Stamp
	s2 := g.Event(EvID{T: 0, I: 1}).Stamp
	if s1 >= s2 {
		t.Errorf("stamps not increasing along po: %d, %d", s1, s2)
	}
}

func TestAddOutOfOrderPanics(t *testing.T) {
	g := NewGraph(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-order add")
		}
	}()
	g.Add(Event{ID: EvID{T: 0, I: 1}, Kind: KWrite, Loc: 0})
}

func TestReadValueAndValueOf(t *testing.T) {
	g := buildMP(t)
	v, ok := g.ReadValue(EvID{T: 1, I: 0})
	if !ok || v != 1 {
		t.Fatalf("ReadValue(ry) = %d,%v want 1,true", v, ok)
	}
	v, ok = g.ReadValue(EvID{T: 1, I: 1})
	if !ok || v != 0 {
		t.Fatalf("ReadValue(rx) = %d,%v want 0,true (reads init)", v, ok)
	}
	if g.ValueOf(InitID(1)) != 0 {
		t.Fatal("init value must be 0")
	}
}

func TestCoInsertOrderAndCoMax(t *testing.T) {
	g := NewGraph(1, 1)
	w1 := Event{ID: EvID{T: 0, I: 0}, Kind: KWrite, Loc: 0, Val: 1}
	w2 := Event{ID: EvID{T: 0, I: 1}, Kind: KWrite, Loc: 0, Val: 2}
	w3 := Event{ID: EvID{T: 0, I: 2}, Kind: KWrite, Loc: 0, Val: 3}
	g.Add(w1)
	g.CoInsert(0, 0, w1.ID)
	g.Add(w2)
	g.CoInsert(0, 1, w2.ID)
	g.Add(w3)
	g.CoInsert(0, 1, w3.ID) // squeeze between w1 and w2
	got := g.CoLoc(0)
	want := []EvID{w1.ID, w3.ID, w2.ID}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("co order %v, want %v", got, want)
		}
	}
	if g.CoMax(0) != w2.ID {
		t.Fatalf("CoMax = %v, want %v", g.CoMax(0), w2.ID)
	}
	if g.CoIndex(0, w3.ID) != 1 {
		t.Fatalf("CoIndex(w3) = %d, want 1", g.CoIndex(0, w3.ID))
	}
	if g.CoIndex(0, InitID(0)) != -1 {
		t.Fatal("init CoIndex must be -1")
	}
}

func TestWritesToIncludesInit(t *testing.T) {
	g := buildMP(t)
	ws := g.WritesTo(0)
	if len(ws) != 2 || !ws[0].IsInit() {
		t.Fatalf("WritesTo(x) = %v", ws)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := buildMP(t)
	c := g.Clone()
	c.Add(Event{ID: EvID{T: 1, I: 2}, Kind: KFence, Fence: FenceFull})
	if g.NumEvents() != 4 || c.NumEvents() != 5 {
		t.Fatal("clone shares thread storage")
	}
	c.SetRF(EvID{T: 1, I: 1}, EvID{T: 0, I: 0})
	if w, _ := g.RF(EvID{T: 1, I: 1}); !w.IsInit() {
		t.Fatal("clone shares rf map")
	}
	if g.Key() == c.Key() {
		t.Fatal("distinct executions must have distinct keys")
	}
}

func TestRestrict(t *testing.T) {
	g := buildMP(t)
	// Drop T1's second read (a po-suffix), keep everything else.
	dropped := EvID{T: 1, I: 1}
	r := g.Restrict(func(id EvID) bool { return id != dropped })
	if r.NumEvents() != 3 {
		t.Fatalf("restricted NumEvents = %d, want 3", r.NumEvents())
	}
	if r.Has(dropped) {
		t.Fatal("dropped event still present")
	}
	if _, ok := r.RF(dropped); ok {
		t.Fatal("rf edge of dropped read survived")
	}
	if w, ok := r.RF(EvID{T: 1, I: 0}); !ok || (w != EvID{T: 0, I: 1}) {
		t.Fatal("rf edge of kept read lost")
	}
	// Stamp counter must not regress.
	r.Add(Event{ID: EvID{T: 1, I: 1}, Kind: KRead, Loc: 0})
	newStamp := r.Event(EvID{T: 1, I: 1}).Stamp
	if newStamp <= g.Event(EvID{T: 1, I: 0}).Stamp {
		t.Fatalf("new stamp %d not after surviving stamps", newStamp)
	}
}

func TestRestrictPanicsOnNonPrefix(t *testing.T) {
	g := buildMP(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-prefix-closed keep set")
		}
	}()
	g.Restrict(func(id EvID) bool { return id != (EvID{T: 0, I: 0}) }) // drop first, keep second
}

func TestKeyDistinguishesRf(t *testing.T) {
	g1 := buildMP(t)
	g2 := buildMP(t)
	g2.SetRF(EvID{T: 1, I: 1}, EvID{T: 0, I: 0}) // rx reads 1 instead of init
	if g1.Key() == g2.Key() {
		t.Fatal("keys must differ when rf differs")
	}
}

func TestStringRendering(t *testing.T) {
	g := buildMP(t)
	s := g.String()
	for _, want := range []string{"thread 0", "thread 1", "W x0=1", "rf"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestCheckWellFormedCatchesMissingRf(t *testing.T) {
	g := NewGraph(1, 1)
	g.Add(Event{ID: EvID{T: 0, I: 0}, Kind: KRead, Loc: 0})
	if err := g.CheckWellFormed(); err == nil {
		t.Fatal("read without rf must be ill-formed")
	}
}

func TestCheckWellFormedCatchesCoMismatch(t *testing.T) {
	g := NewGraph(1, 1)
	g.Add(Event{ID: EvID{T: 0, I: 0}, Kind: KWrite, Loc: 0, Val: 1})
	// Write never placed into co.
	if err := g.CheckWellFormed(); err == nil {
		t.Fatal("write missing from co must be ill-formed")
	}
}

func TestSortEvIDs(t *testing.T) {
	ids := []EvID{{T: 1, I: 0}, {T: 0, I: 2}, {T: InitThread, I: 0}, {T: 0, I: 1}}
	SortEvIDs(ids)
	want := []EvID{{T: InitThread, I: 0}, {T: 0, I: 1}, {T: 0, I: 2}, {T: 1, I: 0}}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", ids, want)
		}
	}
}

func TestEventStringForms(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{Event{ID: EvID{T: 0, I: 0}, Kind: KWrite, Loc: 2, Val: 7}, "t0:0: W x2=7"},
		{Event{ID: EvID{T: 1, I: 3}, Kind: KRead, Loc: 0}, "t1:3: R x0"},
		{Event{ID: InitID(1), Kind: KInit, Loc: 1}, "init[x1]: init x1=0"},
		{Event{ID: EvID{T: 0, I: 1}, Kind: KFence, Fence: FenceFull}, "t0:1: F.full"},
	}
	for _, c := range cases {
		if got := c.ev.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestSameStaticEvent(t *testing.T) {
	a := Event{ID: EvID{T: 0, I: 0}, Kind: KWrite, Loc: 0, Val: 1}
	b := a
	if !SameStaticEvent(a, b) {
		t.Fatal("identical events must match")
	}
	b.Val = 2
	if SameStaticEvent(a, b) {
		t.Fatal("different written value must not match")
	}
	r1 := Event{ID: EvID{T: 0, I: 0}, Kind: KRead, Loc: 0, Val: 5}
	r2 := Event{ID: EvID{T: 0, I: 0}, Kind: KRead, Loc: 0, Val: 9}
	if !SameStaticEvent(r1, r2) {
		t.Fatal("read value is rf-determined and must not affect identity")
	}
	r2.Data = []EvID{{T: 0, I: 0}}
	if SameStaticEvent(r1, r2) {
		t.Fatal("different deps must not match")
	}
}

func TestWriteDot(t *testing.T) {
	g := buildMP(t)
	var buf strings.Builder
	if err := g.WriteDot(&buf, func(l Loc) string { return []string{"x", "y"}[l] }); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph execution",
		"cluster_t0", "cluster_t1",
		`"W x = 1"`, `"W y = 1"`, `"R y = 1"`, `"R x = 0"`,
		"label=rf", "label=co",
		"init0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
	// Deterministic output.
	var buf2 strings.Builder
	g.WriteDot(&buf2, func(l Loc) string { return []string{"x", "y"}[l] })
	if buf.String() != buf2.String() {
		t.Error("dot output is nondeterministic")
	}
}

func TestWriteDotDeps(t *testing.T) {
	g := NewGraph(1, 2)
	r := Event{ID: EvID{T: 0, I: 0}, Kind: KRead, Loc: 0}
	w := Event{ID: EvID{T: 0, I: 1}, Kind: KWrite, Loc: 1, Val: 1, Data: []EvID{r.ID}}
	g.Add(r)
	g.SetRF(r.ID, InitID(0))
	g.Add(w)
	g.CoInsert(1, 0, w.ID)
	var buf strings.Builder
	if err := g.WriteDot(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "label=data") {
		t.Errorf("dependency edge missing:\n%s", buf.String())
	}
}
