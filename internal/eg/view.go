package eg

import (
	"sync"

	"hmc/internal/relation"
)

// View is a dense snapshot of a graph: every event (init events first, then
// thread events in (thread, index) order) is assigned an index 0..N-1, and
// the standard memory-model relations are exposed as relation.Rel values.
// Relations are memoized; a View must not outlive mutations of its Graph.
//
// The dense layout is arithmetic: init event for location l sits at index l,
// and thread t's events occupy the contiguous block [off[t], threadEnd(t)).
// Idx is therefore a couple of adds, not a map lookup.
type View struct {
	G      *Graph
	Events []Event // dense order
	N      int

	numLocs int
	off     []int // off[t] = dense index of thread t's first event

	// arena is non-nil for pooled views (GetView); Empty then allocates
	// relation rows from it instead of the heap, and PutView recycles the
	// whole bundle for the next consistency check.
	arena *relation.Arena

	po, poloc, rf, rfe, rfi, co, fr, eco *relation.Rel
	depAddr, depData, depCtrl, depAll    *relation.Rel
}

// NewView snapshots g with heap-allocated relations. Use GetView/PutView on
// the exploration hot path.
func NewView(g *Graph) *View {
	v := &View{}
	v.init(g)
	return v
}

// viewPool recycles views (and their relation arenas) across consistency
// checks; see GetView.
var viewPool = sync.Pool{New: func() any { return &View{arena: new(relation.Arena)} }}

// GetView returns a pooled view of g whose relations are allocated from a
// per-view arena. It is a drop-in replacement for NewView on the hot path;
// the caller must release it with PutView, after which the view and every
// relation obtained from it are invalid.
func GetView(g *Graph) *View {
	v := viewPool.Get().(*View)
	v.arena.Reset()
	v.init(g)
	return v
}

// PutView recycles a view obtained from GetView. Passing a view made by
// NewView is a harmless no-op.
func PutView(v *View) {
	if v == nil || v.arena == nil {
		return
	}
	v.G = nil
	v.Events = v.Events[:0]
	v.clearMemos()
	viewPool.Put(v)
}

// init (re)builds the dense snapshot of g, reusing v's buffers.
func (v *View) init(g *Graph) {
	v.G = g
	v.numLocs = g.numLocs
	v.Events = v.Events[:0]
	for l := 0; l < g.numLocs; l++ {
		v.Events = append(v.Events, Event{ID: InitID(Loc(l)), Kind: KInit, Loc: Loc(l)})
	}
	v.off = v.off[:0]
	for _, th := range g.threads {
		v.off = append(v.off, len(v.Events))
		v.Events = append(v.Events, th...)
	}
	v.N = len(v.Events)
	v.clearMemos()
}

func (v *View) clearMemos() {
	v.po, v.poloc, v.rf, v.rfe, v.rfi, v.co, v.fr, v.eco = nil, nil, nil, nil, nil, nil, nil, nil
	v.depAddr, v.depData, v.depCtrl, v.depAll = nil, nil, nil, nil
}

// threadEnd returns one past the dense index of thread t's last event.
func (v *View) threadEnd(t int) int {
	if t+1 < len(v.off) {
		return v.off[t+1]
	}
	return v.N
}

// Idx returns the dense index of an event.
func (v *View) Idx(id EvID) int {
	if id.IsInit() {
		if id.I < 0 || id.I >= v.numLocs {
			panic("eg: view index for absent event " + id.String())
		}
		return id.I
	}
	if id.T < 0 || id.T >= len(v.off) || id.I < 0 || v.off[id.T]+id.I >= v.threadEnd(id.T) {
		panic("eg: view index for absent event " + id.String())
	}
	return v.off[id.T] + id.I
}

// Empty returns a fresh empty relation over the view's universe (allocated
// from the view's arena when it has one).
func (v *View) Empty() *relation.Rel {
	if v.arena != nil {
		return v.arena.New(v.N)
	}
	return relation.New(v.N)
}

// Po returns program order: same-thread (i < j) pairs, plus every init
// event before every thread event (the conventional extension that makes
// SC's acyclicity include initialisation). Rows are dense intervals in the
// view's layout, so they are built with word fills.
func (v *View) Po() *relation.Rel {
	if v.po != nil {
		return v.po
	}
	r := v.Empty()
	for a := 0; a < v.numLocs; a++ {
		r.AddRange(a, v.numLocs, v.N)
	}
	for t := range v.off {
		hi := v.threadEnd(t)
		for a := v.off[t]; a < hi; a++ {
			r.AddRange(a, a+1, hi)
		}
	}
	v.po = r
	return r
}

// PoLoc returns po restricted to same-location memory accesses (init
// events relate only to accesses of their own location).
func (v *View) PoLoc() *relation.Rel {
	if v.poloc != nil {
		return v.poloc
	}
	r := v.Empty()
	for t := range v.off {
		hi := v.threadEnd(t)
		for a := v.off[t]; a < hi; a++ {
			ea := &v.Events[a]
			if ea.Kind == KFence {
				continue
			}
			r.Add(int(ea.Loc), a) // init write of ea.Loc precedes every access of it
			for b := a + 1; b < hi; b++ {
				if eb := &v.Events[b]; eb.Kind != KFence && eb.Loc == ea.Loc {
					r.Add(a, b)
				}
			}
		}
	}
	v.poloc = r
	return r
}

// Rf returns the reads-from relation (write → read), built by scanning the
// dense event list in order.
func (v *View) Rf() *relation.Rel {
	if v.rf != nil {
		return v.rf
	}
	r := v.Empty()
	for b := v.numLocs; b < v.N; b++ {
		ev := &v.Events[b]
		if !ev.Kind.IsRead() {
			continue
		}
		if w, ok := v.G.rf[ev.ID]; ok {
			r.Add(v.Idx(w), b)
		}
	}
	v.rf = r
	return r
}

// Rfe returns external reads-from: write and read in different threads
// (init counts as external to every thread).
func (v *View) Rfe() *relation.Rel {
	if v.rfe != nil {
		return v.rfe
	}
	r := v.Empty()
	v.Rf().Pairs(func(a, b int) {
		if v.Events[a].ID.T != v.Events[b].ID.T {
			r.Add(a, b)
		}
	})
	v.rfe = r
	return r
}

// Rfi returns internal (same-thread) reads-from.
func (v *View) Rfi() *relation.Rel {
	if v.rfi != nil {
		return v.rfi
	}
	v.rfi = v.Rf().Minus(v.Rfe())
	return v.rfi
}

// Co returns the coherence order: for each location, init before every
// write, and co-list order between writes.
func (v *View) Co() *relation.Rel {
	if v.co != nil {
		return v.co
	}
	r := v.Empty()
	for l := 0; l < v.numLocs; l++ {
		ws := v.G.co[l]
		for i := 0; i < len(ws); i++ {
			wi := v.Idx(ws[i])
			r.Add(l, wi) // implicit init write first
			for j := i + 1; j < len(ws); j++ {
				r.Add(wi, v.Idx(ws[j]))
			}
		}
	}
	v.co = r
	return r
}

// Fr returns from-read: rf⁻¹ ; co, minus reflexive pairs (an update is a
// co-successor of its own rf source and must not fr-loop onto itself).
// Built directly from each read's rf source and that write's co-suffix,
// with no Inverse/Compose intermediates.
func (v *View) Fr() *relation.Rel {
	if v.fr != nil {
		return v.fr
	}
	fr := v.Empty()
	for b := v.numLocs; b < v.N; b++ {
		ev := &v.Events[b]
		if !ev.Kind.IsRead() {
			continue
		}
		w, ok := v.G.rf[ev.ID]
		if !ok {
			continue
		}
		ws := v.G.co[ev.Loc]
		start := 0
		if !w.IsInit() {
			start = len(ws) // absent from co ⇒ no co-successors
			for i, x := range ws {
				if x == w {
					start = i + 1
					break
				}
			}
		}
		for k := start; k < len(ws); k++ {
			if ws[k] == ev.ID {
				continue // an update never fr-loops onto itself
			}
			fr.Add(b, v.Idx(ws[k]))
		}
	}
	v.fr = fr
	return fr
}

// Eco returns the extended communication order (rf ∪ co ∪ fr)⁺. Memoized
// like the other accessors: models that consult eco several times per check
// (RC11, IMM) pay for the closure once.
func (v *View) Eco() *relation.Rel {
	if v.eco != nil {
		return v.eco
	}
	v.eco = v.Rf().Union(v.Co()).UnionWith(v.Fr()).TransitiveClose()
	return v.eco
}

func (v *View) depRel(pick func(Event) []EvID) *relation.Rel {
	r := v.Empty()
	for b, ev := range v.Events {
		for _, d := range pick(ev) {
			r.Add(v.Idx(d), b)
		}
	}
	return r
}

// DepAddr returns address dependencies (read → dependent event).
func (v *View) DepAddr() *relation.Rel {
	if v.depAddr == nil {
		v.depAddr = v.depRel(func(e Event) []EvID { return e.Addr })
	}
	return v.depAddr
}

// DepData returns data dependencies (read → dependent write).
func (v *View) DepData() *relation.Rel {
	if v.depData == nil {
		v.depData = v.depRel(func(e Event) []EvID { return e.Data })
	}
	return v.depData
}

// DepCtrl returns control dependencies (read → every event po-after a
// branch whose condition depends on the read).
func (v *View) DepCtrl() *relation.Rel {
	if v.depCtrl == nil {
		v.depCtrl = v.depRel(func(e Event) []EvID { return e.Ctrl })
	}
	return v.depCtrl
}

// Deps returns addr ∪ data ∪ ctrl.
func (v *View) Deps() *relation.Rel {
	if v.depAll == nil {
		v.depAll = v.DepAddr().Union(v.DepData()).UnionWith(v.DepCtrl())
	}
	return v.depAll
}

// FilterIdx returns the set of dense indices whose event satisfies pred.
func (v *View) FilterIdx(pred func(Event) bool) []int {
	var out []int
	for i, ev := range v.Events {
		if pred(ev) {
			out = append(out, i)
		}
	}
	return out
}

// SeqFence returns the relation {(a,b) | a po f po b} for fences f of the
// given kinds — the building block of barrier-ordering relations.
func (v *View) SeqFence(kinds ...FenceKind) *relation.Rel {
	want := map[FenceKind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	fences := v.FilterIdx(func(e Event) bool { return e.Kind == KFence && want[e.Fence] })
	r := v.Empty()
	po := v.Po()
	for _, f := range fences {
		for a := 0; a < v.N; a++ {
			if !po.Has(a, f) {
				continue
			}
			for b := 0; b < v.N; b++ {
				if po.Has(f, b) {
					r.Add(a, b)
				}
			}
		}
	}
	return r
}

// Restrict returns r with all pairs removed whose source does not satisfy
// from or whose target does not satisfy to. Either predicate may be nil
// (no constraint).
func (v *View) Restrict(r *relation.Rel, from, to func(Event) bool) *relation.Rel {
	out := v.Empty()
	r.Pairs(func(a, b int) {
		if from != nil && !from(v.Events[a]) {
			return
		}
		if to != nil && !to(v.Events[b]) {
			return
		}
		out.Add(a, b)
	})
	return out
}
