package eg

import (
	"hmc/internal/relation"
)

// View is a dense snapshot of a graph: every event (init events first, then
// thread events in (thread, index) order) is assigned an index 0..N-1, and
// the standard memory-model relations are exposed as relation.Rel values.
// Relations are memoized; a View must not outlive mutations of its Graph.
type View struct {
	G      *Graph
	Events []Event // dense order
	N      int

	idx map[EvID]int

	po, poloc, rf, rfe, rfi, co, fr   *relation.Rel
	depAddr, depData, depCtrl, depAll *relation.Rel
}

// NewView snapshots g.
func NewView(g *Graph) *View {
	v := &View{G: g, idx: make(map[EvID]int)}
	for l := 0; l < g.NumLocs(); l++ {
		id := InitID(Loc(l))
		v.idx[id] = len(v.Events)
		v.Events = append(v.Events, g.Event(id))
	}
	g.ForEach(func(ev Event) {
		v.idx[ev.ID] = len(v.Events)
		v.Events = append(v.Events, ev)
	})
	v.N = len(v.Events)
	return v
}

// Idx returns the dense index of an event.
func (v *View) Idx(id EvID) int {
	i, ok := v.idx[id]
	if !ok {
		panic("eg: view index for absent event " + id.String())
	}
	return i
}

// Empty returns a fresh empty relation over the view's universe.
func (v *View) Empty() *relation.Rel { return relation.New(v.N) }

// Po returns program order: same-thread (i < j) pairs, plus every init
// event before every thread event (the conventional extension that makes
// SC's acyclicity include initialisation).
func (v *View) Po() *relation.Rel {
	if v.po != nil {
		return v.po
	}
	r := v.Empty()
	for a := 0; a < v.N; a++ {
		ea := v.Events[a]
		for b := 0; b < v.N; b++ {
			eb := v.Events[b]
			if ea.ID.IsInit() && !eb.ID.IsInit() {
				r.Add(a, b)
				continue
			}
			if !ea.ID.IsInit() && ea.ID.T == eb.ID.T && ea.ID.I < eb.ID.I {
				r.Add(a, b)
			}
		}
	}
	v.po = r
	return r
}

// PoLoc returns po restricted to same-location memory accesses (init
// events relate only to accesses of their own location).
func (v *View) PoLoc() *relation.Rel {
	if v.poloc != nil {
		return v.poloc
	}
	r := v.Empty()
	v.Po().Pairs(func(a, b int) {
		ea, eb := v.Events[a], v.Events[b]
		if ea.Kind == KFence || eb.Kind == KFence {
			return
		}
		if ea.Loc == eb.Loc {
			r.Add(a, b)
		}
	})
	v.poloc = r
	return r
}

// Rf returns the reads-from relation (write → read).
func (v *View) Rf() *relation.Rel {
	if v.rf != nil {
		return v.rf
	}
	r := v.Empty()
	for read, w := range v.G.rf { //hmc:nondet(builds a bit-matrix: set semantics, insertion order immaterial)
		r.Add(v.Idx(w), v.Idx(read))
	}
	v.rf = r
	return r
}

// Rfe returns external reads-from: write and read in different threads
// (init counts as external to every thread).
func (v *View) Rfe() *relation.Rel {
	if v.rfe != nil {
		return v.rfe
	}
	r := v.Empty()
	v.Rf().Pairs(func(a, b int) {
		if v.Events[a].ID.T != v.Events[b].ID.T {
			r.Add(a, b)
		}
	})
	v.rfe = r
	return r
}

// Rfi returns internal (same-thread) reads-from.
func (v *View) Rfi() *relation.Rel {
	if v.rfi != nil {
		return v.rfi
	}
	v.rfi = v.Rf().Minus(v.Rfe())
	return v.rfi
}

// Co returns the coherence order: for each location, init before every
// write, and co-list order between writes.
func (v *View) Co() *relation.Rel {
	if v.co != nil {
		return v.co
	}
	r := v.Empty()
	for l := 0; l < v.G.NumLocs(); l++ {
		ws := v.G.WritesTo(Loc(l)) // init first
		for i := 0; i < len(ws); i++ {
			for j := i + 1; j < len(ws); j++ {
				r.Add(v.Idx(ws[i]), v.Idx(ws[j]))
			}
		}
	}
	v.co = r
	return r
}

// Fr returns from-read: rf⁻¹ ; co, minus reflexive pairs (an update is a
// co-successor of its own rf source and must not fr-loop onto itself).
func (v *View) Fr() *relation.Rel {
	if v.fr != nil {
		return v.fr
	}
	fr := v.Rf().Inverse().Compose(v.Co())
	for i := 0; i < v.N; i++ {
		fr.Remove(i, i)
	}
	v.fr = fr
	return fr
}

// Eco returns the extended communication order (rf ∪ co ∪ fr)⁺.
func (v *View) Eco() *relation.Rel {
	return v.Rf().Union(v.Co()).UnionWith(v.Fr()).TransitiveClose()
}

func (v *View) depRel(pick func(Event) []EvID) *relation.Rel {
	r := v.Empty()
	for b, ev := range v.Events {
		for _, d := range pick(ev) {
			r.Add(v.Idx(d), b)
		}
	}
	return r
}

// DepAddr returns address dependencies (read → dependent event).
func (v *View) DepAddr() *relation.Rel {
	if v.depAddr == nil {
		v.depAddr = v.depRel(func(e Event) []EvID { return e.Addr })
	}
	return v.depAddr
}

// DepData returns data dependencies (read → dependent write).
func (v *View) DepData() *relation.Rel {
	if v.depData == nil {
		v.depData = v.depRel(func(e Event) []EvID { return e.Data })
	}
	return v.depData
}

// DepCtrl returns control dependencies (read → every event po-after a
// branch whose condition depends on the read).
func (v *View) DepCtrl() *relation.Rel {
	if v.depCtrl == nil {
		v.depCtrl = v.depRel(func(e Event) []EvID { return e.Ctrl })
	}
	return v.depCtrl
}

// Deps returns addr ∪ data ∪ ctrl.
func (v *View) Deps() *relation.Rel {
	if v.depAll == nil {
		v.depAll = v.DepAddr().Union(v.DepData()).UnionWith(v.DepCtrl())
	}
	return v.depAll
}

// FilterIdx returns the set of dense indices whose event satisfies pred.
func (v *View) FilterIdx(pred func(Event) bool) []int {
	var out []int
	for i, ev := range v.Events {
		if pred(ev) {
			out = append(out, i)
		}
	}
	return out
}

// SeqFence returns the relation {(a,b) | a po f po b} for fences f of the
// given kinds — the building block of barrier-ordering relations.
func (v *View) SeqFence(kinds ...FenceKind) *relation.Rel {
	want := map[FenceKind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	fences := v.FilterIdx(func(e Event) bool { return e.Kind == KFence && want[e.Fence] })
	r := v.Empty()
	po := v.Po()
	for _, f := range fences {
		for a := 0; a < v.N; a++ {
			if !po.Has(a, f) {
				continue
			}
			for b := 0; b < v.N; b++ {
				if po.Has(f, b) {
					r.Add(a, b)
				}
			}
		}
	}
	return r
}

// Restrict returns r with all pairs removed whose source does not satisfy
// from or whose target does not satisfy to. Either predicate may be nil
// (no constraint).
func (v *View) Restrict(r *relation.Rel, from, to func(Event) bool) *relation.Rel {
	out := v.Empty()
	r.Pairs(func(a, b int) {
		if from != nil && !from(v.Events[a]) {
			return
		}
		if to != nil && !to(v.Events[b]) {
			return
		}
		out.Add(a, b)
	})
	return out
}
