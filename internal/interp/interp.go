// Package interp deterministically replays program threads against an
// execution graph. This is the front end of the HMC algorithm: the graph
// fully determines each thread's behaviour (reads take their values from
// their rf edges), so replaying a thread either consumes events already in
// the graph or stops at the thread's *next* action — the event the explorer
// should consider adding, together with its syntactic dependency sets.
//
// Dependency tracking is taint-based: every register carries the set of
// same-thread load events its value was derived from; address/data
// dependencies of an access are the taints of its operand expressions, and
// control dependencies are the accumulated taints of all branch conditions
// evaluated on the path so far (accumulation is the standard conservative
// treatment: a control dependency never disappears at a join).
//
// The package offers two replay modes:
//
//   - Next: normal exploration. Consumed events must match the program
//     exactly; a mismatch panics, because it means the explorer broke its
//     own invariants.
//   - Repair: after a backward revisit rebinds a read, downstream values
//     may be stale. Repair re-replays a thread, patching written values
//     (and flipping CAS success/failure, with the coherence adjustment
//     that entails). It reports structural divergence — a different
//     instruction path, location, or dependency set — as non-repairable,
//     which causes the explorer to abandon the revisit. Keeping repair
//     value-only is what makes exploration constructive: values can never
//     appear out of thin air.
package interp

import (
	"fmt"
	"sort"

	"hmc/internal/eg"
	"hmc/internal/prog"
)

// ActionKind classifies the next action of a thread.
type ActionKind uint8

const (
	ActLoad    ActionKind = iota // add a read event
	ActStore                     // add a write event
	ActCAS                       // add an update (success) or read (failure)
	ActFAdd                      // add an update writing read+Val
	ActXchg                      // add an update writing Val
	ActFence                     // add a fence event
	ActDone                      // thread finished
	ActBlocked                   // assume failed or step bound exceeded
	ActError                     // assertion failed
)

func (k ActionKind) String() string {
	switch k {
	case ActLoad:
		return "load"
	case ActStore:
		return "store"
	case ActCAS:
		return "cas"
	case ActFAdd:
		return "fadd"
	case ActXchg:
		return "xchg"
	case ActFence:
		return "fence"
	case ActDone:
		return "done"
	case ActBlocked:
		return "blocked"
	case ActError:
		return "error"
	}
	return fmt.Sprintf("ActionKind(%d)", uint8(k))
}

// IsRMW reports whether the action produces a potential update event.
func (k ActionKind) IsRMW() bool { return k == ActCAS || k == ActFAdd || k == ActXchg }

// Action is a thread's next step, as determined by replay.
type Action struct {
	Kind  ActionKind
	Loc   eg.Loc
	Val   int64 // store value; xchg value; fadd addend
	Old   int64 // CAS expected value
	New   int64 // CAS replacement value
	Fence eg.FenceKind
	Mode  eg.Mode // C11-style order annotation (rc11 model)
	Msg   string  // error/blocked description

	// Dependency sets for the event to be added.
	Addr []eg.EvID
	Data []eg.EvID
	Ctrl []eg.EvID

	// PC is the index of the instruction producing this action in its
	// thread's code (meaningful for event actions; the static analyzer's
	// CheckDeps sanitizer matches dynamic taints against the static
	// dependency sets computed for this instruction).
	PC int

	// Regs is the thread's register file at this point (final values when
	// Kind == ActDone).
	Regs []int64
}

// MakeEvent materializes the event this action adds at id, given the value
// the event would read (readVal; ignored for non-reads). For ActCAS the
// event is an update when readVal equals the expected value and a plain
// read otherwise.
func (a Action) MakeEvent(id eg.EvID, readVal int64) eg.Event {
	ev := eg.Event{ID: id, Loc: a.Loc, Addr: a.Addr, Data: a.Data, Ctrl: a.Ctrl, Mode: a.Mode, PC: a.PC}
	ev.Excl = a.Kind.IsRMW()
	switch a.Kind {
	case ActLoad:
		ev.Kind = eg.KRead
	case ActStore:
		ev.Kind = eg.KWrite
		ev.Val = a.Val
	case ActCAS:
		if readVal == a.Old {
			ev.Kind = eg.KUpdate
			ev.Val = a.New
		} else {
			ev.Kind = eg.KRead
		}
	case ActFAdd:
		ev.Kind = eg.KUpdate
		ev.Val = readVal + a.Val
	case ActXchg:
		ev.Kind = eg.KUpdate
		ev.Val = a.Val
	case ActFence:
		ev.Kind = eg.KFence
		ev.Fence = a.Fence
	default:
		panic("interp: MakeEvent on non-event action " + a.Kind.String())
	}
	return ev
}

// Reads reports whether the action's event reads memory.
func (a Action) Reads() bool { return a.Kind == ActLoad || a.Kind.IsRMW() }

// DefaultMaxSteps bounds replay of a single thread (loop unrolling bound).
const DefaultMaxSteps = 4096

// Next replays thread t of p against g and returns its next action.
// maxSteps bounds the number of interpreted instructions (≤ 0 means
// DefaultMaxSteps); exceeding it yields ActBlocked, which makes
// verification of looping programs bounded but sound for the explored
// prefix.
func Next(p *prog.Program, g *eg.Graph, t int, maxSteps int) Action {
	a, _, ok := replay(p, g, t, maxSteps, false)
	if !ok {
		panic("interp: unreachable: strict replay reported divergence")
	}
	return a
}

// Repair re-replays thread t, patching stale written values and CAS kinds
// left behind by a revisit. It returns whether anything was patched and
// whether the thread replays to a structurally identical event sequence.
func Repair(p *prog.Program, g *eg.Graph, t int, maxSteps int) (changed, ok bool) {
	_, changed, ok = replay(p, g, t, maxSteps, true)
	return changed, ok
}

// replay is the single interpreter loop behind Next and Repair.
func replay(p *prog.Program, g *eg.Graph, t int, maxSteps int, repair bool) (act Action, changed, ok bool) {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	code := p.Threads[t]
	regs := make([]int64, p.NumRegs[t])
	taints := make([][]eg.EvID, p.NumRegs[t])
	var ctrl []eg.EvID
	consumed := 0
	steps := 0
	pc := 0

	// diverge reports a replay/graph mismatch: fatal in strict mode,
	// a repair failure otherwise.
	diverge := func(format string, args ...any) (Action, bool, bool) {
		if !repair {
			panic(fmt.Sprintf("interp: replay mismatch in thread %d: %s (explorer invariant broken)",
				t, fmt.Sprintf(format, args...)))
		}
		return Action{}, changed, false
	}
	// leftover reports whether graph events remain unconsumed at a point
	// where the thread stops executing — fine in strict mode only if the
	// stop is an action the explorer sees; never fine during repair.
	leftover := func() bool { return consumed < g.ThreadLen(t) }

	evalT := func(e *prog.Expr) (int64, []eg.EvID) {
		var taint []eg.EvID
		v := e.Eval(regs, func(r prog.Reg) {
			taint = unionIDs(taint, taints[r])
		})
		return v, taint
	}

	nextEvent := func() (eg.Event, bool) {
		if consumed < g.ThreadLen(t) {
			return g.Event(eg.EvID{T: t, I: consumed}), true
		}
		return eg.Event{}, false
	}

	for {
		if steps >= maxSteps {
			if repair && leftover() {
				return diverge("step bound hit with %d events left", g.ThreadLen(t)-consumed)
			}
			return Action{Kind: ActBlocked, Msg: "step bound exceeded", Regs: regs}, changed, true
		}
		steps++
		if pc >= len(code) {
			if leftover() {
				return diverge("thread finished with %d events left", g.ThreadLen(t)-consumed)
			}
			return Action{Kind: ActDone, Regs: regs}, changed, true
		}
		cur := pc // instruction index, for Action.PC
		in := code[pc]
		pc++
		switch in.Op {
		case prog.IMov:
			v, taint := evalT(in.Val)
			regs[in.Dst] = v
			taints[in.Dst] = taint

		case prog.ILoad:
			av, at := evalT(in.Addr)
			loc, err := locOf(p, av)
			if err != nil {
				if repair && leftover() {
					return diverge("%v", err)
				}
				return Action{Kind: ActError, Msg: err.Error(), Regs: regs}, changed, true
			}
			if ev, present := nextEvent(); present {
				if ev.Kind != eg.KRead || ev.Loc != loc || ev.Mode != in.Mode {
					return diverge("program load of x%d vs graph %v", loc, ev)
				}
				if repair && !sameDeps(ev, at, nil, ctrl) {
					return diverge("dependency sets changed at %v", ev.ID)
				}
				v, haveRF := g.ReadValue(ev.ID)
				if !haveRF {
					return diverge("read %v has no rf", ev.ID)
				}
				regs[in.Dst] = v
				taints[in.Dst] = []eg.EvID{ev.ID}
				consumed++
				continue
			}
			return Action{Kind: ActLoad, Loc: loc, Mode: in.Mode, Addr: at, Ctrl: cloneIDs(ctrl), Regs: regs, PC: cur}, changed, true

		case prog.IStore:
			av, at := evalT(in.Addr)
			vv, vt := evalT(in.Val)
			loc, err := locOf(p, av)
			if err != nil {
				if repair && leftover() {
					return diverge("%v", err)
				}
				return Action{Kind: ActError, Msg: err.Error(), Regs: regs}, changed, true
			}
			if ev, present := nextEvent(); present {
				if ev.Kind != eg.KWrite || ev.Loc != loc {
					return diverge("program store to x%d vs graph %v", loc, ev)
				}
				if repair && !sameDeps(ev, at, vt, ctrl) {
					return diverge("dependency sets changed at %v", ev.ID)
				}
				if ev.Val != vv {
					if !repair {
						return diverge("graph W x%d=%d, program writes %d", ev.Loc, ev.Val, vv)
					}
					g.SetEventVal(ev.ID, vv)
					changed = true
				}
				consumed++
				continue
			}
			return Action{Kind: ActStore, Loc: loc, Val: vv, Mode: in.Mode, Addr: at, Data: vt, Ctrl: cloneIDs(ctrl), Regs: regs, PC: cur}, changed, true

		case prog.ICAS, prog.IFAdd, prog.IXchg:
			av, at := evalT(in.Addr)
			loc, err := locOf(p, av)
			if err != nil {
				if repair && leftover() {
					return diverge("%v", err)
				}
				return Action{Kind: ActError, Msg: err.Error(), Regs: regs}, changed, true
			}
			var a Action
			switch in.Op {
			case prog.ICAS:
				ov, ot := evalT(in.Old)
				nv, nt := evalT(in.New)
				a = Action{Kind: ActCAS, Loc: loc, Old: ov, New: nv, Mode: in.Mode, Data: unionIDs(ot, nt)}
			case prog.IFAdd:
				dv, dt := evalT(in.Val)
				a = Action{Kind: ActFAdd, Loc: loc, Val: dv, Mode: in.Mode, Data: dt}
			case prog.IXchg:
				vv, vt := evalT(in.Val)
				a = Action{Kind: ActXchg, Loc: loc, Val: vv, Mode: in.Mode, Data: vt}
			}
			if ev, present := nextEvent(); present {
				if (ev.Kind != eg.KUpdate && ev.Kind != eg.KRead) || ev.Loc != loc {
					return diverge("program rmw on x%d vs graph %v", loc, ev)
				}
				if in.Op != prog.ICAS && ev.Kind != eg.KUpdate {
					return diverge("unconditional rmw %v became a read", ev.ID)
				}
				if repair && !sameDeps(ev, at, a.Data, ctrl) {
					return diverge("dependency sets changed at %v", ev.ID)
				}
				readVal, haveRF := g.ReadValue(ev.ID)
				if !haveRF {
					return diverge("rmw %v has no rf", ev.ID)
				}
				// Reconcile the event's kind and written value with the
				// (possibly rebound) value read.
				wantKind, wantVal := rmwOutcome(a, readVal)
				if ev.Kind != wantKind {
					if !repair {
						return diverge("CAS %v kind %v, want %v for read value %d", ev.ID, ev.Kind, wantKind, readVal)
					}
					src, _ := g.RF(ev.ID)
					if wantKind == eg.KUpdate {
						g.SetEventKind(ev.ID, eg.KUpdate)
						g.SetEventVal(ev.ID, wantVal)
						g.CoInsert(loc, g.CoIndex(loc, src)+1, ev.ID)
					} else {
						// Demote to a plain read. Readers of the vanishing
						// write inherit its rf source: they were coherence-
						// adjacent through it, and dropping the update from
						// co splices them onto that source. Their values are
						// repaired on subsequent passes.
						for _, rd := range g.ReadersOf(ev.ID) {
							g.SetRF(rd, src)
						}
						g.CoRemove(loc, ev.ID)
						g.SetEventKind(ev.ID, eg.KRead)
					}
					changed = true
				} else if wantKind == eg.KUpdate && ev.Val != wantVal {
					if !repair {
						return diverge("graph U x%d=%d, program writes %d", ev.Loc, ev.Val, wantVal)
					}
					g.SetEventVal(ev.ID, wantVal)
					changed = true
				}
				regs[in.Dst] = readVal
				taints[in.Dst] = []eg.EvID{ev.ID}
				if in.Op == prog.ICAS && in.Succ >= 0 {
					regs[in.Succ] = b2i(wantKind == eg.KUpdate)
					taints[in.Succ] = []eg.EvID{ev.ID}
				}
				consumed++
				continue
			}
			a.Addr = at
			a.Ctrl = cloneIDs(ctrl)
			a.Regs = regs
			a.PC = cur
			return a, changed, true

		case prog.IFence:
			if ev, present := nextEvent(); present {
				if ev.Kind != eg.KFence || ev.Fence != in.Fence {
					return diverge("program fence.%v vs graph %v", in.Fence, ev)
				}
				consumed++
				continue
			}
			return Action{Kind: ActFence, Fence: in.Fence, Ctrl: cloneIDs(ctrl), Regs: regs, PC: cur}, changed, true

		case prog.IBranch:
			v, taint := evalT(in.Cond)
			ctrl = unionIDs(ctrl, taint)
			if v != 0 {
				pc = in.Target
			}

		case prog.IJmp:
			pc = in.Target

		case prog.IAssume:
			v, taint := evalT(in.Cond)
			ctrl = unionIDs(ctrl, taint)
			if v == 0 {
				if repair && leftover() {
					return diverge("assume failed with %d events left", g.ThreadLen(t)-consumed)
				}
				return Action{Kind: ActBlocked, Msg: "assume failed", Regs: regs}, changed, true
			}

		case prog.IAssert:
			v, _ := evalT(in.Cond)
			if v == 0 {
				msg := in.Msg
				if msg == "" {
					msg = "assertion failed"
				}
				if repair && leftover() {
					return diverge("assertion failed with %d events left", g.ThreadLen(t)-consumed)
				}
				return Action{Kind: ActError, Msg: msg, Regs: regs}, changed, true
			}

		default:
			panic(fmt.Sprintf("interp: bad instruction op %d", in.Op))
		}
	}
}

// rmwOutcome computes the event kind and written value an RMW action
// produces for a given read value.
func rmwOutcome(a Action, readVal int64) (eg.Kind, int64) {
	switch a.Kind {
	case ActCAS:
		if readVal == a.Old {
			return eg.KUpdate, a.New
		}
		return eg.KRead, 0
	case ActFAdd:
		return eg.KUpdate, readVal + a.Val
	case ActXchg:
		return eg.KUpdate, a.Val
	}
	panic("interp: rmwOutcome on non-rmw action")
}

// RepairAll re-replays every thread until values stabilise. It returns
// false if any thread diverges structurally or the propagation fails to
// converge (a genuine value cycle — out-of-thin-air — which constructive
// exploration rejects).
func RepairAll(p *prog.Program, g *eg.Graph, maxSteps int) bool {
	limit := g.NumEvents() + 2
	for pass := 0; pass < limit; pass++ {
		anyChange := false
		for t := range p.Threads {
			changed, ok := Repair(p, g, t, maxSteps)
			if !ok {
				return false
			}
			anyChange = anyChange || changed
		}
		if !anyChange {
			return true
		}
	}
	return false
}

func locOf(p *prog.Program, v int64) (eg.Loc, error) {
	if v < 0 || v >= int64(p.NumLocs) {
		return 0, fmt.Errorf("address %d out of range [0,%d)", v, p.NumLocs)
	}
	return eg.Loc(v), nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// sameDeps compares an event's recorded dependency sets against freshly
// computed taints.
func sameDeps(ev eg.Event, addr, data, ctrl []eg.EvID) bool {
	return equalIDs(ev.Addr, addr) && equalIDs(ev.Data, data) && equalIDs(ev.Ctrl, ctrl)
}

func equalIDs(a, b []eg.EvID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cloneIDs returns a copy of ids (actions must not alias the interpreter's
// evolving ctrl set).
func cloneIDs(ids []eg.EvID) []eg.EvID {
	if len(ids) == 0 {
		return nil
	}
	return append([]eg.EvID(nil), ids...)
}

// unionIDs returns the sorted union of two EvID sets.
func unionIDs(a, b []eg.EvID) []eg.EvID {
	if len(b) == 0 {
		return a
	}
	out := append(cloneIDs(a), b...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		return out[i].I < out[j].I
	})
	k := 0
	for i, id := range out {
		if i == 0 || id != out[k-1] {
			out[k] = id
			k++
		}
	}
	return out[:k]
}

// FinalState assembles the observable final state of a complete execution:
// coherence-maximal values per location plus each thread's final registers.
// It must only be called when every thread's Next is ActDone.
func FinalState(p *prog.Program, g *eg.Graph, maxSteps int) prog.FinalState {
	fs := prog.FinalState{
		Mem:  make([]int64, p.NumLocs),
		Regs: make([][]int64, len(p.Threads)),
	}
	for l := 0; l < p.NumLocs; l++ {
		fs.Mem[l] = g.ValueOf(g.CoMax(eg.Loc(l)))
	}
	for t := range p.Threads {
		a := Next(p, g, t, maxSteps)
		if a.Kind != ActDone {
			panic(fmt.Sprintf("interp: FinalState on incomplete execution (thread %d is %v)", t, a.Kind))
		}
		fs.Regs[t] = a.Regs
	}
	return fs
}
