package interp

import (
	"testing"

	"hmc/internal/eg"
	"hmc/internal/prog"
)

// buildChain constructs a graph for: T0: r = load x; store y = r+1,
// with r bound to `from`, and returns it with the store's stale value.
func buildChain(t *testing.T, from eg.EvID, staleVal int64) (*prog.Program, *eg.Graph) {
	t.Helper()
	b := prog.NewBuilder("chain")
	x, y := b.Loc("x"), b.Loc("y")
	_ = x
	t0 := b.Thread()
	r := t0.Load(x)
	t0.Store(y, prog.Add(prog.R(r), prog.Const(1)))
	t1 := b.Thread()
	t1.Store(x, prog.Const(5))
	p := b.MustBuild()

	g := eg.NewGraph(2, 2)
	g.Add(eg.Event{ID: eg.EvID{T: 0, I: 0}, Kind: eg.KRead, Loc: 0})
	g.Add(eg.Event{ID: eg.EvID{T: 0, I: 1}, Kind: eg.KWrite, Loc: 1, Val: staleVal,
		Data: []eg.EvID{{T: 0, I: 0}}})
	g.CoInsert(1, 0, eg.EvID{T: 0, I: 1})
	g.Add(eg.Event{ID: eg.EvID{T: 1, I: 0}, Kind: eg.KWrite, Loc: 0, Val: 5})
	g.CoInsert(0, 0, eg.EvID{T: 1, I: 0})
	g.SetRF(eg.EvID{T: 0, I: 0}, from)
	return p, g
}

func TestRepairPatchesStaleValue(t *testing.T) {
	// The read was rebound to T1's write (value 5) but the dependent store
	// still carries the value computed from init (0+1): repair fixes it.
	p, g := buildChain(t, eg.EvID{T: 1, I: 0}, 1)
	changed, ok := Repair(p, g, 0, 0)
	if !ok {
		t.Fatal("repair diverged on a pure value change")
	}
	if !changed {
		t.Fatal("repair must report the patch")
	}
	if got := g.Event(eg.EvID{T: 0, I: 1}).Val; got != 6 {
		t.Fatalf("patched value = %d, want 6", got)
	}
	// Second pass: fixpoint.
	changed, ok = Repair(p, g, 0, 0)
	if !ok || changed {
		t.Fatalf("second pass: changed=%v ok=%v, want false,true", changed, ok)
	}
}

func TestRepairAllConverges(t *testing.T) {
	p, g := buildChain(t, eg.EvID{T: 1, I: 0}, 1)
	if !RepairAll(p, g, 0) {
		t.Fatal("RepairAll failed on a convergent graph")
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairFlipsCASToRead(t *testing.T) {
	// T0: CAS(x, 0 -> 9). The graph has it as a *successful* update
	// reading init; rebinding it to a write of 5 must demote it to a
	// plain read and pull it out of coherence.
	b := prog.NewBuilder("casflip")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.CAS(x, prog.Const(0), prog.Const(9))
	t1 := b.Thread()
	t1.Store(x, prog.Const(5))
	p := b.MustBuild()

	g := eg.NewGraph(2, 1)
	cas := eg.EvID{T: 0, I: 0}
	g.Add(eg.Event{ID: cas, Kind: eg.KUpdate, Loc: 0, Val: 9, Excl: true})
	g.CoInsert(0, 0, cas)
	g.SetRF(cas, eg.InitID(0))
	w := eg.EvID{T: 1, I: 0}
	g.Add(eg.Event{ID: w, Kind: eg.KWrite, Loc: 0, Val: 5})
	g.CoInsert(0, 1, w)
	// Rebind: the CAS now reads 5 ≠ 0 → must fail.
	g.SetRF(cas, w)

	changed, ok := Repair(p, g, 0, 0)
	if !ok || !changed {
		t.Fatalf("repair: changed=%v ok=%v", changed, ok)
	}
	if got := g.Event(cas).Kind; got != eg.KRead {
		t.Fatalf("CAS kind = %v, want KRead", got)
	}
	if g.CoIndex(0, cas) != -1 {
		t.Fatal("demoted CAS still in coherence order")
	}
}

func TestRepairPromotesCASToUpdate(t *testing.T) {
	// The mirror image: a failed CAS whose rebound source now matches the
	// expected value becomes a successful update, co-adjacent to it.
	b := prog.NewBuilder("caspromote")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.CAS(x, prog.Const(5), prog.Const(9))
	t1 := b.Thread()
	t1.Store(x, prog.Const(5))
	p := b.MustBuild()

	g := eg.NewGraph(2, 1)
	cas := eg.EvID{T: 0, I: 0}
	w := eg.EvID{T: 1, I: 0}
	g.Add(eg.Event{ID: cas, Kind: eg.KRead, Loc: 0, Excl: true}) // failed: read init (0 ≠ 5)
	g.SetRF(cas, eg.InitID(0))
	g.Add(eg.Event{ID: w, Kind: eg.KWrite, Loc: 0, Val: 5})
	g.CoInsert(0, 0, w)
	g.SetRF(cas, w) // rebind: now reads 5 → succeeds

	changed, ok := Repair(p, g, 0, 0)
	if !ok || !changed {
		t.Fatalf("repair: changed=%v ok=%v", changed, ok)
	}
	ev := g.Event(cas)
	if ev.Kind != eg.KUpdate || ev.Val != 9 {
		t.Fatalf("promoted CAS = %v, want U x=9", ev)
	}
	if g.CoIndex(0, cas) != g.CoIndex(0, w)+1 {
		t.Fatal("promoted CAS not coherence-adjacent to its source")
	}
}

func TestRepairCascadesToReaders(t *testing.T) {
	// A demoted CAS's reader inherits its rf source.
	b := prog.NewBuilder("cascade")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.CAS(x, prog.Const(0), prog.Const(9))
	t1 := b.Thread()
	t1.Load(x)
	t2 := b.Thread()
	t2.Store(x, prog.Const(5))
	p := b.MustBuild()

	g := eg.NewGraph(3, 1)
	cas := eg.EvID{T: 0, I: 0}
	rd := eg.EvID{T: 1, I: 0}
	w := eg.EvID{T: 2, I: 0}
	g.Add(eg.Event{ID: cas, Kind: eg.KUpdate, Loc: 0, Val: 9, Excl: true})
	g.CoInsert(0, 0, cas)
	g.SetRF(cas, eg.InitID(0))
	g.Add(eg.Event{ID: rd, Kind: eg.KRead, Loc: 0})
	g.SetRF(rd, cas)
	g.Add(eg.Event{ID: w, Kind: eg.KWrite, Loc: 0, Val: 5})
	g.CoInsert(0, 1, w)
	g.SetRF(cas, w) // rebind: CAS fails, its write part vanishes

	if !RepairAll(p, g, 0) {
		t.Fatal("cascading repair failed")
	}
	if src, _ := g.RF(rd); src != w {
		t.Fatalf("reader rebound to %v, want %v (the demoted CAS's source)", src, w)
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairDivergesOnBranchFlip(t *testing.T) {
	// T0: r = load x; if r == 0 { store y 1 }. The graph was built with
	// r=0 (store present); rebinding r to a nonzero write flips the
	// branch, so the store event can no longer be derived: structural
	// divergence.
	b := prog.NewBuilder("flip")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	r := t0.Load(x)
	j := t0.BranchFwd(prog.Ne(prog.R(r), prog.Const(0)))
	t0.Store(y, prog.Const(1))
	t0.Patch(j)
	t1 := b.Thread()
	t1.Store(x, prog.Const(5))
	p := b.MustBuild()

	g := eg.NewGraph(2, 2)
	rid := eg.EvID{T: 0, I: 0}
	g.Add(eg.Event{ID: rid, Kind: eg.KRead, Loc: 0})
	g.SetRF(rid, eg.InitID(0))
	g.Add(eg.Event{ID: eg.EvID{T: 0, I: 1}, Kind: eg.KWrite, Loc: 1, Val: 1,
		Ctrl: []eg.EvID{rid}})
	g.CoInsert(1, 0, eg.EvID{T: 0, I: 1})
	w := eg.EvID{T: 1, I: 0}
	g.Add(eg.Event{ID: w, Kind: eg.KWrite, Loc: 0, Val: 5})
	g.CoInsert(0, 0, w)
	g.SetRF(rid, w) // branch now taken: the store is skipped

	if _, ok := Repair(p, g, 0, 0); ok {
		t.Fatal("repair must report structural divergence on a branch flip")
	}
}

func TestRepairAllRejectsValueCycle(t *testing.T) {
	// Mutual increment through rf: x' = r+1 with r reading x' — the
	// values never converge (out of thin air); RepairAll must give up.
	b := prog.NewBuilder("cycle")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	r0 := t0.Load(x)
	t0.Store(y, prog.Add(prog.R(r0), prog.Const(1)))
	t1 := b.Thread()
	r1 := t1.Load(y)
	t1.Store(x, prog.Add(prog.R(r1), prog.Const(1)))
	p := b.MustBuild()

	g := eg.NewGraph(2, 2)
	g.Add(eg.Event{ID: eg.EvID{T: 0, I: 0}, Kind: eg.KRead, Loc: 0})
	g.Add(eg.Event{ID: eg.EvID{T: 0, I: 1}, Kind: eg.KWrite, Loc: 1, Val: 1, Data: []eg.EvID{{T: 0, I: 0}}})
	g.CoInsert(1, 0, eg.EvID{T: 0, I: 1})
	g.Add(eg.Event{ID: eg.EvID{T: 1, I: 0}, Kind: eg.KRead, Loc: 1})
	g.Add(eg.Event{ID: eg.EvID{T: 1, I: 1}, Kind: eg.KWrite, Loc: 0, Val: 1, Data: []eg.EvID{{T: 1, I: 0}}})
	g.CoInsert(0, 0, eg.EvID{T: 1, I: 1})
	// The rf cycle: r0 reads T1's write, r1 reads T0's write.
	g.SetRF(eg.EvID{T: 0, I: 0}, eg.EvID{T: 1, I: 1})
	g.SetRF(eg.EvID{T: 1, I: 0}, eg.EvID{T: 0, I: 1})

	if RepairAll(p, g, 0) {
		t.Fatal("RepairAll must reject a diverging value cycle")
	}
}

// TestActionKindStrings pins the human-readable action names used in
// panics and the explorer's unhandled-action message.
func TestActionKindStrings(t *testing.T) {
	want := map[ActionKind]string{
		ActLoad: "load", ActStore: "store", ActCAS: "cas", ActFAdd: "fadd",
		ActXchg: "xchg", ActFence: "fence", ActDone: "done",
		ActBlocked: "blocked", ActError: "error",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if ActionKind(99).String() != "ActionKind(99)" {
		t.Errorf("unknown kind = %q", ActionKind(99).String())
	}
}

// TestRMWOutcome covers the three RMW flavours and the non-RMW panic.
func TestRMWOutcome(t *testing.T) {
	if k, v := rmwOutcome(Action{Kind: ActCAS, Old: 1, New: 5}, 1); k != eg.KUpdate || v != 5 {
		t.Errorf("successful CAS: %v %d", k, v)
	}
	if k, _ := rmwOutcome(Action{Kind: ActCAS, Old: 1, New: 5}, 2); k != eg.KRead {
		t.Errorf("failed CAS must demote to a read: %v", k)
	}
	if k, v := rmwOutcome(Action{Kind: ActFAdd, Val: 3}, 4); k != eg.KUpdate || v != 7 {
		t.Errorf("fadd: %v %d", k, v)
	}
	if k, v := rmwOutcome(Action{Kind: ActXchg, Val: 9}, 4); k != eg.KUpdate || v != 9 {
		t.Errorf("xchg: %v %d", k, v)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-RMW action must panic")
			}
		}()
		rmwOutcome(Action{Kind: ActLoad}, 0)
	}()
}
