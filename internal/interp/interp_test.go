package interp

import (
	"reflect"
	"strings"
	"testing"

	"hmc/internal/eg"
	"hmc/internal/prog"
)

// addAction is a test helper that adds the event an action describes,
// reading from the given write (for reads) and placing writes co-last.
func addAction(g *eg.Graph, t int, a Action, rfFrom eg.EvID) eg.EvID {
	id := eg.EvID{T: t, I: g.ThreadLen(t)}
	var readVal int64
	if a.Reads() {
		readVal = g.ValueOf(rfFrom)
	}
	ev := a.MakeEvent(id, readVal)
	g.Add(ev)
	if ev.Kind.IsWrite() {
		g.CoInsert(ev.Loc, len(g.CoLoc(ev.Loc)), id)
	}
	if ev.Kind.IsRead() {
		g.SetRF(id, rfFrom)
	}
	return id
}

func mpProgram(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("MP")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t0.Store(y, prog.Const(1))
	t1 := b.Thread()
	ry := t1.Load(y)
	rx := t1.Load(x)
	b.Exists("ry=1 && rx=0", func(fs prog.FinalState) bool {
		return fs.Reg(1, ry) == 1 && fs.Reg(1, rx) == 0
	})
	return b.MustBuild()
}

func TestNextFirstActionIsStore(t *testing.T) {
	p := mpProgram(t)
	g := eg.NewGraph(2, 2)
	a := Next(p, g, 0, 0)
	if a.Kind != ActStore || a.Loc != 0 || a.Val != 1 {
		t.Fatalf("first action = %+v, want store x=1", a)
	}
	if len(a.Addr)+len(a.Data)+len(a.Ctrl) != 0 {
		t.Fatalf("constant store must have no deps: %+v", a)
	}
}

func TestNextConsumesAndAdvances(t *testing.T) {
	p := mpProgram(t)
	g := eg.NewGraph(2, 2)
	a := Next(p, g, 0, 0)
	addAction(g, 0, a, eg.EvID{})
	a = Next(p, g, 0, 0)
	if a.Kind != ActStore || a.Loc != 1 {
		t.Fatalf("second action = %+v, want store y", a)
	}
	addAction(g, 0, a, eg.EvID{})
	a = Next(p, g, 0, 0)
	if a.Kind != ActDone {
		t.Fatalf("third action = %+v, want done", a)
	}
}

func TestLoadObservesRfValue(t *testing.T) {
	p := mpProgram(t)
	g := eg.NewGraph(2, 2)
	addAction(g, 0, Next(p, g, 0, 0), eg.EvID{}) // W x=1
	wy := addAction(g, 0, Next(p, g, 0, 0), eg.EvID{})

	a := Next(p, g, 1, 0)
	if a.Kind != ActLoad || a.Loc != 1 {
		t.Fatalf("reader action = %+v, want load y", a)
	}
	addAction(g, 1, a, wy) // ry reads W y=1
	a = Next(p, g, 1, 0)
	if a.Kind != ActLoad || a.Loc != 0 {
		t.Fatalf("second reader action = %+v, want load x", a)
	}
	addAction(g, 1, a, eg.InitID(0)) // rx reads init
	a = Next(p, g, 1, 0)
	if a.Kind != ActDone {
		t.Fatalf("reader not done: %+v", a)
	}
	if a.Regs[0] != 1 || a.Regs[1] != 0 {
		t.Fatalf("final regs = %v, want [1 0]", a.Regs)
	}
}

func TestDataDependencyTracked(t *testing.T) {
	// r = load x; store y = r+1  → store has data dep on the load.
	b := prog.NewBuilder("data")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	r := t0.Load(x)
	t0.Store(y, prog.Add(prog.R(r), prog.Const(1)))
	p := b.MustBuild()

	g := eg.NewGraph(1, 2)
	load := addAction(g, 0, Next(p, g, 0, 0), eg.InitID(0))
	a := Next(p, g, 0, 0)
	if a.Kind != ActStore || a.Val != 1 {
		t.Fatalf("store action = %+v", a)
	}
	if len(a.Data) != 1 || a.Data[0] != load {
		t.Fatalf("data deps = %v, want [%v]", a.Data, load)
	}
	if len(a.Ctrl) != 0 || len(a.Addr) != 0 {
		t.Fatalf("unexpected extra deps: %+v", a)
	}
}

func TestAddrDependencyTracked(t *testing.T) {
	// r = load x; s = load *(r) → second load has addr dep on first.
	b := prog.NewBuilder("addr")
	_ = b.Loc("x")
	_ = b.Loc("y")
	t0 := b.Thread()
	r := t0.Load(0)
	t0.LoadAt(prog.R(r))
	p := b.MustBuild()

	g := eg.NewGraph(1, 2)
	load := addAction(g, 0, Next(p, g, 0, 0), eg.InitID(0))
	a := Next(p, g, 0, 0)
	if a.Kind != ActLoad || a.Loc != 0 { // r = 0 → address 0
		t.Fatalf("second load = %+v", a)
	}
	if len(a.Addr) != 1 || a.Addr[0] != load {
		t.Fatalf("addr deps = %v, want [%v]", a.Addr, load)
	}
}

func TestCtrlDependencyAccumulates(t *testing.T) {
	// r = load x; if r goto L; store y=1; L: store z=1
	// Both stores carry a ctrl dep on the load (accumulation at joins).
	b := prog.NewBuilder("ctrl")
	x, y, z := b.Loc("x"), b.Loc("y"), b.Loc("z")
	_ = x
	t0 := b.Thread()
	r := t0.Load(x)
	j := t0.BranchFwd(prog.R(r))
	t0.Store(y, prog.Const(1))
	t0.Patch(j)
	t0.Store(z, prog.Const(1))
	p := b.MustBuild()

	g := eg.NewGraph(1, 3)
	load := addAction(g, 0, Next(p, g, 0, 0), eg.InitID(0)) // reads 0: branch not taken
	a := Next(p, g, 0, 0)
	if a.Loc != y {
		t.Fatalf("expected store y next, got %+v", a)
	}
	if len(a.Ctrl) != 1 || a.Ctrl[0] != load {
		t.Fatalf("store y ctrl deps = %v", a.Ctrl)
	}
	addAction(g, 0, a, eg.EvID{})
	a = Next(p, g, 0, 0)
	if a.Loc != z {
		t.Fatalf("expected store z, got %+v", a)
	}
	if len(a.Ctrl) != 1 || a.Ctrl[0] != load {
		t.Fatalf("store z ctrl deps = %v (ctrl must persist past the join)", a.Ctrl)
	}
}

func TestBranchTakenSkips(t *testing.T) {
	b := prog.NewBuilder("taken")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	r := t0.Load(x)
	j := t0.BranchFwd(prog.Eq(prog.R(r), prog.Const(0)))
	t0.Store(y, prog.Const(99))
	t0.Patch(j)
	p := b.MustBuild()

	g := eg.NewGraph(1, 2)
	addAction(g, 0, Next(p, g, 0, 0), eg.InitID(0)) // reads 0 → branch taken
	a := Next(p, g, 0, 0)
	if a.Kind != ActDone {
		t.Fatalf("branch taken must skip store, got %+v", a)
	}
}

func TestCASActionAndMakeEvent(t *testing.T) {
	b := prog.NewBuilder("cas")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.CAS(x, prog.Const(0), prog.Const(5))
	p := b.MustBuild()

	g := eg.NewGraph(1, 1)
	a := Next(p, g, 0, 0)
	if a.Kind != ActCAS || a.Old != 0 || a.New != 5 {
		t.Fatalf("cas action = %+v", a)
	}
	id := eg.EvID{T: 0, I: 0}
	evOK := a.MakeEvent(id, 0)
	if evOK.Kind != eg.KUpdate || evOK.Val != 5 {
		t.Fatalf("successful CAS event = %v", evOK)
	}
	evFail := a.MakeEvent(id, 3)
	if evFail.Kind != eg.KRead {
		t.Fatalf("failed CAS event = %v", evFail)
	}
}

func TestCASSuccessFlagOnReplay(t *testing.T) {
	b := prog.NewBuilder("casflag")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	v, succ := t0.CAS(x, prog.Const(0), prog.Const(5))
	_ = v
	t0.Store(y, prog.R(succ))
	p := b.MustBuild()

	g := eg.NewGraph(1, 2)
	a := Next(p, g, 0, 0)
	u := addAction(g, 0, a, eg.InitID(0)) // reads 0 → success
	a = Next(p, g, 0, 0)
	if a.Kind != ActStore || a.Val != 1 {
		t.Fatalf("store after cas = %+v, want value 1 (success)", a)
	}
	if len(a.Data) != 1 || a.Data[0] != u {
		t.Fatalf("success flag must carry the update's taint: %v", a.Data)
	}
}

func TestFAddAndXchgEvents(t *testing.T) {
	b := prog.NewBuilder("rmw")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.FAdd(x, prog.Const(3))
	t0.Xchg(x, prog.Const(9))
	p := b.MustBuild()

	g := eg.NewGraph(1, 1)
	a := Next(p, g, 0, 0)
	if a.Kind != ActFAdd || a.Val != 3 {
		t.Fatalf("fadd action = %+v", a)
	}
	ev := a.MakeEvent(eg.EvID{T: 0, I: 0}, 10)
	if ev.Kind != eg.KUpdate || ev.Val != 13 {
		t.Fatalf("fadd event = %v, want U x=13", ev)
	}
	addAction(g, 0, a, eg.InitID(0))
	a = Next(p, g, 0, 0)
	if a.Kind != ActXchg || a.Val != 9 {
		t.Fatalf("xchg action = %+v", a)
	}
	ev = a.MakeEvent(eg.EvID{T: 0, I: 1}, 3)
	if ev.Kind != eg.KUpdate || ev.Val != 9 {
		t.Fatalf("xchg event = %v, want U x=9", ev)
	}
}

func TestAssumeBlocks(t *testing.T) {
	b := prog.NewBuilder("assume")
	x := b.Loc("x")
	t0 := b.Thread()
	r := t0.Load(x)
	t0.Assume(prog.Eq(prog.R(r), prog.Const(1)))
	t0.Store(x, prog.Const(2))
	p := b.MustBuild()

	g := eg.NewGraph(1, 1)
	addAction(g, 0, Next(p, g, 0, 0), eg.InitID(0)) // reads 0
	a := Next(p, g, 0, 0)
	if a.Kind != ActBlocked || !strings.Contains(a.Msg, "assume") {
		t.Fatalf("action = %+v, want blocked(assume)", a)
	}
}

func TestAssertFails(t *testing.T) {
	b := prog.NewBuilder("assert")
	x := b.Loc("x")
	t0 := b.Thread()
	r := t0.Load(x)
	t0.Assert(prog.Ne(prog.R(r), prog.Const(0)), "x must not be zero")
	p := b.MustBuild()

	g := eg.NewGraph(1, 1)
	addAction(g, 0, Next(p, g, 0, 0), eg.InitID(0))
	a := Next(p, g, 0, 0)
	if a.Kind != ActError || !strings.Contains(a.Msg, "zero") {
		t.Fatalf("action = %+v, want error", a)
	}
}

func TestStepBound(t *testing.T) {
	b := prog.NewBuilder("spin")
	_ = b.Loc("x")
	t0 := b.Thread()
	top := t0.Here()
	t0.Jmp(top)
	p := b.MustBuild()

	g := eg.NewGraph(1, 1)
	a := Next(p, g, 0, 10)
	if a.Kind != ActBlocked || !strings.Contains(a.Msg, "bound") {
		t.Fatalf("action = %+v, want blocked(step bound)", a)
	}
}

func TestBadAddressIsError(t *testing.T) {
	b := prog.NewBuilder("wild")
	x := b.Loc("x")
	t0 := b.Thread()
	r := t0.Load(x)
	t0.LoadAt(prog.Add(prog.R(r), prog.Const(100)))
	p := b.MustBuild()

	g := eg.NewGraph(1, 1)
	addAction(g, 0, Next(p, g, 0, 0), eg.InitID(0))
	a := Next(p, g, 0, 0)
	if a.Kind != ActError || !strings.Contains(a.Msg, "out of range") {
		t.Fatalf("action = %+v, want address error", a)
	}
}

func TestReplayDeterminism(t *testing.T) {
	p := mpProgram(t)
	g := eg.NewGraph(2, 2)
	addAction(g, 0, Next(p, g, 0, 0), eg.EvID{})
	wy := addAction(g, 0, Next(p, g, 0, 0), eg.EvID{})
	addAction(g, 1, Next(p, g, 1, 0), wy)
	a1 := Next(p, g, 1, 0)
	a2 := Next(p, g, 1, 0)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("replay nondeterministic: %+v vs %+v", a1, a2)
	}
}

func TestReplayMismatchPanics(t *testing.T) {
	p := mpProgram(t)
	g := eg.NewGraph(2, 2)
	// Corrupt graph: thread 0's first event claims W x=7, program says 1.
	g.Add(eg.Event{ID: eg.EvID{T: 0, I: 0}, Kind: eg.KWrite, Loc: 0, Val: 7})
	g.CoInsert(0, 0, eg.EvID{T: 0, I: 0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected replay mismatch panic")
		}
	}()
	Next(p, g, 0, 0)
}

func TestFinalState(t *testing.T) {
	p := mpProgram(t)
	g := eg.NewGraph(2, 2)
	addAction(g, 0, Next(p, g, 0, 0), eg.EvID{})
	wy := addAction(g, 0, Next(p, g, 0, 0), eg.EvID{})
	addAction(g, 1, Next(p, g, 1, 0), wy)
	addAction(g, 1, Next(p, g, 1, 0), eg.InitID(0))
	fs := FinalState(p, g, 0)
	if fs.Mem[0] != 1 || fs.Mem[1] != 1 {
		t.Fatalf("final mem = %v, want [1 1]", fs.Mem)
	}
	if fs.Reg(1, 0) != 1 || fs.Reg(1, 1) != 0 {
		t.Fatalf("final regs t1 = %v, want [1 0]", fs.Regs[1])
	}
	if p.Exists == nil || !p.Exists(fs) {
		t.Fatal("exists predicate must hold for the weak outcome")
	}
}

func TestUnionIDs(t *testing.T) {
	a := []eg.EvID{{T: 0, I: 1}, {T: 0, I: 3}}
	b := []eg.EvID{{T: 0, I: 0}, {T: 0, I: 3}}
	u := unionIDs(a, b)
	want := []eg.EvID{{T: 0, I: 0}, {T: 0, I: 1}, {T: 0, I: 3}}
	if !reflect.DeepEqual(u, want) {
		t.Fatalf("unionIDs = %v, want %v", u, want)
	}
	if got := unionIDs(nil, nil); len(got) != 0 {
		t.Fatalf("empty union = %v", got)
	}
}
