package memmodel

import (
	"hmc/internal/eg"
)

// RA is the release/acquire fragment of C11 with every access treated as
// release (writes) or acquire (reads): happens-before hb = (po ∪ rf)⁺ must
// be acyclic (which forbids load-buffering outright — the language-model
// restriction that HMC lifts for hardware models), and coherence is
// strengthened to irreflexive(hb ; eco).
//
// RA is included as the strongest *language-level* contrast model: its
// porf-acyclicity is exactly the assumption that GenMC-style exploration
// relies on and that hardware models violate.
type RA struct{}

// Name implements Model.
func (RA) Name() string { return "ra" }

// Consistent implements Model.
func (RA) Consistent(v *eg.View) bool {
	if !baseConsistent(v) {
		return false
	}
	hb := v.Po().Union(v.Rf()).TransitiveClose()
	if !hb.Irreflexive() {
		return false
	}
	return hb.Compose(v.Eco()).Irreflexive()
}

// Relaxed is the weakest model: coherence and atomicity only. It admits
// out-of-thin-air behaviour and exists as the permissiveness bound for
// monotonicity tests (everything any other model allows, Relaxed allows).
type Relaxed struct{}

// Name implements Model.
func (Relaxed) Name() string { return "relaxed" }

// Consistent implements Model.
func (Relaxed) Consistent(v *eg.View) bool { return baseConsistent(v) }
