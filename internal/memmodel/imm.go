package memmodel

import (
	"hmc/internal/eg"
	"hmc/internal/relation"
)

// IMM is "IMM-lite": a dependency-aware hardware memory model in the style
// of IMM (Podkopaev, Lahav, Vafeiadis, POPL'19) and the POWER/ARM models it
// abstracts. It is the model the HMC reproduction targets: unlike SC/TSO/
// PSO/RA it permits (po ∪ rf) cycles — load buffering without dependencies
// is observable — while syntactic dependencies and barriers restore order.
//
// Axioms (beyond shared coherence and atomicity):
//
//	ppo  := [R];(addr ∪ data ∪ ctrl∩(→W) ∪ rfi)⁺      (dependency chains,
//	        extended through store-to-load forwarding, always starting at
//	        a read: loads create order, stores do not)
//	bob  := po;[Ffull];po                              (full barrier)
//	      ∪ po;[Flw];po minus W→R                      (lwsync-like)
//	      ∪ [R];po;[Fld];po                            (load barrier)
//	hb   := (ppo ∪ bob ∪ rfe)⁺
//	prop := acyclic(co ∪ hb)                           (no thin air +
//	        barrier-ordered store propagation, e.g. 2+2W+lwsync)
//	obs  := irreflexive(hb ; eco)                      (observation /
//	        fenced or dependency-ordered message passing)
//	psc  := acyclic([Ffull];(po ∪ po;eco;po);[Ffull])  (full fences are
//	        SC fences: restores SB and IRIW)
//
// The model is POWER-flavoured (non-multi-copy-atomic): IRIW with only
// dependencies or lwsync remains allowed; IRIW with full fences is
// forbidden via psc. The litmus corpus in internal/litmus pins this
// behaviour matrix.
type IMM struct{}

// Name implements Model.
func (IMM) Name() string { return "imm" }

// Consistent implements Model.
func (IMM) Consistent(v *eg.View) bool {
	if !baseConsistent(v) {
		return false
	}
	hb := immHB(v)
	if !v.Co().Union(hb).Acyclic() {
		return false // thin air or barrier-ordered propagation violation
	}
	if !hb.Compose(v.Eco()).Irreflexive() {
		return false // observation violation (e.g. fenced message passing)
	}
	return pscAcyclic(v)
}

// immHB computes (ppo ∪ bob ∪ rfe)⁺.
func immHB(v *eg.View) *relation.Rel {
	ord := immPPO(v).UnionWith(immBob(v)).UnionWith(v.Rfe())
	return ord.TransitiveClose()
}

// immPPO returns the dependency-induced preserved program order:
// [R];(addr ∪ data ∪ ctrl-to-writes ∪ rfi)⁺.
func immPPO(v *eg.View) *relation.Rel {
	isWrite := func(e eg.Event) bool { return e.Kind.IsWrite() }
	isRead := func(e eg.Event) bool { return e.Kind.IsRead() }

	step := v.DepAddr().Union(v.DepData())
	step.UnionWith(v.Restrict(v.DepCtrl(), nil, isWrite))
	step.UnionWith(v.Rfi())
	chains := step.TransitiveClose()
	return v.Restrict(chains, isRead, nil)
}

// immBob returns the barrier-ordered-before relation.
func immBob(v *eg.View) *relation.Rel {
	isRead := func(e eg.Event) bool { return e.Kind.IsRead() }

	bob := v.SeqFence(eg.FenceFull)
	lw := v.SeqFence(eg.FenceLW)
	lw.MinusWith(v.Restrict(lw,
		func(e eg.Event) bool { return e.Kind == eg.KWrite },
		func(e eg.Event) bool { return e.Kind == eg.KRead }))
	bob.UnionWith(lw)
	bob.UnionWith(v.Restrict(v.SeqFence(eg.FenceLD), isRead, nil))
	return bob
}

// pscAcyclic checks the SC-fence axiom: the order
// [Ffull];(po ∪ po;eco;po);[Ffull] between full fences must be acyclic.
func pscAcyclic(v *eg.View) bool {
	isFull := func(e eg.Event) bool { return e.Kind == eg.KFence && e.Fence == eg.FenceFull }
	fences := v.FilterIdx(isFull)
	if len(fences) < 2 {
		return true
	}
	po := v.Po()
	poEcoPo := po.Compose(v.Eco()).Compose(po)
	step := po.Union(poEcoPo)
	psc := v.Empty()
	for _, f := range fences {
		for _, g := range fences {
			if f != g && step.Has(f, g) {
				psc.Add(f, g)
			}
		}
	}
	return psc.Acyclic()
}
