package memmodel

import (
	"hmc/internal/eg"
	"hmc/internal/relation"
)

// This file defines the store-buffer family: SC, x86-TSO and PSO, all of
// the form coherence ∧ atomicity ∧ acyclic(ghb) where ghb = ppo ∪ rfe ∪
// co ∪ fr and ppo is program order with the model's buffered pairs
// removed (and restored across fences and atomic updates, which drain the
// buffer).

// SC is sequential consistency: acyclic(po ∪ rf ∪ co ∪ fr).
type SC struct{}

// Name implements Model.
func (SC) Name() string { return "sc" }

// Consistent implements Model.
func (SC) Consistent(v *eg.View) bool {
	if !baseConsistent(v) {
		return false
	}
	ghb := v.Po().Union(v.Rf()).UnionWith(v.Co()).UnionWith(v.Fr())
	return ghb.Acyclic()
}

// TSO is x86-TSO/SPARC-TSO: stores may be delayed past later loads of
// other locations (W→R relaxed); full fences and atomic updates drain the
// store buffer; loads may forward from the local buffer (rfi excluded from
// the global-happens-before check).
type TSO struct{}

// Name implements Model.
func (TSO) Name() string { return "tso" }

// Consistent implements Model.
func (TSO) Consistent(v *eg.View) bool {
	if !baseConsistent(v) {
		return false
	}
	ppo := storeBufferPPO(v, false)
	ghb := ppo.UnionWith(v.Rfe()).UnionWith(v.Co()).UnionWith(v.Fr())
	return ghb.Acyclic()
}

// PSO additionally relaxes W→W (per-location store buffers): stores to
// different locations may commit out of order. lw fences restore W→W;
// full fences and updates restore everything.
type PSO struct{}

// Name implements Model.
func (PSO) Name() string { return "pso" }

// Consistent implements Model.
func (PSO) Consistent(v *eg.View) bool {
	if !baseConsistent(v) {
		return false
	}
	ppo := storeBufferPPO(v, true)
	ghb := ppo.UnionWith(v.Rfe()).UnionWith(v.Co()).UnionWith(v.Fr())
	return ghb.Acyclic()
}

// storeBufferPPO computes preserved program order for the store-buffer
// models. Starting from po it removes W→R pairs (and, when relaxWW is
// set, W→W pairs to different locations), then restores pairs separated
// by a sufficient fence or an atomic update:
//
//   - full fences and updates restore both W→R and W→W;
//   - lw fences restore W→W only.
//
// Updates count as both reads and writes and are never buffered
// (x86 locked instructions and SPARC atomics are fencing).
func storeBufferPPO(v *eg.View, relaxWW bool) *relation.Rel {
	po := v.Po()
	ppo := po.Clone()

	isPlainWrite := func(e eg.Event) bool { return e.Kind == eg.KWrite }
	isPlainRead := func(e eg.Event) bool { return e.Kind == eg.KRead && !e.Excl }

	// Separators: a full fence or an update restores all order; an lw
	// fence restores store-store order.
	sepFull := make([]bool, v.N)
	sepWW := make([]bool, v.N)
	for i, e := range v.Events {
		if e.Kind == eg.KUpdate || (e.Kind == eg.KRead && e.Excl) ||
			(e.Kind == eg.KFence && e.Fence == eg.FenceFull) {
			sepFull[i] = true
			sepWW[i] = true
		}
		if e.Kind == eg.KFence && e.Fence == eg.FenceLW {
			sepWW[i] = true
		}
	}
	separated := func(a, b int, sep []bool) bool {
		for m := 0; m < v.N; m++ {
			if sep[m] && po.Has(a, m) && po.Has(m, b) {
				return true
			}
		}
		return false
	}

	po.Pairs(func(a, b int) {
		ea, eb := v.Events[a], v.Events[b]
		// Fences are not global-order nodes themselves: they only restore
		// access pairs around them. Leaving fence-incident po edges in ghb
		// would smuggle W→R order through the fence node.
		if ea.Kind == eg.KFence || eb.Kind == eg.KFence {
			ppo.Remove(a, b)
			return
		}
		if ea.ID.IsInit() {
			return // init writes are globally visible from the start
		}
		switch {
		case isPlainWrite(ea) && isPlainRead(eb):
			if !separated(a, b, sepFull) {
				ppo.Remove(a, b)
			}
		case relaxWW && isPlainWrite(ea) && eb.Kind == eg.KWrite && ea.Loc != eb.Loc:
			if !separated(a, b, sepWW) {
				ppo.Remove(a, b)
			}
		}
	})
	return ppo
}
