package memmodel

import (
	"hmc/internal/eg"
	"hmc/internal/relation"
)

// This file defines the store-buffer family: SC, x86-TSO and PSO, all of
// the form coherence ∧ atomicity ∧ acyclic(ghb) where ghb = ppo ∪ rfe ∪
// co ∪ fr and ppo is program order with the model's buffered pairs
// removed (and restored across fences and atomic updates, which drain the
// buffer).
//
// The predicates stream their edge sets into a pooled DeltaRel instead of
// materializing unions: TSO and PSO load the co ∪ fr edges shared by the
// coherence and ghb axioms once, snapshot, decide coherence, roll back and
// decide ghb on top of the same prefix. The from-scratch formulations live
// in legacy.go.

// SC is sequential consistency: acyclic(po ∪ rf ∪ co ∪ fr).
type SC struct{}

// Name implements Model.
func (SC) Name() string { return "sc" }

// Consistent implements Model.
func (SC) Consistent(v *eg.View) bool {
	if !Atomic(v) {
		return false
	}
	// Coherence's edge set (po-loc ∪ rf ∪ co ∪ fr) is a subset of SC's
	// ghb (po-loc ⊆ po), so a single acyclicity pass decides both axioms.
	d := getDelta(v.N)
	ok := d.AddRelAcyclic(v.Po()) && d.AddRelAcyclic(v.Rf()) &&
		d.AddRelAcyclic(v.Co()) && d.AddRelAcyclic(v.Fr())
	putDelta(d)
	return ok
}

// TSO is x86-TSO/SPARC-TSO: stores may be delayed past later loads of
// other locations (W→R relaxed); full fences and atomic updates drain the
// store buffer; loads may forward from the local buffer (rfi excluded from
// the global-happens-before check).
type TSO struct{}

// Name implements Model.
func (TSO) Name() string { return "tso" }

// Consistent implements Model.
func (TSO) Consistent(v *eg.View) bool { return storeBufferConsistent(v, false) }

// PSO additionally relaxes W→W (per-location store buffers): stores to
// different locations may commit out of order. lw fences restore W→W;
// full fences and updates restore everything.
type PSO struct{}

// Name implements Model.
func (PSO) Name() string { return "pso" }

// Consistent implements Model.
func (PSO) Consistent(v *eg.View) bool { return storeBufferConsistent(v, true) }

// storeBufferConsistent decides atomicity ∧ coherence ∧ acyclic(ppo ∪ rfe
// ∪ co ∪ fr) with one DeltaRel: the co ∪ fr edges common to the two
// acyclicity axioms are loaded once and shared via snapshot/rollback.
func storeBufferConsistent(v *eg.View, relaxWW bool) bool {
	if !Atomic(v) {
		return false
	}
	d := getDelta(v.N)
	defer putDelta(d)
	if !d.AddRelAcyclic(v.Co()) || !d.AddRelAcyclic(v.Fr()) {
		return false // a cycle inside co ∪ fr already violates coherence
	}
	mark := d.Snapshot()
	if !d.AddRelAcyclic(v.PoLoc()) || !d.AddRelAcyclic(v.Rf()) {
		return false // incoherent
	}
	d.Rollback(mark)
	return d.AddRelAcyclic(storeBufferPPO(v, relaxWW)) && d.AddRelAcyclic(v.Rfe())
}

// storeBufferPPO computes preserved program order for the store-buffer
// models. Starting from po it removes W→R pairs (and, when relaxWW is
// set, W→W pairs to different locations), then restores pairs separated
// by a sufficient fence or an atomic update:
//
//   - full fences and updates restore both W→R and W→W;
//   - lw fences restore W→W only.
//
// Updates count as both reads and writes and are never buffered
// (x86 locked instructions and SPARC atomics are fencing).
//
// Separation is decided in O(1) per pair from prefix counts of separator
// events: the view lays each thread out contiguously in dense order, so
// the separators strictly between same-thread events a < b are exactly
// those in the dense interval (a, b).
func storeBufferPPO(v *eg.View, relaxWW bool) *relation.Rel {
	po := v.Po()
	ppo := po.Clone()

	isPlainWrite := func(e *eg.Event) bool { return e.Kind == eg.KWrite }
	isPlainRead := func(e *eg.Event) bool { return e.Kind == eg.KRead && !e.Excl }

	// pFull[i] / pWW[i] = number of full / store-store separators among
	// Events[0..i).
	pFull := make([]int, v.N+1)
	pWW := make([]int, v.N+1)
	for i := range v.Events {
		e := &v.Events[i]
		f, w := 0, 0
		if e.Kind == eg.KUpdate || (e.Kind == eg.KRead && e.Excl) ||
			(e.Kind == eg.KFence && e.Fence == eg.FenceFull) {
			f, w = 1, 1
		}
		if e.Kind == eg.KFence && e.Fence == eg.FenceLW {
			w = 1
		}
		pFull[i+1] = pFull[i] + f
		pWW[i+1] = pWW[i] + w
	}
	separated := func(a, b int, prefix []int) bool {
		return prefix[b] > prefix[a+1]
	}

	po.Pairs(func(a, b int) {
		ea, eb := &v.Events[a], &v.Events[b]
		// Fences are not global-order nodes themselves: they only restore
		// access pairs around them. Leaving fence-incident po edges in ghb
		// would smuggle W→R order through the fence node.
		if ea.Kind == eg.KFence || eb.Kind == eg.KFence {
			ppo.Remove(a, b)
			return
		}
		if ea.ID.IsInit() {
			return // init writes are globally visible from the start
		}
		switch {
		case isPlainWrite(ea) && isPlainRead(eb):
			if !separated(a, b, pFull) {
				ppo.Remove(a, b)
			}
		case relaxWW && isPlainWrite(ea) && eb.Kind == eg.KWrite && ea.Loc != eb.Loc:
			if !separated(a, b, pWW) {
				ppo.Remove(a, b)
			}
		}
	})
	return ppo
}
