// Package memmodel defines axiomatic memory consistency models over
// execution-graph views. A model is a predicate on graphs; the explorer in
// internal/core is parametric in the model, which is exactly the shape of
// the HMC algorithm ("model checking for hardware memory models"): the same
// exploration works for SC, x86-TSO, PSO, release/acquire, plain coherence,
// and the dependency-aware hardware model IMM-lite.
//
// All models share two axioms:
//
//   - coherence (SC-per-location): acyclic(po-loc ∪ rf ∪ co ∪ fr);
//   - atomicity: an atomic update is coherence-immediately after the write
//     it reads from (no intervening write, and no two updates reading the
//     same write).
//
// Each model then adds its own ordering axiom; see the per-model files.
package memmodel

import (
	"fmt"
	"sync"

	"hmc/internal/eg"
	"hmc/internal/relation"
)

// Model is a memory consistency model: a predicate over execution graphs.
// Consistency must be *extensible-monotone*: every restriction of a
// consistent graph to a per-thread-prefix-closed subset (with co projected)
// is consistent. All acyclicity-style axioms have this property, which is
// what makes prefix pruning in the explorer sound and complete.
type Model interface {
	// Name returns the model's short name (e.g. "tso").
	Name() string
	// Consistent reports whether the graph of v is allowed by the model.
	Consistent(v *eg.View) bool
}

// deltaPool recycles incremental-acyclicity checkers across consistency
// checks: getDelta hands out a DeltaRel reset to the requested universe,
// putDelta returns it. The per-check cost is then the streamed edges, not
// allocation.
var deltaPool = sync.Pool{New: func() any { return relation.NewDelta(0) }}

func getDelta(n int) *relation.DeltaRel {
	d := deltaPool.Get().(*relation.DeltaRel)
	d.Reset(n)
	return d
}

func putDelta(d *relation.DeltaRel) { deltaPool.Put(d) }

// Coherent reports SC-per-location: acyclic(po-loc ∪ rf ∪ co ∪ fr).
// Every model includes this axiom. The union is never materialized: the
// edge sets stream into an incremental acyclicity checker that rejects at
// the first cycle-closing edge (LegacyCoherent keeps the from-scratch
// formulation).
func Coherent(v *eg.View) bool {
	d := getDelta(v.N)
	ok := d.AddRelAcyclic(v.Co()) && d.AddRelAcyclic(v.Fr()) &&
		d.AddRelAcyclic(v.PoLoc()) && d.AddRelAcyclic(v.Rf())
	putDelta(d)
	return ok
}

// Atomic reports RMW atomicity: each update sits coherence-immediately
// after its rf source. This also rules out two updates reading from the
// same write.
func Atomic(v *eg.View) bool {
	g := v.G
	for i := range v.Events {
		ev := &v.Events[i]
		if ev.Kind != eg.KUpdate {
			continue
		}
		w, ok := g.RF(ev.ID)
		if !ok {
			continue // incomplete read; nothing to check yet
		}
		if g.CoIndex(ev.Loc, ev.ID) != g.CoIndex(ev.Loc, w)+1 {
			return false
		}
	}
	return true
}

// baseConsistent bundles the two shared axioms.
func baseConsistent(v *eg.View) bool { return Atomic(v) && Coherent(v) }

// Registry maps model names to constructors, for CLIs and the harness.
var registry = map[string]func() Model{
	"sc":      func() Model { return SC{} },
	"tso":     func() Model { return TSO{} },
	"pso":     func() Model { return PSO{} },
	"arm":     func() Model { return ARM{} },
	"ra":      func() Model { return RA{} },
	"rc11":    func() Model { return RC11{} },
	"relaxed": func() Model { return Relaxed{} },
	"imm":     func() Model { return IMM{} },
}

// ByName returns the model registered under name.
func ByName(name string) (Model, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("memmodel: unknown model %q (have %v)", name, Names())
	}
	return ctor(), nil
}

// Names returns the registered model names in a fixed order, strongest
// first (arm is ARMv8-lite: multi-copy-atomic hardware; imm is IMM-lite:
// POWER-flavoured, non-multi-copy-atomic).
func Names() []string {
	return []string{"sc", "tso", "pso", "arm", "ra", "rc11", "relaxed", "imm"}
}

// All returns one instance of every registered model, strongest first.
func All() []Model {
	out := make([]Model, 0, len(registry))
	for _, n := range Names() {
		m, _ := ByName(n)
		out = append(out, m)
	}
	return out
}
