package memmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hmc/internal/eg"
)

// gb is a tiny execution-graph builder for tests. Writes are appended
// co-last by default; co can be rearranged with coOrder.
type gb struct {
	t *testing.T
	g *eg.Graph
}

func newGB(t *testing.T, threads, locs int) *gb {
	t.Helper()
	return &gb{t: t, g: eg.NewGraph(threads, locs)}
}

func (b *gb) next(t int) eg.EvID { return eg.EvID{T: t, I: b.g.ThreadLen(t)} }

// W appends a write of val to loc on thread t (co-last).
func (b *gb) W(t int, loc eg.Loc, val int64, deps ...dep) eg.EvID {
	id := b.next(t)
	ev := eg.Event{ID: id, Kind: eg.KWrite, Loc: loc, Val: val}
	applyDeps(&ev, deps)
	b.g.Add(ev)
	b.g.CoInsert(loc, len(b.g.CoLoc(loc)), id)
	return id
}

// R appends a read of loc on thread t reading from w.
func (b *gb) R(t int, loc eg.Loc, w eg.EvID, deps ...dep) eg.EvID {
	id := b.next(t)
	ev := eg.Event{ID: id, Kind: eg.KRead, Loc: loc}
	applyDeps(&ev, deps)
	b.g.Add(ev)
	b.g.SetRF(id, w)
	return id
}

// U appends an atomic update reading from w and writing val, placed
// co-immediately after w.
func (b *gb) U(t int, loc eg.Loc, w eg.EvID, val int64, deps ...dep) eg.EvID {
	id := b.next(t)
	ev := eg.Event{ID: id, Kind: eg.KUpdate, Loc: loc, Val: val}
	applyDeps(&ev, deps)
	b.g.Add(ev)
	b.g.CoInsert(loc, b.g.CoIndex(loc, w)+1, id)
	b.g.SetRF(id, w)
	return id
}

// F appends a fence of the given kind on thread t.
func (b *gb) F(t int, kind eg.FenceKind) eg.EvID {
	id := b.next(t)
	b.g.Add(eg.Event{ID: id, Kind: eg.KFence, Fence: kind})
	return id
}

type dep struct {
	kind byte // 'a', 'd', 'c'
	on   eg.EvID
}

func addrDep(on eg.EvID) dep { return dep{'a', on} }
func dataDep(on eg.EvID) dep { return dep{'d', on} }
func ctrlDep(on eg.EvID) dep { return dep{'c', on} }

func applyDeps(ev *eg.Event, deps []dep) {
	for _, d := range deps {
		switch d.kind {
		case 'a':
			ev.Addr = append(ev.Addr, d.on)
		case 'd':
			ev.Data = append(ev.Data, d.on)
		case 'c':
			ev.Ctrl = append(ev.Ctrl, d.on)
		}
	}
}

func (b *gb) view() *eg.View {
	if err := b.g.CheckWellFormed(); err != nil {
		b.t.Fatalf("test graph ill-formed: %v", err)
	}
	return eg.NewView(b.g)
}

// verdicts maps model name → allowed?
type verdicts map[string]bool

func checkVerdicts(t *testing.T, name string, v *eg.View, want verdicts) {
	t.Helper()
	for _, m := range All() {
		expect, ok := want[m.Name()]
		if !ok {
			continue
		}
		if got := m.Consistent(v); got != expect {
			t.Errorf("%s under %s: allowed=%v, want %v", name, m.Name(), got, expect)
		}
	}
}

const (
	x = eg.Loc(0)
	y = eg.Loc(1)
)

// ---- Store buffering ----------------------------------------------------

func sbGraph(t *testing.T, fence eg.FenceKind) *eg.View {
	b := newGB(t, 2, 2)
	b.W(0, x, 1)
	if fence != eg.FenceNone {
		b.F(0, fence)
	}
	b.R(0, y, eg.InitID(y))
	b.W(1, y, 1)
	if fence != eg.FenceNone {
		b.F(1, fence)
	}
	b.R(1, x, eg.InitID(x))
	return b.view()
}

func TestSB(t *testing.T) {
	checkVerdicts(t, "SB", sbGraph(t, eg.FenceNone), verdicts{
		"sc": false, "tso": true, "pso": true, "ra": true, "imm": true, "relaxed": true,
	})
}

func TestSBFullFence(t *testing.T) {
	checkVerdicts(t, "SB+ff", sbGraph(t, eg.FenceFull), verdicts{
		"sc": false, "tso": false, "pso": false, "imm": false, "relaxed": true,
	})
}

func TestSBLwFence(t *testing.T) {
	// lwsync does not order W→R: SB stays allowed on TSO-like? lw fences
	// are no-ops for the W→R pair in every model here.
	checkVerdicts(t, "SB+lw", sbGraph(t, eg.FenceLW), verdicts{
		"tso": true, "pso": true, "imm": true,
	})
}

// ---- Message passing ----------------------------------------------------

type mpOpt struct {
	writerFence, readerFence eg.FenceKind
	readerDep                bool // addr dep from first read to second
}

func mpGraph(t *testing.T, o mpOpt) *eg.View {
	b := newGB(t, 2, 2)
	b.W(0, x, 1)
	if o.writerFence != eg.FenceNone {
		b.F(0, o.writerFence)
	}
	wy := b.W(0, y, 1)
	ry := b.R(1, y, wy)
	if o.readerFence != eg.FenceNone {
		b.F(1, o.readerFence)
	}
	if o.readerDep {
		b.R(1, x, eg.InitID(x), addrDep(ry))
	} else {
		b.R(1, x, eg.InitID(x))
	}
	return b.view()
}

func TestMP(t *testing.T) {
	checkVerdicts(t, "MP", mpGraph(t, mpOpt{}), verdicts{
		"sc": false, "tso": false, "pso": true, "ra": false, "imm": true, "relaxed": true,
	})
}

func TestMPFullFences(t *testing.T) {
	checkVerdicts(t, "MP+ff+ff", mpGraph(t, mpOpt{writerFence: eg.FenceFull, readerFence: eg.FenceFull}), verdicts{
		"pso": false, "imm": false, "relaxed": true,
	})
}

func TestMPLwLd(t *testing.T) {
	checkVerdicts(t, "MP+lw+ld", mpGraph(t, mpOpt{writerFence: eg.FenceLW, readerFence: eg.FenceLD}), verdicts{
		"pso": false, "imm": false,
	})
}

func TestMPLwAddr(t *testing.T) {
	checkVerdicts(t, "MP+lw+addr", mpGraph(t, mpOpt{writerFence: eg.FenceLW, readerDep: true}), verdicts{
		"imm": false,
	})
}

func TestMPOnlyWriterFence(t *testing.T) {
	// Fence on the writer alone does not fix MP on IMM (reader may
	// reorder its reads).
	checkVerdicts(t, "MP+lw+-", mpGraph(t, mpOpt{writerFence: eg.FenceLW}), verdicts{
		"imm": true,
	})
}

func TestMPOnlyReaderDep(t *testing.T) {
	// Dependency on the reader alone does not fix MP on IMM/PSO (writer
	// stores may commit out of order).
	checkVerdicts(t, "MP+-+addr", mpGraph(t, mpOpt{readerDep: true}), verdicts{
		"imm": true, "pso": true, "tso": false,
	})
}

// ---- Load buffering ------------------------------------------------------

func lbGraph(t *testing.T, deps bool) *eg.View {
	// T0: r1 = x (reads T1's write); y = 1
	// T1: r2 = y (reads T0's write); x = 1
	// rf edges cross forwards, so add all events first, then bind rf.
	b := newGB(t, 2, 2)
	b.g.Add(eg.Event{ID: eg.EvID{T: 0, I: 0}, Kind: eg.KRead, Loc: x})
	wy := eg.Event{ID: eg.EvID{T: 0, I: 1}, Kind: eg.KWrite, Loc: y, Val: 1}
	if deps {
		wy.Data = []eg.EvID{{T: 0, I: 0}}
	}
	b.g.Add(wy)
	b.g.CoInsert(y, 0, wy.ID)
	b.g.Add(eg.Event{ID: eg.EvID{T: 1, I: 0}, Kind: eg.KRead, Loc: y})
	wx := eg.Event{ID: eg.EvID{T: 1, I: 1}, Kind: eg.KWrite, Loc: x, Val: 1}
	if deps {
		wx.Data = []eg.EvID{{T: 1, I: 0}}
	}
	b.g.Add(wx)
	b.g.CoInsert(x, 0, wx.ID)
	b.g.SetRF(eg.EvID{T: 0, I: 0}, wx.ID)
	b.g.SetRF(eg.EvID{T: 1, I: 0}, wy.ID)
	return b.view()
}

func TestLB(t *testing.T) {
	checkVerdicts(t, "LB", lbGraph(t, false), verdicts{
		// The HMC headline: hardware models allow LB without deps;
		// porf-acyclic models forbid it.
		"sc": false, "tso": false, "pso": false, "ra": false, "imm": true, "relaxed": true,
	})
}

func TestLBDeps(t *testing.T) {
	checkVerdicts(t, "LB+deps", lbGraph(t, true), verdicts{
		"imm": false, "relaxed": true, // relaxed admits thin air
	})
}

// ---- 2+2W ----------------------------------------------------------------

func twoPlusTwoW(t *testing.T, fence eg.FenceKind) *eg.View {
	b := newGB(t, 2, 2)
	// Bad outcome x=1 ∧ y=1: each thread's *first* write is co-last.
	// T0: Wx=1; Wy=2   T1: Wy=1; Wx=2   co: Wx2 -> Wx1, Wy2 -> Wy1.
	g := b.g
	a := eg.Event{ID: eg.EvID{T: 0, I: 0}, Kind: eg.KWrite, Loc: x, Val: 1}
	g.Add(a)
	g.CoInsert(x, 0, a.ID)
	if fence != eg.FenceNone {
		b.F(0, fence)
	}
	bb := eg.Event{ID: eg.EvID{T: 0, I: g.ThreadLen(0)}, Kind: eg.KWrite, Loc: y, Val: 2}
	g.Add(bb)
	g.CoInsert(y, 0, bb.ID)
	c := eg.Event{ID: eg.EvID{T: 1, I: 0}, Kind: eg.KWrite, Loc: y, Val: 1}
	g.Add(c)
	g.CoInsert(y, 1, c.ID) // co: Wy2(b) -> Wy1(c): y final = 1
	if fence != eg.FenceNone {
		b.F(1, fence)
	}
	d := eg.Event{ID: eg.EvID{T: 1, I: g.ThreadLen(1)}, Kind: eg.KWrite, Loc: x, Val: 2}
	g.Add(d)
	g.CoInsert(x, 0, d.ID) // co: Wx2(d) -> Wx1(a): x final = 1
	return b.view()
}

func Test2Plus2W(t *testing.T) {
	checkVerdicts(t, "2+2W", twoPlusTwoW(t, eg.FenceNone), verdicts{
		"sc": false, "tso": false, "pso": true, "ra": true, "imm": true,
	})
}

func Test2Plus2WLw(t *testing.T) {
	checkVerdicts(t, "2+2W+lw", twoPlusTwoW(t, eg.FenceLW), verdicts{
		"pso": false, "imm": false,
	})
}

// ---- IRIW ------------------------------------------------------------------

func iriwGraph(t *testing.T, fence eg.FenceKind, useDeps bool) *eg.View {
	b := newGB(t, 4, 2)
	wx := b.W(0, x, 1)
	wy := b.W(1, y, 1)
	r1 := b.R(2, x, wx)
	if fence != eg.FenceNone {
		b.F(2, fence)
	}
	if useDeps {
		b.R(2, y, eg.InitID(y), addrDep(r1))
	} else {
		b.R(2, y, eg.InitID(y))
	}
	r3 := b.R(3, y, wy)
	if fence != eg.FenceNone {
		b.F(3, fence)
	}
	if useDeps {
		b.R(3, x, eg.InitID(x), addrDep(r3))
	} else {
		b.R(3, x, eg.InitID(x))
	}
	return b.view()
}

func TestIRIW(t *testing.T) {
	checkVerdicts(t, "IRIW", iriwGraph(t, eg.FenceNone, false), verdicts{
		"sc": false, "tso": false, "pso": false, "ra": true, "imm": true,
	})
}

func TestIRIWFullFences(t *testing.T) {
	checkVerdicts(t, "IRIW+ff", iriwGraph(t, eg.FenceFull, false), verdicts{
		"imm": false, "ra": true, // RA ignores fences
	})
}

func TestIRIWAddrDeps(t *testing.T) {
	// POWER-flavoured non-multi-copy-atomicity: deps alone do not forbid IRIW.
	checkVerdicts(t, "IRIW+addrs", iriwGraph(t, eg.FenceNone, true), verdicts{
		"imm": true,
	})
}

// ---- Coherence -------------------------------------------------------------

func TestCoRR(t *testing.T) {
	// T0: Wx=1   T1: Rx=1; Rx=0 — reading new then old is forbidden
	// everywhere, including Relaxed.
	b := newGB(t, 2, 1)
	w := b.W(0, x, 1)
	b.R(1, x, w)
	b.R(1, x, eg.InitID(x))
	v := b.view()
	for _, m := range All() {
		if m.Consistent(v) {
			t.Errorf("CoRR allowed under %s", m.Name())
		}
	}
}

func TestCoWWAgainstPo(t *testing.T) {
	// T0: Wx=1; Wx=2 with co inverted — forbidden everywhere.
	b := newGB(t, 1, 1)
	g := b.g
	w1 := eg.Event{ID: eg.EvID{T: 0, I: 0}, Kind: eg.KWrite, Loc: x, Val: 1}
	w2 := eg.Event{ID: eg.EvID{T: 0, I: 1}, Kind: eg.KWrite, Loc: x, Val: 2}
	g.Add(w1)
	g.Add(w2)
	g.CoInsert(x, 0, w2.ID)
	g.CoInsert(x, 1, w1.ID) // co: w2 -> w1, against po
	v := b.view()
	for _, m := range All() {
		if m.Consistent(v) {
			t.Errorf("CoWW-inverted allowed under %s", m.Name())
		}
	}
}

func TestCoherentPositive(t *testing.T) {
	b := newGB(t, 2, 2)
	w := b.W(0, x, 1)
	b.R(1, x, w)
	v := b.view()
	for _, m := range All() {
		if !m.Consistent(v) {
			t.Errorf("trivial graph rejected by %s", m.Name())
		}
	}
}

// ---- Atomicity ---------------------------------------------------------------

func TestAtomicityViolation(t *testing.T) {
	// Two updates reading from init: both cannot be co-immediately after it.
	b := newGB(t, 2, 1)
	g := b.g
	u1 := eg.Event{ID: eg.EvID{T: 0, I: 0}, Kind: eg.KUpdate, Loc: x, Val: 1}
	u2 := eg.Event{ID: eg.EvID{T: 1, I: 0}, Kind: eg.KUpdate, Loc: x, Val: 2}
	g.Add(u1)
	g.CoInsert(x, 0, u1.ID)
	g.Add(u2)
	g.CoInsert(x, 1, u2.ID)
	g.SetRF(u1.ID, eg.InitID(x))
	g.SetRF(u2.ID, eg.InitID(x)) // u2 also claims init: violates atomicity
	v := b.view()
	for _, m := range All() {
		if m.Consistent(v) {
			t.Errorf("atomicity violation allowed under %s", m.Name())
		}
	}
}

func TestAtomicityChainOK(t *testing.T) {
	// u1 reads init, u2 reads u1: a correct fetch-add chain.
	b := newGB(t, 2, 1)
	u1 := b.U(0, x, eg.InitID(x), 1)
	b.U(1, x, u1, 2)
	v := b.view()
	for _, m := range All() {
		if !m.Consistent(v) {
			t.Errorf("valid RMW chain rejected by %s", m.Name())
		}
	}
}

// ---- Registry ------------------------------------------------------------------

func TestByName(t *testing.T) {
	for _, n := range Names() {
		m, err := ByName(n)
		if err != nil || m.Name() != n {
			t.Errorf("ByName(%q) = %v, %v", n, m, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) must fail")
	}
	if len(All()) != len(Names()) {
		t.Error("All() size mismatch")
	}
}

// ---- Model-strength monotonicity (property test) ---------------------------------

// randomView builds a random well-formed execution graph.
func randomView(rng *rand.Rand) *eg.View {
	threads := 2 + rng.Intn(2)
	locs := 1 + rng.Intn(2)
	g := eg.NewGraph(threads, locs)
	type pending struct{ id eg.EvID }
	var reads []pending
	var readsByThread [][]eg.EvID
	readsByThread = make([][]eg.EvID, threads)
	for t := 0; t < threads; t++ {
		n := rng.Intn(4)
		for i := 0; i < n; i++ {
			id := eg.EvID{T: t, I: i}
			loc := eg.Loc(rng.Intn(locs))
			switch rng.Intn(5) {
			case 0, 1: // write
				ev := eg.Event{ID: id, Kind: eg.KWrite, Loc: loc, Val: int64(rng.Intn(3) + 1)}
				if len(readsByThread[t]) > 0 && rng.Intn(2) == 0 {
					ev.Data = []eg.EvID{readsByThread[t][rng.Intn(len(readsByThread[t]))]}
				}
				g.Add(ev)
				g.CoInsert(loc, rng.Intn(len(g.CoLoc(loc))+1), id)
			case 2, 3: // read
				ev := eg.Event{ID: id, Kind: eg.KRead, Loc: loc}
				if len(readsByThread[t]) > 0 && rng.Intn(3) == 0 {
					ev.Addr = []eg.EvID{readsByThread[t][rng.Intn(len(readsByThread[t]))]}
				}
				g.Add(ev)
				reads = append(reads, pending{id})
				readsByThread[t] = append(readsByThread[t], id)
			default: // fence
				kinds := []eg.FenceKind{eg.FenceFull, eg.FenceLW, eg.FenceLD}
				g.Add(eg.Event{ID: id, Kind: eg.KFence, Fence: kinds[rng.Intn(3)]})
			}
		}
	}
	for _, p := range reads {
		loc := g.Event(p.id).Loc
		ws := g.WritesTo(loc)
		g.SetRF(p.id, ws[rng.Intn(len(ws))])
	}
	return eg.NewView(g)
}

func TestPropModelStrengthMonotone(t *testing.T) {
	implications := []struct{ strong, weak string }{
		{"sc", "tso"},
		{"tso", "pso"},
		{"pso", "arm"},
		{"arm", "imm"},
		{"sc", "ra"},
		{"sc", "rc11"},
		{"rc11", "relaxed"},
		{"sc", "imm"},
		{"tso", "relaxed"},
		{"pso", "relaxed"},
		{"ra", "relaxed"},
		{"imm", "relaxed"},
	}
	models := map[string]Model{}
	for _, n := range Names() {
		m, _ := ByName(n)
		models[n] = m
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomView(rng)
		for _, imp := range implications {
			if models[imp.strong].Consistent(v) && !models[imp.weak].Consistent(v) {
				t.Logf("graph consistent under %s but not %s:\n%s", imp.strong, imp.weak, v.G)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPropCoherentImpliedByAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomView(rng)
		for _, m := range All() {
			if m.Consistent(v) && !Coherent(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// ---- ARMv8-lite: the multi-copy-atomicity divide -------------------------

func TestARMAllowsLoadBuffering(t *testing.T) {
	v := lbGraph(t, false)
	m, _ := ByName("arm")
	if !m.Consistent(v) {
		t.Fatal("plain LB must be allowed under arm (hardware load buffering)")
	}
	if m.Consistent(lbGraph(t, true)) {
		t.Fatal("LB with data dependencies must be forbidden under arm")
	}
}

func TestARMMultiCopyAtomicity(t *testing.T) {
	m, _ := ByName("arm")
	imm, _ := ByName("imm")
	// IRIW with address dependencies: the MCA divide.
	v := iriwGraph(t, eg.FenceNone, true)
	if m.Consistent(v) {
		t.Error("IRIW+addrs must be forbidden under arm (multi-copy-atomic)")
	}
	if !imm.Consistent(v) {
		t.Error("IRIW+addrs must stay allowed under imm (non-MCA)")
	}
	// Plain IRIW: readers unordered locally — allowed on both.
	plain := iriwGraph(t, eg.FenceNone, false)
	if !m.Consistent(plain) {
		t.Error("plain IRIW must be allowed under arm")
	}
	// Full fences forbid it on both.
	if m.Consistent(iriwGraph(t, eg.FenceFull, false)) {
		t.Error("IRIW+ffs must be forbidden under arm")
	}
}

func TestARMClassicVerdicts(t *testing.T) {
	checkVerdicts(t, "SB/arm", sbGraph(t, eg.FenceNone), verdicts{"arm": true})
	checkVerdicts(t, "SB+ff/arm", sbGraph(t, eg.FenceFull), verdicts{"arm": false})
	checkVerdicts(t, "MP/arm", mpGraph(t, mpOpt{}), verdicts{"arm": true})
	checkVerdicts(t, "MP+lw+addr/arm", mpGraph(t, mpOpt{writerFence: eg.FenceLW, readerDep: true}), verdicts{"arm": false})
	checkVerdicts(t, "2+2W/arm", twoPlusTwoW(t, eg.FenceNone), verdicts{"arm": true})
	checkVerdicts(t, "2+2W+lw/arm", twoPlusTwoW(t, eg.FenceLW), verdicts{"arm": false})
}

// ---- RC11: per-access memory orders ---------------------------------------

// mpModes builds the MP graph with the given modes on the flag store/load.
func mpModes(t *testing.T, wm, rm eg.Mode) *eg.View {
	b := newGB(t, 2, 2)
	b.W(0, x, 1)
	id := b.next(0)
	ev := eg.Event{ID: id, Kind: eg.KWrite, Loc: y, Val: 1, Mode: wm}
	b.g.Add(ev)
	b.g.CoInsert(y, len(b.g.CoLoc(y)), id)
	rid := b.next(1)
	b.g.Add(eg.Event{ID: rid, Kind: eg.KRead, Loc: y, Mode: rm})
	b.g.SetRF(rid, id)
	b.R(1, x, eg.InitID(x))
	return b.view()
}

func TestRC11MessagePassing(t *testing.T) {
	m, _ := ByName("rc11")
	if m.Consistent(mpModes(t, eg.ModeRel, eg.ModeAcq)) {
		t.Error("MP+rel+acq must be forbidden under rc11 (synchronises-with)")
	}
	if !m.Consistent(mpModes(t, eg.ModeRel, eg.ModeRlx)) {
		t.Error("MP+rel+rlx must be allowed under rc11 (no acquire)")
	}
	if !m.Consistent(mpModes(t, eg.ModeRlx, eg.ModeAcq)) {
		t.Error("MP+rlx+acq must be allowed under rc11 (no release)")
	}
	if !m.Consistent(mpModes(t, eg.ModePlain, eg.ModePlain)) {
		t.Error("plain MP must be allowed under rc11 (relaxed atomics)")
	}
	// Hardware ignores annotations entirely.
	imm, _ := ByName("imm")
	if !imm.Consistent(mpModes(t, eg.ModeRel, eg.ModeAcq)) {
		t.Error("rel/acq annotations must mean nothing to imm")
	}
}

func TestRC11ForbidsLoadBuffering(t *testing.T) {
	m, _ := ByName("rc11")
	if m.Consistent(lbGraph(t, false)) {
		t.Error("rc11 must forbid every po∪rf cycle (its out-of-thin-air fix)")
	}
}

func TestRC11SeqCstSB(t *testing.T) {
	// SB with SC accesses everywhere is forbidden; with relaxed, allowed.
	build := func(mode eg.Mode) *eg.View {
		b := newGB(t, 2, 2)
		g := b.g
		add := func(tid int, kind eg.Kind, loc eg.Loc, val int64) eg.EvID {
			id := eg.EvID{T: tid, I: g.ThreadLen(tid)}
			g.Add(eg.Event{ID: id, Kind: kind, Loc: loc, Val: val, Mode: mode})
			if kind.IsWrite() {
				g.CoInsert(loc, len(g.CoLoc(loc)), id)
			}
			return id
		}
		add(0, eg.KWrite, x, 1)
		r0 := add(0, eg.KRead, y, 0)
		g.SetRF(r0, eg.InitID(y))
		add(1, eg.KWrite, y, 1)
		r1 := add(1, eg.KRead, x, 0)
		g.SetRF(r1, eg.InitID(x))
		return b.view()
	}
	m, _ := ByName("rc11")
	if m.Consistent(build(eg.ModeSC)) {
		t.Error("SB with seq_cst accesses must be forbidden under rc11")
	}
	if !m.Consistent(build(eg.ModeRlx)) {
		t.Error("SB with relaxed accesses must be allowed under rc11")
	}
}

func TestRC11ReleaseSequence(t *testing.T) {
	// Release store, relaxed RMW chained on it, acquire read of the RMW:
	// synchronisation flows through the release sequence.
	b := newGB(t, 3, 2)
	g := b.g
	b.W(0, x, 1)
	wy := eg.EvID{T: 0, I: 1}
	g.Add(eg.Event{ID: wy, Kind: eg.KWrite, Loc: y, Val: 1, Mode: eg.ModeRel})
	g.CoInsert(y, 0, wy)
	u := eg.EvID{T: 1, I: 0}
	g.Add(eg.Event{ID: u, Kind: eg.KUpdate, Loc: y, Val: 2, Mode: eg.ModeRlx, Excl: true})
	g.CoInsert(y, 1, u)
	g.SetRF(u, wy)
	ry := eg.EvID{T: 2, I: 0}
	g.Add(eg.Event{ID: ry, Kind: eg.KRead, Loc: y, Mode: eg.ModeAcq})
	g.SetRF(ry, u)
	rx := eg.EvID{T: 2, I: 1}
	g.Add(eg.Event{ID: rx, Kind: eg.KRead, Loc: x})
	g.SetRF(rx, eg.InitID(x))
	v := b.view()

	m, _ := ByName("rc11")
	if m.Consistent(v) {
		t.Error("acquire of an RMW in the release sequence must synchronise (stale x read forbidden)")
	}
}

func TestModeHelpers(t *testing.T) {
	if !eg.ModeAcq.Acquire() || eg.ModeAcq.Release() {
		t.Error("acq semantics wrong")
	}
	if !eg.ModeRel.Release() || eg.ModeRel.Acquire() {
		t.Error("rel semantics wrong")
	}
	if !eg.ModeSC.Acquire() || !eg.ModeSC.Release() {
		t.Error("sc must be both")
	}
	if eg.ModePlain.Acquire() || eg.ModeRlx.Release() {
		t.Error("plain/rlx must be neither")
	}
	for _, m := range []eg.Mode{eg.ModePlain, eg.ModeRlx, eg.ModeAcq, eg.ModeRel, eg.ModeAcqRel, eg.ModeSC} {
		if m.String() == "" {
			t.Error("missing Mode string")
		}
	}
}
