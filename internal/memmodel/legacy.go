package memmodel

import (
	"hmc/internal/eg"
	"hmc/internal/relation"
)

// This file preserves the reference implementations of the store-buffer
// family: materialize the union of the axiom's edge sets, then run a full
// from-scratch Acyclic(). The production predicates in hardware_sb.go now
// stream the same edges into an incrementally maintained DeltaRel; the
// copies here are the oracle the property tests pin that rewrite against,
// and the A/B baseline the harness (T17) and the explorer's LegacyChecks
// option run.

// legacyModel wraps a reference predicate under the original model name,
// so the explorer's counters and memo keys are indistinguishable between
// paths.
type legacyModel struct {
	name string
	fn   func(*eg.View) bool
}

// Name implements Model.
func (m legacyModel) Name() string { return m.name }

// Consistent implements Model.
func (m legacyModel) Consistent(v *eg.View) bool { return m.fn(v) }

// Legacy returns the reference implementation of m. Models whose
// consistency code was not rewritten for the incremental checker (their
// ordering axioms are shared by both paths) are returned unchanged.
func Legacy(m Model) Model {
	switch m.Name() {
	case "sc":
		return legacyModel{"sc", legacySCConsistent}
	case "tso":
		return legacyModel{"tso", func(v *eg.View) bool { return legacyStoreBuffer(v, false) }}
	case "pso":
		return legacyModel{"pso", func(v *eg.View) bool { return legacyStoreBuffer(v, true) }}
	}
	return m
}

// LegacyCoherent is the reference SC-per-location check:
// acyclic(po-loc ∪ rf ∪ co ∪ fr) over a materialized union.
func LegacyCoherent(v *eg.View) bool {
	r := v.PoLoc().Union(v.Rf()).UnionWith(v.Co()).UnionWith(v.Fr())
	return r.Acyclic()
}

func legacyBaseConsistent(v *eg.View) bool { return Atomic(v) && LegacyCoherent(v) }

func legacySCConsistent(v *eg.View) bool {
	if !legacyBaseConsistent(v) {
		return false
	}
	ghb := v.Po().Union(v.Rf()).UnionWith(v.Co()).UnionWith(v.Fr())
	return ghb.Acyclic()
}

func legacyStoreBuffer(v *eg.View, relaxWW bool) bool {
	if !legacyBaseConsistent(v) {
		return false
	}
	ppo := legacyStoreBufferPPO(v, relaxWW)
	ghb := ppo.UnionWith(v.Rfe()).UnionWith(v.Co()).UnionWith(v.Fr())
	return ghb.Acyclic()
}

// legacyStoreBufferPPO is storeBufferPPO with the original quadratic
// separator scan (every candidate pair walks all events looking for an
// intervening fence/update). It makes no assumption about the view's
// dense layout.
func legacyStoreBufferPPO(v *eg.View, relaxWW bool) *relation.Rel {
	po := v.Po()
	ppo := po.Clone()

	isPlainWrite := func(e eg.Event) bool { return e.Kind == eg.KWrite }
	isPlainRead := func(e eg.Event) bool { return e.Kind == eg.KRead && !e.Excl }

	sepFull := make([]bool, v.N)
	sepWW := make([]bool, v.N)
	for i, e := range v.Events {
		if e.Kind == eg.KUpdate || (e.Kind == eg.KRead && e.Excl) ||
			(e.Kind == eg.KFence && e.Fence == eg.FenceFull) {
			sepFull[i] = true
			sepWW[i] = true
		}
		if e.Kind == eg.KFence && e.Fence == eg.FenceLW {
			sepWW[i] = true
		}
	}
	separated := func(a, b int, sep []bool) bool {
		for m := 0; m < v.N; m++ {
			if sep[m] && po.Has(a, m) && po.Has(m, b) {
				return true
			}
		}
		return false
	}

	po.Pairs(func(a, b int) {
		ea, eb := v.Events[a], v.Events[b]
		if ea.Kind == eg.KFence || eb.Kind == eg.KFence {
			ppo.Remove(a, b)
			return
		}
		if ea.ID.IsInit() {
			return
		}
		switch {
		case isPlainWrite(ea) && isPlainRead(eb):
			if !separated(a, b, sepFull) {
				ppo.Remove(a, b)
			}
		case relaxWW && isPlainWrite(ea) && eb.Kind == eg.KWrite && ea.Loc != eb.Loc:
			if !separated(a, b, sepWW) {
				ppo.Remove(a, b)
			}
		}
	})
	return ppo
}
