package memmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hmc/internal/eg"
)

// randExecGraph builds a random well-formed execution graph: a few threads
// of writes, reads, updates and fences over one or two locations, with
// random rf sources and random coherence placement. Graphs need not be
// consistent under any model — the equivalence tests only compare verdicts.
func randExecGraph(rng *rand.Rand) *eg.Graph {
	threads := 1 + rng.Intn(3)
	locs := 1 + rng.Intn(2)
	g := eg.NewGraph(threads, locs)
	writers := make([][]eg.EvID, locs)
	for l := range writers {
		writers[l] = []eg.EvID{eg.InitID(eg.Loc(l))}
	}
	modes := []eg.Mode{eg.ModePlain, eg.ModeRlx, eg.ModeAcq, eg.ModeRel, eg.ModeAcqRel, eg.ModeSC}
	for t := 0; t < threads; t++ {
		n := rng.Intn(4)
		for i := 0; i < n; i++ {
			id := eg.EvID{T: t, I: i}
			l := eg.Loc(rng.Intn(locs))
			mode := modes[rng.Intn(len(modes))]
			switch rng.Intn(6) {
			case 0, 1:
				g.Add(eg.Event{ID: id, Kind: eg.KWrite, Loc: l, Val: int64(rng.Intn(3)), Mode: mode})
				g.CoInsert(l, rng.Intn(len(g.CoLoc(l))+1), id)
				writers[l] = append(writers[l], id)
			case 2, 3:
				g.Add(eg.Event{ID: id, Kind: eg.KRead, Loc: l, Mode: mode, Excl: rng.Intn(8) == 0})
				ws := writers[l]
				g.SetRF(id, ws[rng.Intn(len(ws))])
			case 4:
				w := writers[l][rng.Intn(len(writers[l]))]
				g.Add(eg.Event{ID: id, Kind: eg.KUpdate, Loc: l, Val: int64(rng.Intn(3)), Mode: mode})
				g.CoInsert(l, g.CoIndex(l, w)+1, id)
				g.SetRF(id, w)
				writers[l] = append(writers[l], id)
			default:
				kind := eg.FenceFull
				if rng.Intn(2) == 0 {
					kind = eg.FenceLW
				}
				g.Add(eg.Event{ID: id, Kind: eg.KFence, Fence: kind})
			}
		}
	}
	return g
}

// TestPropStreamingMatchesLegacy pins every model's streaming predicate
// against its materialized-union reference: same verdict on arbitrary
// well-formed graphs, for both heap-backed and pooled views.
func TestPropStreamingMatchesLegacy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randExecGraph(rng)
		if err := g.CheckWellFormed(); err != nil {
			t.Fatalf("generator produced ill-formed graph: %v", err)
		}
		v := eg.NewView(g)
		pv := eg.GetView(g)
		defer eg.PutView(pv)
		if Coherent(v) != LegacyCoherent(v) {
			return false
		}
		for _, m := range All() {
			want := Legacy(m).Consistent(v)
			if m.Consistent(v) != want {
				return false
			}
			if m.Consistent(pv) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPropStoreBufferPPOMatchesLegacy pins the O(1) prefix-count separator
// test against the reference quadratic scan, pair for pair.
func TestPropStoreBufferPPOMatchesLegacy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randExecGraph(rng)
		v := eg.NewView(g)
		for _, relaxWW := range []bool{false, true} {
			if !storeBufferPPO(v, relaxWW).Equal(legacyStoreBufferPPO(v, relaxWW)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestLegacyNamesMatch checks Legacy preserves model identity: the wrapped
// model must report the same name (the explorer's memo keys and counters
// depend on it), and unrewritten models pass through untouched.
func TestLegacyNamesMatch(t *testing.T) {
	for _, m := range All() {
		lm := Legacy(m)
		if lm.Name() != m.Name() {
			t.Errorf("Legacy(%s).Name() = %s", m.Name(), lm.Name())
		}
	}
	if _, wrapped := Legacy(RC11{}).(legacyModel); wrapped {
		t.Error("rc11 has no dedicated legacy build and must pass through")
	}
	if _, wrapped := Legacy(SC{}).(legacyModel); !wrapped {
		t.Error("sc must map to its reference implementation")
	}
}
