package memmodel

import (
	"hmc/internal/eg"
	"hmc/internal/relation"
)

// ARM is "ARMv8-lite": a dependency-aware, *multi-copy-atomic* hardware
// model in the style of the revised ARMv8 axiomatic model (Pulte et al.,
// POPL'18). Where IMM-lite is POWER-flavoured (writes may become visible
// to different observers at different times), ARMv8 guarantees that all
// other observers see writes in a single order: the *ordered-before*
// relation threads external communication (rfe, coe, fre) directly
// through the thread-local preserved order, and must be acyclic.
//
// Axioms (beyond shared coherence and atomicity):
//
//	dob := addr ∪ data ∪ ctrl∩(→W), extended through store-to-load
//	       forwarding ([R];(deps ∪ rfi)⁺ as in IMM-lite)
//	bob := po;[Ffull];po                          (DMB SY)
//	     ∪ po;[Flw];po ∩ (W×W)                    (DMB ST)
//	     ∪ [R];po;[Fld];po                        (DMB LD)
//	ob  := dob ∪ bob ∪ rfe ∪ coe ∪ fre            must be acyclic
//
// Consequences, all pinned by the litmus corpus: SB/MP/LB/2+2W behave as
// on IMM-lite, but IRIW (and WRC) become forbidden as soon as the readers
// are ordered by *anything* — an address dependency suffices — because
// fre and coe participate in ob (multi-copy atomicity). On IMM-lite the
// same tests stay allowed (POWER's non-MCA behaviour).
type ARM struct{}

// Name implements Model.
func (ARM) Name() string { return "arm" }

// Consistent implements Model.
func (ARM) Consistent(v *eg.View) bool {
	if !baseConsistent(v) {
		return false
	}
	return armOB(v).Acyclic()
}

// armOB computes the ordered-before relation.
func armOB(v *eg.View) *relation.Rel {
	ob := immPPO(v) // [R];(deps ∪ rfi)⁺ — same dependency skeleton as IMM-lite
	ob.UnionWith(immBob(v))
	ob.UnionWith(v.Rfe())
	// External coherence and from-read: the multi-copy-atomic ingredients.
	ext := func(r *relation.Rel) *relation.Rel {
		return v.Restrict(r, nil, nil).Minus(sameThread(v, r))
	}
	ob.UnionWith(ext(v.Co()))
	ob.UnionWith(ext(v.Fr()))
	return ob
}

// sameThread returns the pairs of r whose endpoints share a thread
// (init events count as external to every thread).
func sameThread(v *eg.View, r *relation.Rel) *relation.Rel {
	out := v.Empty()
	r.Pairs(func(a, b int) {
		ea, eb := v.Events[a], v.Events[b]
		if !ea.ID.IsInit() && !eb.ID.IsInit() && ea.ID.T == eb.ID.T {
			out.Add(a, b)
		}
	})
	return out
}
