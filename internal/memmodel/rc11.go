package memmodel

import (
	"hmc/internal/eg"
	"hmc/internal/relation"
)

// RC11 is "RC11-lite": the language-level C/C++11 model (Lahav et al.,
// PLDI'17) over per-access memory-order annotations — the model the
// GenMC/RCMC line of checkers targets, and the contrast class to the
// hardware models in this repository: RC11 forbids all (po ∪ rf) cycles,
// so the porf-only revisit ablation (T5) is *complete* for it, while
// hardware models need HMC's dependency-aware revisits.
//
// Axioms (beyond shared coherence and atomicity):
//
//	rs(w) := {w} ∪ the chain of updates reading (transitively) from w
//	sw    := [rel writes] ; rs-rf ; [acq reads]        (synchronises-with)
//	hb    := (po ∪ sw)⁺                                (happens-before)
//	coh   := irreflexive(hb ; eco?)                    (coherence over hb)
//	porf  := acyclic(po ∪ rf)                          (no load buffering:
//	         RC11's out-of-thin-air fix)
//	psc   := acyclic over SC anchors only: accesses connect by one step
//	         of po∪rf∪co∪fr, fences extend through one po hop per side
//	         and to other fences via po;eco;po (see rc11PSC) — no closure
//	         through non-SC events, so one annotated thread buys nothing
//
// Unannotated (ModePlain) accesses behave like relaxed atomics; this
// simplification (no non-atomics, hence no data races) is documented in
// DESIGN.md.
type RC11 struct{}

// Name implements Model.
func (RC11) Name() string { return "rc11" }

// Consistent implements Model.
func (RC11) Consistent(v *eg.View) bool {
	if !baseConsistent(v) {
		return false
	}
	if !v.Po().Union(v.Rf()).Acyclic() {
		return false // porf cycle: forbidden at the language level
	}
	hb := rc11HB(v)
	if !hb.Compose(v.Eco()).Irreflexive() {
		return false
	}
	return rc11PSC(v)
}

// RC11HappensBefore exposes rc11's happens-before relation (po ∪ sw)⁺ —
// used by the data-race detector in internal/core.
func RC11HappensBefore(v *eg.View) *relation.Rel { return rc11HB(v) }

// rc11HB computes (po ∪ sw)⁺.
func rc11HB(v *eg.View) *relation.Rel {
	sw := v.Empty()
	// Release sequences: for each release-or-stronger write w, the set
	// {w} plus updates chained from it by rf.
	for a, ea := range v.Events {
		if !ea.Kind.IsWrite() || !ea.Mode.Release() {
			continue
		}
		// Walk rf chains through updates starting at a.
		inRS := map[int]bool{a: true}
		// Pop with a head cursor: re-slicing (frontier = frontier[1:])
		// keeps the backing array alive and re-slices per pop.
		frontier := []int{a}
		for head := 0; head < len(frontier); head++ {
			w := frontier[head]
			v.Rf().Successors(w, func(r int) {
				if v.Events[r].Kind == eg.KUpdate && !inRS[r] {
					inRS[r] = true
					frontier = append(frontier, r)
				}
			})
		}
		// sw edges: any acquire read reading from the release sequence.
		for w := range inRS {
			v.Rf().Successors(w, func(r int) {
				if v.Events[r].Mode.Acquire() {
					sw.Add(a, r)
				}
			})
		}
	}
	return v.Po().Union(sw).TransitiveClose()
}

// rc11PSC checks the seq_cst axiom, following RC11's anchored shape
// rather than a blanket closure: psc edges exist only *between* SC
// anchors (SC-annotated accesses, plus full fences standing in for
// seq_cst fences), never through intermediate non-SC events.
//
//   - access → access: one step of po ∪ rf ∪ co ∪ fr (the scb core;
//     including rf is a mild strengthening of scb's hb\loc that matches
//     the C11 total-order intuition and the SC-IRIW verdict);
//   - a fence anchors through one po hop on each side
//     ([F];po?;step;po?;[F], RC11's psc_base fence extension);
//   - fence → fence additionally via po;eco;po with eco transitive
//     (RC11's psc_F = hb;eco;hb — this is what makes SC fences restore
//     IRIW even though the reads themselves are relaxed).
//
// Crucially there is no transitive closure through non-anchor events:
// annotating only one thread of SB buys nothing (SB+sc+rlx stays
// observable), exactly as in RC11.
func rc11PSC(v *eg.View) bool {
	isFence := func(e eg.Event) bool {
		return e.Kind == eg.KFence && e.Fence == eg.FenceFull
	}
	isAnchor := func(e eg.Event) bool {
		return e.Mode == eg.ModeSC || isFence(e)
	}
	anchors := v.FilterIdx(isAnchor)
	if len(anchors) < 2 {
		return true
	}
	po := v.Po()
	step := po.Union(v.Rf()).UnionWith(v.Co()).UnionWith(v.Fr())
	eco := v.Eco()

	// hop returns the events an anchor reaches through its optional po
	// extension: itself, plus (for fences) its po neighbours on the
	// given side.
	hop := func(a int, succ bool) []int {
		out := []int{a}
		if !isFence(v.Events[a]) {
			return out
		}
		for x := 0; x < v.N; x++ {
			if (succ && po.Has(a, x)) || (!succ && po.Has(x, a)) {
				out = append(out, x)
			}
		}
		return out
	}

	psc := v.Empty()
	for _, a := range anchors {
		lefts := hop(a, true)
		for _, b := range anchors {
			if a == b {
				continue
			}
			rights := hop(b, false)
			connected := false
			for _, x := range lefts {
				for _, y := range rights {
					if x != y && step.Has(x, y) {
						connected = true
					}
					// psc_F: fence ; po ; eco ; po ; fence.
					if isFence(v.Events[a]) && isFence(v.Events[b]) &&
						x != a && y != b && x != y && eco.Has(x, y) {
						connected = true
					}
				}
			}
			if connected {
				psc.Add(a, b)
			}
		}
	}
	return psc.Acyclic()
}
