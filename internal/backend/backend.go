// Package backend puts the repo's independent consistency engines behind
// one pluggable interface so production verdicts can be cross-attested.
//
// Three engines implement Backend today: the GenMC-style DFS explorer
// (internal/core — the anchor, applicable to every request), the
// herd-style axiomatic enumerator (internal/axenum — exact but
// exponential, so event-count bounded) and the operational store-buffer
// explorer (internal/operational — SC/TSO/PSO machines only,
// small-program bounded). Each adapter normalizes its engine's native
// result into a Verdict whose comparable core is the *allowed-outcome
// set*: the canonical final-state keys of all complete executions, the
// same basis internal/crossval has always diffed. Two exhaustive
// verdicts for the same program and model must have identical outcome
// sets, identical exists-clause answers and compatible assertion
// results; anything else is an engine bug, which the Portfolio runner
// (portfolio.go) turns into a quarantined, reproducible artifact instead
// of a silently wrong answer.
package backend

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"time"

	"hmc/internal/prog"
)

// ErrUnsupported is the sentinel wrapped by every applicability failure.
// The portfolio treats errors.Is(err, ErrUnsupported) as "skip this
// backend", never as a job failure.
var ErrUnsupported = errors.New("request outside this backend's domain")

// UnsupportedError is a typed applicability failure: which backend
// declined and why. It wraps ErrUnsupported.
type UnsupportedError struct {
	Backend string
	Reason  string
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("backend %s: %s: %v", e.Backend, e.Reason, ErrUnsupported)
}

func (e *UnsupportedError) Unwrap() error { return ErrUnsupported }

// Unsupported builds a typed applicability failure.
func Unsupported(backend, format string, args ...any) error {
	return &UnsupportedError{Backend: backend, Reason: fmt.Sprintf(format, args...)}
}

// Spec is the normalized checking request a Backend receives: the model
// name plus the exploration bounds and analyses of a job submission.
// Bounds are DFS-shaped (they cut the exploration tree in an
// engine-specific order), so the alternate engines declare themselves
// unsupported whenever one is set — a bounded verdict is only comparable
// to itself.
type Spec struct {
	// Model is the memory-model name (memmodel registry).
	Model string
	// MaxSteps bounds per-thread replay (0 = engine default).
	MaxSteps int
	// MaxExecutions, MaxEvents and MemoryBudget are DFS resource bounds;
	// when any is set only the anchor is applicable.
	MaxExecutions int
	MaxEvents     int
	MemoryBudget  int64
	// Workers is the DFS worker count (other engines are sequential).
	Workers int
	// Symmetry enables DFS symmetry reduction. Orbit-collapsed final
	// states are a subset of the full set, so alternates skip.
	Symmetry bool
	// CheckRaces and CheckLiveness request the race/liveness analyses on
	// top of the consistency verdict. Only the DFS anchor implements
	// them.
	CheckRaces    bool
	CheckLiveness bool
}

// TriState is a three-valued analysis result: an engine that cannot
// decide (bounded run, over-approximate error detection) answers Unknown
// rather than guessing.
type TriState string

const (
	Pass    TriState = "pass"
	Fail    TriState = "fail"
	Unknown TriState = "unknown"
)

// Verdict is the normalized result every backend returns. The comparable
// core — Outcomes, Allowed, Assertion — is engine-independent; the work
// counters are engine-native and informational only.
type Verdict struct {
	// Backend and Model identify who produced the verdict for what.
	Backend string `json:"backend"`
	Model   string `json:"model"`
	// Outcomes is the sorted set of canonical final-state keys
	// (operational.FinalKey format, the crossval comparison basis) of
	// all complete executions. OutcomeDigest is a short hash of the set.
	Outcomes      []string `json:"outcomes"`
	OutcomeDigest string   `json:"outcome_digest"`
	// Allowed reports whether some complete execution satisfies the
	// program's exists clause.
	Allowed bool `json:"allowed"`
	// Assertion is the assertion-check result. The axiomatic enumerator
	// records error shapes per guessed value vector — an
	// over-approximation of reachable failures — so it answers Unknown
	// whenever it sees any; the DFS and operational engines are exact.
	Assertion       TriState `json:"assertion"`
	AssertionErrors []string `json:"assertion_errors,omitempty"`
	// Racy and Deadlock are the optional race/liveness analyses (nil =
	// not assessed by this backend).
	Racy     *bool `json:"racy,omitempty"`
	Deadlock *bool `json:"deadlock,omitempty"`
	// Exhaustive reports complete coverage. Only exhaustive verdicts are
	// comparable; a truncated or interrupted run carries partial
	// counters and an indicative (but unattestable) outcome set.
	Exhaustive      bool   `json:"exhaustive"`
	TruncatedReason string `json:"truncated_reason,omitempty"`
	Interrupted     bool   `json:"interrupted,omitempty"`
	// Work counters, engine-native: Executions is complete executions
	// (DFS), distinct consistent executions (axenum) or terminal visits
	// (operational); Candidates is the axenum rf×co candidate count.
	Executions int           `json:"executions"`
	Blocked    int           `json:"blocked"`
	States     int64         `json:"states"`
	Candidates int           `json:"candidates,omitempty"`
	Elapsed    time.Duration `json:"elapsed_ns"`
}

// Backend is one consistency engine behind the portfolio.
type Backend interface {
	// Name is the stable identifier ("dfs", "axenum", "operational").
	Name() string
	// Applicable reports whether the backend can decide spec for p:
	// nil, or an error wrapping ErrUnsupported naming the reason.
	Applicable(p *prog.Program, spec Spec) error
	// Run checks p under spec. Cancelling ctx interrupts the run and
	// returns the partial verdict with Exhaustive=false. Engine panics
	// are contained to an *core.EngineError return.
	Run(ctx context.Context, p *prog.Program, spec Spec) (*Verdict, error)
}

// FinalKey canonicalizes a final state exactly like operational.FinalKey
// and axenum's finals — the shared comparison basis.
func FinalKey(fs prog.FinalState) string {
	return fmt.Sprintf("%v|%v", fs.Mem, fs.Regs)
}

// outcomes flattens a finals map into the sorted canonical key list.
func outcomes(finals map[string]prog.FinalState) []string {
	keys := make([]string, 0, len(finals))
	for k := range finals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Digest hashes a sorted outcome list into the short attestation digest
// carried on job payloads.
func Digest(keys []string) string {
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Diff compares two exhaustive verdicts and describes the first
// disagreement ("" = agree). Non-exhaustive verdicts are incomparable
// and never disagree. Assertion answers conflict only on a hard
// Pass-vs-Fail split; Unknown is compatible with everything. Race and
// liveness flags are compared only when both sides assessed them.
func Diff(a, b *Verdict) string {
	if a == nil || b == nil || !a.Exhaustive || !b.Exhaustive {
		return ""
	}
	if a.OutcomeDigest != b.OutcomeDigest {
		return outcomeDiff(a, b)
	}
	if a.Allowed != b.Allowed {
		return fmt.Sprintf("exists clause: %s=%v vs %s=%v", a.Backend, a.Allowed, b.Backend, b.Allowed)
	}
	if (a.Assertion == Pass && b.Assertion == Fail) || (a.Assertion == Fail && b.Assertion == Pass) {
		return fmt.Sprintf("assertion: %s=%s vs %s=%s", a.Backend, a.Assertion, b.Backend, b.Assertion)
	}
	if a.Racy != nil && b.Racy != nil && *a.Racy != *b.Racy {
		return fmt.Sprintf("races: %s=%v vs %s=%v", a.Backend, *a.Racy, b.Backend, *b.Racy)
	}
	if a.Deadlock != nil && b.Deadlock != nil && *a.Deadlock != *b.Deadlock {
		return fmt.Sprintf("liveness: %s=%v vs %s=%v", a.Backend, *a.Deadlock, b.Backend, *b.Deadlock)
	}
	return ""
}

// outcomeDiff spells out an allowed-outcome set mismatch: which
// final states each side claims that the other does not.
func outcomeDiff(a, b *Verdict) string {
	inA := make(map[string]bool, len(a.Outcomes))
	for _, k := range a.Outcomes {
		inA[k] = true
	}
	inB := make(map[string]bool, len(b.Outcomes))
	for _, k := range b.Outcomes {
		inB[k] = true
	}
	var onlyA, onlyB []string
	for _, k := range a.Outcomes {
		if !inB[k] {
			onlyA = append(onlyA, k)
		}
	}
	for _, k := range b.Outcomes {
		if !inA[k] {
			onlyB = append(onlyB, k)
		}
	}
	return fmt.Sprintf("allowed-outcome sets differ: only %s: %v; only %s: %v",
		a.Backend, onlyA, b.Backend, onlyB)
}

// Names lists the registered backend names, anchor first, plus the
// "portfolio" pseudo-backend accepted by the CLIs.
func Names() []string {
	return []string{"dfs", "axenum", "operational", "portfolio"}
}

// ByName resolves a single-engine backend by name. "portfolio" is not a
// Backend — callers wanting the racing runner use NewPortfolio.
func ByName(name string) (Backend, error) {
	switch name {
	case "dfs":
		return &DFS{}, nil
	case "axenum":
		return &Axenum{}, nil
	case "operational":
		return &Operational{}, nil
	default:
		return nil, fmt.Errorf("unknown backend %q (have %v)", name, Names())
	}
}
