// The operational adapter wraps the store-buffer machines (per Abdulla
// et al., arXiv:1501.02069). Only SC, TSO and PSO have machines, and the
// memoized state space still grows combinatorially, so applicability is
// model- and size-guarded (the "TSO/PSO only, small-program bounded"
// backend of ROADMAP item 3). Memo mode makes it a complete final-state
// oracle — exactly the comparable core of a Verdict. The machine was
// written as a test oracle and panics on internal invariant violations,
// so the run is wrapped in the core.Contain boundary.

package backend

import (
	"context"
	"time"

	"hmc/internal/core"
	"hmc/internal/operational"
	"hmc/internal/prog"
)

// Default operational bounds: visible ops drive the interleaving width,
// total instructions bound loop replay.
const (
	DefaultOperationalMaxOps    = 24
	DefaultOperationalMaxInstrs = 96
)

// Operational adapts operational.Explore (Memo mode) to the Backend
// interface.
type Operational struct {
	// MaxOps and MaxInstrs override the small-program applicability
	// bounds (0 = defaults).
	MaxOps    int
	MaxInstrs int
}

func (o *Operational) Name() string { return "operational" }

func (o *Operational) maxOps() int {
	if o.MaxOps > 0 {
		return o.MaxOps
	}
	return DefaultOperationalMaxOps
}

func (o *Operational) maxInstrs() int {
	if o.MaxInstrs > 0 {
		return o.MaxInstrs
	}
	return DefaultOperationalMaxInstrs
}

// levels maps the model names that have operational machines.
var levels = map[string]operational.Level{
	"sc":  operational.SC,
	"tso": operational.TSO,
	"pso": operational.PSO,
}

func (o *Operational) Applicable(p *prog.Program, spec Spec) error {
	if _, ok := levels[spec.Model]; !ok {
		return Unsupported(o.Name(), "no store-buffer machine for model %q (have sc, tso, pso)", spec.Model)
	}
	if err := boundsGuard(o.Name(), spec); err != nil {
		return err
	}
	if n := visibleOps(p); n > o.maxOps() {
		return Unsupported(o.Name(), "program has %d visible operations, machine bound is %d", n, o.maxOps())
	}
	if n := instrCount(p); n > o.maxInstrs() {
		return Unsupported(o.Name(), "program has %d instructions, machine bound is %d", n, o.maxInstrs())
	}
	return nil
}

func (o *Operational) Run(ctx context.Context, p *prog.Program, spec Spec) (*Verdict, error) {
	level, ok := levels[spec.Model]
	if !ok {
		return nil, Unsupported(o.Name(), "no store-buffer machine for model %q", spec.Model)
	}
	start := time.Now() //hmc:nondet(verdict latency is observability, never compared or counted)
	var res *operational.Result
	err := core.Contain("backend:operational", p, spec.Model, func() error {
		var ierr error
		res, ierr = operational.Explore(p, operational.Options{
			Level:    level,
			MaxSteps: spec.MaxSteps,
			Memo:     true,
			Context:  ctx,
		})
		return ierr
	})
	if err != nil {
		return nil, err
	}
	v := &Verdict{
		Backend:         o.Name(),
		Model:           spec.Model,
		Outcomes:        outcomes(res.Finals),
		Allowed:         res.ExistsCount > 0,
		AssertionErrors: res.Errors,
		Exhaustive:      !res.Truncated && !res.Interrupted,
		Interrupted:     res.Interrupted,
		Executions:      res.Traces,
		Blocked:         res.Blocked,
		States:          int64(res.States),
		Elapsed:         time.Since(start),
	}
	if res.Truncated {
		v.TruncatedReason = "max-traces"
	}
	v.OutcomeDigest = Digest(v.Outcomes)
	switch {
	case len(res.Errors) > 0:
		v.Assertion = Fail // machine errors are reachable by construction
	case v.Exhaustive:
		v.Assertion = Pass
	default:
		v.Assertion = Unknown
	}
	return v, nil
}
