package backend

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"hmc/internal/prog"
)

// mock is a scriptable backend for portfolio tests. Run blocks for delay
// (honoring ctx) and then returns the scripted verdict or error.
type mock struct {
	name       string
	applicable error
	delay      time.Duration
	verdict    *Verdict
	err        error
	// stall, when set, ignores delay and blocks until ctx is cancelled,
	// then returns an Interrupted verdict — the chaos straggler.
	stall bool
}

func (m *mock) Name() string                             { return m.name }
func (m *mock) Applicable(p *prog.Program, s Spec) error { return m.applicable }
func (m *mock) Run(ctx context.Context, p *prog.Program, s Spec) (*Verdict, error) {
	if m.stall {
		<-ctx.Done()
		return &Verdict{Backend: m.name, Interrupted: true}, nil
	}
	if m.delay > 0 {
		select {
		case <-time.After(m.delay):
		case <-ctx.Done():
			return &Verdict{Backend: m.name, Interrupted: true}, nil
		}
	}
	if m.err != nil {
		return nil, m.err
	}
	v := *m.verdict
	v.Backend = m.name
	return &v, nil
}

func verdictFor(keys ...string) *Verdict {
	return &Verdict{
		Outcomes:      keys,
		OutcomeDigest: Digest(keys),
		Allowed:       true,
		Assertion:     Pass,
		Exhaustive:    true,
	}
}

func attemptByBackend(t *testing.T, out *Outcome, name string) Attempt {
	t.Helper()
	for _, att := range out.Attempts {
		if att.Backend == name {
			return att
		}
	}
	t.Fatalf("no attempt for backend %q in %+v", name, out.Attempts)
	return Attempt{}
}

func runMocks(t *testing.T, opts PortfolioOptions) (*Outcome, error) {
	t.Helper()
	p := mustTest(t, "SB")
	return NewPortfolio(opts).Run(context.Background(), p, Spec{Model: "tso"})
}

func TestPortfolioFastestWins(t *testing.T) {
	v := verdictFor("k1")
	out, err := runMocks(t, PortfolioOptions{
		Backends: []Backend{
			&mock{name: "anchor", delay: 50 * time.Millisecond, verdict: v},
			&mock{name: "fast", verdict: v},
		},
		Grace: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict == nil || out.Verdict.Backend != "fast" {
		t.Fatalf("want fast to win, got %+v", out.Verdict)
	}
	if att := attemptByBackend(t, out, "fast"); att.Status != AttemptWon {
		t.Errorf("fast: want won, got %s", att.Status)
	}
	// The anchor is exempt from loser cancellation: it finishes and agrees.
	if att := attemptByBackend(t, out, "anchor"); att.Status != AttemptAgreed {
		t.Errorf("anchor: want agreed, got %s (%s)", att.Status, att.Reason)
	}
	if out.Disagreement != nil {
		t.Errorf("unexpected disagreement: %+v", out.Disagreement)
	}
}

func TestPortfolioDisagreementRecorded(t *testing.T) {
	out, err := runMocks(t, PortfolioOptions{
		Backends: []Backend{
			&mock{name: "anchor", verdict: verdictFor("k1")},
			&mock{name: "liar", delay: 10 * time.Millisecond, verdict: verdictFor("k1", "bogus")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Disagreement == nil {
		t.Fatal("want a disagreement")
	}
	if out.Disagreement.Winner.Backend != "anchor" || out.Disagreement.Dissenter.Backend != "liar" {
		t.Errorf("wrong pair: %+v", out.Disagreement)
	}
	if att := attemptByBackend(t, out, "liar"); att.Status != AttemptDisagreed {
		t.Errorf("liar: want disagreed, got %s", att.Status)
	}
}

func TestPortfolioSkipsInapplicable(t *testing.T) {
	out, err := runMocks(t, PortfolioOptions{
		Backends: []Backend{
			&mock{name: "anchor", verdict: verdictFor("k1")},
			&mock{name: "picky", applicable: Unsupported("picky", "not today")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	att := attemptByBackend(t, out, "picky")
	if att.Status != AttemptSkipped || att.Reason == "" {
		t.Errorf("picky: want skipped with reason, got %+v", att)
	}
	if att := attemptByBackend(t, out, "anchor"); att.Status != AttemptWon {
		t.Errorf("anchor: want won, got %s", att.Status)
	}
}

func TestPortfolioAnchorInapplicableIsHardError(t *testing.T) {
	_, err := runMocks(t, PortfolioOptions{
		Backends: []Backend{
			&mock{name: "anchor", applicable: errors.New("bad model")},
			&mock{name: "other", verdict: verdictFor("k1")},
		},
	})
	if err == nil {
		t.Fatal("anchor inapplicability must fail the run")
	}
}

// TestPortfolioAnchorErrorFailsRunEvenAfterWin: the anchor is the
// authority — its engine failure fails the job even when a faster backend
// already produced a verdict.
func TestPortfolioAnchorErrorFailsRunEvenAfterWin(t *testing.T) {
	boom := errors.New("engine exploded")
	out, err := runMocks(t, PortfolioOptions{
		Backends: []Backend{
			&mock{name: "anchor", delay: 20 * time.Millisecond, err: boom},
			&mock{name: "fast", verdict: verdictFor("k1")},
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want anchor error, got %v", err)
	}
	if out == nil || out.Verdict == nil || out.Verdict.Backend != "fast" {
		t.Fatalf("attestation should still carry the winner: %+v", out)
	}
}

// TestPortfolioErrorDegradesAttestation: a non-anchor failure costs a
// co-signer, never the job.
func TestPortfolioErrorDegradesAttestation(t *testing.T) {
	out, err := runMocks(t, PortfolioOptions{
		Backends: []Backend{
			&mock{name: "anchor", verdict: verdictFor("k1")},
			&mock{name: "flaky", delay: 5 * time.Millisecond, err: errors.New("transient")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if att := attemptByBackend(t, out, "flaky"); att.Status != AttemptError {
		t.Errorf("flaky: want error status, got %s", att.Status)
	}
	if out.Verdict == nil || out.Verdict.Backend != "anchor" {
		t.Errorf("anchor verdict should be served: %+v", out.Verdict)
	}
}

// TestPortfolioCancelsStalledLoserAndDoesNotLeak is the chaos case: a
// backend stalls mid-race and only unblocks on cancellation. The win plus
// the grace window must cancel it, Run must return, and no goroutine may
// outlive the call.
func TestPortfolioCancelsStalledLoserAndDoesNotLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	start := time.Now()
	out, err := runMocks(t, PortfolioOptions{
		Backends: []Backend{
			&mock{name: "anchor", verdict: verdictFor("k1")},
			&mock{name: "stuck", stall: true},
		},
		Grace: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run did not cut the straggler loose: took %v", elapsed)
	}
	if att := attemptByBackend(t, out, "stuck"); att.Status != AttemptTimeout {
		t.Errorf("stuck: want timeout, got %s (%s)", att.Status, att.Reason)
	}
	// Goroutine accounting: give exited goroutines a beat to unwind.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestPortfolioBackendTimeoutBoundsLosers: with no winner-grace involved,
// the per-backend deadline alone must stop a stalled non-anchor backend.
func TestPortfolioBackendTimeoutBoundsLosers(t *testing.T) {
	out, err := runMocks(t, PortfolioOptions{
		Backends: []Backend{
			&mock{name: "anchor", delay: 30 * time.Millisecond, verdict: verdictFor("k1")},
			&mock{name: "stuck", stall: true},
		},
		BackendTimeout: 10 * time.Millisecond,
		Grace:          time.Hour, // must not matter: the deadline fires first
	})
	if err != nil {
		t.Fatal(err)
	}
	if att := attemptByBackend(t, out, "stuck"); att.Status != AttemptTimeout {
		t.Errorf("stuck: want timeout, got %s", att.Status)
	}
	if out.Verdict == nil || out.Verdict.Backend != "anchor" {
		t.Errorf("anchor should win: %+v", out.Verdict)
	}
}

// TestPortfolioNoWinnerFallsBackToAnchor: when nothing is exhaustive the
// anchor's partial verdict is served, like a truncated single-engine run.
func TestPortfolioNoWinnerFallsBackToAnchor(t *testing.T) {
	partial := &Verdict{Outcomes: []string{"k1"}, OutcomeDigest: Digest([]string{"k1"}), TruncatedReason: "budget"}
	out, err := runMocks(t, PortfolioOptions{
		Backends: []Backend{
			&mock{name: "anchor", verdict: partial},
			&mock{name: "other", verdict: &Verdict{TruncatedReason: "budget"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict == nil || out.Verdict.Backend != "anchor" || out.Verdict.Exhaustive {
		t.Fatalf("want the anchor's partial verdict, got %+v", out.Verdict)
	}
	if att := attemptByBackend(t, out, "other"); att.Status != AttemptTruncated {
		t.Errorf("other: want truncated, got %s", att.Status)
	}
}

// TestPortfolioOnWinnerFiresBeforeReturn: the winner callback observes
// the verdict while the straggler is still running.
func TestPortfolioOnWinnerFiresBeforeReturn(t *testing.T) {
	won := make(chan string, 1)
	out, err := runMocks(t, PortfolioOptions{
		Backends: []Backend{
			&mock{name: "anchor", verdict: verdictFor("k1")},
			&mock{name: "slow", delay: 30 * time.Millisecond, verdict: verdictFor("k1")},
		},
		Grace:    time.Second,
		OnWinner: func(v *Verdict) { won <- v.Backend },
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case name := <-won:
		if name != "anchor" {
			t.Errorf("want anchor to win, got %s", name)
		}
	default:
		t.Fatal("OnWinner never fired")
	}
	if att := attemptByBackend(t, out, "slow"); att.Status != AttemptAgreed {
		t.Errorf("slow: want agreed (grace let it finish), got %s", att.Status)
	}
}

// TestPortfolioRealEnginesOnCorpusSample races the three real engines on
// a few corpus tests end to end and demands total agreement — the unit
// version of crossval's TestPortfolioCorpus.
func TestPortfolioRealEnginesOnCorpusSample(t *testing.T) {
	for _, name := range []string{"SB", "MP", "LB"} {
		for _, model := range []string{"sc", "tso"} {
			p := mustTest(t, name)
			out, err := NewPortfolio(PortfolioOptions{}).Run(context.Background(), p, Spec{Model: model})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, model, err)
			}
			if out.Disagreement != nil {
				t.Errorf("%s/%s: %s", name, model, out.Disagreement.Diff)
			}
			if out.Verdict == nil || !out.Verdict.Exhaustive {
				t.Errorf("%s/%s: no exhaustive verdict", name, model)
			}
			agreed := 0
			for _, att := range out.Attempts {
				if att.Status == AttemptAgreed || att.Status == AttemptWon {
					agreed++
				}
			}
			if agreed < 3 {
				t.Errorf("%s/%s: want all 3 engines in agreement, got %d (%s)",
					name, model, agreed, fmt.Sprint(out.Attempts))
			}
		}
	}
}
