// The portfolio runner races every applicable backend on one job and
// cross-attests the winner. The first exhaustive, error-free verdict
// wins and is surfaced immediately (OnWinner); the losers keep running —
// bounded by their per-backend deadlines plus a post-win grace window —
// as asynchronous cross-checkers. A backend that is inapplicable, times
// out, errors or panics degrades the attestation (fewer co-signers),
// never the job; only the anchor's failure fails the run. A confirmed
// disagreement between two exhaustive verdicts is returned on the
// Outcome for the caller to quarantine — the portfolio itself never
// decides to serve anyway.

package backend

import (
	"context"
	"time"

	"hmc/internal/prog"
)

// DefaultGrace bounds how long losers may keep cross-checking after the
// winner's verdict lands when PortfolioOptions.Grace is zero.
const DefaultGrace = 3 * time.Second

// AttemptStatus classifies one backend's part in a portfolio run.
type AttemptStatus string

const (
	// AttemptWon: produced the first exhaustive verdict.
	AttemptWon AttemptStatus = "won"
	// AttemptAgreed / AttemptDisagreed: finished exhaustively and was
	// compared against the winner.
	AttemptAgreed    AttemptStatus = "agreed"
	AttemptDisagreed AttemptStatus = "disagreed"
	// AttemptSkipped: the applicability guard declined the request.
	AttemptSkipped AttemptStatus = "skipped"
	// AttemptTimeout: the run was interrupted by its deadline, the
	// post-win grace cancellation, or the job context.
	AttemptTimeout AttemptStatus = "timeout"
	// AttemptTruncated: the engine hit its own enumeration budget.
	AttemptTruncated AttemptStatus = "truncated"
	// AttemptError: the engine failed (contained panic or input error).
	AttemptError AttemptStatus = "error"
)

// Attempt is one backend's attestation record, carried on job payloads.
type Attempt struct {
	Backend string        `json:"backend"`
	Status  AttemptStatus `json:"status"`
	Reason  string        `json:"reason,omitempty"`
	Elapsed time.Duration `json:"elapsed_ns"`
	Verdict *Verdict      `json:"verdict,omitempty"`
}

// Disagreement pairs the two exhaustive verdicts that split, plus a
// human-readable diff. It is the payload of a quarantine artifact.
type Disagreement struct {
	Diff      string   `json:"diff"`
	Winner    *Verdict `json:"winner"`
	Dissenter *Verdict `json:"dissenter"`
}

// Outcome is one portfolio run: the served verdict, the per-backend
// attestation trail, and the first disagreement if any.
type Outcome struct {
	Verdict      *Verdict
	Attempts     []Attempt
	Disagreement *Disagreement
}

// PortfolioOptions configures a Portfolio.
type PortfolioOptions struct {
	// Backends to race, anchor first. Nil uses DefaultBackends. The
	// anchor (index 0) is special: it is never skipped, its error fails
	// the run, and its verdict is the fallback when no backend finishes
	// exhaustively.
	Backends []Backend
	// BackendTimeout is the per-run deadline for non-anchor backends
	// (0 = bounded only by the job context and the grace window).
	BackendTimeout time.Duration
	// Grace bounds how long losing cross-checkers keep running after a
	// win: 0 = DefaultGrace, negative = cancel losers immediately on a
	// win. The anchor is exempt — only the job context bounds it, so the
	// authoritative run is never cut short by a faster colleague.
	Grace time.Duration
	// OnWinner, when non-nil, observes the winning verdict the moment it
	// lands — before cross-checking completes. Callers may surface it
	// (progress views) but must not commit it until Run returns clean.
	OnWinner func(*Verdict)
}

// DefaultBackends is the standard portfolio: the DFS anchor plus both
// oracle engines.
func DefaultBackends() []Backend {
	return []Backend{&DFS{}, &Axenum{}, &Operational{}}
}

// Portfolio races backends per job. Safe for concurrent use.
type Portfolio struct {
	opts PortfolioOptions
}

// NewPortfolio builds a runner from opts, applying defaults.
func NewPortfolio(opts PortfolioOptions) *Portfolio {
	if len(opts.Backends) == 0 {
		opts.Backends = DefaultBackends()
	}
	if opts.Grace == 0 {
		opts.Grace = DefaultGrace
	}
	return &Portfolio{opts: opts}
}

// Backends returns the configured backend list, anchor first.
func (pf *Portfolio) Backends() []Backend { return pf.opts.Backends }

// slot is one racing backend's in-flight state. Fields other than the
// channels are written by the slot goroutine before it sends itself on
// the results channel, which is the happens-before edge the collector
// relies on.
type slot struct {
	b       Backend
	idx     int // index into Outcome.Attempts
	anchor  bool
	cancel  context.CancelFunc
	verdict *Verdict
	err     error
	elapsed time.Duration
}

// Run races the applicable backends on p under spec. It returns once
// every launched backend has finished (each bounded by its deadline, the
// grace window and ctx), so no goroutines outlive the call. The returned
// error is the anchor's error or a pre-flight failure; disagreements are
// reported on the Outcome, not as an error.
func (pf *Portfolio) Run(ctx context.Context, p *prog.Program, spec Spec) (*Outcome, error) {
	out := &Outcome{}
	anchor := pf.opts.Backends[0]
	if err := anchor.Applicable(p, spec); err != nil {
		return nil, err // anchor is never skipped: inapplicability is a request error
	}
	var slots []*slot
	for i, b := range pf.opts.Backends {
		att := Attempt{Backend: b.Name()}
		if i > 0 {
			if err := b.Applicable(p, spec); err != nil {
				att.Status = AttemptSkipped
				att.Reason = err.Error()
				out.Attempts = append(out.Attempts, att)
				continue
			}
		}
		out.Attempts = append(out.Attempts, att)
		slots = append(slots, &slot{b: b, idx: len(out.Attempts) - 1, anchor: i == 0})
	}

	results := make(chan *slot, len(slots))
	for _, sl := range slots {
		runCtx := ctx
		if !sl.anchor && pf.opts.BackendTimeout > 0 {
			runCtx, sl.cancel = context.WithTimeout(ctx, pf.opts.BackendTimeout)
		} else {
			runCtx, sl.cancel = context.WithCancel(ctx)
		}
		go func(sl *slot, runCtx context.Context) {
			start := time.Now() //hmc:nondet(race timing is observability, never fed into verdicts)
			v, err := sl.b.Run(runCtx, p, spec)
			sl.elapsed = time.Since(start)
			sl.verdict, sl.err = v, err
			results <- sl
		}(sl, runCtx)
	}
	defer func() {
		for _, sl := range slots {
			sl.cancel()
		}
	}()

	// Collect: the first exhaustive error-free verdict wins; a win arms
	// the grace timer that bounds the remaining cross-checkers.
	var winner *slot
	var graceCh <-chan time.Time
	var graceTimer *time.Timer
	finished := make([]*slot, 0, len(slots))
	for len(finished) < len(slots) {
		select {
		case sl := <-results:
			finished = append(finished, sl)
			if winner == nil && sl.err == nil && sl.verdict != nil && sl.verdict.Exhaustive {
				winner = sl
				out.Verdict = sl.verdict
				if pf.opts.OnWinner != nil {
					pf.opts.OnWinner(sl.verdict)
				}
				if len(finished) < len(slots) {
					if pf.opts.Grace < 0 {
						pf.cancelOthers(slots, finished)
					} else {
						graceTimer = time.NewTimer(pf.opts.Grace)
						graceCh = graceTimer.C
					}
				}
			}
		case <-graceCh:
			graceCh = nil
			pf.cancelOthers(slots, finished)
		}
	}
	if graceTimer != nil {
		graceTimer.Stop()
	}

	// Classify and cross-check. The comparisons run after all slots are
	// back so the attestation trail is complete and deterministic in
	// content (the winner identity is inherently a race).
	var anchorErr error
	for _, sl := range finished {
		att := &out.Attempts[sl.idx]
		att.Elapsed = sl.elapsed
		att.Verdict = sl.verdict
		switch {
		case sl == winner:
			att.Status = AttemptWon
		case sl.err != nil:
			att.Status = AttemptError
			att.Reason = sl.err.Error()
			if sl.anchor {
				anchorErr = sl.err
			}
		case sl.verdict == nil:
			att.Status = AttemptError
			att.Reason = "backend returned no verdict"
		case sl.verdict.Interrupted:
			att.Status = AttemptTimeout
			att.Reason = "cancelled before completing"
		case !sl.verdict.Exhaustive:
			att.Status = AttemptTruncated
			att.Reason = sl.verdict.TruncatedReason
		default:
			if diff := Diff(out.Verdict, sl.verdict); diff != "" {
				att.Status = AttemptDisagreed
				att.Reason = diff
				if out.Disagreement == nil {
					out.Disagreement = &Disagreement{
						Diff:      diff,
						Winner:    out.Verdict,
						Dissenter: sl.verdict,
					}
				}
			} else {
				att.Status = AttemptAgreed
			}
		}
	}
	if anchorErr != nil {
		// The anchor is the authority: its engine failure fails the run
		// even when a faster backend already produced a verdict.
		return out, anchorErr
	}
	if winner == nil {
		// No exhaustive verdict anywhere: fall back to the anchor's
		// partial result, exactly like the single-engine path serving a
		// truncated or interrupted exploration.
		for _, sl := range finished {
			if sl.anchor {
				out.Verdict = sl.verdict
			}
		}
	}
	return out, nil
}

// cancelOthers cancels every non-anchor slot that has not finished yet.
// The anchor is exempt: it is the authority whose raw result the job
// serves, so only the job context (deadline, client cancel) may stop it —
// exactly the bound the single-engine path has always had.
func (pf *Portfolio) cancelOthers(slots, finished []*slot) {
	done := make(map[*slot]bool, len(finished))
	for _, sl := range finished {
		done[sl] = true
	}
	for _, sl := range slots {
		if !done[sl] && !sl.anchor {
			sl.cancel()
		}
	}
}
