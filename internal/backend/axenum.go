// The axenum adapter wraps the herd-style axiomatic enumerator. It is
// exact on the models where value guessing is constructively justified,
// but its candidate space is exponential in the visible-event count, so
// applicability is event-count bounded (satellite guard). Two model-level
// caveats shape the guards and the normalization:
//
//   - under "relaxed" the enumerator manufactures out-of-thin-air
//     executions (self-justifying value cycles) that no constructive
//     exploration produces, so the outcome sets legitimately differ —
//     the backend declares relaxed unsupported rather than disagreeing;
//   - its assertion detection records error shapes per guessed value
//     vector, an over-approximation of reachable failures, so a non-empty
//     error list normalizes to Unknown, never Fail.

package backend

import (
	"context"
	"time"

	"hmc/internal/axenum"
	"hmc/internal/core"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// Default axenum budgets: the visible-op bound keeps the rf×co candidate
// space enumerable (crossval caps random programs at 7 visible ops; the
// corpus tops out near a dozen), and the candidate cap is a hard brake
// for programs whose bound estimate is too optimistic.
const (
	DefaultAxenumMaxOps        = 16
	DefaultAxenumMaxCandidates = 2_000_000
)

// Axenum adapts axenum.Explore to the Backend interface.
type Axenum struct {
	// MaxOps overrides the visible-operation applicability bound (0 =
	// DefaultAxenumMaxOps).
	MaxOps int
	// MaxCandidates overrides the enumeration budget (0 = default).
	MaxCandidates int
}

func (a *Axenum) Name() string { return "axenum" }

func (a *Axenum) maxOps() int {
	if a.MaxOps > 0 {
		return a.MaxOps
	}
	return DefaultAxenumMaxOps
}

func (a *Axenum) maxCandidates() int {
	if a.MaxCandidates > 0 {
		return a.MaxCandidates
	}
	return DefaultAxenumMaxCandidates
}

func (a *Axenum) Applicable(p *prog.Program, spec Spec) error {
	if _, err := memmodel.ByName(spec.Model); err != nil {
		return err
	}
	if spec.Model == "relaxed" {
		return Unsupported(a.Name(), "relaxed admits out-of-thin-air executions the constructive engines never produce")
	}
	if err := boundsGuard(a.Name(), spec); err != nil {
		return err
	}
	if n := visibleOps(p); n > a.maxOps() {
		return Unsupported(a.Name(), "program has %d visible operations, enumeration bound is %d", n, a.maxOps())
	}
	return nil
}

func (a *Axenum) Run(ctx context.Context, p *prog.Program, spec Spec) (*Verdict, error) {
	model, err := memmodel.ByName(spec.Model)
	if err != nil {
		return nil, err
	}
	start := time.Now() //hmc:nondet(verdict latency is observability, never compared or counted)
	var res *axenum.Result
	err = core.Contain("backend:axenum", p, spec.Model, func() error {
		var ierr error
		res, ierr = axenum.Explore(p, axenum.Options{
			Model:         model,
			MaxSteps:      spec.MaxSteps,
			MaxCandidates: a.maxCandidates(),
			Context:       ctx,
		})
		return ierr
	})
	if err != nil {
		return nil, err
	}
	v := &Verdict{
		Backend:         a.Name(),
		Model:           spec.Model,
		Outcomes:        outcomes(res.Finals),
		Allowed:         res.ExistsCount > 0,
		AssertionErrors: res.Errors,
		Exhaustive:      !res.Truncated && !res.Interrupted,
		Interrupted:     res.Interrupted,
		Executions:      res.Consistent,
		Blocked:         res.Blocked,
		Candidates:      res.Candidates,
		Elapsed:         time.Since(start),
	}
	if res.Truncated {
		v.TruncatedReason = "max-candidates"
	}
	v.OutcomeDigest = Digest(v.Outcomes)
	switch {
	case len(res.Errors) > 0:
		// Error shapes are recorded per guess vector — possibly for
		// value guesses no write justifies — so "errors seen" only
		// means "cannot attest the assertion", not "fails".
		v.Assertion = Unknown
	case v.Exhaustive:
		v.Assertion = Pass
	default:
		v.Assertion = Unknown
	}
	return v, nil
}

// boundsGuard rejects DFS-shaped resource bounds and anchor-only
// analyses for the alternate engines: a bounded run cuts the exploration
// tree in an engine-specific order, so its outcome set is not comparable
// across engines.
func boundsGuard(name string, spec Spec) error {
	switch {
	case spec.MaxExecutions > 0:
		return Unsupported(name, "MaxExecutions is a DFS-order bound")
	case spec.MaxEvents > 0:
		return Unsupported(name, "MaxEvents is a DFS graph bound")
	case spec.MemoryBudget > 0:
		return Unsupported(name, "memory budgets truncate in engine-specific order")
	case spec.Symmetry:
		return Unsupported(name, "symmetry reduction collapses final states to orbit representatives")
	case spec.CheckRaces:
		return Unsupported(name, "race analysis is DFS-only")
	case spec.CheckLiveness:
		return Unsupported(name, "liveness analysis is DFS-only")
	}
	return nil
}

// visibleOps counts the memory-visible instructions (loads, stores,
// RMWs, fences) across all threads — the static size estimate behind the
// enumeration and machine-exploration applicability bounds.
func visibleOps(p *prog.Program) int {
	n := 0
	for _, th := range p.Threads {
		for _, in := range th {
			switch in.Op {
			case prog.ILoad, prog.IStore, prog.ICAS, prog.IFAdd, prog.IXchg, prog.IFence:
				n++
			}
		}
	}
	return n
}

// instrCount is the total static instruction count across threads.
func instrCount(p *prog.Program) int {
	n := 0
	for _, th := range p.Threads {
		n += len(th)
	}
	return n
}
