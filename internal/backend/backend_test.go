package backend

import (
	"context"
	"errors"
	"strings"
	"testing"

	"hmc/internal/litmus"
	"hmc/internal/prog"
)

// mustTest pulls a corpus program by name.
func mustTest(t *testing.T, name string) *prog.Program {
	t.Helper()
	tc, ok := litmus.ByName(name)
	if !ok {
		t.Fatalf("corpus test %q missing", name)
	}
	return tc.P
}

// bigProgram builds a program whose visible-op count exceeds n.
func bigProgram(t *testing.T, n int) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("big")
	x := b.Loc("x")
	th := b.Thread()
	for i := 0; i <= n; i++ {
		th.Store(x, prog.Const(1))
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUnsupportedErrorWrapsSentinel(t *testing.T) {
	err := Unsupported("axenum", "reason %d", 7)
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Unsupported() does not wrap ErrUnsupported: %v", err)
	}
	var ue *UnsupportedError
	if !errors.As(err, &ue) || ue.Backend != "axenum" || ue.Reason != "reason 7" {
		t.Fatalf("typed fields wrong: %+v", ue)
	}
}

// TestOperationalGuards exercises every applicability guard of the
// operational backend: model (TSO/PSO/SC machines only), DFS-shaped
// bounds, visible-op bound, instruction bound.
func TestOperationalGuards(t *testing.T) {
	p := mustTest(t, "SB")
	o := &Operational{}
	for _, model := range []string{"sc", "tso", "pso"} {
		if err := o.Applicable(p, Spec{Model: model}); err != nil {
			t.Errorf("model %s should be applicable: %v", model, err)
		}
	}
	for _, model := range []string{"imm", "rc11", "relaxed"} {
		err := o.Applicable(p, Spec{Model: model})
		if !errors.Is(err, ErrUnsupported) {
			t.Errorf("model %s: want ErrUnsupported, got %v", model, err)
		}
	}
	if err := o.Applicable(p, Spec{Model: "no-such-model"}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("unknown model: want ErrUnsupported, got %v", err)
	}
	boundSpecs := map[string]Spec{
		"max-executions": {Model: "tso", MaxExecutions: 5},
		"max-events":     {Model: "tso", MaxEvents: 10},
		"memory-budget":  {Model: "tso", MemoryBudget: 1 << 20},
		"symmetry":       {Model: "tso", Symmetry: true},
		"check-races":    {Model: "tso", CheckRaces: true},
		"check-liveness": {Model: "tso", CheckLiveness: true},
	}
	for name, spec := range boundSpecs {
		if err := o.Applicable(p, spec); !errors.Is(err, ErrUnsupported) {
			t.Errorf("bound %s: want ErrUnsupported, got %v", name, err)
		}
	}
	// Size guards: the default op bound, a custom op bound, the instr bound.
	if err := o.Applicable(bigProgram(t, DefaultOperationalMaxOps), Spec{Model: "tso"}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("oversized program: want ErrUnsupported, got %v", err)
	}
	tight := &Operational{MaxOps: 1}
	if err := tight.Applicable(p, Spec{Model: "tso"}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("custom op bound: want ErrUnsupported, got %v", err)
	}
	tightInstr := &Operational{MaxInstrs: 1}
	if err := tightInstr.Applicable(p, Spec{Model: "tso"}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("custom instr bound: want ErrUnsupported, got %v", err)
	}
}

// TestAxenumGuards exercises the axiomatic enumerator's guards: registry
// check, the relaxed out-of-thin-air carve-out, DFS-shaped bounds, and
// the visible-event bound.
func TestAxenumGuards(t *testing.T) {
	p := mustTest(t, "SB")
	a := &Axenum{}
	for _, model := range []string{"sc", "tso", "pso", "imm", "rc11"} {
		if err := a.Applicable(p, Spec{Model: model}); err != nil {
			t.Errorf("model %s should be applicable: %v", model, err)
		}
	}
	if err := a.Applicable(p, Spec{Model: "relaxed"}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("relaxed: want ErrUnsupported (out-of-thin-air), got %v", err)
	}
	if err := a.Applicable(p, Spec{Model: "no-such-model"}); err == nil {
		t.Error("unknown model: want error")
	}
	boundSpecs := map[string]Spec{
		"max-executions": {Model: "sc", MaxExecutions: 5},
		"max-events":     {Model: "sc", MaxEvents: 10},
		"memory-budget":  {Model: "sc", MemoryBudget: 1 << 20},
		"symmetry":       {Model: "sc", Symmetry: true},
		"check-races":    {Model: "sc", CheckRaces: true},
		"check-liveness": {Model: "sc", CheckLiveness: true},
	}
	for name, spec := range boundSpecs {
		if err := a.Applicable(p, spec); !errors.Is(err, ErrUnsupported) {
			t.Errorf("bound %s: want ErrUnsupported, got %v", name, err)
		}
	}
	if err := a.Applicable(bigProgram(t, DefaultAxenumMaxOps), Spec{Model: "sc"}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("oversized program: want ErrUnsupported, got %v", err)
	}
	tight := &Axenum{MaxOps: 1}
	if err := tight.Applicable(p, Spec{Model: "sc"}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("custom op bound: want ErrUnsupported, got %v", err)
	}
}

// TestDFSAnchorIsAlwaysApplicable: the anchor accepts every registered
// model under every bound combination.
func TestDFSAnchorIsAlwaysApplicable(t *testing.T) {
	p := mustTest(t, "SB")
	d := &DFS{}
	spec := Spec{
		Model: "imm", MaxExecutions: 5, MaxEvents: 100, MemoryBudget: 1 << 20,
		Symmetry: true, CheckRaces: true, CheckLiveness: true,
	}
	if err := d.Applicable(p, spec); err != nil {
		t.Fatalf("anchor should accept any bounds: %v", err)
	}
	if err := d.Applicable(p, Spec{Model: "no-such-model"}); err == nil {
		t.Fatal("unknown model: want error")
	}
}

func TestByNameRoundTrip(t *testing.T) {
	for _, name := range Names() {
		b, err := ByName(name)
		if name == "portfolio" {
			if err == nil {
				t.Error("portfolio is not a single backend; ByName should refuse it")
			}
			continue
		}
		if err != nil {
			t.Errorf("ByName(%s): %v", name, err)
			continue
		}
		if b.Name() != name {
			t.Errorf("ByName(%s).Name() = %s", name, b.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus): want error")
	}
}

func TestVerdictsAgreeAcrossEngines(t *testing.T) {
	p := mustTest(t, "SB")
	spec := Spec{Model: "tso"}
	var verdicts []*Verdict
	for _, name := range []string{"dfs", "axenum", "operational"} {
		b, _ := ByName(name)
		if err := b.Applicable(p, spec); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		v, err := b.Run(context.Background(), p, spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !v.Exhaustive {
			t.Fatalf("%s: not exhaustive: %+v", name, v)
		}
		verdicts = append(verdicts, v)
	}
	for i := 1; i < len(verdicts); i++ {
		if diff := Diff(verdicts[0], verdicts[i]); diff != "" {
			t.Errorf("dfs vs %s: %s", verdicts[i].Backend, diff)
		}
		if verdicts[i].OutcomeDigest != verdicts[0].OutcomeDigest {
			t.Errorf("digest mismatch: %s=%s dfs=%s",
				verdicts[i].Backend, verdicts[i].OutcomeDigest, verdicts[0].OutcomeDigest)
		}
	}
}

func TestDiff(t *testing.T) {
	base := func() *Verdict {
		return &Verdict{
			Backend: "a", Outcomes: []string{"k1", "k2"},
			OutcomeDigest: Digest([]string{"k1", "k2"}),
			Allowed:       true, Assertion: Pass, Exhaustive: true,
		}
	}
	other := base()
	other.Backend = "b"
	if d := Diff(base(), other); d != "" {
		t.Errorf("identical verdicts should agree, got %q", d)
	}

	// Non-exhaustive verdicts are incomparable.
	trunc := base()
	trunc.Exhaustive = false
	trunc.Outcomes = []string{"k1"}
	trunc.OutcomeDigest = Digest(trunc.Outcomes)
	if d := Diff(base(), trunc); d != "" {
		t.Errorf("non-exhaustive should be incomparable, got %q", d)
	}
	if d := Diff(nil, base()); d != "" {
		t.Errorf("nil should be incomparable, got %q", d)
	}

	// Outcome-set splits name the keys each side claims alone.
	split := base()
	split.Backend = "b"
	split.Outcomes = []string{"k1", "k3"}
	split.OutcomeDigest = Digest(split.Outcomes)
	d := Diff(base(), split)
	if !strings.Contains(d, "k2") || !strings.Contains(d, "k3") {
		t.Errorf("outcome diff should name both sides' exclusive keys: %q", d)
	}

	// Exists-clause split with identical outcome sets.
	exists := base()
	exists.Backend = "b"
	exists.Allowed = false
	if d := Diff(base(), exists); !strings.Contains(d, "exists clause") {
		t.Errorf("want exists-clause diff, got %q", d)
	}

	// Assertion: only a hard Pass-vs-Fail split disagrees; Unknown is
	// compatible with everything.
	fails := base()
	fails.Backend = "b"
	fails.Assertion = Fail
	if d := Diff(base(), fails); !strings.Contains(d, "assertion") {
		t.Errorf("want assertion diff, got %q", d)
	}
	unknown := base()
	unknown.Backend = "b"
	unknown.Assertion = Unknown
	if d := Diff(base(), unknown); d != "" {
		t.Errorf("Unknown assertion should be compatible, got %q", d)
	}

	// Race/liveness flags compare only when both sides assessed them.
	tv, fv := true, false
	racyA, racyB := base(), base()
	racyB.Backend = "b"
	racyA.Racy = &tv
	if d := Diff(racyA, racyB); d != "" {
		t.Errorf("one-sided race flag should not disagree, got %q", d)
	}
	racyB.Racy = &fv
	if d := Diff(racyA, racyB); !strings.Contains(d, "races") {
		t.Errorf("want race diff, got %q", d)
	}
}

func TestDigestDeterministic(t *testing.T) {
	a := Digest([]string{"x", "y"})
	b := Digest([]string{"x", "y"})
	if a != b || len(a) != 16 {
		t.Fatalf("digest unstable or wrong length: %q vs %q", a, b)
	}
	if Digest([]string{"xy"}) == a {
		t.Fatal("digest must separate keys, not concatenate them")
	}
}
