// The DFS adapter wraps the production GenMC-style explorer
// (internal/core). It is the portfolio's anchor: applicable to every
// model and every bound, never skipped, and the only backend that
// implements the race and liveness analyses. Explore installs its own
// panic→EngineError boundary, so no extra containment is needed here.

package backend

import (
	"context"
	"time"

	"hmc/internal/core"
	"hmc/internal/eg"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// DFS adapts core.Explore to the Backend interface.
type DFS struct {
	// Tune, when non-nil, adjusts the assembled core.Options before the
	// run — the service uses it to attach progress sinks and checkpoint
	// cadence to the anchor without widening Spec.
	Tune func(*core.Options)
	// OnResult, when non-nil, observes the raw core.Result alongside the
	// normalized verdict — the service keeps serving the explorer's full
	// counters (resultJSON, addStats, the verdict cache) unchanged while
	// the portfolio attests the normalized view.
	OnResult func(*core.Result)
}

func (d *DFS) Name() string { return "dfs" }

// Applicable accepts any registered model: DFS is the anchor.
func (d *DFS) Applicable(p *prog.Program, spec Spec) error {
	_, err := memmodel.ByName(spec.Model)
	return err
}

func (d *DFS) Run(ctx context.Context, p *prog.Program, spec Spec) (*Verdict, error) {
	model, err := memmodel.ByName(spec.Model)
	if err != nil {
		return nil, err
	}
	start := time.Now() //hmc:nondet(verdict latency is observability, never compared or counted)
	finals := map[string]prog.FinalState{}
	opts := core.Options{
		Model:         model,
		Context:       ctx,
		MaxSteps:      spec.MaxSteps,
		MaxExecutions: spec.MaxExecutions,
		MaxEvents:     spec.MaxEvents,
		MemoryBudget:  spec.MemoryBudget,
		Workers:       spec.Workers,
		Symmetry:      spec.Symmetry,
		OnExecution: func(g *eg.Graph, fs prog.FinalState) {
			finals[FinalKey(fs)] = fs
		},
	}
	if d.Tune != nil {
		d.Tune(&opts)
	}
	res, err := core.Explore(p, opts)
	if err != nil {
		return nil, err
	}
	if d.OnResult != nil {
		d.OnResult(res)
	}
	v := &Verdict{
		Backend:         d.Name(),
		Model:           spec.Model,
		Outcomes:        outcomes(finals),
		Allowed:         res.Stats.ExistsCount > 0,
		Exhaustive:      res.Exhaustive(),
		TruncatedReason: res.TruncatedReason,
		Interrupted:     res.Interrupted,
		Executions:      res.Stats.Executions,
		Blocked:         res.Stats.Blocked,
		States:          int64(res.Stats.States),
		Elapsed:         time.Since(start),
	}
	v.OutcomeDigest = Digest(v.Outcomes)
	for _, e := range res.Stats.Errors {
		v.AssertionErrors = append(v.AssertionErrors, e.Msg)
	}
	switch {
	case len(res.Stats.Errors) > 0:
		v.Assertion = Fail // a found failure is a failure even in a partial run
	case v.Exhaustive:
		v.Assertion = Pass
	default:
		v.Assertion = Unknown
	}
	if spec.CheckRaces {
		rep, err := core.CheckRaces(p, core.Options{Context: ctx, MaxSteps: spec.MaxSteps, Workers: spec.Workers})
		if err != nil {
			return nil, err
		}
		if racy := len(rep.Races) > 0; racy || (!rep.Truncated && !rep.Interrupted) {
			v.Racy = &racy
		}
	}
	if spec.CheckLiveness {
		rep, err := core.CheckLiveness(p, model, core.Options{Context: ctx, MaxSteps: spec.MaxSteps, Workers: spec.Workers})
		if err != nil {
			return nil, err
		}
		if dead := !rep.Live(); dead || (!rep.Truncated && !rep.Interrupted) {
			v.Deadlock = &dead
		}
	}
	return v, nil
}
