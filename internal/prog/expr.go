// Package prog defines the litmus-style concurrent program IR that the
// model checker verifies: per-thread instruction lists over thread-local
// registers and shared memory locations, with loads, stores, atomic
// read-modify-writes, fences, branches, assumptions and assertions.
//
// The IR is deliberately low-level (registers + branches rather than
// structured control flow) because syntactic dependency tracking — the
// heart of checking *hardware* memory models — is defined on exactly this
// shape: an event's address/data dependencies are the loads whose results
// flow into the corresponding operands, and its control dependencies are
// the loads feeding the branches on its path.
package prog

import "fmt"

// Reg is a thread-local register index.
type Reg int

// ExprOp enumerates expression node kinds.
type ExprOp uint8

const (
	EConst ExprOp = iota
	EReg
	EAdd
	ESub
	EMul
	EXor
	EAnd
	EOr
	EEq
	ENe
	ELt
	ELe
	EGt
	EGe
	ENot
)

// Expr is an integer expression over registers and constants. Comparison
// operators yield 0/1. Expressions are immutable trees.
type Expr struct {
	Op   ExprOp
	A, B *Expr // operands (B nil for ENot)
	K    int64 // EConst
	R    Reg   // EReg
}

// Const returns a constant expression.
func Const(k int64) *Expr { return &Expr{Op: EConst, K: k} }

// R returns a register reference expression.
func R(r Reg) *Expr { return &Expr{Op: EReg, R: r} }

// Binary constructors.
func Add(a, b *Expr) *Expr { return &Expr{Op: EAdd, A: a, B: b} }
func Sub(a, b *Expr) *Expr { return &Expr{Op: ESub, A: a, B: b} }
func Mul(a, b *Expr) *Expr { return &Expr{Op: EMul, A: a, B: b} }
func Xor(a, b *Expr) *Expr { return &Expr{Op: EXor, A: a, B: b} }
func And(a, b *Expr) *Expr { return &Expr{Op: EAnd, A: a, B: b} }
func Or(a, b *Expr) *Expr  { return &Expr{Op: EOr, A: a, B: b} }
func Eq(a, b *Expr) *Expr  { return &Expr{Op: EEq, A: a, B: b} }
func Ne(a, b *Expr) *Expr  { return &Expr{Op: ENe, A: a, B: b} }
func Lt(a, b *Expr) *Expr  { return &Expr{Op: ELt, A: a, B: b} }
func Le(a, b *Expr) *Expr  { return &Expr{Op: ELe, A: a, B: b} }
func Gt(a, b *Expr) *Expr  { return &Expr{Op: EGt, A: a, B: b} }
func Ge(a, b *Expr) *Expr  { return &Expr{Op: EGe, A: a, B: b} }

// Not returns the logical negation (0 ↦ 1, non-zero ↦ 0).
func Not(a *Expr) *Expr { return &Expr{Op: ENot, A: a} }

// Eval computes the expression's value in the given register file and
// calls touch for every register read (taint tracking hooks in here).
func (e *Expr) Eval(regs []int64, touch func(Reg)) int64 {
	switch e.Op {
	case EConst:
		return e.K
	case EReg:
		if touch != nil {
			touch(e.R)
		}
		return regs[e.R]
	case ENot:
		if e.A.Eval(regs, touch) == 0 {
			return 1
		}
		return 0
	}
	a := e.A.Eval(regs, touch)
	b := e.B.Eval(regs, touch)
	switch e.Op {
	case EAdd:
		return a + b
	case ESub:
		return a - b
	case EMul:
		return a * b
	case EXor:
		return a ^ b
	case EAnd:
		return a & b
	case EOr:
		return a | b
	case EEq:
		return b2i(a == b)
	case ENe:
		return b2i(a != b)
	case ELt:
		return b2i(a < b)
	case ELe:
		return b2i(a <= b)
	case EGt:
		return b2i(a > b)
	case EGe:
		return b2i(a >= b)
	}
	panic(fmt.Sprintf("prog: bad expr op %d", e.Op))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Regs appends the registers mentioned in e to out.
func (e *Expr) Regs(out []Reg) []Reg {
	switch e.Op {
	case EConst:
		return out
	case EReg:
		return append(out, e.R)
	case ENot:
		return e.A.Regs(out)
	}
	return e.B.Regs(e.A.Regs(out))
}

func (e *Expr) String() string {
	op2 := func(sym string) string { return "(" + e.A.String() + sym + e.B.String() + ")" }
	switch e.Op {
	case EConst:
		return fmt.Sprintf("%d", e.K)
	case EReg:
		return fmt.Sprintf("r%d", e.R)
	case EAdd:
		return op2("+")
	case ESub:
		return op2("-")
	case EMul:
		return op2("*")
	case EXor:
		return op2("^")
	case EAnd:
		return op2("&")
	case EOr:
		return op2("|")
	case EEq:
		return op2("==")
	case ENe:
		return op2("!=")
	case ELt:
		return op2("<")
	case ELe:
		return op2("<=")
	case EGt:
		return op2(">")
	case EGe:
		return op2(">=")
	case ENot:
		return "!" + e.A.String()
	}
	return "?"
}
