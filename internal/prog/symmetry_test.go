package prog

import (
	"testing"

	"hmc/internal/eg"
)

func TestSymmetryGroups(t *testing.T) {
	b := NewBuilder("mix")
	x, y := b.Loc("x"), b.Loc("y")
	// Threads 0 and 2 identical; thread 1 differs by location; thread 3
	// differs by constant; threads 4 and 5 identical (another group).
	mk := func(loc eg.Loc, k int64) {
		th := b.Thread()
		th.Store(loc, Const(k))
		th.Load(loc)
	}
	mk(x, 1) // 0
	mk(y, 1) // 1
	mk(x, 1) // 2
	mk(x, 2) // 3
	mk(y, 7) // 4
	mk(y, 7) // 5
	p := b.MustBuild()

	groups := p.SymmetryGroups()
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want [[0 2] [4 5]]", groups)
	}
	if groups[0][0] != 0 || groups[0][1] != 2 || groups[1][0] != 4 || groups[1][1] != 5 {
		t.Fatalf("groups = %v, want [[0 2] [4 5]]", groups)
	}
}

func TestSymmetryGroupsExact(t *testing.T) {
	b := NewBuilder("pair")
	x := b.Loc("x")
	for i := 0; i < 2; i++ {
		th := b.Thread()
		th.FAdd(x, Const(1))
	}
	th := b.Thread()
	th.Store(x, Const(5))
	p := b.MustBuild()

	groups := p.SymmetryGroups()
	if len(groups) != 1 || len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 1 {
		t.Fatalf("groups = %v, want [[0 1]]", groups)
	}
}

func TestSymmetryDistinguishesControlFlow(t *testing.T) {
	mkLoop := func(b *Builder, x eg.Loc, branchTarget bool) {
		th := b.Thread()
		r := th.Load(x)
		j := th.BranchFwd(R(r))
		th.Store(x, Const(1))
		if branchTarget {
			th.Patch(j)
			th.Store(x, Const(2))
		} else {
			th.Store(x, Const(2))
			th.Patch(j)
		}
	}
	b := NewBuilder("ctrl")
	x := b.Loc("x")
	mkLoop(b, x, true)
	mkLoop(b, x, false)
	p := b.MustBuild()
	if groups := p.SymmetryGroups(); len(groups) != 0 {
		t.Errorf("different branch targets must not be symmetric: %v", groups)
	}
}

func TestExprEqual(t *testing.T) {
	cases := []struct {
		a, b *Expr
		want bool
	}{
		{nil, nil, true},
		{Const(1), nil, false},
		{Const(1), Const(1), true},
		{Const(1), Const(2), false},
		{R(0), R(0), true},
		{R(0), R(1), false},
		{Add(R(0), Const(1)), Add(R(0), Const(1)), true},
		{Add(R(0), Const(1)), Add(Const(1), R(0)), false}, // not commutative-aware
		{Not(R(2)), Not(R(2)), true},
		{Eq(R(1), Const(3)), Ne(R(1), Const(3)), false},
	}
	for i, tc := range cases {
		if got := ExprEqual(tc.a, tc.b); got != tc.want {
			t.Errorf("case %d: ExprEqual = %v, want %v", i, got, tc.want)
		}
	}
}
