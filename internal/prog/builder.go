package prog

import (
	"fmt"

	"hmc/internal/eg"
)

// Builder assembles a Program. Typical use:
//
//	b := prog.NewBuilder("MP")
//	x, y := b.Loc("x"), b.Loc("y")
//	t0 := b.Thread()
//	t0.Store(x, prog.Const(1))
//	t0.Store(y, prog.Const(1))
//	t1 := b.Thread()
//	ry := t1.Load(y)
//	rx := t1.Load(x)
//	b.Exists("ry=1 && rx=0", func(fs prog.FinalState) bool {
//	    return fs.Reg(1, ry) == 1 && fs.Reg(1, rx) == 0
//	})
//	p, err := b.Build()
type Builder struct {
	p    *Program
	locs map[string]eg.Loc
	ts   []*ThreadBuilder
}

// NewBuilder returns a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		p:    &Program{Name: name},
		locs: map[string]eg.Loc{},
	}
}

// SetName renames the program under construction.
func (b *Builder) SetName(name string) { b.p.Name = name }

// Loc interns a shared location by name, returning its index.
func (b *Builder) Loc(name string) eg.Loc {
	if l, ok := b.locs[name]; ok {
		return l
	}
	l := eg.Loc(len(b.p.LocNames))
	b.locs[name] = l
	b.p.LocNames = append(b.p.LocNames, name)
	b.p.NumLocs = len(b.p.LocNames)
	return l
}

// Locs interns n locations named prefix0..prefix(n-1), returning them.
func (b *Builder) Locs(prefix string, n int) []eg.Loc {
	out := make([]eg.Loc, n)
	for i := range out {
		out[i] = b.Loc(fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

// Thread starts a new thread and returns its builder.
func (b *Builder) Thread() *ThreadBuilder {
	t := &ThreadBuilder{b: b, t: len(b.ts)}
	b.ts = append(b.ts, t)
	return t
}

// Exists sets the final-state predicate and its description.
func (b *Builder) Exists(desc string, pred func(FinalState) bool) {
	b.p.ExistsDesc = desc
	b.p.Exists = pred
}

// Build finalizes and validates the program.
func (b *Builder) Build() (*Program, error) {
	for _, t := range b.ts {
		b.p.Threads = append(b.p.Threads, t.code)
		b.p.NumRegs = append(b.p.NumRegs, t.regs)
	}
	b.ts = nil
	if err := b.p.Validate(); err != nil {
		return nil, err
	}
	return b.p, nil
}

// MustBuild is Build that panics on error — for test corpora and
// generators where programs are static.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// ThreadBuilder assembles one thread's instruction list.
type ThreadBuilder struct {
	b    *Builder
	t    int
	code []Instr
	regs int
}

// ID returns the thread's index.
func (t *ThreadBuilder) ID() int { return t.t }

// NewReg allocates a fresh register.
func (t *ThreadBuilder) NewReg() Reg {
	r := Reg(t.regs)
	t.regs++
	return r
}

func (t *ThreadBuilder) emit(in Instr) int {
	t.code = append(t.code, in)
	return len(t.code) - 1
}

// Load emits r = *loc and returns r.
func (t *ThreadBuilder) Load(loc eg.Loc) Reg { return t.LoadAt(Const(int64(loc))) }

// LoadM emits a load with a C11-style memory order (for the rc11 model;
// hardware models ignore modes).
func (t *ThreadBuilder) LoadM(loc eg.Loc, mode eg.Mode) Reg {
	r := t.NewReg()
	t.emit(Instr{Op: ILoad, Dst: r, Addr: Const(int64(loc)), Mode: mode})
	return r
}

// LoadAt emits a load from a computed address (enables address
// dependencies) and returns the destination register.
func (t *ThreadBuilder) LoadAt(addr *Expr) Reg {
	r := t.NewReg()
	t.emit(Instr{Op: ILoad, Dst: r, Addr: addr})
	return r
}

// Store emits *loc = val.
func (t *ThreadBuilder) Store(loc eg.Loc, val *Expr) { t.StoreAt(Const(int64(loc)), val) }

// StoreM emits a store with a C11-style memory order.
func (t *ThreadBuilder) StoreM(loc eg.Loc, val *Expr, mode eg.Mode) {
	t.emit(Instr{Op: IStore, Addr: Const(int64(loc)), Val: val, Mode: mode})
}

// StoreAt emits a store to a computed address.
func (t *ThreadBuilder) StoreAt(addr, val *Expr) {
	t.emit(Instr{Op: IStore, Addr: addr, Val: val})
}

// CAS emits an atomic compare-and-swap; returns the register holding the
// value read and the 0/1 success flag register.
func (t *ThreadBuilder) CAS(loc eg.Loc, old, new *Expr) (val, succ Reg) {
	val, succ = t.NewReg(), t.NewReg()
	t.emit(Instr{Op: ICAS, Dst: val, Succ: succ, Addr: Const(int64(loc)), Old: old, New: new})
	return val, succ
}

// CASM is CAS with a C11-style memory order.
func (t *ThreadBuilder) CASM(loc eg.Loc, old, new *Expr, mode eg.Mode) (val, succ Reg) {
	val, succ = t.NewReg(), t.NewReg()
	t.emit(Instr{Op: ICAS, Dst: val, Succ: succ, Addr: Const(int64(loc)), Old: old, New: new, Mode: mode})
	return val, succ
}

// FAddM is FAdd with a C11-style memory order.
func (t *ThreadBuilder) FAddM(loc eg.Loc, delta *Expr, mode eg.Mode) Reg {
	r := t.NewReg()
	t.emit(Instr{Op: IFAdd, Dst: r, Addr: Const(int64(loc)), Val: delta, Mode: mode})
	return r
}

// XchgM is Xchg with a C11-style memory order.
func (t *ThreadBuilder) XchgM(loc eg.Loc, val *Expr, mode eg.Mode) Reg {
	r := t.NewReg()
	t.emit(Instr{Op: IXchg, Dst: r, Addr: Const(int64(loc)), Val: val, Mode: mode})
	return r
}

// FAdd emits an atomic fetch-add of delta; returns the value read.
func (t *ThreadBuilder) FAdd(loc eg.Loc, delta *Expr) Reg {
	r := t.NewReg()
	t.emit(Instr{Op: IFAdd, Dst: r, Addr: Const(int64(loc)), Val: delta})
	return r
}

// Xchg emits an atomic exchange; returns the value read.
func (t *ThreadBuilder) Xchg(loc eg.Loc, val *Expr) Reg {
	r := t.NewReg()
	t.emit(Instr{Op: IXchg, Dst: r, Addr: Const(int64(loc)), Val: val})
	return r
}

// Fence emits a barrier.
func (t *ThreadBuilder) Fence(kind eg.FenceKind) { t.emit(Instr{Op: IFence, Fence: kind}) }

// Mov emits r = val and returns r.
func (t *ThreadBuilder) Mov(val *Expr) Reg {
	r := t.NewReg()
	t.emit(Instr{Op: IMov, Dst: r, Val: val})
	return r
}

// Here returns the current pc (the index of the next emitted instruction),
// for use as a backward branch target.
func (t *ThreadBuilder) Here() int { return len(t.code) }

// Branch emits "if cond goto target" (target from Here or a patch).
func (t *ThreadBuilder) Branch(cond *Expr, target int) {
	t.emit(Instr{Op: IBranch, Cond: cond, Target: target})
}

// BranchFwd emits a conditional branch whose target is patched later with
// Patch. It returns the instruction index to pass to Patch.
func (t *ThreadBuilder) BranchFwd(cond *Expr) int {
	return t.emit(Instr{Op: IBranch, Cond: cond, Target: -1})
}

// Jmp emits an unconditional jump.
func (t *ThreadBuilder) Jmp(target int) { t.emit(Instr{Op: IJmp, Target: target}) }

// JmpFwd emits a jump patched later.
func (t *ThreadBuilder) JmpFwd() int { return t.emit(Instr{Op: IJmp, Target: -1}) }

// Patch sets the target of a forward branch/jump to the current pc.
func (t *ThreadBuilder) Patch(idx int) {
	if t.code[idx].Op != IBranch && t.code[idx].Op != IJmp {
		panic("prog: Patch target is not a branch")
	}
	t.code[idx].Target = len(t.code)
}

// AwaitEq emits a bounded await: load loc and assume it equals val.
// Executions in which the value never shows up are counted as blocked —
// the standard stateless-model-checking treatment of spin loops (a
// completed await is equivalent to the loop's final iteration). The
// register holding the observed value is returned.
func (t *ThreadBuilder) AwaitEq(loc eg.Loc, val *Expr) Reg {
	r := t.Load(loc)
	t.Assume(Eq(R(r), val))
	return r
}

// Assume emits a blocking assumption.
func (t *ThreadBuilder) Assume(cond *Expr) { t.emit(Instr{Op: IAssume, Cond: cond}) }

// Assert emits a safety assertion.
func (t *ThreadBuilder) Assert(cond *Expr, msg string) {
	t.emit(Instr{Op: IAssert, Cond: cond, Msg: msg})
}
