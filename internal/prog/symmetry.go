package prog

// SymmetryGroups partitions the program's threads into groups of two or
// more threads with structurally identical code. Threads in one group are
// interchangeable: renaming them maps executions to executions, which is
// what symmetry reduction (core.Options.Symmetry) exploits. Threads whose
// code matches no other thread are omitted.
func (p *Program) SymmetryGroups() [][]int {
	var groups [][]int
	taken := make([]bool, len(p.Threads))
	for i := range p.Threads {
		if taken[i] {
			continue
		}
		group := []int{i}
		for j := i + 1; j < len(p.Threads); j++ {
			if !taken[j] && codeEqual(p.Threads[i], p.Threads[j]) {
				group = append(group, j)
				taken[j] = true
			}
		}
		if len(group) > 1 {
			groups = append(groups, group)
		}
	}
	return groups
}

// codeEqual reports structural equality of two instruction sequences.
func codeEqual(a, b []Instr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !instrEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func instrEqual(a, b Instr) bool {
	return a.Op == b.Op && a.Dst == b.Dst && a.Succ == b.Succ &&
		a.Target == b.Target && a.Fence == b.Fence && a.Mode == b.Mode &&
		a.Msg == b.Msg &&
		ExprEqual(a.Addr, b.Addr) && ExprEqual(a.Val, b.Val) &&
		ExprEqual(a.Old, b.Old) && ExprEqual(a.New, b.New) &&
		ExprEqual(a.Cond, b.Cond)
}

// ExprEqual reports structural equality of two expression trees (both nil
// counts as equal).
func ExprEqual(a, b *Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Op != b.Op || a.K != b.K || a.R != b.R {
		return false
	}
	return ExprEqual(a.A, b.A) && ExprEqual(a.B, b.B)
}
