package prog

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestExprEval(t *testing.T) {
	regs := []int64{3, 5}
	cases := []struct {
		e    *Expr
		want int64
	}{
		{Const(7), 7},
		{R(0), 3},
		{Add(R(0), R(1)), 8},
		{Sub(R(1), R(0)), 2},
		{Mul(R(0), Const(4)), 12},
		{Xor(Const(6), Const(3)), 5},
		{And(Const(6), Const(3)), 2},
		{Or(Const(4), Const(1)), 5},
		{Eq(R(0), Const(3)), 1},
		{Eq(R(0), Const(4)), 0},
		{Ne(R(0), Const(4)), 1},
		{Lt(R(0), R(1)), 1},
		{Le(Const(5), R(1)), 1},
		{Gt(R(0), R(1)), 0},
		{Ge(R(1), R(1)), 1},
		{Not(Const(0)), 1},
		{Not(Const(9)), 0},
	}
	for _, c := range cases {
		if got := c.e.Eval(regs, nil); got != c.want {
			t.Errorf("%v = %d, want %d", c.e, got, c.want)
		}
	}
}

func TestExprTouchCallback(t *testing.T) {
	var touched []Reg
	e := Add(R(1), Mul(R(0), R(1)))
	e.Eval([]int64{2, 3}, func(r Reg) { touched = append(touched, r) })
	if len(touched) != 3 {
		t.Fatalf("touched %v, want 3 register reads", touched)
	}
}

func TestExprRegs(t *testing.T) {
	e := Add(R(2), Not(Eq(R(0), Const(1))))
	rs := e.Regs(nil)
	if len(rs) != 2 || rs[0] != 2 || rs[1] != 0 {
		t.Fatalf("Regs = %v", rs)
	}
	if got := Const(1).Regs(nil); len(got) != 0 {
		t.Fatalf("const Regs = %v", got)
	}
}

func TestPropExprEvalDeterministic(t *testing.T) {
	f := func(a, b int64) bool {
		regs := []int64{a, b}
		e := Xor(Add(R(0), R(1)), Mul(R(0), Const(3)))
		return e.Eval(regs, nil) == e.Eval(regs, nil)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuilderMP(t *testing.T) {
	b := NewBuilder("MP")
	x, y := b.Loc("x"), b.Loc("y")
	if x == y {
		t.Fatal("distinct names must intern to distinct locations")
	}
	if b.Loc("x") != x {
		t.Fatal("interning must be stable")
	}
	t0 := b.Thread()
	t0.Store(x, Const(1))
	t0.Store(y, Const(1))
	t1 := b.Thread()
	ry := t1.Load(y)
	rx := t1.Load(x)
	b.Exists("ry=1 && rx=0", func(fs FinalState) bool {
		return fs.Reg(1, ry) == 1 && fs.Reg(1, rx) == 0
	})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Threads) != 2 || p.NumLocs != 2 {
		t.Fatalf("unexpected shape: %d threads, %d locs", len(p.Threads), p.NumLocs)
	}
	if p.NumRegs[1] != 2 {
		t.Fatalf("thread 1 regs = %d, want 2", p.NumRegs[1])
	}
	if p.Exists == nil || !strings.Contains(p.ExistsDesc, "ry=1") {
		t.Fatal("exists clause lost")
	}
}

func TestBuilderLocs(t *testing.T) {
	b := NewBuilder("multi")
	ls := b.Locs("a", 3)
	if len(ls) != 3 || ls[0] == ls[2] {
		t.Fatalf("Locs = %v", ls)
	}
	if b.p.NumLocs != 3 {
		t.Fatalf("NumLocs = %d", b.p.NumLocs)
	}
}

func TestBuilderBranchesAndPatch(t *testing.T) {
	b := NewBuilder("loop")
	x := b.Loc("x")
	t0 := b.Thread()
	r := t0.Load(x)
	j := t0.BranchFwd(Eq(R(r), Const(0)))
	t0.Store(x, Const(2))
	t0.Patch(j)
	top := t0.Here()
	t0.Store(x, Const(3))
	t0.Branch(Const(0), top)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Threads[0][1].Target != 3 {
		t.Fatalf("patched target = %d, want 3 (after the skipped store)", p.Threads[0][1].Target)
	}
}

func TestValidateCatchesBadTarget(t *testing.T) {
	p := &Program{
		Name:    "bad",
		NumLocs: 1,
		Threads: [][]Instr{{{Op: IJmp, Target: 99}}},
		NumRegs: []int{0},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("expected validation error for wild jump")
	}
}

func TestValidateCatchesBadRegister(t *testing.T) {
	p := &Program{
		Name:    "badreg",
		NumLocs: 1,
		Threads: [][]Instr{{{Op: IStore, Addr: Const(0), Val: R(5)}}},
		NumRegs: []int{1},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("expected validation error for out-of-range register")
	}
}

func TestValidateCatchesNoLocations(t *testing.T) {
	p := &Program{Name: "empty"}
	if err := p.Validate(); err == nil {
		t.Fatal("expected validation error for zero locations")
	}
}

func TestProgramString(t *testing.T) {
	b := NewBuilder("show")
	x := b.Loc("x")
	t0 := b.Thread()
	r := t0.Load(x)
	t0.Store(x, Add(R(r), Const(1)))
	t0.Fence(2)
	t0.Assert(Ne(R(r), Const(7)), "r != 7")
	p := b.MustBuild()
	s := p.String()
	for _, want := range []string{"program \"show\"", "load", "store", "fence", "assert"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild must panic on invalid program")
		}
	}()
	b := NewBuilder("invalid")
	_ = b.Thread() // no locations at all
	b.MustBuild()
}

func TestInstrString(t *testing.T) {
	ins := []Instr{
		{Op: ILoad, Dst: 0, Addr: Const(1)},
		{Op: ICAS, Dst: 1, Addr: Const(0), Old: Const(0), New: Const(1)},
		{Op: IFAdd, Dst: 2, Addr: Const(0), Val: Const(1)},
		{Op: IXchg, Dst: 0, Addr: Const(0), Val: Const(5)},
		{Op: IAssume, Cond: Const(1)},
		{Op: IBranch, Cond: Const(0), Target: 3},
	}
	for _, in := range ins {
		if in.String() == "?" {
			t.Errorf("missing String case for op %d", in.Op)
		}
	}
}

func TestValidateReportsAllViolations(t *testing.T) {
	// Validate is a linter front-end (hmc vet): it must report every
	// violation in one pass, not stop at the first.
	p := &Program{
		Name:    "multibad",
		NumLocs: 1,
		Threads: [][]Instr{
			{{Op: IJmp, Target: 99}, {Op: IStore, Addr: Const(0), Val: R(5)}},
			{{Op: IBranch, Cond: R(3), Target: -2}},
		},
		NumRegs: []int{1, 1},
	}
	err := p.Validate()
	if err == nil {
		t.Fatal("expected validation errors")
	}
	msg := err.Error()
	for _, want := range []string{"t0 pc0 target 99", "t0 pc1 register r5", "t1 pc0 target -2", "t1 pc0 register r3"} {
		if !strings.Contains(msg, want) {
			t.Errorf("validation error lacks %q:\n%s", want, msg)
		}
	}
}
