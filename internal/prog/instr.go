package prog

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"hmc/internal/eg"
)

// InstrOp enumerates instruction kinds.
type InstrOp uint8

const (
	ILoad   InstrOp = iota // Dst = *Addr
	IStore                 // *Addr = Val
	ICAS                   // Dst = *Addr; if Dst == Old { *Addr = New } (Succ reg optional)
	IFAdd                  // Dst = *Addr; *Addr = Dst + Val (atomic fetch-add)
	IXchg                  // Dst = *Addr; *Addr = Val (atomic exchange)
	IFence                 // memory barrier of kind Fence
	IMov                   // Dst = Val (register computation)
	IBranch                // if Cond != 0 goto Target
	IJmp                   // goto Target
	IAssume                // if Cond == 0 the execution is blocked (discarded)
	IAssert                // if Cond == 0 the execution is erroneous
)

// Instr is one instruction. Which fields are meaningful depends on Op:
//
//	ILoad:   Dst, Addr
//	IStore:  Addr, Val
//	ICAS:    Dst (value read), Succ (1/0 success flag, -1 if unused), Addr, Old, New
//	IFAdd:   Dst (value read), Addr, Val (addend)
//	IXchg:   Dst (value read), Addr, Val
//	IFence:  Fence
//	IMov:    Dst, Val
//	IBranch: Cond, Target
//	IJmp:    Target
//	IAssume: Cond
//	IAssert: Cond, Msg
type Instr struct {
	Op     InstrOp
	Dst    Reg
	Succ   Reg // ICAS success flag destination, or -1
	Addr   *Expr
	Val    *Expr
	Old    *Expr
	New    *Expr
	Cond   *Expr
	Target int
	Fence  eg.FenceKind
	Mode   eg.Mode // C11-style order annotation on memory accesses
	Msg    string
}

func (in Instr) String() string {
	switch in.Op {
	case ILoad:
		return fmt.Sprintf("r%d = load [%v]", in.Dst, in.Addr)
	case IStore:
		return fmt.Sprintf("store [%v] = %v", in.Addr, in.Val)
	case ICAS:
		return fmt.Sprintf("r%d = cas [%v] %v -> %v", in.Dst, in.Addr, in.Old, in.New)
	case IFAdd:
		return fmt.Sprintf("r%d = fadd [%v] += %v", in.Dst, in.Addr, in.Val)
	case IXchg:
		return fmt.Sprintf("r%d = xchg [%v] = %v", in.Dst, in.Addr, in.Val)
	case IFence:
		return fmt.Sprintf("fence.%v", in.Fence)
	case IMov:
		return fmt.Sprintf("r%d = %v", in.Dst, in.Val)
	case IBranch:
		return fmt.Sprintf("if %v goto %d", in.Cond, in.Target)
	case IJmp:
		return fmt.Sprintf("goto %d", in.Target)
	case IAssume:
		return fmt.Sprintf("assume %v", in.Cond)
	case IAssert:
		return fmt.Sprintf("assert %v (%s)", in.Cond, in.Msg)
	}
	return "?"
}

// Program is a complete concurrent test case.
type Program struct {
	Name     string
	Threads  [][]Instr
	NumLocs  int
	LocNames []string // len == NumLocs
	NumRegs  []int    // registers used per thread

	// Exists is the litmus-style final-state predicate ("is the
	// interesting/weak outcome observable?"). May be nil. It is evaluated
	// on complete executions only.
	Exists func(FinalState) bool
	// ExistsDesc documents the predicate for reports.
	ExistsDesc string
}

// FinalState is the observable end state of a complete execution: the final
// (coherence-maximal) value of every location and each thread's registers.
type FinalState struct {
	Mem  []int64   // indexed by Loc
	Regs [][]int64 // [thread][reg]
}

// Reg returns thread t's register r in the final state.
func (fs FinalState) Reg(t int, r Reg) int64 { return fs.Regs[t][r] }

// LocName returns the printable name of a location.
func (p *Program) LocName(l eg.Loc) string {
	if int(l) < len(p.LocNames) && p.LocNames[l] != "" {
		return p.LocNames[l]
	}
	return fmt.Sprintf("x%d", l)
}

// Validate checks static sanity: branch targets in range, register and
// location references within bounds.
func (p *Program) Validate() error {
	var errs []error
	if p.NumLocs <= 0 {
		errs = append(errs, fmt.Errorf("prog %q: no locations", p.Name))
	}
	for t, th := range p.Threads {
		for pc, in := range th {
			switch in.Op {
			case IBranch, IJmp:
				if in.Target < 0 || in.Target > len(th) {
					errs = append(errs, fmt.Errorf("prog %q: t%d pc%d target %d out of range", p.Name, t, pc, in.Target))
				}
			}
			for _, e := range []*Expr{in.Addr, in.Val, in.Old, in.New, in.Cond} {
				if e == nil {
					continue
				}
				for _, r := range e.Regs(nil) {
					if int(r) < 0 || int(r) >= p.NumRegs[t] {
						errs = append(errs, fmt.Errorf("prog %q: t%d pc%d register r%d out of range", p.Name, t, pc, r))
					}
				}
			}
		}
	}
	return errors.Join(errs...)
}

// Fingerprint returns a canonical content hash of the program: its
// instruction streams, location/register counts and Exists description,
// but not its Name or location names — two tests that differ only in
// labelling hash alike. The Exists closure itself cannot be hashed, so
// ExistsDesc stands in for it; programs built from litmus text (where the
// description is derived from the clause) therefore hash canonically,
// while hand-built programs must keep ExistsDesc faithful for the hash
// to be a sound cache key. This is the key of the service verdict cache.
func (p *Program) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "locs=%d\n", p.NumLocs)
	for t, th := range p.Threads {
		fmt.Fprintf(h, "T%d regs=%d\n", t, p.NumRegs[t])
		for pc, in := range th {
			fmt.Fprintf(h, " %d: %v\n", pc, in)
		}
	}
	fmt.Fprintf(h, "exists(%v)=%s\n", p.Exists != nil, p.ExistsDesc)
	return hex.EncodeToString(h.Sum(nil))
}

// String renders the whole program.
func (p *Program) String() string {
	s := fmt.Sprintf("program %q (%d locations)\n", p.Name, p.NumLocs)
	for t, th := range p.Threads {
		s += fmt.Sprintf("thread %d:\n", t)
		for pc, in := range th {
			s += fmt.Sprintf("  %2d: %v\n", pc, in)
		}
	}
	if p.ExistsDesc != "" {
		s += "exists: " + p.ExistsDesc + "\n"
	}
	return s
}
