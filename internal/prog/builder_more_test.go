package prog

import (
	"strings"
	"testing"

	"hmc/internal/eg"
)

// TestBuilderFullSurface drives every builder method through a program
// that uses them all, then checks the rendered form and Validate.
func TestBuilderFullSurface(t *testing.T) {
	b := NewBuilder("initial")
	b.SetName("surface")
	x := b.Loc("x")
	ys := b.Locs("y", 2)
	if len(ys) != 2 || ys[0] == ys[1] {
		t.Fatalf("Locs returned %v", ys)
	}
	if b.Loc("x") != x {
		t.Error("Loc must intern by name")
	}

	th := b.Thread()
	if th.ID() != 0 {
		t.Errorf("first thread ID = %d", th.ID())
	}
	r0 := th.LoadM(x, eg.ModeAcq)
	th.StoreM(x, Const(1), eg.ModeRel)
	v, s := th.CAS(x, Const(1), Const(2))
	v2, s2 := th.CASM(x, Const(2), Const(3), eg.ModeSC)
	fa := th.FAddM(x, Const(1), eg.ModeAcqRel)
	xc := th.XchgM(x, Const(9), eg.ModeRlx)
	xc2 := th.Xchg(ys[0], Const(5))
	mv := th.Mov(Add(R(r0), Const(1)))
	j := th.JmpFwd()
	th.Store(ys[1], Const(7)) // skipped by the jump
	th.Patch(j)
	aw := th.AwaitEq(ys[0], Const(5))
	th.Assume(Ge(R(aw), Const(0)))
	_ = []Reg{v, s, v2, s2, fa, xc, xc2, mv}

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "surface" {
		t.Errorf("SetName not applied: %q", p.Name)
	}
	if p.LocName(x) != "x" || p.LocName(ys[1]) != "y1" {
		t.Errorf("LocName wrong: %q %q", p.LocName(x), p.LocName(ys[1]))
	}
	out := p.String()
	for _, want := range []string{"surface", "cas", "fadd", "xchg", "goto", "assume"} {
		if !strings.Contains(out, want) {
			t.Errorf("program rendering missing %q:\n%s", want, out)
		}
	}
}

// TestValidateRejects: Validate catches out-of-range branch targets and
// registers (hand-corrupted programs; the builder cannot produce these).
func TestValidateRejects(t *testing.T) {
	mk := func() *Program {
		b := NewBuilder("bad")
		x := b.Loc("x")
		th := b.Thread()
		th.Load(x)
		return b.MustBuild()
	}

	p := mk()
	p.Threads[0] = append(p.Threads[0], Instr{Op: IJmp, Target: 99})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "target") {
		t.Errorf("want target error, got %v", err)
	}

	p = mk()
	p.Threads[0] = append(p.Threads[0], Instr{Op: IAssume, Cond: R(42)})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "register") {
		t.Errorf("want register error, got %v", err)
	}

	empty := &Program{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Error("no locations must be rejected")
	}
}

// TestPatchPanicsOnNonBranch: Patch targets must be branches or jumps.
func TestPatchPanicsOnNonBranch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Patch on a store must panic")
		}
	}()
	b := NewBuilder("p")
	x := b.Loc("x")
	th := b.Thread()
	th.Store(x, Const(1))
	th.Patch(0)
}

// TestExprString covers the expression renderer across every operator.
func TestExprString(t *testing.T) {
	e := Or(
		And(Eq(R(0), Const(1)), Ne(R(1), Const(2))),
		Not(Lt(Sub(R(2), Const(3)), Mul(Xor(R(3), Const(4)), Add(R(4), Const(5))))),
	)
	s := e.String()
	for _, want := range []string{"==", "!=", "<", "-", "*", "^", "+", "!", "&", "|"} {
		if !strings.Contains(s, want) {
			t.Errorf("expression rendering missing %q: %s", want, s)
		}
	}
	if Le(R(0), Const(1)).String() == "" || Gt(R(0), Const(1)).String() == "" || Ge(R(0), Const(1)).String() == "" {
		t.Error("comparison rendering empty")
	}
}
