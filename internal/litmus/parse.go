package litmus

import (
	"fmt"
	"strconv"
	"strings"

	"hmc/internal/eg"
	"hmc/internal/prog"
)

// Parse reads a litmus test in the repository's plain-text format:
//
//	# store buffering with fences
//	name SB+ff
//	T0: W x 1 ; F full ; r0 = R y
//	T1: W y 1 ; F full ; r1 = R x
//	exists T0:r0=0 & T1:r1=0
//
// Grammar (line-oriented; '#' starts a comment):
//
//	name <string>                     optional test name
//	T<n>: <instr> [; <instr>]...      thread n's instructions (appendable
//	                                  across several lines)
//	exists <atom> [& <atom>]...       the weak-outcome predicate
//
// Instructions:
//
//	W <loc> <val>                     store
//	<reg> = R <loc>                   load
//	F full|lw|ld                      fence
//	<reg> = CAS <loc> <old> <new>     compare-and-swap (reg gets the value
//	                                  read; "<reg>,<flag> = CAS ..." also
//	                                  binds the 0/1 success flag)
//	<reg> = FADD <loc> <delta>        atomic fetch-add
//	<reg> = XCHG <loc> <val>          atomic exchange
//	<reg> = AWAIT <loc> <val>         spin until the location holds val
//	                                  (load + assume; executions where the
//	                                  value never shows up count as
//	                                  blocked, and -live classifies them)
//
// Memory-order suffixes for the rc11 model attach with a dot: "W.rel",
// "R.acq", "CAS.acqrel", "W.sc", "R.rlx", … (hardware models ignore them).
//
// Atoms: "T<n>:<reg>=<val>" (a thread's final register) or "<loc>=<val>"
// (a location's final value). Locations and registers are interned on
// first use.
func Parse(src string) (*prog.Program, error) {
	p := &parser{
		b:    prog.NewBuilder("litmus"),
		regs: map[int]map[string]prog.Reg{},
	}
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
	}
	if len(p.threads) == 0 {
		return nil, fmt.Errorf("litmus: no threads defined")
	}
	if p.exists != nil {
		atoms := p.exists
		desc := p.existsDesc
		p.b.Exists(desc, func(fs prog.FinalState) bool {
			for _, a := range atoms {
				if !a(fs) {
					return false
				}
			}
			return true
		})
	}
	return p.b.Build()
}

type parser struct {
	b          *prog.Builder
	threads    []*prog.ThreadBuilder
	regs       map[int]map[string]prog.Reg
	exists     []func(prog.FinalState) bool
	existsDesc string
}

func (p *parser) thread(n int) (*prog.ThreadBuilder, error) {
	if n != len(p.threads) && n >= len(p.threads) {
		return nil, fmt.Errorf("thread T%d declared out of order (next is T%d)", n, len(p.threads))
	}
	if n == len(p.threads) {
		p.threads = append(p.threads, p.b.Thread())
		p.regs[n] = map[string]prog.Reg{}
	}
	return p.threads[n], nil
}

func (p *parser) reg(t int, name string, define bool) (prog.Reg, error) {
	if r, ok := p.regs[t][name]; ok {
		return r, nil
	}
	if !define {
		return 0, fmt.Errorf("unknown register %q in T%d", name, t)
	}
	r := p.threads[t].NewReg()
	p.regs[t][name] = r
	return r, nil
}

func (p *parser) line(line string) error {
	switch {
	case strings.HasPrefix(line, "name "):
		// Recorded via the builder-produced program below.
		p.b.SetName(strings.TrimSpace(strings.TrimPrefix(line, "name ")))
		return nil
	case strings.HasPrefix(line, "exists "):
		return p.parseExists(strings.TrimPrefix(line, "exists "))
	case strings.HasPrefix(line, "T"):
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return fmt.Errorf("expected 'T<n>:' prefix")
		}
		n, err := strconv.Atoi(line[1:colon])
		if err != nil {
			return fmt.Errorf("bad thread id %q", line[:colon])
		}
		t, err := p.thread(n)
		if err != nil {
			return err
		}
		for _, stmt := range strings.Split(line[colon+1:], ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := p.instr(n, t, stmt); err != nil {
				return fmt.Errorf("%q: %w", stmt, err)
			}
		}
		return nil
	}
	return fmt.Errorf("unrecognised line %q", line)
}

func (p *parser) instr(n int, t *prog.ThreadBuilder, stmt string) error {
	if eq := strings.Index(stmt, "="); eq >= 0 && !strings.HasPrefix(strings.TrimSpace(stmt[eq+1:]), "=") {
		dsts := strings.Split(strings.TrimSpace(stmt[:eq]), ",")
		return p.assignment(n, t, dsts, strings.TrimSpace(stmt[eq+1:]))
	}
	fields := strings.Fields(stmt)
	switch {
	case len(fields) == 3 && strings.HasPrefix(fields[0], "W"):
		mode, err := parseMode(fields[0], "W")
		if err != nil {
			return err
		}
		val, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad store value %q", fields[2])
		}
		t.StoreM(p.b.Loc(fields[1]), prog.Const(val), mode)
		return nil
	case len(fields) == 2 && fields[0] == "F":
		kind, ok := map[string]eg.FenceKind{
			"full": eg.FenceFull, "lw": eg.FenceLW, "ld": eg.FenceLD,
		}[fields[1]]
		if !ok {
			return fmt.Errorf("bad fence kind %q (want full/lw/ld)", fields[1])
		}
		t.Fence(kind)
		return nil
	}
	return fmt.Errorf("unrecognised instruction")
}

func (p *parser) assignment(n int, t *prog.ThreadBuilder, dsts []string, rhs string) error {
	fields := strings.Fields(rhs)
	if len(fields) == 0 {
		return fmt.Errorf("empty right-hand side")
	}
	bind := func(name string, r prog.Reg) {
		p.regs[n][strings.TrimSpace(name)] = r
	}
	num := func(s string) (int64, error) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad integer %q", s)
		}
		return v, nil
	}
	op := fields[0]
	var mode eg.Mode
	if dot := strings.IndexByte(op, '.'); dot >= 0 {
		var err error
		if mode, err = parseMode(op, op[:dot]); err != nil {
			return err
		}
		op = op[:dot]
	}
	switch op {
	case "R":
		if len(fields) != 2 || len(dsts) != 1 {
			return fmt.Errorf("want '<reg> = R <loc>'")
		}
		bind(dsts[0], t.LoadM(p.b.Loc(fields[1]), mode))
		return nil
	case "AWAIT":
		if len(fields) != 3 || len(dsts) != 1 {
			return fmt.Errorf("want '<reg> = AWAIT <loc> <val>'")
		}
		val, err := num(fields[2])
		if err != nil {
			return err
		}
		r := t.LoadM(p.b.Loc(fields[1]), mode)
		t.Assume(prog.Eq(prog.R(r), prog.Const(val)))
		bind(dsts[0], r)
		return nil
	case "CAS":
		if len(fields) != 4 || len(dsts) < 1 || len(dsts) > 2 {
			return fmt.Errorf("want '<reg>[,<flag>] = CAS <loc> <old> <new>'")
		}
		old, err := num(fields[2])
		if err != nil {
			return err
		}
		repl, err := num(fields[3])
		if err != nil {
			return err
		}
		v, s := t.CASM(p.b.Loc(fields[1]), prog.Const(old), prog.Const(repl), mode)
		bind(dsts[0], v)
		if len(dsts) == 2 {
			bind(dsts[1], s)
		}
		return nil
	case "FADD", "XCHG":
		fields[0] = op // mode suffix stripped above
		if len(fields) != 3 || len(dsts) != 1 {
			return fmt.Errorf("want '<reg> = %s <loc> <val>'", fields[0])
		}
		v, err := num(fields[2])
		if err != nil {
			return err
		}
		var r prog.Reg
		if op == "FADD" {
			r = t.FAddM(p.b.Loc(fields[1]), prog.Const(v), mode)
		} else {
			r = t.XchgM(p.b.Loc(fields[1]), prog.Const(v), mode)
		}
		bind(dsts[0], r)
		return nil
	}
	return fmt.Errorf("unrecognised operation %q", fields[0])
}

// parseMode extracts a ".order" suffix from an op token.
func parseMode(tok, op string) (eg.Mode, error) {
	rest := strings.TrimPrefix(tok, op)
	if rest == "" {
		return eg.ModePlain, nil
	}
	if !strings.HasPrefix(rest, ".") {
		return 0, fmt.Errorf("unrecognised instruction %q", tok)
	}
	m, ok := map[string]eg.Mode{
		"rlx": eg.ModeRlx, "acq": eg.ModeAcq, "rel": eg.ModeRel,
		"acqrel": eg.ModeAcqRel, "sc": eg.ModeSC,
	}[rest[1:]]
	if !ok {
		return 0, fmt.Errorf("bad memory order %q (want rlx/acq/rel/acqrel/sc)", rest[1:])
	}
	return m, nil
}

func (p *parser) parseExists(expr string) error {
	p.existsDesc = strings.TrimSpace(expr)
	for _, atom := range strings.Split(expr, "&") {
		atom = strings.TrimSpace(atom)
		eq := strings.IndexByte(atom, '=')
		if eq < 0 {
			return fmt.Errorf("bad atom %q (want lhs=val)", atom)
		}
		lhs := strings.TrimSpace(atom[:eq])
		val, err := strconv.ParseInt(strings.TrimSpace(atom[eq+1:]), 10, 64)
		if err != nil {
			return fmt.Errorf("bad atom value in %q", atom)
		}
		if strings.HasPrefix(lhs, "T") && strings.Contains(lhs, ":") {
			colon := strings.IndexByte(lhs, ':')
			tn, err := strconv.Atoi(lhs[1:colon])
			if err != nil || tn < 0 || tn >= len(p.threads) {
				return fmt.Errorf("bad thread in atom %q", atom)
			}
			r, err := p.reg(tn, lhs[colon+1:], false)
			if err != nil {
				return err
			}
			thread := tn
			p.exists = append(p.exists, func(fs prog.FinalState) bool {
				return fs.Reg(thread, r) == val
			})
		} else {
			loc := p.b.Loc(lhs)
			p.exists = append(p.exists, func(fs prog.FinalState) bool {
				return fs.Mem[loc] == val
			})
		}
	}
	return nil
}
