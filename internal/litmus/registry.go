package litmus

import (
	"hmc/internal/eg"
)

// vd builds a full verdict map in the fixed model order. arm is ARMv8-lite
// (multi-copy-atomic); imm is IMM-lite (POWER-flavoured, non-MCA).
func vd(sc, tso, pso, arm, ra, relaxed, imm bool) map[string]bool {
	return map[string]bool{
		"sc": sc, "tso": tso, "pso": pso, "arm": arm, "ra": ra, "relaxed": relaxed, "imm": imm,
	}
}

// ex builds an execution-count map (pass -1 to omit a model).
func ex(sc, tso, pso, arm, ra, relaxed, imm int) map[string]int {
	m := map[string]int{}
	put := func(name string, v int) {
		if v >= 0 {
			m[name] = v
		}
	}
	put("sc", sc)
	put("tso", tso)
	put("pso", pso)
	put("arm", arm)
	put("ra", ra)
	put("relaxed", relaxed)
	put("imm", imm)
	return m
}

// rc11Verdicts overlays the rc11 expectations onto the corpus. Under
// rc11-lite, unannotated accesses are relaxed atomics: there is no
// synchronises-with (so MP-style tests are allowed even where RA forbids
// them), dependencies and lw/ld fences carry no meaning, po∪rf cycles are
// forbidden outright (every LB variant), and full fences act as seq_cst
// anchors (restoring SB/MP/IRIW/R when fully fenced).
var rc11Verdicts = map[string]bool{
	"SB": true, "SB+ffs": false, "SB+lws": true,
	"MP": true, "MP+ff+ff": false, "MP+lw+ld": true, "MP+lw+addr": true,
	"MP+po+addr": true, "MP+lw+ctrl": true,
	"LB": false, "LB+datas": false, "LB+ctrls": false, "LB+valdeps": false, "LB+data+po": false,
	"2+2W": true, "2+2W+lws": true,
	"IRIW": true, "IRIW+ffs": false, "IRIW+addrs": true,
	"WRC": true, "WRC+data+addr": true,
	"S+po+po": true, "S+lw+data": true,
	"R+po+po": true, "R+ff+ff": false,
	"ISA2": true, "ISA2+lw+data+addr": true,
	"RWC+pos": true, "RWC+ffs": false,
	"CoRR": false, "inc(2)": false, "cas-agree": false, "CoWR": false,
	"CoWW": false, "CoRW1": false, "CoRW2": false,
}

// Corpus returns the full litmus-test corpus with expected verdicts.
// Verdicts follow the published behaviour of the corresponding hardware
// tests (x86-TSO, SPARC PSO, POWER-flavoured IMM-lite); see DESIGN.md for
// the IMM-lite axioms these pin down.
func Corpus() []Test {
	tests := corpus()
	for i := range tests {
		if v, ok := rc11Verdicts[tests[i].Name]; ok {
			tests[i].Allowed["rc11"] = v
		}
	}
	tests = append(tests, modeTests()...)
	return tests
}

func corpus() []Test {
	const (
		ff = eg.FenceFull
		lw = eg.FenceLW
		ld = eg.FenceLD
		no = eg.FenceNone
	)
	return []Test{
		// --- store buffering ---
		{Name: "SB", P: SB(no),
			Allowed:    vd(false, true, true, true, true, true, true),
			Executions: ex(3, 4, 4, 4, 4, 4, 4)},
		{Name: "SB+ffs", P: SB(ff),
			Allowed:    vd(false, false, false, false, true, true, false),
			Executions: ex(3, 3, 3, 3, 4, 4, 3)},
		{Name: "SB+lws", P: SB(lw),
			Allowed: vd(false, true, true, true, true, true, true)},

		// --- message passing ---
		{Name: "MP", P: MP(no, no, MPNone),
			Allowed:    vd(false, false, true, true, false, true, true),
			Executions: ex(3, 3, 4, 4, 3, 4, 4)},
		{Name: "MP+ff+ff", P: MP(ff, ff, MPNone),
			Allowed: vd(false, false, false, false, false, true, false)},
		{Name: "MP+lw+ld", P: MP(lw, ld, MPNone),
			Allowed: vd(false, false, false, false, false, true, false)},
		{Name: "MP+lw+addr", P: MP(lw, no, MPAddr),
			Allowed: vd(false, false, false, false, false, true, false)},
		{Name: "MP+po+addr", P: MP(no, no, MPAddr),
			Allowed: vd(false, false, true, true, false, true, true)},
		{Name: "MP+lw+ctrl", P: MP(lw, no, MPCtrl),
			// A control dependency does not order read→read on hardware:
			// MP stays allowed under IMM even with a fenced writer.
			Allowed: vd(false, false, false, true, false, true, true)},

		// --- load buffering: the HMC headline family ---
		{Name: "LB", P: LB(LBNone),
			Allowed:    vd(false, false, false, true, false, true, true),
			Executions: ex(3, 3, 3, 4, 3, 4, 4)},
		// The dependencies in LB+datas/LB+ctrls are *value-preserving*
		// (multiply-by-zero / always-fallthrough): the (1,1) execution is
		// constructively derivable, so the coherence-only model observes
		// it, while IMM's dependency-cycle axiom (no thin air) forbids it.
		{Name: "LB+datas", P: LB(LBData),
			Allowed:    vd(false, false, false, false, false, true, false),
			Executions: ex(3, 3, 3, 3, 3, 4, 3)},
		{Name: "LB+ctrls", P: LB(LBCtrl),
			Allowed: vd(false, false, false, false, false, true, false)},
		// LB+valdeps copies the read value for real: the "both read 1"
		// outcome is genuine out-of-thin-air. Constructive exploration
		// still derives the rf-cyclic execution — but with the only
		// justifiable values (all zero), so Exists never holds anywhere,
		// and under IMM the dependency cycle rules the graph out entirely.
		{Name: "LB+valdeps", P: LBVal(),
			Allowed:    vd(false, false, false, false, false, false, false),
			Executions: ex(3, 3, 3, 3, 3, 4, 3)},
		{Name: "LB+data+po", P: LB(LBOne),
			Allowed: vd(false, false, false, true, false, true, true)},

		// --- 2+2W ---
		{Name: "2+2W", P: TwoPlusTwoW(no),
			Allowed:    vd(false, false, true, true, true, true, true),
			Executions: ex(3, 3, 4, 4, 4, 4, 4)},
		{Name: "2+2W+lws", P: TwoPlusTwoW(lw),
			Allowed: vd(false, false, false, false, true, true, false)},

		// --- IRIW ---
		{Name: "IRIW", P: IRIW(no, false),
			Allowed:    vd(false, false, false, true, true, true, true),
			Executions: ex(15, 15, 15, 16, 16, 16, 16)},
		{Name: "IRIW+ffs", P: IRIW(ff, false),
			Allowed: vd(false, false, false, false, true, true, false)},
		{Name: "IRIW+addrs", P: IRIW(no, true),
			// The MCA divide: address dependencies alone forbid IRIW on
			// ARMv8 (multi-copy-atomic) but not on POWER-flavoured IMM.
			Allowed:    vd(false, false, false, false, true, true, true),
			Executions: ex(15, 15, 15, 15, 16, 16, 16)},

		// --- WRC / S / R ---
		{Name: "WRC", P: WRC(false),
			Allowed:    vd(false, false, false, true, false, true, true),
			Executions: ex(7, 7, 7, 8, 7, 8, 8)},
		{Name: "WRC+data+addr", P: WRC(true),
			Allowed: vd(false, false, false, false, false, true, false)},
		{Name: "S+po+po", P: S(no, false),
			Allowed:    vd(false, false, true, true, false, true, true),
			Executions: ex(3, 3, 4, 4, 3, 4, 4)},
		{Name: "S+lw+data", P: S(lw, true),
			Allowed: vd(false, false, false, false, false, true, false)},
		{Name: "R+po+po", P: R(no),
			Allowed:    vd(false, true, true, true, true, true, true),
			Executions: ex(3, 4, 4, 4, 4, 4, 4)},
		{Name: "R+ff+ff", P: R(ff),
			Allowed: vd(false, false, false, false, true, true, false)},

		// --- ISA2 / RWC ---
		{Name: "ISA2", P: ISA2(no, false),
			Allowed: vd(false, false, true, true, false, true, true)},
		{Name: "ISA2+lw+data+addr", P: ISA2(lw, true),
			// B-cumulativity: the writer's fence plus the dependency chain
			// forbids the stale read on both hardware models.
			Allowed: vd(false, false, false, false, false, true, false)},
		// RWC needs only the W→R reordering on T2: allowed from TSO on
		// (the checker corrected the author's first guess here).
		{Name: "RWC+pos", P: RWC(no),
			Allowed: vd(false, true, true, true, true, true, true)},
		{Name: "RWC+ffs", P: RWC(ff),
			Allowed: vd(false, false, false, false, true, true, false)},

		// --- coherence / atomicity ---
		{Name: "CoRR", P: CoRR(),
			Allowed:    vd(false, false, false, false, false, false, false),
			Executions: ex(3, 3, 3, 3, 3, 3, 3)},
		{Name: "inc(2)", P: Inc(2),
			Allowed:    vd(false, false, false, false, false, false, false),
			Executions: ex(2, 2, 2, 2, 2, 2, 2)},
		{Name: "cas-agree", P: CASAgree(),
			Allowed: vd(false, false, false, false, false, false, false)},
		{Name: "CoWR", P: CoWR(),
			Allowed:    vd(false, false, false, false, false, false, false),
			Executions: ex(3, 3, 3, 3, 3, 3, 3)},
		{Name: "CoWW", P: CoWW(),
			Allowed:    vd(false, false, false, false, false, false, false),
			Executions: ex(1, 1, 1, 1, 1, 1, 1)},
		{Name: "CoRW1", P: CoRW1(),
			Allowed:    vd(false, false, false, false, false, false, false),
			Executions: ex(1, 1, 1, 1, 1, 1, 1)},
		{Name: "CoRW2", P: CoRW2(),
			Allowed:    vd(false, false, false, false, false, false, false),
			Executions: ex(3, 3, 3, 3, 3, 3, 3)},
	}
}

// ByName returns the corpus test with the given name.
func ByName(name string) (Test, bool) {
	for _, t := range Corpus() {
		if t.Name == name {
			return t, true
		}
	}
	return Test{}, false
}

// Names lists all corpus test names in order.
func Names() []string {
	ts := Corpus()
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}
