package litmus

import (
	"strings"
	"testing"

	"hmc/internal/core"
	"hmc/internal/eg"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// mustCheck explores p under the named model.
func mustCheck(t *testing.T, p *prog.Program, model string) *core.Result {
	t.Helper()
	m, err := memmodel.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Explore(p, core.Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCorpusIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, tc := range Corpus() {
		if tc.Name == "" {
			t.Error("corpus entry without a name")
		}
		if seen[tc.Name] {
			t.Errorf("duplicate corpus name %q", tc.Name)
		}
		seen[tc.Name] = true
		if tc.P == nil {
			t.Errorf("%s: nil program", tc.Name)
			continue
		}
		if err := tc.P.Validate(); err != nil {
			t.Errorf("%s: %v", tc.Name, err)
		}
		if tc.P.Exists == nil {
			t.Errorf("%s: no Exists clause", tc.Name)
		}
		for model := range tc.Allowed {
			if _, err := memmodel.ByName(model); err != nil {
				t.Errorf("%s: verdict for unknown model %q", tc.Name, model)
			}
		}
		for model, n := range tc.Executions {
			if _, ok := tc.Allowed[model]; !ok {
				t.Errorf("%s: execution count for model %q without a verdict", tc.Name, model)
			}
			if n <= 0 {
				t.Errorf("%s: nonsensical execution count %d", tc.Name, n)
			}
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	names := Names()
	if len(names) != len(Corpus()) {
		t.Fatalf("Names() has %d entries, corpus %d", len(names), len(Corpus()))
	}
	for _, n := range names {
		if _, ok := ByName(n); !ok {
			t.Errorf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName must fail for unknown tests")
	}
}

func TestVerdictMonotonicity(t *testing.T) {
	// If a stronger model allows an outcome, every weaker one must too.
	chains := [][]string{{"sc", "tso", "pso", "arm", "imm", "relaxed"}, {"sc", "ra", "relaxed"}, {"sc", "rc11", "relaxed"}}
	for _, tc := range Corpus() {
		for _, chain := range chains {
			for i := 0; i+1 < len(chain); i++ {
				lo, okLo := tc.Allowed[chain[i]]
				hi, okHi := tc.Allowed[chain[i+1]]
				if okLo && okHi && lo && !hi {
					t.Errorf("%s: allowed under %s but forbidden under weaker %s",
						tc.Name, chain[i], chain[i+1])
				}
			}
		}
	}
}

const sbSrc = `
# store buffering
name SB
T0: W x 1 ; r0 = R y
T1: W y 1 ; r1 = R x
exists T0:r0=0 & T1:r1=0
`

func TestParseSB(t *testing.T) {
	p, err := Parse(sbSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "SB" {
		t.Errorf("name = %q", p.Name)
	}
	if len(p.Threads) != 2 || p.NumLocs != 2 {
		t.Fatalf("shape: %d threads, %d locs", len(p.Threads), p.NumLocs)
	}
	// The weak-outcome state: both read 0.
	fs := prog.FinalState{Mem: []int64{1, 1}, Regs: [][]int64{{0}, {0}}}
	if !p.Exists(fs) {
		t.Error("exists predicate must hold for both-zero registers")
	}
	fs.Regs[0][0] = 1
	if p.Exists(fs) {
		t.Error("exists predicate must fail when a register is 1")
	}
}

func TestParseAllForms(t *testing.T) {
	src := `
name forms
T0: W x 5 ; F full ; F lw ; F ld
T1: r = R x ; v,ok = CAS y 0 3 ; a = FADD x 2 ; b = XCHG y 7
exists T1:ok=1 & x=5
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Threads[0]); got != 4 {
		t.Errorf("T0 has %d instructions, want 4", got)
	}
	if got := len(p.Threads[1]); got != 4 {
		t.Errorf("T1 has %d instructions, want 4", got)
	}
	kinds := []prog.InstrOp{prog.IStore, prog.IFence, prog.IFence, prog.IFence}
	for i, in := range p.Threads[0] {
		if in.Op != kinds[i] {
			t.Errorf("T0[%d] op = %d, want %d", i, in.Op, kinds[i])
		}
	}
	if p.Threads[0][1].Fence != eg.FenceFull || p.Threads[0][3].Fence != eg.FenceLD {
		t.Error("fence kinds mangled")
	}
}

func TestParseMultiLineThreads(t *testing.T) {
	src := `
T0: W x 1
T0: W y 1
T1: r0 = R y
T1: r1 = R x
exists T1:r0=1 & T1:r1=0
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Threads[0]) != 2 || len(p.Threads[1]) != 2 {
		t.Fatalf("thread continuation broken: %d/%d", len(p.Threads[0]), len(p.Threads[1]))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, wantErr string }{
		{"T0: Q x 1", "unrecognised"},
		{"T1: W x 1", "out of order"},
		{"T0: W x one", "bad store value"},
		{"T0: F mega", "bad fence kind"},
		{"T0: W x 1\nexists T0:r9=1", "unknown register"},
		{"T0: W x 1\nexists T5:r0=1", "bad thread"},
		{"T0: W x 1\nexists x", "bad atom"},
		{"T0: r0 = AWAIT x", "want '<reg> = AWAIT <loc> <val>'"},
		{"T0: r0 = AWAIT x one", "bad integer"},
		{"bogus line", "unrecognised line"},
		{"# only a comment", "no threads"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.src, err, c.wantErr)
		}
	}
}

func TestParsedMatchesCorpusSB(t *testing.T) {
	// The parsed SB must behave identically to the built-in corpus SB:
	// same thread shapes and the same exists semantics.
	parsed, err := Parse(sbSrc)
	if err != nil {
		t.Fatal(err)
	}
	built, _ := ByName("SB")
	if len(parsed.Threads) != len(built.P.Threads) {
		t.Fatal("thread count mismatch")
	}
	for ti := range parsed.Threads {
		if len(parsed.Threads[ti]) != len(built.P.Threads[ti]) {
			t.Errorf("T%d length mismatch", ti)
		}
	}
}

func TestParseModes(t *testing.T) {
	src := `
name MP+rel+acq
T0: W x 1 ; W.rel y 1
T1: r0 = R.acq y ; r1 = R x
exists T1:r0=1 & T1:r1=0
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Threads[0][1].Mode; got != eg.ModeRel {
		t.Errorf("store mode = %v, want rel", got)
	}
	if got := p.Threads[1][0].Mode; got != eg.ModeAcq {
		t.Errorf("load mode = %v, want acq", got)
	}
	if got := p.Threads[1][1].Mode; got != eg.ModePlain {
		t.Errorf("plain load mode = %v", got)
	}
	res := mustCheck(t, p, "rc11")
	if res.ExistsCount != 0 {
		t.Error("MP+rel+acq must be forbidden under rc11")
	}
	hw := mustCheck(t, p, "imm")
	if hw.ExistsCount == 0 {
		t.Error("annotations must mean nothing to imm")
	}
}

func TestParseModeErrors(t *testing.T) {
	for _, src := range []string{
		"T0: W.mega x 1",
		"T0: r = R.huge x",
		"T0: Wx x 1",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) must fail", src)
		}
	}
}

func TestParseRMWModes(t *testing.T) {
	src := `
T0: a = FADD.rel x 1 ; b = XCHG.acqrel x 2 ; c,ok = CAS.sc x 0 1
exists x=1
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []eg.Mode{eg.ModeRel, eg.ModeAcqRel, eg.ModeSC}
	for i, m := range want {
		if got := p.Threads[0][i].Mode; got != m {
			t.Errorf("instr %d mode = %v, want %v", i, got, m)
		}
	}
}

// TestParseAwait checks the AWAIT spin instruction: the handshake below
// has exactly one complete execution (the await observed the store) plus
// one blocked execution (it read the stale init value).
func TestParseAwait(t *testing.T) {
	src := `
name handshake
T0: W x 1
T1: r0 = AWAIT x 1 ; r1 = R y
exists T1:r0=1
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := memmodel.ByName("sc")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Explore(p, core.Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions != 1 || res.Blocked != 1 || res.ExistsCount != 1 {
		t.Errorf("executions=%d blocked=%d exists=%d, want 1/1/1",
			res.Executions, res.Blocked, res.ExistsCount)
	}
	// A mode suffix parses too and the deadlock shape is classified.
	dead, err := Parse("T0: r0 = AWAIT.acq x 2\nT1: W x 1\n")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.CheckLiveness(dead, m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Live() {
		t.Error("awaiting a never-written value must be a liveness violation")
	}
}
