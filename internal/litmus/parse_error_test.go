package litmus

import (
	"strings"
	"testing"
)

// TestParseErrorDiagnostics walks every diagnostic the parser can raise
// (the short table in litmus_test.go spot-checks a few), pinning both
// the exact message and — where a source line is at fault — the
// "line N:" prefix that points users at it.
func TestParseErrorDiagnostics(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no threads", "name empty\n", "no threads defined"},
		{"exists only", "exists x=1\n", "no threads defined"},
		{"unrecognised line", "thread 0: W x 1\n", `line 1: unrecognised line "thread 0: W x 1"`},
		{"missing colon", "T0 W x 1\n", "line 1: expected 'T<n>:' prefix"},
		{"bad thread id", "Tx: W x 1\n", `line 1: bad thread id "Tx"`},
		{"thread out of order", "T0: W x 1\nT2: W y 1\n", "line 2: thread T2 declared out of order (next is T1)"},
		{"bad store value", "T0: W x one\n", `bad store value "one"`},
		{"bad fence kind", "T0: F mfence\n", `bad fence kind "mfence" (want full/lw/ld)`},
		{"unrecognised instruction", "T0: W x\n", "unrecognised instruction"},
		{"empty rhs", "T0: r0 =\n", "empty right-hand side"},
		{"load arity", "T0: r0 = R x 1\n", "want '<reg> = R <loc>'"},
		{"load two dsts", "T0: r0,r1 = R x\n", "want '<reg> = R <loc>'"},
		{"await arity", "T0: r0 = AWAIT x\n", "want '<reg> = AWAIT <loc> <val>'"},
		{"await bad value", "T0: r0 = AWAIT x one\n", `bad integer "one"`},
		{"cas arity", "T0: r0 = CAS x 0\n", "want '<reg>[,<flag>] = CAS <loc> <old> <new>'"},
		{"cas three dsts", "T0: a,b,c = CAS x 0 1\n", "want '<reg>[,<flag>] = CAS <loc> <old> <new>'"},
		{"cas bad old", "T0: r0 = CAS x zero 1\n", `bad integer "zero"`},
		{"fadd arity", "T0: r0 = FADD x\n", "want '<reg> = FADD <loc> <val>'"},
		{"xchg arity", "T0: r0 = XCHG x 1 2\n", "want '<reg> = XCHG <loc> <val>'"},
		{"unrecognised operation", "T0: r0 = FROB x 1\n", `unrecognised operation "FROB"`},
		{"bad memory order", "T0: W.weird x 1\n", `bad memory order "weird" (want rlx/acq/rel/acqrel/sc)`},
		{"glued mode suffix", "T0: Wx y 1\n", `unrecognised instruction "Wx"`},
		{"bad atom", "T0: W x 1\nexists x\n", `line 2: bad atom "x" (want lhs=val)`},
		{"bad atom value", "T0: W x 1\nexists x=yes\n", `bad atom value in "x=yes"`},
		{"bad thread in atom", "T0: W x 1\nexists T9:r0=1\n", `bad thread in atom "T9:r0=1"`},
		{"unknown register in exists", "T0: W x 1\nexists T0:r7=1\n", `unknown register "r7" in T0`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.src, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Parse(%q) error = %q, want substring %q", tc.src, err, tc.want)
			}
		})
	}
}

// TestParseErrorRecoveryBoundary pins behaviours adjacent to the error
// paths: comments and blank lines don't shift reported line numbers, and
// statements after a semicolon are independently diagnosed.
func TestParseErrorRecoveryBoundary(t *testing.T) {
	_, err := Parse("# header comment\n\nT0: W x 1\nT0: F sideways\n")
	if err == nil || !strings.Contains(err.Error(), "line 4:") {
		t.Errorf("error must carry the raw source line number, got %v", err)
	}
	// The offending statement is named even when it follows healthy ones.
	_, err = Parse("T0: W x 1 ; W y oops\n")
	if err == nil || !strings.Contains(err.Error(), `"W y oops"`) {
		t.Errorf("error must quote the failing statement, got %v", err)
	}
	// Trailing semicolons and interior blank statements are tolerated.
	if _, err := Parse("T0: W x 1 ; ; W y 1 ;\nexists x=1\n"); err != nil {
		t.Errorf("empty statements must be skipped, got %v", err)
	}
}
