// Package litmus provides the classic litmus-test corpus with per-model
// expected verdicts. The corpus plays two roles: it pins the behaviour of
// the axiomatic models in internal/memmodel (the role the published model
// tables play for the real HMC), and it is the workload of experiments T1,
// T2 and T6.
package litmus

import (
	"fmt"

	"hmc/internal/eg"
	"hmc/internal/prog"
)

// Test is one litmus test: a program with an Exists clause (the "weak
// outcome"), the expected verdict per model, and — where hand-computed —
// the expected number of consistent executions per model.
type Test struct {
	Name string
	P    *prog.Program
	// Allowed maps model name → whether the Exists outcome is observable.
	Allowed map[string]bool
	// Executions maps model name → expected count of consistent complete
	// executions (entries present only where hand-verified).
	Executions map[string]int
}

// dep helpers: value-preserving expressions that carry a syntactic
// dependency on register r.

// dataDep returns an expression equal to e but data-dependent on r.
func dataDep(r prog.Reg, e *prog.Expr) *prog.Expr {
	return prog.Add(prog.Mul(prog.R(r), prog.Const(0)), e)
}

// addrOf returns an address expression for loc that is address-dependent
// on r (the classic xor/multiply-by-zero idiom).
func addrOf(r prog.Reg, loc eg.Loc) *prog.Expr {
	return prog.Add(prog.Mul(prog.R(r), prog.Const(0)), prog.Const(int64(loc)))
}

// ctrlDep emits a branch on r that falls through either way, creating a
// control dependency for everything po-later.
func ctrlDep(t *prog.ThreadBuilder, r prog.Reg) {
	t.Branch(prog.Ne(prog.R(r), prog.Const(-1)), t.Here()+1)
}

// fenceName renders a fence kind for test names.
func fenceName(k eg.FenceKind) string {
	switch k {
	case eg.FenceFull:
		return "ff"
	case eg.FenceLW:
		return "lw"
	case eg.FenceLD:
		return "ld"
	}
	return "po"
}

// ---- Store buffering -----------------------------------------------------

// SB builds the store-buffering test, optionally with a fence between each
// thread's write and read.
func SB(fence eg.FenceKind) *prog.Program {
	b := prog.NewBuilder("SB+" + fenceName(fence) + "s")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	if fence != eg.FenceNone {
		t0.Fence(fence)
	}
	r0 := t0.Load(y)
	t1 := b.Thread()
	t1.Store(y, prog.Const(1))
	if fence != eg.FenceNone {
		t1.Fence(fence)
	}
	r1 := t1.Load(x)
	b.Exists("r0=0 && r1=0", func(fs prog.FinalState) bool {
		return fs.Reg(0, r0) == 0 && fs.Reg(1, r1) == 0
	})
	return b.MustBuild()
}

// ---- Message passing -----------------------------------------------------

// MPDep selects the reader-side ordering mechanism for MP.
type MPDep int

const (
	MPNone MPDep = iota
	MPAddr       // address dependency between the reads
	MPCtrl       // control dependency (does not order R→R on hardware)
)

// MP builds message passing: writer stores data then flag (with optional
// fence between), reader loads flag then data (with optional fence or
// dependency between).
func MP(writerFence, readerFence eg.FenceKind, dep MPDep) *prog.Program {
	name := fmt.Sprintf("MP+%s+%s", fenceName(writerFence), fenceName(readerFence))
	switch dep {
	case MPAddr:
		name = fmt.Sprintf("MP+%s+addr", fenceName(writerFence))
	case MPCtrl:
		name = fmt.Sprintf("MP+%s+ctrl", fenceName(writerFence))
	}
	b := prog.NewBuilder(name)
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	if writerFence != eg.FenceNone {
		t0.Fence(writerFence)
	}
	t0.Store(y, prog.Const(1))
	t1 := b.Thread()
	ry := t1.Load(y)
	var rx prog.Reg
	switch dep {
	case MPAddr:
		rx = t1.LoadAt(addrOf(ry, x))
	case MPCtrl:
		ctrlDep(t1, ry)
		rx = t1.Load(x)
	default:
		if readerFence != eg.FenceNone {
			t1.Fence(readerFence)
		}
		rx = t1.Load(x)
	}
	b.Exists("ry=1 && rx=0", func(fs prog.FinalState) bool {
		return fs.Reg(1, ry) == 1 && fs.Reg(1, rx) == 0
	})
	return b.MustBuild()
}

// ---- Load buffering --------------------------------------------------------

// LBDep selects the thread-local ordering mechanism for LB.
type LBDep int

const (
	LBNone LBDep = iota
	LBData       // data dependency from each read into the following write
	LBCtrl       // control dependency
	LBOne        // data dependency on one side only
)

// LB builds load buffering: each thread reads one location then writes the
// other; the weak outcome is both reads observing 1.
func LB(dep LBDep) *prog.Program {
	name := map[LBDep]string{LBNone: "LB", LBData: "LB+datas", LBCtrl: "LB+ctrls", LBOne: "LB+data+po"}[dep]
	b := prog.NewBuilder(name)
	x, y := b.Loc("x"), b.Loc("y")

	side := func(t *prog.ThreadBuilder, from, to eg.Loc, withDep bool) prog.Reg {
		r := t.Load(from)
		val := prog.Const(1)
		switch {
		case withDep && dep == LBCtrl:
			ctrlDep(t, r)
		case withDep:
			val = dataDep(r, val)
		}
		t.Store(to, val)
		return r
	}
	t0 := b.Thread()
	r0 := side(t0, x, y, dep != LBNone)
	t1 := b.Thread()
	r1 := side(t1, y, x, dep == LBData || dep == LBCtrl)
	b.Exists("r0=1 && r1=1", func(fs prog.FinalState) bool {
		return fs.Reg(0, r0) == 1 && fs.Reg(1, r1) == 1
	})
	return b.MustBuild()
}

// LBVal builds load buffering with *genuine* value copies: each thread
// stores the value it read. The "both 1" outcome is out of thin air.
func LBVal() *prog.Program {
	b := prog.NewBuilder("LB+valdeps")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	r0 := t0.Load(x)
	t0.Store(y, prog.R(r0))
	t1 := b.Thread()
	r1 := t1.Load(y)
	t1.Store(x, prog.R(r1))
	b.Exists("r0=1 && r1=1", func(fs prog.FinalState) bool {
		return fs.Reg(0, r0) == 1 && fs.Reg(1, r1) == 1
	})
	return b.MustBuild()
}

// ---- 2+2W ----------------------------------------------------------------

// TwoPlusTwoW builds the 2+2W test: each thread writes both locations in
// opposite orders; the weak outcome is each location retaining the *first*
// write of a thread (x=1 ∧ y=1).
func TwoPlusTwoW(fence eg.FenceKind) *prog.Program {
	b := prog.NewBuilder("2+2W+" + fenceName(fence) + "s")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	if fence != eg.FenceNone {
		t0.Fence(fence)
	}
	t0.Store(y, prog.Const(2))
	t1 := b.Thread()
	t1.Store(y, prog.Const(1))
	if fence != eg.FenceNone {
		t1.Fence(fence)
	}
	t1.Store(x, prog.Const(2))
	b.Exists("x=1 && y=1", func(fs prog.FinalState) bool {
		return fs.Mem[x] == 1 && fs.Mem[y] == 1
	})
	return b.MustBuild()
}

// ---- IRIW ------------------------------------------------------------------

// IRIW builds independent-reads-of-independent-writes with optional fences
// or address dependencies between each reader's loads.
func IRIW(fence eg.FenceKind, addrDeps bool) *prog.Program {
	name := "IRIW+" + fenceName(fence) + "s"
	if addrDeps {
		name = "IRIW+addrs"
	}
	b := prog.NewBuilder(name)
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t1 := b.Thread()
	t1.Store(y, prog.Const(1))
	reader := func(first, second eg.Loc) (prog.Reg, prog.Reg) {
		t := b.Thread()
		a := t.Load(first)
		var c prog.Reg
		if addrDeps {
			c = t.LoadAt(addrOf(a, second))
		} else {
			if fence != eg.FenceNone {
				t.Fence(fence)
			}
			c = t.Load(second)
		}
		return a, c
	}
	r2x, r2y := reader(x, y)
	r3y, r3x := reader(y, x)
	b.Exists("r2=(1,0) && r3=(1,0)", func(fs prog.FinalState) bool {
		return fs.Reg(2, r2x) == 1 && fs.Reg(2, r2y) == 0 &&
			fs.Reg(3, r3y) == 1 && fs.Reg(3, r3x) == 0
	})
	return b.MustBuild()
}

// ---- WRC, S, R -------------------------------------------------------------

// WRC builds write-to-read causality: T0 writes x; T1 reads x and writes y;
// T2 reads y then x. With deps: data dep into T1's write, addr dep between
// T2's reads.
func WRC(deps bool) *prog.Program {
	name := "WRC"
	if deps {
		name = "WRC+data+addr"
	}
	b := prog.NewBuilder(name)
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t1 := b.Thread()
	rx := t1.Load(x)
	val := prog.Const(1)
	if deps {
		val = dataDep(rx, val)
	}
	t1.Store(y, val)
	t2 := b.Thread()
	ry := t2.Load(y)
	var rx2 prog.Reg
	if deps {
		rx2 = t2.LoadAt(addrOf(ry, x))
	} else {
		rx2 = t2.Load(x)
	}
	b.Exists("t1.rx=1 && t2.ry=1 && t2.rx=0", func(fs prog.FinalState) bool {
		return fs.Reg(1, rx) == 1 && fs.Reg(2, ry) == 1 && fs.Reg(2, rx2) == 0
	})
	return b.MustBuild()
}

// S builds the S test: T0 writes x=2 then (fence) y=1; T1 reads y and
// (data-dependent) writes x=1. Weak outcome: y read 1 yet x finally 2
// (T1's write coherence-before T0's).
func S(fence eg.FenceKind, dep bool) *prog.Program {
	name := "S+" + fenceName(fence) + "+po"
	if dep {
		name = "S+" + fenceName(fence) + "+data"
	}
	b := prog.NewBuilder(name)
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, prog.Const(2))
	if fence != eg.FenceNone {
		t0.Fence(fence)
	}
	t0.Store(y, prog.Const(1))
	t1 := b.Thread()
	ry := t1.Load(y)
	val := prog.Const(1)
	if dep {
		val = dataDep(ry, val)
	}
	t1.Store(x, val)
	b.Exists("ry=1 && x=2", func(fs prog.FinalState) bool {
		return fs.Reg(1, ry) == 1 && fs.Mem[x] == 2
	})
	return b.MustBuild()
}

// R builds the R test: T0 writes x then y; T1 writes y then reads x. Weak
// outcome: T1's write coherence-after T0's y-write, yet T1 reads x=0.
func R(fence eg.FenceKind) *prog.Program {
	b := prog.NewBuilder("R+" + fenceName(fence) + "s")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	if fence != eg.FenceNone {
		t0.Fence(fence)
	}
	t0.Store(y, prog.Const(1))
	t1 := b.Thread()
	t1.Store(y, prog.Const(2))
	if fence != eg.FenceNone {
		t1.Fence(fence)
	}
	rx := t1.Load(x)
	b.Exists("y=2 && rx=0", func(fs prog.FinalState) bool {
		return fs.Mem[y] == 2 && fs.Reg(1, rx) == 0
	})
	return b.MustBuild()
}

// ISA2 chains message passing through three threads: T0 publishes x then
// (fence) y; T1 reads y and (data-dependent) writes z; T2 reads z and
// (addr-dependent) reads x. With the fence and both dependencies the
// stale read of x is forbidden on every hardware model (B-cumulativity of
// the fence); without them it is allowed.
func ISA2(fence eg.FenceKind, deps bool) *prog.Program {
	name := "ISA2"
	if fence != eg.FenceNone || deps {
		name = fmt.Sprintf("ISA2+%s+%s", fenceName(fence), map[bool]string{true: "data+addr", false: "po+po"}[deps])
	}
	b := prog.NewBuilder(name)
	x, y, z := b.Loc("x"), b.Loc("y"), b.Loc("z")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	if fence != eg.FenceNone {
		t0.Fence(fence)
	}
	t0.Store(y, prog.Const(1))
	t1 := b.Thread()
	ry := t1.Load(y)
	val := prog.Const(1)
	if deps {
		val = dataDep(ry, val)
	}
	t1.Store(z, val)
	t2 := b.Thread()
	rz := t2.Load(z)
	var rx prog.Reg
	if deps {
		rx = t2.LoadAt(addrOf(rz, x))
	} else {
		rx = t2.Load(x)
	}
	b.Exists("ry=1 && rz=1 && rx=0", func(fs prog.FinalState) bool {
		return fs.Reg(1, ry) == 1 && fs.Reg(2, rz) == 1 && fs.Reg(2, rx) == 0
	})
	return b.MustBuild()
}

// RWC is read-to-write causality: T0 writes x; T1 reads x then (fence)
// reads y; T2 writes y then (fence) reads x. The weak outcome chains an
// observed write with two stale reads.
func RWC(fence eg.FenceKind) *prog.Program {
	b := prog.NewBuilder("RWC+" + fenceName(fence) + "s")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t1 := b.Thread()
	rx := t1.Load(x)
	if fence != eg.FenceNone {
		t1.Fence(fence)
	}
	ry := t1.Load(y)
	t2 := b.Thread()
	t2.Store(y, prog.Const(1))
	if fence != eg.FenceNone {
		t2.Fence(fence)
	}
	rx2 := t2.Load(x)
	b.Exists("t1 sees x not y; t2 sees neither", func(fs prog.FinalState) bool {
		return fs.Reg(1, rx) == 1 && fs.Reg(1, ry) == 0 && fs.Reg(2, rx2) == 0
	})
	return b.MustBuild()
}

// CoWR checks write-read coherence on one thread: after writing x := 1,
// the same thread must not read an older (init) value even if another
// thread writes concurrently.
func CoWR() *prog.Program {
	b := prog.NewBuilder("CoWR")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	r := t0.Load(x)
	t1 := b.Thread()
	t1.Store(x, prog.Const(2))
	b.Exists("own write overtaken by init", func(fs prog.FinalState) bool {
		return fs.Reg(0, r) == 0
	})
	return b.MustBuild()
}

// ---- Coherence and RMW -----------------------------------------------------

// CoRR builds the coherence read-read test: one writer, one reader reading
// twice; the weak (forbidden everywhere) outcome is new-then-old.
func CoRR() *prog.Program {
	b := prog.NewBuilder("CoRR")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t1 := b.Thread()
	r1 := t1.Load(x)
	r2 := t1.Load(x)
	b.Exists("r1=1 && r2=0", func(fs prog.FinalState) bool {
		return fs.Reg(1, r1) == 1 && fs.Reg(1, r2) == 0
	})
	return b.MustBuild()
}

// CoWW checks write-write coherence: a thread's two same-location writes
// must hit coherence in program order — the older value can never be the
// final one.
func CoWW() *prog.Program {
	b := prog.NewBuilder("CoWW")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t0.Store(x, prog.Const(2))
	b.Exists("final x = 1 (po-earlier write co-last)", func(fs prog.FinalState) bool {
		return fs.Mem[x] == 1
	})
	return b.MustBuild()
}

// CoRW1 checks read-write coherence within one thread: a read must not
// observe the same thread's po-later write.
func CoRW1() *prog.Program {
	b := prog.NewBuilder("CoRW1")
	x := b.Loc("x")
	t0 := b.Thread()
	r := t0.Load(x)
	t0.Store(x, prog.Const(1))
	b.Exists("r = 1 (read from own future write)", func(fs prog.FinalState) bool {
		return fs.Reg(0, r) == 1
	})
	return b.MustBuild()
}

// CoRW2 checks read-write coherence across threads: if a read observes
// another thread's write, the reader's own po-later write must be
// coherence-after it (the observed write cannot also be final).
func CoRW2() *prog.Program {
	b := prog.NewBuilder("CoRW2")
	x := b.Loc("x")
	t0 := b.Thread()
	r := t0.Load(x)
	t0.Store(x, prog.Const(1))
	t1 := b.Thread()
	t1.Store(x, prog.Const(2))
	b.Exists("r = 2 && final x = 2", func(fs prog.FinalState) bool {
		return fs.Reg(0, r) == 2 && fs.Mem[x] == 2
	})
	return b.MustBuild()
}

// Inc builds n threads each atomically incrementing a counter; the Exists
// clause asks whether the final count can be *less* than n (lost update —
// forbidden by atomicity under every model).
func Inc(n int) *prog.Program {
	b := prog.NewBuilder(fmt.Sprintf("inc(%d)", n))
	x := b.Loc("x")
	for i := 0; i < n; i++ {
		t := b.Thread()
		t.FAdd(x, prog.Const(1))
	}
	b.Exists(fmt.Sprintf("x < %d", n), func(fs prog.FinalState) bool {
		return fs.Mem[x] < int64(n)
	})
	return b.MustBuild()
}

// CASAgree builds two threads CASing x from 0 to their ID; the weak
// outcome is both succeeding (forbidden by atomicity).
func CASAgree() *prog.Program {
	b := prog.NewBuilder("cas-agree")
	x := b.Loc("x")
	t0 := b.Thread()
	_, s0 := t0.CAS(x, prog.Const(0), prog.Const(1))
	t1 := b.Thread()
	_, s1 := t1.CAS(x, prog.Const(0), prog.Const(2))
	b.Exists("both CAS succeed", func(fs prog.FinalState) bool {
		return fs.Reg(0, s0) == 1 && fs.Reg(1, s1) == 1
	})
	return b.MustBuild()
}
