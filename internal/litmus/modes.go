package litmus

import (
	"hmc/internal/eg"
	"hmc/internal/prog"
)

// This file adds mode-annotated (C11-style) litmus tests for the rc11
// model — and documents the compilation story: rel/acq annotations mean
// nothing to the hardware models (they order via fences and dependencies
// only), which is exactly why compilers must map rel/acq onto fences.

// MPModes builds message passing with the given write mode on the flag
// store and read mode on the flag load.
func MPModes(wmode, rmode eg.Mode) *prog.Program {
	b := prog.NewBuilder("MP+" + wmode.String() + "+" + rmode.String())
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t0.StoreM(y, prog.Const(1), wmode)
	t1 := b.Thread()
	ry := t1.LoadM(y, rmode)
	rx := t1.Load(x)
	b.Exists("ry=1 && rx=0", func(fs prog.FinalState) bool {
		return fs.Reg(1, ry) == 1 && fs.Reg(1, rx) == 0
	})
	return b.MustBuild()
}

// SBSC builds store buffering with seq_cst accesses throughout.
func SBSC() *prog.Program {
	b := prog.NewBuilder("SB+scs")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.StoreM(x, prog.Const(1), eg.ModeSC)
	r0 := t0.LoadM(y, eg.ModeSC)
	t1 := b.Thread()
	t1.StoreM(y, prog.Const(1), eg.ModeSC)
	r1 := t1.LoadM(x, eg.ModeSC)
	b.Exists("r0=0 && r1=0", func(fs prog.FinalState) bool {
		return fs.Reg(0, r0) == 0 && fs.Reg(1, r1) == 0
	})
	return b.MustBuild()
}

// MPRelAcqRMW builds message passing where the flag is raised by a
// release fetch-add and consumed by an acquire read through a relaxed
// RMW chain — exercising rc11 release sequences.
func MPRelAcqRMW() *prog.Program {
	b := prog.NewBuilder("MP+rel-rmw+acq")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t0.FAddM(y, prog.Const(1), eg.ModeRel) // release head of the sequence
	t1 := b.Thread()
	t1.FAddM(y, prog.Const(1), eg.ModeRlx) // relaxed link in the chain
	t2 := b.Thread()
	ry := t2.LoadM(y, eg.ModeAcq)
	rx := t2.Load(x)
	b.Exists("ry=2 && rx=0", func(fs prog.FinalState) bool {
		return fs.Reg(2, ry) == 2 && fs.Reg(2, rx) == 0
	})
	return b.MustBuild()
}

// IRIWSC builds independent-reads-independent-writes with every access
// seq_cst: the canonical psc test. C11 guarantees a total order over SC
// accesses, so the two readers cannot disagree on the write order — while
// the same program with the annotations stripped is observable on
// non-MCA hardware.
func IRIWSC() *prog.Program {
	b := prog.NewBuilder("IRIW+scs")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.StoreM(x, prog.Const(1), eg.ModeSC)
	t1 := b.Thread()
	t1.StoreM(y, prog.Const(1), eg.ModeSC)
	t2 := b.Thread()
	rx := t2.LoadM(x, eg.ModeSC)
	ry := t2.LoadM(y, eg.ModeSC)
	t3 := b.Thread()
	ry2 := t3.LoadM(y, eg.ModeSC)
	rx2 := t3.LoadM(x, eg.ModeSC)
	b.Exists("readers disagree on the write order", func(fs prog.FinalState) bool {
		return fs.Reg(2, rx) == 1 && fs.Reg(2, ry) == 0 &&
			fs.Reg(3, ry2) == 1 && fs.Reg(3, rx2) == 0
	})
	return b.MustBuild()
}

// SBSCRlx builds store buffering with one thread seq_cst and the other
// relaxed: rc11's psc axiom only orders SC-annotated events, so a single
// annotated thread buys nothing — the weak outcome stays observable.
func SBSCRlx() *prog.Program {
	b := prog.NewBuilder("SB+sc+rlx")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.StoreM(x, prog.Const(1), eg.ModeSC)
	r0 := t0.LoadM(y, eg.ModeSC)
	t1 := b.Thread()
	t1.StoreM(y, prog.Const(1), eg.ModeRlx)
	r1 := t1.LoadM(x, eg.ModeRlx)
	b.Exists("r0=0 && r1=0", func(fs prog.FinalState) bool {
		return fs.Reg(0, r0) == 0 && fs.Reg(1, r1) == 0
	})
	return b.MustBuild()
}

// modeTests returns the mode-annotated corpus entries. Hardware models
// ignore the annotations, so the weak outcomes stay observable there —
// the formal witness that rel/acq must be *compiled* to fences.
func modeTests() []Test {
	return []Test{
		{Name: "MP+rel+acq", P: MPModes(eg.ModeRel, eg.ModeAcq),
			Allowed: map[string]bool{
				"sc": false, "ra": false, "rc11": false, // synchronised
				"pso": true, "arm": true, "imm": true, // annotations mean nothing in hardware
				"relaxed": true,
			}},
		{Name: "MP+rel+rlx", P: MPModes(eg.ModeRel, eg.ModeRlx),
			// No acquire on the reader: no synchronises-with edge.
			Allowed: map[string]bool{"rc11": true, "ra": false, "sc": false}},
		{Name: "MP+rlx+acq", P: MPModes(eg.ModeRlx, eg.ModeAcq),
			Allowed: map[string]bool{"rc11": true, "ra": false, "sc": false}},
		{Name: "SB+scs", P: SBSC(),
			Allowed: map[string]bool{
				"sc": false, "rc11": false, // seq_cst restores SB
				"tso": true, "arm": true, "imm": true, // hardware ignores modes
			}},
		{Name: "MP+rel-rmw+acq", P: MPRelAcqRMW(),
			// The acquire read synchronises through the whole release
			// sequence, including the relaxed RMW link.
			Allowed: map[string]bool{"rc11": false, "sc": false, "relaxed": true, "imm": true}},
		{Name: "IRIW+scs", P: IRIWSC(),
			Allowed: map[string]bool{
				"sc": false, "rc11": false, // psc totally orders the SC accesses
				// Hardware ignores the annotations, so the plain-IRIW
				// verdicts apply: forbidden on tso (no R-R reorder, MCA),
				// observable on arm/imm/ra/relaxed.
				"tso": false, "arm": true, "imm": true,
				"relaxed": true, "ra": true,
			}},
		{Name: "SB+sc+rlx", P: SBSCRlx(),
			// psc only constrains SC-annotated events: annotating one
			// thread buys nothing.
			Allowed: map[string]bool{"sc": false, "rc11": true, "tso": true, "relaxed": true}},
	}
}
