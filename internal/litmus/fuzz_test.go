package litmus

import (
	"fmt"
	"strings"
	"testing"

	"hmc/internal/eg"
	"hmc/internal/prog"
)

// FuzzParseLitmus drives the parser — the service's untrusted-input
// boundary — with arbitrary text. The contract under fuzzing: Parse never
// panics, and any program it accepts is well-formed enough for the
// operations the service performs on every submission (Validate,
// Fingerprint, String) to run without panicking.
func FuzzParseLitmus(f *testing.F) {
	// Grammar-covering handwritten seeds: every instruction form, mode
	// suffixes, comments, multi-line thread appends, both exists atoms.
	seeds := []string{
		"name SB\nT0: W x 1 ; r0 = R y\nT1: W y 1 ; r1 = R x\nexists T0:r0=0 & T1:r1=0\n",
		"T0: W x 1 ; F full ; r0 = R y\nT1: W y 1 ; F lw ; F ld ; r1 = R x\n",
		"name rmw\nT0: r0,ok = CAS x 0 1 ; r1 = FADD y 2 ; r2 = XCHG z 3\nexists T0:r0=0 & y=2\n",
		"name annotated\nT0: W.rel x 1 ; r0 = R.acq y\nT1: r1,f = CAS.acqrel x 1 2 ; W.sc y 1 ; r2 = R.rlx x\nexists x=2\n",
		"# comment only\nname spin\nT0: W x 1\nT1: r0 = AWAIT x 1 ; r1 = R x\nexists T1:r1=1\n",
		"T0: W x 1\nT0: W y 1 # appended to the same thread\nT1: r0 = R y ; r1 = R x\n",
		"name bad\nT5: W x 1\n",
		"exists T0:r0=0\n",
		"T0: W x notanumber\n",
	}
	for _, src := range seeds {
		f.Add(src)
	}
	// Rendered corpus seeds: every corpus program expressible in the text
	// format round-trips through the renderer, giving the fuzzer
	// realistic, parser-accepted starting points.
	for _, tc := range Corpus() {
		if src, ok := renderLitmus(tc.P); ok {
			f.Add(src)
		}
	}

	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		if p == nil {
			t.Fatalf("Parse returned nil program and nil error for %q", src)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted program fails Validate: %v\nsource:\n%s", err, src)
		}
		_ = p.Fingerprint()
		_ = p.String()
	})
}

// renderLitmus renders a corpus program back into the plain-text litmus
// format, when it is expressible there: const-addressed loads, stores,
// RMWs and fences only (dependency idioms use register arithmetic the
// text format has no syntax for). The Exists clause is dropped — closures
// cannot be rendered.
func renderLitmus(p *prog.Program) (string, bool) {
	var b strings.Builder
	fmt.Fprintf(&b, "name %s\n", strings.ReplaceAll(p.Name, " ", "_"))
	for t, th := range p.Threads {
		var stmts []string
		for _, in := range th {
			s, ok := renderInstr(p, in)
			if !ok {
				return "", false
			}
			stmts = append(stmts, s)
		}
		if len(stmts) == 0 {
			return "", false
		}
		fmt.Fprintf(&b, "T%d: %s\n", t, strings.Join(stmts, " ; "))
	}
	return b.String(), true
}

func renderInstr(p *prog.Program, in prog.Instr) (string, bool) {
	loc := func(e *prog.Expr) (string, bool) {
		if e == nil || e.Op != prog.EConst {
			return "", false
		}
		name := p.LocName(eg.Loc(e.K))
		// The parser splits on these; a location name containing them
		// (none in the corpus) would not round-trip.
		if strings.ContainsAny(name, " ;:=&#.") {
			return "", false
		}
		return name, true
	}
	konst := func(e *prog.Expr) (int64, bool) {
		if e == nil || e.Op != prog.EConst {
			return 0, false
		}
		return e.K, true
	}
	mode, ok := map[eg.Mode]string{
		eg.ModePlain: "", eg.ModeRlx: ".rlx", eg.ModeAcq: ".acq",
		eg.ModeRel: ".rel", eg.ModeAcqRel: ".acqrel", eg.ModeSC: ".sc",
	}[in.Mode]
	if !ok {
		return "", false
	}
	switch in.Op {
	case prog.ILoad:
		l, ok := loc(in.Addr)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("r%d = R%s %s", in.Dst, mode, l), true
	case prog.IStore:
		l, ok := loc(in.Addr)
		v, ok2 := konst(in.Val)
		if !ok || !ok2 {
			return "", false
		}
		return fmt.Sprintf("W%s %s %d", mode, l, v), true
	case prog.ICAS:
		l, ok := loc(in.Addr)
		old, ok2 := konst(in.Old)
		repl, ok3 := konst(in.New)
		if !ok || !ok2 || !ok3 {
			return "", false
		}
		if in.Succ >= 0 {
			return fmt.Sprintf("r%d,r%d = CAS%s %s %d %d", in.Dst, in.Succ, mode, l, old, repl), true
		}
		return fmt.Sprintf("r%d = CAS%s %s %d %d", in.Dst, mode, l, old, repl), true
	case prog.IFAdd:
		l, ok := loc(in.Addr)
		v, ok2 := konst(in.Val)
		if !ok || !ok2 {
			return "", false
		}
		return fmt.Sprintf("r%d = FADD%s %s %d", in.Dst, mode, l, v), true
	case prog.IXchg:
		l, ok := loc(in.Addr)
		v, ok2 := konst(in.Val)
		if !ok || !ok2 {
			return "", false
		}
		return fmt.Sprintf("r%d = XCHG%s %s %d", in.Dst, mode, l, v), true
	case prog.IFence:
		kind, ok := map[eg.FenceKind]string{
			eg.FenceFull: "full", eg.FenceLW: "lw", eg.FenceLD: "ld",
		}[in.Fence]
		if !ok {
			return "", false
		}
		return "F " + kind, true
	}
	return "", false
}

// TestRenderLitmusRoundTrips pins the seed renderer itself: every corpus
// program it renders must parse back, and the round-tripped program must
// validate. (The fuzz seeds are only as good as the renderer.)
func TestRenderLitmusRoundTrips(t *testing.T) {
	rendered := 0
	for _, tc := range Corpus() {
		src, ok := renderLitmus(tc.P)
		if !ok {
			continue
		}
		rendered++
		p, err := Parse(src)
		if err != nil {
			t.Errorf("%s: rendered source does not parse: %v\n%s", tc.Name, err, src)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: round-tripped program invalid: %v", tc.Name, err)
		}
	}
	if rendered == 0 {
		t.Fatal("renderer produced no corpus seeds at all")
	}
}
