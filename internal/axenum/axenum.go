// Package axenum is a herd7-style axiomatic enumerator: the classic
// baseline that HMC-style exploration is measured against. Instead of
// exploring execution graphs incrementally, it
//
//  1. guesses a value for every read (bounded value oracle) and replays
//     each thread *independently* to obtain its event list (with
//     dependencies, via its own taint tracking — deliberately a second,
//     independent implementation of the semantics);
//  2. enumerates every reads-from assignment compatible with the guessed
//     values and every coherence order per location;
//  3. filters the resulting candidate graphs through the memory model's
//     consistency predicate.
//
// The candidate set is exponentially larger than the consistent set —
// which is precisely the comparison the paper's evaluation draws — and the
// consistent set is exact, which makes this package the ground-truth
// oracle for the optimality and completeness tests of internal/core.
package axenum

import (
	"context"
	"fmt"
	"sort"

	"hmc/internal/eg"
	"hmc/internal/interp"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// Options configures the enumeration.
type Options struct {
	// Model is the consistency filter (required).
	Model memmodel.Model
	// ValueBound is the inclusive upper bound for guessed read values
	// (lower bound 0). ≤0 derives a sound bound from the program: the
	// largest constant plus one per RMW instruction.
	ValueBound int64
	// MaxSteps bounds each thread replay.
	MaxSteps int
	// MaxCandidates aborts after enumerating this many candidates (0 =
	// unlimited).
	MaxCandidates int
	// Context, when non-nil, lets callers cancel the enumeration. The
	// loops poll it periodically; on cancellation the result is marked
	// Interrupted and the partial counters are returned.
	Context context.Context
}

// Result aggregates the enumeration.
type Result struct {
	ThreadVariants int // distinct per-thread event sequences over all guesses
	Candidates     int // well-formed rf×co candidate graphs examined
	Consistent     int // distinct model-consistent executions
	ExistsCount    int
	Blocked        int // value assignments whose replay blocks
	Truncated      bool
	Interrupted    bool // Options.Context was cancelled mid-enumeration
	Errors         []string
	// Keys is the set of canonical execution keys of consistent
	// executions (same format as eg.Graph.Key, diffable against core).
	Keys map[string]bool
	// Finals maps canonical final states of consistent executions.
	Finals map[string]prog.FinalState
}

// Explore enumerates all executions of p under opts.
func Explore(p *prog.Program, opts Options) (*Result, error) {
	if opts.Model == nil {
		return nil, fmt.Errorf("axenum: Options.Model is required")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = interp.DefaultMaxSteps
	}
	if opts.ValueBound <= 0 {
		opts.ValueBound = deriveValueBound(p)
	}
	e := &enumerator{
		p:    p,
		opts: opts,
		res: &Result{
			Keys:   map[string]bool{},
			Finals: map[string]prog.FinalState{},
		},
	}
	e.run()
	return e.res, nil
}

// deriveValueBound returns max constant in the program plus one per RMW
// instruction (each fetch-add can raise values by its constant delta; a
// generous sound bound for the small programs this baseline targets).
func deriveValueBound(p *prog.Program) int64 {
	var maxConst int64
	var walk func(e *prog.Expr)
	walk = func(e *prog.Expr) {
		if e == nil {
			return
		}
		if e.Op == prog.EConst && e.K > maxConst {
			maxConst = e.K
		}
		walk(e.A)
		walk(e.B)
	}
	growers := int64(0)
	for _, th := range p.Threads {
		for _, in := range th {
			walk(in.Addr)
			walk(in.Val)
			walk(in.Old)
			walk(in.New)
			walk(in.Cond)
			switch in.Op {
			case prog.ICAS, prog.IFAdd, prog.IXchg:
				growers++
			case prog.IStore:
				// A store whose value involves a register can re-emit a
				// read value incremented by the expression's constants.
				if in.Val != nil && len(in.Val.Regs(nil)) > 0 {
					growers++
				}
			}
		}
	}
	return maxConst + growers + 1
}

type enumerator struct {
	p     *prog.Program
	opts  Options
	res   *Result
	stop  bool
	polls int
}

// cancelled polls Options.Context (cheaply: one select every pollEvery
// calls) and raises the stop flag when it is done. Every enumeration loop
// funnels through a call site of this, so cancellation latency is bounded
// by the work between polls.
const pollEvery = 1024

func (e *enumerator) cancelled() bool {
	if e.stop {
		return true
	}
	if e.opts.Context == nil {
		return false
	}
	e.polls++
	if e.polls%pollEvery != 1 {
		return false
	}
	select {
	case <-e.opts.Context.Done():
		e.res.Interrupted = true
		e.stop = true
		return true
	default:
		return false
	}
}

func (e *enumerator) run() {
	// Phase 1: per-thread variants over all read-value guesses.
	variants := make([][]threadVariant, len(e.p.Threads))
	for t := range e.p.Threads {
		variants[t] = e.threadVariants(t)
	}
	// Phase 2: combine threads, enumerate rf and co, filter.
	combo := make([]threadVariant, len(e.p.Threads))
	e.combine(variants, 0, combo)
}

// combine walks the cartesian product of thread variants.
func (e *enumerator) combine(vars [][]threadVariant, t int, combo []threadVariant) {
	if e.cancelled() {
		return
	}
	if t == len(vars) {
		for _, v := range combo {
			switch v.status {
			case stBlocked:
				e.res.Blocked++
				return
			case stError:
				// The assertion failure was recorded when the variant was
				// generated; error-terminated shapes have no complete
				// executions to enumerate.
				return
			}
		}
		e.enumerateGraphs(combo)
		return
	}
	for i := range vars[t] {
		combo[t] = vars[t][i]
		e.combine(vars, t+1, combo)
	}
}

// writeRef identifies a write event and the value it leaves in memory.
type writeRef struct {
	id  eg.EvID
	val int64
}

// flatEvent pairs an event with the value its read part was guessed to
// observe.
type flatEvent struct {
	ev      eg.Event
	readVal int64
}

// enumerateGraphs enumerates rf assignments and coherence orders for one
// combination of thread event lists.
func (e *enumerator) enumerateGraphs(combo []threadVariant) {
	writesByLoc := make([][]writeRef, e.p.NumLocs)
	var reads []int // indices into events
	var events []flatEvent
	for t, v := range combo {
		for i, ev := range v.events {
			ev.ID = eg.EvID{T: t, I: i}
			events = append(events, flatEvent{ev: ev, readVal: v.readVals[i]})
		}
	}
	for i, fe := range events {
		if fe.ev.Kind.IsRead() {
			reads = append(reads, i)
		}
		if fe.ev.Kind.IsWrite() {
			writesByLoc[fe.ev.Loc] = append(writesByLoc[fe.ev.Loc], writeRef{id: fe.ev.ID, val: fe.ev.Val})
		}
	}

	// rf candidates per read: same location, matching value (init is 0).
	rfCands := make([][]eg.EvID, len(reads))
	for ri, idx := range reads {
		fe := events[idx]
		if fe.readVal == 0 {
			rfCands[ri] = append(rfCands[ri], eg.InitID(fe.ev.Loc))
		}
		for _, w := range writesByLoc[fe.ev.Loc] {
			if w.id != fe.ev.ID && w.val == fe.readVal {
				rfCands[ri] = append(rfCands[ri], w.id)
			}
		}
		if len(rfCands[ri]) == 0 {
			return // guessed value unjustifiable by any write
		}
	}

	rf := make([]eg.EvID, len(reads))
	var assignRF func(ri int)
	assignRF = func(ri int) {
		if e.cancelled() {
			return
		}
		if ri == len(reads) {
			e.enumerateCo(events, reads, rf, writesByLoc)
			return
		}
		for _, w := range rfCands[ri] {
			rf[ri] = w
			assignRF(ri + 1)
		}
	}
	assignRF(0)
}

// enumerateCo enumerates, for a fixed rf assignment, every combination of
// per-location coherence permutations, assembles the graph and checks it.
func (e *enumerator) enumerateCo(events []flatEvent, reads []int, rf []eg.EvID, writesByLoc [][]writeRef) {
	perms := make([][][]eg.EvID, e.p.NumLocs)
	for l := range writesByLoc {
		ids := make([]eg.EvID, len(writesByLoc[l]))
		for i, w := range writesByLoc[l] {
			ids[i] = w.id
		}
		perms[l] = permutations(ids)
	}
	co := make([][]eg.EvID, e.p.NumLocs)
	var assignCo func(l int)
	assignCo = func(l int) {
		if e.cancelled() {
			return
		}
		if l == e.p.NumLocs {
			e.checkCandidate(events, reads, rf, co)
			return
		}
		for _, perm := range perms[l] {
			co[l] = perm
			assignCo(l + 1)
		}
	}
	assignCo(0)
}

// permutations returns all orderings of ids.
func permutations(ids []eg.EvID) [][]eg.EvID {
	if len(ids) == 0 {
		return [][]eg.EvID{nil}
	}
	var out [][]eg.EvID
	for i := range ids {
		rest := make([]eg.EvID, 0, len(ids)-1)
		rest = append(rest, ids[:i]...)
		rest = append(rest, ids[i+1:]...)
		for _, sub := range permutations(rest) {
			perm := append([]eg.EvID{ids[i]}, sub...)
			out = append(out, perm)
		}
	}
	return out
}

// checkCandidate assembles one candidate graph and counts it if the model
// accepts it.
func (e *enumerator) checkCandidate(events []flatEvent, reads []int, rf []eg.EvID, co [][]eg.EvID) {
	e.res.Candidates++
	if e.opts.MaxCandidates > 0 && e.res.Candidates >= e.opts.MaxCandidates {
		e.res.Truncated = true
		e.stop = true
	}
	g := eg.NewGraph(len(e.p.Threads), e.p.NumLocs)
	for _, fe := range events {
		g.Add(fe.ev)
	}
	for l, perm := range co {
		for i, w := range perm {
			g.CoInsert(eg.Loc(l), i, w)
		}
	}
	for ri, idx := range reads {
		g.SetRF(events[idx].ev.ID, rf[ri])
	}
	if !e.opts.Model.Consistent(eg.NewView(g)) {
		return
	}
	key := g.Key()
	if e.res.Keys[key] {
		return // same execution reached via a different guess vector
	}
	e.res.Keys[key] = true
	e.res.Consistent++
	// Strict replay both validates the independent interpreter against
	// internal/interp and produces the observable final state.
	fs := interp.FinalState(e.p, g, e.opts.MaxSteps)
	e.res.Finals[finalKey(fs)] = fs
	if e.p.Exists != nil && e.p.Exists(fs) {
		e.res.ExistsCount++
	}
}

func finalKey(fs prog.FinalState) string {
	return fmt.Sprintf("%v|%v", fs.Mem, fs.Regs)
}

// SortedKeys returns the consistent execution keys in sorted order.
func (r *Result) SortedKeys() []string {
	out := make([]string, 0, len(r.Keys))
	for k := range r.Keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
