package axenum

import (
	"fmt"

	"hmc/internal/eg"
	"hmc/internal/prog"
)

// status classifies how a thread replay ended.
type status int

const (
	stDone status = iota
	stBlocked
	stError
)

// threadVariant is one possible event sequence of a single thread, induced
// by a vector of guessed read values. readVals is aligned with events and
// holds, for read events, the guessed value observed.
type threadVariant struct {
	events   []eg.Event
	readVals []int64
	regs     []int64
	status   status
	msg      string
}

func variantKey(v threadVariant) string {
	key := fmt.Sprintf("s%d|", v.status)
	for i, ev := range v.events {
		key += fmt.Sprintf("%v=%d;", ev, v.readVals[i])
	}
	return key
}

// threadVariants enumerates all distinct event sequences of thread t over
// guessed read values in [0, ValueBound].
func (e *enumerator) threadVariants(t int) []threadVariant {
	var out []threadVariant
	seen := map[string]bool{}
	var rec func(guesses []int64)
	rec = func(guesses []int64) {
		if e.cancelled() {
			return
		}
		v, needMore := e.replayThread(t, guesses)
		if needMore {
			for val := int64(0); val <= e.opts.ValueBound; val++ {
				rec(append(guesses[:len(guesses):len(guesses)], val))
			}
			return
		}
		if v.status == stError {
			e.res.Errors = append(e.res.Errors, v.msg)
		}
		key := variantKey(v)
		if !seen[key] {
			seen[key] = true
			out = append(out, v)
			e.res.ThreadVariants++
		}
	}
	rec(nil)
	return out
}

// replayThread runs thread t feeding reads from the guess vector. It is an
// independent reimplementation of the replay semantics (on purpose: the
// baseline doubles as a differential oracle for internal/interp).
func (e *enumerator) replayThread(t int, guesses []int64) (threadVariant, bool) {
	code := e.p.Threads[t]
	regs := make([]int64, e.p.NumRegs[t])
	taints := make([][]eg.EvID, e.p.NumRegs[t])
	var ctrl []eg.EvID
	var v threadVariant
	nextGuess := 0
	pc := 0
	steps := 0

	clone := func(ids []eg.EvID) []eg.EvID {
		if len(ids) == 0 {
			return nil
		}
		return append([]eg.EvID(nil), ids...)
	}
	union := func(a, b []eg.EvID) []eg.EvID {
		out := clone(a)
	outer:
		for _, id := range b {
			for _, x := range out {
				if x == id {
					continue outer
				}
			}
			out = append(out, id)
		}
		return out
	}
	evalT := func(ex *prog.Expr) (int64, []eg.EvID) {
		var taint []eg.EvID
		val := ex.Eval(regs, func(r prog.Reg) {
			taint = union(taint, taints[r])
		})
		return val, taint
	}
	emit := func(ev eg.Event, readVal int64) eg.EvID {
		ev.ID = eg.EvID{T: t, I: len(v.events)}
		v.events = append(v.events, ev)
		v.readVals = append(v.readVals, readVal)
		return ev.ID
	}
	guess := func() (int64, bool) {
		if nextGuess < len(guesses) {
			nextGuess++
			return guesses[nextGuess-1], true
		}
		return 0, false
	}
	fail := func(st status, msg string) threadVariant {
		v.status = st
		v.msg = msg
		v.regs = regs
		return v
	}

	for {
		if steps >= e.opts.MaxSteps {
			return fail(stBlocked, "step bound exceeded"), false
		}
		steps++
		if pc >= len(code) {
			v.regs = regs
			v.status = stDone
			return v, false
		}
		in := code[pc]
		pc++
		switch in.Op {
		case prog.IMov:
			val, taint := evalT(in.Val)
			regs[in.Dst] = val
			taints[in.Dst] = taint

		case prog.ILoad:
			av, at := evalT(in.Addr)
			if av < 0 || av >= int64(e.p.NumLocs) {
				return fail(stError, fmt.Sprintf("thread %d: address %d out of range", t, av)), false
			}
			val, ok := guess()
			if !ok {
				return v, true
			}
			id := emit(eg.Event{Kind: eg.KRead, Loc: eg.Loc(av), Mode: in.Mode, Addr: at, Ctrl: clone(ctrl)}, val)
			regs[in.Dst] = val
			taints[in.Dst] = []eg.EvID{id}

		case prog.IStore:
			av, at := evalT(in.Addr)
			vv, vt := evalT(in.Val)
			if av < 0 || av >= int64(e.p.NumLocs) {
				return fail(stError, fmt.Sprintf("thread %d: address %d out of range", t, av)), false
			}
			emit(eg.Event{Kind: eg.KWrite, Loc: eg.Loc(av), Val: vv, Mode: in.Mode, Addr: at, Data: vt, Ctrl: clone(ctrl)}, 0)

		case prog.ICAS, prog.IFAdd, prog.IXchg:
			av, at := evalT(in.Addr)
			if av < 0 || av >= int64(e.p.NumLocs) {
				return fail(stError, fmt.Sprintf("thread %d: address %d out of range", t, av)), false
			}
			loc := eg.Loc(av)
			readVal, ok := guess()
			if !ok {
				// Evaluate operands later on the retry with the guess.
				return v, true
			}
			var ev eg.Event
			switch in.Op {
			case prog.ICAS:
				ov, ot := evalT(in.Old)
				nv, nt := evalT(in.New)
				if readVal == ov {
					ev = eg.Event{Kind: eg.KUpdate, Loc: loc, Val: nv}
				} else {
					ev = eg.Event{Kind: eg.KRead, Loc: loc}
				}
				ev.Data = union(ot, nt)
			case prog.IFAdd:
				dv, dt := evalT(in.Val)
				ev = eg.Event{Kind: eg.KUpdate, Loc: loc, Val: readVal + dv, Data: dt}
			case prog.IXchg:
				vv, vt := evalT(in.Val)
				ev = eg.Event{Kind: eg.KUpdate, Loc: loc, Val: vv, Data: vt}
			}
			ev.Addr = at
			ev.Ctrl = clone(ctrl)
			ev.Excl = true
			ev.Mode = in.Mode
			id := emit(ev, readVal)
			regs[in.Dst] = readVal
			taints[in.Dst] = []eg.EvID{id}
			if in.Op == prog.ICAS && in.Succ >= 0 {
				if ev.Kind == eg.KUpdate {
					regs[in.Succ] = 1
				} else {
					regs[in.Succ] = 0
				}
				taints[in.Succ] = []eg.EvID{id}
			}

		case prog.IFence:
			emit(eg.Event{Kind: eg.KFence, Fence: in.Fence, Ctrl: clone(ctrl)}, 0)

		case prog.IBranch:
			val, taint := evalT(in.Cond)
			ctrl = union(ctrl, taint)
			if val != 0 {
				pc = in.Target
			}

		case prog.IJmp:
			pc = in.Target

		case prog.IAssume:
			val, taint := evalT(in.Cond)
			ctrl = union(ctrl, taint)
			if val == 0 {
				return fail(stBlocked, "assume failed"), false
			}

		case prog.IAssert:
			val, _ := evalT(in.Cond)
			if val == 0 {
				msg := in.Msg
				if msg == "" {
					msg = "assertion failed"
				}
				return fail(stError, fmt.Sprintf("thread %d: %s", t, msg)), false
			}

		default:
			panic(fmt.Sprintf("axenum: bad instruction op %d", in.Op))
		}
	}
}
