package axenum

import (
	"testing"

	"hmc/internal/gen"
	"hmc/internal/litmus"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

func enum(t *testing.T, p *prog.Program, model string, opts Options) *Result {
	t.Helper()
	m, err := memmodel.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	opts.Model = m
	res, err := Explore(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRequiresModel(t *testing.T) {
	tc, _ := litmus.ByName("SB")
	if _, err := Explore(tc.P, Options{}); err == nil {
		t.Fatal("Explore without a model must fail")
	}
}

func TestKnownCounts(t *testing.T) {
	cases := []struct {
		name  string
		model string
		want  int
	}{
		{"SB", "sc", 3}, {"SB", "tso", 4},
		{"MP", "sc", 3}, {"MP", "imm", 4},
		{"LB", "imm", 4}, {"LB", "ra", 3},
		{"IRIW", "sc", 15}, {"IRIW", "relaxed", 16},
		{"CoRR", "relaxed", 3},
		{"inc(2)", "sc", 2},
	}
	for _, c := range cases {
		tc, ok := litmus.ByName(c.name)
		if !ok {
			t.Fatalf("missing corpus test %s", c.name)
		}
		res := enum(t, tc.P, c.model, Options{})
		if res.Consistent != c.want {
			t.Errorf("%s under %s: %d consistent, want %d", c.name, c.model, res.Consistent, c.want)
		}
		if res.Candidates < res.Consistent {
			t.Errorf("%s: candidates %d < consistent %d", c.name, res.Candidates, res.Consistent)
		}
	}
}

func TestExistsEvaluation(t *testing.T) {
	tc, _ := litmus.ByName("SB")
	if res := enum(t, tc.P, "tso", Options{}); res.ExistsCount != 1 {
		t.Errorf("SB/tso exists = %d, want 1", res.ExistsCount)
	}
	if res := enum(t, tc.P, "sc", Options{}); res.ExistsCount != 0 {
		t.Error("SB/sc must not observe the weak outcome")
	}
}

func TestValueBoundDerivation(t *testing.T) {
	// A fetch-add chain must derive a bound large enough to justify the
	// chain's maximal value: inc(3) reaches 3.
	p := gen.IncN(3, 1)
	if got := deriveValueBound(p); got < 3 {
		t.Fatalf("derived bound %d cannot justify inc(3)'s values", got)
	}
	res := enum(t, p, "sc", Options{})
	if res.Consistent != 6 {
		t.Errorf("inc(3): %d consistent, want 6", res.Consistent)
	}
}

func TestExplicitValueBound(t *testing.T) {
	// An insufficient explicit bound silently under-approximates — the
	// documented contract (the caller takes responsibility).
	p := gen.IncN(3, 1)
	res := enum(t, p, "sc", Options{ValueBound: 1})
	if res.Consistent >= 6 {
		t.Errorf("bound 1 should miss deep chains, got %d", res.Consistent)
	}
}

func TestMaxCandidatesTruncates(t *testing.T) {
	p := gen.CoRRN(3)
	res := enum(t, p, "sc", Options{MaxCandidates: 10})
	if !res.Truncated || res.Candidates != 10 {
		t.Fatalf("truncation failed: truncated=%v candidates=%d", res.Truncated, res.Candidates)
	}
}

func TestBlockedVariants(t *testing.T) {
	b := prog.NewBuilder("assume")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t1 := b.Thread()
	r := t1.Load(x)
	t1.Assume(prog.Eq(prog.R(r), prog.Const(1)))
	p := b.MustBuild()
	res := enum(t, p, "sc", Options{})
	if res.Blocked == 0 {
		t.Error("assume-failing guesses must count as blocked")
	}
	if res.Consistent != 1 {
		t.Errorf("consistent = %d, want 1 (only r=1 passes)", res.Consistent)
	}
}

func TestErrorsRecorded(t *testing.T) {
	b := prog.NewBuilder("assert")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t1 := b.Thread()
	r := t1.Load(x)
	t1.Assert(prog.Eq(prog.R(r), prog.Const(0)), "saw the store")
	p := b.MustBuild()
	res := enum(t, p, "sc", Options{})
	if len(res.Errors) == 0 {
		t.Error("assertion-failing guesses must be recorded")
	}
}

func TestBranchesEnumerateBothPaths(t *testing.T) {
	// Control flow: the guessed read value steers the branch, so both
	// thread variants must be enumerated.
	b := prog.NewBuilder("branchy")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t1 := b.Thread()
	r := t1.Load(x)
	j := t1.BranchFwd(prog.Eq(prog.R(r), prog.Const(0)))
	t1.Store(y, prog.Const(7))
	t1.Patch(j)
	p := b.MustBuild()
	res := enum(t, p, "sc", Options{})
	if res.ThreadVariants < 3 { // t0's single variant + t1's two paths
		t.Errorf("ThreadVariants = %d, want ≥ 3", res.ThreadVariants)
	}
	if res.Consistent != 2 {
		t.Errorf("consistent = %d, want 2 (r=0 stores y, r=1 skips)", res.Consistent)
	}
}

func TestSortedKeys(t *testing.T) {
	tc, _ := litmus.ByName("SB")
	res := enum(t, tc.P, "tso", Options{})
	keys := res.SortedKeys()
	if len(keys) != res.Consistent {
		t.Fatalf("%d keys for %d consistent executions", len(keys), res.Consistent)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("keys not sorted")
		}
	}
}

func TestFinalsPopulated(t *testing.T) {
	tc, _ := litmus.ByName("MP")
	res := enum(t, tc.P, "imm", Options{})
	if len(res.Finals) == 0 {
		t.Fatal("no final states recorded")
	}
	for _, fs := range res.Finals {
		if len(fs.Mem) != tc.P.NumLocs {
			t.Fatalf("final state with %d locations, want %d", len(fs.Mem), tc.P.NumLocs)
		}
	}
}
