// Package obs is the exploration observability layer: progress snapshots,
// sampled phase timers and a structured JSONL exploration trace. It is
// deliberately stdlib-only and dependency-free so that internal/core can
// import it without cycles, and internal/service can reuse the same types
// on the wire.
//
// The package defines *data*, not policy: core decides when a snapshot is
// taken (at the quiescent points between exploration waves, where the
// checkpointer already synchronizes), the service and CLIs decide where it
// goes. Everything here is safe for concurrent use — timers are atomic,
// the tracer serializes writes — because exploration workers touch these
// objects from many goroutines.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// PhaseTimes is the sampled phase-timing breakdown of an exploration: an
// estimate of where the wall-clock time went, split into the three
// dominant kinds of work. Durations are extrapolated (mean of sampled
// calls × total calls), not exact sums — see PhaseTimer.
type PhaseTimes struct {
	// Interp is interpretation time: replaying threads to find each
	// state's next actions.
	Interp time.Duration `json:"interp_ns"`
	// Consistency is memory-model consistency-check time.
	Consistency time.Duration `json:"consistency_ns"`
	// Revisit is backward-revisit machinery time: keep-set computation,
	// taint pruning, graph restriction and replay repair (the nested
	// exploration a taken revisit triggers is *not* attributed here).
	Revisit time.Duration `json:"revisit_ns"`
	// Call counts per phase (exact, not sampled).
	InterpCalls      int64 `json:"interp_calls"`
	ConsistencyCalls int64 `json:"consistency_calls"`
	RevisitCalls     int64 `json:"revisit_calls"`
}

// ProgressSnapshot is one race-free observation of a running exploration,
// taken between waves with all workers quiescent. Counters are cumulative
// and monotone across the snapshots of one run; the final snapshot of a
// run (Final set) reports exactly the stats of its Result.
type ProgressSnapshot struct {
	// Seq numbers the snapshots of one run from 1; the final snapshot has
	// the highest Seq.
	Seq int `json:"seq"`
	// Wave counts completed drain waves (quiescent points reached).
	Wave int `json:"wave"`

	Executions        int `json:"executions"`
	Blocked           int `json:"blocked"`
	States            int `json:"states"`
	MemoHits          int `json:"memo_hits"`
	MemoSize          int `json:"memo_size"`
	Frontier          int `json:"frontier"`
	RevisitsTried     int `json:"revisits_tried"`
	RevisitsTaken     int `json:"revisits_taken"`
	ConsistencyChecks int `json:"consistency_checks"`
	StaticPrunedRf    int `json:"static_pruned_rf,omitempty"`
	StaticPrunedCo    int `json:"static_pruned_co,omitempty"`
	StaticPrunedScans int `json:"static_pruned_scans,omitempty"`

	// Elapsed is wall-clock time since exploration began; ExecsPerSec and
	// ChecksPerSec are overall rates (always finite, 0 when unknown).
	Elapsed      time.Duration `json:"elapsed_ns"`
	ExecsPerSec  float64       `json:"execs_per_sec"`
	ChecksPerSec float64       `json:"checks_per_sec"`
	// EstimateMean, when positive, is the predicted total number of
	// executions (core.Estimate) the ETA is derived from; ETA is zero when
	// no estimate is available, the rate is still zero, or the snapshot is
	// final.
	EstimateMean float64       `json:"estimate_mean,omitempty"`
	ETA          time.Duration `json:"eta_ns,omitempty"`

	Phases PhaseTimes `json:"phases"`
	// Shards, when the run is sharded (internal/shard), breaks the fleet
	// down per shard; the top-level counters are their sums. Empty for
	// single-explorer runs.
	Shards []ShardProgress `json:"shards,omitempty"`
	// Peers, when the run dispatches legs to peer daemons, reports each
	// peer's health and resilience counters. Empty for local-only runs.
	Peers []PeerProgress `json:"peers,omitempty"`
	// Final marks the last snapshot of a run: the run has stopped
	// (exhausted, truncated or interrupted) and the counters equal the
	// Result's.
	Final bool `json:"final,omitempty"`
}

// ShardProgress is one shard's slice of a sharded run: who it is, how
// much frontier it still holds, and how fast its legs have been going.
type ShardProgress struct {
	Shard       int     `json:"shard"`
	Frontier    int     `json:"frontier"`
	Executions  int     `json:"executions"`
	ExecsPerSec float64 `json:"execs_per_sec"`
	Running     bool    `json:"running,omitempty"`
	// Steals counts times this shard's frontier was split for an idle
	// peer; Retries counts leg re-runs after a worker death.
	Steals  int `json:"steals,omitempty"`
	Retries int `json:"retries,omitempty"`
}

// PeerProgress is one peer daemon's row in a distributed run's snapshot:
// probe-derived health, breaker state, and the resilience counters that
// explain where its legs went.
type PeerProgress struct {
	// Peer is the peer's base URL.
	Peer string `json:"peer"`
	// Healthy reflects the last active /readyz probe (or passive leg
	// verdict when probing is off).
	Healthy bool `json:"healthy"`
	// BreakerOpen is true while the peer's circuit breaker rejects legs.
	BreakerOpen bool `json:"breaker_open,omitempty"`
	// ProbeFailures counts failed active health probes.
	ProbeFailures int64 `json:"probe_failures,omitempty"`
	// TransientRetries counts leg attempts re-dispatched to this peer
	// after a transient transport failure.
	TransientRetries int64 `json:"transient_retries,omitempty"`
	// Hedges counts straggler legs raced against a local copy.
	Hedges int64 `json:"hedges,omitempty"`
	// Demotions counts legs this peer surrendered to the local fallback.
	Demotions int64 `json:"demotions,omitempty"`
	// Legs counts legs this peer completed successfully.
	Legs int64 `json:"legs,omitempty"`
}

// Rate returns n per second over elapsed, guarded against zero and
// non-finite results.
func Rate(n int, elapsed time.Duration) float64 {
	if n <= 0 || elapsed <= 0 {
		return 0
	}
	return Finite(float64(n) / elapsed.Seconds())
}

// ETA predicts time remaining until estimateMean executions at the given
// rate, zero when unknowable (no estimate, zero rate, or already past the
// estimate — the estimator is an upper bound, not a promise).
func ETA(estimateMean float64, done int, rate float64) time.Duration {
	if estimateMean <= 0 || rate <= 0 || float64(done) >= estimateMean {
		return 0
	}
	secs := (estimateMean - float64(done)) / rate
	if math.IsNaN(secs) || math.IsInf(secs, 0) || secs > math.MaxInt64/float64(time.Second) {
		return 0
	}
	return time.Duration(secs * float64(time.Second))
}

// Finite clamps NaN and ±Inf to 0, keeping every derived float safe for
// JSON encoding (encoding/json refuses non-finite values).
func Finite(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// sampleEvery is the phase-timer sampling period: one in this many calls
// pays for a time.Now() pair, the rest only an atomic increment. With
// call counts in the millions the extrapolated estimate converges while
// the overhead stays far under the instrumentation budget (EXPERIMENTS.md
// T15 holds it to <5% end to end).
const sampleEvery = 16

// PhaseTimer measures one phase by sampling: every call is counted, every
// sampleEvery-th call is timed, and Estimate extrapolates the total as
// mean-sampled-duration × calls. All methods are safe on a nil receiver
// (a disabled timer) and for concurrent use.
type PhaseTimer struct {
	calls   atomic.Int64
	sampled atomic.Int64
	ns      atomic.Int64
}

// Start begins a measurement. It returns the zero time when this call is
// not sampled (or the timer is nil); pass the value to Stop either way.
func (t *PhaseTimer) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	if t.calls.Add(1)%sampleEvery != 1 {
		return time.Time{}
	}
	return time.Now()
}

// Stop completes a measurement begun by Start (a no-op for unsampled
// calls).
func (t *PhaseTimer) Stop(start time.Time) {
	if t == nil || start.IsZero() {
		return
	}
	t.sampled.Add(1)
	t.ns.Add(time.Since(start).Nanoseconds())
}

// Estimate returns the extrapolated total duration and the exact call
// count.
func (t *PhaseTimer) Estimate() (time.Duration, int64) {
	if t == nil {
		return 0, 0
	}
	calls := t.calls.Load()
	sampled := t.sampled.Load()
	if sampled == 0 || calls == 0 {
		return 0, calls
	}
	mean := float64(t.ns.Load()) / float64(sampled)
	return time.Duration(mean * float64(calls)), calls
}
