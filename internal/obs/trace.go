package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// TraceEvent is one structured exploration event, written as a JSON line.
// Kind selects which of the optional fields are meaningful:
//
//   - "wave":          Wave, Frontier — a drain wave completed
//   - "revisit-tried": Write, Read — a backward revisit was considered
//   - "revisit-taken": Write, Read — the revisit passed repair + consistency
//   - "prune":         Prune ("rf"|"co"|"scan"), Count — static pruning
//     skipped that much branching work
//   - "snapshot":      Snapshot — a progress snapshot (when both Trace and
//     Progress are enabled)
type TraceEvent struct {
	Kind string `json:"kind"`
	// TMS is milliseconds since the tracer was created.
	TMS      float64           `json:"t_ms"`
	Wave     int               `json:"wave,omitempty"`
	Frontier int               `json:"frontier,omitempty"`
	Write    string            `json:"write,omitempty"`
	Read     string            `json:"read,omitempty"`
	Prune    string            `json:"prune,omitempty"`
	Count    int               `json:"count,omitempty"`
	Snapshot *ProgressSnapshot `json:"snapshot,omitempty"`
}

// Tracer streams TraceEvents as JSONL to a writer. Emit is safe from any
// goroutine (exploration workers trace concurrently) and on a nil
// receiver, so call sites need no enablement checks. The first write or
// encode error latches: subsequent events are dropped and the error is
// reported by Err at the end of the run — tracing must never abort an
// exploration.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	start  time.Time
	events atomic.Int64
	err    error
}

// NewTracer returns a tracer writing JSON lines to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, start: time.Now()}
}

// Emit writes one event, stamping its relative time.
func (t *Tracer) Emit(ev TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	ev.TMS = float64(time.Since(t.start).Microseconds()) / 1000
	data, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(append(data, '\n')); err != nil {
		t.err = err
		return
	}
	t.events.Add(1)
}

// Events returns the number of events written so far.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	return t.events.Load()
}

// Err returns the latched write/encode error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
