package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRateAndETAFinite(t *testing.T) {
	if r := Rate(0, time.Second); r != 0 {
		t.Errorf("Rate(0, 1s) = %v, want 0", r)
	}
	if r := Rate(100, 0); r != 0 {
		t.Errorf("Rate(100, 0) = %v, want 0 (no division by zero)", r)
	}
	if r := Rate(100, time.Second); r != 100 {
		t.Errorf("Rate(100, 1s) = %v, want 100", r)
	}
	if eta := ETA(0, 10, 5); eta != 0 {
		t.Errorf("ETA without estimate = %v, want 0", eta)
	}
	if eta := ETA(100, 200, 5); eta != 0 {
		t.Errorf("ETA past the estimate = %v, want 0", eta)
	}
	if eta := ETA(100, 50, 0); eta != 0 {
		t.Errorf("ETA at zero rate = %v, want 0", eta)
	}
	if eta := ETA(100, 50, 10); eta != 5*time.Second {
		t.Errorf("ETA(100, 50, 10/s) = %v, want 5s", eta)
	}
	if eta := ETA(math.MaxFloat64, 0, 1e-300); eta < 0 {
		t.Errorf("huge ETA must not overflow negative: %v", eta)
	}
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if f := Finite(x); f != 0 {
			t.Errorf("Finite(%v) = %v, want 0", x, f)
		}
	}
	if f := Finite(3.5); f != 3.5 {
		t.Errorf("Finite(3.5) = %v", f)
	}
}

func TestPhaseTimerNilSafeAndEstimate(t *testing.T) {
	var nilT *PhaseTimer
	nilT.Stop(nilT.Start()) // must not panic
	if d, c := nilT.Estimate(); d != 0 || c != 0 {
		t.Errorf("nil timer Estimate = %v, %d", d, c)
	}

	pt := &PhaseTimer{}
	const calls = 200
	for i := 0; i < calls; i++ {
		ts := pt.Start()
		if !ts.IsZero() {
			time.Sleep(100 * time.Microsecond)
		}
		pt.Stop(ts)
	}
	d, c := pt.Estimate()
	if c != calls {
		t.Errorf("calls = %d, want %d", c, calls)
	}
	if d <= 0 {
		t.Errorf("estimate = %v, want > 0", d)
	}
	// The extrapolation is mean-sampled × calls: with every sampled call
	// sleeping ~100µs the estimate must be at least calls × 100µs and not
	// absurdly larger (sleep jitter allows a generous upper bound).
	if d < calls*100*time.Microsecond {
		t.Errorf("estimate %v under the floor %v", d, calls*100*time.Microsecond)
	}
}

func TestPhaseTimerConcurrent(t *testing.T) {
	pt := &PhaseTimer{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				pt.Stop(pt.Start())
			}
		}()
	}
	wg.Wait()
	if _, c := pt.Estimate(); c != 8000 {
		t.Errorf("concurrent calls = %d, want 8000", c)
	}
}

func TestTracerJSONLAndNilSafety(t *testing.T) {
	var nilTr *Tracer
	nilTr.Emit(TraceEvent{Kind: "wave"}) // must not panic
	if nilTr.Events() != 0 || nilTr.Err() != nil {
		t.Error("nil tracer must report zero events and no error")
	}

	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(TraceEvent{Kind: "wave", Wave: 1, Frontier: 42})
	tr.Emit(TraceEvent{Kind: "revisit-taken", Write: "T1.2", Read: "T0.1"})
	tr.Emit(TraceEvent{Kind: "snapshot", Snapshot: &ProgressSnapshot{Seq: 1, Executions: 7}})
	if tr.Events() != 3 {
		t.Fatalf("events = %d, want 3", tr.Events())
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	var ev TraceEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev.Kind != "wave" || ev.Wave != 1 || ev.Frontier != 42 {
		t.Errorf("round-trip mismatch: %+v", ev)
	}
	var snapEv TraceEvent
	if err := json.Unmarshal([]byte(lines[2]), &snapEv); err != nil {
		t.Fatal(err)
	}
	if snapEv.Snapshot == nil || snapEv.Snapshot.Executions != 7 {
		t.Errorf("snapshot event round-trip mismatch: %+v", snapEv)
	}
}

// failWriter fails after n successful writes.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errFail
	}
	f.n--
	return len(p), nil
}

var errFail = &json.UnsupportedValueError{Str: "sink failed"}

func TestTracerLatchesWriteError(t *testing.T) {
	tr := NewTracer(&failWriter{n: 1})
	tr.Emit(TraceEvent{Kind: "wave"})
	tr.Emit(TraceEvent{Kind: "wave"}) // fails
	tr.Emit(TraceEvent{Kind: "wave"}) // dropped
	if tr.Events() != 1 {
		t.Errorf("events = %d, want 1", tr.Events())
	}
	if tr.Err() == nil {
		t.Error("write error must latch")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := ProgressSnapshot{
		Seq: 3, Wave: 2, Executions: 100, States: 400, MemoSize: 250,
		Frontier: 12, ExecsPerSec: 123.5, Elapsed: time.Second,
		Phases: PhaseTimes{Interp: 10 * time.Millisecond, InterpCalls: 400},
		Final:  true,
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back ProgressSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Errorf("round trip: got %+v, want %+v", back, s)
	}
}
