package core

import (
	"fmt"

	"hmc/internal/eg"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// Race identifies one data race: two same-location accesses, at least one
// a write and at least one unannotated (plain), unordered by
// happens-before in some consistent execution.
type Race struct {
	A, B    eg.EvID
	Loc     eg.Loc
	Witness *eg.Graph
}

func (r Race) String() string {
	return fmt.Sprintf("race on x%d between %v and %v", r.Loc, r.A, r.B)
}

// RaceReport is the outcome of CheckRaces.
type RaceReport struct {
	// Races holds one representative per racing instruction pair.
	Races []Race
	// Executions counts the rc11-consistent executions examined.
	Executions int
	// Truncated/Interrupted report a partial exploration: an empty Races
	// list is then only "no race found so far", not race-freedom.
	Truncated   bool
	Interrupted bool
}

// CheckRaces explores p under the rc11 model and reports data races: in
// C/C++11 terms, two conflicting accesses (same location, at least one a
// write) where at least one is non-atomic (here: ModePlain) and neither
// happens-before the other. A racy program has undefined behaviour, so
// this check is the precondition for trusting any other rc11 verdict —
// exactly the discipline GenMC-style language-level checkers enforce.
//
// Accesses annotated with any memory order (rlx and up) are atomics and
// never race with each other.
//
// An optional Options value supplies exploration bounds (MaxExecutions,
// Context, Workers, Symmetry, MaxSteps); its Model and callback fields
// are ignored. A bounded or cancelled run sets Truncated/Interrupted on
// the report.
func CheckRaces(p *prog.Program, opts ...Options) (*RaceReport, error) {
	rc11, err := memmodel.ByName("rc11")
	if err != nil {
		return nil, err
	}
	rep := &RaceReport{}
	seen := map[[2]eg.EvID]bool{}
	res, err := Explore(p, analysisOptions(rc11, func(g *eg.Graph, fs prog.FinalState) {
		findRaces(g, seen, rep)
	}, nil, opts))
	if err != nil {
		return nil, fmt.Errorf("race check: %w", err)
	}
	rep.Executions = res.Executions
	rep.Truncated = res.Truncated
	rep.Interrupted = res.Interrupted
	return rep, nil
}

// findRaces scans one execution for unordered conflicting plain accesses.
func findRaces(g *eg.Graph, seen map[[2]eg.EvID]bool, rep *RaceReport) {
	v := eg.NewView(g)
	hb := memmodel.RC11HappensBefore(v)
	for a := 0; a < v.N; a++ {
		ea := v.Events[a]
		if ea.ID.IsInit() || ea.Kind == eg.KFence {
			continue
		}
		for b := a + 1; b < v.N; b++ {
			eb := v.Events[b]
			if eb.ID.IsInit() || eb.Kind == eg.KFence {
				continue
			}
			if ea.Loc != eb.Loc || ea.ID.T == eb.ID.T {
				continue
			}
			if !ea.Kind.IsWrite() && !eb.Kind.IsWrite() {
				continue
			}
			if ea.Mode != eg.ModePlain && eb.Mode != eg.ModePlain {
				continue // both atomic: atomics never race
			}
			if hb.Has(a, b) || hb.Has(b, a) {
				continue
			}
			key := [2]eg.EvID{ea.ID, eb.ID}
			if seen[key] {
				continue
			}
			seen[key] = true
			rep.Races = append(rep.Races, Race{A: ea.ID, B: eb.ID, Loc: ea.Loc, Witness: g.Clone()})
		}
	}
}
