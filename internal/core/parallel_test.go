package core

import (
	"sort"
	"testing"

	"hmc/internal/eg"
	"hmc/internal/gen"
	"hmc/internal/litmus"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// exploreBoth runs p sequentially and with 8 workers and returns both
// results, with keys collected and the dedup safeguard armed.
func exploreBoth(t *testing.T, p *prog.Program, model memmodel.Model) (seq, par *Result) {
	t.Helper()
	var err error
	seq, err = Explore(p, Options{Model: model, CollectKeys: true, DedupSafeguard: true})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err = Explore(p, Options{Model: model, CollectKeys: true, DedupSafeguard: true, Workers: 8})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	return seq, par
}

// sameKeySet compares the two key multisets modulo order.
func sameKeySet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := append([]string(nil), a...), append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestParallelMatchesSequentialCorpus checks that parallel exploration
// visits exactly the sequential execution set — same executions, same
// blocked count, zero duplicates — on every litmus test under every model.
func TestParallelMatchesSequentialCorpus(t *testing.T) {
	for _, name := range memmodel.Names() {
		model, err := memmodel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, lt := range litmus.Corpus() {
			seq, par := exploreBoth(t, lt.P, model)
			if par.Duplicates != 0 {
				t.Errorf("%s/%s: parallel produced %d duplicates", name, lt.Name, par.Duplicates)
			}
			if par.Executions != seq.Executions || par.Blocked != seq.Blocked ||
				par.ExistsCount != seq.ExistsCount {
				t.Errorf("%s/%s: parallel (exec=%d blocked=%d exists=%d) != sequential (exec=%d blocked=%d exists=%d)",
					name, lt.Name, par.Executions, par.Blocked, par.ExistsCount,
					seq.Executions, seq.Blocked, seq.ExistsCount)
			}
			if !sameKeySet(seq.Keys, par.Keys) {
				t.Errorf("%s/%s: parallel key set differs from sequential", name, lt.Name)
			}
		}
	}
}

// TestParallelMatchesSequentialGen repeats the comparison on the larger
// generated families, where forking actually spreads work.
func TestParallelMatchesSequentialGen(t *testing.T) {
	progs := []*prog.Program{
		gen.SBN(4), gen.LBN(3), gen.MPN(3), gen.IncN(2, 2),
		gen.CASContendN(3), gen.Peterson(eg.FenceNone), gen.TreiberPushPop(eg.FenceNone),
	}
	for _, name := range []string{"sc", "tso", "arm", "relaxed"} {
		model, err := memmodel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range progs {
			seq, par := exploreBoth(t, p, model)
			if par.Duplicates != 0 {
				t.Errorf("%s/%s: parallel produced %d duplicates", name, p.Name, par.Duplicates)
			}
			if !sameKeySet(seq.Keys, par.Keys) {
				t.Errorf("%s/%s: parallel found %d executions, sequential %d",
					name, p.Name, par.Executions, seq.Executions)
			}
		}
	}
}

// TestParallelMaxExecutions checks that the execution cap is exact even
// with concurrent completions racing to it.
func TestParallelMaxExecutions(t *testing.T) {
	model, _ := memmodel.ByName("relaxed")
	res, err := Explore(gen.SBN(5), Options{Model: model, MaxExecutions: 7, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("cap below the execution count must set Truncated")
	}
	if res.Executions != 7 {
		t.Errorf("Executions = %d, want exactly 7 (cap must not overshoot)", res.Executions)
	}
}

// TestParallelCallbackSerialized checks the documented guarantee that
// OnExecution callbacks never run concurrently: an unsynchronized counter
// mutated in the callback must end up exact (and under `go test -race`
// any overlap would be flagged as a data race).
func TestParallelCallbackSerialized(t *testing.T) {
	model, _ := memmodel.ByName("tso")
	calls := 0
	res, err := Explore(gen.SBN(4), Options{
		Model:       model,
		Workers:     8,
		OnExecution: func(g *eg.Graph, fs prog.FinalState) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Executions {
		t.Errorf("callback ran %d times for %d executions", calls, res.Executions)
	}
}
