package core

import (
	"errors"
	"fmt"
	"runtime/debug"

	"hmc/internal/prog"
)

// EngineError is a contained engine failure: a panic raised anywhere in
// the exploration engine (internal/eg, internal/relation, internal/interp,
// or core itself), caught at the public entry points and converted into a
// structured error instead of taking the process down. One poisoned
// program fails its own call; a service built on the engine keeps its
// other jobs running.
//
// The fields are a self-contained diagnostic: which operation died, on
// which program (name and content fingerprint, so the failure is
// correlatable across renamed resubmissions), under which model, with what
// panic payload and goroutine stack, and how far exploration had gotten —
// everything a crash artifact needs to make the failure reproducible.
type EngineError struct {
	// Op is the entry point that failed: "explore" or "estimate"
	// (analyses built on Explore wrap the error with their own context).
	Op string
	// Program and Fingerprint identify the input (prog.Fingerprint).
	Program     string
	Fingerprint string
	// Model is the memory model the exploration ran under.
	Model string
	// PanicValue is the recovered panic payload.
	PanicValue any
	// Stack is the formatted stack of the panicking goroutine.
	Stack string
	// Stats is a snapshot of the exploration counters at the point of
	// failure — partial work, useful for triage ("died after N states").
	Stats Stats
}

func (e *EngineError) Error() string {
	return fmt.Sprintf("core: engine panic during %s of %q under %s: %v",
		e.Op, e.Program, e.Model, e.PanicValue)
}

// AsEngineError unwraps err to an *EngineError if one is in its chain.
func AsEngineError(err error) (*EngineError, bool) {
	var ee *EngineError
	if errors.As(err, &ee) {
		return ee, true
	}
	return nil, false
}

// Truncation reasons reported in Result.TruncatedReason. MaxExecutions
// and MaxEvents truncations are deterministic functions of the program and
// options; a memory-budget truncation also depends on ambient heap
// pressure, so callers (the service) treat it as transient and retryable.
const (
	TruncMaxExecutions = "max-executions"
	TruncMaxEvents     = "max-events"
	TruncMemoryBudget  = "memory-budget"
)

// Contain runs fn with the engine's panic→EngineError boundary installed
// and returns fn's error, or an *EngineError if fn panicked. It is the
// exported face of the guard for callers that drive engine-adjacent code
// outside Explore — the backend adapters wrap the axiomatic enumerator
// and the operational machines (which, as test oracles, were written to
// panic on internal invariant violations) so that a poisoned program
// fails its own portfolio leg instead of taking the process down. The op
// string names the failing operation ("backend:axenum", …); model is the
// memory-model name recorded for triage.
func Contain(op string, p *prog.Program, model string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &EngineError{
				Op:          op,
				Program:     p.Name,
				Fingerprint: p.Fingerprint(),
				Model:       model,
				PanicValue:  r,
				Stack:       string(debug.Stack()),
			}
		}
	}()
	return fn()
}

// guard runs task and converts a panic into the shared EngineError,
// stopping the exploration. It is installed at the root of every worker
// goroutine and around the top-level visit, so a panic anywhere in the
// engine — graph code, relation algebra, the interpreter, a model's
// consistency check, or a user callback — is contained to this Explore
// call. Only the first panic is kept; later ones (other workers tripping
// over the same poisoned state while winding down) are dropped.
func (e *explorer) guard(task func()) {
	defer func() {
		if r := recover(); r != nil {
			e.capturePanic(r)
		}
	}()
	task()
}

// capturePanic records the first panic into the shared state and raises
// the stop flag so every branch loop winds down. Mutex-protected state is
// safe to touch here: every callback invocation under sh.mu releases the
// lock via defer before the panic unwinds to a guard.
func (e *explorer) capturePanic(r any) {
	stack := string(debug.Stack())
	e.sh.mu.Lock()
	if e.sh.engineErr == nil {
		e.sh.engineErr = &EngineError{
			Op:          "explore",
			Program:     e.p.Name,
			Fingerprint: e.p.Fingerprint(),
			Model:       e.opts.Model.Name(),
			PanicValue:  r,
			Stack:       stack,
			Stats:       e.sh.res.Stats,
		}
	}
	e.sh.mu.Unlock()
	e.sh.stop.Store(true)
}

// truncate marks the result truncated with the given reason (first reason
// wins) and, when stopAll is set, aborts the whole exploration rather than
// just pruning the current subtree.
func (e *explorer) truncate(reason string, stopAll bool) {
	e.sh.mu.Lock()
	e.sh.res.Truncated = true
	if e.sh.res.TruncatedReason == "" {
		e.sh.res.TruncatedReason = reason
	}
	e.sh.mu.Unlock()
	if stopAll {
		e.sh.stop.Store(true)
	}
}

// truncateDrain is the checkpointable variant of a whole-run truncation:
// instead of the hard stop flag it raises the drain, so the in-flight
// frontier is captured into the final checkpoint (see checkpoint.go).
func (e *explorer) truncateDrain(reason string) {
	e.sh.mu.Lock()
	e.sh.res.Truncated = true
	if e.sh.res.TruncatedReason == "" {
		e.sh.res.TruncatedReason = reason
	}
	e.sh.mu.Unlock()
	e.sh.stopAfterDrain.Store(true)
	e.sh.drain.Store(true)
}
