// Package core implements the HMC exploration algorithm: optimal stateless
// model checking of concurrent programs directly against (hardware) memory
// models, on execution graphs.
//
// The algorithm extends the GenMC family to models that permit (po ∪ rf)
// cycles, which is the paper's contribution. Exploration is a DFS over
// execution graphs:
//
//   - a deterministic scheduler picks the first thread whose replay
//     (internal/interp) produces a new event;
//   - a read branches over every consistent rf choice among the writes
//     already present;
//   - a write branches over every consistent coherence position, and — when
//     placed coherence-maximally — additionally *backward-revisits* existing
//     same-location reads: the graph is restricted to the *dependency
//     prefix* of the write and the read, the read is re-bound to the new
//     write, and exploration restarts from the restricted graph.
//
// The dependency prefix is where hardware models differ from RC11-style
// models: events po-after the revisited read that do not syntactically
// depend on it are *kept*, which is what makes load-buffering executions
// (rf into the po-past) reachable. Optimality — each consistent execution
// explored exactly once — comes from the TruSt-style maximality condition
// on deleted events, validated by the duplicate-free property tests.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hmc/internal/analyze"
	"hmc/internal/eg"
	"hmc/internal/interp"
	"hmc/internal/memmodel"
	"hmc/internal/obs"
	"hmc/internal/prog"
)

// memCheckInterval paces the MemoryBudget ReadMemStats probe: once per
// this many visited states (ReadMemStats stops the world, so the hot path
// must not pay for it per branch).
const memCheckInterval = 256

// Options configures an exploration.
type Options struct {
	// Model is the memory model to check against (required).
	//hmc:identity(Model) — checked through the dedicated Checkpoint.Model field on resume
	Model memmodel.Model
	// Context, when non-nil, makes the exploration cancellable: it is
	// polled at every branch point (forward branches, revisits, and the
	// parallel worker pool), so cancellation or a deadline stops the run
	// mid-exploration. An interrupted run is not an error — Explore
	// returns the partial Result accumulated so far with Interrupted set,
	// mirroring how MaxExecutions sets Truncated.
	//hmc:transient(cancellation is a property of the run, not of the saved state)
	Context context.Context
	// MaxSteps bounds each thread replay (≤0: interp.DefaultMaxSteps).
	MaxSteps int
	// MaxExecutions aborts exploration after this many complete executions
	// (0 = unlimited).
	MaxExecutions int
	// MaxEvents caps the size of any single execution graph, counted as
	// Graph.NumEvents (0 = unlimited). A branch whose graph exceeds the
	// cap is pruned and the Result marked Truncated with reason
	// TruncMaxEvents; exploration of smaller graphs continues, so the
	// partial counts cover every execution within the budget. This is the
	// defense against state explosion in a single oversized submission.
	MaxEvents int
	// MemoryBudget is a soft process-heap ceiling in bytes (0 =
	// unlimited), checked periodically at branch points against
	// runtime.ReadMemStats (HeapAlloc). Exceeding it stops the whole
	// exploration and returns the partial Result with Truncated set and
	// reason TruncMemoryBudget — graceful degradation instead of an OOM
	// kill. The check is shared-process-wide, so under concurrent
	// explorations (a service) a truncation may be caused by a neighbor's
	// allocation burst: callers should treat it as transient.
	//hmc:transient(a property of the machine and moment; a truncated run resumes under the new process's budget)
	MemoryBudget int64
	// StopOnError aborts exploration at the first assertion failure.
	StopOnError bool
	// LegacyChecks routes consistency checking through the reference
	// path — heap-allocated views and the materialized-union predicates
	// preserved in memmodel's legacy build — instead of pooled arena
	// views and incremental acyclicity. Both paths decide the same
	// predicate, so verdicts, every counter and the checkpoint stream are
	// identical (pinned by the equivalence tests and the T17 harness
	// experiment); only wall-clock and allocation differ. A performance
	// A/B knob, not a semantic option, hence excluded from the
	// checkpoint options signature.
	//hmc:transient(both paths decide the same predicate; only wall-clock and allocation change)
	LegacyChecks bool
	// DedupSafeguard tracks complete-execution keys and suppresses
	// duplicates, counting them in Stats.Duplicates. The algorithm is
	// optimal, so this is a diagnostic: the test suite asserts the count
	// stays zero. It costs memory proportional to the execution count.
	DedupSafeguard bool
	// PorfOnlyRevisits is the T5 ablation: restrict backward revisits to
	// porf-prefix-closed deletions as RC11-tuned explorers do (every event
	// po-after the revisited read is deleted; revisits that would need a
	// po-later event in the write's prefix are skipped). Under hardware
	// models this misses load-buffering executions.
	PorfOnlyRevisits bool
	// OnExecution, when non-nil, is invoked for every complete consistent
	// execution with its graph and final state.
	//hmc:transient(callbacks observe the run; they never change what is explored)
	OnExecution func(g *eg.Graph, fs prog.FinalState)
	// OnBlocked, when non-nil, is invoked for every maximal blocked
	// execution (some thread's assume failed and no thread can add an
	// event). Like OnExecution, invocations are serialized.
	//hmc:transient(callbacks observe the run; they never change what is explored)
	OnBlocked func(g *eg.Graph)
	// CollectKeys records each complete execution's canonical key in
	// Result.Keys (tests and cross-validation).
	CollectKeys bool
	// OnDuplicate, when non-nil (and DedupSafeguard set), receives each
	// suppressed duplicate execution — a debugging hook for the
	// optimality tests.
	//hmc:transient(callbacks observe the run; they never change what is explored)
	OnDuplicate func(g *eg.Graph)
	// Workers sets the number of concurrent exploration workers (≤1:
	// sequential). Exploration subtrees are independent — graphs are
	// cloned per branch and the state memo is synchronized — so branches
	// fork onto free workers and degrade to inline recursion when all
	// slots are busy; no task ever waits. Results are identical to the
	// sequential run except for ordering: Keys, Errors and the OnExecution
	// callback sequence follow completion order, not DFS order (the
	// callbacks themselves are serialized).
	//hmc:transient(parallelism only reorders the same work; legs of a resume chain may differ)
	Workers int
	// StaticAnalysis enables static pruning: before exploration the
	// program is run through internal/analyze, and its location footprint
	// is used to skip branching work that coherence would reject anyway —
	// non-co-maximal rf candidates and backward revisits on thread-local
	// locations, non-co-maximal coherence placements on single-writer
	// locations, and revisit scans after statically-dead stores. The
	// pruning is count-preserving: Executions, ExistsCount, Blocked and
	// Errors are identical to an unpruned run (cross-validated against
	// the axiomatic oracle in the test suite); only the Stats.StaticPruned*
	// counters and the work they measure change.
	StaticAnalysis bool
	// CheckDeps turns the static analysis into a sanitizer on the
	// interpreter: at every event-producing action the dynamic taint sets
	// (addr/data/ctrl) are checked to be a subset of the static
	// over-approximation. Violations — which indicate a bug in either the
	// interpreter's taint tracking or the analyzer — are counted in
	// Stats.DepViolations and sampled in Result.DepViolationDetails;
	// exploration continues.
	CheckDeps bool
	// Symmetry enables symmetry reduction: states (and executions) equal
	// up to a permutation of identical-code threads collapse to one
	// canonical representative, so Executions counts orbits rather than
	// raw executions. Replay commutes with renaming identical threads,
	// which makes the reduction sound; it is only meaningful when the
	// program's Exists/Assert conditions are themselves symmetric in
	// those threads (an n-thread counter, contending CASes, …). The
	// canonical key costs one extra Key computation per group permutation
	// per state, so the win is the orbit collapse (up to n! for n
	// identical threads) minus that constant.
	Symmetry bool
	// Checkpoint, when non-nil, makes the run checkpointable: periodic
	// snapshots go to Checkpoint.Sink every Checkpoint.EveryExecs
	// completed executions, and any interruption or whole-run truncation
	// drains the in-flight work into a final snapshot on
	// Result.Checkpoint instead of discarding it (see checkpoint.go).
	// Checkpointing changes how the run *stops* — a cancelled context
	// drains instead of hard-stopping, so interruption latency grows by
	// one wave of branch construction — but never what it explores.
	// StopOnError and engine panics still stop hard and yield no
	// checkpoint.
	//hmc:transient(checkpoint cadence changes when the run stops, never what it explores)
	Checkpoint *CheckpointOptions
	// ResumeFrom continues a prior run from its checkpoint. The
	// checkpoint must match this program's fingerprint, the model, and
	// every semantic option (see optsSignature); a mismatch returns
	// ErrCheckpointMismatch. The resumed Result's counters include the
	// checkpointed work, so a straight run and any
	// interrupt/resume chain report identical totals.
	//hmc:transient(the checkpoint being resumed is the state itself, not part of its signature)
	ResumeFrom *Checkpoint
	// FailAfter, when positive, injects a deterministic fault: the run
	// behaves as if the process had been killed at its FailAfter-th
	// branch point — exploration drains into a final checkpoint on
	// Result.Checkpoint with Interrupted set. This is the
	// resume-equivalence test hook ("kill at every k-th branch point"
	// without wall-clock races); production kills exercise the same
	// drain path via Context cancellation.
	//hmc:transient(a deterministic kill injection: decides when the run stops, never what it explores)
	FailAfter int
	// Progress, when non-nil (with a Sink), delivers periodic
	// ProgressSnapshots of the running exploration: counters, rates,
	// frontier size and a sampled phase-timing breakdown (see
	// progress.go). Snapshots are taken at the same quiescent points the
	// checkpointer uses — between drain waves, workers paused — so they
	// are race-free and never change what is explored. Like Workers, this
	// is a transient knob: it is excluded from checkpoint signatures, and
	// interruption semantics are unchanged (a progress-only run still
	// hard-stops on cancellation).
	//hmc:transient(snapshots observe the run at quiescent points; they never change what is explored)
	Progress *ProgressOptions
	// Shard, when non-nil, restricts the run to the states the spec owns:
	// a graph whose canonical key hashes to a bucket outside the spec is
	// recorded on the final checkpoint's Forwarded list instead of being
	// explored. The coordinator in internal/shard routes forwarded graphs
	// to their owners, partitioning one exploration across N explorers:
	// every state is expanded by exactly one owner and every constructed
	// graph memo-checked exactly once (at its owner), so the shards'
	// counters sum to exactly the single-process run's. A sharded run is
	// implicitly checkpointable and always ends with a final checkpoint
	// on Result.Checkpoint (even when its frontier ran to exhaustion);
	// the spec identity rides Checkpoint.Shard and must match on resume.
	//hmc:identity(Shard) — checked through the dedicated Checkpoint.Shard field on resume
	Shard *ShardSpec
	// Trace, when non-nil, streams structured exploration events —
	// waves, revisits, static prunes, snapshots — as JSON lines to the
	// tracer (see internal/obs). Tracing enables the same sampled phase
	// timers as Progress; a tracer write error is latched and reported by
	// Tracer.Err, never aborting the run.
	//hmc:transient(tracing observes the run; a straight and a traced run explore the same states)
	Trace *obs.Tracer
}

// ErrorReport describes one assertion failure, with the witness graph.
type ErrorReport struct {
	Thread int
	Msg    string
	Graph  *eg.Graph
}

func (e ErrorReport) String() string {
	return fmt.Sprintf("thread %d: %s\n%s", e.Thread, e.Msg, e.Graph)
}

// Stats aggregates exploration metrics; these are the numbers the paper's
// tables report (executions explored, blocked executions, revisits, …).
type Stats struct {
	Executions         int // complete consistent executions
	ExistsCount        int // executions satisfying the program's Exists clause
	Blocked            int // executions ending with a blocked thread
	Duplicates         int // duplicate executions suppressed (must stay 0)
	RevisitsTried      int // backward revisit candidates considered
	RevisitsTaken      int
	States             int // distinct exploration states visited
	MemoHits           int // states reached again and pruned by the memo
	RevisitsRepairFail int // rejected because repair diverged or failed to converge
	RevisitsPorfSkip   int // skipped by the PorfOnlyRevisits ablation
	ConsistencyChecks  int
	StuckReads         int // reads with no consistent rf option (must stay 0)
	MaxGraphEvents     int
	// Static-pruning counters (Options.StaticAnalysis): work skipped
	// because the location footprint proved it fruitless.
	StaticPrunedRf    int // non-co-maximal rf candidates skipped (thread-local locations)
	StaticPrunedCo    int // non-co-maximal coherence placements skipped (single-writer locations)
	StaticPrunedScans int // backward-revisit scans skipped (thread-local / never-read locations)
	// DepViolations counts dynamic dependency sets not covered by the
	// static ones (Options.CheckDeps; must stay 0).
	DepViolations int
	Errors        []ErrorReport
}

// Result is the outcome of Explore.
type Result struct {
	Stats
	Keys []string // canonical execution keys (when CollectKeys)
	// DepViolationDetails samples the first few CheckDeps failures in
	// human-readable form (the full count is Stats.DepViolations).
	DepViolationDetails []string
	Truncated           bool // a resource bound was hit (see TruncatedReason)
	// TruncatedReason states which bound truncated the run: one of
	// TruncMaxExecutions, TruncMaxEvents, TruncMemoryBudget (the first
	// bound hit wins). Empty when Truncated is false.
	TruncatedReason string
	// Interrupted reports that Options.Context was cancelled (or its
	// deadline expired) before the state space was exhausted: every count
	// in Stats is a partial lower bound, and the absence of an assertion
	// failure or weak outcome proves nothing.
	Interrupted bool
	// Checkpoint is the final resumable snapshot of an interrupted or
	// whole-run-truncated checkpointable run (Options.Checkpoint,
	// ResumeFrom or FailAfter): feed it to Options.ResumeFrom to continue
	// exactly where this run stopped. Nil for complete runs, for
	// non-checkpointable runs, and after a hard stop (StopOnError).
	Checkpoint *Checkpoint
}

// Exhaustive reports whether the result covers the full state space —
// neither truncated by MaxExecutions nor interrupted by the context.
// Only exhaustive results are definitive verdicts (and cacheable).
func (r *Result) Exhaustive() bool { return !r.Truncated && !r.Interrupted }

// Explore model-checks p under opts and returns the aggregated result.
// When opts.Context is cancelled mid-run the partial result is returned
// with Interrupted set (not an error). A panic anywhere in the engine —
// including in worker goroutines and user callbacks — is recovered and
// returned as an *EngineError carrying the panic value, stack, program
// identity and the stats at the point of failure; the process survives.
func Explore(p *prog.Program, opts Options) (*Result, error) {
	if opts.Model == nil {
		return nil, fmt.Errorf("core: Options.Model is required")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sh := &shared{res: &Result{}, memo: make(map[string]bool)}
	if opts.DedupSafeguard {
		sh.seen = make(map[string]bool)
	}
	if opts.Workers > 1 {
		sh.sem = make(chan struct{}, opts.Workers-1)
	}
	e := &explorer{p: p, opts: opts, sh: sh, static: analyzeIfNeeded(p, opts)}
	e.ckpt = opts.Checkpoint != nil || opts.ResumeFrom != nil || opts.FailAfter > 0 || opts.Shard != nil
	e.initObs()
	if opts.Symmetry {
		e.perms = symmetryPerms(len(p.Threads), p.SymmetryGroups())
	}
	frontier := []*eg.Graph{eg.NewGraph(len(p.Threads), p.NumLocs)}
	if opts.ResumeFrom != nil {
		var err error
		if frontier, err = e.restore(opts.ResumeFrom); err != nil {
			return nil, err
		}
		// A checkpoint taken exactly at the MaxExecutions bound: the run
		// it describes already stopped there, so resuming under the same
		// bound returns the restored result as-is — continuing would
		// explore (and memoize) states the straight run never reached.
		if opts.MaxExecutions > 0 && sh.res.Executions >= opts.MaxExecutions {
			sh.res.Truncated = true
			if sh.res.TruncatedReason == "" {
				sh.res.TruncatedReason = TruncMaxExecutions
			}
			sh.res.Checkpoint = e.capture(frontier)
			e.emitProgress(len(frontier), true)
			if sh.engineErr != nil {
				return nil, sh.engineErr
			}
			return sh.res, nil
		}
	}
	if ctx := opts.Context; ctx != nil {
		// A watcher translates ctx cancellation into the flags the branch
		// loops already poll, so the hot path stays a single atomic load.
		// Under checkpointing the cancellation drains (in-flight work is
		// captured, not discarded); otherwise it hard-stops as before.
		// Checking synchronously first makes a pre-cancelled context
		// deterministic: zero work, the (restored) interrupted result.
		if ctx.Err() != nil {
			sh.res.Interrupted = true
			if e.ckpt {
				sh.res.Checkpoint = e.capture(frontier)
			}
			e.emitProgress(len(frontier), true)
			if sh.engineErr != nil {
				return nil, sh.engineErr
			}
			return sh.res, nil
		}
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-ctx.Done():
				sh.interrupted.Store(true)
				if e.ckpt {
					sh.drain.Store(true)
				} else {
					sh.stop.Store(true)
				}
			case <-done:
			}
		}()
	}
	// The wave loop: visit the frontier, wait for quiescence, and — when a
	// drain was requested — capture or continue with the drained pending
	// graphs as the next frontier. Runs with neither checkpointing nor
	// progress enabled never set the drain flag and take exactly one trip
	// (the pre-checkpoint behaviour).
	remaining := 0
	for {
		for _, g := range frontier {
			g := g
			e.guard(func() { e.visit(g) })
		}
		sh.wg.Wait()
		if sh.engineErr != nil {
			return nil, sh.engineErr
		}
		if !sh.drain.Load() {
			break // exhausted, or hard-stopped (no checkpoint either way)
		}
		pending := sh.takePending()
		e.wave++
		e.traceWave(len(pending))
		if sh.stop.Load() {
			// A hard stop (StopOnError, panic wind-down) raced the drain:
			// the pending set is incomplete, so no checkpoint is safe.
			break
		}
		if sh.interrupted.Load() || sh.stopAfterDrain.Load() {
			sh.res.Checkpoint = e.capture(pending)
			remaining = len(pending)
			break
		}
		// Periodic snapshot (Checkpoint.EveryExecs): emit and continue.
		if opts.Checkpoint != nil && opts.Checkpoint.Sink != nil {
			cp := e.capture(pending)
			e.guard(func() { opts.Checkpoint.Sink(cp) })
			if sh.engineErr != nil {
				return nil, sh.engineErr
			}
		}
		// Periodic progress snapshot: the drain brought every worker to
		// this quiescent point, so the counters read race-free.
		if sh.progressReq.CompareAndSwap(true, false) {
			e.emitProgress(len(pending), false)
			if sh.engineErr != nil {
				return nil, sh.engineErr
			}
		}
		sh.drain.Store(false)
		frontier = pending
		if len(frontier) == 0 {
			break
		}
	}
	sh.res.Interrupted = sh.interrupted.Load()
	if opts.Shard != nil && sh.res.Checkpoint == nil && !sh.stop.Load() {
		// A sharded leg always ends in a checkpoint: the coordinator
		// needs the final memo and the forwarded graphs even from a leg
		// that ran its owned frontier to exhaustion.
		sh.res.Checkpoint = e.capture(sh.takePending())
	}
	// The final snapshot: counters now equal the Result's. Delivered for
	// every run outcome short of an engine error, so a sink always
	// observes the end of the run.
	e.emitProgress(remaining, true)
	if sh.engineErr != nil {
		return nil, sh.engineErr
	}
	return sh.res, nil
}

type explorer struct {
	p     *prog.Program
	opts  Options
	sh    *shared
	perms [][]int // non-identity symmetry permutations (Symmetry)
	// static is the program's static-analysis result, computed once per
	// run when Options.StaticAnalysis or Options.CheckDeps is set.
	static *analyze.Result
	// sink, when non-nil, captures the graphs visit would explore instead
	// of recursing — the estimator's one-step successor enumeration. Only
	// set by successors(), never during real exploration.
	sink *[]*eg.Graph
	// ckpt marks a checkpointable run (Options.Checkpoint, ResumeFrom or
	// FailAfter): interruptions and whole-run truncations drain instead
	// of hard-stopping, so the in-flight frontier can be captured.
	ckpt bool
	// Observability (progress.go): prog and tracer are nil when disabled;
	// the phase timers are non-nil exactly when either is on. wave counts
	// completed drain waves and is touched only on the Explore goroutine.
	prog                        *progressState
	tracer                      *obs.Tracer
	tInterp, tConsist, tRevisit *obs.PhaseTimer
	wave                        int
}

// key returns g's canonical state key: its semantic key, minimized over
// the symmetry permutations when Symmetry is enabled.
func (e *explorer) key(g *eg.Graph) string {
	key := g.Key()
	for _, perm := range e.perms {
		if k := g.RenameThreads(perm).Key(); k < key {
			key = k
		}
	}
	return key
}

// shared is the exploration state common to all workers. The mutex guards
// the result, the state memo and the dedup table; the stop flag is atomic
// so branch loops can poll it without locking. Exploration subtrees only
// read the graph they were handed (strict replay never mutates) and clone
// before extending, so the graph itself needs no synchronization.
type shared struct {
	mu          sync.Mutex
	res         *Result
	seen        map[string]bool // complete-execution keys (DedupSafeguard)
	memo        map[string]bool // semantic exploration-state keys
	engineErr   *EngineError    // first recovered panic (guarded by mu)
	stop        atomic.Bool
	interrupted atomic.Bool   // stop/drain was caused by Options.Context (or FailAfter)
	visits      atomic.Int64  // visit counter paces the MemoryBudget check
	sem         chan struct{} // fork slots (nil: sequential)
	wg          sync.WaitGroup

	// Drain machinery (checkpointable runs only; see checkpoint.go).
	// While drain is set, visit records incoming graphs in pending
	// instead of recursing — the branch loops above keep constructing and
	// checking children, so every unit of work lands exactly once on one
	// side of the checkpoint cut. stopAfterDrain marks a drain that ends
	// the run (whole-run truncation) rather than pausing it (periodic
	// snapshot); faults counts branch points for Options.FailAfter.
	drain          atomic.Bool
	stopAfterDrain atomic.Bool
	faults         atomic.Int64
	pending        []*eg.Graph // guarded by mu
	// forwarded collects graphs owned by other shards (Options.Shard),
	// each tagged with its ownership bucket; they ride the final
	// checkpoint's Forwarded list. Guarded by mu.
	forwarded []forwardedGraph
	// progressReq marks a drain requested (also) for a progress snapshot:
	// the wave loop emits one at the next quiescent point and clears it.
	progressReq atomic.Bool
}

// stopped reports whether exploration has been aborted.
func (e *explorer) stopped() bool { return e.sh.stop.Load() }

// recordPending saves a graph whose visit was deferred by a drain.
func (e *explorer) recordPending(g *eg.Graph) {
	e.sh.mu.Lock()
	e.sh.pending = append(e.sh.pending, g)
	e.sh.mu.Unlock()
}

// forwardedGraph is a constructed graph another shard owns, with its
// ownership bucket (stable across steals: only the owned set changes
// between legs, never the bucket count).
type forwardedGraph struct {
	bucket int
	g      *eg.Graph
}

// recordForwarded saves a graph whose canonical key this shard does not
// own; the coordinator routes it to the owner.
func (e *explorer) recordForwarded(key string, g *eg.Graph) {
	fw := forwardedGraph{bucket: BucketOf(key, e.opts.Shard.Mod()), g: g}
	e.sh.mu.Lock()
	e.sh.forwarded = append(e.sh.forwarded, fw)
	e.sh.mu.Unlock()
}

// takePending removes and returns the drained frontier. Called between
// waves (workers quiescent).
func (sh *shared) takePending() []*eg.Graph {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p := sh.pending
	sh.pending = nil
	return p
}

// fork runs task on a free worker when one exists, inline otherwise.
// Tasks never block waiting for a slot, so at most Workers goroutines run,
// exhaustion degrades gracefully to sequential recursion, and a parent
// waiting for its forked children (stepRead's stuck-read accounting) can
// never deadlock: every child it spawned either holds a slot and runs, or
// ran inline on the parent itself.
func (e *explorer) fork(task func()) {
	if e.sh.sem != nil {
		select {
		case e.sh.sem <- struct{}{}:
			e.sh.wg.Add(1)
			go func() {
				defer func() {
					<-e.sh.sem
					e.sh.wg.Done()
				}()
				// The guard keeps a panic in this subtree from killing
				// the process: it is recorded as the run's EngineError
				// and the other workers wind down via the stop flag.
				e.guard(task)
			}()
			return
		default:
		}
	}
	task()
}

// visit explores all extensions of g. Exploration states are memoized on
// their semantic key (per-thread events with values, rf and co): replay is
// deterministic, so two graphs with equal keys have identical futures, and
// each state — in particular each complete execution — is explored exactly
// once. The memo is also what guarantees termination: the state space of a
// bounded program is finite, while revisit chains could otherwise rebuild
// semantically identical graphs forever.
func (e *explorer) visit(g *eg.Graph) {
	if e.sink != nil {
		*e.sink = append(*e.sink, g)
		return
	}
	if e.stopped() {
		return
	}
	if e.sh.drain.Load() {
		// A checkpoint is being taken: defer this subtree to the pending
		// frontier instead of recursing. The construction and consistency
		// check that produced g already ran (and were counted) in the
		// caller, and visiting g on resume re-runs none of them — each
		// unit of work happens exactly once across the cut.
		e.recordPending(g)
		return
	}
	if n := e.opts.FailAfter; n > 0 && e.sh.faults.Add(1) == int64(n) {
		// Deterministic fault injection: "the process dies here". The
		// graph in hand is not lost — it heads the pending frontier.
		e.sh.interrupted.Store(true)
		e.sh.drain.Store(true)
		e.recordPending(g)
		return
	}
	if e.opts.MaxEvents > 0 && g.NumEvents() > e.opts.MaxEvents {
		// Prune this oversized branch only: smaller graphs elsewhere in
		// the space are still explored, so the partial result covers
		// every execution within the event budget.
		e.truncate(TruncMaxEvents, false)
		return
	}
	if e.opts.MemoryBudget > 0 {
		// ReadMemStats stops the world, so pace it: the first visit (a
		// pre-exceeded budget fails fast and deterministically) and then
		// every memCheckInterval states.
		if n := e.sh.visits.Add(1); n == 1 || n%memCheckInterval == 0 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > uint64(e.opts.MemoryBudget) {
				if e.ckpt {
					// Under checkpointing the truncation drains: this
					// graph and the rest of the in-flight frontier are
					// captured, so a later run under a roomier budget
					// picks up exactly here.
					e.truncateDrain(TruncMemoryBudget)
					e.recordPending(g)
				} else {
					e.truncate(TruncMemoryBudget, true)
				}
				return
			}
		}
	}
	key := e.key(g)
	if sp := e.opts.Shard; sp != nil && !sp.Owns(key) {
		// Another shard owns this state: hand the constructed graph to
		// the coordinator instead of exploring it. The memo check runs
		// at the owner — exactly once per arrival — which is what keeps
		// the merged counters identical to a single-process run.
		e.recordForwarded(key, g)
		return
	}
	e.sh.mu.Lock()
	if e.sh.memo[key] {
		e.sh.res.MemoHits++
		e.sh.mu.Unlock()
		return
	}
	e.sh.memo[key] = true
	e.sh.res.States++
	if n := g.NumEvents(); n > e.sh.res.MaxGraphEvents {
		e.sh.res.MaxGraphEvents = n
	}
	e.sh.mu.Unlock()
	blocked := false
	for t := range e.p.Threads {
		ts := e.tInterp.Start()
		a := interp.Next(e.p, g, t, e.opts.MaxSteps)
		e.tInterp.Stop(ts)
		switch a.Kind {
		case interp.ActDone:
			continue
		case interp.ActBlocked:
			blocked = true
			continue
		case interp.ActError:
			witness := g.Clone() // outside the lock: cloning can panic
			e.sh.mu.Lock()
			e.sh.res.Errors = append(e.sh.res.Errors, ErrorReport{Thread: t, Msg: a.Msg, Graph: witness})
			e.sh.mu.Unlock()
			if e.opts.StopOnError {
				e.sh.stop.Store(true)
			}
			return
		default:
			if e.opts.CheckDeps && e.static != nil {
				e.verifyDeps(g, t, a)
			}
			e.step(g, t, a)
			return
		}
	}
	if blocked {
		// The deferred unlock matters for fault containment: a panicking
		// OnBlocked callback must release the lock on its way to the
		// guard, or the recovery path would deadlock on sh.mu.
		func() {
			e.sh.mu.Lock()
			defer e.sh.mu.Unlock()
			e.sh.res.Blocked++
			if e.opts.OnBlocked != nil {
				e.opts.OnBlocked(g)
			}
		}()
		return
	}
	e.complete(g)
}

// complete records a finished execution. The final state is computed
// outside the lock (pure graph read); everything else — dedup, counters,
// key collection and the user callback — runs under it, so OnExecution
// invocations are serialized even in parallel mode.
func (e *explorer) complete(g *eg.Graph) {
	key := e.key(g)
	var fs prog.FinalState
	if e.p.Exists != nil || e.opts.OnExecution != nil {
		fs = interp.FinalState(e.p, g, e.opts.MaxSteps)
	}
	e.sh.mu.Lock()
	defer e.sh.mu.Unlock()
	if e.opts.MaxExecutions > 0 && e.sh.res.Executions >= e.opts.MaxExecutions {
		return // a parallel worker completed while the cap was being hit
	}
	if e.sh.seen != nil {
		if e.sh.seen[key] {
			e.sh.res.Duplicates++
			if e.opts.OnDuplicate != nil {
				e.opts.OnDuplicate(g)
			}
			return
		}
		e.sh.seen[key] = true
	}
	e.sh.res.Executions++
	if e.p.Exists != nil && e.p.Exists(fs) {
		e.sh.res.ExistsCount++
	}
	if e.opts.CollectKeys {
		e.sh.res.Keys = append(e.sh.res.Keys, key)
	}
	if e.opts.OnExecution != nil {
		e.opts.OnExecution(g, fs)
	}
	if e.opts.MaxExecutions > 0 && e.sh.res.Executions >= e.opts.MaxExecutions {
		e.sh.res.Truncated = true
		if e.sh.res.TruncatedReason == "" {
			e.sh.res.TruncatedReason = TruncMaxExecutions
		}
		if e.ckpt {
			// Drain instead of hard-stopping so the already-constructed
			// frontier lands in the final checkpoint: a run resumed under
			// a higher bound continues instead of starting over.
			e.sh.stopAfterDrain.Store(true)
			e.sh.drain.Store(true)
		} else {
			e.sh.stop.Store(true)
		}
		return
	}
	if co := e.opts.Checkpoint; co != nil && co.Sink != nil && co.EveryExecs > 0 &&
		e.sh.res.Executions%co.EveryExecs == 0 {
		// Periodic snapshot: drain to a quiescent point; the wave loop in
		// Explore emits the checkpoint and resumes from the drained
		// frontier. The pause costs one wave of deferred recursion — the
		// T14 experiment measures the overhead against EveryExecs.
		e.sh.drain.Store(true)
	}
	if e.progressDueLocked() {
		// Progress snapshot due: same drain, same quiescent point; the
		// wave loop emits the snapshot and resumes (T15 bounds the
		// overhead at the default cadence).
		e.sh.progressReq.Store(true)
		e.sh.drain.Store(true)
	}
}

// consistent checks g under the model, counting (and phase-timing) the
// check.
func (e *explorer) consistent(g *eg.Graph) bool {
	e.sh.mu.Lock()
	e.sh.res.ConsistencyChecks++
	e.sh.mu.Unlock()
	ts := e.tConsist.Start()
	var ok bool
	if e.opts.LegacyChecks {
		ok = memmodel.Legacy(e.opts.Model).Consistent(eg.NewView(g))
	} else {
		v := eg.GetView(g)
		ok = e.opts.Model.Consistent(v)
		eg.PutView(v)
	}
	e.tConsist.Stop(ts)
	return ok
}

// count applies a Stats mutation under the shared lock.
func (e *explorer) count(f func(*Stats)) {
	e.sh.mu.Lock()
	f(&e.sh.res.Stats)
	e.sh.mu.Unlock()
}

// step handles thread t's next action on g.
func (e *explorer) step(g *eg.Graph, t int, a interp.Action) {
	id := eg.EvID{T: t, I: g.ThreadLen(t)}
	switch {
	case a.Kind == interp.ActFence:
		g2 := g.Clone()
		g2.Add(a.MakeEvent(id, 0))
		if e.consistent(g2) {
			e.visit(g2)
		}

	case a.Reads():
		e.stepRead(g, id, a)

	case a.Kind == interp.ActStore:
		e.stepWrite(g, id, a)

	default:
		panic("core: unhandled action " + a.Kind.String())
	}
}

// stepRead branches over the rf options of a read or RMW. Future writes
// reach this read via backward revisits later.
//
// A new *update* reading a write w that some existing update u already
// reads performs a forward chain steal: the new update slots in
// coherence-immediately after w and u is rebound to read from it (values
// downstream repaired). This is the GenMC treatment of RMW chains — every
// permutation of an atomic-update chain is reached forward, with no
// deletions — and it is why backward revisits never target updates with
// an update revisitor (that pair is exactly a steal).
func (e *explorer) stepRead(g *eg.Graph, id eg.EvID, a interp.Action) {
	ws := g.WritesTo(a.Loc) // coherence order, init first
	if len(ws) > 1 && e.pruneRF(a.Loc) {
		// Thread-local location: every write in ws shares this read's
		// thread and is po-before it, so coherence admits exactly the
		// co-maximal rf source (the last element); see staticprune.go.
		e.count(func(s *Stats) { s.StaticPrunedRf += len(ws) - 1 })
		e.tracePrune("rf", len(ws)-1)
		ws = ws[len(ws)-1:]
	}
	var anyConsistent atomic.Bool
	var wg sync.WaitGroup
	for _, w := range ws {
		if e.stopped() {
			break
		}
		ev := a.MakeEvent(id, g.ValueOf(w))
		g2 := g.Clone()
		g2.Add(ev)
		g2.SetRF(id, w)
		if ev.Kind == eg.KUpdate {
			g2.CoInsert(a.Loc, g2.CoIndex(a.Loc, w)+1, id)
			if u, ok := updateReading(g, a.Loc, w); ok {
				// Chain steal: u now reads the new update; its written
				// value (and anything downstream) needs repair. If the
				// rebind diverges structurally (u's thread branches on
				// the stolen value), fall back to a revisit-style rebind
				// of u, which deletes and re-derives the affected suffix.
				pre := g2.Clone()
				g2.SetRF(u, id)
				if !interp.RepairAll(e.p, g2, e.opts.MaxSteps) {
					e.revisit(pre, id, u)
					continue
				}
			}
		}
		wg.Add(1)
		e.fork(func() {
			defer wg.Done()
			if !e.consistent(g2) {
				return
			}
			anyConsistent.Store(true)
			e.visit(g2)
			if ev.Kind == eg.KUpdate {
				// The update's write part may backward-revisit plain
				// reads; computed per rf-branch so the kept prefix
				// includes this branch's rf source.
				e.maybeRevisitsFrom(g2, id, a.Loc)
			}
		})
	}
	wg.Wait()
	if !anyConsistent.Load() && !e.stopped() {
		// Extensibility says reading co-max must be consistent; a stuck
		// read indicates a model that violates the algorithm's assumptions.
		e.count(func(s *Stats) { s.StuckReads++ })
	}
}

// updateReading returns the update event that reads from w at loc, if any
// (at most one exists in an atomicity-consistent graph).
func updateReading(g *eg.Graph, loc eg.Loc, w eg.EvID) (eg.EvID, bool) {
	var found eg.EvID
	ok := false
	g.ForEach(func(ev eg.Event) {
		if ev.Kind == eg.KUpdate && ev.Loc == loc {
			if src, has := g.RF(ev.ID); has && src == w {
				found = ev.ID
				ok = true
			}
		}
	})
	return found, ok
}

// stepWrite branches over coherence positions; each consistent placement
// additionally performs backward revisits (per position, so the kept
// prefix reflects this branch's coherence binding).
func (e *explorer) stepWrite(g *eg.Graph, id eg.EvID, a interp.Action) {
	n := len(g.CoLoc(a.Loc))
	start := 0
	if n > 0 && e.pruneCo(a.Loc) {
		// Single-writer location: every existing write shares this
		// write's thread and is po-before it, so the only coherent
		// placement is co-maximal; see staticprune.go.
		e.count(func(s *Stats) { s.StaticPrunedCo += n })
		e.tracePrune("co", n)
		start = n
	}
	for pos := start; pos <= n; pos++ {
		if e.stopped() {
			return
		}
		ev := a.MakeEvent(id, 0)
		g2 := g.Clone()
		g2.Add(ev)
		g2.CoInsert(a.Loc, pos, id)
		e.fork(func() {
			if !e.consistent(g2) {
				return
			}
			e.visit(g2)
			e.maybeRevisitsFrom(g2, id, a.Loc)
		})
	}
}
