package core

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"

	"hmc/internal/gen"
	"hmc/internal/litmus"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// estimateVsExact runs the estimator and the exact exploration and
// returns (estimate, exact result).
func estimateVsExact(t *testing.T, p *prog.Program, model string, samples int) (*EstimateResult, *Result) {
	t.Helper()
	m, err := memmodel.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(p, Options{Model: m}, samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Explore(p, Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	return est, exact
}

// TestEstimateDeterministic: same seed → same estimate; different seed →
// (almost surely) a different one on a branchy program.
func TestEstimateDeterministic(t *testing.T) {
	m, _ := memmodel.ByName("tso")
	p := gen.SBN(4)
	a, err := Estimate(p, Options{Model: m}, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Estimate(p, Options{Model: m}, 16, 7)
	if a.Mean != b.Mean || a.CompletedProbes != b.CompletedProbes {
		t.Errorf("same seed must reproduce: %v vs %v", a, b)
	}
}

// TestEstimateExactOnTreeShapedSpaces: when the memoized search never
// collapses states (MemoHits = 0), the probe tree IS the search tree and
// the estimator is unbiased for Executions. With enough samples on small
// programs it should land within a few standard errors.
func TestEstimateExactOnTreeShapedSpaces(t *testing.T) {
	cases := []struct {
		p     *prog.Program
		model string
	}{
		{gen.CoRRN(2), "sc"},
		{gen.MPN(2), "sc"},
		{mustCorpus(t, "CoRR").P, "tso"},
	}
	for _, tc := range cases {
		est, exact := estimateVsExact(t, tc.p, tc.model, 4000)
		if exact.MemoHits != 0 {
			t.Fatalf("%s/%s: test premise broken: MemoHits=%d (pick a tree-shaped program)",
				tc.p.Name, tc.model, exact.MemoHits)
		}
		want := float64(exact.Executions)
		tol := 4*est.StdErr + 0.05*want
		if math.Abs(est.Mean-want) > tol {
			t.Errorf("%s/%s: estimate %v vs exact %d (tolerance %.2f)",
				tc.p.Name, tc.model, est, exact.Executions, tol)
		}
	}
}

// TestEstimateUpperBiasedWithMemoHits: on revisit-heavy spaces the probe
// tree has more paths than the memoized search has states, so the
// estimate must not land significantly *below* the truth.
func TestEstimateUpperBiasedWithMemoHits(t *testing.T) {
	est, exact := estimateVsExact(t, gen.SBN(3), "tso", 4000)
	want := float64(exact.Executions)
	if est.Mean < want-4*est.StdErr-0.05*want {
		t.Errorf("estimate %v significantly below exact %d — the estimator lost paths", est, exact.Executions)
	}
}

// TestEstimateProbesDieInBlockedRuns: probes reaching blocked leaves
// contribute zero weight but terminate cleanly.
func TestEstimateProbesDieInBlockedRuns(t *testing.T) {
	m, _ := memmodel.ByName("sc")
	est, err := Estimate(gen.ABBADeadlock(), Options{Model: m}, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if est.CompletedProbes == est.Samples {
		t.Error("ABBA has blocked executions; some probes should die")
	}
	if est.CompletedProbes == 0 {
		t.Error("ABBA has complete executions; some probes should finish")
	}
}

func mustCorpus(t *testing.T, name string) litmus.Test {
	t.Helper()
	tc, ok := litmus.ByName(name)
	if !ok {
		t.Fatalf("missing corpus test %s", name)
	}
	return tc
}

// TestEstimateInflatesOnRMWChains pins the documented failure mode: on
// counter-style programs the unmemoized probe tree has orders of
// magnitude more paths than executions, and the spread is of the same
// order as the mean — the "reduce before exploring" signature.
func TestEstimateInflatesOnRMWChains(t *testing.T) {
	est, exact := estimateVsExact(t, gen.IncN(3, 2), "tso", 1500)
	if exact.MemoHits == 0 {
		t.Fatal("inc(3,2) must exercise the memo")
	}
	if est.Mean < 10*float64(exact.Executions) {
		t.Errorf("expected heavy over-count (documented), got est %.1f vs exact %d",
			est.Mean, exact.Executions)
	}
	if est.StdErr < est.Mean/100 {
		t.Errorf("expected a large spread flagging unreliability: mean=%.1f stderr=%.1f",
			est.Mean, est.StdErr)
	}
}

// TestEstimateCancelledBeforeFirstProbe is the regression test for the
// zero-probe interruption path: a context cancelled before any probe runs
// must yield a zero-valued result with only Interrupted set — in
// particular no NaN or Inf in any float field (a 0/0 there used to be one
// encoder panic away from a truncated HTTP body).
func TestEstimateCancelledBeforeFirstProbe(t *testing.T) {
	m, _ := memmodel.ByName("sc")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Estimate(gen.SBN(4), Options{Model: m, Context: ctx}, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("pre-cancelled estimate must be marked Interrupted")
	}
	want := EstimateResult{Interrupted: true}
	if *res != want {
		t.Errorf("result not zero-valued: %+v", res)
	}
	rv := reflect.ValueOf(*res)
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		if f.Kind() != reflect.Float64 {
			continue
		}
		v := f.Float()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("field %s is non-finite: %v", rv.Type().Field(i).Name, v)
		}
	}
}

// TestEstimateFieldsAlwaysFinite sweeps a few programs (including one
// cancelled mid-flight) and asserts every float field of every result is
// finite: the estimator's contract for JSON encoders downstream.
func TestEstimateFieldsAlwaysFinite(t *testing.T) {
	m, _ := memmodel.ByName("tso")
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	results := []*EstimateResult{}
	for _, opts := range []Options{
		{Model: m},
		{Model: m, Context: ctx},
	} {
		res, err := Estimate(gen.IncN(3, 2), opts, 200, 3)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i, res := range results {
		if math.IsNaN(res.Mean) || math.IsInf(res.Mean, 0) {
			t.Errorf("result %d: Mean non-finite: %v", i, res.Mean)
		}
		if math.IsNaN(res.StdErr) || math.IsInf(res.StdErr, 0) {
			t.Errorf("result %d: StdErr non-finite: %v", i, res.StdErr)
		}
	}
}
