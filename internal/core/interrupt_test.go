package core

import (
	"context"
	"testing"
	"time"

	"hmc/internal/gen"
	"hmc/internal/memmodel"
)

// TestCancelledContextEveryEntryPoint pins the interruption contract
// across all analysis entry points: an already-cancelled context is not
// an error — each returns immediately with an empty partial result whose
// Interrupted flag is set.
func TestCancelledContextEveryEntryPoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := gen.SBN(2)
	sc, _ := memmodel.ByName("sc")

	cases := []struct {
		name string
		run  func() (interrupted bool, work int, err error)
	}{
		{"Explore", func() (bool, int, error) {
			res, err := Explore(p, Options{Model: sc, Context: ctx})
			return res.Interrupted, res.Executions, err
		}},
		{"Estimate", func() (bool, int, error) {
			// Samples records the requested probe count by contract;
			// CompletedProbes is what measures work actually done.
			est, err := Estimate(p, Options{Model: sc, Context: ctx}, 50, 1)
			return est.Interrupted, est.CompletedProbes, err
		}},
		{"CheckRobustness", func() (bool, int, error) {
			rep, err := CheckRobustness(p, sc, Options{Context: ctx})
			return rep.Interrupted, rep.Executions, err
		}},
		{"CheckRaces", func() (bool, int, error) {
			rep, err := CheckRaces(p, Options{Context: ctx})
			return rep.Interrupted, rep.Executions, err
		}},
		{"CheckLiveness", func() (bool, int, error) {
			rep, err := CheckLiveness(p, sc, Options{Context: ctx})
			return rep.Interrupted, rep.BlockedExecutions, err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			interrupted, work, err := tc.run()
			if err != nil {
				t.Fatalf("cancellation must not be an error: %v", err)
			}
			if !interrupted {
				t.Error("Interrupted flag not set")
			}
			if work != 0 {
				t.Errorf("pre-cancelled run did work: %d", work)
			}
		})
	}
}

// TestDeadlineStopsExploration checks a deadline that fires mid-run:
// inc(4,3) has far too many executions for 10ms, so the result must come
// back interrupted and partial, without error, under both sequential and
// parallel exploration.
func TestDeadlineStopsExploration(t *testing.T) {
	sc, _ := memmodel.ByName("sc")
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		res, err := Explore(gen.IncN(4, 3), Options{Model: sc, Context: ctx, Workers: workers})
		cancel()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Interrupted {
			t.Errorf("workers=%d: deadline did not interrupt", workers)
		}
		if res.Exhaustive() {
			t.Errorf("workers=%d: interrupted result claims exhaustiveness", workers)
		}
	}
}

// TestBoundedAndInterruptedPartialityFlags pins the three-way partiality
// contract shared by all entry points: MaxExecutions sets Truncated (not
// Interrupted), cancellation sets Interrupted, and an unbounded completed
// run is Exhaustive.
func TestBoundedAndInterruptedPartialityFlags(t *testing.T) {
	sc, _ := memmodel.ByName("sc")
	p := gen.SBN(2)

	res, err := Explore(p, Options{Model: sc, MaxExecutions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Interrupted || res.Exhaustive() {
		t.Errorf("MaxExecutions=1: Truncated=%v Interrupted=%v Exhaustive=%v, want true/false/false",
			res.Truncated, res.Interrupted, res.Exhaustive())
	}
	if res.Executions != 1 {
		t.Errorf("MaxExecutions=1 explored %d executions", res.Executions)
	}

	res, err = Explore(p, Options{Model: sc})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhaustive() || res.Truncated || res.Interrupted {
		t.Errorf("unbounded run: Truncated=%v Interrupted=%v, want exhaustive", res.Truncated, res.Interrupted)
	}

	// The analyses inherit MaxExecutions through their Options parameter.
	rep, err := CheckRobustness(p, sc, Options{MaxExecutions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Error("CheckRobustness must surface MaxExecutions truncation")
	}
	race, err := CheckRaces(p, Options{MaxExecutions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !race.Truncated {
		t.Error("CheckRaces must surface MaxExecutions truncation")
	}
}
