package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"hmc/internal/eg"
	"hmc/internal/gen"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// TestCancelledContextEveryEntryPoint pins the interruption contract
// across all analysis entry points: an already-cancelled context is not
// an error — each returns immediately with an empty partial result whose
// Interrupted flag is set.
func TestCancelledContextEveryEntryPoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := gen.SBN(2)
	sc, _ := memmodel.ByName("sc")

	cases := []struct {
		name string
		run  func() (interrupted bool, work int, err error)
	}{
		{"Explore", func() (bool, int, error) {
			res, err := Explore(p, Options{Model: sc, Context: ctx})
			return res.Interrupted, res.Executions, err
		}},
		{"Estimate", func() (bool, int, error) {
			// Samples records the requested probe count by contract;
			// CompletedProbes is what measures work actually done.
			est, err := Estimate(p, Options{Model: sc, Context: ctx}, 50, 1)
			return est.Interrupted, est.CompletedProbes, err
		}},
		{"CheckRobustness", func() (bool, int, error) {
			rep, err := CheckRobustness(p, sc, Options{Context: ctx})
			return rep.Interrupted, rep.Executions, err
		}},
		{"CheckRaces", func() (bool, int, error) {
			rep, err := CheckRaces(p, Options{Context: ctx})
			return rep.Interrupted, rep.Executions, err
		}},
		{"CheckLiveness", func() (bool, int, error) {
			rep, err := CheckLiveness(p, sc, Options{Context: ctx})
			return rep.Interrupted, rep.BlockedExecutions, err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			interrupted, work, err := tc.run()
			if err != nil {
				t.Fatalf("cancellation must not be an error: %v", err)
			}
			if !interrupted {
				t.Error("Interrupted flag not set")
			}
			if work != 0 {
				t.Errorf("pre-cancelled run did work: %d", work)
			}
		})
	}
}

// TestDeadlineStopsExploration checks a deadline that fires mid-run:
// inc(4,3) has far too many executions for 10ms, so the result must come
// back interrupted and partial, without error, under both sequential and
// parallel exploration.
func TestDeadlineStopsExploration(t *testing.T) {
	sc, _ := memmodel.ByName("sc")
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		res, err := Explore(gen.IncN(4, 3), Options{Model: sc, Context: ctx, Workers: workers})
		cancel()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Interrupted {
			t.Errorf("workers=%d: deadline did not interrupt", workers)
		}
		if res.Exhaustive() {
			t.Errorf("workers=%d: interrupted result claims exhaustiveness", workers)
		}
	}
}

// TestBoundedAndInterruptedPartialityFlags pins the three-way partiality
// contract shared by all entry points: MaxExecutions sets Truncated (not
// Interrupted), cancellation sets Interrupted, and an unbounded completed
// run is Exhaustive.
func TestBoundedAndInterruptedPartialityFlags(t *testing.T) {
	sc, _ := memmodel.ByName("sc")
	p := gen.SBN(2)

	res, err := Explore(p, Options{Model: sc, MaxExecutions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Interrupted || res.Exhaustive() {
		t.Errorf("MaxExecutions=1: Truncated=%v Interrupted=%v Exhaustive=%v, want true/false/false",
			res.Truncated, res.Interrupted, res.Exhaustive())
	}
	if res.Executions != 1 {
		t.Errorf("MaxExecutions=1 explored %d executions", res.Executions)
	}

	res, err = Explore(p, Options{Model: sc})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhaustive() || res.Truncated || res.Interrupted {
		t.Errorf("unbounded run: Truncated=%v Interrupted=%v, want exhaustive", res.Truncated, res.Interrupted)
	}

	// The analyses inherit MaxExecutions through their Options parameter.
	rep, err := CheckRobustness(p, sc, Options{MaxExecutions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Error("CheckRobustness must surface MaxExecutions truncation")
	}
	race, err := CheckRaces(p, Options{MaxExecutions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !race.Truncated {
		t.Error("CheckRaces must surface MaxExecutions truncation")
	}
}

// The tests below pin the checkpoint contract for every way a run can
// stop early: each interruption and truncation path must hand back a
// checkpoint that round-trips byte-identically through encode→decode and
// resumes to the same place the uninterrupted run reaches.

// TestCheckpointOnPreCancelledContext: a checkpointable run under an
// already-cancelled context returns the frontier it never got to visit —
// for a fresh run, the root — and resuming it is equivalent to just
// running.
func TestCheckpointOnPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := gen.SBN(2)
	sc, _ := memmodel.ByName("sc")
	base := Options{Model: sc, CollectKeys: true, DedupSafeguard: true}

	opts := base
	opts.Context = ctx
	opts.Checkpoint = &CheckpointOptions{}
	res, err := Explore(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted || res.Executions != 0 {
		t.Fatalf("pre-cancelled: Interrupted=%v Executions=%d", res.Interrupted, res.Executions)
	}
	if res.Checkpoint == nil {
		t.Fatal("pre-cancelled checkpointable run returned no checkpoint")
	}
	cp := encodeDecode(t, res.Checkpoint)

	resumeOpts := base
	resumeOpts.ResumeFrom = cp
	resumed, err := Explore(p, resumeOpts)
	if err != nil {
		t.Fatal(err)
	}
	straight, err := Explore(p, base)
	if err != nil {
		t.Fatal(err)
	}
	assertSameExploration(t, "resume after pre-cancelled start", straight, resumed, true)
}

// TestCheckpointOnMidRunCancel: cancelling from inside OnExecution — a
// deterministic trigger point, though the watcher lands the drain
// asynchronously — yields a resumable checkpoint; chaining resumes until
// completion recovers the full exploration.
func TestCheckpointOnMidRunCancel(t *testing.T) {
	p := gen.IncN(3, 3)
	sc, _ := memmodel.ByName("sc")
	base := Options{Model: sc, CollectKeys: true, DedupSafeguard: true}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	execs := 0
	opts := base
	opts.Context = ctx
	opts.Checkpoint = &CheckpointOptions{}
	opts.OnExecution = func(*eg.Graph, prog.FinalState) {
		if execs++; execs == 3 {
			cancel()
		}
	}
	res, err := Explore(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Skip("exploration outran the cancellation watcher")
	}
	if res.Checkpoint == nil {
		t.Fatal("interrupted checkpointable run returned no checkpoint")
	}
	cp := encodeDecode(t, res.Checkpoint)

	resumed := resumeToCompletion(t, p, base, cp)
	straight, err := Explore(p, base)
	if err != nil {
		t.Fatal(err)
	}
	// The cut lands wherever the watcher goroutine caught the run, so the
	// arrival order (and with it the effort counters) may shift; the
	// semantic outcome may not.
	assertSameExploration(t, "resume after mid-run cancel", straight, resumed, false)
}

// resumeToCompletion chains ResumeFrom legs (no fault injection) until a
// leg finishes, round-tripping every checkpoint on the way.
func resumeToCompletion(t *testing.T, p *prog.Program, base Options, cp *Checkpoint) *Result {
	t.Helper()
	for leg := 0; ; leg++ {
		if leg > 1000 {
			t.Fatal("resume chain did not terminate")
		}
		opts := base
		opts.ResumeFrom = cp
		res, err := Explore(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Interrupted {
			return res
		}
		if res.Checkpoint == nil {
			t.Fatal("interrupted resume leg returned no checkpoint")
		}
		cp = encodeDecode(t, res.Checkpoint)
	}
}

// TestCheckpointOnMaxExecutions: hitting the execution cap in a
// checkpointable run truncates with a final checkpoint; resuming under
// the same bound returns the same truncated verdict without wandering
// past states the straight run never reached.
func TestCheckpointOnMaxExecutions(t *testing.T) {
	p := gen.SBN(3)
	sc, _ := memmodel.ByName("sc")
	base := Options{Model: sc, CollectKeys: true, DedupSafeguard: true, MaxExecutions: 3}

	opts := base
	opts.Checkpoint = &CheckpointOptions{}
	res, err := Explore(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.TruncatedReason != TruncMaxExecutions {
		t.Fatalf("Truncated=%v reason=%q, want max-executions", res.Truncated, res.TruncatedReason)
	}
	if res.Executions != 3 {
		t.Fatalf("explored %d executions, want 3", res.Executions)
	}
	if res.Checkpoint == nil {
		t.Fatal("truncated checkpointable run returned no checkpoint")
	}
	cp := encodeDecode(t, res.Checkpoint)

	resumeOpts := base
	resumeOpts.ResumeFrom = cp
	resumed, err := Explore(p, resumeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Truncated || resumed.TruncatedReason != TruncMaxExecutions {
		t.Errorf("resumed at cap: Truncated=%v reason=%q", resumed.Truncated, resumed.TruncatedReason)
	}
	if resumed.Executions != 3 || resumed.States != res.States {
		t.Errorf("resume at the cap must not explore further: execs %d→%d states %d→%d",
			res.Executions, resumed.Executions, res.States, resumed.States)
	}
	if resumed.Checkpoint == nil {
		t.Error("at-cap resume must hand the checkpoint back for a roomier retry")
	}
}

// TestCheckpointOnMaxEvents: the per-branch event bound truncates
// sideways (pruning branches, not the whole run); a kill/resume chain
// under the same bound reproduces the straight bounded run exactly,
// sticky Truncated flag included.
func TestCheckpointOnMaxEvents(t *testing.T) {
	p := gen.SBN(2)
	base := Options{MaxEvents: 3}
	straight := explore(t, p, "sc", withKeys(base))
	if !straight.Truncated || straight.TruncatedReason != TruncMaxEvents {
		t.Fatalf("MaxEvents=3 on SB(2) should truncate, got %v/%q",
			straight.Truncated, straight.TruncatedReason)
	}
	for _, k := range killPoints(straight.States+straight.MemoHits, true) {
		resumed, _ := runChained(t, p, "sc", base, k)
		assertSameExploration(t, fmt.Sprintf("max-events k=%d", k), straight, resumed, true)
	}
}

// TestCheckpointOnMemoryBudget: an unmeetable budget drains the whole
// in-flight frontier into the checkpoint before anything is dropped, so
// a resume without the budget (it is transient, not part of the
// checkpoint signature) completes the exploration — and, since nothing
// was lost, the result is exhaustive, not truncated.
func TestCheckpointOnMemoryBudget(t *testing.T) {
	p := gen.SBN(2)
	sc, _ := memmodel.ByName("sc")
	base := Options{Model: sc, CollectKeys: true, DedupSafeguard: true}

	opts := base
	opts.MemoryBudget = 1 // any live heap exceeds one byte
	opts.Checkpoint = &CheckpointOptions{}
	res, err := Explore(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.TruncatedReason != TruncMemoryBudget {
		t.Fatalf("Truncated=%v reason=%q, want memory-budget", res.Truncated, res.TruncatedReason)
	}
	if res.Checkpoint == nil {
		t.Fatal("budget-truncated checkpointable run returned no checkpoint")
	}
	cp := encodeDecode(t, res.Checkpoint)

	resumeOpts := base
	resumeOpts.ResumeFrom = cp
	resumed, err := Explore(p, resumeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Truncated {
		t.Errorf("resume without the budget still marked truncated (%q)", resumed.TruncatedReason)
	}
	straight, err := Explore(p, base)
	if err != nil {
		t.Fatal(err)
	}
	assertSameExploration(t, "resume after memory-budget truncation", straight, resumed, true)
}

// TestNoCheckpointOnHardStop: StopOnError is a hard stop — the in-flight
// frontier is abandoned mid-enumeration, so no sound checkpoint exists
// and none is produced. Without StopOnError the assertion failures ride
// inside the checkpoints (witness graphs and all) across a kill/resume
// chain.
func TestNoCheckpointOnHardStop(t *testing.T) {
	b := prog.NewBuilder("always-fails")
	x := b.Loc("x")
	t0 := b.Thread()
	r := t0.Load(x)
	t0.Assert(prog.Ne(prog.R(r), prog.R(r)), "always false")
	t1 := b.Thread()
	t1.Store(x, prog.Const(1))
	p := b.MustBuild()
	sc, _ := memmodel.ByName("sc")

	res, err := Explore(p, Options{Model: sc, StopOnError: true, Checkpoint: &CheckpointOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) == 0 {
		t.Fatal("expected an assertion failure")
	}
	if res.Checkpoint != nil {
		t.Error("hard stop produced a checkpoint from an incomplete frontier")
	}

	// Errors survive checkpointing: chain kills without StopOnError and
	// check the final error set (including decodable witnesses) matches.
	straight := explore(t, p, "sc", Options{CollectKeys: true})
	if len(straight.Errors) == 0 {
		t.Fatal("expected assertion failures in the full run")
	}
	resumed, _ := runChained(t, p, "sc", Options{}, 2)
	assertSameExploration(t, "errors across resume chain", straight, resumed, true)
	for i, er := range resumed.Errors {
		if er.Graph == nil {
			t.Errorf("resumed error %d lost its witness graph", i)
		} else if err := er.Graph.CheckWellFormed(); err != nil {
			t.Errorf("resumed error %d witness ill-formed: %v", i, err)
		}
		if er.Msg == "" {
			t.Errorf("resumed error %d lost its message", i)
		}
	}
}
