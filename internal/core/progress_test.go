package core

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"hmc/internal/gen"
	"hmc/internal/memmodel"
	"hmc/internal/obs"
	"hmc/internal/prog"
)

// progressWorkload returns a program big enough to straddle several
// 1ms-cadence snapshot waves but small enough for -race CI: three threads
// of plain stores to one location (the coherence-placement blow-up).
func progressWorkload() *prog.Program {
	b := prog.NewBuilder("progress-workload")
	x := b.Loc("x")
	for t := 0; t < 3; t++ {
		tb := b.Thread()
		for i := 0; i < 3; i++ {
			tb.Store(x, prog.Const(int64(10*t+i)))
		}
	}
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// checkMonotone asserts the cumulative counters never step backwards
// across the snapshot sequence and that Seq strictly increases.
func checkMonotone(t *testing.T, snaps []obs.ProgressSnapshot) {
	t.Helper()
	for i := 1; i < len(snaps); i++ {
		prev, cur := snaps[i-1], snaps[i]
		if cur.Seq != prev.Seq+1 {
			t.Errorf("snapshot %d: seq %d after %d", i, cur.Seq, prev.Seq)
		}
		type pair struct {
			name      string
			prev, cur int
		}
		for _, c := range []pair{
			{"Executions", prev.Executions, cur.Executions},
			{"Blocked", prev.Blocked, cur.Blocked},
			{"States", prev.States, cur.States},
			{"MemoHits", prev.MemoHits, cur.MemoHits},
			{"MemoSize", prev.MemoSize, cur.MemoSize},
			{"RevisitsTried", prev.RevisitsTried, cur.RevisitsTried},
			{"RevisitsTaken", prev.RevisitsTaken, cur.RevisitsTaken},
			{"ConsistencyChecks", prev.ConsistencyChecks, cur.ConsistencyChecks},
			{"Wave", prev.Wave, cur.Wave},
		} {
			if c.cur < c.prev {
				t.Errorf("snapshot %d: %s went backwards: %d -> %d", i, c.name, c.prev, c.cur)
			}
		}
		if cur.Elapsed < prev.Elapsed {
			t.Errorf("snapshot %d: elapsed went backwards", i)
		}
	}
}

// checkFinalMatchesResult asserts the last snapshot reports exactly the
// Result's stats.
func checkFinalMatchesResult(t *testing.T, snaps []obs.ProgressSnapshot, res *Result) {
	t.Helper()
	if len(snaps) == 0 {
		t.Fatal("no snapshots delivered")
	}
	last := snaps[len(snaps)-1]
	if !last.Final {
		t.Fatal("last snapshot must be marked Final")
	}
	for i, s := range snaps[:len(snaps)-1] {
		if s.Final {
			t.Errorf("snapshot %d marked Final before the last", i)
		}
	}
	if last.Executions != res.Executions || last.Blocked != res.Blocked ||
		last.States != res.States || last.MemoHits != res.MemoHits ||
		last.RevisitsTried != res.RevisitsTried || last.RevisitsTaken != res.RevisitsTaken ||
		last.ConsistencyChecks != res.ConsistencyChecks {
		t.Errorf("final snapshot %+v does not match result stats %+v", last, res.Stats)
	}
	for _, f := range []float64{last.ExecsPerSec, last.ChecksPerSec, last.EstimateMean} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Errorf("non-finite rate in final snapshot: %+v", last)
		}
	}
}

// TestProgressSnapshotsParallel is the satellite coverage test: progress
// under Workers: 8 (run with -race in CI) must deliver monotone snapshots
// whose final entry equals the Result.
func TestProgressSnapshotsParallel(t *testing.T) {
	m, _ := memmodel.ByName("sc")
	var snaps []obs.ProgressSnapshot
	res, err := Explore(progressWorkload(), Options{
		Model:   m,
		Workers: 8,
		Progress: &ProgressOptions{
			Every: time.Millisecond,
			Sink:  func(s obs.ProgressSnapshot) { snaps = append(snaps, s) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions == 0 {
		t.Fatal("workload explored nothing")
	}
	checkMonotone(t, snaps)
	checkFinalMatchesResult(t, snaps, res)
	// The sink runs between waves on the Explore goroutine, so appending
	// without a lock above is safe; at 1ms cadence this workload must
	// yield periodic snapshots, not just the final one.
	if len(snaps) < 2 {
		t.Errorf("got %d snapshots, want at least a periodic one plus the final", len(snaps))
	}
	// Phase timers were on: calls must be counted.
	last := snaps[len(snaps)-1]
	if last.Phases.InterpCalls == 0 || last.Phases.ConsistencyCalls == 0 {
		t.Errorf("phase call counts missing: %+v", last.Phases)
	}
}

// TestProgressComposesWithCheckpoint runs progress and periodic
// checkpoints together under workers: both sinks must fire and the run
// must terminate (no drain-flag deadlock) with intact totals.
func TestProgressComposesWithCheckpoint(t *testing.T) {
	m, _ := memmodel.ByName("sc")
	p := progressWorkload()
	plain, err := Explore(p, Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	var snaps []obs.ProgressSnapshot
	checkpoints := 0
	res, err := Explore(p, Options{
		Model:   m,
		Workers: 8,
		Progress: &ProgressOptions{
			Every: time.Millisecond,
			Sink:  func(s obs.ProgressSnapshot) { snaps = append(snaps, s) },
		},
		Checkpoint: &CheckpointOptions{
			EveryExecs: 50,
			Sink:       func(*Checkpoint) { checkpoints++ },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions != plain.Executions || res.States != plain.States {
		t.Errorf("observability changed the exploration: %d/%d vs plain %d/%d",
			res.Executions, res.States, plain.Executions, plain.States)
	}
	if checkpoints == 0 {
		t.Error("periodic checkpoints did not fire")
	}
	checkMonotone(t, snaps)
	checkFinalMatchesResult(t, snaps, res)
}

// TestProgressInterruptedRunEmitsFinal: a cancelled progress-only run
// still hard-stops (non-checkpointable interruption semantics are
// unchanged) and delivers a final snapshot matching the partial result.
func TestProgressInterruptedRunEmitsFinal(t *testing.T) {
	m, _ := memmodel.ByName("sc")
	ctx, cancel := context.WithCancel(context.Background())
	var snaps []obs.ProgressSnapshot
	res, err := Explore(gen.IncN(3, 3), Options{
		Model:   m,
		Context: ctx,
		Progress: &ProgressOptions{
			Every: time.Millisecond,
			Sink: func(s obs.ProgressSnapshot) {
				snaps = append(snaps, s)
				if !s.Final && s.Executions > 0 {
					cancel()
				}
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Skip("run finished before the cancellation landed")
	}
	if res.Checkpoint != nil {
		t.Error("progress alone must not make the run checkpointable")
	}
	checkMonotone(t, snaps)
	checkFinalMatchesResult(t, snaps, res)
}

// TestProgressDoesNotPerturbResumeChain: progress is a transient knob —
// a checkpoint taken by an observed run resumes in an unobserved one (and
// vice versa), with totals equal to the straight run.
func TestProgressDoesNotPerturbResumeChain(t *testing.T) {
	m, _ := memmodel.ByName("sc")
	p := progressWorkload()
	plain, err := Explore(p, Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	var snaps []obs.ProgressSnapshot
	leg1, err := Explore(p, Options{
		Model:     m,
		FailAfter: 200,
		Progress: &ProgressOptions{
			Every: time.Millisecond,
			Sink:  func(s obs.ProgressSnapshot) { snaps = append(snaps, s) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if leg1.Checkpoint == nil {
		t.Fatal("FailAfter leg must produce a checkpoint")
	}
	checkFinalMatchesResult(t, snaps, leg1)
	leg2, err := Explore(p, Options{Model: m, ResumeFrom: leg1.Checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	if leg2.Executions != plain.Executions || leg2.States != plain.States {
		t.Errorf("observed+resumed totals %d/%d, straight run %d/%d",
			leg2.Executions, leg2.States, plain.Executions, plain.States)
	}
}

// TestTraceEventsJSONL runs a traced exploration and checks the stream:
// every line parses, waves and snapshots appear, and revisit-taken events
// agree with the Result counter.
func TestTraceEventsJSONL(t *testing.T) {
	m, _ := memmodel.ByName("tso")
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	var snaps []obs.ProgressSnapshot
	res, err := Explore(gen.SBN(4), Options{
		Model: m,
		Trace: tr,
		Progress: &ProgressOptions{
			Every: time.Millisecond,
			Sink:  func(s obs.ProgressSnapshot) { snaps = append(snaps, s) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}
	if res.RevisitsTaken == 0 {
		t.Fatal("SB under tso must take revisits")
	}
	kinds := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev obs.TraceEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		kinds[ev.Kind]++
	}
	if kinds["revisit-tried"] != res.RevisitsTried {
		t.Errorf("revisit-tried events %d, counter %d", kinds["revisit-tried"], res.RevisitsTried)
	}
	if kinds["revisit-taken"] != res.RevisitsTaken {
		t.Errorf("revisit-taken events %d, counter %d", kinds["revisit-taken"], res.RevisitsTaken)
	}
	if kinds["snapshot"] != len(snaps) {
		t.Errorf("snapshot events %d, sink deliveries %d", kinds["snapshot"], len(snaps))
	}
	if int64(len(kinds)) == 0 || tr.Events() == 0 {
		t.Error("empty trace")
	}
}

// TestTracePruneEvents: static pruning on a local-accumulator program
// must emit prune events matching the counters.
func TestTracePruneEvents(t *testing.T) {
	m, _ := memmodel.ByName("sc")
	p := gen.LocalRW(3, 2)
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	res, err := Explore(p, Options{Model: m, StaticAnalysis: true, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	pruned := res.StaticPrunedRf + res.StaticPrunedCo + res.StaticPrunedScans
	if pruned == 0 {
		t.Fatal("LocalRW must trigger static pruning")
	}
	total := 0
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev obs.TraceEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if ev.Kind == "prune" {
			total += ev.Count
		}
	}
	if total != pruned {
		t.Errorf("traced prune count %d, counters say %d", total, pruned)
	}
}

// TestProgressSinkPanicContained: a panicking sink must surface as an
// EngineError, not kill the process.
func TestProgressSinkPanicContained(t *testing.T) {
	m, _ := memmodel.ByName("sc")
	_, err := Explore(progressWorkload(), Options{
		Model: m,
		Progress: &ProgressOptions{
			Every: time.Nanosecond, // due immediately
			Sink:  func(obs.ProgressSnapshot) { panic("sink boom") },
		},
	})
	if err == nil {
		t.Fatal("panicking sink must fail the run")
	}
	if _, ok := AsEngineError(err); !ok {
		t.Fatalf("want EngineError, got %T: %v", err, err)
	}
}
