package core

import (
	"sort"
	"testing"

	"hmc/internal/eg"
	"hmc/internal/gen"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

func exploreSym(t *testing.T, p *prog.Program, model string, sym bool) *Result {
	t.Helper()
	m, err := memmodel.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(p, Options{Model: m, Symmetry: sym, DedupSafeguard: true, CollectKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duplicates != 0 {
		t.Fatalf("%s: %d duplicates with symmetry=%v", p.Name, res.Duplicates, sym)
	}
	return res
}

// TestSymmetryPerms checks the generator: one group of 3 among 4 threads
// yields the 5 non-identity permutations fixing the outsider.
func TestSymmetryPerms(t *testing.T) {
	perms := symmetryPerms(4, [][]int{{0, 2, 3}})
	if len(perms) != 5 {
		t.Fatalf("3! - 1 = 5 permutations, got %d: %v", len(perms), perms)
	}
	for _, p := range perms {
		if p[1] != 1 {
			t.Errorf("thread 1 is not in the group and must be fixed: %v", p)
		}
		seen := map[int]bool{}
		for _, v := range p {
			seen[v] = true
		}
		if len(seen) != 4 {
			t.Errorf("not a permutation: %v", p)
		}
	}
	if got := symmetryPerms(3, nil); len(got) != 0 {
		t.Errorf("no groups → no permutations, got %v", got)
	}
}

// TestSymmetryCounterOrbits pins the orbit counts for the atomic-counter
// family, where all threads are identical: inc(n,1) has n! executions
// (the RMW chain orders) forming a single orbit; inc(2,2) has the 6
// interleavings of AABB collapsing into 3 orbits (no interleaving is
// fixed by the swap).
func TestSymmetryCounterOrbits(t *testing.T) {
	cases := []struct {
		p         *prog.Program
		full, sym int
	}{
		{gen.IncN(2, 1), 2, 1},
		{gen.IncN(3, 1), 6, 1},
		{gen.IncN(4, 1), 24, 1},
		{gen.IncN(2, 2), 6, 3},
	}
	for _, tc := range cases {
		full := exploreSym(t, tc.p, "sc", false)
		sym := exploreSym(t, tc.p, "sc", true)
		if full.Executions != tc.full || sym.Executions != tc.sym {
			t.Errorf("%s: full=%d (want %d), symmetric=%d (want %d)",
				tc.p.Name, full.Executions, tc.full, sym.Executions, tc.sym)
		}
		if full.ExistsCount != 0 || sym.ExistsCount != 0 {
			t.Errorf("%s: lost update must stay forbidden under reduction", tc.p.Name)
		}
	}
}

// TestSymmetryOrbitExactness is the general correctness property: the
// symmetric run's executions are exactly the canonical representatives of
// the full run's orbit partition — computed independently by
// canonicalizing every full-run execution graph.
func TestSymmetryOrbitExactness(t *testing.T) {
	symStore := func(n int) *prog.Program {
		b := prog.NewBuilder("symstore")
		x := b.Loc("x")
		for i := 0; i < n; i++ {
			th := b.Thread()
			th.Store(x, prog.Const(1))
			th.Load(x)
		}
		return b.MustBuild()
	}
	symCAS := func(n int) *prog.Program {
		b := prog.NewBuilder("symcas")
		x := b.Loc("x")
		for i := 0; i < n; i++ {
			th := b.Thread()
			th.CAS(x, prog.Const(0), prog.Const(1))
		}
		return b.MustBuild()
	}
	programs := []*prog.Program{
		gen.IncN(3, 2), symStore(3), symCAS(3),
	}
	for _, p := range programs {
		for _, model := range []string{"sc", "tso", "arm"} {
			m, _ := memmodel.ByName(model)
			perms := symmetryPerms(len(p.Threads), p.SymmetryGroups())
			if len(perms) == 0 {
				t.Fatalf("%s: expected symmetric threads", p.Name)
			}
			canon := func(g *eg.Graph) string {
				key := g.Key()
				for _, perm := range perms {
					if k := g.RenameThreads(perm).Key(); k < key {
						key = k
					}
				}
				return key
			}
			orbits := map[string]bool{}
			full, err := Explore(p, Options{Model: m, OnExecution: func(g *eg.Graph, fs prog.FinalState) {
				orbits[canon(g)] = true
			}})
			if err != nil {
				t.Fatal(err)
			}
			sym := exploreSym(t, p, model, true)
			if sym.Executions != len(orbits) {
				t.Errorf("%s/%s: symmetric run found %d executions, orbit partition has %d (full: %d)",
					p.Name, model, sym.Executions, len(orbits), full.Executions)
			}
			want := make([]string, 0, len(orbits))
			for k := range orbits {
				want = append(want, k)
			}
			sort.Strings(want)
			got := append([]string(nil), sym.Keys...)
			sort.Strings(got)
			if len(got) == len(want) {
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("%s/%s: canonical key sets differ", p.Name, model)
						break
					}
				}
			}
		}
	}
}

// TestSymmetryNoGroupsIsIdentityRun: programs without identical threads
// must be completely unaffected by the option.
func TestSymmetryNoGroupsIsIdentityRun(t *testing.T) {
	p := gen.SBN(3) // each thread touches different locations
	if groups := p.SymmetryGroups(); len(groups) != 0 {
		t.Fatalf("SB threads are not symmetric, got groups %v", groups)
	}
	full := exploreSym(t, p, "tso", false)
	sym := exploreSym(t, p, "tso", true)
	if full.Executions != sym.Executions || full.ExistsCount != sym.ExistsCount {
		t.Errorf("asymmetric program changed under reduction: %+v vs %+v", full.Stats, sym.Stats)
	}
}

// TestSymmetryWithWorkers: the two options compose — parallel workers
// share the canonical-key memo, so orbit counts must match the sequential
// symmetric run.
func TestSymmetryWithWorkers(t *testing.T) {
	p := gen.IncN(3, 2)
	m, _ := memmodel.ByName("tso")
	seq, err := Explore(p, Options{Model: m, Symmetry: true, DedupSafeguard: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Explore(p, Options{Model: m, Symmetry: true, DedupSafeguard: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Executions != par.Executions || par.Duplicates != 0 {
		t.Errorf("parallel symmetric run: %d executions (%d dups), sequential: %d",
			par.Executions, par.Duplicates, seq.Executions)
	}
}
