package core

import (
	"hmc/internal/eg"
	"hmc/internal/interp"
)

// revisitsFrom attempts a backward revisit of every same-location read by
// the write w — which is already part of g, carrying its rf (if an update)
// and coherence position. Revisits are computed per forward branch of w's
// addition, so the kept prefix reflects exactly the bindings of this
// branch.
func (e *explorer) revisitsFrom(g *eg.Graph, w eg.EvID, loc eg.Loc) {
	var reads []eg.EvID
	g.ForEach(func(ev eg.Event) {
		if !ev.Kind.IsRead() || ev.Loc != loc || ev.ID == w {
			return
		}
		if src, ok := g.RF(ev.ID); ok && src == w {
			return // already bound to w (e.g. by a chain steal): a no-op
		}
		reads = append(reads, ev.ID)
	})
	for _, r := range reads {
		if e.stopped() {
			return
		}
		r := r
		e.fork(func() { e.revisit(g, w, r) })
	}
}

// revisit performs one backward revisit: the write w (already in g)
// becomes the rf source of the existing read r. The graph is restricted to
// the kept set
//
//	V = prefix(w) ∪ prefix(r) ∪ {r}
//
// where prefix is the downward closure under po-predecessors and rf edges
// — except r's own rf edge, which the revisit erases. The revisit goes
// through when
//
//  1. re-replaying every thread against the rebound graph *repairs* it:
//     kept events whose data depends on r get their written values (and
//     CAS success/failure) patched, and no event diverges structurally.
//     This is the HMC dependency condition: independent po-successors of
//     r survive, which is what makes po∪rf-cyclic — load-buffering —
//     executions reachable under hardware memory models;
//  2. the resulting graph is consistent under the memory model;
//  3. the resulting exploration state is new (the explorer's state memo;
//     see explorer.visit). Different branches collapse into the same
//     revisited state because the revisit erases r's binding and deletes
//     events; the memo admits exactly one of them.
func (e *explorer) revisit(g *eg.Graph, w, r eg.EvID) {
	if e.stopped() {
		return
	}
	e.count(func(s *Stats) { s.RevisitsTried++ })
	e.traceRevisit("revisit-tried", w, r)

	// Phase 1: keep everything the revisit does not causally erase and
	// rely on replay repair to patch values (value-preserving dependency
	// idioms survive this way).
	ts := e.tRevisit.Start()
	keep := keepSet(g, w, r)
	e.tRevisit.Stop(ts)
	ok := e.rebindAndVisit(g, keep, w, r)
	// Phase 2: when replay diverged structurally — or the repaired graph
	// was inconsistent, which extra deletion may cure — events whose
	// existence hangs on r (control/address dependencies and their
	// dependents) are deleted and re-derived instead. The state memo
	// deduplicates any overlap between the phases.
	if ok {
		return
	}
	ts2 := e.tRevisit.Start()
	keep2 := keepSet(g, w, r)
	pruned := pruneTainted(g, keep2, w, r)
	e.tRevisit.Stop(ts2)
	if !pruned {
		e.count(func(s *Stats) { s.RevisitsRepairFail++ })
		return
	}
	if len(keep2) == len(keep) {
		// Nothing prunable: the divergence is a genuine value cycle
		// (out-of-thin-air), which constructive exploration rejects.
		e.count(func(s *Stats) { s.RevisitsRepairFail++ })
		return
	}
	if !e.rebindAndVisit(g, keep2, w, r) {
		e.count(func(s *Stats) { s.RevisitsRepairFail++ })
	}
}

// rebindAndVisit restricts g to keep, rebinds r to w, repairs and — when
// replay converges — checks consistency and explores. It reports whether
// the rebound graph both repaired and passed the consistency check.
func (e *explorer) rebindAndVisit(g *eg.Graph, keep map[eg.EvID]bool, w, r eg.EvID) bool {
	if e.opts.PorfOnlyRevisits {
		// Ablation: RC11-style revisits delete everything po-after r.
		// If a kept event is po-after r the revisit is skipped entirely
		// (under porf-acyclic models it would be inconsistent anyway).
		for ev := range keep { //hmc:nondet(existential scan: any po-after hit skips, order-invariant)
			if ev != w && ev.T == r.T && ev.I > r.I {
				e.count(func(s *Stats) { s.RevisitsPorfSkip++ })
				return true
			}
		}
	}

	// The revisit timer covers restriction, rebinding and repair — the
	// revisit machinery itself. The consistency check and any nested
	// exploration are attributed to their own phases.
	ts := e.tRevisit.Start()
	g2 := g.Restrict(func(ev eg.EvID) bool { return keep[ev] })
	loc := g2.Event(r).Loc
	g2.SetRF(r, w)

	// A rebound update must sit coherence-immediately after its new rf
	// source: move it there (its old position was tied to its old rf).
	if g2.Event(r).Kind == eg.KUpdate {
		g2.CoRemove(loc, r)
		g2.CoInsert(loc, g2.CoIndex(loc, w)+1, r)
	}

	repaired := interp.RepairAll(e.p, g2, e.opts.MaxSteps)
	e.tRevisit.Stop(ts)
	if !repaired {
		return false
	}
	if !e.consistent(g2) {
		return false
	}
	e.count(func(s *Stats) { s.RevisitsTaken++ })
	e.traceRevisit("revisit-taken", w, r)
	e.fork(func() { e.visit(g2) })
	return true
}

// keepSet computes the events surviving the revisit (r, w): everything
// added before r, plus the downward closure of w (and of r itself) under
// po-predecessors and rf edges — excluding r's own rf edge, which the
// revisit erases. Events added after r that the revisiting write does not
// causally need are deleted and re-derived by continued exploration; the
// rf-closure pulls back any deleted write that a kept read still needs,
// so the restricted graph replays. Init events are implicit and never
// tracked.
func keepSet(g *eg.Graph, w, r eg.EvID) map[eg.EvID]bool {
	keep := make(map[eg.EvID]bool)
	var stack []eg.EvID
	push := func(id eg.EvID) {
		if !id.IsInit() && !keep[id] {
			keep[id] = true
			stack = append(stack, id)
		}
	}
	rStamp := g.Event(r).Stamp
	g.ForEach(func(ev eg.Event) {
		if ev.Stamp < rStamp {
			push(ev.ID)
		}
	})
	push(w)
	push(r)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i := 0; i < id.I; i++ {
			push(eg.EvID{T: id.T, I: i})
		}
		if id != r && g.Event(id).Kind.IsRead() {
			if src, ok := g.RF(id); ok {
				push(src)
			}
		}
	}
	return keep
}

// pruneTainted removes from keep every event whose *existence* depends on
// the revisited read r: events with a control or address dependency on a
// value-tainted read (their branch outcome or target location may change
// when r is rebound), plus everything that transitively needs them
// (po-successors and readers). Value-only taint (data dependencies) stays:
// replay repair patches written values in place. It reports false when the
// revisiting write w or r itself would have to go — the revisit is then
// contradictory and abandoned.
func pruneTainted(g *eg.Graph, keep map[eg.EvID]bool, w, r eg.EvID) bool {
	// Value taint: reads whose observed value may change when r is
	// rebound, and writes whose stored value may change.
	taintedReads := map[eg.EvID]bool{r: true}
	taintedWrites := map[eg.EvID]bool{}
	for changed := true; changed; {
		changed = false
		g.ForEach(func(ev eg.Event) {
			if !keep[ev.ID] {
				return
			}
			if ev.Kind.IsWrite() && !taintedWrites[ev.ID] {
				for _, d := range ev.Data {
					if taintedReads[d] {
						taintedWrites[ev.ID] = true
						changed = true
					}
				}
			}
			if ev.Kind.IsRead() && !taintedReads[ev.ID] {
				if src, ok := g.RF(ev.ID); ok && taintedWrites[src] {
					taintedReads[ev.ID] = true
					changed = true
				}
			}
		})
	}

	// Existence taint: ctrl/addr dependency on a tainted read, closed
	// under po-successors and readers-of-deleted-writes.
	doomed := map[eg.EvID]bool{}
	mark := func(id eg.EvID) bool {
		if !keep[id] || doomed[id] {
			return false
		}
		doomed[id] = true
		return true
	}
	g.ForEach(func(ev eg.Event) {
		if !keep[ev.ID] || ev.ID == r {
			return
		}
		for _, set := range [][]eg.EvID{ev.Ctrl, ev.Addr} {
			for _, d := range set {
				if taintedReads[d] {
					mark(ev.ID)
				}
			}
		}
	})
	for changed := true; changed; {
		changed = false
		g.ForEach(func(ev eg.Event) {
			if !keep[ev.ID] || doomed[ev.ID] {
				return
			}
			// po-successor of a doomed event
			for i := 0; i < ev.ID.I; i++ {
				if doomed[eg.EvID{T: ev.ID.T, I: i}] {
					if mark(ev.ID) {
						changed = true
					}
					return
				}
			}
			// reader of a doomed write
			if ev.Kind.IsRead() && ev.ID != r {
				if src, ok := g.RF(ev.ID); ok && doomed[src] {
					if mark(ev.ID) {
						changed = true
					}
				}
			}
		})
	}
	if doomed[w] || doomed[r] {
		return false
	}
	for id := range doomed { //hmc:nondet(set difference: deletions commute, order-invariant)
		delete(keep, id)
	}
	return true
}
