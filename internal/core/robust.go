package core

import (
	"hmc/internal/eg"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// RobustnessReport is the outcome of CheckRobustness.
type RobustnessReport struct {
	// Robust is true when every execution the weak model admits is also
	// sequentially consistent — the program exhibits no weak behaviour at
	// all, so SC reasoning about it is sound on that hardware.
	Robust bool
	// Executions counts the weak model's consistent executions.
	Executions int
	// NonSC counts those that are not sequentially consistent.
	NonSC int
	// Witness is one non-SC execution (nil when robust).
	Witness *eg.Graph
}

// CheckRobustness reports whether p is robust against the given weak
// model: whether its executions under that model coincide with its SC
// executions. Robustness is the practical verification target for
// portable code — a robust program needs no weak-memory reasoning — and
// the witness, when present, is precisely the reordering an engineer must
// either accept or fence away.
func CheckRobustness(p *prog.Program, weak memmodel.Model) (*RobustnessReport, error) {
	sc, err := memmodel.ByName("sc")
	if err != nil {
		return nil, err
	}
	rep := &RobustnessReport{Robust: true}
	res, err := Explore(p, Options{
		Model: weak,
		OnExecution: func(g *eg.Graph, fs prog.FinalState) {
			if !sc.Consistent(eg.NewView(g)) {
				rep.NonSC++
				rep.Robust = false
				if rep.Witness == nil {
					rep.Witness = g.Clone()
				}
			}
		},
	})
	if err != nil {
		return nil, err
	}
	rep.Executions = res.Executions
	return rep, nil
}
