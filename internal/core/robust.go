package core

import (
	"fmt"

	"hmc/internal/eg"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// RobustnessReport is the outcome of CheckRobustness.
type RobustnessReport struct {
	// Robust is true when every execution the weak model admits is also
	// sequentially consistent — the program exhibits no weak behaviour at
	// all, so SC reasoning about it is sound on that hardware.
	Robust bool
	// Executions counts the weak model's consistent executions.
	Executions int
	// NonSC counts those that are not sequentially consistent.
	NonSC int
	// Witness is one non-SC execution (nil when robust).
	Witness *eg.Graph
	// Truncated/Interrupted report a partial exploration (MaxExecutions
	// hit, or Options.Context cancelled): Robust=true is then only
	// "no counterexample found so far", not a verdict.
	Truncated   bool
	Interrupted bool
}

// analysisOptions merges the optional exploration options an analysis
// entry point accepts (bounds, context, workers, symmetry) with the
// callbacks and model the analysis itself owns. At most one Options value
// is honoured; the caller's Model and callbacks are ignored.
func analysisOptions(m memmodel.Model, onExec func(*eg.Graph, prog.FinalState), onBlocked func(*eg.Graph), opts []Options) Options {
	o := Options{}
	if len(opts) > 0 {
		o = opts[0]
	}
	o.Model = m
	o.OnExecution = onExec
	o.OnBlocked = onBlocked
	o.OnDuplicate = nil
	o.CollectKeys = false
	return o
}

// CheckRobustness reports whether p is robust against the given weak
// model: whether its executions under that model coincide with its SC
// executions. Robustness is the practical verification target for
// portable code — a robust program needs no weak-memory reasoning — and
// the witness, when present, is precisely the reordering an engineer must
// either accept or fence away.
//
// An optional Options value supplies exploration bounds (MaxExecutions,
// Context, Workers, Symmetry, MaxSteps); its Model and callback fields
// are ignored. A bounded or cancelled run sets Truncated/Interrupted on
// the report.
func CheckRobustness(p *prog.Program, weak memmodel.Model, opts ...Options) (*RobustnessReport, error) {
	sc, err := memmodel.ByName("sc")
	if err != nil {
		return nil, err
	}
	rep := &RobustnessReport{Robust: true}
	res, err := Explore(p, analysisOptions(weak, func(g *eg.Graph, fs prog.FinalState) {
		if !sc.Consistent(eg.NewView(g)) {
			rep.NonSC++
			rep.Robust = false
			if rep.Witness == nil {
				rep.Witness = g.Clone()
			}
		}
	}, nil, opts))
	if err != nil {
		return nil, fmt.Errorf("robustness check: %w", err)
	}
	rep.Executions = res.Executions
	rep.Truncated = res.Truncated
	rep.Interrupted = res.Interrupted
	return rep, nil
}
