package core

import (
	"fmt"
	"time"

	"hmc/internal/eg"
	"hmc/internal/obs"
)

// This file threads the observability layer (internal/obs) through the
// explorer: periodic progress snapshots, sampled phase timers and the
// structured exploration trace.
//
// Snapshots piggyback on the checkpoint drain machinery (checkpoint.go):
// when a snapshot falls due, complete() raises the drain flag, the current
// wave unwinds with its deferred graphs parked in pending, and the wave
// loop — workers quiescent, nothing in flight — reads the counters
// race-free, emits the snapshot and resumes from the drained frontier.
// Observation therefore never changes *what* is explored, only inserts
// the same pauses a periodic checkpoint would; a run with both enabled
// shares the waves. Progress and Trace are transient knobs like Workers:
// they are excluded from the checkpoint options signature, so observed
// and unobserved legs of a resume chain interoperate.

// DefaultProgressEvery is the snapshot cadence used when
// ProgressOptions.Every is unset; EXPERIMENTS.md T15 bounds the whole
// instrumentation overhead at this cadence to <5%.
const DefaultProgressEvery = time.Second

// ProgressOptions configures periodic progress snapshots
// (Options.Progress).
type ProgressOptions struct {
	// Every is the wall-clock snapshot cadence (≤0: DefaultProgressEvery).
	// Snapshots land at the next quiescent point after the cadence
	// elapses, so the actual spacing is cadence plus up to one wave.
	Every time.Duration
	// Sink receives each snapshot. It runs on the exploration goroutine
	// between waves — workers are quiescent — so it may read the snapshot
	// freely without racing the explorer; it should return quickly, since
	// exploration is paused for its duration. The final snapshot of the
	// run (Final set, counters equal to the Result) is always delivered,
	// even when the run is too short for a periodic one. A nil Sink
	// disables progress entirely.
	Sink func(obs.ProgressSnapshot)
	// EstimateMean, when positive, is a predicted total execution count
	// (typically core.Estimate's Mean) used to derive the snapshot ETA.
	EstimateMean float64
}

// progressState is the explorer's progress bookkeeping. seq and emission
// run only on the Explore goroutine; last is additionally written by
// complete() under sh.mu when a snapshot falls due.
type progressState struct {
	opts  ProgressOptions
	every time.Duration
	start time.Time
	last  time.Time // guarded by sh.mu
	seq   int
}

// initObs sets up progress, trace and the phase timers from the options.
func (e *explorer) initObs() {
	if p := e.opts.Progress; p != nil && p.Sink != nil {
		every := p.Every
		if every <= 0 {
			every = DefaultProgressEvery
		}
		now := time.Now() //hmc:nondet(progress timestamps describe the run, they never feed counters or keys)
		e.prog = &progressState{opts: *p, every: every, start: now, last: now}
	}
	e.tracer = e.opts.Trace
	if e.prog != nil || e.tracer != nil {
		e.tInterp = &obs.PhaseTimer{}
		e.tConsist = &obs.PhaseTimer{}
		e.tRevisit = &obs.PhaseTimer{}
	}
}

// progressDue reports (and consumes) a pending snapshot request; called by
// complete() under sh.mu.
func (e *explorer) progressDueLocked() bool {
	if e.prog == nil {
		return false
	}
	if time.Since(e.prog.last) < e.prog.every {
		return false
	}
	// Reset at request time, not emission time: a storm of completions
	// during the drain wave must not re-request.
	e.prog.last = time.Now() //hmc:nondet(snapshot cadence is wall-clock by design; emission timing never changes what is explored)
	return true
}

// snapshotProgress builds one snapshot from the quiescent explorer state.
// Called only on the Explore goroutine between waves (or after the run).
func (e *explorer) snapshotProgress(frontier int, final bool) obs.ProgressSnapshot {
	e.sh.mu.Lock()
	s := e.sh.res.Stats
	memo := len(e.sh.memo)
	e.sh.mu.Unlock()
	p := e.prog
	p.seq++
	elapsed := time.Since(p.start)
	snap := obs.ProgressSnapshot{
		Seq:               p.seq,
		Wave:              e.wave,
		Executions:        s.Executions,
		Blocked:           s.Blocked,
		States:            s.States,
		MemoHits:          s.MemoHits,
		MemoSize:          memo,
		Frontier:          frontier,
		RevisitsTried:     s.RevisitsTried,
		RevisitsTaken:     s.RevisitsTaken,
		ConsistencyChecks: s.ConsistencyChecks,
		StaticPrunedRf:    s.StaticPrunedRf,
		StaticPrunedCo:    s.StaticPrunedCo,
		StaticPrunedScans: s.StaticPrunedScans,
		Elapsed:           elapsed,
		ExecsPerSec:       obs.Rate(s.Executions, elapsed),
		ChecksPerSec:      obs.Rate(s.ConsistencyChecks, elapsed),
		EstimateMean:      obs.Finite(p.opts.EstimateMean),
		Phases:            e.phaseTimes(),
		Final:             final,
	}
	if !final {
		snap.ETA = obs.ETA(snap.EstimateMean, s.Executions, snap.ExecsPerSec)
	}
	return snap
}

// emitProgress delivers one snapshot to the sink (and the trace). The
// sink runs under the panic guard: a panicking sink becomes the run's
// EngineError, like any other callback.
func (e *explorer) emitProgress(frontier int, final bool) {
	if e.prog == nil {
		return
	}
	snap := e.snapshotProgress(frontier, final)
	e.tracer.Emit(obs.TraceEvent{Kind: "snapshot", Snapshot: &snap})
	e.guard(func() { e.prog.opts.Sink(snap) })
}

// phaseTimes assembles the sampled phase-timing breakdown.
func (e *explorer) phaseTimes() obs.PhaseTimes {
	it, ic := e.tInterp.Estimate()
	ct, cc := e.tConsist.Estimate()
	rt, rc := e.tRevisit.Estimate()
	return obs.PhaseTimes{
		Interp: it, InterpCalls: ic,
		Consistency: ct, ConsistencyCalls: cc,
		Revisit: rt, RevisitCalls: rc,
	}
}

// Trace emission helpers: nil-safe (Tracer.Emit no-ops on nil), so call
// sites stay unconditional.

func (e *explorer) traceWave(frontier int) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(obs.TraceEvent{Kind: "wave", Wave: e.wave, Frontier: frontier})
}

func (e *explorer) traceRevisit(kind string, w, r eg.EvID) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(obs.TraceEvent{Kind: kind, Write: evName(w), Read: evName(r)})
}

func (e *explorer) tracePrune(kind string, n int) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(obs.TraceEvent{Kind: "prune", Prune: kind, Count: n})
}

// evName renders an event id for the trace ("T1.3": thread 1, index 3).
func evName(id eg.EvID) string {
	return fmt.Sprintf("T%d.%d", id.T, id.I)
}
