package core

import (
	"fmt"

	"hmc/internal/analyze"
	"hmc/internal/eg"
	"hmc/internal/interp"
	"hmc/internal/prog"
)

// This file hosts the exploration hooks fed by the static analysis pass
// (internal/analyze): count-preserving pruning (Options.StaticAnalysis)
// and the dynamic-vs-static dependency sanitizer (Options.CheckDeps).
//
// Every pruning rule below skips work that the unpruned explorer would
// provably discard itself, so the set of consistent executions — and all
// of Executions/ExistsCount/Blocked/Errors — is unchanged. The rules rely
// only on the coherence axiom (SC-per-location), which every model in the
// registry includes:
//
//   - thread-local location (one accessor thread): all of l's events in
//     any graph belong to one thread, so co order equals program order.
//     A new read's only coherent rf source is the co-maximal write (any
//     other choice creates a po-loc;rf;fr cycle), and a backward revisit
//     would rebind a po-earlier same-thread read to the new write (an
//     rf;po-loc cycle) — both are tried and rejected by the unpruned
//     explorer, so skipping them is free.
//   - single-writer location: all non-init writes share a thread, so a
//     new write's only coherent placement is co-maximal; the earlier
//     positions would invert same-thread coherence.
//   - never-read location (statically-dead stores): no read of l can
//     exist in any graph, so the backward-revisit scan after adding a
//     write to l is vacuous. The write event itself is still added — the
//     program's Exists predicate is an opaque closure that may observe
//     l's final value, so "eliding a dead store" means eliding its
//     branching cost, never the event.

// maxDepViolationDetails caps the per-run sample of CheckDeps failures
// kept in Result.DepViolationDetails (the count is unbounded).
const maxDepViolationDetails = 8

// analyzeIfNeeded runs the static pass when either consumer option asks
// for it.
func analyzeIfNeeded(p *prog.Program, opts Options) *analyze.Result {
	if !opts.StaticAnalysis && !opts.CheckDeps {
		return nil
	}
	return analyze.Analyze(p)
}

// pruneRF reports that reads of loc should skip all non-co-maximal rf
// candidates.
func (e *explorer) pruneRF(loc eg.Loc) bool {
	return e.opts.StaticAnalysis && e.static != nil && e.static.Foot.ThreadLocal(loc)
}

// pruneCo reports that writes to loc should be placed co-maximally only.
func (e *explorer) pruneCo(loc eg.Loc) bool {
	if !e.opts.StaticAnalysis || e.static == nil {
		return false
	}
	_, ok := e.static.Foot.SingleWriter(loc)
	return ok
}

// pruneRevisitScan reports that the backward-revisit scan after a write
// to loc is provably fruitless.
func (e *explorer) pruneRevisitScan(loc eg.Loc) bool {
	if !e.opts.StaticAnalysis || e.static == nil {
		return false
	}
	return e.static.Foot.ThreadLocal(loc) || e.static.Foot.NeverRead(loc)
}

// maybeRevisitsFrom runs the backward-revisit scan unless static analysis
// proves it vacuous.
func (e *explorer) maybeRevisitsFrom(g *eg.Graph, w eg.EvID, loc eg.Loc) {
	if e.pruneRevisitScan(loc) {
		e.count(func(s *Stats) { s.StaticPrunedScans++ })
		e.tracePrune("scan", 1)
		return
	}
	e.revisitsFrom(g, w, loc)
}

// verifyDeps checks one action's dynamic taints against the static
// dependency sets — the CheckDeps sanitizer. Violations are counted (and
// sampled) but do not stop exploration: the sanitizer observes, the
// tests assert the count stays zero.
func (e *explorer) verifyDeps(g *eg.Graph, t int, a interp.Action) {
	err := e.static.CheckDeps(t, a.PC, a.Addr, a.Data, a.Ctrl, func(id eg.EvID) int {
		return g.Event(id).PC
	})
	if err == nil {
		return
	}
	e.sh.mu.Lock()
	defer e.sh.mu.Unlock()
	e.sh.res.DepViolations++
	if len(e.sh.res.DepViolationDetails) < maxDepViolationDetails {
		e.sh.res.DepViolationDetails = append(e.sh.res.DepViolationDetails,
			fmt.Sprintf("%s (action %v)", err, a.Kind))
	}
}
