package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"strconv"
	"strings"

	"hmc/internal/eg"
	"hmc/internal/prog"
)

// This file defines state ownership for sharded exploration: a ShardSpec
// assigns every canonical state key to one of Mod hash buckets and owns a
// subset of them. An explorer running under Options.Shard expands only the
// states it owns and records every other constructed graph on its
// checkpoint's Forwarded list for the coordinator (internal/shard) to
// route. Because each state is expanded by exactly one owner and each
// arrival is memo-checked exactly once — at that owner — the counters of
// the shards sum to exactly the single-process run's, the same
// exactly-once guarantee the resume path has (checkpoint.go).

// MaxShardBuckets bounds the ownership-bucket count of a ShardSpec. The
// bucket count trades steal granularity (more buckets = finer work moves)
// against spec size; 4096 is far above any sane shard fleet.
const MaxShardBuckets = 4096

// ShardSpec is an immutable ownership claim over the state space: keys
// hash into Mod buckets (FNV-1a), and the spec owns a subset of them. The
// coordinator keeps the specs of one run disjoint and covering, so every
// state has exactly one owner at any time.
type ShardSpec struct {
	mod   int
	owned []bool
	str   string
}

// NewShardSpec builds a spec owning the given buckets out of mod.
func NewShardSpec(mod int, buckets []int) (*ShardSpec, error) {
	if mod < 1 || mod > MaxShardBuckets {
		return nil, fmt.Errorf("core: shard bucket count %d out of range [1,%d]", mod, MaxShardBuckets)
	}
	s := &ShardSpec{mod: mod, owned: make([]bool, mod)}
	for _, b := range buckets {
		if b < 0 || b >= mod {
			return nil, fmt.Errorf("core: shard bucket %d out of range [0,%d)", b, mod)
		}
		s.owned[b] = true
	}
	s.str = s.render()
	return s, nil
}

// ParseShardSpec parses the String form ("mod:hexmask", nibble i covering
// buckets 4i..4i+3, bit b%4 = bucket 4⌊b/4⌋+b%4).
func ParseShardSpec(str string) (*ShardSpec, error) {
	mods, mask, ok := strings.Cut(str, ":")
	if !ok {
		return nil, fmt.Errorf("core: bad shard spec %q: want \"mod:hexmask\"", str)
	}
	mod, err := strconv.Atoi(mods)
	if err != nil || mod < 1 || mod > MaxShardBuckets {
		return nil, fmt.Errorf("core: bad shard spec %q: bucket count out of range [1,%d]", str, MaxShardBuckets)
	}
	if len(mask) != (mod+3)/4 {
		return nil, fmt.Errorf("core: bad shard spec %q: mask is %d hex digits, %d buckets need %d", str, len(mask), mod, (mod+3)/4)
	}
	s := &ShardSpec{mod: mod, owned: make([]bool, mod)}
	for i := 0; i < len(mask); i++ {
		v, err := strconv.ParseUint(mask[i:i+1], 16, 8)
		if err != nil {
			return nil, fmt.Errorf("core: bad shard spec %q: mask digit %d is not hex", str, i)
		}
		for bit := 0; bit < 4; bit++ {
			if v&(1<<bit) == 0 {
				continue
			}
			b := 4*i + bit
			if b >= mod {
				return nil, fmt.Errorf("core: bad shard spec %q: mask sets bucket %d beyond count %d", str, b, mod)
			}
			s.owned[b] = true
		}
	}
	s.str = s.render()
	return s, nil
}

func (s *ShardSpec) render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:", s.mod)
	for i := 0; i < (s.mod+3)/4; i++ {
		v := 0
		for bit := 0; bit < 4; bit++ {
			if b := 4*i + bit; b < s.mod && s.owned[b] {
				v |= 1 << bit
			}
		}
		fmt.Fprintf(&sb, "%x", v)
	}
	return sb.String()
}

// Mod returns the spec's bucket count.
func (s *ShardSpec) Mod() int { return s.mod }

// Owns reports whether the spec owns the state with the given canonical
// key.
func (s *ShardSpec) Owns(key string) bool { return s.owned[BucketOf(key, s.mod)] }

// OwnsBucket reports whether the spec owns bucket b.
func (s *ShardSpec) OwnsBucket(b int) bool { return b >= 0 && b < s.mod && s.owned[b] }

// Buckets returns the owned buckets in ascending order.
func (s *ShardSpec) Buckets() []int {
	var out []int
	for b, own := range s.owned {
		if own {
			out = append(out, b)
		}
	}
	return out
}

// String renders the spec in the form ParseShardSpec reads; equal specs
// render identically, so the string is also the identity recorded on
// checkpoints (Checkpoint.Shard).
func (s *ShardSpec) String() string { return s.str }

// BucketOf maps a canonical state key to its ownership bucket: FNV-1a
// (32-bit) over the key, mod the bucket count. The hash is part of the
// checkpoint contract — every engine routing for the same run must bucket
// identically — so it is fixed here rather than delegated to hash/maphash
// (which is seeded per process).
func BucketOf(key string, mod int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(mod))
}

// KeyFunc returns the canonical state-key function of a run: the semantic
// graph key, minimized over thread permutations when symmetry reduction
// is on. This is exactly the key visit memoizes on and ShardSpec.Owns
// buckets by, exported so the coordinator can re-bucket pending graphs
// when re-balancing shards. Computing the permutation set replays engine
// code on the untrusted program, so it gets the same panic→error boundary
// as the other entry points.
func KeyFunc(p *prog.Program, symmetry bool) (fn func(*eg.Graph) string, err error) {
	defer func() {
		if r := recover(); r != nil {
			fn = nil
			err = &EngineError{
				Op:          "keyfunc",
				Program:     p.Name,
				Fingerprint: p.Fingerprint(),
				PanicValue:  r,
				Stack:       string(debug.Stack()),
			}
		}
	}()
	var perms [][]int
	if symmetry {
		perms = symmetryPerms(len(p.Threads), p.SymmetryGroups())
	}
	return func(g *eg.Graph) string {
		key := g.Key()
		for _, perm := range perms {
			if k := g.RenameThreads(perm).Key(); k < key {
				key = k
			}
		}
		return key
	}, nil
}

// InitialCheckpoint describes a run of p under opts that has done no work
// yet: empty memo, zero counters, the initial (empty) graph pending. It
// is what the shard coordinator splits when starting a fresh job, and
// resuming from it is equivalent to a fresh Explore call.
func InitialCheckpoint(p *prog.Program, opts Options) (cp *Checkpoint, err error) {
	if opts.Model == nil {
		return nil, errors.New("core: Options.Model is required")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Fingerprinting and graph construction run engine code on the
	// untrusted program — same panic→error boundary as Explore.
	defer func() {
		if r := recover(); r != nil {
			cp = nil
			err = &EngineError{
				Op:          "initial-checkpoint",
				Program:     p.Name,
				Fingerprint: p.Fingerprint(),
				Model:       opts.Model.Name(),
				PanicValue:  r,
				Stack:       string(debug.Stack()),
			}
		}
	}()
	g := eg.NewGraph(len(p.Threads), p.NumLocs)
	data, err := encodeWireGraph(g)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		Version:     CheckpointVersion,
		Schema:      SchemaVersion,
		Fingerprint: p.Fingerprint(),
		Model:       opts.Model.Name(),
		Opts:        optsSignature(opts),
		Pending:     []json.RawMessage{data},
	}, nil
}
