package core

import (
	"reflect"
	"testing"

	"hmc/internal/gen"
	"hmc/internal/litmus"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// TestLegacyChecksCountPreserving is the central invariant of the
// incremental-checking rewrite: Options.LegacyChecks toggles between the
// pooled/incremental consistency path and the reference materialized-union
// path, and every observable of the run — each Stats counter, the
// execution key set, truncation status — must be byte-identical between
// the two. The knob may only move wall-clock and allocation.
func TestLegacyChecksCountPreserving(t *testing.T) {
	check := func(name string, p *prog.Program, model string) {
		t.Helper()
		fast := explore(t, p, model, Options{CollectKeys: true})
		legacy := explore(t, p, model, Options{CollectKeys: true, LegacyChecks: true})
		if !reflect.DeepEqual(fast.Stats, legacy.Stats) {
			t.Errorf("%s under %s: stats diverge\nfast:   %+v\nlegacy: %+v",
				name, model, fast.Stats, legacy.Stats)
		}
		if got, want := sortedKeys(fast), sortedKeys(legacy); !reflect.DeepEqual(got, want) {
			t.Errorf("%s under %s: execution key sets diverge (%d vs %d keys)",
				name, model, len(got), len(want))
		}
	}
	for _, tc := range litmus.Corpus() {
		for model := range tc.Allowed {
			check(tc.Name, tc.P, model)
		}
	}
	check("SB(6)", gen.SBN(6), "sc")
	check("SB(6)", gen.SBN(6), "tso")
	check("SB(6)", gen.SBN(6), "pso")
	check("inc(2,2)", gen.IncN(2, 2), "sc")
	check("indexer(2)", gen.IndexerN(2), "tso")
}

// TestLegacyChecksCheckpointCompatible kills a run and resumes it with the
// LegacyChecks knob flipped on every leg. The knob is transient — excluded
// from the checkpoint options signature — so the cross-path chain must be
// accepted and finish with the same totals as a straight run.
func TestLegacyChecksCheckpointCompatible(t *testing.T) {
	p := gen.SBN(6)
	m, err := memmodel.ByName("tso")
	if err != nil {
		t.Fatal(err)
	}
	straight := explore(t, p, "tso", Options{CollectKeys: true})

	var resume *Checkpoint
	legacy := false
	for leg := 0; ; leg++ {
		if leg > 10000 {
			t.Fatal("cross-path resume chain did not terminate")
		}
		res, err := Explore(p, Options{
			Model:          m,
			DedupSafeguard: true,
			CollectKeys:    true,
			FailAfter:      6,
			ResumeFrom:     resume,
			LegacyChecks:   legacy,
		})
		if err != nil {
			t.Fatalf("leg %d (legacy=%v): %v", leg, legacy, err)
		}
		if !res.Interrupted {
			if leg == 0 {
				t.Fatal("run finished before a single kill; raise the program size")
			}
			assertSameExploration(t, "cross-path resume", straight, res, true)
			return
		}
		if res.Checkpoint == nil {
			t.Fatal("interrupted result without checkpoint")
		}
		resume = encodeDecode(t, res.Checkpoint)
		legacy = !legacy // alternate the path across process generations
	}
}
