package core

import (
	"errors"
	"strings"
	"testing"

	"hmc/internal/eg"
	"hmc/internal/gen"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// corruptedProgram builds a program that passes Validate (which checks
// only branch targets and register bounds) but whose second thread carries
// an instruction opcode the interpreter has no case for — replaying it
// trips the interpreter's invariant panic. The opcode byte doubles as a
// content nonce so distinct fingerprints are easy to mint.
func corruptedProgram(t *testing.T, nonce int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("corrupted")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t1 := b.Thread()
	t1.Load(x)
	t1.Store(x, prog.Const(nonce))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the store after the load: the panic fires only once
	// exploration has branched past the read, exercising recovery deep in
	// the DFS (and, with Workers>1, inside forked goroutines).
	p.Threads[1][1].Op = prog.InstrOp(200)
	if err := p.Validate(); err != nil {
		t.Fatalf("corrupted program must still validate: %v", err)
	}
	return p
}

func TestPanicBecomesEngineError(t *testing.T) {
	p := corruptedProgram(t, 7)
	for _, workers := range []int{1, 4} {
		res, err := Explore(p, Options{Model: mustModelT(t, "tso"), Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: corrupted program explored without error (res=%+v)", workers, res)
		}
		ee, ok := AsEngineError(err)
		if !ok {
			t.Fatalf("workers=%d: error is not an EngineError: %v", workers, err)
		}
		if ee.Op != "explore" || ee.Program != "corrupted" || ee.Model != "tso" {
			t.Errorf("workers=%d: bad identity fields: %+v", workers, ee)
		}
		if ee.Fingerprint != p.Fingerprint() {
			t.Errorf("workers=%d: fingerprint mismatch", workers)
		}
		if !strings.Contains(ee.Stack, "interp") {
			t.Errorf("workers=%d: stack does not show the panic site:\n%s", workers, ee.Stack)
		}
		if ee.PanicValue == nil {
			t.Errorf("workers=%d: panic value lost", workers)
		}
	}
}

func TestPanicInCallbackIsContained(t *testing.T) {
	n := 0
	res, err := Explore(gen.SBN(2), Options{
		Model: mustModelT(t, "sc"),
		OnExecution: func(_ *eg.Graph, _ prog.FinalState) {
			n++
			if n == 2 {
				panic("callback exploded")
			}
		},
	})
	if err == nil {
		t.Fatalf("panicking callback must fail the run, got %+v", res)
	}
	ee, ok := AsEngineError(err)
	if !ok || ee.PanicValue != "callback exploded" {
		t.Fatalf("want EngineError carrying the callback panic, got %v", err)
	}
	if ee.Stats.Executions == 0 {
		t.Error("stats at failure should show the first completed execution")
	}
}

func TestEstimatePanicBecomesEngineError(t *testing.T) {
	p := corruptedProgram(t, 9)
	_, err := Estimate(p, Options{Model: mustModelT(t, "imm")}, 16, 1)
	ee, ok := AsEngineError(err)
	if !ok {
		t.Fatalf("want EngineError from Estimate, got %v", err)
	}
	if ee.Op != "estimate" {
		t.Errorf("Op = %q, want estimate", ee.Op)
	}
}

func TestAnalysesWrapEngineError(t *testing.T) {
	p := corruptedProgram(t, 11)
	if _, err := CheckRobustness(p, mustModelT(t, "tso")); !isEngineErr(err) {
		t.Errorf("CheckRobustness: want wrapped EngineError, got %v", err)
	}
	if _, err := CheckRaces(p); !isEngineErr(err) {
		t.Errorf("CheckRaces: want wrapped EngineError, got %v", err)
	}
	if _, err := CheckLiveness(p, mustModelT(t, "tso")); !isEngineErr(err) {
		t.Errorf("CheckLiveness: want wrapped EngineError, got %v", err)
	}
}

func TestMaxEventsTruncates(t *testing.T) {
	sb := gen.SBN(3)
	full, err := Explore(sb, Options{Model: mustModelT(t, "tso")})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Explore(sb, Options{Model: mustModelT(t, "tso"), MaxEvents: full.MaxGraphEvents - 2})
	if err != nil {
		t.Fatalf("an event budget must truncate, not error: %v", err)
	}
	if !capped.Truncated || capped.TruncatedReason != TruncMaxEvents {
		t.Fatalf("Truncated=%v reason=%q, want max-events", capped.Truncated, capped.TruncatedReason)
	}
	if capped.Executions >= full.Executions {
		t.Errorf("capped run found %d executions, full %d — cap had no effect", capped.Executions, full.Executions)
	}
	roomy, err := Explore(sb, Options{Model: mustModelT(t, "tso"), MaxEvents: full.MaxGraphEvents})
	if err != nil {
		t.Fatal(err)
	}
	if roomy.Truncated || roomy.Executions != full.Executions {
		t.Errorf("a budget above the max graph size must be a no-op (truncated=%v execs=%d/%d)",
			roomy.Truncated, roomy.Executions, full.Executions)
	}
}

func TestMemoryBudgetTruncates(t *testing.T) {
	// One byte of budget is always already exceeded: the first branch
	// point trips the soft limit and the run returns an empty truncated
	// result — never an error or an OOM kill.
	res, err := Explore(gen.SBN(4), Options{Model: mustModelT(t, "tso"), MemoryBudget: 1})
	if err != nil {
		t.Fatalf("memory budget must degrade gracefully, got error: %v", err)
	}
	if !res.Truncated || res.TruncatedReason != TruncMemoryBudget {
		t.Fatalf("Truncated=%v reason=%q, want memory-budget", res.Truncated, res.TruncatedReason)
	}
	if res.Interrupted {
		t.Error("a budget truncation is not a context interruption")
	}
}

func TestMaxExecutionsReportsReason(t *testing.T) {
	res, err := Explore(gen.SBN(3), Options{Model: mustModelT(t, "tso"), MaxExecutions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.TruncatedReason != TruncMaxExecutions {
		t.Fatalf("Truncated=%v reason=%q, want max-executions", res.Truncated, res.TruncatedReason)
	}
}

func isEngineErr(err error) bool {
	var ee *EngineError
	return errors.As(err, &ee)
}

func mustModelT(t *testing.T, name string) memmodel.Model {
	t.Helper()
	m, err := memmodel.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
