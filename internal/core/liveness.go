package core

import (
	"fmt"

	"hmc/internal/eg"
	"hmc/internal/interp"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// PermanentBlock identifies one liveness violation: a thread whose await
// can never complete, with the spin-read and the witness execution.
type PermanentBlock struct {
	Thread int
	// Read is the spin-read the thread is stuck on (zero EvID when the
	// failed assume does not depend on memory at all).
	Read    eg.EvID
	Witness *eg.Graph
}

func (b PermanentBlock) String() string {
	return fmt.Sprintf("thread %d blocks forever at %v", b.Thread, b.Read)
}

// LivenessReport is the outcome of CheckLiveness.
type LivenessReport struct {
	// Executions counts complete consistent executions.
	Executions int
	// BlockedExecutions counts maximal blocked executions of any kind.
	BlockedExecutions int
	// PermanentBlocks holds one entry per (thread, spin-read instruction)
	// that blocks forever in some execution where no thread can ever move
	// again: every thread is done or stuck on final memory. Genuine
	// deadlocks — no scheduler, fair or not, revives them.
	PermanentBlocks []PermanentBlock
	// FairnessBlocks counts blocked executions that are *not* liveness
	// violations: every stuck spin-read observes a stale (non-co-max)
	// write, so the block only persists if the scheduler never lets the
	// reader see the newer value. Standard stateless model checking
	// ignores these, and so does the Live verdict.
	FairnessBlocks int
	// BoundBlocks counts executions cut off by the step bound rather than
	// a failed assume; they carry no liveness information.
	BoundBlocks int
	// Truncated/Interrupted report a partial exploration: Live()=true is
	// then only "no deadlock found so far", not a verdict.
	Truncated   bool
	Interrupted bool
}

// Live reports whether the program has no permanent blocks.
func (r *LivenessReport) Live() bool { return len(r.PermanentBlocks) == 0 }

// CheckLiveness explores p under the model and classifies every maximal
// blocked execution, in the spirit of GenMC's spin-loop liveness checking.
// A blocked thread sits at a failed assume, po-after the read(s) feeding
// its guard (the Await building block emits load-then-assume). An
// execution is a liveness violation — a deadlock — when *no* thread can
// ever move again: every thread is either done or assume-blocked having
// observed only coherence-maximal writes (the final values memory will
// ever hold), with its guard still false. Then no extension and no
// schedule, fair or not, revives anyone.
//
// Blocked executions where some stuck thread's *spin reads* — the
// contiguous read suffix before its assume, i.e. the loads its loop
// re-executes each iteration — saw a stale value are classified as
// fairness blocks, not violations: a fair scheduler lets that thread
// re-read the newer value, and once revived it may write and revive the
// others (this is exactly the blocked-Peterson shape — one spinner stale,
// one on final memory — which is *not* a deadlock). Reads po-before the
// spin suffix are completed history (an ABBA thread's own lock acquire):
// their staleness cannot revive anything and does not mask the deadlock.
// Executions cut off by the step bound carry no liveness information and
// are counted separately.
//
// The criterion is a sound under-approximation: every PermanentBlock is a
// genuine violation, while some genuine violations hidden behind stale
// reads elsewhere in the execution may be classified as fairness-only.
//
// An optional Options value supplies exploration bounds (MaxExecutions,
// Context, Workers, Symmetry, MaxSteps); its Model and callback fields
// are ignored. A bounded or cancelled run sets Truncated/Interrupted on
// the report.
func CheckLiveness(p *prog.Program, model memmodel.Model, opts ...Options) (*LivenessReport, error) {
	rep := &LivenessReport{}
	type blockSite struct {
		thread int
		index  int // spin-read's po index (-1: memory-independent assume)
	}
	reported := map[blockSite]bool{}
	res, err := Explore(p, analysisOptions(model, nil,
		func(g *eg.Graph) {
			rep.BlockedExecutions++
			// Pass 1: collect the blocked threads and decide whether any
			// thread could ever move again. A thread blocked on the step
			// bound might simply continue; a thread whose guard saw a
			// stale value can be revived by a fair scheduler — and once
			// revived it may write, reviving others in turn. Only when
			// every non-done thread is assume-blocked on final memory is
			// the state a true dead end.
			var stuck []int
			bound, fairness := false, false
			for t := range p.Threads {
				a := interp.Next(p, g, t, 0)
				if a.Kind != interp.ActBlocked {
					continue
				}
				if a.Msg != "assume failed" {
					bound = true
					continue
				}
				if staleSpinRead(g, t) {
					fairness = true
					continue
				}
				stuck = append(stuck, t)
			}
			switch {
			case bound:
				rep.BoundBlocks++
			case fairness:
				rep.FairnessBlocks++
			default:
				// Pass 2: nobody can move — every stuck thread has
				// observed, in full, the last values memory will ever
				// hold and its guard still failed. Deadlock.
				for _, t := range stuck {
					read, hasRead := spinRead(g, t)
					site := blockSite{thread: t, index: -1}
					if hasRead {
						site.index = read.I
					}
					if !reported[site] {
						reported[site] = true
						rep.PermanentBlocks = append(rep.PermanentBlocks,
							PermanentBlock{Thread: t, Read: read, Witness: g.Clone()})
					}
				}
			}
		}, opts))
	if err != nil {
		return nil, fmt.Errorf("liveness check: %w", err)
	}
	rep.Executions = res.Executions
	rep.Truncated = res.Truncated
	rep.Interrupted = res.Interrupted
	return rep, nil
}

// staleSpinRead reports whether any of thread t's spin reads — the
// contiguous suffix of read events before its failed assume, i.e. the
// loads the spin loop re-executes every iteration — observes a write that
// is not the coherence-maximum of its location. Reads before the suffix
// are completed history the loop never re-reads; their staleness cannot
// revive the thread.
func staleSpinRead(g *eg.Graph, t int) bool {
	for i := g.ThreadLen(t) - 1; i >= 0; i-- {
		id := eg.EvID{T: t, I: i}
		ev := g.Event(id)
		if ev.Kind == eg.KFence {
			continue // an acquire fence inside the loop doesn't end the suffix
		}
		if !ev.Kind.IsRead() {
			return false
		}
		if src, ok := g.RF(id); ok && src != g.CoMax(ev.Loc) {
			return true
		}
	}
	return false
}

// spinRead returns thread t's last event when it is a read feeding the
// failed assume (the Await encoding places the spin-read po-last).
func spinRead(g *eg.Graph, t int) (eg.EvID, bool) {
	n := g.ThreadLen(t)
	if n == 0 {
		return eg.EvID{}, false
	}
	id := eg.EvID{T: t, I: n - 1}
	if !g.Event(id).Kind.IsRead() {
		return eg.EvID{}, false
	}
	return id, true
}
