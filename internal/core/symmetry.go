package core

// maxSymmetryPerms caps the permutation set used for canonicalization.
// Using a subgroup of the full symmetry group is still sound (keys then
// collapse the subgroup's orbits, which are finer), so when the product of
// group factorials exceeds the cap, trailing groups are simply dropped.
const maxSymmetryPerms = 5040

// symmetryPerms enumerates the non-identity thread permutations generated
// by the program's symmetry groups: every combination of a permutation
// within each group, identity elsewhere.
func symmetryPerms(n int, groups [][]int) [][]int {
	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	acc := [][]int{id}
	total := 1
	for _, grp := range groups {
		total *= factorial(len(grp))
		if total > maxSymmetryPerms {
			break // keep the subgroup built so far — still sound
		}
		var next [][]int
		forEachPerm(len(grp), func(sig []int) {
			for _, base := range acc {
				p := append([]int(nil), base...)
				for i, gi := range grp {
					p[gi] = grp[sig[i]]
				}
				next = append(next, p)
			}
		})
		acc = next
	}
	out := acc[:0]
	for _, p := range acc {
		if !isIdentityPerm(p) {
			out = append(out, p)
		}
	}
	return out
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

func isIdentityPerm(p []int) bool {
	for i, v := range p {
		if i != v {
			return false
		}
	}
	return true
}

// forEachPerm invokes f with every permutation of [0, n) (f must not
// retain the slice).
func forEachPerm(n int, f func([]int)) {
	sig := make([]int, n)
	for i := range sig {
		sig[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			f(sig)
			return
		}
		for i := k; i < n; i++ {
			sig[k], sig[i] = sig[i], sig[k]
			rec(k + 1)
			sig[k], sig[i] = sig[i], sig[k]
		}
	}
	rec(0)
}
