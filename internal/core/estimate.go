package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"

	"hmc/internal/eg"
	"hmc/internal/interp"
	"hmc/internal/prog"
)

// EstimateResult summarizes a probe-based estimate of a program's
// exploration cost (see Estimate).
type EstimateResult struct {
	// Mean is the estimated number of complete executions — the average
	// of the per-probe Knuth estimators.
	Mean float64
	// StdErr is the standard error of Mean over the samples; the spread
	// is large when the exploration tree is lopsided, which is itself
	// useful signal (GenMC reports the same caveat).
	StdErr float64
	// Samples is the number of probes taken.
	Samples int
	// CompletedProbes counts probes that ended in a complete execution
	// (the rest died in blocked or all-inconsistent dead ends and
	// contribute zero weight).
	CompletedProbes int
	// MaxDepth is the deepest probe, in exploration steps.
	MaxDepth int
	// Interrupted reports that Options.Context was cancelled before all
	// probes ran: Mean/StdErr are computed over the probes completed so
	// far (Samples still records the requested count). When cancellation
	// lands before the first probe, the result is zero-valued with only
	// Interrupted set — never NaN from a zero-probe division.
	Interrupted bool
}

func (r *EstimateResult) String() string {
	return fmt.Sprintf("≈%.1f executions (±%.1f, %d/%d probes completed)",
		r.Mean, r.StdErr, r.CompletedProbes, r.Samples)
}

// Estimate predicts the number of complete executions of p without
// exploring them all, by random probing (Knuth's tree-size estimator, the
// technique behind GenMC's --estimate): each probe walks root→leaf
// choosing uniformly among the successor states the real algorithm would
// branch to, multiplying its weight by the branching factor, and a
// complete leaf contributes that weight. The estimator is deterministic
// for a fixed seed.
//
// The probe tree is the *unmemoized* exploration tree, so the estimator
// is unbiased for the number of root→execution paths. When the memoized
// search never collapses states (Stats.MemoHits = 0) that equals
// Stats.Executions exactly — measured true for store/load workloads (SB,
// MP, CoRR, 2+2W within ±1%). When revisit choreographies do collapse —
// load-buffering shapes and especially RMW chains — the estimate
// over-counts by the path multiplicity, by orders of magnitude on
// counter-style programs. Two practical consequences: the estimate is
// always safe as an upper bound for "too big to check?", and a spread
// (StdErr) comparable to the mean is the signature of a revisit-heavy
// space where reductions (Symmetry, Workers) should be applied before an
// exhaustive run.
//
// Estimate honours opts.Context — cancellation stops probing and returns
// the estimate over the probes taken so far with Interrupted set.
// MaxExecutions does not apply (probes are root→leaf walks, not an
// enumeration); exploration callbacks are never invoked.
func Estimate(p *prog.Program, opts Options, samples int, seed int64) (res *EstimateResult, err error) {
	if opts.Model == nil {
		return nil, fmt.Errorf("core: Options.Model is required")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Probing replays the same engine code paths as exploration, so it
	// gets the same panic→error boundary: a poisoned program fails this
	// call with a structured EngineError, not the process.
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &EngineError{
				Op:          "estimate",
				Program:     p.Name,
				Fingerprint: p.Fingerprint(),
				Model:       opts.Model.Name(),
				PanicValue:  r,
				Stack:       string(debug.Stack()),
			}
		}
	}()
	if samples <= 0 {
		samples = 32
	}
	rng := rand.New(rand.NewSource(seed))
	static := analyzeIfNeeded(p, opts)
	res = &EstimateResult{Samples: samples}
	var sum, sumSq float64
	taken := 0
	for s := 0; s < samples; s++ {
		if opts.Context != nil && opts.Context.Err() != nil {
			res.Interrupted = true
			break
		}
		taken++
		e := &explorer{p: p, opts: opts, sh: &shared{res: &Result{}}, static: static}
		g := eg.NewGraph(len(p.Threads), p.NumLocs)
		w := 1.0
		depth := 0
		for {
			if opts.Context != nil && opts.Context.Err() != nil {
				res.Interrupted = true
				break
			}
			kids, status := e.successors(g)
			if status == leafComplete {
				sum += w
				sumSq += w * w
				res.CompletedProbes++
				break
			}
			if status != leafInner || len(kids) == 0 {
				break // blocked, error, or all successors inconsistent
			}
			w *= float64(len(kids))
			g = kids[rng.Intn(len(kids))]
			depth++
		}
		if depth > res.MaxDepth {
			res.MaxDepth = depth
		}
	}
	if taken == 0 {
		// Interrupted before any probe ran: a zero-valued result with only
		// Interrupted set. Samples must not claim probes that never
		// happened, and nothing downstream (ETAs, JSON encoders) can meet
		// a NaN or Inf.
		return &EstimateResult{Interrupted: true}, nil
	}
	n := float64(taken)
	res.Mean = finiteEstimate(sum / n)
	if taken > 1 {
		variance := (sumSq - sum*sum/n) / (n - 1)
		if variance > 0 {
			res.StdErr = finiteEstimate(math.Sqrt(variance / n))
		}
	}
	return res, nil
}

// finiteEstimate guards the estimator's float arithmetic: probe weights
// are products of branching factors and can overflow float64 on deep
// lopsided trees, after which Inf propagates to NaN through the variance
// (Inf − Inf). Non-finite values clamp to MaxFloat64 — "beyond
// measurement", still an honest upper bound — so every result field stays
// finite for the JSON encoders downstream.
func finiteEstimate(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return math.MaxFloat64
	}
	return x
}

// leafStatus classifies a state during probing.
type leafStatus int

const (
	leafInner    leafStatus = iota // has successor states
	leafComplete                   // complete consistent execution
	leafBlocked                    // some thread's assume failed
	leafError                      // assertion failure
)

// successors enumerates the states one algorithm step away from g — the
// same forward branches and backward revisits visit() would recurse into,
// captured via the sink hook instead of explored. The explorer must be a
// private scratch instance (the sink is not synchronized).
func (e *explorer) successors(g *eg.Graph) ([]*eg.Graph, leafStatus) {
	var kids []*eg.Graph
	e.sink = &kids
	defer func() { e.sink = nil }()
	blocked := false
	for t := range e.p.Threads {
		a := interp.Next(e.p, g, t, e.opts.MaxSteps)
		switch a.Kind {
		case interp.ActDone:
			continue
		case interp.ActBlocked:
			blocked = true
			continue
		case interp.ActError:
			return nil, leafError
		default:
			e.step(g, t, a)
			return kids, leafInner
		}
	}
	if blocked {
		return nil, leafBlocked
	}
	return nil, leafComplete
}
