package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hmc/internal/gen"
	"hmc/internal/litmus"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// This file validates the tentpole resume-equivalence property: killing a
// run at an arbitrary branch point (Options.FailAfter — deterministic
// fault injection, no wall-clock races) and resuming from the final
// checkpoint — repeatedly, kill after kill — must land on exactly the
// same execution set and the same Stats counters as an uninterrupted run.
// Every checkpoint crossing a leg boundary goes through the full
// encode→decode cycle, and each encoding is asserted byte-identical after
// a round trip, so the wire codec itself is in the loop.

// encodeDecode round-trips cp through the wire format, asserting the
// encoding is canonical (encode→decode→encode is byte-identical).
func encodeDecode(t *testing.T, cp *Checkpoint) *Checkpoint {
	t.Helper()
	data, err := cp.Encode()
	if err != nil {
		t.Fatalf("encode checkpoint: %v", err)
	}
	dec, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatalf("decode checkpoint: %v", err)
	}
	data2, err := dec.Encode()
	if err != nil {
		t.Fatalf("re-encode checkpoint: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("checkpoint round trip not byte-identical:\n first: %s\nsecond: %s", data, data2)
	}
	return dec
}

// runChained explores p killing the run at every k-th branch point and
// resuming from the (encode→decode round-tripped) checkpoint, until a leg
// runs to completion. It returns the final result and the number of kills
// survived. k must be ≥ 2: a leg killed at its very first branch point
// re-pends the same frontier and makes no progress, which faithfully
// models a process that dies on startup — and never terminates.
func runChained(t *testing.T, p *prog.Program, model string, base Options, k int) (*Result, int) {
	t.Helper()
	if k < 2 {
		t.Fatalf("runChained needs k >= 2, got %d", k)
	}
	m, err := memmodel.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	kills := 0
	var resume *Checkpoint
	for leg := 0; ; leg++ {
		if leg > 100000 {
			t.Fatalf("resume chain did not terminate (k=%d)", k)
		}
		opts := base
		opts.Model = m
		opts.DedupSafeguard = true
		opts.CollectKeys = true
		opts.FailAfter = k
		opts.ResumeFrom = resume
		res, err := Explore(p, opts)
		if err != nil {
			t.Fatalf("leg %d (k=%d): %v", leg, k, err)
		}
		if !res.Interrupted {
			return res, kills
		}
		if res.Checkpoint == nil {
			t.Fatalf("leg %d (k=%d): interrupted result without checkpoint", leg, k)
		}
		kills++
		resume = encodeDecode(t, res.Checkpoint)
	}
}

// assertSameExploration compares a resumed run against the straight run.
//
// The semantic invariants always hold: identical execution-key sets,
// Executions, ExistsCount, Blocked, Duplicates, StuckReads, errors and
// truncation status — the checkpoint cut must neither lose nor repeat
// verdict-relevant work. These are exactly the invariants the engine
// guarantees for parallel-vs-sequential runs (parallel_test.go).
//
// With strict set, the search-effort counters (States, MemoHits,
// revisits, consistency checks) must match too. That is the common case,
// but not an engine invariant: the memo key excludes stamps, so two
// graphs with equal keys but different relative stamp orders collapse to
// one memo entry, and which representative gets expanded — whose stamp
// order then steers revisit keep-sets — is decided by arrival order. A
// resume cut reorders arrivals exactly like Workers>1 does, so effort can
// shift by a few states on rare programs (and under Symmetry, where the
// collapse is coarser still, routinely). That order dependence is
// intrinsic to memoized exploration, not a checkpointing defect.
func assertSameExploration(t *testing.T, label string, straight, resumed *Result, strict bool) {
	t.Helper()
	if got, want := sortedKeys(resumed), sortedKeys(straight); len(got) != len(want) {
		t.Errorf("%s: execution set has %d keys, straight run %d", label, len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: execution set diverges at key %d:\n got %s\nwant %s", label, i, got[i], want[i])
				break
			}
		}
	}
	type counts struct {
		Executions, ExistsCount, Blocked, Duplicates, States, MemoHits int
		RevisitsTried, RevisitsTaken, RevisitsRepairFail, RevisitsPorf int
		ConsistencyChecks, StuckReads, MaxGraphEvents, Errs, DepViol   int
		StaticPrunedRf, StaticPrunedCo, StaticPrunedScans              int
		Truncated                                                      bool
		Reason                                                         string
	}
	of := func(r *Result) counts {
		c := counts{
			r.Executions, r.ExistsCount, r.Blocked, r.Duplicates, r.States, r.MemoHits,
			r.RevisitsTried, r.RevisitsTaken, r.RevisitsRepairFail, r.RevisitsPorfSkip,
			r.ConsistencyChecks, r.StuckReads, r.MaxGraphEvents, len(r.Errors), r.DepViolations,
			r.StaticPrunedRf, r.StaticPrunedCo, r.StaticPrunedScans,
			r.Truncated, r.TruncatedReason,
		}
		if !strict {
			c.States, c.MemoHits, c.RevisitsTried, c.RevisitsTaken = 0, 0, 0, 0
			c.RevisitsRepairFail, c.RevisitsPorf, c.ConsistencyChecks = 0, 0, 0
			c.MaxGraphEvents = 0
			c.StaticPrunedRf, c.StaticPrunedCo, c.StaticPrunedScans = 0, 0, 0
		}
		return c
	}
	if got, want := of(resumed), of(straight); got != want {
		t.Errorf("%s: counters diverge:\n resumed %+v\nstraight %+v", label, got, want)
	}
}

// killPoints samples the branch points to kill at. The total number of
// branch points in a straight run is States+MemoHits (every visit entry
// either inserts into the memo or hits it); small spaces are killed at
// every point, larger ones at a spread of early, middle and late points.
func killPoints(total int, short bool) []int {
	if total < 2 {
		return nil
	}
	exhaustive := 24
	if short {
		exhaustive = 8
	}
	if total <= exhaustive {
		ks := make([]int, 0, total-1)
		for k := 2; k <= total; k++ {
			ks = append(ks, k)
		}
		return ks
	}
	cand := []int{2, 3, 5, 8, total / 4, total / 2, 3 * total / 4, total - 1, total}
	if short {
		cand = []int{2, 5, total / 2, total}
	}
	seen := map[int]bool{}
	var ks []int
	for _, k := range cand {
		if k >= 2 && k <= total && !seen[k] {
			seen[k] = true
			ks = append(ks, k)
		}
	}
	return ks
}

// TestResumeEquivalenceCorpus is the crossval-style tentpole assertion
// over the litmus corpus × memory models: straight run vs kill-at-every-
// k-th-branch-point + resume.
func TestResumeEquivalenceCorpus(t *testing.T) {
	models := memmodel.Names()
	if testing.Short() {
		models = []string{"sc", "tso", "imm"}
	}
	for _, tc := range litmus.Corpus() {
		for _, model := range models {
			straight := explore(t, tc.P, model, Options{CollectKeys: true})
			total := straight.States + straight.MemoHits
			for _, k := range killPoints(total, testing.Short()) {
				resumed, kills := runChained(t, tc.P, model, Options{}, k)
				label := fmt.Sprintf("%s under %s, kill every %d of %d branch points (%d kills)",
					tc.Name, model, k, total, kills)
				assertSameExploration(t, label, straight, resumed, true)
				if k <= total && kills == 0 {
					t.Errorf("%s: expected at least one injected kill", label)
				}
			}
		}
	}
}

// TestResumeEquivalenceRandom widens the net: generated random programs
// (the same generator the optimality suite trusts), each killed at a
// seed-dependent branch point and resumed until done.
func TestResumeEquivalenceRandom(t *testing.T) {
	const seeds = 250
	models := []string{"imm", "tso", "arm"}
	step := 1
	if testing.Short() {
		step = 5
	}
	for seed := 0; seed < seeds; seed += step {
		p := gen.Random(int64(seed))
		model := models[seed%len(models)]
		straight := explore(t, p, model, Options{CollectKeys: true})
		total := straight.States + straight.MemoHits
		if total < 2 {
			continue
		}
		k := 2 + seed%19
		if k > total {
			k = total
		}
		resumed, _ := runChained(t, p, model, Options{}, k)
		assertSameExploration(t,
			fmt.Sprintf("gen.Random(%d) under %s, k=%d", seed, model, k), straight, resumed, false)
	}
}

// TestResumeEquivalenceWithOptions exercises the semantic options that
// ride inside the checkpoint signature — symmetry reduction, static
// pruning, the porf ablation — through a kill/resume cycle.
func TestResumeEquivalenceWithOptions(t *testing.T) {
	cases := []struct {
		name string
		p    *prog.Program
		opts Options
	}{
		{"symmetry-inc", gen.IncN(3, 2), Options{Symmetry: true}},
		{"static-indexer", gen.IndexerN(2), Options{StaticAnalysis: true}},
		{"porf-lb", mustCorpus(t, "LB").P, Options{PorfOnlyRevisits: true}},
		{"maxevents-sb", mustCorpus(t, "SB").P, Options{MaxEvents: 3}},
	}
	for _, c := range cases {
		straight := explore(t, c.p, "imm", withKeys(c.opts))
		total := straight.States + straight.MemoHits
		for _, k := range killPoints(total, true) {
			resumed, _ := runChained(t, c.p, "imm", c.opts, k)
			assertSameExploration(t, fmt.Sprintf("%s k=%d", c.name, k), straight, resumed, !c.opts.Symmetry)
		}
	}
}

func withKeys(o Options) Options { o.CollectKeys = true; return o }

// TestResumeMismatchRejected: a checkpoint must only resume the run it
// came from — different program, model, or semantic options are refused
// with ErrCheckpointMismatch, not silently merged.
func TestResumeMismatchRejected(t *testing.T) {
	sb, lb := mustCorpus(t, "SB").P, mustCorpus(t, "LB").P
	imm, _ := memmodel.ByName("imm")
	tso, _ := memmodel.ByName("tso")
	res, err := Explore(sb, Options{Model: imm, CollectKeys: true, FailAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoint == nil {
		t.Fatal("no checkpoint from FailAfter run")
	}
	cp := res.Checkpoint
	cases := []struct {
		name string
		p    *prog.Program
		opts Options
	}{
		{"wrong program", lb, Options{Model: imm, CollectKeys: true}},
		{"wrong model", sb, Options{Model: tso, CollectKeys: true}},
		{"wrong options", sb, Options{Model: imm, CollectKeys: true, Symmetry: true}},
	}
	for _, c := range cases {
		c.opts.ResumeFrom = cp
		if _, err := Explore(c.p, c.opts); !isMismatch(err) {
			t.Errorf("%s: got %v, want ErrCheckpointMismatch", c.name, err)
		}
	}
	// The matching run resumes fine.
	good, err := Explore(sb, Options{Model: imm, CollectKeys: true, ResumeFrom: cp})
	if err != nil {
		t.Fatalf("matching resume failed: %v", err)
	}
	straight := explore(t, sb, "imm", Options{CollectKeys: true})
	if good.Executions != straight.Executions {
		t.Errorf("resumed executions %d, straight %d", good.Executions, straight.Executions)
	}
}

func isMismatch(err error) bool {
	return errors.Is(err, ErrCheckpointMismatch)
}

// FuzzCheckpointDecode asserts the decoder's contract on untrusted bytes:
// corrupt, truncated or adversarial snapshots are rejected with an error
// — never a panic — and anything accepted re-encodes and re-decodes
// cleanly.
func FuzzCheckpointDecode(f *testing.F) {
	// Seed with real checkpoints (mid-run and near-final) so the fuzzer
	// starts from structurally valid inputs.
	imm, _ := memmodel.ByName("imm")
	for _, name := range []string{"SB", "LB", "MP"} {
		tc, ok := litmus.ByName(name)
		if !ok {
			continue
		}
		for _, k := range []int{2, 6} {
			res, err := Explore(tc.P, Options{Model: imm, DedupSafeguard: true, CollectKeys: true, FailAfter: k})
			if err != nil || res.Checkpoint == nil {
				continue
			}
			if data, err := res.Checkpoint.Encode(); err == nil {
				f.Add(data)
				if len(data) > 10 {
					f.Add(data[:len(data)/2]) // truncated snapshot
				}
			}
		}
	}
	f.Add([]byte(`{"version":1,"schema":1}`))
	f.Add([]byte(`{"version":1,"schema":1,"pending":[{"threads":1,"locs":1,"events":[{"t":0,"i":0,"k":2}]}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		enc, err := cp.Encode()
		if err != nil {
			t.Fatalf("accepted checkpoint failed to re-encode: %v", err)
		}
		if _, err := DecodeCheckpoint(enc); err != nil {
			t.Fatalf("re-encoded checkpoint failed to decode: %v", err)
		}
		for _, raw := range cp.Pending {
			if _, err := decodeWireGraph(raw); err != nil {
				t.Fatalf("accepted checkpoint carries undecodable pending graph: %v", err)
			}
		}
	})
}
