package core

import (
	"testing"

	"hmc/internal/eg"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// fuzzModels are the models a fuzz input can select — the strongest and
// weakest of each family, so consistency checking, revisit pruning and
// mode handling all get exercised.
var fuzzModels = []string{"sc", "tso", "arm", "imm", "rc11"}

// decodeProgram turns fuzz bytes into a small well-formed program: up to 3
// threads × 4 memory operations over up to 3 locations, drawn from stores,
// loads, RMWs and fences, plus control-dependent branches and
// data-dependent stores feeding off earlier loads (the dependency shapes
// hardware models order by). Every decoded program passes Validate by
// construction — the fuzzer explores the *engine's* state space, not the
// IR validator's.
func decodeProgram(data []byte) *prog.Program {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	nThreads := int(next())%3 + 1
	nLocs := int(next())%3 + 1
	b := prog.NewBuilder("fuzz")
	locs := make([]eg.Loc, nLocs)
	for i := range locs {
		locs[i] = b.Loc(string(rune('x' + i)))
	}
	modes := []eg.Mode{eg.ModePlain, eg.ModeRlx, eg.ModeAcq, eg.ModeRel, eg.ModeAcqRel, eg.ModeSC}
	for t := 0; t < nThreads; t++ {
		tb := b.Thread()
		var lastLoad prog.Reg = -1
		nInstr := int(next())%4 + 1
		for i := 0; i < nInstr; i++ {
			op, arg := next(), next()
			loc := locs[int(arg)%nLocs]
			val := int64(arg>>4) % 4
			mode := modes[int(arg)%len(modes)]
			switch op % 8 {
			case 0:
				tb.StoreM(loc, prog.Const(val), mode)
			case 1:
				lastLoad = tb.LoadM(loc, mode)
			case 2:
				tb.FAddM(loc, prog.Const(val), mode)
			case 3:
				tb.CASM(loc, prog.Const(val), prog.Const(val+1), mode)
			case 4:
				tb.XchgM(loc, prog.Const(val), mode)
			case 5:
				kinds := []eg.FenceKind{eg.FenceFull, eg.FenceLW, eg.FenceLD}
				tb.Fence(kinds[int(arg)%len(kinds)])
			case 6:
				// Data-dependent store: the stored value reads lastLoad but
				// always equals val (the multiply-by-zero idiom), so the
				// dependency machinery is exercised without changing the
				// value space.
				if lastLoad >= 0 {
					tb.Store(loc, prog.Add(prog.Mul(prog.R(lastLoad), prog.Const(0)), prog.Const(val)))
				} else {
					tb.Store(loc, prog.Const(val))
				}
			case 7:
				// Control dependency: branch on the last load, falling
				// through either way, then a store under the dependency.
				if lastLoad >= 0 {
					tb.Branch(prog.Ne(prog.R(lastLoad), prog.Const(-1)), tb.Here()+1)
				}
				tb.StoreM(loc, prog.Const(val), mode)
			}
		}
		if tb.Here() == 0 {
			tb.StoreM(locs[0], prog.Const(1), eg.ModePlain)
		}
	}
	p, err := b.Build()
	if err != nil {
		panic("fuzz decoder built an invalid program: " + err.Error())
	}
	return p
}

// FuzzExplore throws decoder-generated programs at the exploration engine
// under every model and checks the engine's own invariants: no panics
// (an EngineError here is a real bug, surfaced structurally by the
// recovery boundary instead of crashing the fuzzer), no duplicate
// executions (optimality), and no stuck reads (revisit completeness).
func FuzzExplore(f *testing.F) {
	f.Add([]byte{2, 2, 2, 0, 5, 1, 9}, uint8(0))
	f.Add([]byte{2, 2, 2, 1, 3, 1, 17, 2, 0, 7, 1, 19}, uint8(1))
	f.Add([]byte{3, 3, 3, 3, 12, 2, 33, 4, 5}, uint8(2))
	f.Add([]byte{1, 1, 4, 6, 1, 7, 2, 1, 3}, uint8(3))
	f.Add([]byte{2, 1, 2, 2, 8, 3, 40}, uint8(4))

	f.Fuzz(func(t *testing.T, data []byte, modelByte uint8) {
		p := decodeProgram(data)
		name := fuzzModels[int(modelByte)%len(fuzzModels)]
		m, err := memmodel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Explore(p, Options{
			Model:          m,
			MaxExecutions:  256,
			MaxEvents:      48,
			MaxSteps:       64,
			DedupSafeguard: true,
		})
		if err != nil {
			if ee, ok := AsEngineError(err); ok {
				t.Fatalf("engine panic under %s: %v\nprogram:\n%s\nstack:\n%s",
					name, ee.PanicValue, p, ee.Stack)
			}
			t.Fatalf("explore error under %s: %v\nprogram:\n%s", name, err, p)
		}
		if res.Duplicates != 0 {
			t.Fatalf("optimality violated under %s: %d duplicate executions\nprogram:\n%s",
				name, res.Duplicates, p)
		}
		if res.StuckReads != 0 {
			t.Fatalf("%d stuck reads under %s (revisit incompleteness)\nprogram:\n%s",
				res.StuckReads, name, p)
		}
	})
}
