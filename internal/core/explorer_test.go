package core

import (
	"testing"

	"hmc/internal/eg"
	"hmc/internal/litmus"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

func explore(t *testing.T, p *prog.Program, model string, opts Options) *Result {
	t.Helper()
	m, err := memmodel.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	opts.Model = m
	opts.DedupSafeguard = true
	res, err := Explore(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCorpusVerdictsAndCounts is the end-to-end correctness test: for every
// litmus test and every model, the explorer must (a) observe the weak
// outcome iff the model allows it, (b) match the hand-computed execution
// count where present, (c) never explore an execution twice (optimality),
// and (d) never leave a read without a consistent rf option
// (extensibility).
func TestCorpusVerdictsAndCounts(t *testing.T) {
	for _, tc := range litmus.Corpus() {
		for model, allowed := range tc.Allowed {
			res := explore(t, tc.P, model, Options{})
			if got := res.ExistsCount > 0; got != allowed {
				t.Errorf("%s under %s: weak outcome observed=%v (%d/%d), want %v",
					tc.Name, model, got, res.ExistsCount, res.Executions, allowed)
			}
			if want, ok := tc.Executions[model]; ok && res.Executions != want {
				t.Errorf("%s under %s: %d executions, want %d",
					tc.Name, model, res.Executions, want)
			}
			if res.Duplicates != 0 {
				t.Errorf("%s under %s: %d duplicate executions (optimality violated)",
					tc.Name, model, res.Duplicates)
			}
			if res.StuckReads != 0 {
				t.Errorf("%s under %s: %d stuck reads (extensibility violated)",
					tc.Name, model, res.StuckReads)
			}
			if len(res.Errors) != 0 {
				t.Errorf("%s under %s: unexpected errors: %v", tc.Name, model, res.Errors)
			}
		}
	}
}

// TestRevisitStatsOnLB checks the paper's central mechanism: the (1,1)
// outcome of LB under IMM has a po∪rf cycle and is reachable only through
// a backward revisit that keeps a po-later independent write.
func TestRevisitStatsOnLB(t *testing.T) {
	p, _ := litmus.ByName("LB")
	res := explore(t, p.P, "imm", Options{})
	if res.RevisitsTaken == 0 {
		t.Fatal("LB under IMM must take at least one backward revisit")
	}
	if res.Executions != 4 {
		t.Fatalf("LB under IMM: %d executions, want 4", res.Executions)
	}
}

func TestPorfAblationMissesLB(t *testing.T) {
	p, _ := litmus.ByName("LB")
	full := explore(t, p.P, "imm", Options{})
	abl := explore(t, p.P, "imm", Options{PorfOnlyRevisits: true})
	if full.Executions != 4 {
		t.Fatalf("full exploration: %d executions, want 4", full.Executions)
	}
	if abl.Executions >= full.Executions {
		t.Fatalf("porf-only ablation found %d executions, expected fewer than %d",
			abl.Executions, full.Executions)
	}
	if abl.ExistsCount != 0 {
		t.Fatal("porf-only ablation must miss the load-buffering outcome")
	}
	if abl.RevisitsPorfSkip == 0 {
		t.Fatal("ablation should have skipped at least one revisit")
	}
}

func TestPorfAblationMatchesOnSC(t *testing.T) {
	// Under porf-acyclic models the ablation loses nothing.
	for _, name := range []string{"SB", "MP", "LB", "IRIW"} {
		tc, ok := litmus.ByName(name)
		if !ok {
			t.Fatalf("missing corpus test %s", name)
		}
		for _, model := range []string{"sc", "ra"} {
			full := explore(t, tc.P, model, Options{})
			abl := explore(t, tc.P, model, Options{PorfOnlyRevisits: true})
			if full.Executions != abl.Executions {
				t.Errorf("%s under %s: ablation %d != full %d executions",
					name, model, abl.Executions, full.Executions)
			}
		}
	}
}

func TestAssertionFailureReported(t *testing.T) {
	// MP with an assertion that the weak outcome never happens: under IMM
	// it does, so an error must be reported with a witness.
	b := prog.NewBuilder("mp-assert")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t0.Store(y, prog.Const(1))
	t1 := b.Thread()
	ry := t1.Load(y)
	rx := t1.Load(x)
	t1.Assert(prog.Or(prog.Eq(prog.R(ry), prog.Const(0)), prog.Ne(prog.R(rx), prog.Const(0))),
		"flag set implies data visible")
	p := b.MustBuild()

	res := explore(t, p, "imm", Options{})
	if len(res.Errors) == 0 {
		t.Fatal("expected an assertion failure under IMM")
	}
	if res.Errors[0].Graph == nil || res.Errors[0].Graph.NumEvents() == 0 {
		t.Fatal("error report must carry a witness graph")
	}
	resSC := explore(t, p, "sc", Options{})
	if len(resSC.Errors) != 0 {
		t.Fatalf("assertion must hold under SC, got %v", resSC.Errors)
	}
}

func TestStopOnError(t *testing.T) {
	b := prog.NewBuilder("always-fails")
	x := b.Loc("x")
	t0 := b.Thread()
	r := t0.Load(x)
	t0.Assert(prog.Ne(prog.R(r), prog.R(r)), "always false")
	t1 := b.Thread()
	t1.Store(x, prog.Const(1))
	p := b.MustBuild()

	res := explore(t, p, "sc", Options{StopOnError: true})
	if len(res.Errors) != 1 {
		t.Fatalf("StopOnError: got %d errors, want exactly 1", len(res.Errors))
	}
}

func TestBlockedExecutionsCounted(t *testing.T) {
	// Reader insists (assume) on seeing the flag; with one writer some
	// executions block.
	b := prog.NewBuilder("assume-flag")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t1 := b.Thread()
	r := t1.Load(x)
	t1.Assume(prog.Eq(prog.R(r), prog.Const(1)))
	p := b.MustBuild()

	res := explore(t, p, "sc", Options{})
	if res.Executions != 1 {
		t.Fatalf("executions = %d, want 1 (only r=1 passes the assume)", res.Executions)
	}
	if res.Blocked == 0 {
		t.Fatal("the r=0 branch must be counted as blocked")
	}
}

func TestMaxExecutionsTruncates(t *testing.T) {
	p, _ := litmus.ByName("IRIW")
	res := explore(t, p.P, "imm", Options{MaxExecutions: 5})
	if !res.Truncated || res.Executions != 5 {
		t.Fatalf("truncation failed: truncated=%v executions=%d", res.Truncated, res.Executions)
	}
}

func TestOnExecutionCallback(t *testing.T) {
	p, _ := litmus.ByName("SB")
	var seen int
	res := explore(t, p.P, "tso", Options{
		OnExecution: func(g *eg.Graph, fs prog.FinalState) {
			seen++
			if err := g.CheckWellFormed(); err != nil {
				t.Errorf("callback graph ill-formed: %v", err)
			}
			if len(fs.Mem) != 2 {
				t.Errorf("final state has %d locations", len(fs.Mem))
			}
		},
	})
	if seen != res.Executions {
		t.Fatalf("callback fired %d times for %d executions", seen, res.Executions)
	}
}

func TestCollectKeysDistinct(t *testing.T) {
	p, _ := litmus.ByName("IRIW")
	res := explore(t, p.P, "relaxed", Options{CollectKeys: true})
	seen := map[string]bool{}
	for _, k := range res.Keys {
		if seen[k] {
			t.Fatalf("duplicate execution key %q", k)
		}
		seen[k] = true
	}
	if len(res.Keys) != res.Executions {
		t.Fatalf("%d keys for %d executions", len(res.Keys), res.Executions)
	}
}

func TestExploreRequiresModel(t *testing.T) {
	p, _ := litmus.ByName("SB")
	if _, err := Explore(p.P, Options{}); err == nil {
		t.Fatal("Explore without a model must fail")
	}
}

func TestRMWChainExecutions(t *testing.T) {
	// Three atomic increments: executions = 3! orderings of the updates.
	res := explore(t, litmus.Inc(3), "imm", Options{})
	if res.Executions != 6 {
		t.Fatalf("inc(3) executions = %d, want 6", res.Executions)
	}
	if res.ExistsCount != 0 {
		t.Fatal("atomic increments must never lose updates")
	}
	if res.Duplicates != 0 {
		t.Fatalf("inc(3) duplicates = %d", res.Duplicates)
	}
}

func TestCASSpinloopBounded(t *testing.T) {
	// A CAS retry loop: with assume-style blocking the failing branch
	// blocks rather than diverging.
	b := prog.NewBuilder("cas-once")
	x := b.Loc("x")
	for i := 0; i < 2; i++ {
		t0 := b.Thread()
		_, s := t0.CAS(x, prog.Const(0), prog.Const(int64(i+1)))
		_ = s
	}
	p := b.MustBuild()
	res := explore(t, p, "tso", Options{})
	// Each thread's CAS either wins (update) or fails (read): the loser
	// reads the winner's value or init. Hand count: 4 executions
	// (winner∈{t0,t1} × loser reads winner or init... loser reading init
	// would also succeed, so exactly: both read init is atomicity-
	// violating; t0 wins & t1 reads t0 (fail); t1 wins & t0 reads t1;
	// plus interleavings where the loser's CAS reads init? that would
	// succeed too — forbidden. So 2 executions.)
	if res.Executions != 2 {
		t.Fatalf("cas-once executions = %d, want 2", res.Executions)
	}
}

func TestRobustness(t *testing.T) {
	imm, _ := memmodel.ByName("imm")
	tso, _ := memmodel.ByName("tso")

	// SB exhibits the non-SC (0,0) execution under TSO: not robust.
	sb, _ := litmus.ByName("SB")
	rep, err := CheckRobustness(sb.P, tso)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Robust || rep.NonSC != 1 || rep.Witness == nil {
		t.Fatalf("SB/tso robustness = %+v, want 1 non-SC execution with witness", rep)
	}

	// Fully fenced SB is robust everywhere.
	sbff, _ := litmus.ByName("SB+ffs")
	rep, err = CheckRobustness(sbff.P, imm)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Robust || rep.NonSC != 0 || rep.Witness != nil {
		t.Fatalf("SB+ffs/imm robustness = %+v, want robust", rep)
	}

	// Atomic counters are robust: RMW chains serialize.
	inc, _ := litmus.ByName("inc(2)")
	rep, err = CheckRobustness(inc.P, imm)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Robust {
		t.Fatal("inc(2) must be robust against imm")
	}

	// The robust verdict must agree with execution counting: executions
	// under the weak model = SC executions + non-SC ones.
	scRes := explore(t, sb.P, "sc", Options{})
	tsoRes := explore(t, sb.P, "tso", Options{})
	rep, _ = CheckRobustness(sb.P, tso)
	if rep.Executions != tsoRes.Executions || rep.Executions-rep.NonSC != scRes.Executions {
		t.Fatalf("robustness accounting wrong: %+v vs sc=%d tso=%d",
			rep, scRes.Executions, tsoRes.Executions)
	}
}

func TestCheckRaces(t *testing.T) {
	// Plain MP: flag and data both plain → two races (flag pair, data pair).
	mp, _ := litmus.ByName("MP")
	rep, err := CheckRaces(mp.P)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) == 0 {
		t.Fatal("plain MP must race")
	}
	for _, r := range rep.Races {
		if r.Witness == nil {
			t.Error("race without witness")
		}
	}

	// rel/acq MP: the flag accesses are atomic and synchronise, so the
	// plain data accesses are ordered — race-free... only in executions
	// where the acquire actually reads the release. The execution where
	// the reader misses the flag leaves the data write concurrent with
	// nothing (the reader's data load reads init but is unordered with
	// the writer's data store): still racy.
	annotated, _ := litmus.ByName("MP+rel+acq")
	rep, err = CheckRaces(annotated.P)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) == 0 {
		t.Fatal("MP+rel+acq still races when the flag is not observed")
	}
	for _, r := range rep.Races {
		if r.Loc != 0 { // only the data location may race; the flag is atomic
			t.Errorf("unexpected race on atomic location: %v", r)
		}
	}

	// Fully synchronised handoff: reader awaits the flag, so every
	// surviving execution orders the data accesses — race-free.
	b := prog.NewBuilder("handoff")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t0.StoreM(y, prog.Const(1), eg.ModeRel)
	t1 := b.Thread()
	r := t1.LoadM(y, eg.ModeAcq)
	t1.Assume(prog.Eq(prog.R(r), prog.Const(1)))
	t1.Load(x)
	p := b.MustBuild()
	rep, err = CheckRaces(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) != 0 {
		t.Fatalf("synchronised handoff must be race-free, got %v", rep.Races)
	}

	// Atomics never race: the all-atomic SB is clean.
	sbsc, _ := litmus.ByName("SB+scs")
	rep, err = CheckRaces(sbsc.P)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) != 0 {
		t.Fatalf("all-atomic SB must be race-free, got %v", rep.Races)
	}
}
