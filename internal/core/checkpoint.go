package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"hmc/internal/eg"
)

// This file implements exploration checkpoints: a versioned, deterministic
// serialization of the explorer's work state, built so a killed run can be
// resumed with nothing lost and nothing repeated.
//
// The mechanism is a cooperative *drain* rather than a hard stop. The
// explorer's DFS has exactly one recursion point — visit — so when a
// checkpoint is requested (periodic EveryExecs trigger, a context
// cancellation under checkpointing, deterministic fault injection via
// Options.FailAfter, or a whole-run truncation), the drain flag makes
// every subsequent visit record its incoming graph as *pending* instead
// of recursing, while the branch loops above it keep constructing and
// consistency-checking children as usual. Once the wave unwinds:
//
//   - the memo contains exactly the states whose direct-child enumeration
//     completed (visit inserts the key before enumerating, and a drained
//     visit never inserts), and
//   - the pending frontier covers every constructed-but-unexplored child.
//
// So memo + pending + counters is a complete, sound description of the
// remaining work: resuming restores the memo and Stats and visits each
// pending graph. Each unit of work — a consistency check, a revisit, a
// completed execution — happens exactly once, on one side of the cut,
// which is what the resume-equivalence tests assert.

// SchemaVersion identifies the engine's result semantics: the meaning of
// Stats counters, the state-key construction, and the exploration
// algorithm itself. Persisted artifacts produced under a different schema
// — checkpoints, cached verdicts, crash-artifact repro files — are
// dropped rather than trusted, so an upgraded binary never serves or
// resumes state computed by a semantically different engine.
const SchemaVersion = 1

// CheckpointVersion is the checkpoint wire-format version (the JSON field
// layout), bumped independently of SchemaVersion.
const CheckpointVersion = 1

// ErrCheckpointMismatch reports that a checkpoint cannot resume the given
// run: wrong engine schema, wrong program fingerprint, wrong model, or
// exploration options that change the semantics of the saved state.
var ErrCheckpointMismatch = errors.New("core: checkpoint does not match this run")

// CheckpointOptions configures periodic snapshots (Options.Checkpoint).
type CheckpointOptions struct {
	// EveryExecs requests a snapshot roughly every that many completed
	// executions (≤0 disables periodic snapshots; interruptions and
	// truncations still produce a final checkpoint on the Result).
	EveryExecs int
	// Sink receives each periodic snapshot. It runs on the exploration
	// goroutine between waves — workers are quiescent — so it may encode
	// and persist the checkpoint without racing the explorer. A nil Sink
	// disables periodic snapshots.
	Sink func(*Checkpoint)
}

// WireError is the serialized form of an ErrorReport: the witness graph
// goes through the eg wire codec (a live *eg.Graph has no exported fields
// and would silently serialize to nothing).
type WireError struct {
	Thread int             `json:"thread"`
	Msg    string          `json:"msg"`
	Graph  json.RawMessage `json:"graph,omitempty"`
}

// Checkpoint is a resumable snapshot of an exploration. It is fully
// deterministic for a given explorer state: memo and seen sets are
// sorted, pending graphs are encoded canonically (stamp renumbering) and
// sorted by their encoding — so encode→decode→encode is byte-identical.
type Checkpoint struct {
	Version     int    `json:"version"`
	Schema      int    `json:"schema"`
	Fingerprint string `json:"fingerprint"`
	Model       string `json:"model"`
	// Opts is the signature of every Options field that affects the
	// semantics of the saved state (bounds, ablations, reductions —
	// see optsSignature). Transient knobs (Workers, MemoryBudget,
	// Context, callbacks) are excluded: they may differ across legs.
	Opts string `json:"opts"`
	// Stats carries the counters accumulated so far; assertion-failure
	// witnesses are stripped into Errors (wire form).
	Stats               Stats       `json:"stats"`
	Keys                []string    `json:"keys,omitempty"`
	DepViolationDetails []string    `json:"dep_violation_details,omitempty"`
	Truncated           bool        `json:"truncated,omitempty"`
	TruncatedReason     string      `json:"truncated_reason,omitempty"`
	Errors              []WireError `json:"errors,omitempty"`
	// Memo is the sorted set of fully-enumerated state keys; Seen is the
	// sorted complete-execution dedup set (present only under
	// DedupSafeguard). Pending is the unexplored frontier.
	Memo    []string          `json:"memo,omitempty"`
	Seen    []string          `json:"seen,omitempty"`
	Pending []json.RawMessage `json:"pending,omitempty"`
	// Shard records the ownership spec of a sharded leg (Options.Shard),
	// empty for whole-run checkpoints; it must match the resuming run's
	// spec. Forwarded carries the graphs this leg constructed but does
	// not own, tagged with their ownership bucket so the coordinator
	// (internal/shard) can route them without re-deriving keys.
	Shard     string        `json:"shard,omitempty"`
	Forwarded []WireForward `json:"forwarded,omitempty"`
}

// WireForward is a forwarded graph on the wire: a constructed-but-
// unexplored graph owned by another shard, with its ownership bucket.
type WireForward struct {
	Bucket int             `json:"bucket"`
	Graph  json.RawMessage `json:"graph"`
}

// Encode serializes the checkpoint to JSON.
func (c *Checkpoint) Encode() ([]byte, error) {
	return json.Marshal(c)
}

// DecodeCheckpoint parses and validates a checkpoint. It is strict — and
// panic-free on corrupt or truncated input (the FuzzCheckpointDecode
// contract): unknown fields, trailing garbage, version or schema drift,
// and structurally invalid graphs are all rejected with an error. The
// program/model/options match is checked later, at resume time, when the
// run they must match is known.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	cp := &Checkpoint{}
	if err := dec.Decode(cp); err != nil {
		return nil, fmt.Errorf("core: bad checkpoint: %w", err)
	}
	if dec.More() {
		return nil, errors.New("core: bad checkpoint: trailing data")
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: wire version %d, engine reads %d", ErrCheckpointMismatch, cp.Version, CheckpointVersion)
	}
	if cp.Schema != SchemaVersion {
		return nil, fmt.Errorf("%w: engine schema %d, this binary is %d", ErrCheckpointMismatch, cp.Schema, SchemaVersion)
	}
	// Witness graphs travel only in wire form; a hand-crafted Stats.Errors
	// list would smuggle in unvalidated live graphs.
	cp.Stats.Errors = nil
	for i, raw := range cp.Pending {
		if _, err := decodeWireGraph(raw); err != nil {
			return nil, fmt.Errorf("core: checkpoint pending graph %d: %w", i, err)
		}
	}
	mod := 0
	if cp.Shard != "" {
		spec, err := ParseShardSpec(cp.Shard)
		if err != nil {
			return nil, fmt.Errorf("core: bad checkpoint: %w", err)
		}
		mod = spec.Mod()
	} else if len(cp.Forwarded) > 0 {
		return nil, errors.New("core: bad checkpoint: forwarded graphs without a shard spec")
	}
	for i, fw := range cp.Forwarded {
		if fw.Bucket < 0 || fw.Bucket >= mod {
			return nil, fmt.Errorf("core: checkpoint forwarded graph %d: bucket %d out of range [0,%d)", i, fw.Bucket, mod)
		}
		if _, err := decodeWireGraph(fw.Graph); err != nil {
			return nil, fmt.Errorf("core: checkpoint forwarded graph %d: %w", i, err)
		}
	}
	if _, err := DecodeErrorReports(cp.Errors); err != nil {
		return nil, err
	}
	return cp, nil
}

// EncodeErrorReports converts assertion-failure reports to wire form.
func EncodeErrorReports(errs []ErrorReport) []WireError {
	if len(errs) == 0 {
		return nil
	}
	out := make([]WireError, 0, len(errs))
	for _, er := range errs {
		we := WireError{Thread: er.Thread, Msg: er.Msg}
		if er.Graph != nil {
			data, _ := json.Marshal(eg.EncodeGraph(er.Graph))
			we.Graph = data
		}
		out = append(out, we)
	}
	return out
}

// DecodeErrorReports converts wire-form reports back, re-validating each
// witness graph.
func DecodeErrorReports(ws []WireError) ([]ErrorReport, error) {
	if len(ws) == 0 {
		return nil, nil
	}
	out := make([]ErrorReport, 0, len(ws))
	for i, we := range ws {
		er := ErrorReport{Thread: we.Thread, Msg: we.Msg}
		if len(we.Graph) > 0 {
			g, err := decodeWireGraph(we.Graph)
			if err != nil {
				return nil, fmt.Errorf("core: checkpoint error witness %d: %w", i, err)
			}
			er.Graph = g
		}
		out = append(out, er)
	}
	return out, nil
}

func decodeWireGraph(raw json.RawMessage) (*eg.Graph, error) {
	var wg eg.WireGraph
	if err := json.Unmarshal(raw, &wg); err != nil {
		return nil, err
	}
	return wg.Decode()
}

func encodeWireGraph(g *eg.Graph) (json.RawMessage, error) {
	data, err := json.Marshal(eg.EncodeGraph(g))
	return json.RawMessage(data), err
}

// optsSignature renders the Options fields that determine what the saved
// state *means* — bounds, ablations, reductions, key collection. Workers
// and MemoryBudget are deliberately absent: parallelism only reorders the
// same work, and the memory budget is a property of the machine and
// moment, not of the exploration (a run truncated by it resumes under
// whatever budget the new process has).
func optsSignature(o Options) string {
	return fmt.Sprintf("steps=%d|max=%d|maxev=%d|stoperr=%v|dedup=%v|porf=%v|keys=%v|static=%v|deps=%v|symm=%v",
		o.MaxSteps, o.MaxExecutions, o.MaxEvents, o.StopOnError, o.DedupSafeguard,
		o.PorfOnlyRevisits, o.CollectKeys, o.StaticAnalysis, o.CheckDeps, o.Symmetry)
}

// capture snapshots the exploration state with the given pending
// frontier. Called only between waves (workers quiescent); the lock
// guards against the context watcher and keeps the rule simple.
func (e *explorer) capture(frontier []*eg.Graph) *Checkpoint {
	e.sh.mu.Lock()
	defer e.sh.mu.Unlock()
	res := e.sh.res
	cp := &Checkpoint{
		Version:             CheckpointVersion,
		Schema:              SchemaVersion,
		Fingerprint:         e.p.Fingerprint(),
		Model:               e.opts.Model.Name(),
		Opts:                optsSignature(e.opts),
		Stats:               res.Stats,
		Keys:                append([]string(nil), res.Keys...),
		DepViolationDetails: append([]string(nil), res.DepViolationDetails...),
		Truncated:           res.Truncated,
		TruncatedReason:     res.TruncatedReason,
		Errors:              EncodeErrorReports(res.Stats.Errors),
	}
	cp.Stats.Errors = nil
	cp.Memo = sortedSetKeys(e.sh.memo)
	if e.sh.seen != nil {
		cp.Seen = sortedSetKeys(e.sh.seen)
	}
	for _, g := range frontier {
		data, _ := json.Marshal(eg.EncodeGraph(g))
		cp.Pending = append(cp.Pending, json.RawMessage(data))
	}
	sort.Slice(cp.Pending, func(i, j int) bool {
		return bytes.Compare(cp.Pending[i], cp.Pending[j]) < 0
	})
	if e.opts.Shard != nil {
		cp.Shard = e.opts.Shard.String()
	}
	for _, fw := range e.sh.forwarded {
		data, _ := json.Marshal(eg.EncodeGraph(fw.g))
		cp.Forwarded = append(cp.Forwarded, WireForward{Bucket: fw.bucket, Graph: data})
	}
	sort.Slice(cp.Forwarded, func(i, j int) bool {
		if cp.Forwarded[i].Bucket != cp.Forwarded[j].Bucket {
			return cp.Forwarded[i].Bucket < cp.Forwarded[j].Bucket
		}
		return bytes.Compare(cp.Forwarded[i].Graph, cp.Forwarded[j].Graph) < 0
	})
	return cp
}

// restore validates cp against this run and installs its state into the
// explorer, returning the pending frontier to visit. A mismatch — schema,
// fingerprint, model, or semantic options — returns ErrCheckpointMismatch
// (wrapped) and leaves the explorer untouched.
func (e *explorer) restore(cp *Checkpoint) ([]*eg.Graph, error) {
	if cp == nil {
		return nil, errors.New("core: Options.ResumeFrom is nil")
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: wire version %d, engine reads %d", ErrCheckpointMismatch, cp.Version, CheckpointVersion)
	}
	if cp.Schema != SchemaVersion {
		return nil, fmt.Errorf("%w: engine schema %d, this binary is %d", ErrCheckpointMismatch, cp.Schema, SchemaVersion)
	}
	if fp := e.p.Fingerprint(); cp.Fingerprint != fp {
		return nil, fmt.Errorf("%w: checkpoint fingerprint %.12s, program is %.12s", ErrCheckpointMismatch, cp.Fingerprint, fp)
	}
	if name := e.opts.Model.Name(); cp.Model != name {
		return nil, fmt.Errorf("%w: checkpoint model %q, run wants %q", ErrCheckpointMismatch, cp.Model, name)
	}
	if sig := optsSignature(e.opts); cp.Opts != sig {
		return nil, fmt.Errorf("%w: checkpoint options %q, run wants %q", ErrCheckpointMismatch, cp.Opts, sig)
	}
	wantShard := ""
	if e.opts.Shard != nil {
		wantShard = e.opts.Shard.String()
	}
	if cp.Shard != wantShard {
		return nil, fmt.Errorf("%w: checkpoint shard %q, run wants %q", ErrCheckpointMismatch, cp.Shard, wantShard)
	}
	frontier := make([]*eg.Graph, 0, len(cp.Pending))
	for i, raw := range cp.Pending {
		g, err := decodeWireGraph(raw)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint pending graph %d: %w", i, err)
		}
		if g.NumThreads() != len(e.p.Threads) || g.NumLocs() != e.p.NumLocs {
			return nil, fmt.Errorf("%w: pending graph %d is %d threads x %d locations, program is %d x %d",
				ErrCheckpointMismatch, i, g.NumThreads(), g.NumLocs(), len(e.p.Threads), e.p.NumLocs)
		}
		frontier = append(frontier, g)
	}
	// Forwarded graphs survive the leg boundary: a resumed leg re-emits
	// any it has not had routed away, so an interrupt between capture and
	// routing loses nothing (the coordinator strips Forwarded from a
	// checkpoint exactly when it routes them).
	forwarded := make([]forwardedGraph, 0, len(cp.Forwarded))
	mod := 0
	if e.opts.Shard != nil {
		mod = e.opts.Shard.Mod()
	}
	for i, fw := range cp.Forwarded {
		g, err := decodeWireGraph(fw.Graph)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint forwarded graph %d: %w", i, err)
		}
		if fw.Bucket < 0 || fw.Bucket >= mod {
			return nil, fmt.Errorf("%w: forwarded graph %d bucket %d out of range [0,%d)", ErrCheckpointMismatch, i, fw.Bucket, mod)
		}
		if g.NumThreads() != len(e.p.Threads) || g.NumLocs() != e.p.NumLocs {
			return nil, fmt.Errorf("%w: forwarded graph %d is %d threads x %d locations, program is %d x %d",
				ErrCheckpointMismatch, i, g.NumThreads(), g.NumLocs(), len(e.p.Threads), e.p.NumLocs)
		}
		forwarded = append(forwarded, forwardedGraph{bucket: fw.Bucket, g: g})
	}
	errs, err := DecodeErrorReports(cp.Errors)
	if err != nil {
		return nil, err
	}
	sh := e.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.res.Stats = cp.Stats
	sh.res.Stats.Errors = errs
	sh.res.Keys = append([]string(nil), cp.Keys...)
	sh.res.DepViolationDetails = append([]string(nil), cp.DepViolationDetails...)
	sh.res.Truncated = cp.Truncated
	sh.res.TruncatedReason = cp.TruncatedReason
	// A memory-budget truncation is transient, not a statement about the
	// state space: truncateDrain checkpointed the whole in-flight frontier
	// before anything was dropped, so no exploration was lost. Clear the
	// flag — if this run completes the frontier it genuinely is
	// exhaustive, and if the budget (or another bound) trips again it will
	// re-mark the result itself. MaxEvents and MaxExecutions truncations
	// stay: those record work the exploration really cut off.
	if cp.TruncatedReason == TruncMemoryBudget {
		sh.res.Truncated = false
		sh.res.TruncatedReason = ""
	}
	sh.memo = make(map[string]bool, len(cp.Memo))
	for _, k := range cp.Memo {
		sh.memo[k] = true
	}
	if e.opts.DedupSafeguard {
		sh.seen = make(map[string]bool, len(cp.Seen))
		for _, k := range cp.Seen {
			sh.seen[k] = true
		}
	}
	sh.forwarded = forwarded
	return frontier, nil
}

func sortedSetKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
