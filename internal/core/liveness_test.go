package core

import (
	"testing"

	"hmc/internal/eg"
	"hmc/internal/gen"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

func checkLive(t *testing.T, p *prog.Program, model string) *LivenessReport {
	t.Helper()
	m, err := memmodel.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckLiveness(p, m)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestLivenessCircularWait detects the classic deadlock: two threads each
// awaiting a flag the other only sets after its own await.
func TestLivenessCircularWait(t *testing.T) {
	b := prog.NewBuilder("circular-wait")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.AwaitEq(y, prog.Const(1))
	t0.Store(x, prog.Const(1))
	t1 := b.Thread()
	t1.AwaitEq(x, prog.Const(1))
	t1.Store(y, prog.Const(1))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	rep := checkLive(t, p, "sc")
	if rep.Live() {
		t.Fatal("circular wait must be a liveness violation")
	}
	if rep.Executions != 0 {
		t.Errorf("no execution completes, got %d", rep.Executions)
	}
	if len(rep.PermanentBlocks) != 2 {
		t.Errorf("both threads block forever, got %v", rep.PermanentBlocks)
	}
	for _, pb := range rep.PermanentBlocks {
		if pb.Witness == nil {
			t.Error("permanent block without witness")
		}
	}
}

// TestLivenessValueNeverWritten detects a one-sided deadlock: the awaited
// value never appears even after every writer finishes.
func TestLivenessValueNeverWritten(t *testing.T) {
	b := prog.NewBuilder("await-2")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t1 := b.Thread()
	t1.AwaitEq(x, prog.Const(2))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	rep := checkLive(t, p, "sc")
	if rep.Live() {
		t.Fatal("awaiting a value never written must be a violation")
	}
	if len(rep.PermanentBlocks) != 1 || rep.PermanentBlocks[0].Thread != 1 {
		t.Errorf("want one permanent block in thread 1, got %v", rep.PermanentBlocks)
	}
	// The execution where the await reads the stale init value is only a
	// fairness block, and it must not be double-counted as permanent.
	if rep.FairnessBlocks != 1 {
		t.Errorf("FairnessBlocks = %d, want 1 (await reading init 0 while 1 is pending)", rep.FairnessBlocks)
	}
}

// TestLivenessFairnessOnly: the awaited value does arrive; the only
// blocked execution is the one where the reader never re-reads — an
// unfair-scheduler artifact, not a violation.
func TestLivenessFairnessOnly(t *testing.T) {
	b := prog.NewBuilder("handshake")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t1 := b.Thread()
	t1.AwaitEq(x, prog.Const(1))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	rep := checkLive(t, p, "tso")
	if !rep.Live() {
		t.Fatalf("handshake is live, got %v", rep.PermanentBlocks)
	}
	if rep.Executions != 1 || rep.FairnessBlocks != 1 {
		t.Errorf("want 1 execution + 1 fairness block, got %d/%d", rep.Executions, rep.FairnessBlocks)
	}
}

// TestLivenessRegisterAssume: a guard no memory write can ever satisfy is
// permanent even without a spin-read.
func TestLivenessRegisterAssume(t *testing.T) {
	b := prog.NewBuilder("register-assume")
	b.Loc("x")
	t0 := b.Thread()
	r := t0.Mov(prog.Const(0))
	t0.Assume(prog.Eq(prog.R(r), prog.Const(1)))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	rep := checkLive(t, p, "sc")
	if rep.Live() {
		t.Fatal("a false register assume can never be revived")
	}
	if len(rep.PermanentBlocks) != 1 {
		t.Fatalf("want 1 permanent block, got %v", rep.PermanentBlocks)
	}
	if got := rep.PermanentBlocks[0].Read; got != (eg.EvID{}) {
		t.Errorf("memory-independent block must carry the zero Read, got %v", got)
	}
}

// TestLivenessProtocolsLive: the realistic protocols in the generator —
// spinlocks and fence-complete Peterson — are deadlock-free under every
// model; the liveness checker must agree. (Peterson's deadlock-freedom is
// textbook; a PermanentBlock here would be a checker bug.)
func TestLivenessProtocolsLive(t *testing.T) {
	progs := []*prog.Program{
		gen.SpinlockN(2, eg.FenceFull),
		gen.SpinlockN(2, eg.FenceNone),
		gen.Peterson(eg.FenceFull),
		gen.Peterson(eg.FenceNone),
	}
	for _, p := range progs {
		for _, model := range []string{"sc", "tso", "arm"} {
			rep := checkLive(t, p, model)
			if !rep.Live() {
				t.Errorf("%s/%s: spurious liveness violation: %v", p.Name, model, rep.PermanentBlocks)
			}
		}
	}
}

// TestLivenessBlockedCountsConsistent: the classifier partitions blocked
// executions (permanent ones are those neither fairness- nor
// bound-classified; each blocked execution lands in exactly one bucket,
// totalled against the explorer's Blocked stat).
func TestLivenessBlockedCountsConsistent(t *testing.T) {
	p := gen.SpinlockN(2, eg.FenceFull)
	m, _ := memmodel.ByName("tso")
	res, err := Explore(p, Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	rep := checkLive(t, p, "tso")
	if rep.BlockedExecutions != res.Blocked {
		t.Errorf("BlockedExecutions = %d, explorer counted %d", rep.BlockedExecutions, res.Blocked)
	}
	if rep.Live() && rep.FairnessBlocks+rep.BoundBlocks != rep.BlockedExecutions {
		t.Errorf("live program: fairness(%d)+bound(%d) must equal blocked(%d)",
			rep.FairnessBlocks, rep.BoundBlocks, rep.BlockedExecutions)
	}
}

// TestLivenessABBA: the lock-ordering deadlock is detected, and the
// spin-suffix staleness scope is what makes it visible — each deadlocked
// thread's own earlier acquire read is stale (its own lock write follows
// it in coherence) but that history must not mask the violation.
func TestLivenessABBA(t *testing.T) {
	p := gen.ABBADeadlock()
	for _, model := range []string{"sc", "tso", "arm"} {
		rep := checkLive(t, p, model)
		if rep.Live() {
			t.Errorf("%s: ABBA deadlock not detected (blocked=%d fairness=%d)",
				model, rep.BlockedExecutions, rep.FairnessBlocks)
			continue
		}
		threads := map[int]bool{}
		for _, pb := range rep.PermanentBlocks {
			threads[pb.Thread] = true
		}
		if !threads[0] || !threads[1] {
			t.Errorf("%s: both threads deadlock in some execution, got %v", model, rep.PermanentBlocks)
		}
		if rep.Executions == 0 {
			t.Errorf("%s: ABBA also has completing executions (one thread wins both locks)", model)
		}
	}
}
