package core

import (
	"sort"
	"strings"
	"testing"

	"hmc/internal/axenum"
	"hmc/internal/gen"
	"hmc/internal/litmus"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// sortedKeys returns the execution-key set of a CollectKeys run, sorted.
func sortedKeys(res *Result) []string {
	keys := append([]string(nil), res.Keys...)
	sort.Strings(keys)
	return keys
}

// assertPruneEquivalent is the central cross-validation assertion: the
// pruned explorer (Options.StaticAnalysis) must visit exactly the same
// execution set as the unpruned one — same canonical keys, not just the
// same count — with the CheckDeps sanitizer silent throughout.
func assertPruneEquivalent(t *testing.T, name string, p *prog.Program, model string) (base, pruned *Result) {
	t.Helper()
	base = explore(t, p, model, Options{CollectKeys: true})
	pruned = explore(t, p, model, Options{
		CollectKeys:    true,
		StaticAnalysis: true,
		CheckDeps:      true,
	})
	if got, want := sortedKeys(pruned), sortedKeys(base); strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("%s under %s: pruned execution set differs from unpruned (%d vs %d executions)\nprogram:\n%v",
			name, model, len(got), len(want), p)
	}
	if pruned.Executions != base.Executions || pruned.ExistsCount != base.ExistsCount ||
		pruned.Blocked != base.Blocked || len(pruned.Errors) != len(base.Errors) {
		t.Errorf("%s under %s: pruned stats diverge: execs %d/%d exists %d/%d blocked %d/%d errors %d/%d",
			name, model, pruned.Executions, base.Executions, pruned.ExistsCount, base.ExistsCount,
			pruned.Blocked, base.Blocked, len(pruned.Errors), len(base.Errors))
	}
	if pruned.Duplicates != 0 || pruned.StuckReads != 0 {
		t.Errorf("%s under %s: pruned run has %d duplicates, %d stuck reads",
			name, model, pruned.Duplicates, pruned.StuckReads)
	}
	if pruned.DepViolations != 0 {
		t.Errorf("%s under %s: %d dynamic deps outside static sets:\n%s",
			name, model, pruned.DepViolations, strings.Join(pruned.DepViolationDetails, "\n"))
	}
	return base, pruned
}

// TestStaticPruningCorpus cross-validates pruning on every litmus-corpus
// program under every registered model.
func TestStaticPruningCorpus(t *testing.T) {
	models := memmodel.Names()
	if testing.Short() {
		models = []string{"sc", "tso", "imm"}
	}
	for _, tc := range litmus.Corpus() {
		for _, model := range models {
			assertPruneEquivalent(t, tc.Name, tc.P, model)
		}
	}
}

// TestStaticPruningAgainstAxenum closes the triangle: the pruned explorer
// must also match the independent herd-style reference enumeration (which
// shares no code with the exploration engine or the static analyzer).
// "relaxed" is excluded for the documented reason (the value oracle
// manufactures out-of-thin-air executions constructive exploration never
// builds, see internal/crossval).
func TestStaticPruningAgainstAxenum(t *testing.T) {
	models := []string{"sc", "tso", "imm"}
	for _, tc := range litmus.Corpus() {
		for _, model := range models {
			m, err := memmodel.ByName(model)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := axenum.Explore(tc.P, axenum.Options{Model: m})
			if err != nil {
				t.Fatal(err)
			}
			pruned := explore(t, tc.P, model, Options{CollectKeys: true, StaticAnalysis: true})
			if pruned.Executions != ref.Consistent {
				t.Errorf("%s under %s: pruned explorer found %d executions, reference %d",
					tc.Name, model, pruned.Executions, ref.Consistent)
			}
			for _, k := range pruned.Keys {
				if !ref.Keys[k] {
					t.Errorf("%s under %s: pruned explorer produced an execution the reference lacks",
						tc.Name, model)
				}
			}
		}
	}
}

// TestStaticPruningRandom cross-validates pruning on generated programs —
// the acceptance bar is 500 programs; -short trims the tail, the full run
// covers all of them under two models with different fence semantics.
func TestStaticPruningRandom(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 100
	}
	for seed := int64(0); seed < int64(n); seed++ {
		p := gen.Random(seed)
		for _, model := range []string{"tso", "imm"} {
			assertPruneEquivalent(t, p.Name, p, model)
		}
	}
}

// TestStaticPruningRandomAgainstAxenum spot-checks the random population
// against the reference enumerator too (size-gated exactly like the
// crossval suite keeps the exponential candidate enumeration tractable).
func TestStaticPruningRandomAgainstAxenum(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 40
	}
	m, err := memmodel.ByName("imm")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < int64(n); seed++ {
		p := gen.Random(seed)
		size := 0
		for _, th := range p.Threads {
			size += len(th)
		}
		if size > 7 {
			continue
		}
		ref, err := axenum.Explore(p, axenum.Options{Model: m})
		if err != nil {
			t.Fatal(err)
		}
		pruned := explore(t, p, "imm", Options{StaticAnalysis: true, CheckDeps: true})
		if pruned.Executions != ref.Consistent {
			t.Errorf("%s under imm: pruned explorer found %d executions, reference %d\n%v",
				p.Name, pruned.Executions, ref.Consistent, p)
		}
		if pruned.DepViolations != 0 {
			t.Errorf("%s: %d dep violations:\n%s", p.Name, pruned.DepViolations,
				strings.Join(pruned.DepViolationDetails, "\n"))
		}
	}
}

// TestStaticPruningFamilies covers the parametric families: the
// thread-local-heavy LocalRW shape (rf and revisit-scan pruning), the
// single-writer CoRR shape (co-placement pruning), and a few standard
// shapes where pruning must fire rarely or not at all but equivalence
// must still hold.
func TestStaticPruningFamilies(t *testing.T) {
	cases := []*prog.Program{
		gen.LocalRW(2, 2),
		gen.LocalRW(3, 1),
		gen.CoRRN(2),
		gen.SBN(3),
		gen.MPN(2),
		gen.IncN(2, 2),
		gen.IndexerN(2),
	}
	for _, p := range cases {
		for _, model := range []string{"sc", "tso", "imm"} {
			assertPruneEquivalent(t, p.Name, p, model)
		}
	}
}

// TestStaticPruningFires pins down that the pruning hooks actually
// trigger — and pay — on the shapes built for them. Equivalence alone
// would also pass if pruning never fired.
func TestStaticPruningFires(t *testing.T) {
	t.Run("LocalRW", func(t *testing.T) {
		base, pruned := assertPruneEquivalent(t, "LocalRW(3,2)", gen.LocalRW(3, 2), "imm")
		if pruned.Stats.StaticPrunedScans == 0 {
			t.Error("LocalRW: no revisit scans pruned on thread-local locations")
		}
		if pruned.Stats.StaticPrunedCo == 0 {
			t.Error("LocalRW: no co placements pruned on single-writer locations")
		}
		if pruned.Stats.ConsistencyChecks >= base.Stats.ConsistencyChecks {
			t.Errorf("LocalRW: pruning did not reduce consistency checks (%d vs %d)",
				pruned.Stats.ConsistencyChecks, base.Stats.ConsistencyChecks)
		}
	})
	t.Run("CoRR", func(t *testing.T) {
		_, pruned := assertPruneEquivalent(t, "CoRR(3)", gen.CoRRN(3), "imm")
		if pruned.Stats.StaticPrunedCo == 0 {
			t.Error("CoRR: no co placements pruned despite the single writer")
		}
	})
	t.Run("SB-no-pruning", func(t *testing.T) {
		// Fully shared locations: nothing is provably prunable, and the
		// counters must say so (no silent over-pruning).
		_, pruned := assertPruneEquivalent(t, "SB(2)", gen.SBN(2), "tso")
		sum := pruned.Stats.StaticPrunedRf + pruned.Stats.StaticPrunedCo + pruned.Stats.StaticPrunedScans
		if sum != 0 {
			t.Errorf("SB: %d prunes fired on a program with no prunable locations", sum)
		}
	})
}

// TestLocalRWThreadLocalRf checks the rf fast-path fires when a
// thread-local location has more than one write in a graph at read time.
func TestLocalRWThreadLocalRf(t *testing.T) {
	// Two scratch rounds ⇒ at the second scratch load the location holds
	// init + two writes, so the rf candidate list is actually trimmed.
	_, pruned := assertPruneEquivalent(t, "LocalRW(2,3)", gen.LocalRW(2, 3), "tso")
	if pruned.Stats.StaticPrunedRf == 0 {
		t.Error("LocalRW(2,3): rf fast-path never fired on thread-local loads")
	}
}

// TestCheckDepsStandalone runs the sanitizer without pruning (the two
// options are independent) across models with real dependency tracking.
func TestCheckDepsStandalone(t *testing.T) {
	for _, tc := range litmus.Corpus() {
		res := explore(t, tc.P, "imm", Options{CheckDeps: true})
		if res.DepViolations != 0 {
			t.Errorf("%s: %d dep violations:\n%s", tc.Name, res.DepViolations,
				strings.Join(res.DepViolationDetails, "\n"))
		}
	}
}

// TestStaticPruningWithReductions checks pruning composes with the other
// exploration options (symmetry reduction, parallel workers, memoization
// of estimates is out of scope here).
func TestStaticPruningWithReductions(t *testing.T) {
	p := gen.LocalRW(3, 1)
	base := explore(t, p, "imm", Options{Symmetry: true})
	pruned := explore(t, p, "imm", Options{Symmetry: true, StaticAnalysis: true, CheckDeps: true})
	if base.Executions != pruned.Executions || base.ExistsCount != pruned.ExistsCount {
		t.Errorf("symmetry+pruning: %d/%d executions, exists %d/%d",
			pruned.Executions, base.Executions, pruned.ExistsCount, base.ExistsCount)
	}
	if pruned.DepViolations != 0 {
		t.Errorf("symmetry+pruning: %d dep violations", pruned.DepViolations)
	}

	wbase := explore(t, p, "imm", Options{Workers: 4})
	wpruned := explore(t, p, "imm", Options{Workers: 4, StaticAnalysis: true, CheckDeps: true})
	if wbase.Executions != wpruned.Executions {
		t.Errorf("workers+pruning: %d executions, want %d", wpruned.Executions, wbase.Executions)
	}
	if wpruned.DepViolations != 0 {
		t.Errorf("workers+pruning: %d dep violations", wpruned.DepViolations)
	}
}

// TestEstimateWithStaticAnalysis checks the probe-based estimator shares
// the pruned branching structure: on a thread-local-heavy program the
// estimator must remain unbiased for the pruned tree (which has the same
// leaf count as the unpruned one).
func TestEstimateWithStaticAnalysis(t *testing.T) {
	p := gen.LocalRW(2, 2)
	m, err := memmodel.ByName("sc")
	if err != nil {
		t.Fatal(err)
	}
	exact := explore(t, p, "sc", Options{})
	est, err := Estimate(p, Options{Model: m, StaticAnalysis: true}, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := float64(exact.Executions)*0.5, float64(exact.Executions)*2.0
	if est.Mean < lo || est.Mean > hi {
		t.Errorf("estimate %s far from exact %d", est, exact.Executions)
	}
}
