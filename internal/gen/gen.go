// Package gen builds the parametric benchmark families used by the
// evaluation (experiments T3, T4, T5, T7): scalable versions of the
// classic litmus shapes plus the standard stateless-model-checking
// stress programs (atomic counters, CAS contention, lock-protected
// critical sections). Every generator returns a self-contained
// prog.Program whose Exists clause identifies the family's "weak" outcome.
package gen

import (
	"fmt"

	"hmc/internal/eg"
	"hmc/internal/prog"
)

// SBN builds the n-thread store-buffering ring: thread i writes x_i and
// reads x_{i+1 mod n}. The weak outcome is every read returning 0
// (forbidden under SC, allowed from TSO on). Consistent executions: 2^n
// on store-buffer models, 2^n − 1 under SC.
func SBN(n int) *prog.Program {
	b := prog.NewBuilder(fmt.Sprintf("SB(%d)", n))
	locs := b.Locs("x", n)
	regs := make([]prog.Reg, n)
	for i := 0; i < n; i++ {
		t := b.Thread()
		t.Store(locs[i], prog.Const(1))
		regs[i] = t.Load(locs[(i+1)%n])
	}
	b.Exists("all reads 0", func(fs prog.FinalState) bool {
		for i, r := range regs {
			if fs.Reg(i, r) != 0 {
				return false
			}
		}
		return true
	})
	return b.MustBuild()
}

// LBN builds the n-thread load-buffering ring: thread i reads x_i and
// writes x_{i+1 mod n} := 1. The weak outcome is every read returning 1 —
// a po∪rf cycle, reachable only under hardware models (IMM here): the
// paper's headline scaling family.
func LBN(n int) *prog.Program {
	b := prog.NewBuilder(fmt.Sprintf("LB(%d)", n))
	locs := b.Locs("x", n)
	regs := make([]prog.Reg, n)
	for i := 0; i < n; i++ {
		t := b.Thread()
		regs[i] = t.Load(locs[i])
		t.Store(locs[(i+1)%n], prog.Const(1))
	}
	b.Exists("all reads 1", func(fs prog.FinalState) bool {
		for i, r := range regs {
			if fs.Reg(i, r) != 1 {
				return false
			}
		}
		return true
	})
	return b.MustBuild()
}

// MPN builds message passing with n data locations: the writer stores
// d_1..d_n then raises the flag; the reader reads the flag and then every
// data location. Weak outcome: flag observed set but some datum stale.
func MPN(n int) *prog.Program {
	b := prog.NewBuilder(fmt.Sprintf("MP(%d)", n))
	data := b.Locs("d", n)
	flag := b.Loc("flag")
	w := b.Thread()
	for _, d := range data {
		w.Store(d, prog.Const(1))
	}
	w.Store(flag, prog.Const(1))
	r := b.Thread()
	rf := r.Load(flag)
	dr := make([]prog.Reg, n)
	for i, d := range data {
		dr[i] = r.Load(d)
	}
	b.Exists("flag=1 && some d=0", func(fs prog.FinalState) bool {
		if fs.Reg(1, rf) != 1 {
			return false
		}
		for _, reg := range dr {
			if fs.Reg(1, reg) == 0 {
				return true
			}
		}
		return false
	})
	return b.MustBuild()
}

// IRIWN builds independent-reads-of-independent-writes with n reader
// pairs: two writers and 2n readers; reader pair k disagrees on the order
// of the two writes. Weak outcome: some pair observes opposite orders.
func IRIWN(n int) *prog.Program {
	b := prog.NewBuilder(fmt.Sprintf("IRIW(%d)", n))
	x, y := b.Loc("x"), b.Loc("y")
	tw := b.Thread()
	tw.Store(x, prog.Const(1))
	tw2 := b.Thread()
	tw2.Store(y, prog.Const(1))
	type pair struct{ a, b, c, d prog.Reg }
	pairs := make([]pair, n)
	for k := 0; k < n; k++ {
		t1 := b.Thread()
		a := t1.Load(x)
		bb := t1.Load(y)
		t2 := b.Thread()
		c := t2.Load(y)
		d := t2.Load(x)
		pairs[k] = pair{a, bb, c, d}
	}
	b.Exists("some pair sees opposite orders", func(fs prog.FinalState) bool {
		for k, p := range pairs {
			t1, t2 := 2+2*k, 3+2*k
			if fs.Reg(t1, p.a) == 1 && fs.Reg(t1, p.b) == 0 &&
				fs.Reg(t2, p.c) == 1 && fs.Reg(t2, p.d) == 0 {
				return true
			}
		}
		return false
	})
	return b.MustBuild()
}

// CoRRN builds the coherence stress family: one writer performing n
// sequential writes to x, one reader performing n reads. The consistent
// executions are the monotone read sequences; the weak (always forbidden)
// outcome is observing a newer write before an older one.
func CoRRN(n int) *prog.Program {
	b := prog.NewBuilder(fmt.Sprintf("CoRR(%d)", n))
	x := b.Loc("x")
	w := b.Thread()
	for i := 1; i <= n; i++ {
		w.Store(x, prog.Const(int64(i)))
	}
	r := b.Thread()
	regs := make([]prog.Reg, n)
	for i := 0; i < n; i++ {
		regs[i] = r.Load(x)
	}
	b.Exists("non-monotone reads", func(fs prog.FinalState) bool {
		for i := 1; i < n; i++ {
			if fs.Reg(1, regs[i]) < fs.Reg(1, regs[i-1]) {
				return true
			}
		}
		return false
	})
	return b.MustBuild()
}

// TwoPlusTwoWN builds the n-thread 2+2W ring: thread i writes x_i := 1
// then x_{i+1 mod n} := 2. Weak outcome: every location retains its
// thread's *first* write (x_i = 1 for all i), requiring W→W reordering.
func TwoPlusTwoWN(n int) *prog.Program {
	b := prog.NewBuilder(fmt.Sprintf("2+2W(%d)", n))
	locs := b.Locs("x", n)
	for i := 0; i < n; i++ {
		t := b.Thread()
		t.Store(locs[i], prog.Const(1))
		t.Store(locs[(i+1)%n], prog.Const(2))
	}
	b.Exists("all locations = 1", func(fs prog.FinalState) bool {
		for _, l := range locs {
			if fs.Mem[l] != 1 {
				return false
			}
		}
		return true
	})
	return b.MustBuild()
}

// IncN builds n threads each atomically incrementing a counter k times
// (fetch-add). Executions number (n·k)!/(k!)^n. The weak outcome — a lost
// update — is forbidden under every model.
func IncN(n, k int) *prog.Program {
	b := prog.NewBuilder(fmt.Sprintf("inc(%d,%d)", n, k))
	x := b.Loc("x")
	for i := 0; i < n; i++ {
		t := b.Thread()
		for j := 0; j < k; j++ {
			t.FAdd(x, prog.Const(1))
		}
	}
	total := int64(n * k)
	b.Exists("lost update", func(fs prog.FinalState) bool {
		return fs.Mem[x] != total
	})
	return b.MustBuild()
}

// CASContendN builds n threads all CASing x from 0 to their id+1 once.
// Exactly one succeeds; the weak outcome (no winner, or two winners'
// values observed) is forbidden.
func CASContendN(n int) *prog.Program {
	b := prog.NewBuilder(fmt.Sprintf("cas(%d)", n))
	x := b.Loc("x")
	succ := make([]prog.Reg, n)
	for i := 0; i < n; i++ {
		t := b.Thread()
		_, s := t.CAS(x, prog.Const(0), prog.Const(int64(i+1)))
		succ[i] = s
	}
	b.Exists("not exactly one winner", func(fs prog.FinalState) bool {
		winners := 0
		for i, s := range succ {
			winners += int(fs.Reg(i, s))
		}
		return winners != 1
	})
	return b.MustBuild()
}

// IndexerN builds a bounded variant of the classic "indexer" DPOR
// benchmark: n threads insert into a hash table of 4 slots by CASing
// slot (id mod 4), falling back to the next slot on failure (one retry).
// Weak outcome: a thread fails both probes (only possible with ≥ 3
// threads contending on a slot chain).
func IndexerN(n int) *prog.Program {
	b := prog.NewBuilder(fmt.Sprintf("indexer(%d)", n))
	const slots = 4
	tab := b.Locs("h", slots)
	fail := make([]prog.Reg, n)
	for i := 0; i < n; i++ {
		t := b.Thread()
		first := tab[i%slots]
		second := tab[(i+1)%slots]
		_, s1 := t.CAS(first, prog.Const(0), prog.Const(int64(i+1)))
		// if s1 goto done
		j := t.BranchFwd(prog.R(s1))
		_, s2 := t.CAS(second, prog.Const(0), prog.Const(int64(i+1)))
		t.Patch(j)
		// failed = !s1 && !s2  (s2 is 0 if the first probe won)
		failed := t.Mov(prog.And(prog.Not(prog.R(s1)), prog.Not(prog.R(s2))))
		fail[i] = failed
	}
	b.Exists("some thread failed both probes", func(fs prog.FinalState) bool {
		for i, f := range fail {
			if fs.Reg(i, f) == 1 {
				return true
			}
		}
		return false
	})
	return b.MustBuild()
}

// SpinlockN builds n threads taking a test-and-set try-lock (one atomic
// exchange), incrementing a non-atomic shared counter inside the critical
// section, and releasing. fence selects the acquire/release barriers:
// with FenceNone the critical section can leak under dependency-ordered
// hardware models (the acquiring exchange does not order the plain
// counter accesses), losing updates; with full fences the final counter
// equals the number of acquirers under every model. Threads that fail to
// acquire skip the critical section.
func SpinlockN(n int, fence eg.FenceKind) *prog.Program {
	name := fmt.Sprintf("spinlock(%d)+%v", n, fence)
	b := prog.NewBuilder(name)
	lock := b.Loc("lock")
	counter := b.Loc("c")
	acquired := make([]prog.Reg, n)
	for i := 0; i < n; i++ {
		t := b.Thread()
		got := t.Xchg(lock, prog.Const(1)) // returns 0 iff acquired
		ok := t.Mov(prog.Eq(prog.R(got), prog.Const(0)))
		acquired[i] = ok
		skip := t.BranchFwd(prog.Not(prog.R(ok)))
		if fence != eg.FenceNone {
			t.Fence(fence)
		}
		v := t.Load(counter)
		t.Store(counter, prog.Add(prog.R(v), prog.Const(1)))
		if fence != eg.FenceNone {
			t.Fence(fence)
		}
		t.Store(lock, prog.Const(0))
		t.Patch(skip)
	}
	b.Exists("counter lost an update", func(fs prog.FinalState) bool {
		var want int64
		for i, a := range acquired {
			want += fs.Reg(i, a)
		}
		return fs.Mem[counter] != want
	})
	return b.MustBuild()
}

// Peterson builds Peterson's mutual-exclusion algorithm for two threads,
// each entering the critical section once to increment a plain counter.
// The entry await is modelled with a bounded assume (executions where the
// condition never holds are blocked). fence, when nonzero, is placed at
// the four spots weak models require: between the entry protocol's two
// stores (PSO-class machines commit them out of order), between its
// stores and loads (the W→R barrier Peterson needs even on x86-TSO),
// after the await (acquire: dependency-ordered hardware speculates the
// critical section's loads past the await otherwise), and before the
// exit's flag release (release: without it the critical section's plain
// stores leak past the unlock). Model checking found each of these — see
// TestPeterson and the witnesses it prints on regression.
func Peterson(fence eg.FenceKind) *prog.Program {
	name := "peterson"
	if fence != eg.FenceNone {
		name += "+" + fence.String()
	}
	b := prog.NewBuilder(name)
	flag0, flag1, turn, counter := b.Loc("flag0"), b.Loc("flag1"), b.Loc("turn"), b.Loc("c")

	side := func(me, myFlag, otherFlag eg.Loc, myTurn int64) {
		t := b.Thread()
		t.Store(myFlag, prog.Const(1))
		if fence != eg.FenceNone {
			t.Fence(fence) // store-store: the flag must be visible before the yield
		}
		t.Store(turn, prog.Const(1-myTurn)) // yield to the other thread
		if fence != eg.FenceNone {
			t.Fence(fence) // store-load: the classic TSO barrier
		}
		of := t.Load(otherFlag)
		tn := t.Load(turn)
		// await: other not interested, or it is our turn
		t.Assume(prog.Or(
			prog.Eq(prog.R(of), prog.Const(0)),
			prog.Eq(prog.R(tn), prog.Const(myTurn)),
		))
		if fence != eg.FenceNone {
			t.Fence(fence) // acquire: order the critical section after the await
		}
		v := t.Load(counter)
		t.Store(counter, prog.Add(prog.R(v), prog.Const(1)))
		if fence != eg.FenceNone {
			t.Fence(fence) // release: publish the critical section before unlocking
		}
		t.Store(myFlag, prog.Const(0))
		_ = me
	}
	side(flag0, flag0, flag1, 0)
	side(flag1, flag1, flag0, 1)

	b.Exists("mutual exclusion violated (lost increment)", func(fs prog.FinalState) bool {
		return fs.Mem[counter] != 2
	})
	return b.MustBuild()
}

// TreiberPushPop builds a bounded Treiber-stack interaction: one thread
// pushes a node (write payload, link it, CAS the head), one thread pops
// (read head, address-dependent read of the node's next pointer, CAS the
// head, address-dependent read of the payload) and asserts the payload is
// initialised. Node pointers are 1-based location indices (0 = nil), so
// the pop-side loads are *real* address dependencies.
//
// Without a release fence before the publishing CAS, dependency-ordered
// hardware (imm) lets the pop observe the node before its payload — the
// canonical unpublished-node bug; TSO's ordered store buffer hides it.
func TreiberPushPop(fence eg.FenceKind) *prog.Program {
	name := "treiber"
	if fence != eg.FenceNone {
		name += "+" + fence.String()
	}
	b := prog.NewBuilder(name)
	head := b.Loc("head")
	val := b.Loc("val0")   // payload of node 1
	next := b.Loc("next0") // next pointer of node 1

	// Pusher: initialise node 1, link it to the current head, publish.
	push := b.Thread()
	push.Store(val, prog.Const(42))
	h := push.Load(head)
	push.Store(next, prog.R(h))
	if fence != eg.FenceNone {
		push.Fence(fence) // release: payload and link before publication
	}
	push.CAS(head, prog.R(h), prog.Const(1))

	// Popper: read head; if non-nil, unlink via CAS and read the payload
	// through the pointer (address dependencies on h2).
	pop := b.Thread()
	h2 := pop.Load(head)
	empty := pop.BranchFwd(prog.Eq(prog.R(h2), prog.Const(0)))
	// next pointer of node h2: location next0 + (h2-1); payload likewise.
	nxt := pop.LoadAt(prog.Add(prog.Const(int64(next)), prog.Sub(prog.R(h2), prog.Const(1))))
	_, ok := pop.CAS(head, prog.R(h2), prog.R(nxt))
	gotIt := pop.BranchFwd(prog.Not(prog.R(ok)))
	v := pop.LoadAt(prog.Add(prog.Const(int64(val)), prog.Sub(prog.R(h2), prog.Const(1))))
	pop.Assert(prog.Eq(prog.R(v), prog.Const(42)), "popped an unpublished node")
	pop.Patch(gotIt)
	pop.Patch(empty)

	b.Exists("pop succeeded", func(fs prog.FinalState) bool {
		return fs.Reg(1, ok) == 1
	})
	return b.MustBuild()
}

// ABBADeadlock builds the classic lock-ordering deadlock: two spin locks
// a and b, one thread acquiring a-then-b, the other b-then-a. Executions
// where each thread grabs its first lock before the other requests it end
// with both spinning on a lock that will never be released — the textbook
// target for CheckLiveness, which must report both threads permanently
// blocked (their spin reads observe the held lock, the final value those
// locations will ever take).
func ABBADeadlock() *prog.Program {
	b := prog.NewBuilder("abba")
	a, l := b.Loc("a"), b.Loc("b")
	side := func(first, second eg.Loc) {
		t := b.Thread()
		t.AwaitEq(first, prog.Const(0)) // acquire first lock
		t.Store(first, prog.Const(1))
		t.AwaitEq(second, prog.Const(0)) // acquire second lock
		t.Store(second, prog.Const(1))
		t.Store(second, prog.Const(0)) // release in reverse order
		t.Store(first, prog.Const(0))
	}
	side(a, l)
	side(l, a)
	return b.MustBuild()
}
