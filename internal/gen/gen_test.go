package gen

import (
	"testing"

	"hmc/internal/core"
	"hmc/internal/eg"
	"hmc/internal/memmodel"
	"hmc/internal/operational"
	"hmc/internal/prog"
)

func explore(t *testing.T, p *prog.Program, model string) *core.Result {
	t.Helper()
	m, err := memmodel.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Explore(p, core.Options{Model: m, DedupSafeguard: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duplicates != 0 {
		t.Fatalf("%s under %s: %d duplicates", p.Name, model, res.Duplicates)
	}
	return res
}

func TestSBNCounts(t *testing.T) {
	for n := 2; n <= 4; n++ {
		p := SBN(n)
		pow := 1 << n
		if got := explore(t, p, "sc").Executions; got != pow-1 {
			t.Errorf("SB(%d) under sc: %d executions, want %d", n, got, pow-1)
		}
		res := explore(t, p, "tso")
		if res.Executions != pow {
			t.Errorf("SB(%d) under tso: %d executions, want %d", n, res.Executions, pow)
		}
		if res.ExistsCount != 1 {
			t.Errorf("SB(%d) under tso: weak outcome count %d, want 1", n, res.ExistsCount)
		}
	}
}

func TestLBNCounts(t *testing.T) {
	for n := 2; n <= 4; n++ {
		p := LBN(n)
		pow := 1 << n
		if got := explore(t, p, "sc").Executions; got != pow-1 {
			t.Errorf("LB(%d) under sc: %d executions, want %d", n, got, pow-1)
		}
		res := explore(t, p, "imm")
		if res.Executions != pow {
			t.Errorf("LB(%d) under imm: %d executions, want %d", n, res.Executions, pow)
		}
		if res.ExistsCount != 1 {
			t.Errorf("LB(%d) under imm: weak outcome count %d, want 1", n, res.ExistsCount)
		}
		if got := explore(t, p, "tso").ExistsCount; got != 0 {
			t.Errorf("LB(%d) under tso: weak outcome observed", n)
		}
	}
}

func TestMPNVerdicts(t *testing.T) {
	for n := 1; n <= 3; n++ {
		p := MPN(n)
		if got := explore(t, p, "sc").ExistsCount; got != 0 {
			t.Errorf("MP(%d) weak outcome under sc", n)
		}
		if got := explore(t, p, "tso").ExistsCount; got != 0 {
			t.Errorf("MP(%d) weak outcome under tso", n)
		}
		if got := explore(t, p, "pso").ExistsCount; got == 0 {
			t.Errorf("MP(%d) weak outcome missing under pso", n)
		}
		if got := explore(t, p, "imm").ExistsCount; got == 0 {
			t.Errorf("MP(%d) weak outcome missing under imm", n)
		}
	}
}

func TestIRIWNVerdicts(t *testing.T) {
	p := IRIWN(1)
	if got := explore(t, p, "sc").Executions; got != 15 {
		t.Errorf("IRIW(1) under sc: %d executions, want 15", got)
	}
	if got := explore(t, p, "ra").Executions; got != 16 {
		t.Errorf("IRIW(1) under ra: %d executions, want 16", got)
	}
	if got := explore(t, p, "tso").ExistsCount; got != 0 {
		t.Error("IRIW(1) weak outcome under tso")
	}
	if got := explore(t, p, "imm").ExistsCount; got == 0 {
		t.Error("IRIW(1) weak outcome missing under imm")
	}
}

// binom computes C(n, k).
func binom(n, k int) int {
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

func TestCoRRNCounts(t *testing.T) {
	// Consistent executions = monotone read sequences over n+1 values of
	// length n = C(2n, n); identical under every model (pure coherence).
	for n := 1; n <= 3; n++ {
		p := CoRRN(n)
		want := binom(2*n, n)
		for _, model := range []string{"sc", "imm", "relaxed"} {
			res := explore(t, p, model)
			if res.Executions != want {
				t.Errorf("CoRR(%d) under %s: %d executions, want %d", n, model, res.Executions, want)
			}
			if res.ExistsCount != 0 {
				t.Errorf("CoRR(%d) under %s: coherence violation observed", n, model)
			}
		}
	}
}

func TestTwoPlusTwoWN(t *testing.T) {
	p := TwoPlusTwoWN(2)
	if got := explore(t, p, "sc").ExistsCount; got != 0 {
		t.Error("2+2W(2) weak outcome under sc")
	}
	if got := explore(t, p, "pso").ExistsCount; got == 0 {
		t.Error("2+2W(2) weak outcome missing under pso")
	}
}

func TestIncNCounts(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{2, 1, 2}, {3, 1, 6}, {4, 1, 24}, {2, 2, 6}, {3, 2, 90},
	}
	for _, c := range cases {
		p := IncN(c.n, c.k)
		res := explore(t, p, "imm")
		if res.Executions != c.want {
			t.Errorf("inc(%d,%d): %d executions, want %d", c.n, c.k, res.Executions, c.want)
		}
		if res.ExistsCount != 0 {
			t.Errorf("inc(%d,%d): lost update observed", c.n, c.k)
		}
	}
}

func TestCASContendN(t *testing.T) {
	for n := 2; n <= 4; n++ {
		p := CASContendN(n)
		res := explore(t, p, "tso")
		if res.ExistsCount != 0 {
			t.Errorf("cas(%d): winner invariant violated", n)
		}
		if res.Executions != n {
			t.Errorf("cas(%d): %d executions, want %d (one per winner)", n, res.Executions, n)
		}
	}
}

func TestIndexerN(t *testing.T) {
	res := explore(t, IndexerN(2), "tso")
	if res.ExistsCount != 0 {
		t.Error("indexer(2): a thread failed both probes with no contention chain")
	}
	if res.Executions == 0 {
		t.Error("indexer(2): no executions")
	}
}

func TestSpinlockLeak(t *testing.T) {
	// The mutual-exclusion counter is safe under SC/TSO even without
	// fences (the exchange orders everything), but leaks under the
	// dependency-ordered hardware model unless fenced.
	plain := SpinlockN(2, eg.FenceNone)
	if got := explore(t, plain, "sc").ExistsCount; got != 0 {
		t.Error("spinlock(2) lost an update under sc")
	}
	if got := explore(t, plain, "tso").ExistsCount; got != 0 {
		t.Error("spinlock(2) lost an update under tso")
	}
	if got := explore(t, plain, "imm").ExistsCount; got == 0 {
		t.Error("spinlock(2) must leak under imm without fences")
	}
	fenced := SpinlockN(2, eg.FenceFull)
	if got := explore(t, fenced, "imm").ExistsCount; got != 0 {
		t.Error("spinlock(2)+full lost an update under imm")
	}
}

// TestFamiliesAgainstMachines cross-validates small instances of every
// family against the operational machines.
func TestFamiliesAgainstMachines(t *testing.T) {
	progs := []*prog.Program{
		SBN(3), LBN(3), MPN(2), IRIWN(1), CoRRN(2), TwoPlusTwoWN(2),
		IncN(2, 2), CASContendN(3), IndexerN(3), SpinlockN(2, eg.FenceNone),
	}
	levels := map[string]operational.Level{
		"sc": operational.SC, "tso": operational.TSO, "pso": operational.PSO,
	}
	for _, p := range progs {
		for model, level := range levels {
			m, _ := memmodel.ByName(model)
			finals := map[string]bool{}
			_, err := core.Explore(p, core.Options{Model: m,
				OnExecution: func(g *eg.Graph, fs prog.FinalState) {
					finals[operational.FinalKey(fs)] = true
				}})
			if err != nil {
				t.Fatal(err)
			}
			mres, err := operational.Explore(p, operational.Options{Level: level, Memo: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(finals) != len(mres.Finals) {
				t.Errorf("%s under %s: %d final states vs machine's %d",
					p.Name, model, len(finals), len(mres.Finals))
				continue
			}
			for k := range mres.Finals {
				if !finals[k] {
					t.Errorf("%s under %s: machine final %s not found by explorer", p.Name, model, k)
				}
			}
		}
	}
}

func TestPeterson(t *testing.T) {
	plain := Peterson(eg.FenceNone)
	// Correct under SC...
	if got := explore(t, plain, "sc").ExistsCount; got != 0 {
		t.Error("Peterson must be correct under SC")
	}
	// ...broken on x86-TSO without the store-load barrier (the textbook
	// example of why W→R reordering matters)...
	if got := explore(t, plain, "tso").ExistsCount; got == 0 {
		t.Error("Peterson without fences must be broken under TSO")
	}
	// ...and repaired by a full fence in the entry protocol.
	fenced := Peterson(eg.FenceFull)
	for _, model := range []string{"sc", "tso", "pso", "arm", "imm"} {
		if got := explore(t, fenced, model).ExistsCount; got != 0 {
			t.Errorf("Peterson+full must be correct under %s", model)
		}
	}
	// Blocked executions (awaits that never fire) must be reported.
	if got := explore(t, plain, "sc").Blocked; got == 0 {
		t.Error("Peterson's awaits must produce blocked executions")
	}
}

func TestAwaitEqBlocks(t *testing.T) {
	b := prog.NewBuilder("await")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t1 := b.Thread()
	t1.AwaitEq(x, prog.Const(1))
	p := b.MustBuild()
	res := explore(t, p, "sc")
	if res.Executions != 1 || res.Blocked == 0 {
		t.Fatalf("await: executions=%d blocked=%d, want 1 and >0", res.Executions, res.Blocked)
	}
}

func TestTreiberPublication(t *testing.T) {
	plain := TreiberPushPop(eg.FenceNone)
	for _, model := range []string{"sc", "tso"} {
		res := explore(t, plain, model)
		if len(res.Errors) != 0 {
			t.Errorf("treiber must be safe under %s: %v", model, res.Errors[0].Msg)
		}
		if res.ExistsCount == 0 {
			t.Errorf("pop must be able to succeed under %s", model)
		}
	}
	// The unpublished-node bug on dependency-ordered hardware.
	m, _ := memmodel.ByName("imm")
	res, err := core.Explore(plain, core.Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) == 0 {
		t.Error("treiber without release must pop an unpublished node under imm")
	}
	// And the fix.
	fenced := TreiberPushPop(eg.FenceLW)
	for _, model := range []string{"sc", "tso", "pso", "arm", "imm"} {
		res := explore(t, fenced, model)
		if len(res.Errors) != 0 {
			t.Errorf("treiber+lw must be safe under %s: %v", model, res.Errors[0].Msg)
		}
	}
}
