package gen

import (
	"fmt"
	"math/rand"

	"hmc/internal/eg"
	"hmc/internal/prog"
)

// Random builds a small random concurrent program exercising stores,
// loads, RMWs, fences, dependencies and branches. Deterministic in seed;
// the same generator backs the cross-validation suite (internal/crossval)
// and the static-analysis property tests, so its distribution is part of
// the repo's test contract — change it only with care.
func Random(seed int64) *prog.Program {
	rng := rand.New(rand.NewSource(seed))
	b := prog.NewBuilder(fmt.Sprintf("rand-%d", seed))
	nLocs := 1 + rng.Intn(2)
	locs := b.Locs("x", nLocs)
	loc := func() eg.Loc { return locs[rng.Intn(len(locs))] }

	modes := []eg.Mode{eg.ModePlain, eg.ModeRlx, eg.ModeAcq, eg.ModeRel, eg.ModeSC}
	wmode := func() eg.Mode {
		m := modes[rng.Intn(len(modes))]
		if m == eg.ModeAcq {
			m = eg.ModeRel
		}
		return m
	}
	rmode := func() eg.Mode {
		m := modes[rng.Intn(len(modes))]
		if m == eg.ModeRel {
			m = eg.ModeAcq
		}
		return m
	}
	nThreads := 2 + rng.Intn(2)
	for ti := 0; ti < nThreads; ti++ {
		th := b.Thread()
		var loaded []prog.Reg
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			switch rng.Intn(10) {
			case 0, 1:
				th.StoreM(loc(), prog.Const(int64(1+rng.Intn(2))), wmode())
			case 2, 3:
				loaded = append(loaded, th.LoadM(loc(), rmode()))
			case 4:
				if len(loaded) > 0 {
					r := loaded[rng.Intn(len(loaded))]
					th.Store(loc(), prog.Add(prog.R(r), prog.Const(1)))
				} else {
					th.Store(loc(), prog.Const(3))
				}
			case 5:
				loaded = append(loaded, th.FAdd(loc(), prog.Const(1)))
			case 6:
				v, _ := th.CAS(loc(), prog.Const(0), prog.Const(int64(1+rng.Intn(2))))
				loaded = append(loaded, v)
			case 7:
				kinds := []eg.FenceKind{eg.FenceFull, eg.FenceLW}
				th.Fence(kinds[rng.Intn(2)])
			case 8:
				if len(loaded) > 0 {
					// Conditionally skip a store: real control flow.
					r := loaded[rng.Intn(len(loaded))]
					j := th.BranchFwd(prog.Eq(prog.R(r), prog.Const(0)))
					th.Store(loc(), prog.Const(int64(5+rng.Intn(2))))
					th.Patch(j)
				} else {
					loaded = append(loaded, th.Load(loc()))
				}
			default:
				loaded = append(loaded, th.Xchg(loc(), prog.Const(int64(1+rng.Intn(2)))))
			}
		}
	}
	return b.MustBuild()
}

// LocalRW builds the thread-local-traffic family used by experiment T13:
// n threads share one location x, but most of each thread's events hit a
// private scratch location. Thread i reads x, performs k store/load
// rounds on scratch_i keyed off that value, then publishes to x. The
// scratch locations are provably thread-local (and x single-writer-free),
// so static-analysis pruning removes every rf branch and revisit scan on
// them while the consistent-execution count is untouched — the shape
// where footprint pruning pays off most.
func LocalRW(n, k int) *prog.Program {
	b := prog.NewBuilder(fmt.Sprintf("LocalRW(%d,%d)", n, k))
	x := b.Loc("x")
	scratch := b.Locs("s", n)
	regs := make([]prog.Reg, n)
	for i := 0; i < n; i++ {
		t := b.Thread()
		r := t.Load(x)
		cur := r
		for j := 0; j < k; j++ {
			t.Store(scratch[i], prog.Add(prog.R(cur), prog.Const(int64(j+1))))
			cur = t.Load(scratch[i])
		}
		t.Store(x, prog.Add(prog.R(cur), prog.Const(1)))
		regs[i] = r
	}
	b.Exists("all reads of x return 0", func(fs prog.FinalState) bool {
		for i, r := range regs {
			if fs.Reg(i, r) != 0 {
				return false
			}
		}
		return true
	})
	return b.MustBuild()
}
