package shard

import (
	"context"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"hmc/internal/core"
	"hmc/internal/obs"
)

// Pool defaults; each is overridable through PoolConfig.
const (
	DefaultProbeEvery       = 5 * time.Second
	DefaultProbeTimeout     = 2 * time.Second
	DefaultMaxPeerRetries   = 2
	DefaultRetryBackoff     = 100 * time.Millisecond
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 10 * time.Second
)

// maxRetryBackoff caps the exponential backoff between transient-retry
// attempts; beyond this, waiting longer just delays the local demotion.
const maxRetryBackoff = 2 * time.Second

// PoolConfig tunes a peer pool. The zero value means: probe every 5s
// with a 2s timeout, no per-attempt leg deadline, 2 transient retries
// with 100ms jittered exponential backoff, breaker opens after 3
// consecutive failures and half-opens after 10s, no hedging.
type PoolConfig struct {
	// ProbeEvery is the active /readyz probe period (<0 disables active
	// probing; peers are then judged passively from leg outcomes).
	ProbeEvery time.Duration
	// ProbeTimeout bounds one probe request.
	ProbeTimeout time.Duration
	// LegTimeout, when >0, is the per-attempt deadline for one peer leg.
	// Legs are long-lived by design; set this well above the expected
	// leg duration — it exists to unstick hung peers, not pace them.
	LegTimeout time.Duration
	// MaxRetries bounds transient-error retries per leg before the local
	// demotion (<0 disables retries).
	MaxRetries int
	// RetryBackoff is the base of the jittered exponential backoff
	// between transient retries.
	RetryBackoff time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit breaker; BreakerCooldown is how long it stays open
	// before a single half-open probe leg is allowed through.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HedgeAfter, when >0, races a local copy of any peer leg still
	// running after this long; the first success wins, the loser is
	// cancelled and its result discarded. Legs are deterministic, so the
	// winner's checkpoint is the same either way.
	HedgeAfter time.Duration
	// Client dispatches probes and legs (nil = the shared default peer
	// client). Chaos plans wrap its transport.
	Client *http.Client
	// Observer receives resilience-event callbacks for metrics. All
	// fields are optional.
	Observer PoolObserver
}

// PoolObserver carries the pool's metrics hooks; any field may be nil.
type PoolObserver struct {
	// OnProbeFailure fires per failed active health probe.
	OnProbeFailure func()
	// OnTransientRetry fires per leg attempt retried after a transient
	// transport failure.
	OnTransientRetry func()
	// OnHedge fires when a straggling peer leg grows a local hedge.
	OnHedge func()
	// OnDemotion fires when a leg is surrendered to the local fallback
	// (breaker open, peer dark, or retries exhausted).
	OnDemotion func()
}

func (cfg *PoolConfig) withDefaults() {
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = DefaultProbeEvery
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxPeerRetries
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	if cfg.Client == nil {
		cfg.Client = defaultPeerClient
	}
}

// Pool manages the health of a set of peer daemons and hands out
// resilient Runners that retry, hedge and degrade instead of failing a
// leg on the first network hiccup. The degradation ladder per leg is:
// peer attempt → bounded transient retries with jittered backoff →
// (optionally) a hedged local race → local demotion. A leg is never
// lost: the worst case is that it runs locally, exactly-once, from the
// same input checkpoint.
type Pool struct {
	cfg   PoolConfig
	peers []*peerState
	stop  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
}

// peerState is one peer's health record: probe-derived liveness plus the
// circuit breaker fed by passive leg outcomes.
type peerState struct {
	url    string
	runner *HTTPPeer

	mu       sync.Mutex
	healthy  bool
	fails    int       // consecutive leg failures (breaker input)
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe leg is in flight

	probeFailures    int64
	transientRetries int64
	hedges           int64
	demotions        int64
	legs             int64
}

// NewPool builds a pool over the given peer base URLs. Call Start to
// begin active probing and Close to stop it.
func NewPool(urls []string, cfg PoolConfig) *Pool {
	cfg.withDefaults()
	p := &Pool{cfg: cfg, stop: make(chan struct{})}
	for _, u := range urls {
		p.peers = append(p.peers, &peerState{
			url:     u,
			runner:  &HTTPPeer{BaseURL: u, Client: cfg.Client},
			healthy: true, // optimistic until the first probe says otherwise
		})
	}
	return p
}

// Start launches the active /readyz probe loops (no-op when probing is
// disabled or there are no peers).
func (p *Pool) Start() {
	if p.cfg.ProbeEvery < 0 {
		return
	}
	for _, ps := range p.peers {
		p.wg.Add(1)
		go p.probeLoop(ps)
	}
}

// Close stops the probe loops and waits for them.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// Runners returns the runner set for a sharded run: the local runner
// first, then one resilient runner per peer — the same shape the
// coordinator's shard-to-runner assignment expects.
func (p *Pool) Runners() []Runner {
	rs := []Runner{Local{}}
	for _, ps := range p.peers {
		rs = append(rs, &resilientRunner{pool: p, peer: ps})
	}
	return rs
}

// Snapshot reports every peer's health and resilience counters, sorted
// in construction order (stable across calls).
func (p *Pool) Snapshot() []obs.PeerProgress {
	out := make([]obs.PeerProgress, 0, len(p.peers))
	for _, ps := range p.peers {
		ps.mu.Lock()
		out = append(out, obs.PeerProgress{
			Peer:             ps.url,
			Healthy:          ps.healthy,
			BreakerOpen:      ps.fails >= p.cfg.BreakerThreshold,
			ProbeFailures:    ps.probeFailures,
			TransientRetries: ps.transientRetries,
			Hedges:           ps.hedges,
			Demotions:        ps.demotions,
			Legs:             ps.legs,
		})
		ps.mu.Unlock()
	}
	return out
}

func (p *Pool) probeLoop(ps *peerState) {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.ProbeEvery)
	defer t.Stop()
	p.probe(ps)
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probe(ps)
		}
	}
}

// probe hits the peer's /readyz and updates its health mark. Probes only
// move the health gauge — the breaker is fed by leg outcomes, so a
// ready-but-flaky peer still trips it.
func (p *Pool) probe(ps *peerState) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.ProbeTimeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ps.url+"/readyz", nil)
	if err == nil {
		resp, rerr := p.cfg.Client.Do(req)
		if rerr == nil {
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	ps.mu.Lock()
	ps.healthy = ok
	if !ok {
		ps.probeFailures++
	}
	ps.mu.Unlock()
	if !ok && p.cfg.Observer.OnProbeFailure != nil {
		p.cfg.Observer.OnProbeFailure()
	}
}

// admit decides whether a leg may attempt this peer right now: the peer
// must look alive and its breaker must be closed — or due a single
// half-open probe leg, in which case that leg is it.
func (ps *peerState) admit(threshold int, cooldown time.Duration, now time.Time) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.healthy {
		return false
	}
	if ps.fails < threshold {
		return true // closed
	}
	if ps.probing {
		return false // half-open: one probe at a time
	}
	if now.Sub(ps.openedAt) >= cooldown {
		ps.probing = true // this leg is the half-open probe
		return true
	}
	return false // open
}

// legSucceeded closes the breaker and restores the passive health mark.
func (ps *peerState) legSucceeded() {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.fails = 0
	ps.probing = false
	ps.healthy = true
	ps.legs++
}

// legFailed records a passive failure; crossing the threshold (or
// failing the half-open probe) opens the breaker, timestamped for the
// cooldown.
func (ps *peerState) legFailed(threshold int, now time.Time) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.fails++
	if ps.probing || ps.fails == threshold {
		ps.openedAt = now
	}
	if ps.probing {
		// A failed probe reopens fully: hold fails at the threshold so
		// the next cooldown admits exactly one new probe.
		ps.fails = threshold
		ps.probing = false
	}
}

// resilientRunner dispatches one shard's legs to a pooled peer, walking
// the degradation ladder before giving the leg to the local fallback.
// It deliberately does not implement InProcess: callback options still
// reject peer-backed runs even though demoted legs execute locally.
type resilientRunner struct {
	pool *Pool
	peer *peerState
}

// RunLeg implements Runner. It never returns a transient error: those
// are retried and finally demoted to a local run, so the only errors
// that escape are deterministic refusals and local-engine failures —
// zero legs lost to the network.
func (r *resilientRunner) RunLeg(ctx context.Context, req *LegRequest) (*core.Checkpoint, error) {
	cfg := &r.pool.cfg
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		//hmc:nondet(breaker admission is a wall-clock availability decision; any outcome yields the same merged counters)
		if !r.peer.admit(cfg.BreakerThreshold, cfg.BreakerCooldown, time.Now()) {
			return r.demote(ctx, req)
		}
		cp, viaLocal, err := r.attempt(ctx, req)
		if err == nil {
			if !viaLocal {
				// A hedge won by the local copy says nothing about the
				// peer — neither success nor failure is recorded for it.
				r.peer.legSucceeded()
			}
			return cp, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err() // the run was cancelled, not the peer's fault
		}
		r.peer.legFailed(cfg.BreakerThreshold, time.Now()) //hmc:nondet(breaker bookkeeping: failure times gate retries, not results)
		if !IsTransient(err) {
			return nil, err // deterministic: the coordinator decides
		}
		if attempt >= cfg.MaxRetries {
			return r.demote(ctx, req)
		}
		if r.pool.cfg.Observer.OnTransientRetry != nil {
			r.pool.cfg.Observer.OnTransientRetry()
		}
		r.peer.mu.Lock()
		r.peer.transientRetries++
		r.peer.mu.Unlock()
		if err := sleepBackoff(ctx, cfg.RetryBackoff, attempt); err != nil {
			return nil, err
		}
	}
}

// demote runs the leg on the local fallback — the bottom of the ladder.
// The input checkpoint is untouched, so this is exactly the coordinator's
// own retry semantics, just without burning a coordinator retry.
func (r *resilientRunner) demote(ctx context.Context, req *LegRequest) (*core.Checkpoint, error) {
	r.peer.mu.Lock()
	r.peer.demotions++
	r.peer.mu.Unlock()
	if r.pool.cfg.Observer.OnDemotion != nil {
		r.pool.cfg.Observer.OnDemotion()
	}
	return Local{}.RunLeg(ctx, req)
}

// attempt runs one peer attempt, optionally hedged: when the peer leg is
// still running after HedgeAfter, a local copy of the same leg is raced
// against it. The first success wins and the loser is cancelled — legs
// are deterministic functions of their input checkpoint, so both would
// return the same counters and discarding the loser changes nothing.
func (r *resilientRunner) attempt(ctx context.Context, req *LegRequest) (*core.Checkpoint, bool, error) {
	cfg := &r.pool.cfg
	actx := ctx
	cancel := context.CancelFunc(func() {})
	if cfg.LegTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, cfg.LegTimeout)
	}
	defer cancel()
	if cfg.HedgeAfter <= 0 {
		cp, err := r.peer.runner.RunLeg(actx, req)
		return cp, false, err
	}
	hctx, hcancel := context.WithCancel(actx)
	defer hcancel()
	type outcome struct {
		cp    *core.Checkpoint
		err   error
		local bool
	}
	ch := make(chan outcome, 2) // buffered: the loser must not leak
	go func() {
		cp, err := r.peer.runner.RunLeg(hctx, req)
		ch <- outcome{cp: cp, err: err, local: false}
	}()
	hedge := time.NewTimer(cfg.HedgeAfter)
	defer hedge.Stop()
	pending := 1
	hedged := false
	var peerErr, localErr error
	for pending > 0 {
		select {
		case <-hedge.C:
			if !hedged {
				hedged = true
				pending++
				r.peer.mu.Lock()
				r.peer.hedges++
				r.peer.mu.Unlock()
				if cfg.Observer.OnHedge != nil {
					cfg.Observer.OnHedge()
				}
				go func() {
					cp, err := Local{}.RunLeg(hctx, req)
					ch <- outcome{cp: cp, err: err, local: true}
				}()
			}
		case o := <-ch:
			pending--
			if o.err == nil {
				return o.cp, o.local, nil // deferred hcancel reaps the loser
			}
			if o.local {
				localErr = o.err
			} else {
				peerErr = o.err
			}
		}
	}
	// Both sides failed (or the hedge never fired and the peer did): the
	// peer error drives the retry classification; a lone local failure is
	// an engine error and surfaces as-is.
	if peerErr != nil {
		return nil, false, peerErr
	}
	return nil, true, localErr
}

// sleepBackoff waits one jittered exponential-backoff step, bailing out
// on cancellation. The jitter decorrelates retry storms across legs; the
// cap keeps the ladder from stalling a run longer than a demotion would.
func sleepBackoff(ctx context.Context, base time.Duration, attempt int) error {
	d := base << attempt
	if d > maxRetryBackoff || d <= 0 {
		d = maxRetryBackoff
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1)) //hmc:nondet(backoff jitter decorrelates retry storms; sleep length never reaches results)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// AllDark reports whether no pooled peer is currently admitting legs —
// the fully-degraded state. The run still completes (every leg demotes
// to local); this exists so callers can say so out loud.
func (p *Pool) AllDark() bool {
	if len(p.peers) == 0 {
		return false
	}
	now := time.Now() //hmc:nondet(breaker-cooldown health probe; reporting degradation is inherently wall-clock)
	for _, ps := range p.peers {
		ps.mu.Lock()
		ok := ps.healthy && (ps.fails < p.cfg.BreakerThreshold || now.Sub(ps.openedAt) >= p.cfg.BreakerCooldown)
		ps.mu.Unlock()
		if ok {
			return false
		}
	}
	return true
}
