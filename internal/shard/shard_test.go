package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"hmc/internal/core"
	"hmc/internal/gen"
	"hmc/internal/litmus"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// This file validates the tentpole N-way equivalence property: splitting
// one exploration across N shards — under any leg schedule, with workers
// killed mid-leg and frontiers stolen between shards — must land on
// exactly the same execution set and the same Stats counters as the
// single-process explorer. It is checkpoint_test.go's resume-equivalence
// suite lifted from one explorer over time to N explorers over space.

// singleRun is the oracle: a plain single-process exploration.
func singleRun(t *testing.T, p *prog.Program, model string, opts core.Options) *core.Result {
	t.Helper()
	m, err := memmodel.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	opts.Model = m
	opts.DedupSafeguard = true
	opts.CollectKeys = true
	res, err := core.Explore(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// shardRun explores p across n shards.
func shardRun(t *testing.T, p *prog.Program, model string, n int, opts core.Options, mod func(*Options)) *core.Result {
	t.Helper()
	m, err := memmodel.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	opts.Model = m
	opts.DedupSafeguard = true
	opts.CollectKeys = true
	o := Options{Shards: n, Core: opts}
	if mod != nil {
		mod(&o)
	}
	res, err := Explore(p, o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sortedKeys(r *core.Result) []string {
	out := append([]string(nil), r.Keys...)
	sort.Strings(out)
	return out
}

// assertSame compares a sharded run against the single-process oracle,
// mirroring core's assertSameExploration. The semantic invariants —
// execution-key sets, Executions, ExistsCount, Blocked, Duplicates,
// StuckReads, errors, truncation — always hold. With strict set the
// search-effort counters must be byte-identical too; that holds on the
// corpus but — exactly as for resume and parallel runs — is not an engine
// invariant on arbitrary programs: the memo collapses stamp-order
// variants of a state, and which representative a shard expands first is
// schedule-dependent (routinely so under Symmetry).
func assertSame(t *testing.T, label string, straight, sharded *core.Result, strict bool) {
	t.Helper()
	if got, want := sortedKeys(sharded), sortedKeys(straight); len(got) != len(want) {
		t.Errorf("%s: execution set has %d keys, straight run %d", label, len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: execution set diverges at key %d:\n got %s\nwant %s", label, i, got[i], want[i])
				break
			}
		}
	}
	type counts struct {
		Executions, ExistsCount, Blocked, Duplicates, States, MemoHits int
		RevisitsTried, RevisitsTaken, RevisitsRepairFail, RevisitsPorf int
		ConsistencyChecks, StuckReads, MaxGraphEvents, Errs, DepViol   int
		StaticPrunedRf, StaticPrunedCo, StaticPrunedScans              int
		Truncated                                                      bool
		Reason                                                         string
	}
	of := func(r *core.Result) counts {
		c := counts{
			r.Executions, r.ExistsCount, r.Blocked, r.Duplicates, r.States, r.MemoHits,
			r.RevisitsTried, r.RevisitsTaken, r.RevisitsRepairFail, r.RevisitsPorfSkip,
			r.ConsistencyChecks, r.StuckReads, r.MaxGraphEvents, len(r.Errors), r.DepViolations,
			r.StaticPrunedRf, r.StaticPrunedCo, r.StaticPrunedScans,
			r.Truncated, r.TruncatedReason,
		}
		if !strict {
			c.States, c.MemoHits, c.RevisitsTried, c.RevisitsTaken = 0, 0, 0, 0
			c.RevisitsRepairFail, c.RevisitsPorf, c.ConsistencyChecks = 0, 0, 0
			c.MaxGraphEvents = 0
			c.StaticPrunedRf, c.StaticPrunedCo, c.StaticPrunedScans = 0, 0, 0
		}
		return c
	}
	if got, want := of(sharded), of(straight); got != want {
		t.Errorf("%s: counters diverge:\n sharded %+v\nstraight %+v", label, got, want)
	}
}

var shardCounts = []int{2, 3, 8}

// TestShardEquivalenceCorpus is the tentpole assertion: litmus corpus ×
// memory models × n ∈ {2,3,8}, sharded counters byte-identical to the
// single explorer's.
func TestShardEquivalenceCorpus(t *testing.T) {
	models := memmodel.Names()
	if testing.Short() {
		models = []string{"sc", "tso", "imm"}
	}
	for _, tc := range litmus.Corpus() {
		for _, model := range models {
			straight := singleRun(t, tc.P, model, core.Options{})
			for _, n := range shardCounts {
				sharded := shardRun(t, tc.P, model, n, core.Options{}, nil)
				assertSame(t, fmt.Sprintf("%s under %s split %d ways", tc.Name, model, n),
					straight, sharded, true)
			}
		}
	}
}

// TestShardEquivalenceRandom widens the net over generated programs, the
// same 250-seed family the resume suite uses, rotating the shard count.
func TestShardEquivalenceRandom(t *testing.T) {
	const seeds = 250
	models := []string{"imm", "tso", "arm"}
	step := 1
	if testing.Short() {
		step = 5
	}
	for seed := 0; seed < seeds; seed += step {
		p := gen.Random(int64(seed))
		model := models[seed%len(models)]
		n := shardCounts[seed%len(shardCounts)]
		straight := singleRun(t, p, model, core.Options{})
		sharded := shardRun(t, p, model, n, core.Options{}, nil)
		assertSame(t, fmt.Sprintf("gen.Random(%d) under %s split %d ways", seed, model, n),
			straight, sharded, false)
	}
}

// TestShardEquivalenceWithOptions exercises the semantic options that
// ride in the checkpoint signature across the shard boundary.
func TestShardEquivalenceWithOptions(t *testing.T) {
	cases := []struct {
		name string
		p    *prog.Program
		opts core.Options
	}{
		{"symmetry-inc", gen.IncN(3, 2), core.Options{Symmetry: true}},
		{"static-indexer", gen.IndexerN(2), core.Options{StaticAnalysis: true}},
		{"porf-lb", mustCorpus(t, "LB").P, core.Options{PorfOnlyRevisits: true}},
		{"maxevents-sb", mustCorpus(t, "SB").P, core.Options{MaxEvents: 3}},
		{"workers-sb", mustCorpus(t, "SB").P, core.Options{Workers: 2}},
	}
	for _, c := range cases {
		straight := singleRun(t, c.p, "imm", c.opts)
		for _, n := range shardCounts {
			sharded := shardRun(t, c.p, "imm", n, c.opts, nil)
			assertSame(t, fmt.Sprintf("%s split %d ways", c.name, n),
				straight, sharded, !c.opts.Symmetry)
		}
	}
}

func mustCorpus(t *testing.T, name string) litmus.Test {
	t.Helper()
	tc, ok := litmus.ByName(name)
	if !ok {
		t.Fatalf("litmus test %q not in corpus", name)
	}
	return tc
}

// TestShardErrorsSurvivePartition: assertion failures found by different
// shards all land in the merged result.
func TestShardErrorsSurvivePartition(t *testing.T) {
	// Unfenced message passing: the assertion fails under IMM's reordering.
	b := prog.NewBuilder("mp-unfenced")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t0.Store(y, prog.Const(1))
	t1 := b.Thread()
	ry := t1.Load(y)
	rx := t1.Load(x)
	t1.Assert(prog.Or(prog.Eq(prog.R(ry), prog.Const(0)), prog.Ne(prog.R(rx), prog.Const(0))),
		"flag set implies data visible")
	p := b.MustBuild()
	straight := singleRun(t, p, "imm", core.Options{})
	if len(straight.Errors) == 0 {
		t.Fatal("oracle found no assertion failures; pick a racier program")
	}
	for _, n := range shardCounts {
		sharded := shardRun(t, p, "imm", n, core.Options{}, nil)
		assertSame(t, fmt.Sprintf("mp-unfenced split %d ways", n), straight, sharded, true)
	}
}

// TestShardWorkStealEquivalence forces aggressive stealing — zero idle
// patience on a program big enough that shards drain at different times —
// and asserts the totals still match to the byte. Steal moves buckets,
// memo entries and pending graphs between live shards, so this is the
// ownership-invariant stress test.
func TestShardWorkStealEquivalence(t *testing.T) {
	p := gen.SBN(6)
	straight := singleRun(t, p, "sc", core.Options{})
	for _, n := range []int{3, 8} {
		steals := 0
		sharded := shardRun(t, p, "sc", n, core.Options{}, func(o *Options) {
			o.StealAfter = time.Millisecond
			o.OnSteal = func() { steals++ }
		})
		assertSame(t, fmt.Sprintf("SB(6) split %d ways with forced steals", n),
			straight, sharded, true)
		t.Logf("n=%d: %d steals", n, steals)
	}
}

// TestShardChaosWorkerKill is the in-process half of the chaos
// requirement: every shard's first leg attempt dies — one by an injected
// error, the rest by a real panic in the runner (the in-process analogue
// of a SIGKILLed worker) — and the coordinator re-runs each from its
// input checkpoint with totals unchanged.
func TestShardChaosWorkerKill(t *testing.T) {
	p := gen.SBN(5)
	straight := singleRun(t, p, "tso", core.Options{})
	for _, n := range shardCounts {
		retries := 0
		sharded := shardRun(t, p, "tso", n, core.Options{}, func(o *Options) {
			o.Runners = []Runner{&panicOnFirstAttempt{}}
			o.StealAfter = time.Millisecond
			o.OnRetry = func() { retries++ }
			o.failLeg = func(shard, attempt int) error {
				if shard == 0 && attempt == 0 {
					return errors.New("injected worker kill")
				}
				return nil
			}
		})
		if retries == 0 {
			t.Errorf("n=%d: chaos run saw no leg retries", n)
		}
		assertSame(t, fmt.Sprintf("SB(5) split %d ways with killed workers", n),
			straight, sharded, true)
	}
}

// panicOnFirstAttempt is a Runner whose first leg per shard dies by
// panic; the coordinator's recover boundary must turn that into a retry.
type panicOnFirstAttempt struct {
	mu   sync.Mutex
	died map[string]bool
}

func (*panicOnFirstAttempt) InProcess() bool { return true }

func (r *panicOnFirstAttempt) RunLeg(ctx context.Context, req *LegRequest) (*core.Checkpoint, error) {
	key := req.Spec.String()
	r.mu.Lock()
	first := !r.died[key]
	if first {
		if r.died == nil {
			r.died = make(map[string]bool)
		}
		r.died[key] = true
	}
	r.mu.Unlock()
	if first {
		panic("chaos: worker died mid-leg")
	}
	return Local{}.RunLeg(ctx, req)
}

// TestShardInterruptResume: cancelling a sharded run yields a merged
// whole-run checkpoint that a plain single explorer resumes to the exact
// single-run totals — distribution composes with durability.
func TestShardInterruptResume(t *testing.T) {
	p := gen.SBN(5)
	straight := singleRun(t, p, "sc", core.Options{})
	m, _ := memmodel.ByName("sc")

	// Cancel after the first few leg completions.
	ctx, cancel := context.WithCancel(context.Background())
	legs := 0
	opts := core.Options{Model: m, DedupSafeguard: true, CollectKeys: true, Context: ctx}
	res, err := Explore(p, Options{
		Shards: 3,
		Core:   opts,
		OnActive: func(int) {
			if legs++; legs == 4 {
				cancel()
			}
		},
	})
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Skip("run finished before the cancellation landed; nothing to resume")
	}
	if res.Checkpoint == nil {
		t.Fatal("interrupted sharded run returned no checkpoint")
	}
	if res.Checkpoint.Shard != "" {
		t.Fatalf("merged checkpoint still carries a shard spec %q", res.Checkpoint.Shard)
	}
	data, err := res.Checkpoint.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := core.DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	resumeOpts := core.Options{Model: m, DedupSafeguard: true, CollectKeys: true, ResumeFrom: cp}
	resumed, err := core.Explore(p, resumeOpts)
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, "sharded interrupt, single-process resume", straight, resumed, true)
}

// TestShardSplitMergeRoundTrip: Split then Merge reproduces a real
// mid-run checkpoint exactly (modulo the canonical ordering Merge
// applies), byte-for-byte through the wire codec.
func TestShardSplitMergeRoundTrip(t *testing.T) {
	m, _ := memmodel.ByName("sc")
	for _, fail := range []int{2, 5, 8} {
		res, err := core.Explore(mustCorpus(t, "SB").P, core.Options{
			Model: m, DedupSafeguard: true, CollectKeys: true, FailAfter: fail,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Checkpoint == nil {
			t.Fatalf("FailAfter=%d produced no checkpoint", fail)
		}
		for _, n := range []int{1, 2, 3, 8} {
			parts, err := Split(res.Checkpoint, n, 0)
			if err != nil {
				t.Fatalf("Split(%d): %v", n, err)
			}
			if len(parts) != n {
				t.Fatalf("Split(%d) returned %d checkpoints", n, len(parts))
			}
			merged, err := Merge(parts)
			if err != nil {
				t.Fatalf("Merge after Split(%d): %v", n, err)
			}
			want := normalized(t, res.Checkpoint)
			got := normalized(t, merged)
			if !bytes.Equal(want, got) {
				t.Errorf("FailAfter=%d n=%d: Merge(Split(cp)) != cp\n got %.400s\nwant %.400s", fail, n, got, want)
			}
		}
	}
}

// normalized canonically re-encodes a whole-run checkpoint: Merge sorts
// Keys, DepViolationDetails, Memo, Seen, Pending and Errors (a live
// capture records some in completion order, and untrusted snapshots can
// order them arbitrarily), so comparisons sort both sides the same way.
func normalized(t *testing.T, cp *core.Checkpoint) []byte {
	t.Helper()
	c := *cp
	c.Keys = append([]string(nil), cp.Keys...)
	sort.Strings(c.Keys)
	c.DepViolationDetails = append([]string(nil), cp.DepViolationDetails...)
	sort.Strings(c.DepViolationDetails)
	c.Memo = append([]string(nil), cp.Memo...)
	sort.Strings(c.Memo)
	c.Seen = append([]string(nil), cp.Seen...)
	sort.Strings(c.Seen)
	c.Pending = append([]json.RawMessage(nil), cp.Pending...)
	sort.Slice(c.Pending, func(i, j int) bool { return bytes.Compare(c.Pending[i], c.Pending[j]) < 0 })
	c.Errors = append([]core.WireError(nil), cp.Errors...)
	sort.Slice(c.Errors, func(i, j int) bool {
		a, b := c.Errors[i], c.Errors[j]
		if a.Thread != b.Thread {
			return a.Thread < b.Thread
		}
		if a.Msg != b.Msg {
			return a.Msg < b.Msg
		}
		return bytes.Compare(a.Graph, b.Graph) < 0
	})
	if len(c.Keys) == 0 {
		c.Keys = nil
	}
	if len(c.Errors) == 0 {
		c.Errors = nil
	}
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestMergeValidation: Merge must reject fleets that do not partition the
// bucket space or describe different runs.
func TestMergeValidation(t *testing.T) {
	m, _ := memmodel.ByName("sc")
	base, err := core.InitialCheckpoint(mustCorpus(t, "SB").P, core.Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := Split(base, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(parts[:2]); err == nil {
		t.Error("Merge must reject an incomplete bucket cover")
	}
	if _, err := Merge([]*core.Checkpoint{parts[0], parts[1], parts[2], parts[2]}); err == nil {
		t.Error("Merge must reject overlapping ownership")
	}
	other := *parts[2]
	other.Fingerprint = "different"
	if _, err := Merge([]*core.Checkpoint{parts[0], parts[1], &other}); err == nil {
		t.Error("Merge must reject mixed fingerprints")
	}
	if _, err := Merge(nil); err == nil {
		t.Error("Merge of nothing must fail")
	}
	if _, err := Split(parts[0], 2, 0); err == nil {
		t.Error("Split must reject an already-sharded checkpoint")
	}
	if _, err := Split(base, 3, 2); err == nil {
		t.Error("Split must reject fewer buckets than shards")
	}
}

// TestMergeStatsCoversAllFields keeps mergeStats honest by reflection: a
// new core.Stats counter that mergeStats does not aggregate would
// silently break counter exactness; this test fails instead.
func TestMergeStatsCoversAllFields(t *testing.T) {
	var a, b core.Stats
	av, bv := reflect.ValueOf(&a).Elem(), reflect.ValueOf(&b).Elem()
	tp := av.Type()
	for i := 0; i < tp.NumField(); i++ {
		f := tp.Field(i)
		if f.Type.Kind() != reflect.Int {
			if f.Name != "Errors" {
				t.Errorf("core.Stats has non-int field %s; teach mergeStats and this test about it", f.Name)
			}
			continue
		}
		av.Field(i).SetInt(int64(100 + i))
		bv.Field(i).SetInt(int64(1000 + 7*i))
	}
	var got core.Stats
	mergeStats(&got, a)
	mergeStats(&got, b)
	gv := reflect.ValueOf(got)
	for i := 0; i < tp.NumField(); i++ {
		f := tp.Field(i)
		if f.Type.Kind() != reflect.Int {
			continue
		}
		want := int64(100 + i + 1000 + 7*i)
		if f.Name == "MaxGraphEvents" {
			want = int64(1000 + 7*i) // max, not sum
		}
		if gv.Field(i).Int() != want {
			t.Errorf("mergeStats drops or mishandles core.Stats.%s: got %d, want %d",
				f.Name, gv.Field(i).Int(), want)
		}
	}
}

// TestShardSpecRoundTrip: the spec codec is canonical.
func TestShardSpecRoundTrip(t *testing.T) {
	spec, err := core.NewShardSpec(64, []int{0, 3, 17, 63})
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.ParseShardSpec(spec.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != spec.String() {
		t.Errorf("spec round trip: %q != %q", back.String(), spec.String())
	}
	if got := back.Buckets(); !reflect.DeepEqual(got, []int{0, 3, 17, 63}) {
		t.Errorf("buckets round trip: %v", got)
	}
	for _, bad := range []string{"", "64", ":ff", "0:", "4:zz", "4:111", "2:4", "9999999:0"} {
		if _, err := core.ParseShardSpec(bad); err == nil {
			t.Errorf("ParseShardSpec(%q) must fail", bad)
		}
	}
}

// TestShardRejectsUnsupportedOptions: coordinator-owned knobs and hard
// stops are refused up front, not silently dropped.
func TestShardRejectsUnsupportedOptions(t *testing.T) {
	p := mustCorpus(t, "SB").P
	m, _ := memmodel.ByName("sc")
	bad := []Options{
		{Shards: 2, Core: core.Options{Model: m, StopOnError: true}},
		{Shards: 2, Core: core.Options{Model: m, FailAfter: 3}},
		{Shards: 2, Core: core.Options{Model: m, Checkpoint: &core.CheckpointOptions{}}},
		{Shards: 2, Core: core.Options{}},
	}
	for i, o := range bad {
		if _, err := Explore(p, o); err == nil {
			t.Errorf("case %d: Explore must reject unsupported options", i)
		}
	}
}
