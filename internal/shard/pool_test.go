package shard

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hmc/internal/core"
	"hmc/internal/faultinject"
	"hmc/internal/gen"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// newLegServer serves /v1/shards for a fixed program — an in-test peer
// daemon. wrap, when non-nil, may hijack a request before the leg runs
// (return true = handled).
func newLegServer(t *testing.T, p *prog.Program, wrap func(w http.ResponseWriter, r *http.Request, n int64) bool) *httptest.Server {
	t.Helper()
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		if r.URL.Path != "/v1/shards" {
			http.NotFound(w, r)
			return
		}
		seq := n.Add(1)
		if wrap != nil && wrap(w, r, seq) {
			return
		}
		var lw LegWire
		if err := json.NewDecoder(r.Body).Decode(&lw); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		cp, err := ExecuteLeg(r.Context(), &lw, p)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		raw, err := cp.Encode()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(LegResponse{Checkpoint: raw})
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestPeerBreakerLifecycle walks the per-peer breaker state machine with
// explicit clocks: closed → open at the threshold → half-open single
// probe after the cooldown → closed on probe success, reopened on probe
// failure.
func TestPeerBreakerLifecycle(t *testing.T) {
	const threshold = 3
	cooldown := 10 * time.Second
	t0 := time.Unix(1000, 0)
	ps := &peerState{healthy: true}

	if !ps.admit(threshold, cooldown, t0) {
		t.Fatal("fresh peer must admit legs")
	}
	for i := 0; i < threshold; i++ {
		if !ps.admit(threshold, cooldown, t0) {
			t.Fatalf("breaker opened after only %d failures", i)
		}
		ps.legFailed(threshold, t0)
	}
	if ps.admit(threshold, cooldown, t0) {
		t.Fatal("breaker must be open after the threshold failure")
	}
	if ps.admit(threshold, cooldown, t0.Add(cooldown-time.Second)) {
		t.Fatal("breaker must stay open through the cooldown")
	}
	// Half-open: exactly one probe leg through.
	tProbe := t0.Add(cooldown)
	if !ps.admit(threshold, cooldown, tProbe) {
		t.Fatal("cooldown elapsed: one half-open probe must be admitted")
	}
	if ps.admit(threshold, cooldown, tProbe) {
		t.Fatal("a second leg during the half-open probe must be rejected")
	}
	// Probe failure → fully open again, new cooldown from now.
	ps.legFailed(threshold, tProbe)
	if ps.admit(threshold, cooldown, tProbe.Add(cooldown-time.Second)) {
		t.Fatal("failed probe must restart the cooldown")
	}
	tProbe2 := tProbe.Add(cooldown)
	if !ps.admit(threshold, cooldown, tProbe2) {
		t.Fatal("second cooldown elapsed: a new probe must be admitted")
	}
	// Probe success → closed.
	ps.legSucceeded()
	if !ps.admit(threshold, cooldown, tProbe2) || !ps.admit(threshold, cooldown, tProbe2) {
		t.Fatal("successful probe must close the breaker for all legs")
	}
	if ps.fails != 0 {
		t.Fatalf("closed breaker holds %d stale failures", ps.fails)
	}
}

// TestPoolPeerEquivalence: legs dispatched through pooled peers produce
// totals byte-identical to the single-process oracle — first on a clean
// network, then through an adversarial fault plan (drops, 5xx, latency,
// one corrupt body), then with every peer dark. Zero legs may be lost in
// any of these.
func TestPoolPeerEquivalence(t *testing.T) {
	p := gen.SBN(5)
	straight := singleRun(t, p, "sc", core.Options{})

	run := func(t *testing.T, pool *Pool) *core.Result {
		t.Helper()
		return shardRun(t, p, "sc", 4, core.Options{}, func(o *Options) {
			o.Test = "SBN5" // peer legs need a program identity on the wire
			o.Runners = pool.Runners()
		})
	}

	t.Run("clean", func(t *testing.T) {
		srv := newLegServer(t, p, nil)
		pool := NewPool([]string{srv.URL}, PoolConfig{ProbeEvery: -1})
		defer pool.Close()
		assertSame(t, "pooled peers, clean network", straight, run(t, pool), true)
		snap := pool.Snapshot()
		if snap[0].Legs == 0 {
			t.Error("no legs reached the peer; the pool never left the local path")
		}
		if snap[0].Demotions != 0 || snap[0].TransientRetries != 0 {
			t.Errorf("clean network saw demotions=%d retries=%d", snap[0].Demotions, snap[0].TransientRetries)
		}
	})

	t.Run("hostile", func(t *testing.T) {
		srv := newLegServer(t, p, nil)
		plan := &faultinject.Plan{Seed: 42, HTTP: &faultinject.HTTPFaults{
			DropPct:    30,
			LatencyPct: 20, LatencyMS: 5,
			Err5xxPct: 10,
			CorruptAt: []int64{3},
		}}
		client := &http.Client{Transport: faultinject.NewTransport(nil, plan, nil)}
		var retries atomic.Int64
		pool := NewPool([]string{srv.URL}, PoolConfig{
			ProbeEvery:   -1,
			RetryBackoff: time.Millisecond,
			Client:       client,
			Observer:     PoolObserver{OnTransientRetry: func() { retries.Add(1) }},
		})
		defer pool.Close()
		assertSame(t, "pooled peers, hostile network", straight, run(t, pool), true)
		if retries.Load() == 0 {
			t.Log("note: fault plan fired no transient retries this schedule")
		}
	})

	t.Run("all-dark", func(t *testing.T) {
		dead := httptest.NewServer(http.NotFoundHandler())
		url := dead.URL
		dead.Close() // connection refused from the first leg on
		var demotions atomic.Int64
		pool := NewPool([]string{url}, PoolConfig{
			ProbeEvery:      -1,
			RetryBackoff:    time.Millisecond,
			BreakerCooldown: time.Hour,
			Observer:        PoolObserver{OnDemotion: func() { demotions.Add(1) }},
		})
		defer pool.Close()
		assertSame(t, "pooled peers, all dark", straight, run(t, pool), true)
		if demotions.Load() == 0 {
			t.Error("dead peer produced no demotions; where did its legs run?")
		}
		if !pool.AllDark() {
			t.Error("pool does not report AllDark with its only peer refusing connections")
		}
	})
}

// TestPoolTransientRetrySucceeds: a peer that fails the first two
// attempts of a leg with 503s is retried in place and completes the leg
// itself — no demotion, breaker still closed.
func TestPoolTransientRetrySucceeds(t *testing.T) {
	p := gen.SBN(3)
	var flaked atomic.Int64
	srv := newLegServer(t, p, func(w http.ResponseWriter, r *http.Request, n int64) bool {
		if flaked.Add(1) <= 2 {
			http.Error(w, "synthetic flake", http.StatusServiceUnavailable)
			return true
		}
		return false
	})
	retries, demotions := 0, 0
	pool := NewPool([]string{srv.URL}, PoolConfig{
		ProbeEvery:   -1,
		MaxRetries:   3,
		RetryBackoff: time.Millisecond,
		Observer: PoolObserver{
			OnTransientRetry: func() { retries++ },
			OnDemotion:       func() { demotions++ },
		},
	})
	defer pool.Close()

	req, oracle := poolLegRequest(t, p)
	cp, err := pool.Runners()[1].RunLeg(context.Background(), req)
	if err != nil {
		t.Fatalf("leg failed through a recoverable flake: %v", err)
	}
	if got, want := mustJSON(t, cp.Stats), mustJSON(t, oracle.Stats); got != want {
		t.Errorf("retried peer leg diverged:\n got %s\nwant %s", got, want)
	}
	if retries != 2 || demotions != 0 {
		t.Errorf("retries=%d demotions=%d, want 2 retries and no demotion", retries, demotions)
	}
	if snap := pool.Snapshot()[0]; !snap.Healthy || snap.BreakerOpen || snap.Legs != 1 {
		t.Errorf("peer snapshot after recovery: %+v", snap)
	}
}

// TestPoolHedgedLeg: a peer that hangs forever loses the race to its
// local hedge; the leg completes with identical totals and the hedge is
// counted.
func TestPoolHedgedLeg(t *testing.T) {
	p := gen.SBN(3)
	srv := newLegServer(t, p, func(w http.ResponseWriter, r *http.Request, n int64) bool {
		// Drain the body so the server can observe the client hangup
		// (HTTP/1 disconnects only surface once the body is consumed),
		// then straggle until the hedge win cancels us.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
		return true
	})
	hedges := 0
	pool := NewPool([]string{srv.URL}, PoolConfig{
		ProbeEvery: -1,
		HedgeAfter: 10 * time.Millisecond,
		Observer:   PoolObserver{OnHedge: func() { hedges++ }},
	})
	defer pool.Close()

	req, oracle := poolLegRequest(t, p)
	cp, err := pool.Runners()[1].RunLeg(context.Background(), req)
	if err != nil {
		t.Fatalf("hedged leg failed: %v", err)
	}
	if got, want := mustJSON(t, cp.Stats), mustJSON(t, oracle.Stats); got != want {
		t.Errorf("hedged leg diverged:\n got %s\nwant %s", got, want)
	}
	if hedges != 1 {
		t.Errorf("hedges = %d, want 1", hedges)
	}
	if snap := pool.Snapshot()[0]; snap.Legs != 0 {
		t.Errorf("straggling peer credited with %d completed legs", snap.Legs)
	}
}

// TestPoolProbesTrackHealth: active /readyz probes flip the health mark
// both ways and count failures.
func TestPoolProbesTrackHealth(t *testing.T) {
	var ready atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" && ready.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		http.Error(w, "not ready", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	pool := NewPool([]string{srv.URL}, PoolConfig{ProbeEvery: 5 * time.Millisecond, ProbeTimeout: time.Second})
	pool.Start()
	defer pool.Close()

	waitFor(t, "peer marked unhealthy", func() bool {
		s := pool.Snapshot()[0]
		return !s.Healthy && s.ProbeFailures > 0
	})
	if !pool.AllDark() {
		t.Error("probe-dark peer should leave the pool AllDark")
	}
	ready.Store(true)
	waitFor(t, "peer marked healthy again", func() bool { return pool.Snapshot()[0].Healthy })
	if pool.AllDark() {
		t.Error("pool still AllDark after the peer recovered")
	}
}

// poolLegRequest builds a single full-coverage leg for p under sc, plus
// the local oracle's checkpoint for comparison.
func poolLegRequest(t *testing.T, p *prog.Program) (*LegRequest, *core.Checkpoint) {
	t.Helper()
	m, err := memmodel.ByName("sc")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Model: m, DedupSafeguard: true, CollectKeys: true}
	base, err := core.InitialCheckpoint(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	cps, err := Split(base, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := core.ParseShardSpec(cps[0].Shard)
	if err != nil {
		t.Fatal(err)
	}
	req := &LegRequest{Program: p, Test: "SBN3", Opts: opts, Checkpoint: cps[0], Spec: spec}
	oracle, err := Local{}.RunLeg(context.Background(), &LegRequest{Program: p, Opts: opts, Checkpoint: cps[0], Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	return req, oracle
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
