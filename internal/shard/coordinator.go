package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"hmc/internal/core"
	"hmc/internal/eg"
	"hmc/internal/obs"
	"hmc/internal/prog"
)

// DefaultStealAfter is the default work-stealing patience: once a shard
// sits idle this long while another leg is still running, the coordinator
// cancels the fattest leg (it drains into a checkpoint) and moves half
// its buckets — memo, seen and pending included — to the idle shard.
const DefaultStealAfter = 50 * time.Millisecond

// defaultLegRetries is how many times a failed or panicking leg is re-run
// from its input checkpoint before the whole run is declared failed.
const defaultLegRetries = 2

// Options configures a sharded exploration.
type Options struct {
	// Shards is the number of shards (1 = plain core.Explore, the legacy
	// single-explorer path, byte-for-byte).
	Shards int
	// Buckets is the ownership-bucket count (0 = shard.DefaultBuckets,
	// raised to Shards when needed). More buckets = finer steals.
	Buckets int
	// Workers caps concurrently running legs (0 = Shards). Each leg may
	// additionally parallelize internally via Core.Workers.
	Workers int
	// Core carries the run's semantic options and global Context. The
	// per-leg mechanics — ResumeFrom, Shard, Checkpoint, Progress, Trace,
	// FailAfter — belong to the coordinator; setting them is an error,
	// except ResumeFrom, which resumes a whole-run (merged) checkpoint.
	// MaxExecutions and MemoryBudget apply per shard, not globally.
	Core core.Options
	// Source/Test identify the program for remote runners (see
	// LegRequest).
	Source, Test string
	// Runners execute legs; shard i runs on Runners[i%len(Runners)].
	// Empty means local-only. A runner failure is retried on the local
	// fallback path via the normal retry budget.
	Runners []Runner
	// MaxLegRetries bounds re-runs of a failed leg (0 = a default; <0
	// disables retries — the first leg failure fails the run).
	MaxLegRetries int
	// StealAfter is the idle patience before a work-steal (0 = a
	// default; <0 disables stealing).
	StealAfter time.Duration
	// CheckpointSink, when non-nil, receives a merged whole-run
	// checkpoint after leg completions — the durability hook (journal).
	// CheckpointEveryExecs throttles it: snapshots are emitted only
	// after that many new executions (0 = every leg completion).
	CheckpointSink       func(*core.Checkpoint)
	CheckpointEveryExecs int
	// OnProgress, when non-nil, receives fleet-level progress snapshots
	// (with per-shard rows) at most every ProgressEvery (0 = 1s), plus a
	// final one.
	OnProgress    func(obs.ProgressSnapshot)
	ProgressEvery time.Duration
	// OnActive/OnSteal/OnRetry are metrics hooks: running-leg gauge
	// updates, completed steals, and leg retries.
	OnActive func(active int)
	OnSteal  func()
	OnRetry  func()
	// PeerStatus, when non-nil, supplies per-peer rows for progress
	// snapshots (see Pool.Snapshot).
	PeerStatus func() []obs.PeerProgress

	// failLeg is the chaos-test hook: consulted before each leg launch
	// with (shard, attempt); a non-nil error kills that leg attempt as if
	// the worker had died mid-run.
	failLeg func(shard, attempt int) error
}

// legDone is a completed leg attempt.
type legDone struct {
	shard int
	cp    *core.Checkpoint
	err   error
}

// shardState is the coordinator's view of one shard.
type shardState struct {
	cp            *core.Checkpoint // authoritative state (input of the running leg)
	spec          *core.ShardSpec
	inbox         []json.RawMessage // routed arrivals awaiting the next leg
	running       bool
	stealing      bool // leg cancelled for re-balancing
	retries       int  // cumulative re-runs (metrics)
	attempt       int  // current failure streak, reset by a completed leg
	steals        int  // times this shard was the steal victim
	launchPending int  // frontier size when the current leg launched
	launched      time.Time
	execRate      float64 // last computed executions/sec (progress)
	cancel        context.CancelFunc
}

// Explore runs p under o.Core split across o.Shards explorers and returns
// the merged result. The merged counters are identical to a
// single-process core.Explore — states are partitioned by ownership, each
// expanded exactly once, every constructed graph memo-checked exactly once
// at its owner — regardless of the leg schedule, work-steals, peer
// failures and leg retries. Cancellation of Core.Context yields an
// interrupted Result whose Checkpoint is a merged whole-run snapshot any
// explorer (sharded or not) can resume.
func Explore(p *prog.Program, o Options) (*core.Result, error) {
	if o.Shards <= 1 {
		return core.Explore(p, o.Core)
	}
	if o.Core.Model == nil {
		return nil, errors.New("shard: Options.Core.Model is required")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if o.Core.StopOnError {
		// A hard stop discards in-flight state without a checkpoint, which
		// has no sound merged meaning; errors are collected instead.
		return nil, errors.New("shard: StopOnError is not supported under sharded exploration")
	}
	if o.Core.Checkpoint != nil || o.Core.Progress != nil || o.Core.Trace != nil || o.Core.FailAfter > 0 || o.Core.Shard != nil {
		return nil, errors.New("shard: Core checkpoint/progress/trace/fail-after/shard options are coordinator-owned")
	}
	c := &coordinator{p: p, o: o}
	return c.run()
}

type coordinator struct {
	p *prog.Program
	o Options

	coreOpts core.Options // per-leg options (callbacks wrapped, Context cleared)
	ctx      context.Context
	states   []*shardState
	owner    []int // bucket -> shard index
	runners  []Runner
	keyOf    func(*eg.Graph) string

	active        int
	legsDone      int
	progressSeq   int
	started       time.Time
	lastProgress  time.Time
	lastSinkExecs int
}

func (c *coordinator) run() (*core.Result, error) {
	o := &c.o
	c.ctx = o.Core.Context
	if c.ctx == nil {
		c.ctx = context.Background()
	}
	c.coreOpts = o.Core
	c.coreOpts.Context = nil
	c.coreOpts.ResumeFrom = nil
	c.wrapCallbacks()
	c.runners = o.Runners
	if len(c.runners) == 0 {
		c.runners = []Runner{Local{}}
	}
	if err := c.checkCallbackRunners(); err != nil {
		return nil, err
	}
	base := o.Core.ResumeFrom
	if base == nil {
		var err error
		if base, err = core.InitialCheckpoint(c.p, c.coreOpts); err != nil {
			return nil, err
		}
	} else if base.Shard != "" {
		return nil, fmt.Errorf("shard: ResumeFrom is a shard-leg checkpoint (%q); merge the legs first", base.Shard)
	}
	cps, err := Split(base, o.Shards, o.Buckets)
	if err != nil {
		return nil, err
	}
	c.states = make([]*shardState, len(cps))
	for i, cp := range cps {
		spec, err := core.ParseShardSpec(cp.Shard)
		if err != nil {
			return nil, err
		}
		c.states[i] = &shardState{cp: cp, spec: spec}
		if c.owner == nil {
			c.owner = make([]int, spec.Mod())
		}
		for _, b := range spec.Buckets() {
			c.owner[b] = i
		}
	}
	if c.keyOf, err = core.KeyFunc(c.p, c.coreOpts.Symmetry); err != nil {
		return nil, err
	}
	c.started = time.Now() //hmc:nondet(run start time feeds progress rates only, never merged counters)

	workers := o.Workers
	if workers <= 0 {
		workers = o.Shards
	}
	maxRetries := o.MaxLegRetries
	if maxRetries == 0 {
		maxRetries = defaultLegRetries
	} else if maxRetries < 0 {
		maxRetries = 0
	}
	stealAfter := o.StealAfter
	if stealAfter == 0 {
		stealAfter = DefaultStealAfter
	}

	done := make(chan legDone)
	var stealTimer *time.Timer
	var stealC <-chan time.Time
	defer func() {
		if stealTimer != nil {
			stealTimer.Stop()
		}
	}()
	var fatal error
	for {
		if fatal == nil && c.ctx.Err() == nil {
			for i := range c.states {
				if c.active >= workers {
					break
				}
				if c.runnable(i) {
					c.launch(i, done)
				}
			}
		}
		if c.active == 0 {
			break // exhausted, cancelled, or fatal — nothing in flight
		}
		wantSteal := stealAfter > 0 && fatal == nil && c.ctx.Err() == nil &&
			c.active < workers && c.anyIdle() && c.bestVictim() >= 0
		if wantSteal && stealC == nil {
			stealTimer = time.NewTimer(stealAfter)
			stealC = stealTimer.C
		} else if !wantSteal && stealC != nil {
			stealTimer.Stop()
			stealC = nil
		}
		select {
		case d := <-done:
			if err := c.handle(d, maxRetries); err != nil && fatal == nil {
				fatal = err
				c.cancelAll()
			}
			c.maybeSink()
			c.maybeProgress(false)
		case <-stealC:
			stealC = nil
			if v := c.bestVictim(); v >= 0 {
				c.states[v].stealing = true
				c.states[v].cancel()
			}
		}
	}
	if fatal != nil {
		return nil, fatal
	}
	merged, err := Merge(c.snapshotCps())
	if err != nil {
		return nil, err
	}
	res, err := resultFromCheckpoint(merged)
	if err != nil {
		return nil, err
	}
	if c.ctx.Err() != nil {
		res.Interrupted = true
	}
	if res.Interrupted || len(merged.Pending) > 0 {
		res.Checkpoint = merged
	}
	c.maybeProgress(true)
	return res, nil
}

// cancelAll cancels every running leg (fatal-error wind-down).
func (c *coordinator) cancelAll() {
	for _, st := range c.states {
		if st.cancel != nil {
			st.cancel()
		}
	}
}

// runnable reports whether shard i has work it is allowed to run: a
// non-empty frontier and no exhausted per-shard resource bound
// (relaunching a bound-exhausted leg would spin, resuming-at-the-bound
// forever).
func (c *coordinator) runnable(i int) bool {
	st := c.states[i]
	if st.running || (len(st.cp.Pending) == 0 && len(st.inbox) == 0) {
		return false
	}
	if st.cp.Truncated &&
		(st.cp.TruncatedReason == core.TruncMaxExecutions || st.cp.TruncatedReason == core.TruncMemoryBudget) {
		return false
	}
	return true
}

// anyIdle reports whether some shard is drained and waiting for work.
func (c *coordinator) anyIdle() bool {
	for _, st := range c.states {
		if !st.running && len(st.cp.Pending) == 0 && len(st.inbox) == 0 {
			return true
		}
	}
	return false
}

// bestVictim picks the running leg with the fattest input frontier (≥2
// graphs — below that there is nothing to split) that is not already
// being stolen from.
func (c *coordinator) bestVictim() int {
	best, bestN := -1, 1
	for i, st := range c.states {
		if st.running && !st.stealing && st.launchPending > bestN {
			best, bestN = i, st.launchPending
		}
	}
	return best
}

func (c *coordinator) launch(i int, done chan<- legDone) {
	st := c.states[i]
	if len(st.inbox) > 0 {
		cp := *st.cp
		cp.Pending = append(append([]json.RawMessage(nil), cp.Pending...), st.inbox...)
		sortRaw(cp.Pending)
		st.cp = &cp
		st.inbox = nil
	}
	legCtx, cancel := context.WithCancel(c.ctx)
	st.cancel = cancel
	st.running = true
	st.launchPending = len(st.cp.Pending)
	st.launched = time.Now() //hmc:nondet(leg launch time drives steal patience, an availability heuristic outside the counter path)
	c.active++
	if c.o.OnActive != nil {
		c.o.OnActive(c.active)
	}
	req := &LegRequest{
		Program:    c.p,
		Source:     c.o.Source,
		Test:       c.o.Test,
		Opts:       c.coreOpts,
		Checkpoint: st.cp,
		Spec:       st.spec,
	}
	r := c.runners[i%len(c.runners)]
	if st.attempt > 0 {
		// Retries run on the local fallback: the assigned runner just
		// failed (a dead peer would fail every retry identically), and the
		// leg's input checkpoint is untouched, so where it re-runs is free.
		r = Runner(Local{})
	}
	fail := c.o.failLeg
	attempt := st.attempt
	go func() {
		cp, err := runLegGuarded(legCtx, r, req, fail, i, attempt)
		done <- legDone{shard: i, cp: cp, err: err}
	}()
}

// runLegGuarded is the worker-death boundary: a panicking runner — the
// in-process analogue of a SIGKILLed peer — surfaces as a leg error, and
// the coordinator re-runs the leg from its input checkpoint.
func runLegGuarded(ctx context.Context, r Runner, req *LegRequest, fail func(int, int) error, shard, attempt int) (cp *core.Checkpoint, err error) {
	defer func() {
		if v := recover(); v != nil {
			cp, err = nil, fmt.Errorf("shard: leg %d runner panicked: %v", shard, v)
		}
	}()
	if fail != nil {
		if ferr := fail(shard, attempt); ferr != nil {
			return nil, ferr
		}
	}
	return r.RunLeg(ctx, req)
}

func (c *coordinator) handle(d legDone, maxRetries int) error {
	st := c.states[d.shard]
	st.running = false
	if st.cancel != nil {
		st.cancel()
		st.cancel = nil
	}
	c.active--
	if c.o.OnActive != nil {
		c.o.OnActive(c.active)
	}
	c.legsDone++
	wasStealing := st.stealing
	st.stealing = false
	if d.err != nil {
		if c.ctx.Err() != nil {
			return nil // global cancellation killed the leg; cp (input) stays authoritative
		}
		if wasStealing {
			// A cancelled remote leg returns no checkpoint: its partial
			// work is discarded and the input checkpoint re-balanced —
			// still exactly-once, nothing from the dead leg was merged.
			c.rebalance(d.shard)
			return nil
		}
		if errors.Is(d.err, core.ErrCheckpointMismatch) {
			return d.err // deterministic; retrying cannot help
		}
		st.retries++
		st.attempt++
		if c.o.OnRetry != nil {
			c.o.OnRetry()
		}
		if st.attempt > maxRetries {
			return fmt.Errorf("shard: leg %d failed %d times in a row: %w", d.shard, st.attempt, d.err)
		}
		return nil // cp unchanged; the launch loop re-runs it
	}
	st.attempt = 0
	if secs := time.Since(st.launched).Seconds(); secs > 0 {
		st.execRate = obs.Finite(float64(d.cp.Stats.Executions-st.cp.Stats.Executions) / secs)
	}
	c.route(d.cp)
	d.cp.Forwarded = nil
	st.cp = d.cp
	if wasStealing && c.ctx.Err() == nil {
		c.rebalance(d.shard)
	}
	return nil
}

// route moves a returned checkpoint's forwarded graphs into their owner
// shards' inboxes. Called exactly once per returned checkpoint, before
// Forwarded is stripped — the exactly-once handoff.
func (c *coordinator) route(cp *core.Checkpoint) {
	for _, fw := range cp.Forwarded {
		j := c.owner[fw.Bucket]
		c.states[j].inbox = append(c.states[j].inbox, fw.Graph)
	}
}

// rebalance re-partitions a stolen-from shard: every pending graph is
// re-keyed to its current owner (drain strays go straight to other
// shards' inboxes), and about half the victim's pending work — bucket
// granular, with the matching memo and seen entries — moves to an idle
// shard. Ownership stays disjoint and covering throughout, so counter
// exactness survives any number of steals.
func (c *coordinator) rebalance(v int) {
	st := c.states[v]
	thief := -1
	for j, other := range c.states {
		if j != v && !other.running && len(other.cp.Pending) == 0 && len(other.inbox) == 0 {
			thief = j
			break
		}
	}
	// Group the victim's pending frontier by ownership bucket.
	byBucket := map[int][]json.RawMessage{}
	var keep []json.RawMessage
	for _, raw := range st.cp.Pending {
		g, err := decodeRawGraph(raw)
		if err != nil {
			keep = append(keep, raw) // unroutable: let the leg handle it
			continue
		}
		b := core.BucketOf(c.keyOf(g), st.spec.Mod())
		if c.owner[b] != v {
			// A drain stray: the pending frontier is recorded before keys
			// are computed, so it can hold graphs other shards own.
			c.states[c.owner[b]].inbox = append(c.states[c.owner[b]].inbox, raw)
			continue
		}
		byBucket[b] = append(byBucket[b], raw)
	}
	if thief < 0 || len(byBucket) < 2 {
		// Nothing to move (no idle shard, or all pending in one bucket):
		// reinstall what remains and let the leg resume.
		st.cp = reslicePending(st.cp, flattenBuckets(byBucket, keep))
		return
	}
	tst := c.states[thief]
	// Greedy halving: fattest buckets first, each to the lighter side.
	buckets := make([]int, 0, len(byBucket))
	for b := range byBucket {
		buckets = append(buckets, b)
	}
	sort.Slice(buckets, func(i, j int) bool {
		if len(byBucket[buckets[i]]) != len(byBucket[buckets[j]]) {
			return len(byBucket[buckets[i]]) > len(byBucket[buckets[j]])
		}
		return buckets[i] < buckets[j]
	})
	moved := map[int]bool{}
	keepN, moveN := 0, 0
	for _, b := range buckets {
		if moveN < keepN {
			moved[b] = true
			moveN += len(byBucket[b])
		} else {
			keepN += len(byBucket[b])
		}
	}
	if len(moved) == 0 {
		st.cp = reslicePending(st.cp, flattenBuckets(byBucket, keep))
		return
	}
	// Move the buckets: ownership, then the state that lives in them.
	victimOwn, thiefOwn := []int{}, tst.spec.Buckets()
	for _, b := range st.spec.Buckets() {
		if moved[b] {
			thiefOwn = append(thiefOwn, b)
			c.owner[b] = thief
		} else {
			victimOwn = append(victimOwn, b)
		}
	}
	var err error
	if st.spec, err = core.NewShardSpec(st.spec.Mod(), victimOwn); err != nil {
		panic(fmt.Sprintf("shard: rebalance built invalid spec: %v", err))
	}
	if tst.spec, err = core.NewShardSpec(tst.spec.Mod(), thiefOwn); err != nil {
		panic(fmt.Sprintf("shard: rebalance built invalid spec: %v", err))
	}
	var vKeep, tTake []json.RawMessage
	for b, raws := range byBucket {
		if moved[b] {
			tTake = append(tTake, raws...)
		} else {
			vKeep = append(vKeep, raws...)
		}
	}
	vKeep = append(vKeep, keep...)
	vMemo, tMemo := splitKeys(st.cp.Memo, st.spec.Mod(), moved)
	vSeen, tSeen := splitKeys(st.cp.Seen, st.spec.Mod(), moved)
	tcp := *tst.cp
	tcp.Shard = tst.spec.String()
	tcp.Memo = sortedUnion(tcp.Memo, tMemo)
	tcp.Seen = sortedUnion(tcp.Seen, tSeen)
	tcp.Pending = append(append([]json.RawMessage(nil), tcp.Pending...), tTake...)
	sortRaw(tcp.Pending)
	tst.cp = &tcp
	vcp := *st.cp
	vcp.Shard = st.spec.String()
	vcp.Memo = vMemo
	vcp.Seen = vSeen
	vcp.Pending = vKeep
	sortRaw(vcp.Pending)
	st.cp = &vcp
	st.steals++
	if c.o.OnSteal != nil {
		c.o.OnSteal()
	}
}

// snapshotCps returns a mergeable view of the fleet: each shard's
// authoritative checkpoint with its inbox folded into pending. Safe while
// legs run — a running leg's input checkpoint stays authoritative until
// its result is handled, so the snapshot is merely behind, never wrong.
func (c *coordinator) snapshotCps() []*core.Checkpoint {
	out := make([]*core.Checkpoint, len(c.states))
	for i, st := range c.states {
		cp := *st.cp
		if len(st.inbox) > 0 {
			cp.Pending = append(append([]json.RawMessage(nil), cp.Pending...), st.inbox...)
			sortRaw(cp.Pending)
		}
		out[i] = &cp
	}
	return out
}

func (c *coordinator) maybeSink() {
	if c.o.CheckpointSink == nil {
		return
	}
	total := 0
	for _, st := range c.states {
		total += st.cp.Stats.Executions
	}
	if c.o.CheckpointEveryExecs > 0 && total-c.lastSinkExecs < c.o.CheckpointEveryExecs {
		return
	}
	merged, err := Merge(c.snapshotCps())
	if err != nil {
		return // never let a durability hiccup kill the run
	}
	c.lastSinkExecs = total
	c.o.CheckpointSink(merged)
}

func (c *coordinator) maybeProgress(final bool) {
	if c.o.OnProgress == nil {
		return
	}
	every := c.o.ProgressEvery
	if every <= 0 {
		every = time.Second
	}
	if !final && time.Since(c.lastProgress) < every {
		return
	}
	c.lastProgress = time.Now() //hmc:nondet(progress snapshot cadence is wall-clock by design; snapshots observe, never steer)
	c.progressSeq++
	snap := obs.ProgressSnapshot{Seq: c.progressSeq, Wave: c.legsDone, Final: final}
	elapsed := time.Since(c.started)
	snap.Elapsed = elapsed
	for i, st := range c.states {
		s := st.cp.Stats
		frontier := len(st.cp.Pending) + len(st.inbox)
		snap.Executions += s.Executions
		snap.Blocked += s.Blocked
		snap.States += s.States
		snap.MemoHits += s.MemoHits
		snap.MemoSize += len(st.cp.Memo)
		snap.Frontier += frontier
		snap.RevisitsTried += s.RevisitsTried
		snap.RevisitsTaken += s.RevisitsTaken
		snap.ConsistencyChecks += s.ConsistencyChecks
		snap.StaticPrunedRf += s.StaticPrunedRf
		snap.StaticPrunedCo += s.StaticPrunedCo
		snap.StaticPrunedScans += s.StaticPrunedScans
		snap.Shards = append(snap.Shards, obs.ShardProgress{
			Shard:       i,
			Frontier:    frontier,
			Executions:  s.Executions,
			ExecsPerSec: st.execRate,
			Running:     st.running,
			Steals:      st.steals,
			Retries:     st.retries,
		})
	}
	snap.ExecsPerSec = obs.Rate(snap.Executions, elapsed)
	snap.ChecksPerSec = obs.Rate(snap.ConsistencyChecks, elapsed)
	if c.o.PeerStatus != nil {
		snap.Peers = c.o.PeerStatus()
	}
	c.o.OnProgress(snap)
}

// wrapCallbacks serializes the run's callbacks across legs: inside one
// leg they are already serialized (core holds its lock), but two legs are
// independent processes as far as core knows.
func (c *coordinator) wrapCallbacks() {
	var mu sync.Mutex
	if f := c.coreOpts.OnExecution; f != nil {
		c.coreOpts.OnExecution = func(g *eg.Graph, fs prog.FinalState) {
			mu.Lock()
			defer mu.Unlock()
			f(g, fs)
		}
	}
	if f := c.coreOpts.OnBlocked; f != nil {
		c.coreOpts.OnBlocked = func(g *eg.Graph) {
			mu.Lock()
			defer mu.Unlock()
			f(g)
		}
	}
	if f := c.coreOpts.OnDuplicate; f != nil {
		c.coreOpts.OnDuplicate = func(g *eg.Graph) {
			mu.Lock()
			defer mu.Unlock()
			f(g)
		}
	}
}

// checkCallbackRunners rejects callback options when any leg may run out
// of process (callbacks cannot cross the wire).
func (c *coordinator) checkCallbackRunners() error {
	o := &c.coreOpts
	if o.OnExecution == nil && o.OnBlocked == nil && o.OnDuplicate == nil {
		return nil
	}
	for _, r := range c.runners {
		if ip, ok := r.(inProcess); !ok || !ip.InProcess() {
			return errors.New("shard: callback options (OnExecution/OnBlocked/OnDuplicate) require in-process runners")
		}
	}
	return nil
}

// resultFromCheckpoint turns a merged whole-run checkpoint into a Result.
func resultFromCheckpoint(cp *core.Checkpoint) (*core.Result, error) {
	errs, err := core.DecodeErrorReports(cp.Errors)
	if err != nil {
		return nil, err
	}
	res := &core.Result{
		Keys:                append([]string(nil), cp.Keys...),
		DepViolationDetails: append([]string(nil), cp.DepViolationDetails...),
		Truncated:           cp.Truncated,
		TruncatedReason:     cp.TruncatedReason,
	}
	res.Stats = cp.Stats
	res.Stats.Errors = errs
	return res, nil
}

func decodeRawGraph(raw json.RawMessage) (*eg.Graph, error) {
	var wg eg.WireGraph
	if err := json.Unmarshal(raw, &wg); err != nil {
		return nil, err
	}
	return wg.Decode()
}

func sortRaw(raws []json.RawMessage) {
	sort.Slice(raws, func(i, j int) bool { return bytes.Compare(raws[i], raws[j]) < 0 })
}

// splitKeys partitions sorted key sets by moved bucket; both halves stay
// sorted (a stable partition of a sorted slice).
func splitKeys(keys []string, mod int, moved map[int]bool) (kept, taken []string) {
	for _, k := range keys {
		if moved[core.BucketOf(k, mod)] {
			taken = append(taken, k)
		} else {
			kept = append(kept, k)
		}
	}
	return kept, taken
}

func sortedUnion(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	out := append(append([]string(nil), a...), b...)
	sort.Strings(out)
	return out
}

func flattenBuckets(byBucket map[int][]json.RawMessage, extra []json.RawMessage) []json.RawMessage {
	var out []json.RawMessage
	for _, raws := range byBucket {
		out = append(out, raws...)
	}
	out = append(out, extra...)
	sortRaw(out)
	return out
}

func reslicePending(cp *core.Checkpoint, pending []json.RawMessage) *core.Checkpoint {
	out := *cp
	out.Pending = pending
	return &out
}
